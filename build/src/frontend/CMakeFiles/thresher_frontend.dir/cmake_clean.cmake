file(REMOVE_RECURSE
  "CMakeFiles/thresher_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/thresher_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/thresher_frontend.dir/Lower.cpp.o"
  "CMakeFiles/thresher_frontend.dir/Lower.cpp.o.d"
  "CMakeFiles/thresher_frontend.dir/Parser.cpp.o"
  "CMakeFiles/thresher_frontend.dir/Parser.cpp.o.d"
  "libthresher_frontend.a"
  "libthresher_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thresher_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
