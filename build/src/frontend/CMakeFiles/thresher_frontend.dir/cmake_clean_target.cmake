file(REMOVE_RECURSE
  "libthresher_frontend.a"
)
