# Empty dependencies file for thresher_frontend.
# This may be replaced when dependencies are built.
