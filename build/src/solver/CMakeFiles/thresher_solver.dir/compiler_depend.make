# Empty compiler generated dependencies file for thresher_solver.
# This may be replaced when dependencies are built.
