file(REMOVE_RECURSE
  "libthresher_solver.a"
)
