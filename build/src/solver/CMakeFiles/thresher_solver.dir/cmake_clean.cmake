file(REMOVE_RECURSE
  "CMakeFiles/thresher_solver.dir/Pure.cpp.o"
  "CMakeFiles/thresher_solver.dir/Pure.cpp.o.d"
  "libthresher_solver.a"
  "libthresher_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thresher_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
