file(REMOVE_RECURSE
  "libthresher_android.a"
)
