file(REMOVE_RECURSE
  "CMakeFiles/thresher_android.dir/AndroidModel.cpp.o"
  "CMakeFiles/thresher_android.dir/AndroidModel.cpp.o.d"
  "CMakeFiles/thresher_android.dir/Benchmarks.cpp.o"
  "CMakeFiles/thresher_android.dir/Benchmarks.cpp.o.d"
  "libthresher_android.a"
  "libthresher_android.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thresher_android.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
