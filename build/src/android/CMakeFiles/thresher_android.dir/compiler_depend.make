# Empty compiler generated dependencies file for thresher_android.
# This may be replaced when dependencies are built.
