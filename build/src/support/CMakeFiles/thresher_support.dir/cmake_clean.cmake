file(REMOVE_RECURSE
  "CMakeFiles/thresher_support.dir/Stats.cpp.o"
  "CMakeFiles/thresher_support.dir/Stats.cpp.o.d"
  "CMakeFiles/thresher_support.dir/StringPool.cpp.o"
  "CMakeFiles/thresher_support.dir/StringPool.cpp.o.d"
  "CMakeFiles/thresher_support.dir/Timer.cpp.o"
  "CMakeFiles/thresher_support.dir/Timer.cpp.o.d"
  "CMakeFiles/thresher_support.dir/UnionFind.cpp.o"
  "CMakeFiles/thresher_support.dir/UnionFind.cpp.o.d"
  "libthresher_support.a"
  "libthresher_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thresher_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
