# Empty dependencies file for thresher_support.
# This may be replaced when dependencies are built.
