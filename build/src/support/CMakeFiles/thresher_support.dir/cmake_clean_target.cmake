file(REMOVE_RECURSE
  "libthresher_support.a"
)
