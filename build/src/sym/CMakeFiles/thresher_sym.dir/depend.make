# Empty dependencies file for thresher_sym.
# This may be replaced when dependencies are built.
