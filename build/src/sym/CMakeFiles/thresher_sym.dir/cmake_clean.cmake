file(REMOVE_RECURSE
  "CMakeFiles/thresher_sym.dir/Query.cpp.o"
  "CMakeFiles/thresher_sym.dir/Query.cpp.o.d"
  "CMakeFiles/thresher_sym.dir/WitnessSearch.cpp.o"
  "CMakeFiles/thresher_sym.dir/WitnessSearch.cpp.o.d"
  "libthresher_sym.a"
  "libthresher_sym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thresher_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
