file(REMOVE_RECURSE
  "libthresher_sym.a"
)
