file(REMOVE_RECURSE
  "CMakeFiles/thresher_leak.dir/LeakChecker.cpp.o"
  "CMakeFiles/thresher_leak.dir/LeakChecker.cpp.o.d"
  "CMakeFiles/thresher_leak.dir/ReachabilityAssert.cpp.o"
  "CMakeFiles/thresher_leak.dir/ReachabilityAssert.cpp.o.d"
  "libthresher_leak.a"
  "libthresher_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thresher_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
