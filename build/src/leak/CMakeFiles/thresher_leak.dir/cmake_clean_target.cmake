file(REMOVE_RECURSE
  "libthresher_leak.a"
)
