# Empty compiler generated dependencies file for thresher_leak.
# This may be replaced when dependencies are built.
