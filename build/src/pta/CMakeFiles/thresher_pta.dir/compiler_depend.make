# Empty compiler generated dependencies file for thresher_pta.
# This may be replaced when dependencies are built.
