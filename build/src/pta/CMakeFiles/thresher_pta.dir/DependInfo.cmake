
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pta/AbsLoc.cpp" "src/pta/CMakeFiles/thresher_pta.dir/AbsLoc.cpp.o" "gcc" "src/pta/CMakeFiles/thresher_pta.dir/AbsLoc.cpp.o.d"
  "/root/repo/src/pta/GraphExport.cpp" "src/pta/CMakeFiles/thresher_pta.dir/GraphExport.cpp.o" "gcc" "src/pta/CMakeFiles/thresher_pta.dir/GraphExport.cpp.o.d"
  "/root/repo/src/pta/PointsTo.cpp" "src/pta/CMakeFiles/thresher_pta.dir/PointsTo.cpp.o" "gcc" "src/pta/CMakeFiles/thresher_pta.dir/PointsTo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/thresher_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/thresher_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
