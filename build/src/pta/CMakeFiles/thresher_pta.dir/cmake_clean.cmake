file(REMOVE_RECURSE
  "CMakeFiles/thresher_pta.dir/AbsLoc.cpp.o"
  "CMakeFiles/thresher_pta.dir/AbsLoc.cpp.o.d"
  "CMakeFiles/thresher_pta.dir/GraphExport.cpp.o"
  "CMakeFiles/thresher_pta.dir/GraphExport.cpp.o.d"
  "CMakeFiles/thresher_pta.dir/PointsTo.cpp.o"
  "CMakeFiles/thresher_pta.dir/PointsTo.cpp.o.d"
  "libthresher_pta.a"
  "libthresher_pta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thresher_pta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
