file(REMOVE_RECURSE
  "libthresher_pta.a"
)
