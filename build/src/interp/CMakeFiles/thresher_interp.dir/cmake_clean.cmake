file(REMOVE_RECURSE
  "CMakeFiles/thresher_interp.dir/Interp.cpp.o"
  "CMakeFiles/thresher_interp.dir/Interp.cpp.o.d"
  "libthresher_interp.a"
  "libthresher_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thresher_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
