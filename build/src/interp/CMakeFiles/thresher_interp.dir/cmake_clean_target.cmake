file(REMOVE_RECURSE
  "libthresher_interp.a"
)
