# Empty dependencies file for thresher_interp.
# This may be replaced when dependencies are built.
