file(REMOVE_RECURSE
  "CMakeFiles/thresher_ir.dir/Function.cpp.o"
  "CMakeFiles/thresher_ir.dir/Function.cpp.o.d"
  "CMakeFiles/thresher_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/thresher_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/thresher_ir.dir/Printer.cpp.o"
  "CMakeFiles/thresher_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/thresher_ir.dir/Program.cpp.o"
  "CMakeFiles/thresher_ir.dir/Program.cpp.o.d"
  "CMakeFiles/thresher_ir.dir/Verifier.cpp.o"
  "CMakeFiles/thresher_ir.dir/Verifier.cpp.o.d"
  "libthresher_ir.a"
  "libthresher_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thresher_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
