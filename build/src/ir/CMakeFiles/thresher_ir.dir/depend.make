# Empty dependencies file for thresher_ir.
# This may be replaced when dependencies are built.
