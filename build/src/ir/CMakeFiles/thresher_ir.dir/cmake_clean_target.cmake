file(REMOVE_RECURSE
  "libthresher_ir.a"
)
