file(REMOVE_RECURSE
  "CMakeFiles/leak_scan.dir/leak_scan.cpp.o"
  "CMakeFiles/leak_scan.dir/leak_scan.cpp.o.d"
  "leak_scan"
  "leak_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leak_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
