# Empty compiler generated dependencies file for leak_scan.
# This may be replaced when dependencies are built.
