# Empty compiler generated dependencies file for singleton_leak.
# This may be replaced when dependencies are built.
