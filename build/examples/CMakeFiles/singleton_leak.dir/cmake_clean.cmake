file(REMOVE_RECURSE
  "CMakeFiles/singleton_leak.dir/singleton_leak.cpp.o"
  "CMakeFiles/singleton_leak.dir/singleton_leak.cpp.o.d"
  "singleton_leak"
  "singleton_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/singleton_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
