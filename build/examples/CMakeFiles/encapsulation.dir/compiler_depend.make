# Empty compiler generated dependencies file for encapsulation.
# This may be replaced when dependencies are built.
