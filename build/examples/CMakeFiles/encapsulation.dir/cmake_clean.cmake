file(REMOVE_RECURSE
  "CMakeFiles/encapsulation.dir/encapsulation.cpp.o"
  "CMakeFiles/encapsulation.dir/encapsulation.cpp.o.d"
  "encapsulation"
  "encapsulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encapsulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
