# Empty dependencies file for vec_null_object.
# This may be replaced when dependencies are built.
