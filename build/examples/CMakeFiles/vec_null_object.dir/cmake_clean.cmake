file(REMOVE_RECURSE
  "CMakeFiles/vec_null_object.dir/vec_null_object.cpp.o"
  "CMakeFiles/vec_null_object.dir/vec_null_object.cpp.o.d"
  "vec_null_object"
  "vec_null_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vec_null_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
