# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/pta_test[1]_include.cmake")
include("/root/repo/build/tests/sym_test[1]_include.cmake")
include("/root/repo/build/tests/sym_transfer_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/leak_test[1]_include.cmake")
include("/root/repo/build/tests/reachability_test[1]_include.cmake")
include("/root/repo/build/tests/android_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
