file(REMOVE_RECURSE
  "CMakeFiles/leak_test.dir/leak_test.cpp.o"
  "CMakeFiles/leak_test.dir/leak_test.cpp.o.d"
  "leak_test"
  "leak_test.pdb"
  "leak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
