file(REMOVE_RECURSE
  "CMakeFiles/sym_transfer_test.dir/sym_transfer_test.cpp.o"
  "CMakeFiles/sym_transfer_test.dir/sym_transfer_test.cpp.o.d"
  "sym_transfer_test"
  "sym_transfer_test.pdb"
  "sym_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sym_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
