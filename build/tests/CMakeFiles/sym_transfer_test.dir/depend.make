# Empty dependencies file for sym_transfer_test.
# This may be replaced when dependencies are built.
