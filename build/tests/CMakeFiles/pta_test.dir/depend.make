# Empty dependencies file for pta_test.
# This may be replaced when dependencies are built.
