file(REMOVE_RECURSE
  "CMakeFiles/pta_test.dir/pta_test.cpp.o"
  "CMakeFiles/pta_test.dir/pta_test.cpp.o.d"
  "pta_test"
  "pta_test.pdb"
  "pta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
