# Empty compiler generated dependencies file for thresher.
# This may be replaced when dependencies are built.
