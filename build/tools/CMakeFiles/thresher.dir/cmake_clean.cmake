file(REMOVE_RECURSE
  "CMakeFiles/thresher.dir/thresher.cpp.o"
  "CMakeFiles/thresher.dir/thresher.cpp.o.d"
  "thresher"
  "thresher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thresher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
