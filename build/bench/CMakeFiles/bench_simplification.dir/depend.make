# Empty dependencies file for bench_simplification.
# This may be replaced when dependencies are built.
