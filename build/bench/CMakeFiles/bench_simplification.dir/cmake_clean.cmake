file(REMOVE_RECURSE
  "CMakeFiles/bench_simplification.dir/bench_simplification.cpp.o"
  "CMakeFiles/bench_simplification.dir/bench_simplification.cpp.o.d"
  "bench_simplification"
  "bench_simplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
