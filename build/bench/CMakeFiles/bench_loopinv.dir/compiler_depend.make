# Empty compiler generated dependencies file for bench_loopinv.
# This may be replaced when dependencies are built.
