file(REMOVE_RECURSE
  "CMakeFiles/bench_loopinv.dir/bench_loopinv.cpp.o"
  "CMakeFiles/bench_loopinv.dir/bench_loopinv.cpp.o.d"
  "bench_loopinv"
  "bench_loopinv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loopinv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
