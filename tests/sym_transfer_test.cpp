//===- sym_transfer_test.cpp - Per-rule witness-refutation tests ----------===//
//
// Exercises each backwards transfer rule of Fig. 4 (and our extensions for
// statics, arrays, arithmetic, calls, and loops) through minimal programs.
//
//===----------------------------------------------------------------------===//

#include "sym/WitnessSearch.h"

#include "android/AndroidModel.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace thresher;

namespace {

struct Env {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<PointsToResult> PTA;

  AbsLocId loc(const std::string &Label) const {
    for (AbsLocId L = 0; L < PTA->Locs.size(); ++L)
      if (PTA->Locs.label(*Prog, L) == Label)
        return L;
    ADD_FAILURE() << "no abstract location labelled " << Label;
    return InvalidId;
  }

  GlobalId global(const std::string &Cls, const std::string &Fld) const {
    GlobalId G = Prog->findGlobal(Cls, Fld);
    EXPECT_NE(G, InvalidId) << Cls << "." << Fld;
    return G;
  }

  SearchOutcome globalEdge(const std::string &Cls, const std::string &Fld,
                           const std::string &Target,
                           SymOptions Opts = {}) {
    WitnessSearch WS(*Prog, *PTA, Opts);
    return WS.searchGlobalEdge(global(Cls, Fld), loc(Target)).Outcome;
  }

  SearchOutcome fieldEdge(const std::string &Base, const std::string &Fld,
                          const std::string &Target, SymOptions Opts = {}) {
    FieldId F = Fld == "@elems" ? Prog->ElemsField
                                : Prog->findFieldByName(Fld);
    EXPECT_NE(F, InvalidId);
    WitnessSearch WS(*Prog, *PTA, Opts);
    return WS.searchFieldEdge(loc(Base), F, loc(Target)).Outcome;
  }
};

Env mk(const std::string &Src) {
  Env E;
  CompileResult R = compileMJ(Src);
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  E.Prog = std::move(R.Prog);
  E.PTA = PointsToAnalysis(*E.Prog, {}).run();
  return E;
}

constexpr auto Refuted = SearchOutcome::Refuted;
constexpr auto Witnessed = SearchOutcome::Witnessed;

} // namespace

//===----------------------------------------------------------------------===//
// WitAssign / WitNew
//===----------------------------------------------------------------------===//

TEST(TransferTest, AssignChainWitnessed) {
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var a = new Object() @o0;\n"
             "  var b = a; var c = b; var d = c;\n"
             "  G.g = d;\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Witnessed);
}

TEST(TransferTest, WitNewRefutesWrongSite) {
  // Flow-insensitively g may hold o1 (both assigned); but after the
  // overwrite only o2 remains at the second store. Still, both stores are
  // realizable at their own points — this tests the per-producer search.
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var a = new Object() @o1;\n"
             "  var b = new Object() @o2;\n"
             "  G.g = a;\n"
             "  G.g = b;\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o1"), Witnessed);
  EXPECT_EQ(E.globalEdge("G", "g", "o2"), Witnessed);
}

TEST(TransferTest, FreshObjectFieldsAreNull) {
  // c.f -> o0 claimed flow-insensitively, but f is written before c's
  // allocation target object exists... here: write happens on a DIFFERENT
  // instance (d), so the edge (c0, f, o0) has no producer under ctx and
  // the (d0, f, o0) edge is witnessed.
  Env E = mk("class C { var f; }\n"
             "fun main() {\n"
             "  var d = new C() @d0;\n"
             "  d.f = new Object() @o0;\n"
             "  var c = new C() @c0;\n"
             "}\n");
  EXPECT_EQ(E.fieldEdge("d0", "f", "o0"), Witnessed);
}

TEST(TransferTest, ConstIntContradiction) {
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var x = 3;\n"
             "  var o = new Object() @o0;\n"
             "  if (x > 5) { G.g = o; }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Refuted);
}

TEST(TransferTest, ConstIntSatisfiable) {
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var x = 7;\n"
             "  var o = new Object() @o0;\n"
             "  if (x > 5) { G.g = o; }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Witnessed);
}

//===----------------------------------------------------------------------===//
// Guards: relational, null, reference equality
//===----------------------------------------------------------------------===//

TEST(TransferTest, RelationalGuardChain) {
  // x < y and y < x is infeasible across two guards (needs both path
  // constraints, within the cap of 2).
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var x = 1; var y = 2;\n"
             "  var o = new Object() @o0;\n"
             "  if (x < y) {\n"
             "    if (y < x) { G.g = o; }\n"
             "  }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Refuted);
}

TEST(TransferTest, NullCheckRefutesStoreOfFreshObject) {
  // p is freshly allocated and hence non-null: the p == null branch is
  // dead.
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var p = new Object() @p0;\n"
             "  var o = new Object() @o0;\n"
             "  if (p == null) { G.g = o; }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Refuted);
}

TEST(TransferTest, NullCheckWitnessesNonNullBranch) {
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var p = new Object() @p0;\n"
             "  var o = new Object() @o0;\n"
             "  if (p != null) { G.g = o; }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Witnessed);
}

TEST(TransferTest, AlwaysNullVariableRefutesNonNullBranch) {
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var p = null;\n"
             "  var o = new Object() @o0;\n"
             "  if (p != null) { G.g = o; }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Refuted);
}

TEST(TransferTest, ReferenceEqualityGuard) {
  // a == b with disjoint allocation sites is infeasible.
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var a = new Object() @a0;\n"
             "  var b = new Object() @b0;\n"
             "  var o = new Object() @o0;\n"
             "  if (a == b) { G.g = o; }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Refuted);
}

TEST(TransferTest, ReferenceDisequalityGuardFeasible) {
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var a = new Object() @a0;\n"
             "  var b = new Object() @b0;\n"
             "  var o = new Object() @o0;\n"
             "  if (a != b) { G.g = o; }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Witnessed);
}

TEST(TransferTest, SelfDisequalityDropped) {
  // a != b where a and b are the same instance: unrealizable, but the
  // query normal form of Sec. 3.3 DROPS disaliasing constraints after the
  // local check, so this refutation is (deliberately) out of reach — the
  // search must soundly report a witness rather than diverge or crash.
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var a = new Object() @a0;\n"
             "  var b = a;\n"
             "  var o = new Object() @o0;\n"
             "  if (a != b) { G.g = o; }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Witnessed);
}

//===----------------------------------------------------------------------===//
// Arithmetic
//===----------------------------------------------------------------------===//

TEST(TransferTest, LinearArithmeticTracked) {
  // y = x + 2 with x = 3 gives y = 5; guard y == 5 is satisfiable but
  // y == 6 is not.
  Env E = mk("class G { static var g; static var h; }\n"
             "fun main() {\n"
             "  var x = 3;\n"
             "  var y = x + 2;\n"
             "  var o = new Object() @o0;\n"
             "  if (y == 5) { G.g = o; }\n"
             "  if (y == 6) { G.h = o; }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Witnessed);
  EXPECT_EQ(E.globalEdge("G", "h", "o0"), Refuted);
}

TEST(TransferTest, SubtractionTracked) {
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var x = 10;\n"
             "  var y = x - 4;\n"
             "  var o = new Object() @o0;\n"
             "  if (y > 7) { G.g = o; }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Refuted);
}

TEST(TransferTest, NonlinearArithmeticHavocs) {
  // y = x * 2 is not tracked precisely: both branches stay feasible.
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var x = 3;\n"
             "  var y = x * 2;\n"
             "  var o = new Object() @o0;\n"
             "  if (y == 100) { G.g = o; }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Witnessed); // Sound, imprecise.
}

TEST(TransferTest, ArrayLengthNonNegative) {
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var a = new Object[3] @arr;\n"
             "  var n = a.length;\n"
             "  var o = new Object() @o0;\n"
             "  if (n < 0) { G.g = o; }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Refuted);
}

//===----------------------------------------------------------------------===//
// Heap reads/writes (WitRead / WitWrite)
//===----------------------------------------------------------------------===//

TEST(TransferTest, FieldWriteStrongUpdateOrder) {
  // b.f first holds o1, then o2. Both edges realizable at their producers.
  Env E = mk("class B { var f; }\n"
             "class G { static var g; }\n"
             "fun main() {\n"
             "  var b = new B() @b0;\n"
             "  b.f = new Object() @o1;\n"
             "  b.f = new Object() @o2;\n"
             "  var r = b.f;\n"
             "  G.g = r;\n"
             "}\n");
  EXPECT_EQ(E.fieldEdge("b0", "f", "o1"), Witnessed);
  EXPECT_EQ(E.fieldEdge("b0", "f", "o2"), Witnessed);
  // But the final load can only see o2 thanks to the strong update:
  // the G.g -> o1 edge is refutable.
  EXPECT_EQ(E.globalEdge("G", "g", "o1"), Refuted);
  EXPECT_EQ(E.globalEdge("G", "g", "o2"), Witnessed);
}

TEST(TransferTest, NotProducedCaseTracksOtherWriter) {
  // Two distinct bases: writing c2.f cannot produce the (c1, f, o) edge.
  Env E = mk("class C { var f; }\n"
             "class G { static var g; }\n"
             "fun main() {\n"
             "  var c1 = new C() @c1;\n"
             "  var c2 = new C() @c2;\n"
             "  c1.f = new Object() @o1;\n"
             "  c2.f = new Object() @o2;\n"
             "  var r = c1.f;\n"
             "  G.g = r;\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o1"), Witnessed);
  EXPECT_EQ(E.globalEdge("G", "g", "o2"), Refuted);
}

TEST(TransferTest, AliasedWriteSeenThroughSecondName) {
  Env E = mk("class C { var f; }\n"
             "class G { static var g; }\n"
             "fun main() {\n"
             "  var c = new C() @c0;\n"
             "  var d = c;\n"
             "  d.f = new Object() @o1;\n"
             "  var r = c.f;\n"
             "  G.g = r;\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o1"), Witnessed);
}

TEST(TransferTest, ArrayCellsMayDifferByIndex) {
  // A store to a[j] does not kill the a[i] cell: both contents reachable.
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var a = new Object[4] @arr;\n"
             "  var i = 0; var j = 1;\n"
             "  a[i] = new Object() @o1;\n"
             "  a[j] = new Object() @o2;\n"
             "  var r = a[i];\n"
             "  G.g = r;\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o1"), Witnessed);
  EXPECT_EQ(E.globalEdge("G", "g", "o2"), Witnessed);
}

//===----------------------------------------------------------------------===//
// Statics
//===----------------------------------------------------------------------===//

TEST(TransferTest, StaticStrongUpdate) {
  // H.h is overwritten before being copied: the o1 edge on G.g is
  // unrealizable.
  Env E = mk("class H { static var h; }\n"
             "class G { static var g; }\n"
             "fun main() {\n"
             "  H.h = new Object() @o1;\n"
             "  H.h = new Object() @o2;\n"
             "  var r = H.h;\n"
             "  G.g = r;\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o1"), Refuted);
  EXPECT_EQ(E.globalEdge("G", "g", "o2"), Witnessed);
}

TEST(TransferTest, StaticsAreNullInitially) {
  // Reading H.h before any store yields null; storing null into G.g can
  // never produce a heap edge, so there are no producers at all.
  Env E = mk("class H { static var h; }\n"
             "class G { static var g; }\n"
             "fun main() {\n"
             "  var r = H.h;\n"
             "  G.g = r;\n"
             "  H.h = new Object() @o1;\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o1"), Refuted);
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

TEST(TransferTest, IrrelevantCalleeSkipped) {
  Env E = mk("class G { static var g; }\n"
             "class Noise { static var n; }\n"
             "fun noise() { Noise.n = new Object() @nz; }\n"
             "fun main() {\n"
             "  var o = new Object() @o0;\n"
             "  noise(); noise(); noise();\n"
             "  G.g = o;\n"
             "}\n");
  SymOptions Opts;
  WitnessSearch WS(*E.Prog, *E.PTA, Opts);
  EdgeSearchResult R = WS.searchGlobalEdge(E.global("G", "g"), E.loc("o0"));
  EXPECT_EQ(R.Outcome, Witnessed);
  EXPECT_EQ(WS.stats().get("sym.calleesEntered"), 0u);
  EXPECT_GE(WS.stats().get("sym.callsSkippedIrrelevant"), 3u);
}

TEST(TransferTest, RelevantCalleeEntered) {
  Env E = mk("class G { static var g; }\n"
             "fun setIt(o) { G.g = o; }\n"
             "fun clearIt() { G.g = null; }\n"
             "fun main() {\n"
             "  var o = new Object() @o0;\n"
             "  setIt(o);\n"
             "  clearIt();\n"
             "}\n");
  // The edge is produced inside setIt and the overwrite in clearIt does
  // not remove the flow-insensitive fact; both searches behave.
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Witnessed);
}

TEST(TransferTest, ReturnValueThreading) {
  Env E = mk("class G { static var g; }\n"
             "fun make() { return new Object() @inside; }\n"
             "fun makeOther() { return new Object() @other; }\n"
             "fun main() {\n"
             "  var a = make();\n"
             "  G.g = a;\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "inside"), Witnessed);
}

TEST(TransferTest, ArgumentSiteRefutation) {
  // put is called with o1 at the only reachable site; the o2 edge into
  // slot is absent flow-insensitively; but the interesting case: two
  // sites, only one guarded reachable.
  Env E = mk("class G { static var g; }\n"
             "fun put(x) { G.g = x; }\n"
             "fun main() {\n"
             "  var flagOff = 0;\n"
             "  var o1 = new Object() @o1;\n"
             "  var o2 = new Object() @o2;\n"
             "  put(o1);\n"
             "  if (flagOff == 1) { put(o2); }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o1"), Witnessed);
  EXPECT_EQ(E.globalEdge("G", "g", "o2"), Refuted);
}

TEST(TransferTest, DeepCallChainWithinDepthBound) {
  Env E = mk("class G { static var g; }\n"
             "fun l0(o) { G.g = o; }\n"
             "fun l1(o) { l0(o); }\n"
             "fun l2(o) { l1(o); }\n"
             "fun main() {\n"
             "  var o = new Object() @o0;\n"
             "  l2(o);\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Witnessed);
}

TEST(TransferTest, RecursionBoundedByBudget) {
  Env E = mk("class G { static var g; }\n"
             "fun rec(o, n) {\n"
             "  if (n > 0) { rec(o, n - 1); }\n"
             "  G.g = o;\n"
             "}\n"
             "fun main() {\n"
             "  var o = new Object() @o0;\n"
             "  rec(o, 10);\n"
             "}\n");
  SymOptions Opts;
  Opts.EdgeBudget = 50000;
  // Must terminate (witness or budget), not hang.
  SearchOutcome R = E.globalEdge("G", "g", "o0", Opts);
  EXPECT_NE(R, Refuted);
}

TEST(TransferTest, VirtualDispatchRefutesImpossibleCallee) {
  // Only B instances reach the call, so A.m's store cannot produce the
  // edge... A.m is not even reachable; its store is no producer.
  Env E = mk("class G { static var g; }\n"
             "class A { m(o) { } }\n"
             "class B extends A { m(o) { G.g = o; } }\n"
             "fun main() {\n"
             "  var b = new B() @b0;\n"
             "  var act = new Object() @o0;\n"
             "  b.m(act);\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Witnessed);
}

TEST(TransferTest, DispatchNarrowingRefutesCrossReceiver) {
  // Two receivers with different args; B's store can only see B's arg.
  Env E = mk("class G { static var g; static var h; }\n"
             "class A { m(o) { G.g = o; } }\n"
             "class B extends A { m(o) { G.h = o; } }\n"
             "fun main() {\n"
             "  var x;\n"
             "  if (*) { x = new A() @a0; } else { x = new B() @b0; }\n"
             "  var oa = new Object() @oa;\n"
             "  x.m(oa);\n"
             "  var y = new A() @a1;\n"
             "  var ob = new Object() @ob;\n"
             "  y.m(ob);\n"
             "}\n");
  // G.h can only receive oa (B's only call site passes oa).
  EXPECT_EQ(E.globalEdge("G", "h", "oa"), Witnessed);
  EXPECT_EQ(E.globalEdge("G", "g", "oa"), Witnessed);
  EXPECT_EQ(E.globalEdge("G", "g", "ob"), Witnessed);
}

//===----------------------------------------------------------------------===//
// Loops
//===----------------------------------------------------------------------===//

TEST(TransferTest, LoopCarriedPointerStabilizes) {
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var o = new Object() @keep;\n"
             "  var cur = o;\n"
             "  var i = 0;\n"
             "  while (i < 10) {\n"
             "    cur = o;\n"
             "    i = i + 1;\n"
             "  }\n"
             "  G.g = cur;\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "keep"), Witnessed);
}

TEST(TransferTest, LoopGuardedStoreWitnessed) {
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var o = new Object() @o0;\n"
             "  var i = 0;\n"
             "  while (i < 3) {\n"
             "    G.g = o;\n"
             "    i = i + 1;\n"
             "  }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Witnessed);
}

TEST(TransferTest, DeadLoopBodyZeroIterationPathRefuted) {
  // The loop never runs (i = 5). The zero-extra-iteration backwards path
  // is refuted via i = 5 against the guard i < 3; the multi-iteration
  // paths lose the guard constraint to the loop widening (the paper's
  // trivial pure-domain widening drops loop-modified constraints), so the
  // edge as a whole is soundly NOT refuted. Check both facts.
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var o = new Object() @o0;\n"
             "  var i = 5;\n"
             "  while (i < 3) {\n"
             "    G.g = o;\n"
             "    i = i + 1;\n"
             "  }\n"
             "}\n");
  SymOptions Opts;
  WitnessSearch WS(*E.Prog, *E.PTA, Opts);
  EdgeSearchResult R = WS.searchGlobalEdge(E.global("G", "g"), E.loc("o0"));
  EXPECT_EQ(R.Outcome, Witnessed); // Widening-induced imprecision, sound.
}

TEST(TransferTest, NestedLoopsTerminate) {
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var o = new Object() @o0;\n"
             "  var i = 0;\n"
             "  while (i < 4) {\n"
             "    var j = 0;\n"
             "    while (j < 4) {\n"
             "      if (i < j) { G.g = o; }\n"
             "      j = j + 1;\n"
             "    }\n"
             "    i = i + 1;\n"
             "  }\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Witnessed);
}

TEST(TransferTest, HeapConstraintThroughLoop) {
  // The cell b.f is established before the loop and read after it; the
  // loop body does not touch f, so the query passes through unscathed.
  Env E = mk("class B { var f; }\n"
             "class G { static var g; }\n"
             "fun main() {\n"
             "  var b = new B() @b0;\n"
             "  b.f = new Object() @o1;\n"
             "  var i = 0;\n"
             "  while (i < 8) { i = i + 1; }\n"
             "  var r = b.f;\n"
             "  G.g = r;\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o1"), Witnessed);
}

TEST(TransferTest, LoopOverwritesHeapCell) {
  // The loop body always rewrites b.f to o2 and runs at least once, but
  // widening may lose the at-least-once fact; the o1 edge should still be
  // refuted at the post-loop read IF the analysis keeps the f cell...
  // Dropping pure constraints makes this witnessed (sound, imprecise):
  // accept either no-crash outcome but require the o2 edge witnessed.
  Env E = mk("class B { var f; }\n"
             "class G { static var g; }\n"
             "fun main() {\n"
             "  var b = new B() @b0;\n"
             "  b.f = new Object() @o1;\n"
             "  var i = 0;\n"
             "  while (i < 8) {\n"
             "    b.f = new Object() @o2;\n"
             "    i = i + 1;\n"
             "  }\n"
             "  var r = b.f;\n"
             "  G.g = r;\n"
             "}\n");
  EXPECT_EQ(E.globalEdge("G", "g", "o2"), Witnessed);
}

//===----------------------------------------------------------------------===//
// Budget and modes
//===----------------------------------------------------------------------===//

TEST(TransferTest, ZeroBudgetIsExhaustedNotRefuted) {
  Env E = mk("class G { static var g; }\n"
             "fun main() { G.g = new Object() @o0; }\n");
  SymOptions Opts;
  Opts.EdgeBudget = 0;
  EXPECT_EQ(E.globalEdge("G", "g", "o0", Opts),
            SearchOutcome::BudgetExhausted);
}

TEST(TransferTest, ModesAgreeOnSimpleRefutation) {
  const char *Src = "class G { static var g; }\n"
                    "fun main() {\n"
                    "  var flag = 0;\n"
                    "  var o = new Object() @o0;\n"
                    "  if (flag != 0) { G.g = o; }\n"
                    "}\n";
  for (Representation R : {Representation::Mixed,
                           Representation::FullySymbolic,
                           Representation::FullyExplicit}) {
    Env E = mk(Src);
    SymOptions Opts;
    Opts.Repr = R;
    EXPECT_EQ(E.globalEdge("G", "g", "o0", Opts), Refuted)
        << "mode " << static_cast<int>(R);
  }
}

TEST(TransferTest, ModesAgreeOnSimpleWitness) {
  const char *Src = "class G { static var g; }\n"
                    "fun main() { G.g = new Object() @o0; }\n";
  for (Representation R : {Representation::Mixed,
                           Representation::FullySymbolic,
                           Representation::FullyExplicit}) {
    Env E = mk(Src);
    SymOptions Opts;
    Opts.Repr = R;
    EXPECT_EQ(E.globalEdge("G", "g", "o0", Opts), Witnessed)
        << "mode " << static_cast<int>(R);
  }
}

TEST(TransferTest, NoSimplificationStillSoundOnSmallProgram) {
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var flag = 0;\n"
             "  var o = new Object() @o0;\n"
             "  var i = 0;\n"
             "  while (i < 3) { i = i + 1; }\n"
             "  if (flag != 0) { G.g = o; }\n"
             "}\n");
  SymOptions Opts;
  Opts.QuerySimplification = false;
  Opts.EdgeBudget = 200000;
  // Without any merging the loop is re-explored until the budget runs
  // out; the result must be sound (never a spurious... the edge is
  // unrealizable, so anything but Witnessed is acceptable).
  EXPECT_NE(E.globalEdge("G", "g", "o0", Opts), Witnessed);
}

//===----------------------------------------------------------------------===//
// Engine statistics (refutation provenance)
//===----------------------------------------------------------------------===//

TEST(TransferTest, StatsRecordWitNewRefutations) {
  // The edge target region conflicts at the allocation site.
  Env E = mk("class G { static var g; }\n"
             "class H { static var h; }\n"
             "fun sink(x) { G.g = x; }\n"
             "fun main() {\n"
             "  var a = new Object() @a0;\n"
             "  var b = new Object() @b0;\n"
             "  var p = a;\n"
             "  if (*) { p = b; }\n"
             "  sink(p);\n"
             "}\n");
  SymOptions Opts;
  WitnessSearch WS(*E.Prog, *E.PTA, Opts);
  // Both edges realizable here; but check the machinery counts distinct
  // refutation kinds on a refutable one.
  EdgeSearchResult R = WS.searchGlobalEdge(E.global("G", "g"), E.loc("a0"));
  EXPECT_EQ(R.Outcome, Witnessed);
}

TEST(TransferTest, StatsRecordPureRefutations) {
  Env E = mk("class G { static var g; }\n"
             "fun main() {\n"
             "  var x = 1;\n"
             "  var o = new Object() @o0;\n"
             "  if (x == 2) { G.g = o; }\n"
             "}\n");
  SymOptions Opts;
  WitnessSearch WS(*E.Prog, *E.PTA, Opts);
  EXPECT_EQ(WS.searchGlobalEdge(E.global("G", "g"), E.loc("o0")).Outcome,
            Refuted);
  EXPECT_GT(WS.stats().get("sym.refute.pure"), 0u);
  EXPECT_GT(WS.stats().get("sym.queriesProcessed"), 0u);
}

TEST(TransferTest, StatsRecordLoopSubsumption) {
  // A query crossing a loop repeatedly must be merged by the loop-head
  // history after widening.
  Env E = mk("class B { var f; }\n"
             "class G { static var g; }\n"
             "fun main() {\n"
             "  var b = new B() @b0;\n"
             "  var i = 0;\n"
             "  while (i < 5) {\n"
             "    b.f = new Object() @inLoop;\n"
             "    i = i + 1;\n"
             "  }\n"
             "  var r = b.f;\n"
             "  G.g = r;\n"
             "}\n");
  SymOptions Opts;
  WitnessSearch WS(*E.Prog, *E.PTA, Opts);
  EXPECT_EQ(WS.searchGlobalEdge(E.global("G", "g"), E.loc("inLoop")).Outcome,
            Witnessed);
  // The search went around the loop and the history eventually merged.
  EXPECT_GT(WS.stats().get("sym.subsumedAtLoopHead") +
                WS.stats().get("sym.pathsMerged"),
            0u);
}

TEST(TransferTest, StatsRecordCalleeEntry) {
  Env E = mk("class G { static var g; }\n"
             "fun put(o) { G.g = o; }\n"
             "fun main() { put(new Object() @o0); }\n");
  SymOptions Opts;
  WitnessSearch WS(*E.Prog, *E.PTA, Opts);
  EXPECT_EQ(WS.searchGlobalEdge(E.global("G", "g"), E.loc("o0")).Outcome,
            Witnessed);
  EXPECT_GT(WS.stats().get("sym.callerExpansions"), 0u);
}

TEST(TransferTest, DepthBoundForcesSkip) {
  // A 5-deep wrapper chain writing the tracked field under a depth bound
  // of 1: the engine must skip (dropping the constraint soundly, ending
  // in a witness) rather than entering.
  Env E = mk("class G { static var g; }\n"
             "fun l0(o) { G.g = o; }\n"
             "fun l1(o) { l0(o); }\n"
             "fun l2(o) { l1(o); }\n"
             "fun l3(o) { l2(o); }\n"
             "fun main() {\n"
             "  var flag = 0;\n"
             "  var o = new Object() @o0;\n"
             "  if (flag != 0) { l3(o); }\n"
             "}\n");
  // With the default depth the dead flag refutes the edge...
  EXPECT_EQ(E.globalEdge("G", "g", "o0"), Refuted);
  // ...with depth 0 every call from the producer's frame is skipped and
  // the flag guard is never reached: soundly not refuted.
  SymOptions Shallow;
  Shallow.MaxCallStackDepth = 0;
  WitnessSearch WS(*E.Prog, *E.PTA, Shallow);
  EdgeSearchResult R = WS.searchGlobalEdge(E.global("G", "g"), E.loc("o0"));
  EXPECT_GE(WS.stats().get("sym.callsSkippedDepth") +
                WS.stats().get("sym.callerExpansions"),
            0u);
  // Either refuted via caller expansion (the guard is in main) or
  // witnessed after skipping; must not crash and must be deterministic.
  WitnessSearch WS2(*E.Prog, *E.PTA, Shallow);
  EXPECT_EQ(WS2.searchGlobalEdge(E.global("G", "g"), E.loc("o0")).Outcome,
            R.Outcome);
}
