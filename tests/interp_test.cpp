//===- interp_test.cpp - Concrete interpreter tests -----------------------===//

#include "interp/Interp.h"

#include "TestPrograms.h"
#include "android/AndroidModel.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

#include <random>

using namespace thresher;

namespace {

std::unique_ptr<Program> compileOk(const std::string &Src) {
  CompileResult R = compileMJ(Src);
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  return std::move(R.Prog);
}

} // namespace

TEST(InterpTest, ArithmeticAndControlFlow) {
  auto P = compileOk("class Box { var v; }\n"
                     "fun main() {\n"
                     "  var sum = 0;\n"
                     "  var i = 0;\n"
                     "  while (i < 10) { sum = sum + i; i = i + 1; }\n"
                     "  var b = new Box() @b0;\n"
                     "  if (sum == 45) { b.v = b; }\n"
                     "}\n");
  Interpreter I(*P);
  InterpResult R = I.run();
  EXPECT_TRUE(R.Completed) << R.Error;
  // The field write must have happened (sum == 45).
  bool SawWrite = false;
  for (const WriteEvent &E : R.Writes)
    if (!E.IsStatic)
      SawWrite = true;
  EXPECT_TRUE(SawWrite);
}

TEST(InterpTest, VirtualDispatch) {
  auto P = compileOk("class A { m() { return 1; } }\n"
                     "class B extends A { m() { return 2; } }\n"
                     "class Out { static var r; }\n"
                     "fun main() {\n"
                     "  var a = new A() @a0;\n"
                     "  var b = new B() @b0;\n"
                     "  var x = a.m();\n"
                     "  var y = b.m();\n"
                     "  if (x == 1 && y == 2) { Out.r = b; }\n"
                     "}\n");
  Interpreter I(*P);
  InterpResult R = I.run();
  ASSERT_TRUE(R.Completed) << R.Error;
  GlobalId G = P->findGlobal("Out", "r");
  ASSERT_NE(G, InvalidId);
  EXPECT_TRUE(I.globals()[G].isRef());
}

TEST(InterpTest, NullDereferenceFails) {
  auto P = compileOk("class C { var f; }\n"
                     "fun main() { var c = null; var x = c.f; }\n");
  Interpreter I(*P);
  InterpResult R = I.run();
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("null dereference"), std::string::npos);
}

TEST(InterpTest, ArraysAndBounds) {
  auto P = compileOk("fun main() {\n"
                     "  var a = new Object[3] @arr;\n"
                     "  var i = 0;\n"
                     "  while (i < a.length) { a[i] = a; i = i + 1; }\n"
                     "}\n");
  Interpreter I(*P);
  InterpResult R = I.run();
  EXPECT_TRUE(R.Completed) << R.Error;

  auto P2 = compileOk("fun main() {\n"
                      "  var a = new Object[2] @arr;\n"
                      "  a[5] = a;\n"
                      "}\n");
  Interpreter I2(*P2);
  InterpResult R2 = I2.run();
  EXPECT_FALSE(R2.Completed);
  EXPECT_NE(R2.Error.find("out of bounds"), std::string::npos);
}

TEST(InterpTest, HavocDrivesNondeterminism) {
  auto P = compileOk("class Out { static var hit; }\n"
                     "fun main() {\n"
                     "  if (*) { Out.hit = new Object() @o0; }\n"
                     "}\n");
  GlobalId G = P->findGlobal("Out", "hit");
  // Havoc == 0 takes the then-branch (condition is $nd == 0).
  {
    InterpOptions O;
    O.HavocProvider = []() { return 0; };
    Interpreter I(*P, O);
    ASSERT_TRUE(I.run().Completed);
    EXPECT_TRUE(I.globals()[G].isRef());
  }
  {
    InterpOptions O;
    O.HavocProvider = []() { return 1; };
    Interpreter I(*P, O);
    ASSERT_TRUE(I.run().Completed);
    EXPECT_TRUE(I.globals()[G].isNull());
  }
}

TEST(InterpTest, StepBudgetStopsInfiniteLoops) {
  auto P = compileOk("fun main() { var i = 0; while (i < 1) { i = 0; } }\n");
  InterpOptions O;
  O.MaxSteps = 1000;
  Interpreter I(*P, O);
  InterpResult R = I.run();
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(InterpTest, Figure1NeverLeaksConcretely) {
  // Ground truth for the paper's running example: under every schedule the
  // Activity is never reachable from a static field.
  CompileResult R = compileAndroidApp(testprogs::figure1App());
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  ClassId ActBase = activityBaseClass(*R.Prog);
  std::mt19937 Rng(123);
  for (int Trial = 0; Trial < 20; ++Trial) {
    InterpOptions O;
    O.HavocProvider = [&]() { return static_cast<int64_t>(Rng() % 2); };
    Interpreter I(*R.Prog, O);
    InterpResult Res = I.run();
    ASSERT_TRUE(Res.Completed) << Res.Error;
    EXPECT_FALSE(I.activityReachableFromStatic(ActBase));
  }
}

TEST(InterpTest, Figure5LeaksConcretely) {
  CompileResult R = compileAndroidApp(testprogs::figure5App());
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  ClassId ActBase = activityBaseClass(*R.Prog);
  // Schedule where onCreate runs (both havocs 0 = take then-branches).
  InterpOptions O;
  O.HavocProvider = []() { return 0; };
  Interpreter I(*R.Prog, O);
  ASSERT_TRUE(I.run().Completed);
  EXPECT_TRUE(I.activityReachableFromStatic(ActBase));
  auto Pairs = I.reachableActivities(ActBase);
  ASSERT_FALSE(Pairs.empty());
  EXPECT_EQ(R.Prog->globalName(Pairs[0].first),
            "EmailAddressAdapter.sInstance");
}

TEST(InterpTest, LatentFlagNeverLeaksConcretely) {
  CompileResult R = compileAndroidApp(testprogs::latentFlagApp());
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  ClassId ActBase = activityBaseClass(*R.Prog);
  for (int64_t Choice = 0; Choice < 2; ++Choice) {
    InterpOptions O;
    O.HavocProvider = [&]() { return Choice; };
    Interpreter I(*R.Prog, O);
    ASSERT_TRUE(I.run().Completed);
    EXPECT_FALSE(I.activityReachableFromStatic(ActBase));
  }
}

TEST(InterpTest, WriteEventsRecordAbstractIdentities) {
  auto P = compileOk("class C { var f; }\n"
                     "class S { static var g; }\n"
                     "fun main() {\n"
                     "  var c = new C() @c0;\n"
                     "  var d = new C() @d0;\n"
                     "  c.f = d;\n"
                     "  S.g = c;\n"
                     "}\n");
  Interpreter I(*P);
  InterpResult R = I.run();
  ASSERT_TRUE(R.Completed) << R.Error;
  ASSERT_EQ(R.Writes.size(), 2u);
  EXPECT_FALSE(R.Writes[0].IsStatic);
  EXPECT_EQ(P->allocLabel(R.Writes[0].BaseSite), "c0");
  EXPECT_EQ(P->allocLabel(R.Writes[0].TargetSite), "d0");
  EXPECT_TRUE(R.Writes[1].IsStatic);
  EXPECT_EQ(P->allocLabel(R.Writes[1].TargetSite), "c0");
}

//===----------------------------------------------------------------------===//
// Additional interpreter semantics
//===----------------------------------------------------------------------===//

TEST(InterpTest, SuperConstructorChain) {
  auto P = compileOk("class A { var fa; A(v) { fa = v; } }\n"
                     "class B extends A { var fb; B(v) { super(v); fb = v; "
                     "} }\n"
                     "class Out { static var r; }\n"
                     "fun main() {\n"
                     "  var o = new Object() @o0;\n"
                     "  var b = new B(o) @b0;\n"
                     "  Out.r = b.fa;\n"
                     "}\n");
  Interpreter I(*P);
  ASSERT_TRUE(I.run().Completed);
  GlobalId G = P->findGlobal("Out", "r");
  ASSERT_TRUE(I.globals()[G].isRef());
  EXPECT_EQ(P->allocLabel(I.heap()[I.globals()[G].Obj].Site), "o0");
}

TEST(InterpTest, RecursionWithinDepthBound) {
  auto P = compileOk("class Out { static var n; }\n"
                     "fun count(i) {\n"
                     "  if (i > 0) { count(i - 1); }\n"
                     "  return null;\n"
                     "}\n"
                     "fun main() { count(50); }\n");
  Interpreter I(*P);
  EXPECT_TRUE(I.run().Completed);
}

TEST(InterpTest, RunawayRecursionFailsCleanly) {
  auto P = compileOk("fun spin(x) { spin(x); }\n"
                     "fun main() { spin(null); }\n");
  InterpOptions O;
  O.MaxCallDepth = 100;
  Interpreter I(*P, O);
  InterpResult R = I.run();
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("call depth"), std::string::npos);
}

TEST(InterpTest, DivisionAndRemainder) {
  auto P = compileOk("class Out { static var ok; }\n"
                     "fun main() {\n"
                     "  var a = 17; var b = 5;\n"
                     "  var q = a / b; var r = a % b;\n"
                     "  if (q == 3 && r == 2) { Out.ok = new Object() @y; "
                     "}\n"
                     "}\n");
  Interpreter I(*P);
  ASSERT_TRUE(I.run().Completed);
  EXPECT_TRUE(I.globals()[P->findGlobal("Out", "ok")].isRef());
}

TEST(InterpTest, DivisionByZeroFails) {
  auto P = compileOk("fun main() { var a = 1; var b = 0; var c = a / b; }\n");
  Interpreter I(*P);
  InterpResult R = I.run();
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.Error.find("division by zero"), std::string::npos);
}

TEST(InterpTest, FieldsDefaultToNull) {
  auto P = compileOk("class C { var f; }\n"
                     "class Out { static var isNull; }\n"
                     "fun main() {\n"
                     "  var c = new C() @c0;\n"
                     "  var v = c.f;\n"
                     "  if (v == null) { Out.isNull = c; }\n"
                     "}\n");
  Interpreter I(*P);
  ASSERT_TRUE(I.run().Completed);
  EXPECT_TRUE(I.globals()[P->findGlobal("Out", "isNull")].isRef());
}

TEST(InterpTest, ReferenceEqualitySemantics) {
  auto P = compileOk("class Out { static var same; static var diff; }\n"
                     "fun main() {\n"
                     "  var a = new Object() @a0;\n"
                     "  var b = a;\n"
                     "  var c = new Object() @c0;\n"
                     "  if (a == b) { Out.same = a; }\n"
                     "  if (a != c) { Out.diff = c; }\n"
                     "}\n");
  Interpreter I(*P);
  ASSERT_TRUE(I.run().Completed);
  EXPECT_TRUE(I.globals()[P->findGlobal("Out", "same")].isRef());
  EXPECT_TRUE(I.globals()[P->findGlobal("Out", "diff")].isRef());
}

TEST(InterpTest, NestedLoopExecution) {
  auto P = compileOk("class Out { static var ok; }\n"
                     "fun main() {\n"
                     "  var total = 0;\n"
                     "  var i = 0;\n"
                     "  while (i < 4) {\n"
                     "    var j = 0;\n"
                     "    while (j < 3) { total = total + 1; j = j + 1; }\n"
                     "    i = i + 1;\n"
                     "  }\n"
                     "  if (total == 12) { Out.ok = new Object() @y; }\n"
                     "}\n");
  Interpreter I(*P);
  ASSERT_TRUE(I.run().Completed);
  EXPECT_TRUE(I.globals()[P->findGlobal("Out", "ok")].isRef());
}

TEST(InterpTest, VecLibraryBehaviour) {
  // Push three elements through the resize machinery and read them back.
  CompileResult R = compileAndroidApp(R"MJ(
class Out { static var e0; static var e1; static var e2; }
fun main() {
  var v = new Vec() @v0;
  var a = new Object() @a0;
  var b = new Object() @b0;
  var c = new Object() @c0;
  v.push(a);
  v.push(b);
  v.push(c);
  Out.e0 = v.get(0);
  Out.e1 = v.get(1);
  Out.e2 = v.get(2);
}
)MJ");
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  Interpreter I(*R.Prog);
  InterpResult Res = I.run();
  ASSERT_TRUE(Res.Completed) << Res.Error;
  auto LabelOf = [&](const char *Cls, const char *Fld) {
    GlobalId G = R.Prog->findGlobal(Cls, Fld);
    return R.Prog->allocLabel(I.heap()[I.globals()[G].Obj].Site);
  };
  EXPECT_EQ(LabelOf("Out", "e0"), "a0");
  EXPECT_EQ(LabelOf("Out", "e1"), "b0");
  EXPECT_EQ(LabelOf("Out", "e2"), "c0");
}

TEST(InterpTest, HashMapLibraryBehaviour) {
  CompileResult R = compileAndroidApp(R"MJ(
class Out { static var hit; static var miss; }
fun main() {
  var m = new HashMap() @m0;
  var k = "key";
  var v = new Object() @v0;
  m.put(k, v);
  Out.hit = m.get(k);
  Out.miss = m.get("other");
}
)MJ");
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  Interpreter I(*R.Prog);
  InterpResult Res = I.run();
  ASSERT_TRUE(Res.Completed) << Res.Error;
  GlobalId Hit = R.Prog->findGlobal("Out", "hit");
  GlobalId Miss = R.Prog->findGlobal("Out", "miss");
  ASSERT_TRUE(I.globals()[Hit].isRef());
  EXPECT_EQ(R.Prog->allocLabel(I.heap()[I.globals()[Hit].Obj].Site), "v0");
  EXPECT_TRUE(I.globals()[Miss].isNull());
}
