//===- ablation_test.cpp - Cross-configuration precision invariants -------===//
//
// Exercises the ablation axes of the evaluation (Sec. 2.2 / Sec. 3.3)
// against every points-to edge of every corpus program and checks the
// precision lattice the paper relies on:
//
//  * Mixed refutes a superset of what FullySymbolic refutes: flow-step
//    narrowing only ever adds constraints, so anything the PSE-style
//    configuration kills, the paper's system must kill too.
//
//  * DropAll never refutes an edge FullInference witnesses: dropping every
//    loop-touched constraint over-approximates, so it can lose refutations
//    (that is the hypothesis-3 ablation) but must not invent one.
//
// Violations of either invariant are soundness/precision bugs in the
// engine, not test flakiness: all three configurations are deterministic.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "sym/WitnessSearch.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace thresher;

#ifndef THRESHER_CORPUS_DIR
#error "THRESHER_CORPUS_DIR must be defined by the build"
#endif

namespace {

struct CorpusProgram {
  std::string Path;
  bool Android = false;
};

std::vector<CorpusProgram> allPrograms() {
  std::vector<CorpusProgram> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(THRESHER_CORPUS_DIR)) {
    if (Entry.path().extension() != ".mj")
      continue;
    CorpusProgram CP;
    CP.Path = Entry.path().string();
    std::ifstream In(CP.Path);
    std::string Line;
    while (std::getline(In, Line))
      if (Line.rfind("// ANDROID", 0) == 0)
        CP.Android = true;
    Out.push_back(CP);
  }
  std::sort(Out.begin(), Out.end(),
            [](const CorpusProgram &A, const CorpusProgram &B) {
              return A.Path < B.Path;
            });
  return Out;
}

struct Edge {
  bool IsGlobal = false;
  GlobalId G = InvalidId;
  AbsLocId Base = InvalidId;
  FieldId Fld = InvalidId;
  AbsLocId Target = InvalidId;
};

/// Every edge of the points-to graph.
std::vector<Edge> allEdges(const Program &P, const PointsToResult &PTA) {
  std::vector<Edge> Out;
  for (GlobalId G = 0; G < P.Globals.size(); ++G)
    for (AbsLocId L : PTA.ptGlobal(G)) {
      Edge E;
      E.IsGlobal = true;
      E.G = G;
      E.Target = L;
      Out.push_back(E);
    }
  for (AbsLocId L = 0; L < PTA.Locs.size(); ++L)
    for (auto [Fld, T] : PTA.fieldEdges(L)) {
      Edge E;
      E.Base = L;
      E.Fld = Fld;
      E.Target = T;
      Out.push_back(E);
    }
  return Out;
}

SearchOutcome searchEdge(WitnessSearch &WS, const Edge &E) {
  return (E.IsGlobal ? WS.searchGlobalEdge(E.G, E.Target)
                     : WS.searchFieldEdge(E.Base, E.Fld, E.Target))
      .Outcome;
}

std::string edgeLabel(const Program &P, const PointsToResult &PTA,
                      const Edge &E) {
  if (E.IsGlobal)
    return P.globalName(E.G) + " -> " + PTA.Locs.label(P, E.Target);
  return PTA.Locs.label(P, E.Base) + "." + P.fieldName(E.Fld) + " -> " +
         PTA.Locs.label(P, E.Target);
}

class AblationTest : public ::testing::TestWithParam<CorpusProgram> {};

} // namespace

TEST_P(AblationTest, PrecisionLatticeHolds) {
  const CorpusProgram &CP = GetParam();
  SCOPED_TRACE(CP.Path);
  std::ifstream In(CP.Path);
  std::stringstream SS;
  SS << In.rdbuf();

  CompileResult CR =
      CP.Android ? compileAndroidApp(SS.str()) : compileMJ(SS.str());
  ASSERT_TRUE(CR.ok()) << (CR.Errors.empty() ? "?" : CR.Errors[0]);
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();

  SymOptions MixedOpts; // The paper's system: Mixed + FullInference.
  SymOptions SymbolicOpts;
  SymbolicOpts.Repr = Representation::FullySymbolic;
  SymOptions DropAllOpts;
  DropAllOpts.Loop = LoopMode::DropAll;

  WitnessSearch Mixed(P, *PTA, MixedOpts);
  WitnessSearch Symbolic(P, *PTA, SymbolicOpts);
  WitnessSearch DropAll(P, *PTA, DropAllOpts);

  for (const Edge &E : allEdges(P, *PTA)) {
    SCOPED_TRACE(edgeLabel(P, *PTA, E));
    SearchOutcome OMixed = searchEdge(Mixed, E);
    SearchOutcome OSymbolic = searchEdge(Symbolic, E);
    SearchOutcome ODropAll = searchEdge(DropAll, E);

    if (OSymbolic == SearchOutcome::Refuted) {
      EXPECT_EQ(OMixed, SearchOutcome::Refuted)
          << "FullySymbolic refuted an edge Mixed could not";
    }
    if (OMixed == SearchOutcome::Witnessed) {
      EXPECT_NE(ODropAll, SearchOutcome::Refuted)
          << "DropAll refuted an edge FullInference witnessed";
    }
  }
}

TEST_P(AblationTest, ReducerSquareVerdictEquivalence) {
  // The search-reducer ablation: {forward slice off/on} x {global
  // subsumption off/on} per points-to edge. Unlike the precision axes
  // above, the reducers are pure pruners — every corner must produce the
  // SAME outcome as the both-off baseline on every edge, except that a
  // baseline timeout may improve to a refutation (pruning can finish a
  // search the budget otherwise could not). In particular no corner may
  // flip an edge to or from WITNESSED.
  const CorpusProgram &CP = GetParam();
  SCOPED_TRACE(CP.Path);
  std::ifstream In(CP.Path);
  std::stringstream SS;
  SS << In.rdbuf();

  CompileResult CR =
      CP.Android ? compileAndroidApp(SS.str()) : compileMJ(SS.str());
  ASSERT_TRUE(CR.ok()) << (CR.Errors.empty() ? "?" : CR.Errors[0]);
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();

  struct Corner {
    bool Slice;
    bool Subsume;
  };
  const Corner Corners[] = {
      {false, false}, {true, false}, {false, true}, {true, true}};
  std::vector<std::unique_ptr<WitnessSearch>> Engines;
  for (const Corner &C : Corners) {
    SymOptions SO;
    SO.ForwardSlice = C.Slice;
    SO.GlobalSubsume = C.Subsume;
    Engines.push_back(std::make_unique<WitnessSearch>(P, *PTA, SO));
  }

  for (const Edge &E : allEdges(P, *PTA)) {
    SCOPED_TRACE(edgeLabel(P, *PTA, E));
    SearchOutcome Base = searchEdge(*Engines[0], E);
    for (size_t I = 1; I < Engines.size(); ++I) {
      SCOPED_TRACE("slice=" + std::to_string(Corners[I].Slice) +
                   " subsume=" + std::to_string(Corners[I].Subsume));
      SearchOutcome O = searchEdge(*Engines[I], E);
      if (Base == SearchOutcome::BudgetExhausted)
        EXPECT_NE(O, SearchOutcome::Witnessed)
            << "reducer turned a timeout into a witness";
      else
        EXPECT_EQ(O, Base) << "reducer changed a decided verdict";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Files, AblationTest, ::testing::ValuesIn(allPrograms()),
    [](const ::testing::TestParamInfo<CorpusProgram> &Info) {
      std::string Name =
          std::filesystem::path(Info.param.Path).stem().string();
      for (char &Ch : Name)
        if (!isalnum(static_cast<unsigned char>(Ch)))
          Ch = '_';
      return Name;
    });
