//===- report_test.cpp - JSON report schema and consistency ---------------===//
//
// Pins the machine-readable report (schema thresher-report/v1) three ways:
//
//  1. A golden *type skeleton* snapshot: the report document with every
//     scalar replaced by its type name and every array collapsed to one
//     element, checked against tests/golden/report_schema.json. Open-ended
//     maps (effort.counters, effort.histograms) are collapsed to a "*"
//     member so adding a counter does not churn the schema. Regenerate with
//     THRESHER_UPDATE_GOLDEN=1 after an intentional schema change.
//
//  2. Consistency: the counters serialized into the report equal the live
//     Stats registry, and the summary totals equal the LeakReport fields.
//
//  3. Round-tripping: parse(serialize(doc)) reserializes byte-identically,
//     and the deterministic form omits the volatile sections.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "leak/LeakChecker.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

using namespace thresher;

#ifndef THRESHER_CORPUS_DIR
#error "THRESHER_CORPUS_DIR must be defined by the build"
#endif
#ifndef THRESHER_GOLDEN_DIR
#error "THRESHER_GOLDEN_DIR must be defined by the build"
#endif

namespace {

/// Replaces scalars by their type names and collapses arrays to one
/// element; object members under a wildcard path collapse to "*".
JsonValue skeletonize(const JsonValue &V, const std::string &Path,
                      const std::set<std::string> &WildcardPaths) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    return JsonValue::makeString("null");
  case JsonValue::Kind::Bool:
    return JsonValue::makeString("bool");
  case JsonValue::Kind::Int:
    return JsonValue::makeString("int");
  case JsonValue::Kind::Double:
    return JsonValue::makeString("double");
  case JsonValue::Kind::String:
    return JsonValue::makeString("string");
  case JsonValue::Kind::Array: {
    JsonValue A = JsonValue::makeArray();
    if (!V.items().empty())
      A.append(skeletonize(V.items().front(), Path + ".[]", WildcardPaths));
    return A;
  }
  case JsonValue::Kind::Object: {
    JsonValue O = JsonValue::makeObject();
    if (WildcardPaths.count(Path)) {
      if (!V.members().empty())
        O.set("*", skeletonize(V.members().front().second, Path + ".*",
                               WildcardPaths));
      return O;
    }
    for (const auto &[Key, Member] : V.members())
      O.set(Key, skeletonize(Member, Path.empty() ? Key : Path + "." + Key,
                             WildcardPaths));
    return O;
  }
  }
  return JsonValue();
}

struct ReportFixture {
  std::unique_ptr<CompileResult> CR;
  std::unique_ptr<PointsToResult> PTA;
  std::unique_ptr<LeakChecker> LC;
  LeakReport Report;

  ReportFixture() {
    std::ifstream In(std::string(THRESHER_CORPUS_DIR) +
                     "/android_vec_figure1.mj");
    std::stringstream SS;
    SS << In.rdbuf();
    CR = std::make_unique<CompileResult>(compileAndroidApp(SS.str()));
    EXPECT_TRUE(CR->ok());
    PTA = PointsToAnalysis(*CR->Prog).run();
    LC = std::make_unique<LeakChecker>(*CR->Prog, *PTA,
                                       activityBaseClass(*CR->Prog));
    Report = LC->run();
  }
};

} // namespace

TEST(ReportTest, GoldenSchemaSnapshot) {
  ReportFixture F;
  JsonValue Doc = F.LC->buildJsonReport(F.Report);
  JsonValue Skeleton = skeletonize(
      Doc, "", {"effort.counters", "effort.histograms"});
  std::string Got = Skeleton.toString(2) + "\n";

  std::string GoldenPath =
      std::string(THRESHER_GOLDEN_DIR) + "/report_schema.json";
  if (std::getenv("THRESHER_UPDATE_GOLDEN")) {
    std::ofstream Out(GoldenPath);
    Out << Got;
    GTEST_SKIP() << "wrote " << GoldenPath;
  }
  std::ifstream In(GoldenPath);
  ASSERT_TRUE(In) << "missing golden " << GoldenPath
                  << " (run with THRESHER_UPDATE_GOLDEN=1 to create)";
  std::stringstream Want;
  Want << In.rdbuf();
  EXPECT_EQ(Got, Want.str())
      << "report schema changed; if intentional, bump ReportSchemaVersion "
         "and regenerate with THRESHER_UPDATE_GOLDEN=1";
}

// The v1.1 additions (config.governor, per-edge "reason") only serialize
// when a governor is attached and an edge actually exhausted, so they get
// their own golden: a starvation deadline forces every search to time out.
TEST(ReportTest, GoldenGovernedSchemaSnapshot) {
  ReportFixture F;
  GovernorConfig C;
  C.Deterministic = true;
  C.StepsPerMs = 1;
  C.EdgeTimeoutMs = 1;
  ResourceGovernor Gov(C);
  // A fresh checker: the fixture's own run already memoized every edge
  // verdict, and repeated runs reuse those, bypassing the governor.
  LeakChecker LC(*F.CR->Prog, *F.PTA, activityBaseClass(*F.CR->Prog));
  LC.setGovernor(&Gov);
  LeakReport R = LC.run();
  EXPECT_GT(R.TimeoutEdges, 0u);
  JsonValue Doc = LC.buildJsonReport(R);
  JsonValue Skeleton = skeletonize(
      Doc, "", {"effort.counters", "effort.histograms"});
  std::string Got = Skeleton.toString(2) + "\n";

  std::string GoldenPath =
      std::string(THRESHER_GOLDEN_DIR) + "/report_schema_governed.json";
  if (std::getenv("THRESHER_UPDATE_GOLDEN")) {
    std::ofstream Out(GoldenPath);
    Out << Got;
    GTEST_SKIP() << "wrote " << GoldenPath;
  }
  std::ifstream In(GoldenPath);
  ASSERT_TRUE(In) << "missing golden " << GoldenPath
                  << " (run with THRESHER_UPDATE_GOLDEN=1 to create)";
  std::stringstream Want;
  Want << In.rdbuf();
  EXPECT_EQ(Got, Want.str())
      << "governed report schema changed; if intentional, bump "
         "ReportSchemaVersion and regenerate with THRESHER_UPDATE_GOLDEN=1";
}

TEST(ReportTest, SchemaVersionStamped) {
  ReportFixture F;
  JsonValue Doc = F.LC->buildJsonReport(F.Report);
  ASSERT_NE(Doc.find("schema"), nullptr);
  EXPECT_EQ(Doc.find("schema")->asString(),
            LeakChecker::ReportSchemaVersion);
  EXPECT_STREQ(LeakChecker::ReportSchemaVersion, "thresher-report/v1.2");
}

TEST(ReportTest, SummaryMatchesReportFields) {
  ReportFixture F;
  JsonValue Doc = F.LC->buildJsonReport(F.Report);
  EXPECT_EQ(Doc.findPath("summary.alarms")->asUint(), F.Report.NumAlarms);
  EXPECT_EQ(Doc.findPath("summary.refutedAlarms")->asUint(),
            F.Report.RefutedAlarms);
  EXPECT_EQ(Doc.findPath("summary.fields")->asUint(), F.Report.Fields);
  EXPECT_EQ(Doc.findPath("summary.refutedFields")->asUint(),
            F.Report.RefutedFields);
  EXPECT_EQ(Doc.findPath("summary.edges.consulted")->asUint(),
            F.Report.Edges.size());
  EXPECT_EQ(Doc.findPath("summary.edges.refuted")->asUint(),
            F.Report.RefutedEdges);
  EXPECT_EQ(Doc.findPath("summary.edges.witnessed")->asUint(),
            F.Report.WitnessedEdges);
  EXPECT_EQ(Doc.findPath("summary.edges.timeout")->asUint(),
            F.Report.TimeoutEdges);
  EXPECT_EQ(Doc.findPath("alarms")->size(), F.Report.Alarms.size());
  EXPECT_EQ(Doc.findPath("edges")->size(), F.Report.Edges.size());
  // Edge verdict totals partition the consulted edges.
  EXPECT_EQ(F.Report.RefutedEdges + F.Report.WitnessedEdges +
                F.Report.TimeoutEdges,
            F.Report.Edges.size());
}

TEST(ReportTest, CountersMatchStatsRegistry) {
  ReportFixture F;
  JsonValue Doc = F.LC->buildJsonReport(F.Report);
  const JsonValue *Counters = Doc.findPath("effort.counters");
  ASSERT_NE(Counters, nullptr);
  ASSERT_TRUE(Counters->isObject());
  EXPECT_FALSE(Counters->members().empty());
  for (const auto &[Name, Value] : Counters->members())
    EXPECT_EQ(Value.asUint(), F.LC->stats().get(Name)) << Name;
  // Every registry counter is serialized (same cardinality both ways).
  EXPECT_EQ(Counters->size(), F.LC->stats().counterSnapshot().size());
  // The points-to phase's effort was folded in (tentpole wiring).
  EXPECT_GT(F.LC->stats().get("pta.absLocs"), 0u);
  EXPECT_GT(F.LC->stats().get("pta.edges"), 0u);
  // Histograms likewise.
  const JsonValue *Hists = Doc.findPath("effort.histograms");
  ASSERT_NE(Hists, nullptr);
  for (const auto &[Name, H] : Hists->members()) {
    Histogram Live = F.LC->stats().histogram(Name);
    EXPECT_EQ(H.find("count")->asUint(), Live.count()) << Name;
    EXPECT_EQ(H.find("sum")->asUint(), Live.sum()) << Name;
  }
  EXPECT_GT(F.LC->stats().histogram("hist.edgeStates").count(), 0u);
}

// Regression: an empty histogram used to serialize p50/p90/p99 = 0,
// indistinguishable from a phase whose samples were all zero. Phases that
// never ran must emit null quantiles (count 0 disambiguates the sums).
TEST(ReportTest, EmptyHistogramQuantilesSerializeNull) {
  ReportFixture F;
  F.LC->stats().ensureHistogram("hist.test.neverRan");
  JsonValue Doc = F.LC->buildJsonReport(F.Report);
  const JsonValue *Hists = Doc.findPath("effort.histograms");
  ASSERT_NE(Hists, nullptr);
  const JsonValue *Empty = Hists->find("hist.test.neverRan");
  ASSERT_NE(Empty, nullptr);
  EXPECT_EQ(Empty->find("count")->asUint(), 0u);
  EXPECT_TRUE(Empty->find("p50")->isNull());
  EXPECT_TRUE(Empty->find("p90")->isNull());
  EXPECT_TRUE(Empty->find("p99")->isNull());
  // A histogram that did run keeps integer quantiles.
  const JsonValue *Busy = Hists->find("hist.edgeStates");
  ASSERT_NE(Busy, nullptr);
  EXPECT_GT(Busy->find("count")->asUint(), 0u);
  EXPECT_FALSE(Busy->find("p50")->isNull());
}

TEST(ReportTest, RoundTripsThroughParser) {
  ReportFixture F;
  JsonValue Doc = F.LC->buildJsonReport(F.Report);
  for (int Indent : {-1, 0, 2, 4}) {
    std::string Wire = Doc.toString(Indent);
    JsonValue Back;
    std::string Error;
    ASSERT_TRUE(parseJson(Wire, Back, &Error)) << Error;
    EXPECT_EQ(Back.toString(Indent), Wire);
  }
}

TEST(ReportTest, DeterministicFormOmitsVolatileSections) {
  ReportFixture F;
  ReportJsonOptions JO;
  JO.DeterministicOnly = true;
  JsonValue Doc = F.LC->buildJsonReport(F.Report, JO);
  EXPECT_EQ(Doc.find("effort"), nullptr);
  const JsonValue *Edges = Doc.find("edges");
  ASSERT_NE(Edges, nullptr);
  for (const JsonValue &E : Edges->items())
    EXPECT_EQ(E.find("nanos"), nullptr);
  // The full form has both.
  JsonValue Full = F.LC->buildJsonReport(F.Report);
  EXPECT_NE(Full.find("effort"), nullptr);
  EXPECT_NE(Full.findPath("effort.prefetchedEdges"), nullptr);
}
