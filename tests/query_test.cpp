//===- query_test.cpp - Unit tests for the query representation -----------===//

#include "sym/Query.h"

#include <gtest/gtest.h>

using namespace thresher;

namespace {

/// A query over a dummy frame with ElemsField = 99.
constexpr FieldId Elems = 99;
constexpr FieldId FldA = 1, FldB = 2;

Query mkQuery() {
  Query Q;
  QueryFrame F;
  F.Func = 0;
  Q.Frames.push_back(F);
  Q.Pos = {0, 0, 0};
  return Q;
}

} // namespace

//===----------------------------------------------------------------------===//
// Region
//===----------------------------------------------------------------------===//

TEST(RegionTest, EmptinessAndKinds) {
  Region R;
  EXPECT_TRUE(R.empty());
  R.Locs = IdSet{1, 2};
  EXPECT_FALSE(R.empty());
  EXPECT_TRUE(R.hasLocs());
  EXPECT_FALSE(R.dataOnly());
  Region D = Region::data();
  EXPECT_TRUE(D.dataOnly());
  EXPECT_FALSE(D.empty());
}

TEST(RegionTest, IntersectWith) {
  Region A = Region::ofLocs(IdSet{1, 2, 3});
  A.HasData = true;
  Region B = Region::ofLocs(IdSet{2, 3, 4});
  EXPECT_TRUE(A.intersectWith(B));
  EXPECT_EQ(A.Locs, (IdSet{2, 3}));
  EXPECT_FALSE(A.HasData); // B had no data.
  Region C = Region::ofLocs(IdSet{9});
  EXPECT_FALSE(A.intersectWith(C)); // Empty result.
}

TEST(RegionTest, NarrowLocsKeepsData) {
  Region A = Region::data();
  EXPECT_TRUE(A.narrowLocs(IdSet{1})); // Data-only survives loc narrowing.
  Region B = Region::ofLocs(IdSet{1, 2});
  EXPECT_TRUE(B.narrowLocs(IdSet{2, 3}));
  EXPECT_EQ(B.Locs, (IdSet{2}));
  EXPECT_FALSE(B.narrowLocs(IdSet{7}));
}

TEST(RegionTest, SubsetOf) {
  Region A = Region::ofLocs(IdSet{1, 2});
  Region B = Region::ofLocs(IdSet{1, 2, 3});
  EXPECT_TRUE(A.subsetOf(B));
  EXPECT_FALSE(B.subsetOf(A));
  Region D = Region::data();
  EXPECT_FALSE(D.subsetOf(A));
  Region BD = B;
  BD.HasData = true;
  EXPECT_TRUE(D.subsetOf(BD));
}

//===----------------------------------------------------------------------===//
// Bindings and unification
//===----------------------------------------------------------------------===//

TEST(QueryTest, LocalBindings) {
  Query Q = mkQuery();
  EXPECT_FALSE(Q.getLocal(0, 3).has_value());
  SymVarId V = Q.freshSym(Region::ofLocs(IdSet{1}));
  Q.setLocal(0, 3, ValRef::mkSym(V));
  ASSERT_TRUE(Q.getLocal(0, 3).has_value());
  EXPECT_EQ(Q.getLocal(0, 3)->Sym, V);
  Q.eraseLocal(0, 3);
  EXPECT_FALSE(Q.getLocal(0, 3).has_value());
}

TEST(QueryTest, UnifyNullWithNull) {
  Query Q = mkQuery();
  ValRef R = Q.unify(ValRef::mkNull(), ValRef::mkNull());
  EXPECT_TRUE(R.isNull());
  EXPECT_FALSE(Q.Refuted);
}

TEST(QueryTest, UnifyNullWithSymRefutes) {
  Query Q = mkQuery();
  SymVarId V = Q.freshSym(Region::ofLocs(IdSet{1}));
  Q.unify(ValRef::mkNull(), ValRef::mkSym(V));
  EXPECT_TRUE(Q.Refuted);
}

TEST(QueryTest, UnifySymsIntersectsRegions) {
  Query Q = mkQuery();
  SymVarId A = Q.freshSym(Region::ofLocs(IdSet{1, 2}));
  SymVarId B = Q.freshSym(Region::ofLocs(IdSet{2, 3}));
  Q.setLocal(0, 0, ValRef::mkSym(A));
  Q.setLocal(0, 1, ValRef::mkSym(B));
  ValRef R = Q.unify(ValRef::mkSym(A), ValRef::mkSym(B));
  EXPECT_FALSE(Q.Refuted);
  EXPECT_EQ(R.Sym, A);
  EXPECT_EQ(Q.regionOf(A).Locs, (IdSet{2}));
  // The local bound to B now refers to A.
  EXPECT_EQ(Q.getLocal(0, 1)->Sym, A);
}

TEST(QueryTest, UnifyDisjointRegionsRefutes) {
  Query Q = mkQuery();
  SymVarId A = Q.freshSym(Region::ofLocs(IdSet{1}));
  SymVarId B = Q.freshSym(Region::ofLocs(IdSet{2}));
  Q.unify(ValRef::mkSym(A), ValRef::mkSym(B));
  EXPECT_TRUE(Q.Refuted);
}

TEST(QueryTest, SubstituteUpdatesEverything) {
  Query Q = mkQuery();
  SymVarId A = Q.freshSym(Region::ofLocs(IdSet{1, 2}));
  SymVarId B = Q.freshSym(Region::ofLocs(IdSet{1, 2, 3}));
  SymVarId T = Q.freshSym(Region::ofLocs(IdSet{5}));
  Q.setLocal(0, 0, ValRef::mkSym(A));
  Q.Globals[7] = ValRef::mkSym(A);
  Q.addCell(A, FldA, ValRef::mkSym(T), Elems);
  Q.Pure.addCmp(PureTerm::mkVar(A), RelOp::LT, PureTerm::mkConst(3), false);
  Q.substitute(A, B);
  EXPECT_EQ(Q.getLocal(0, 0)->Sym, B);
  EXPECT_EQ(Q.Globals[7].Sym, B);
  ASSERT_EQ(Q.Cells.size(), 1u);
  EXPECT_EQ(Q.Cells[0].Base, B);
  EXPECT_TRUE(Q.Pure.mentions(B));
  EXPECT_FALSE(Q.Pure.mentions(A));
  // Regions merged: {1,2} ∩ {1,2,3} = {1,2}.
  EXPECT_EQ(Q.regionOf(B).Locs, (IdSet{1, 2}));
}

//===----------------------------------------------------------------------===//
// Cells and separation
//===----------------------------------------------------------------------===//

TEST(QueryTest, AddCellOrdinaryFieldUnifiesTargets) {
  Query Q = mkQuery();
  SymVarId Base = Q.freshSym(Region::ofLocs(IdSet{1}));
  SymVarId T1 = Q.freshSym(Region::ofLocs(IdSet{2, 3}));
  SymVarId T2 = Q.freshSym(Region::ofLocs(IdSet{3, 4}));
  Q.addCell(Base, FldA, ValRef::mkSym(T1), Elems);
  Q.addCell(Base, FldA, ValRef::mkSym(T2), Elems);
  ASSERT_EQ(Q.Cells.size(), 1u);
  EXPECT_FALSE(Q.Refuted);
  // Targets unified; surviving region is the intersection.
  EXPECT_EQ(Q.regionOf(Q.Cells[0].Target.Sym).Locs, (IdSet{3}));
}

TEST(QueryTest, AddCellSeparationRefutation) {
  Query Q = mkQuery();
  SymVarId Base = Q.freshSym(Region::ofLocs(IdSet{1}));
  SymVarId T1 = Q.freshSym(Region::ofLocs(IdSet{2}));
  SymVarId T2 = Q.freshSym(Region::ofLocs(IdSet{4}));
  Q.addCell(Base, FldA, ValRef::mkSym(T1), Elems);
  Q.addCell(Base, FldA, ValRef::mkSym(T2), Elems);
  // One cell cannot point to instances from disjoint regions.
  EXPECT_TRUE(Q.Refuted);
}

TEST(QueryTest, AddCellElemsAllowsMultiple) {
  Query Q = mkQuery();
  SymVarId Base = Q.freshSym(Region::ofLocs(IdSet{1}));
  SymVarId T1 = Q.freshSym(Region::ofLocs(IdSet{2}));
  SymVarId T2 = Q.freshSym(Region::ofLocs(IdSet{4}));
  Q.addCell(Base, Elems, ValRef::mkSym(T1), Elems);
  Q.addCell(Base, Elems, ValRef::mkSym(T2), Elems);
  EXPECT_FALSE(Q.Refuted); // Array cells with distinct indices coexist.
  EXPECT_EQ(Q.Cells.size(), 2u);
}

TEST(QueryTest, AddCellDistinctFieldsCoexist) {
  Query Q = mkQuery();
  SymVarId Base = Q.freshSym(Region::ofLocs(IdSet{1}));
  Q.addCell(Base, FldA, ValRef::mkNull(), Elems);
  Q.addCell(Base, FldB, ValRef::mkNull(), Elems);
  EXPECT_EQ(Q.Cells.size(), 2u);
  EXPECT_FALSE(Q.Refuted);
}

TEST(QueryTest, NullTargetsUnify) {
  Query Q = mkQuery();
  SymVarId Base = Q.freshSym(Region::ofLocs(IdSet{1}));
  Q.addCell(Base, FldA, ValRef::mkNull(), Elems);
  Q.addCell(Base, FldA, ValRef::mkNull(), Elems);
  EXPECT_EQ(Q.Cells.size(), 1u);
  EXPECT_FALSE(Q.Refuted);
  // Null target vs Sym target on the same cell refutes.
  SymVarId T = Q.freshSym(Region::ofLocs(IdSet{2}));
  Q.addCell(Base, FldA, ValRef::mkSym(T), Elems);
  EXPECT_TRUE(Q.Refuted);
}

TEST(QueryTest, RemoveCell) {
  Query Q = mkQuery();
  SymVarId Base = Q.freshSym(Region::ofLocs(IdSet{1}));
  Q.addCell(Base, FldA, ValRef::mkNull(), Elems);
  HeapCell C = Q.Cells[0];
  Q.removeCell(C);
  EXPECT_TRUE(Q.Cells.empty());
}

TEST(QueryTest, CellsWithBase) {
  Query Q = mkQuery();
  SymVarId A = Q.freshSym(Region::ofLocs(IdSet{1}));
  SymVarId B = Q.freshSym(Region::ofLocs(IdSet{2}));
  Q.addCell(A, FldA, ValRef::mkNull(), Elems);
  Q.addCell(B, FldA, ValRef::mkNull(), Elems);
  Q.addCell(A, FldB, ValRef::mkNull(), Elems);
  EXPECT_EQ(Q.cellsWithBase(A).size(), 2u);
  EXPECT_EQ(Q.cellsWithBase(B).size(), 1u);
}

//===----------------------------------------------------------------------===//
// Reference tracking and GC
//===----------------------------------------------------------------------===//

TEST(QueryTest, SymIsReferenced) {
  Query Q = mkQuery();
  SymVarId A = Q.freshSym(Region::ofLocs(IdSet{1}));
  SymVarId B = Q.freshSym(Region::ofLocs(IdSet{2}));
  SymVarId C = Q.freshSym(Region::data());
  EXPECT_FALSE(Q.symIsReferenced(A));
  Q.setLocal(0, 0, ValRef::mkSym(A));
  EXPECT_TRUE(Q.symIsReferenced(A));
  Q.addCell(B, FldA, ValRef::mkNull(), Elems);
  EXPECT_TRUE(Q.symIsReferenced(B));
  Q.Pure.addCmp(PureTerm::mkVar(C), RelOp::GE, PureTerm::mkConst(0), false);
  EXPECT_TRUE(Q.symIsReferenced(C));
}

TEST(QueryTest, GcRegionsDropsUnreferenced) {
  Query Q = mkQuery();
  SymVarId A = Q.freshSym(Region::ofLocs(IdSet{1}));
  SymVarId B = Q.freshSym(Region::ofLocs(IdSet{2}));
  Q.setLocal(0, 0, ValRef::mkSym(A));
  (void)B;
  Q.gcRegions();
  EXPECT_EQ(Q.Regions.count(A), 1u);
  EXPECT_EQ(Q.Regions.count(B), 0u);
}

TEST(QueryTest, MemoryEmpty) {
  Query Q = mkQuery();
  EXPECT_TRUE(Q.memoryEmpty());
  SymVarId A = Q.freshSym(Region::ofLocs(IdSet{1}));
  Q.setLocal(0, 0, ValRef::mkSym(A));
  EXPECT_FALSE(Q.memoryEmpty());
  Q.eraseLocal(0, 0);
  EXPECT_TRUE(Q.memoryEmpty());
  Q.Globals[0] = ValRef::mkNull();
  EXPECT_FALSE(Q.memoryEmpty());
}

//===----------------------------------------------------------------------===//
// Canonicalization
//===----------------------------------------------------------------------===//

TEST(QueryTest, CanonicalKeyInvariantUnderSymRenaming) {
  // Build the same query twice with different symbolic variable creation
  // orders; the canonical keys must agree.
  auto Build = [](bool Swap) {
    Query Q = mkQuery();
    SymVarId First = Q.freshSym(Region::ofLocs(IdSet{1}));
    SymVarId Second = Q.freshSym(Region::ofLocs(IdSet{2}));
    SymVarId A = Swap ? Second : First;
    SymVarId B = Swap ? First : Second;
    // Re-normalize regions to match roles.
    Q.regionOf(A) = Region::ofLocs(IdSet{1});
    Q.regionOf(B) = Region::ofLocs(IdSet{2});
    Q.setLocal(0, 0, ValRef::mkSym(A));
    Q.addCell(A, FldA, ValRef::mkSym(B), Elems);
    return Q.canonicalKey();
  };
  EXPECT_EQ(Build(false), Build(true));
}

TEST(QueryTest, CanonicalKeyDistinguishesStructure) {
  Query Q1 = mkQuery();
  SymVarId A1 = Q1.freshSym(Region::ofLocs(IdSet{1}));
  Q1.setLocal(0, 0, ValRef::mkSym(A1));

  Query Q2 = mkQuery();
  SymVarId A2 = Q2.freshSym(Region::ofLocs(IdSet{1}));
  Q2.setLocal(0, 1, ValRef::mkSym(A2)); // Different variable slot.
  EXPECT_NE(Q1.canonicalKey(), Q2.canonicalKey());

  Query Q3 = mkQuery();
  SymVarId A3 = Q3.freshSym(Region::ofLocs(IdSet{2})); // Different region.
  Q3.setLocal(0, 0, ValRef::mkSym(A3));
  EXPECT_NE(Q1.canonicalKey(), Q3.canonicalKey());
}

TEST(QueryTest, HistorySlotReflectsPositionAndStack) {
  Query Q1 = mkQuery();
  Query Q2 = mkQuery();
  EXPECT_EQ(Q1.historySlot(), Q2.historySlot());
  Q2.Pos.Idx = 5;
  EXPECT_NE(Q1.historySlot(), Q2.historySlot());
  Query Q3 = mkQuery();
  QueryFrame F;
  F.Func = 3;
  F.Ctx = 7;
  F.HasCallSite = true;
  F.CallAt = {0, 0, 1};
  Q3.Frames.push_back(F);
  EXPECT_NE(Q1.historySlot(), Q3.historySlot());
  Query Q4 = Q3;
  Q4.Frames.back().Ctx = 8; // Same function, different context.
  EXPECT_NE(Q3.historySlot(), Q4.historySlot());
}
