//===- support_test.cpp - Unit tests for support utilities ---------------===//

#include "support/IdSet.h"
#include "support/Json.h"
#include "support/SmallMap.h"
#include "support/Stats.h"
#include "support/StringPool.h"
#include "support/Trace.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <thread>

using namespace thresher;

TEST(IdSetTest, InsertContainsErase) {
  IdSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_TRUE(S.insert(5));
  EXPECT_FALSE(S.insert(5));
  EXPECT_TRUE(S.insert(1));
  EXPECT_TRUE(S.insert(9));
  EXPECT_TRUE(S.contains(5));
  EXPECT_FALSE(S.contains(2));
  EXPECT_EQ(S.size(), 3u);
  EXPECT_TRUE(S.erase(5));
  EXPECT_FALSE(S.erase(5));
  EXPECT_EQ(S.size(), 2u);
}

TEST(IdSetTest, InitializerListDedupsAndSorts) {
  IdSet S = {3, 1, 3, 2, 1};
  EXPECT_EQ(S.size(), 3u);
  std::vector<uint32_t> Elems(S.begin(), S.end());
  EXPECT_EQ(Elems, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(IdSetTest, SetOperations) {
  IdSet A = {1, 2, 3, 4};
  IdSet B = {3, 4, 5};
  IdSet I = A.intersectWith(B);
  EXPECT_EQ(I, (IdSet{3, 4}));
  EXPECT_FALSE(A.disjointWith(B));
  EXPECT_TRUE(A.disjointWith(IdSet{7, 8}));
  EXPECT_TRUE(I.subsetOf(A));
  EXPECT_FALSE(A.subsetOf(I));
  IdSet C = A;
  EXPECT_TRUE(C.insertAll(B));
  EXPECT_EQ(C, (IdSet{1, 2, 3, 4, 5}));
  EXPECT_FALSE(C.insertAll(B));
}

TEST(IdSetTest, PropertyAgainstStdSet) {
  std::mt19937 Rng(42);
  for (int Trial = 0; Trial < 50; ++Trial) {
    IdSet S;
    std::set<uint32_t> Ref;
    for (int I = 0; I < 100; ++I) {
      uint32_t V = Rng() % 30;
      if (Rng() % 3 == 0) {
        EXPECT_EQ(S.erase(V), Ref.erase(V) > 0);
      } else {
        EXPECT_EQ(S.insert(V), Ref.insert(V).second);
      }
    }
    EXPECT_EQ(S.size(), Ref.size());
    for (uint32_t V : Ref)
      EXPECT_TRUE(S.contains(V));
  }
}

TEST(StringPoolTest, InternIsIdempotent) {
  StringPool SP;
  NameId A = SP.intern("hello");
  NameId B = SP.intern("world");
  NameId C = SP.intern("hello");
  EXPECT_EQ(A, C);
  EXPECT_NE(A, B);
  EXPECT_EQ(SP.str(A), "hello");
  EXPECT_EQ(SP.lookup("world"), B);
  EXPECT_EQ(SP.lookup("missing"), ~0u);
}

TEST(StringPoolTest, ManyStringsStayValid) {
  // Regression guard for the SSO/string_view stability issue.
  StringPool SP;
  std::vector<NameId> Ids;
  for (int I = 0; I < 1000; ++I)
    Ids.push_back(SP.intern("name" + std::to_string(I)));
  for (int I = 0; I < 1000; ++I) {
    EXPECT_EQ(SP.str(Ids[I]), "name" + std::to_string(I));
    EXPECT_EQ(SP.lookup("name" + std::to_string(I)), Ids[I]);
  }
}

TEST(UnionFindTest, BasicUnions) {
  UnionFind UF;
  EXPECT_FALSE(UF.sameClass(1, 2));
  UF.unite(1, 2);
  EXPECT_TRUE(UF.sameClass(1, 2));
  UF.unite(3, 4);
  EXPECT_FALSE(UF.sameClass(2, 3));
  UF.unite(2, 3);
  EXPECT_TRUE(UF.sameClass(1, 4));
  EXPECT_EQ(UF.find(1), UF.find(4));
}

TEST(StatsTest, BumpAndMerge) {
  Stats A, B;
  A.bump("x");
  A.bump("x", 4);
  B.bump("y", 2);
  EXPECT_EQ(A.get("x"), 5u);
  EXPECT_EQ(A.get("missing"), 0u);
  A.mergeFrom(B);
  EXPECT_EQ(A.get("y"), 2u);
}

TEST(StatsTest, HistogramRecordAndMerge) {
  Stats S;
  S.record("h", 0);
  S.record("h", 1);
  S.record("h", 7);
  S.record("h", 1000);
  Histogram H = S.histogram("h");
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 1008u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_DOUBLE_EQ(H.mean(), 252.0);

  Stats T;
  T.record("h", 3);
  S.mergeFrom(T);
  EXPECT_EQ(S.histogram("h").count(), 5u);
  EXPECT_EQ(S.histogram("h").sum(), 1011u);
  EXPECT_EQ(S.histogram("missing").count(), 0u);
}

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucketFor(0), 0u);
  EXPECT_EQ(Histogram::bucketFor(1), 1u);
  EXPECT_EQ(Histogram::bucketFor(2), 2u);
  EXPECT_EQ(Histogram::bucketFor(3), 2u);
  EXPECT_EQ(Histogram::bucketFor(4), 3u);
  EXPECT_EQ(Histogram::bucketFor(UINT64_MAX), 64u);
  for (unsigned B = 0; B < Histogram::NumBuckets; ++B) {
    uint64_t Lo = Histogram::bucketLo(B);
    EXPECT_EQ(Histogram::bucketFor(Lo), B) << B;
  }
}

TEST(HistogramTest, QuantileFromBuckets) {
  Histogram H;
  // Empty histogram: no quantile at all, not a zero quantile.
  EXPECT_EQ(H.quantile(0.0), std::nullopt);
  EXPECT_EQ(H.quantile(0.5), std::nullopt);
  EXPECT_EQ(H.quantile(1.0), std::nullopt);
  // All-zero samples, by contrast, have a real p50 of 0.
  Histogram Z;
  Z.record(0);
  EXPECT_EQ(Z.quantile(0.5), 0u);
  for (int I = 0; I < 50; ++I)
    H.record(4); // bucket 3, lower bound 4
  for (int I = 0; I < 50; ++I)
    H.record(1024); // bucket 11, lower bound 1024
  EXPECT_EQ(H.quantile(0.0), 4u);
  EXPECT_EQ(H.quantile(0.25), 4u);
  EXPECT_EQ(H.quantile(0.75), 1024u);
  EXPECT_EQ(H.quantile(1.0), 1024u);
}

// TSan-able: concurrent bump/record/read/merge on one shared registry must
// be free of data races and lose no updates. The CI thread-sanitizer job
// runs this with real interleavings.
TEST(StatsTest, ConcurrentBumpRecordMerge) {
  Stats Shared;
  constexpr int Threads = 8;
  constexpr int PerThread = 10000;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T) {
    Pool.emplace_back([&Shared, T]() {
      Stats Local;
      for (int I = 0; I < PerThread; ++I) {
        Shared.bump("shared.counter");
        Shared.record("shared.hist", static_cast<uint64_t>(I));
        Local.bump("local.counter");
        if (I % 100 == 0) {
          // Concurrent readers on the shared registry.
          (void)Shared.get("shared.counter");
          (void)Shared.histogram("shared.hist");
          (void)Shared.counterSnapshot();
        }
      }
      Local.bump("thread." + std::to_string(T));
      Shared.mergeFrom(Local);
    });
  }
  for (std::thread &Th : Pool)
    Th.join();
  EXPECT_EQ(Shared.get("shared.counter"),
            static_cast<uint64_t>(Threads) * PerThread);
  EXPECT_EQ(Shared.get("local.counter"),
            static_cast<uint64_t>(Threads) * PerThread);
  EXPECT_EQ(Shared.histogram("shared.hist").count(),
            static_cast<uint64_t>(Threads) * PerThread);
  for (int T = 0; T < Threads; ++T)
    EXPECT_EQ(Shared.get("thread." + std::to_string(T)), 1u);
}

TEST(ScopedTimerTest, RecordsElapsedNanos) {
  Stats S;
  {
    ScopedTimer T(S, "hist.elapsed");
    volatile int Sink = 0;
    for (int I = 0; I < 1000; ++I)
      Sink = Sink + I;
  }
  Histogram H = S.histogram("hist.elapsed");
  EXPECT_EQ(H.count(), 1u);
  EXPECT_GT(H.sum(), 0u);
}

TEST(JsonTest, BuildSerializeParse) {
  JsonValue O = JsonValue::makeObject();
  O.set("b", JsonValue::makeBool(true));
  O.set("i", JsonValue::makeInt(-3));
  O.set("u", JsonValue::makeUint(42));
  O.set("d", JsonValue::makeDouble(1.5));
  O.set("s", JsonValue::makeString("he \"quoted\"\n"));
  JsonValue A = JsonValue::makeArray();
  A.append(JsonValue::makeInt(1));
  A.append(JsonValue());
  O.set("a", std::move(A));

  std::string Wire = O.toString();
  JsonValue Back;
  std::string Error;
  ASSERT_TRUE(parseJson(Wire, Back, &Error)) << Error;
  EXPECT_EQ(Back.toString(), Wire);
  EXPECT_EQ(Back.findPath("u")->asUint(), 42u);
  EXPECT_EQ(Back.findPath("s")->asString(), "he \"quoted\"\n");
  EXPECT_TRUE(Back.findPath("a")->items()[1].isNull());
  EXPECT_EQ(Back.findPath("missing.hop"), nullptr);
}

TEST(JsonTest, InsertionOrderIsPreserved) {
  JsonValue O = JsonValue::makeObject();
  O.set("zzz", JsonValue::makeInt(1));
  O.set("aaa", JsonValue::makeInt(2));
  O.set("mmm", JsonValue::makeInt(3));
  EXPECT_EQ(O.toString(), "{\"zzz\":1,\"aaa\":2,\"mmm\":3}");
  O.set("zzz", JsonValue::makeInt(9)); // Replace keeps the slot.
  EXPECT_EQ(O.toString(), "{\"zzz\":9,\"aaa\":2,\"mmm\":3}");
}

TEST(JsonTest, ParserRejectsMalformed) {
  JsonValue V;
  std::string Error;
  EXPECT_FALSE(parseJson("{", V, &Error));
  EXPECT_FALSE(parseJson("[1,]", V, &Error));
  EXPECT_FALSE(parseJson("\"unterminated", V, &Error));
  EXPECT_FALSE(parseJson("{\"a\":1} trailing", V, &Error));
  EXPECT_FALSE(Error.empty());
}

TEST(TraceTest, DeterministicMergeAcrossBuffers) {
  auto Ev = [](const std::string &Edge, uint64_t Steps) {
    TraceEvent E;
    E.Edge = Edge;
    E.Steps = Steps;
    E.Verdict = "REFUTED";
    return E;
  };
  // Two "worker" buffers in arbitrary completion order, plus a duplicate
  // edge label disambiguated by steps.
  std::vector<std::vector<TraceEvent>> A = {{Ev("b", 2), Ev("a", 1)},
                                            {Ev("c", 3), Ev("b", 1)}};
  std::vector<std::vector<TraceEvent>> B = {{Ev("b", 1), Ev("c", 3)},
                                            {Ev("a", 1), Ev("b", 2)}};
  std::vector<TraceEvent> MA = mergeTraceEvents(std::move(A));
  std::vector<TraceEvent> MB = mergeTraceEvents(std::move(B));
  ASSERT_EQ(MA.size(), 4u);
  ASSERT_EQ(MB.size(), 4u);
  for (size_t I = 0; I < MA.size(); ++I) {
    EXPECT_EQ(MA[I].Seq, I);
    EXPECT_EQ(MA[I].Edge, MB[I].Edge);
    EXPECT_EQ(MA[I].Steps, MB[I].Steps);
  }
  EXPECT_EQ(MA[0].Edge, "a");
  EXPECT_EQ(MA[1].Edge, "b");
  EXPECT_EQ(MA[1].Steps, 1u);
  EXPECT_EQ(MA[2].Steps, 2u);
  EXPECT_EQ(MA[3].Edge, "c");
}

TEST(TraceTest, EventJsonShape) {
  TraceEvent E;
  E.Seq = 7;
  E.Edge = "F.g -> loc";
  E.IsGlobal = true;
  E.Verdict = "WITNESSED";
  E.ProducersTried = 2;
  E.Producer = "main@bb0:1";
  E.Steps = 12;
  E.Budget = 100;
  E.RefuteKinds["pure"] = 3;
  E.EnumNanos = 10;
  E.SearchNanos = 20;
  JsonValue V;
  std::string Error;
  ASSERT_TRUE(parseJson(traceEventToJson(E), V, &Error)) << Error;
  EXPECT_EQ(V.findPath("seq")->asUint(), 7u);
  EXPECT_EQ(V.findPath("edge")->asString(), "F.g -> loc");
  EXPECT_EQ(V.findPath("kind")->asString(), "global");
  EXPECT_EQ(V.findPath("verdict")->asString(), "WITNESSED");
  EXPECT_EQ(V.findPath("producer")->asString(), "main@bb0:1");
  EXPECT_EQ(V.findPath("refuteKinds.pure")->asUint(), 3u);
  EXPECT_EQ(V.findPath("phases.enumNanos")->asUint(), 10u);
  EXPECT_EQ(V.findPath("phases.searchNanos")->asUint(), 20u);
}

//===--------------------------------------------------------------------===//
// Hybrid IdSet: vector <-> bitmap representation
//===--------------------------------------------------------------------===//

TEST(IdSetHybridTest, PromotionBoundaryDense) {
  IdSet S;
  for (uint32_t I = 0; I < IdSet::BitmapThreshold - 1; ++I) {
    S.insert(I);
    EXPECT_FALSE(S.usesBitmap()) << "promoted below threshold at " << I;
  }
  S.insert(IdSet::BitmapThreshold - 1);
  EXPECT_TRUE(S.usesBitmap()) << "dense set did not promote at threshold";
  EXPECT_EQ(S.size(), IdSet::BitmapThreshold);
  for (uint32_t I = 0; I < IdSet::BitmapThreshold; ++I)
    EXPECT_TRUE(S.contains(I));
}

TEST(IdSetHybridTest, SparseSetStaysVector) {
  // Elements spaced so that the bitmap would need more than
  // MaxWordsPerElem words per element: promotion must be declined.
  IdSet S;
  uint32_t Stride = 64 * (IdSet::MaxWordsPerElem + 1);
  for (uint32_t I = 0; I < IdSet::BitmapThreshold + 16; ++I)
    S.insert(I * Stride);
  EXPECT_FALSE(S.usesBitmap()) << "sparse set wastefully promoted";
  EXPECT_EQ(S.size(), IdSet::BitmapThreshold + 16);
  EXPECT_TRUE(S.contains(Stride));
  EXPECT_FALSE(S.contains(Stride + 1));
}

TEST(IdSetHybridTest, InsertAllAcrossMixedReps) {
  auto MakeVector = [](uint32_t Lo, uint32_t N) {
    IdSet S;
    for (uint32_t I = 0; I < N; ++I)
      S.insert(Lo + 7 * I);
    EXPECT_FALSE(S.usesBitmap());
    return S;
  };
  auto MakeBitmap = [](uint32_t Lo, uint32_t N) {
    IdSet S;
    for (uint32_t I = 0; I < N; ++I)
      S.insert(Lo + I);
    EXPECT_TRUE(S.usesBitmap());
    return S;
  };
  // All four (this-rep, other-rep) combinations, verified against a
  // std::set reference.
  struct Case {
    IdSet A, B;
  } Cases[] = {
      {MakeVector(0, 10), MakeVector(5, 10)},
      {MakeVector(0, 10), MakeBitmap(100, 80)},
      {MakeBitmap(0, 80), MakeVector(40, 10)},
      {MakeBitmap(0, 80), MakeBitmap(50, 80)},
  };
  for (Case &C : Cases) {
    std::set<uint32_t> Ref(C.A.begin(), C.A.end());
    Ref.insert(C.B.begin(), C.B.end());
    bool ShouldGrow = Ref.size() > C.A.size();
    EXPECT_EQ(C.A.insertAll(C.B), ShouldGrow);
    EXPECT_EQ(C.A.size(), Ref.size());
    EXPECT_TRUE(std::equal(C.A.begin(), C.A.end(), Ref.begin(), Ref.end()));
    EXPECT_FALSE(C.A.insertAll(C.B)) << "second insertAll reported growth";
  }
}

TEST(IdSetHybridTest, InsertAllExceptMatchesReference) {
  std::mt19937 Rng(7);
  for (int Trial = 0; Trial < 40; ++Trial) {
    // Random sizes straddle the promotion threshold so every rep mix of
    // (dst, src, except) comes up across trials.
    auto MakeRandom = [&](uint32_t Range) {
      IdSet S;
      std::uniform_int_distribution<uint32_t> Num(0, 120);
      std::uniform_int_distribution<uint32_t> Val(0, Range);
      uint32_t N = Num(Rng);
      for (uint32_t I = 0; I < N; ++I)
        S.insert(Val(Rng));
      return S;
    };
    IdSet Dst = MakeRandom(300), Src = MakeRandom(300),
          Except = MakeRandom(300);
    std::set<uint32_t> Ref(Dst.begin(), Dst.end());
    size_t Before = Ref.size();
    for (uint32_t Id : Src)
      if (!Except.contains(Id))
        Ref.insert(Id);
    EXPECT_EQ(Dst.insertAllExcept(Src, Except), Ref.size() > Before);
    EXPECT_EQ(Dst.size(), Ref.size());
    EXPECT_TRUE(std::equal(Dst.begin(), Dst.end(), Ref.begin(), Ref.end()));
  }
}

TEST(IdSetHybridTest, InsertAllExceptTrimsTrailingWords) {
  // Everything beyond the destination's range is masked out by Except:
  // the bitmap must not keep trailing zero words, or content equality
  // (which compares Words directly) would break.
  IdSet Dst, Src, Except;
  for (uint32_t I = 0; I < 80; ++I)
    Dst.insert(I);
  for (uint32_t I = 1000; I < 1100; ++I) {
    Src.insert(I);
    Except.insert(I);
  }
  ASSERT_TRUE(Dst.usesBitmap());
  ASSERT_TRUE(Src.usesBitmap());
  ASSERT_TRUE(Except.usesBitmap());
  EXPECT_FALSE(Dst.insertAllExcept(Src, Except));
  IdSet Same;
  for (uint32_t I = 0; I < 80; ++I)
    Same.insert(I);
  EXPECT_EQ(Dst, Same);
  EXPECT_EQ(Same, Dst);
}

TEST(IdSetHybridTest, IterationOrderDeterministicAcrossReps) {
  // Same content built in different orders and driven into different
  // representations must iterate identically (ascending).
  std::vector<uint32_t> Ids = {90, 3, 250, 17, 64, 63, 128, 0, 200, 8};
  IdSet Forward, Backward, Promoted;
  for (uint32_t Id : Ids)
    Forward.insert(Id);
  for (auto It = Ids.rbegin(); It != Ids.rend(); ++It)
    Backward.insert(*It);
  for (uint32_t Id : Ids)
    Promoted.insert(Id);
  for (uint32_t I = 0; I < 100; ++I)
    Promoted.insert(300 + I); // Force the bitmap rep with ballast...
  for (uint32_t I = 0; I < 100; ++I)
    Promoted.erase(300 + I); // ...then remove it (the rep sticks while
                             // the set stays nonempty).
  ASSERT_TRUE(Promoted.usesBitmap());
  std::vector<uint32_t> Sorted = Ids;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_TRUE(std::equal(Forward.begin(), Forward.end(), Sorted.begin(),
                         Sorted.end()));
  EXPECT_TRUE(std::equal(Backward.begin(), Backward.end(), Sorted.begin(),
                         Sorted.end()));
  EXPECT_TRUE(std::equal(Promoted.begin(), Promoted.end(), Sorted.begin(),
                         Sorted.end()));
  EXPECT_EQ(Forward, Promoted);
  EXPECT_EQ(Promoted, Backward);
}

TEST(IdSetHybridTest, EqualityAndContainsProperty) {
  // Randomized property test: a vector-rep and a bitmap-rep set built
  // from the same pool agree with std::set on contains/size/equality
  // through interleaved inserts and erases.
  std::mt19937 Rng(1234);
  for (int Trial = 0; Trial < 30; ++Trial) {
    IdSet S;
    std::set<uint32_t> Ref;
    std::uniform_int_distribution<uint32_t> Val(0, 400);
    std::uniform_int_distribution<int> Op(0, 3);
    for (int I = 0; I < 400; ++I) {
      uint32_t V = Val(Rng);
      if (Op(Rng) == 0) {
        EXPECT_EQ(S.erase(V), Ref.erase(V) == 1);
      } else {
        EXPECT_EQ(S.insert(V), Ref.insert(V).second);
      }
      EXPECT_EQ(S.contains(V), Ref.count(V) == 1);
    }
    EXPECT_EQ(S.size(), Ref.size());
    EXPECT_TRUE(std::equal(S.begin(), S.end(), Ref.begin(), Ref.end()));
    // Rebuild the same content the other way around; equality must hold
    // regardless of which representation each side landed in.
    std::vector<uint32_t> Ids(Ref.begin(), Ref.end());
    IdSet Rebuilt(Ids);
    EXPECT_EQ(S, Rebuilt);
    EXPECT_EQ(Rebuilt, S);
    EXPECT_FALSE(S != Rebuilt);
  }
}

//===--------------------------------------------------------------------===//
// SmallMap
//===--------------------------------------------------------------------===//

TEST(SmallMapTest, BasicOperationsMatchStdMap) {
  SmallMap<uint32_t, uint32_t> M;
  std::map<uint32_t, uint32_t> Ref;
  std::mt19937 Rng(99);
  std::uniform_int_distribution<uint32_t> Val(0, 50);
  for (int I = 0; I < 300; ++I) {
    uint32_t K = Val(Rng), V = Val(Rng);
    switch (I % 3) {
    case 0: {
      auto [It, Inserted] = M.emplace(K, V);
      auto [RIt, RInserted] = Ref.emplace(K, V);
      EXPECT_EQ(Inserted, RInserted);
      EXPECT_EQ(It->second, RIt->second);
      break;
    }
    case 1:
      M[K] = V;
      Ref[K] = V;
      break;
    case 2:
      EXPECT_EQ(M.count(K), Ref.count(K));
      if (Ref.count(K))
        EXPECT_EQ(M.find(K)->second, Ref.find(K)->second);
      else
        EXPECT_TRUE(M.find(K) == M.end());
      break;
    }
  }
  EXPECT_EQ(M.size(), Ref.size());
  // Iteration order matches std::map (ascending by key).
  auto It = M.begin();
  for (const auto &[K, V] : Ref) {
    ASSERT_TRUE(It != M.end());
    EXPECT_EQ(It->first, K);
    EXPECT_EQ(It->second, V);
    ++It;
  }
  EXPECT_TRUE(It == M.end());
}

TEST(StatsTest, MergeHistogramBatchesSamples) {
  Stats S;
  Histogram Local;
  Local.record(1);
  Local.record(100);
  Local.record(3);
  S.mergeHistogram("hist.x", Local);
  S.mergeHistogram("hist.x", Histogram()); // Empty merge is a no-op.
  Histogram Out = S.histogram("hist.x");
  EXPECT_EQ(Out.count(), 3u);
  EXPECT_EQ(Out.sum(), 104u);
  EXPECT_EQ(Out.min(), 1u);
  EXPECT_EQ(Out.max(), 100u);
}
