//===- support_test.cpp - Unit tests for support utilities ---------------===//

#include "support/IdSet.h"
#include "support/Stats.h"
#include "support/StringPool.h"
#include "support/UnionFind.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace thresher;

TEST(IdSetTest, InsertContainsErase) {
  IdSet S;
  EXPECT_TRUE(S.empty());
  EXPECT_TRUE(S.insert(5));
  EXPECT_FALSE(S.insert(5));
  EXPECT_TRUE(S.insert(1));
  EXPECT_TRUE(S.insert(9));
  EXPECT_TRUE(S.contains(5));
  EXPECT_FALSE(S.contains(2));
  EXPECT_EQ(S.size(), 3u);
  EXPECT_TRUE(S.erase(5));
  EXPECT_FALSE(S.erase(5));
  EXPECT_EQ(S.size(), 2u);
}

TEST(IdSetTest, InitializerListDedupsAndSorts) {
  IdSet S = {3, 1, 3, 2, 1};
  EXPECT_EQ(S.size(), 3u);
  std::vector<uint32_t> Elems(S.begin(), S.end());
  EXPECT_EQ(Elems, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(IdSetTest, SetOperations) {
  IdSet A = {1, 2, 3, 4};
  IdSet B = {3, 4, 5};
  IdSet I = A.intersectWith(B);
  EXPECT_EQ(I, (IdSet{3, 4}));
  EXPECT_FALSE(A.disjointWith(B));
  EXPECT_TRUE(A.disjointWith(IdSet{7, 8}));
  EXPECT_TRUE(I.subsetOf(A));
  EXPECT_FALSE(A.subsetOf(I));
  IdSet C = A;
  EXPECT_TRUE(C.insertAll(B));
  EXPECT_EQ(C, (IdSet{1, 2, 3, 4, 5}));
  EXPECT_FALSE(C.insertAll(B));
}

TEST(IdSetTest, PropertyAgainstStdSet) {
  std::mt19937 Rng(42);
  for (int Trial = 0; Trial < 50; ++Trial) {
    IdSet S;
    std::set<uint32_t> Ref;
    for (int I = 0; I < 100; ++I) {
      uint32_t V = Rng() % 30;
      if (Rng() % 3 == 0) {
        EXPECT_EQ(S.erase(V), Ref.erase(V) > 0);
      } else {
        EXPECT_EQ(S.insert(V), Ref.insert(V).second);
      }
    }
    EXPECT_EQ(S.size(), Ref.size());
    for (uint32_t V : Ref)
      EXPECT_TRUE(S.contains(V));
  }
}

TEST(StringPoolTest, InternIsIdempotent) {
  StringPool SP;
  NameId A = SP.intern("hello");
  NameId B = SP.intern("world");
  NameId C = SP.intern("hello");
  EXPECT_EQ(A, C);
  EXPECT_NE(A, B);
  EXPECT_EQ(SP.str(A), "hello");
  EXPECT_EQ(SP.lookup("world"), B);
  EXPECT_EQ(SP.lookup("missing"), ~0u);
}

TEST(StringPoolTest, ManyStringsStayValid) {
  // Regression guard for the SSO/string_view stability issue.
  StringPool SP;
  std::vector<NameId> Ids;
  for (int I = 0; I < 1000; ++I)
    Ids.push_back(SP.intern("name" + std::to_string(I)));
  for (int I = 0; I < 1000; ++I) {
    EXPECT_EQ(SP.str(Ids[I]), "name" + std::to_string(I));
    EXPECT_EQ(SP.lookup("name" + std::to_string(I)), Ids[I]);
  }
}

TEST(UnionFindTest, BasicUnions) {
  UnionFind UF;
  EXPECT_FALSE(UF.sameClass(1, 2));
  UF.unite(1, 2);
  EXPECT_TRUE(UF.sameClass(1, 2));
  UF.unite(3, 4);
  EXPECT_FALSE(UF.sameClass(2, 3));
  UF.unite(2, 3);
  EXPECT_TRUE(UF.sameClass(1, 4));
  EXPECT_EQ(UF.find(1), UF.find(4));
}

TEST(StatsTest, BumpAndMerge) {
  Stats A, B;
  A.bump("x");
  A.bump("x", 4);
  B.bump("y", 2);
  EXPECT_EQ(A.get("x"), 5u);
  EXPECT_EQ(A.get("missing"), 0u);
  A.mergeFrom(B);
  EXPECT_EQ(A.get("y"), 2u);
}
