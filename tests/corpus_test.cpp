//===- corpus_test.cpp - File-driven regression corpus --------------------===//
//
// Runs every .mj file under tests/corpus/ and checks the expectations
// embedded in its comments:
//
//   // ANDROID                              prepend the Android library
//   // CHECK-EDGE-GLOBAL Cls.field label {WITNESSED|REFUTED|TIMEOUT}
//   // CHECK-EDGE-FIELD  baseLabel field targetLabel {...}
//   // CHECK-ALARMS <total> REFUTED <n>     run the leak client
//
// The corpus is the place to drop regressions: a self-contained program
// plus the verdicts that must hold.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "leak/LeakChecker.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace thresher;

#ifndef THRESHER_CORPUS_DIR
#error "THRESHER_CORPUS_DIR must be defined by the build"
#endif

namespace {

struct EdgeCheck {
  bool IsGlobal = false;
  std::string A, B, C; // Global: (Cls.field, label). Field: (base, f, tgt).
  std::string Expect;
};

struct CorpusCase {
  std::string Path;
  bool Android = false;
  std::vector<EdgeCheck> Edges;
  bool HasAlarmCheck = false;
  uint32_t ExpectAlarms = 0, ExpectRefuted = 0;
};

CorpusCase parseCase(const std::string &Path) {
  CorpusCase C;
  C.Path = Path;
  std::ifstream In(Path);
  std::string Line;
  while (std::getline(In, Line)) {
    std::istringstream LS(Line);
    std::string Tok0, Tok1;
    LS >> Tok0 >> Tok1;
    if (Tok0 != "//")
      continue;
    if (Tok1 == "ANDROID") {
      C.Android = true;
    } else if (Tok1 == "CHECK-EDGE-GLOBAL") {
      EdgeCheck E;
      E.IsGlobal = true;
      LS >> E.A >> E.B >> E.Expect;
      C.Edges.push_back(E);
    } else if (Tok1 == "CHECK-EDGE-FIELD") {
      EdgeCheck E;
      LS >> E.A >> E.B >> E.C >> E.Expect;
      C.Edges.push_back(E);
    } else if (Tok1 == "CHECK-ALARMS") {
      std::string Kw;
      LS >> C.ExpectAlarms >> Kw >> C.ExpectRefuted;
      C.HasAlarmCheck = true;
    }
  }
  return C;
}

std::vector<CorpusCase> allCases() {
  std::vector<CorpusCase> Cases;
  for (const auto &Entry :
       std::filesystem::directory_iterator(THRESHER_CORPUS_DIR)) {
    if (Entry.path().extension() == ".mj")
      Cases.push_back(parseCase(Entry.path().string()));
  }
  std::sort(Cases.begin(), Cases.end(),
            [](const CorpusCase &A, const CorpusCase &B) {
              return A.Path < B.Path;
            });
  return Cases;
}

class CorpusTest : public ::testing::TestWithParam<CorpusCase> {};

} // namespace

TEST_P(CorpusTest, ExpectationsHold) {
  const CorpusCase &C = GetParam();
  SCOPED_TRACE(C.Path);
  std::ifstream In(C.Path);
  std::stringstream SS;
  SS << In.rdbuf();

  CompileResult CR = C.Android ? compileAndroidApp(SS.str())
                               : compileMJ(SS.str());
  ASSERT_TRUE(CR.ok()) << (CR.Errors.empty() ? "?" : CR.Errors[0]);
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();

  auto Loc = [&](const std::string &Label) {
    for (AbsLocId L = 0; L < PTA->Locs.size(); ++L)
      if (PTA->Locs.label(P, L) == Label)
        return L;
    ADD_FAILURE() << "no location labelled " << Label;
    return InvalidId;
  };

  WitnessSearch WS(P, *PTA);
  for (const EdgeCheck &E : C.Edges) {
    SearchOutcome O;
    if (E.IsGlobal) {
      size_t Dot = E.A.find('.');
      ASSERT_NE(Dot, std::string::npos) << E.A;
      GlobalId G = P.findGlobal(E.A.substr(0, Dot), E.A.substr(Dot + 1));
      ASSERT_NE(G, InvalidId) << E.A;
      O = WS.searchGlobalEdge(G, Loc(E.B)).Outcome;
      EXPECT_EQ(outcomeName(O), E.Expect) << E.A << " -> " << E.B;
    } else {
      FieldId F = E.B == "@elems" ? P.ElemsField : P.findFieldByName(E.B);
      ASSERT_NE(F, InvalidId) << E.B;
      O = WS.searchFieldEdge(Loc(E.A), F, Loc(E.C)).Outcome;
      EXPECT_EQ(outcomeName(O), E.Expect)
          << E.A << "." << E.B << " -> " << E.C;
    }
  }

  if (C.HasAlarmCheck) {
    ClassId Act = activityBaseClass(P);
    ASSERT_NE(Act, InvalidId) << "CHECK-ALARMS needs the Android library";
    LeakChecker LC(P, *PTA, Act);
    LeakReport R = LC.run();
    EXPECT_EQ(R.NumAlarms, C.ExpectAlarms);
    EXPECT_EQ(R.RefutedAlarms, C.ExpectRefuted);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Files, CorpusTest, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<CorpusCase> &Info) {
      std::string Name =
          std::filesystem::path(Info.param.Path).stem().string();
      for (char &Ch : Name)
        if (!isalnum(static_cast<unsigned char>(Ch)))
          Ch = '_';
      return Name;
    });
