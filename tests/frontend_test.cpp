//===- frontend_test.cpp - Lexer, parser, and lowering tests --------------===//

#include "frontend/Frontend.h"
#include "frontend/Lexer.h"
#include "frontend/Parser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

using namespace thresher;
using namespace thresher::mj;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, BasicTokens) {
  auto Toks = lex("class Foo { var x; } // comment\n fun main() { x = 1; }");
  ASSERT_GT(Toks.size(), 5u);
  EXPECT_EQ(Toks[0].Kind, Tok::KwClass);
  EXPECT_EQ(Toks[1].Kind, Tok::Ident);
  EXPECT_EQ(Toks[1].Text, "Foo");
  EXPECT_EQ(Toks.back().Kind, Tok::Eof);
}

TEST(LexerTest, OperatorsAndLiterals) {
  auto Toks = lex("<= >= == != && || 42 \"hi\\n\" @");
  EXPECT_EQ(Toks[0].Kind, Tok::Le);
  EXPECT_EQ(Toks[1].Kind, Tok::Ge);
  EXPECT_EQ(Toks[2].Kind, Tok::EqEq);
  EXPECT_EQ(Toks[3].Kind, Tok::NotEq);
  EXPECT_EQ(Toks[4].Kind, Tok::AndAnd);
  EXPECT_EQ(Toks[5].Kind, Tok::OrOr);
  EXPECT_EQ(Toks[6].Kind, Tok::IntLit);
  EXPECT_EQ(Toks[6].IntVal, 42);
  EXPECT_EQ(Toks[7].Kind, Tok::StrLit);
  EXPECT_EQ(Toks[7].Text, "hi\n");
  EXPECT_EQ(Toks[8].Kind, Tok::At);
}

TEST(LexerTest, LineTracking) {
  auto Toks = lex("a\nb\n\nc");
  EXPECT_EQ(Toks[0].Line, 1u);
  EXPECT_EQ(Toks[1].Line, 2u);
  EXPECT_EQ(Toks[2].Line, 4u);
}

TEST(LexerTest, BlockComments) {
  auto Toks = lex("a /* junk \n junk */ b");
  EXPECT_EQ(Toks[0].Text, "a");
  EXPECT_EQ(Toks[1].Text, "b");
  EXPECT_EQ(Toks[1].Line, 2u);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ParserTest, ClassWithMembers) {
  auto R = parseUnit("container class Vec extends Object {\n"
                     "  static var EMPTY = new Object[1] @e;\n"
                     "  var sz;\n"
                     "  Vec() { sz = 0; }\n"
                     "  push(v) { }\n"
                     "  static make() { return new Vec(); }\n"
                     "}\n");
  ASSERT_TRUE(R.ok()) << R.Errors[0];
  ASSERT_EQ(R.TheUnit.Classes.size(), 1u);
  const ClassDecl &C = R.TheUnit.Classes[0];
  EXPECT_TRUE(C.Container);
  EXPECT_EQ(C.Name, "Vec");
  EXPECT_EQ(C.Super, "Object");
  ASSERT_EQ(C.Fields.size(), 2u);
  EXPECT_TRUE(C.Fields[0].IsStatic);
  EXPECT_NE(C.Fields[0].Init, nullptr);
  ASSERT_EQ(C.Methods.size(), 3u);
  EXPECT_TRUE(C.Methods[0].IsCtor);
  EXPECT_FALSE(C.Methods[1].IsCtor);
  EXPECT_TRUE(C.Methods[2].IsStatic);
}

TEST(ParserTest, StatementsAndConditions) {
  auto R = parseUnit("fun f(a, b) {\n"
                     "  var x = a + b * 2;\n"
                     "  if (x < 10 && a != null) { x = x - 1; }\n"
                     "  else if (*) { return x; }\n"
                     "  while (x > 0) { x = x - 1; }\n"
                     "  return;\n"
                     "}\n");
  ASSERT_TRUE(R.ok()) << R.Errors[0];
  ASSERT_EQ(R.TheUnit.Funs.size(), 1u);
  const FunDecl &F = R.TheUnit.Funs[0];
  EXPECT_EQ(F.Params.size(), 2u);
  ASSERT_GE(F.Body.size(), 4u);
  EXPECT_EQ(F.Body[0]->K, Stmt::Kind::VarDecl);
  EXPECT_EQ(F.Body[1]->K, Stmt::Kind::If);
  EXPECT_EQ(F.Body[1]->C->K, Cond::Kind::And);
  EXPECT_EQ(F.Body[2]->K, Stmt::Kind::While);
}

TEST(ParserTest, SyntaxErrorsReported) {
  auto R = parseUnit("class { }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("line 1"), std::string::npos);
}

TEST(ParserTest, PostfixChains) {
  auto R = parseUnit("fun f(o) { var x = o.a.b[3].m(1, \"s\"); }");
  ASSERT_TRUE(R.ok()) << R.Errors[0];
  const Stmt &S = *R.TheUnit.Funs[0].Body[0];
  ASSERT_EQ(S.K, Stmt::Kind::VarDecl);
  ASSERT_EQ(S.E1->K, Expr::Kind::Call);
  EXPECT_EQ(S.E1->Str, "m");
  EXPECT_EQ(S.E1->Args.size(), 2u);
  EXPECT_EQ(S.E1->A->K, Expr::Kind::Index);
}

//===----------------------------------------------------------------------===//
// Lowering (full frontend)
//===----------------------------------------------------------------------===//

TEST(FrontendTest, SimpleProgramCompiles) {
  auto R = compileMJ("class C { var f; }\n"
                     "fun main() {\n"
                     "  var c = new C() @c0;\n"
                     "  c.f = c;\n"
                     "}\n");
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  EXPECT_NE(R.Prog->EntryFunc, InvalidId);
  EXPECT_EQ(R.Prog->funcName(R.Prog->EntryFunc), "__entry__");
  EXPECT_NE(R.Prog->findClass("C"), InvalidId);
  EXPECT_NE(R.Prog->findFunc("main"), InvalidId);
  EXPECT_NE(R.Prog->findFunc("__clinit__"), InvalidId);
}

TEST(FrontendTest, MethodsCtorsAndStatics) {
  auto R = compileMJ(
      "class A {\n"
      "  var x;\n"
      "  static var count = 0;\n"
      "  A(v) { x = v; A.count = A.count + 1; }\n"
      "  get() { return x; }\n"
      "  static reset() { A.count = 0; }\n"
      "}\n"
      "class B extends A {\n"
      "  B(v) { super(v); }\n"
      "  get() { return null; }\n"
      "}\n"
      "fun main() {\n"
      "  var a = new A(new A(null) @inner) @outer;\n"
      "  var b = new B(null) @b0;\n"
      "  var g = a.get();\n"
      "  var h = b.get();\n"
      "  A.reset();\n"
      "  reset();\n" // Free-context call resolves to... nothing: error.
      "}\n");
  // "reset();" from a free function has no enclosing class: expect error.
  EXPECT_FALSE(R.ok());
}

TEST(FrontendTest, BareNamesResolveThroughScopes) {
  auto R = compileMJ("class A {\n"
                     "  var f;\n"
                     "  static var s;\n"
                     "  m() {\n"
                     "    f = null;\n"        // implicit this.f
                     "    s = null;\n"        // static field
                     "    var f = new A();\n" // local shadows field
                     "    f.f = f;\n"
                     "  }\n"
                     "}\n"
                     "fun main() { var a = new A() @a0; a.m(); }\n");
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
}

TEST(FrontendTest, ErrorsHaveLineNumbers) {
  auto R = compileMJ("fun main() {\n  var x = unknownVar;\n}\n");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("line 2"), std::string::npos);
  EXPECT_NE(R.Errors[0].find("unknownVar"), std::string::npos);
}

TEST(FrontendTest, DuplicateClassRejected) {
  auto R = compileMJ("class A { } class A { } fun main() { }");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Errors[0].find("duplicate class"), std::string::npos);
}

TEST(FrontendTest, InheritanceCycleRejected) {
  auto R = compileMJ("class A extends B { } class B extends A { }"
                     "fun main() { }");
  ASSERT_FALSE(R.ok());
}

TEST(FrontendTest, ThisInStaticRejected) {
  auto R = compileMJ("class A { static m() { var x = this; } }"
                     "fun main() { }");
  ASSERT_FALSE(R.ok());
}

TEST(FrontendTest, WhileLoopStructure) {
  auto R = compileMJ("fun main() {\n"
                     "  var i = 0;\n"
                     "  while (i < 5) { i = i + 1; }\n"
                     "}\n");
  ASSERT_TRUE(R.ok());
  FuncId Main = R.Prog->findFunc("main");
  const Function &Fn = R.Prog->Funcs[Main];
  // Expect at least one natural loop.
  bool HasLoop = false;
  for (BlockId B = 0; B < Fn.Blocks.size(); ++B)
    HasLoop |= Fn.isLoopHeader(B);
  EXPECT_TRUE(HasLoop);
}

TEST(FrontendTest, NondetLowersToHavoc) {
  auto R = compileMJ("fun main() { if (*) { var x = 1; } }");
  ASSERT_TRUE(R.ok());
  FuncId Main = R.Prog->findFunc("main");
  const Function &Fn = R.Prog->Funcs[Main];
  bool HasHavoc = false;
  for (const BasicBlock &B : Fn.Blocks)
    for (const Instruction &I : B.Insts)
      HasHavoc |= I.Op == Opcode::Havoc;
  EXPECT_TRUE(HasHavoc);
}

TEST(FrontendTest, StringLiteralsAllocateStrings) {
  auto R = compileMJ("fun main() { var s = \"hello\"; }");
  ASSERT_TRUE(R.ok());
  bool Found = false;
  for (const AllocSiteInfo &A : R.Prog->AllocSites)
    if (A.Class == R.Prog->StringClass &&
        A.StrLiteral != InvalidId &&
        R.Prog->Names.str(A.StrLiteral) == "hello")
      Found = true;
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Additional lowering semantics
//===----------------------------------------------------------------------===//

namespace {

/// Runs main and returns the integer value left in static field Out.r by
/// comparing via guarded stores (no direct int output channel).
bool mainSetsFlag(const std::string &Src) {
  auto R = compileMJ(Src);
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  if (!R.ok())
    return false;
  // Interpreted in interp_test; here we only check structure compiles.
  return true;
}

} // namespace

TEST(FrontendTest, OperatorPrecedence) {
  // 2 + 3 * 4 == 14 must parse as 2 + (3 * 4).
  auto R = mj::parseUnit("fun f() { var x = 2 + 3 * 4; }");
  ASSERT_TRUE(R.ok());
  const mj::Expr &E = *R.TheUnit.Funs[0].Body[0]->E1;
  ASSERT_EQ(E.K, mj::Expr::Kind::Binary);
  EXPECT_EQ(E.BK, BinopKind::Add);
  ASSERT_EQ(E.B->K, mj::Expr::Kind::Binary);
  EXPECT_EQ(E.B->BK, BinopKind::Mul);
}

TEST(FrontendTest, UnaryMinusFolding) {
  auto R = compileMJ("fun main() { var x = -5; var y = x - -3; }");
  ASSERT_TRUE(R.ok());
  FuncId Main = R.Prog->findFunc("main");
  bool SawNegFive = false;
  for (const BasicBlock &B : R.Prog->Funcs[Main].Blocks)
    for (const Instruction &I : B.Insts)
      if (I.Op == Opcode::ConstInt && I.IntVal == -5)
        SawNegFive = true;
  EXPECT_TRUE(SawNegFive);
}

TEST(FrontendTest, ElseIfChains) {
  EXPECT_TRUE(mainSetsFlag("fun main() {\n"
                           "  var x = 2;\n"
                           "  if (x == 1) { x = 10; }\n"
                           "  else if (x == 2) { x = 20; }\n"
                           "  else if (x == 3) { x = 30; }\n"
                           "  else { x = 40; }\n"
                           "}\n"));
}

TEST(FrontendTest, ShortCircuitConditions) {
  auto R = compileMJ("fun main() {\n"
                     "  var x = 1; var y = 2;\n"
                     "  if (x < 2 && (y > 1 || y < 0)) { x = 3; }\n"
                     "  while (x > 0 && y > 0) { x = x - 1; }\n"
                     "}\n");
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
}

TEST(FrontendTest, MultiSourceCompilation) {
  std::vector<std::string> Sources = {
      "class Base { var f; m() { return f; } }\n",
      "class Derived extends Base { m() { return null; } }\n"
      "fun main() { var d = new Derived() @d0; var r = d.m(); }\n"};
  auto R = compileMJ(Sources);
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  EXPECT_TRUE(R.Prog->isSubclassOf(R.Prog->findClass("Derived"),
                                   R.Prog->findClass("Base")));
}

TEST(FrontendTest, ForwardClassReferences) {
  // A references B declared later.
  auto R = compileMJ("class A extends B { }\n"
                     "class B { }\n"
                     "fun main() { var a = new A() @a0; }\n");
  ASSERT_TRUE(R.ok());
}

TEST(FrontendTest, ClinitRunsInDeclarationOrder) {
  auto R = compileMJ("class First { static var a = new Object() @oa; }\n"
                     "class Second { static var b = First.a; }\n"
                     "fun main() { }\n");
  ASSERT_TRUE(R.ok());
  // __clinit__ must store First.a before reading it for Second.b.
  FuncId Clinit = R.Prog->findFunc("__clinit__");
  ASSERT_NE(Clinit, InvalidId);
  int StoreA = -1, LoadA = -1, Idx = 0;
  GlobalId GA = R.Prog->findGlobal("First", "a");
  for (const Instruction &I : R.Prog->Funcs[Clinit].Blocks[0].Insts) {
    if (I.Op == Opcode::StoreStatic && I.Global == GA)
      StoreA = Idx;
    if (I.Op == Opcode::LoadStatic && I.Global == GA)
      LoadA = Idx;
    ++Idx;
  }
  ASSERT_GE(StoreA, 0);
  ASSERT_GE(LoadA, 0);
  EXPECT_LT(StoreA, LoadA);
}

TEST(FrontendTest, AllocationLabelsPropagate) {
  auto R = compileMJ("fun main() {\n"
                     "  var a = new Object() @alpha;\n"
                     "  var b = new Object[2] @beta;\n"
                     "  var s = \"lit\" @gamma;\n"
                     "}\n");
  ASSERT_TRUE(R.ok());
  std::set<std::string> Labels;
  for (AllocSiteId S = 0; S < R.Prog->AllocSites.size(); ++S)
    Labels.insert(R.Prog->allocLabel(S));
  EXPECT_TRUE(Labels.count("alpha"));
  EXPECT_TRUE(Labels.count("beta"));
  EXPECT_TRUE(Labels.count("gamma"));
}

TEST(FrontendTest, SuperCallOutsideCtorRejected) {
  auto R = compileMJ("class A { A() { } }\n"
                     "class B extends A {\n"
                     "  B() { super(); }\n"
                     "  m() { super(); }\n"
                     "}\n"
                     "fun main() { }\n");
  ASSERT_FALSE(R.ok());
  bool Found = false;
  for (const std::string &E : R.Errors)
    Found |= E.find("constructor") != std::string::npos;
  EXPECT_TRUE(Found);
}

TEST(FrontendTest, CtorArityMismatchRejected) {
  auto R = compileMJ("class A { A(x) { } }\n"
                     "fun main() { var a = new A(); }\n");
  ASSERT_FALSE(R.ok());
}

TEST(FrontendTest, DirectCallArityMismatchRejected) {
  auto R = compileMJ("fun f(a, b) { }\n"
                     "fun main() { f(null); }\n");
  ASSERT_FALSE(R.ok());
}

TEST(FrontendTest, NoCtorWithArgsRejected) {
  auto R = compileMJ("class A { }\n"
                     "fun main() { var a = new A(null); }\n");
  ASSERT_FALSE(R.ok());
}

TEST(FrontendTest, InstanceFieldInitializerRejected) {
  auto R = compileMJ("class A { var f = 1; }\nfun main() { }\n");
  ASSERT_FALSE(R.ok());
}

TEST(FrontendTest, VariableShadowingInNestedScopes) {
  auto R = compileMJ("fun main() {\n"
                     "  var x = 1;\n"
                     "  if (x > 0) {\n"
                     "    var y = 2;\n"
                     "    x = y;\n"
                     "  }\n"
                     "  if (x > 0) {\n"
                     "    var y = 3;\n" // Fresh scope: fine.
                     "    x = y;\n"
                     "  }\n"
                     "}\n");
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
}

TEST(FrontendTest, DuplicateInSameScopeRejected) {
  auto R = compileMJ("fun main() { var x = 1; var x = 2; }\n");
  ASSERT_FALSE(R.ok());
}

TEST(FrontendTest, EntryWrapperCallsClinitFirst) {
  auto R = compileMJ("class A { static var g = new Object() @o0; }\n"
                     "fun main() { }\n");
  ASSERT_TRUE(R.ok());
  const Function &Entry = R.Prog->Funcs[R.Prog->EntryFunc];
  ASSERT_GE(Entry.Blocks[0].Insts.size(), 2u);
  const Instruction &First = Entry.Blocks[0].Insts[0];
  ASSERT_EQ(First.Op, Opcode::Call);
  EXPECT_EQ(R.Prog->funcName(First.DirectCallee), "__clinit__");
}

TEST(FrontendTest, StaticMethodInheritedThroughChain) {
  auto R = compileMJ("class A { static make() { return new Object() @oa; "
                     "} }\n"
                     "class B extends A { }\n"
                     "fun main() { var x = B.make(); }\n");
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
}

//===----------------------------------------------------------------------===//
// Parser robustness fuzzing
//===----------------------------------------------------------------------===//

namespace {

class ParserFuzzTest : public ::testing::TestWithParam<uint32_t> {};

} // namespace

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  // The parser (and, when parsing succeeds, the lowerer) must terminate
  // without crashing on arbitrary token sequences; errors are expected.
  std::mt19937 Rng(GetParam());
  const char *Pieces[] = {
      "class",  "extends", "container", "static", "var",   "fun",
      "if",     "else",    "while",     "return", "new",   "null",
      "this",   "super",   "{",         "}",      "(",     ")",
      "[",      "]",       ";",         ",",      ".",     "@",
      "=",      "==",      "!=",        "<",      "<=",    ">",
      ">=",     "+",       "-",         "*",      "/",     "%",
      "&&",     "||",      "x",         "y",      "Foo",   "main",
      "42",     "\"s\"",   "f",         "m",      "0",     "!",
  };
  std::string Src;
  int Len = 5 + static_cast<int>(Rng() % 120);
  for (int I = 0; I < Len; ++I) {
    Src += Pieces[Rng() % (sizeof(Pieces) / sizeof(Pieces[0]))];
    Src += " ";
  }
  CompileResult R = compileMJ(Src);
  // Either it failed with diagnostics or produced a verifiable program.
  if (R.ok())
    EXPECT_NE(R.Prog, nullptr);
  else
    EXPECT_FALSE(R.Errors.empty());
}

INSTANTIATE_TEST_SUITE_P(FuzzSeeds, ParserFuzzTest,
                         ::testing::Range(0u, 25u));
