//===- fingerprint_test.cpp - Structural fingerprint stability ------------===//
//
// Property tests for the stable IR fingerprints that key the refutation
// cache: recompiling identical source must reproduce identical hashes
// (across the whole corpus), and any single-point mutation — an
// instruction, a callee, a field name — must change the mutated
// function's hash while leaving every other function's hash alone.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "ir/Fingerprint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

using namespace thresher;

#ifndef THRESHER_CORPUS_DIR
#error "THRESHER_CORPUS_DIR must be defined by the build"
#endif

namespace {

FuncId funcByName(const Program &P, const std::string &Name) {
  for (FuncId F = 0; F < P.Funcs.size(); ++F)
    if (P.funcName(F) == Name)
      return F;
  return InvalidId;
}

/// Per-function fingerprints keyed by qualified name.
std::map<std::string, uint64_t> allFingerprints(const Program &P) {
  std::map<std::string, uint64_t> Out;
  for (FuncId F = 0; F < P.Funcs.size(); ++F)
    Out[P.funcName(F)] = fingerprintFunction(P, F);
  return Out;
}

const char *BaseSource = R"(
class Sink { static var a; static var b; }
class A { m(o) { Sink.a = o; } }
fun id(x) { return x; }
fun id2(x) { return x; }
fun main() {
  var o = new Object() @o1;
  Sink.b = id(o);
  var a = new A() @a0;
  a.m(new Object() @o2);
}
)";

} // namespace

TEST(FingerprintTest, HasherIsLengthPrefixed) {
  // Concatenation must not collide: ("ab","c") != ("a","bc").
  StableHasher H1, H2;
  H1.add(std::string_view("ab"));
  H1.add(std::string_view("c"));
  H2.add(std::string_view("a"));
  H2.add(std::string_view("bc"));
  EXPECT_NE(H1.hash(), H2.hash());

  StableHasher H3, H4;
  H3.add(std::string_view(""));
  EXPECT_NE(H3.hash(), H4.hash()) << "empty field must still be recorded";
}

TEST(FingerprintTest, RecompileIsStable) {
  CompileResult A = compileMJ(BaseSource);
  CompileResult B = compileMJ(BaseSource);
  ASSERT_TRUE(A.ok() && B.ok());
  EXPECT_EQ(allFingerprints(*A.Prog), allFingerprints(*B.Prog));
  EXPECT_EQ(fingerprintProgram(*A.Prog), fingerprintProgram(*B.Prog));
  FuncId F = funcByName(*A.Prog, "main");
  ASSERT_NE(F, InvalidId);
  EXPECT_EQ(functionFingerprintText(*A.Prog, F),
            functionFingerprintText(*B.Prog, funcByName(*B.Prog, "main")));
}

TEST(FingerprintTest, InstructionMutationIsLocal) {
  std::string Mutated = BaseSource;
  size_t At = Mutated.find("fun id(x) { return x; }");
  ASSERT_NE(At, std::string::npos);
  Mutated.replace(At, 23, "fun id(x) { var y = x; return y; }");

  CompileResult A = compileMJ(BaseSource);
  CompileResult B = compileMJ(Mutated);
  ASSERT_TRUE(A.ok() && B.ok());
  auto FA = allFingerprints(*A.Prog);
  auto FB = allFingerprints(*B.Prog);
  EXPECT_NE(FA.at("id"), FB.at("id"));
  for (const auto &[Name, Hash] : FA)
    if (Name != "id")
      EXPECT_EQ(Hash, FB.at(Name)) << Name;
  EXPECT_NE(fingerprintProgram(*A.Prog), fingerprintProgram(*B.Prog));
}

TEST(FingerprintTest, CalleeMutationIsLocal) {
  std::string Mutated = BaseSource;
  size_t At = Mutated.find("Sink.b = id(o);");
  ASSERT_NE(At, std::string::npos);
  Mutated.replace(At, 15, "Sink.b = id2(o);");

  CompileResult A = compileMJ(BaseSource);
  CompileResult B = compileMJ(Mutated);
  ASSERT_TRUE(A.ok() && B.ok());
  auto FA = allFingerprints(*A.Prog);
  auto FB = allFingerprints(*B.Prog);
  EXPECT_NE(FA.at("main"), FB.at("main"));
  for (const auto &[Name, Hash] : FA)
    if (Name != "main")
      EXPECT_EQ(Hash, FB.at(Name)) << Name;
}

TEST(FingerprintTest, FieldMutationIsLocal) {
  std::string Mutated = BaseSource;
  size_t At = Mutated.find("class A { m(o) { Sink.a = o; } }");
  ASSERT_NE(At, std::string::npos);
  Mutated.replace(At, 32, "class A { m(o) { Sink.b = o; } }");

  CompileResult A = compileMJ(BaseSource);
  CompileResult B = compileMJ(Mutated);
  ASSERT_TRUE(A.ok() && B.ok());
  auto FA = allFingerprints(*A.Prog);
  auto FB = allFingerprints(*B.Prog);
  EXPECT_NE(FA.at("A.m"), FB.at("A.m"));
  for (const auto &[Name, Hash] : FA)
    if (Name != "A.m")
      EXPECT_EQ(Hash, FB.at(Name)) << Name;
}

TEST(FingerprintTest, CorpusHasNoSilentCollisions) {
  // Across every function of every corpus program (compiled twice):
  // equal canonical text <=> equal hash. A hash collision between
  // distinct texts would let the cache serve a verdict for the wrong
  // function body.
  std::map<uint64_t, std::string> TextOfHash;
  size_t Functions = 0;
  for (const auto &Entry :
       std::filesystem::directory_iterator(THRESHER_CORPUS_DIR)) {
    if (Entry.path().extension() != ".mj")
      continue;
    std::ifstream In(Entry.path());
    std::stringstream SS;
    SS << In.rdbuf();
    std::string Text = SS.str();
    bool Android = Text.find("// ANDROID") != std::string::npos;
    CompileResult A = Android ? compileAndroidApp(Text) : compileMJ(Text);
    CompileResult B = Android ? compileAndroidApp(Text) : compileMJ(Text);
    ASSERT_TRUE(A.ok() && B.ok()) << Entry.path();
    EXPECT_EQ(fingerprintProgram(*A.Prog), fingerprintProgram(*B.Prog))
        << Entry.path();
    for (FuncId F = 0; F < A.Prog->Funcs.size(); ++F) {
      ++Functions;
      uint64_t H = fingerprintFunction(*A.Prog, F);
      EXPECT_EQ(H, fingerprintFunction(*B.Prog, F))
          << Entry.path() << ": " << A.Prog->funcName(F);
      std::string T = functionFingerprintText(*A.Prog, F);
      auto [It, Inserted] = TextOfHash.emplace(H, T);
      if (!Inserted)
        EXPECT_EQ(It->second, T)
            << "hash collision on " << A.Prog->funcName(F);
    }
  }
  EXPECT_GT(Functions, 0u) << "corpus should contain functions";
}
