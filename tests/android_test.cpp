//===- android_test.cpp - Android model and benchmark generator tests -----===//

#include "android/Benchmarks.h"

#include "interp/Interp.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace thresher;

TEST(AndroidModelTest, LibraryCompilesStandalone) {
  // The library alone has no entry point; compiling with a trivial main
  // must succeed and verify.
  CompileResult R = compileAndroidApp("fun main() { }");
  ASSERT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  EXPECT_TRUE(verifyProgram(*R.Prog).empty());
  // Well-known classes present.
  for (const char *Cls : {"Activity", "Context", "View", "ViewGroup",
                          "CursorAdapter", "ResourceCursorAdapter", "Vec",
                          "HashMap", "MapEntry"})
    EXPECT_NE(R.Prog->findClass(Cls), InvalidId) << Cls;
  // The paper's two null-object statics.
  EXPECT_NE(R.Prog->findGlobal("Vec", "EMPTY"), InvalidId);
  EXPECT_NE(R.Prog->findGlobal("HashMap", "EMPTY_TABLE"), InvalidId);
}

TEST(AndroidModelTest, ActivityIsAContext) {
  CompileResult R = compileAndroidApp("fun main() { }");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Prog->isSubclassOf(R.Prog->findClass("Activity"),
                                   R.Prog->findClass("Context")));
}

TEST(AndroidModelTest, CollectionsAreContainers) {
  CompileResult R = compileAndroidApp("fun main() { }");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Prog->Classes[R.Prog->findClass("Vec")].isContainer());
  EXPECT_TRUE(R.Prog->Classes[R.Prog->findClass("HashMap")].isContainer());
}

TEST(BenchmarkGenTest, EmptySpecStillBuilds) {
  AppSpec S;
  S.Name = "Empty";
  BenchmarkApp App = buildBenchmarkApp(S);
  ASSERT_NE(App.Prog, nullptr);
  EXPECT_TRUE(App.TrueLeaks.empty());
  Interpreter I(*App.Prog);
  EXPECT_TRUE(I.run().Completed);
}

TEST(BenchmarkGenTest, GenerationIsDeterministic) {
  for (const AppSpec &S : paperBenchmarks())
    EXPECT_EQ(generateAppSource(S), generateAppSource(S)) << S.Name;
}

TEST(BenchmarkGenTest, AllAppsInterpretCleanly) {
  // Every generated app must run without runtime errors under a few
  // harness schedules (a prerequisite for the ground-truth claims).
  std::mt19937 Rng(99);
  for (const AppSpec &S : paperBenchmarks()) {
    BenchmarkApp App = buildBenchmarkApp(S);
    for (int Trial = 0; Trial < 3; ++Trial) {
      InterpOptions O;
      O.HavocProvider = [&]() { return static_cast<int64_t>(Rng() % 2); };
      O.RecordWrites = false;
      Interpreter I(*App.Prog, O);
      InterpResult R = I.run();
      EXPECT_TRUE(R.Completed) << S.Name << ": " << R.Error;
    }
  }
}

TEST(BenchmarkGenTest, TrueLeaksAreConcretelyRealizable) {
  // Every seeded singleton leak pair is reachable under SOME schedule.
  // A singleton captures only the first Activity whose handler runs, so
  // the pairs need different schedules: run one schedule per activity
  // slot in which only that slot's onCreate executes, and take the union
  // of reached (field, activity) pairs.
  for (const AppSpec &S : paperBenchmarks()) {
    if (S.SingletonLeaks == 0)
      continue;
    BenchmarkApp App = buildBenchmarkApp(S);
    std::set<std::pair<GlobalId, std::string>> Union;
    for (int Slot = 0; Slot < std::max(1, S.Activities); ++Slot) {
      // Harness guards come in pairs (onCreate, onDestroy) per slot; the
      // guard lowers to "$nd == 0" so returning 0 takes the branch.
      int GuardIdx = 0;
      InterpOptions O;
      O.HavocProvider = [&GuardIdx, Slot]() {
        int This = GuardIdx++;
        return This == 2 * Slot ? 0 : 1;
      };
      O.RecordWrites = false;
      Interpreter I(*App.Prog, O);
      ASSERT_TRUE(I.run().Completed) << S.Name;
      for (const auto &[RG, Site] : I.reachableActivities(App.ActivityBase))
        Union.insert({RG, App.Prog->allocLabel(Site)});
    }
    for (const auto &[G, Label] : App.TrueLeaks)
      EXPECT_TRUE(Union.count({G, Label}))
          << S.Name << ": " << App.Prog->globalName(G) << " ~> " << Label;
  }
}

TEST(BenchmarkGenTest, FalseAlarmPatternsNeverLeakConcretely) {
  // An app with only refutable / conflation patterns must never have an
  // Activity reachable from a static under any schedule.
  AppSpec S;
  S.Name = "FalseOnly";
  S.Activities = 2;
  S.LatentFlagAlarms = 2;
  S.VecFalseAlarms = 2;
  S.ConflationFalseAlarms = 2;
  BenchmarkApp App = buildBenchmarkApp(S);
  std::mt19937 Rng(7);
  for (int Trial = 0; Trial < 10; ++Trial) {
    InterpOptions O;
    O.HavocProvider = [&]() { return static_cast<int64_t>(Rng() % 2); };
    O.RecordWrites = false;
    Interpreter I(*App.Prog, O);
    ASSERT_TRUE(I.run().Completed);
    EXPECT_FALSE(I.activityReachableFromStatic(App.ActivityBase));
  }
}
