//===- pta_equiv_test.cpp - Naive vs. delta solver equivalence ------------===//
//
// Solves every corpus program with both constraint solvers (the naive
// reference and the production delta-propagation/cycle-collapsing one)
// under every context policy, and asserts the published results are
// identical: per-variable and per-field points-to sets, global sets, the
// call graph, reachability, and mod summaries. Together with the
// canonical renumbering in the solver (docs/PTA.md), identical here means
// identical output bytes everywhere downstream.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "pta/PointsTo.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace thresher;

#ifndef THRESHER_CORPUS_DIR
#error "THRESHER_CORPUS_DIR must be defined by the build"
#endif

namespace {

struct EquivCase {
  std::string Path;
  bool Android = false;
  CtxPolicy Policy = CtxPolicy::ContainerCFA;
  std::string Name; // For gtest parameter naming.
};

std::vector<EquivCase> allCases() {
  std::vector<EquivCase> Cases;
  std::vector<std::pair<CtxPolicy, const char *>> Policies = {
      {CtxPolicy::Insensitive, "insens"},
      {CtxPolicy::ContainerCFA, "container"},
      {CtxPolicy::AllObjSens, "objsens"},
  };
  for (const auto &Entry :
       std::filesystem::directory_iterator(THRESHER_CORPUS_DIR)) {
    if (Entry.path().extension() != ".mj")
      continue;
    std::ifstream In(Entry.path());
    std::string FirstLine;
    std::getline(In, FirstLine);
    for (auto [Policy, Tag] : Policies) {
      EquivCase C;
      C.Path = Entry.path().string();
      C.Android = FirstLine.rfind("// ANDROID", 0) == 0;
      C.Policy = Policy;
      C.Name = Entry.path().stem().string() + "_" + Tag;
      Cases.push_back(C);
    }
  }
  std::sort(Cases.begin(), Cases.end(),
            [](const EquivCase &A, const EquivCase &B) {
              return A.Name < B.Name;
            });
  return Cases;
}

class PtaEquivTest : public ::testing::TestWithParam<EquivCase> {};

/// Renders every externally observable piece of a result into one string;
/// two results are considered identical iff their dumps are equal. Keyed
/// dumps make mismatches readable in the gtest diff.
std::string dumpResult(const Program &P, const PointsToResult &R) {
  std::ostringstream OS;
  auto Set = [&](const IdSet &S) {
    for (AbsLocId L : S)
      OS << " " << L << "/" << R.Locs.label(P, L);
  };
  OS << "locs:";
  for (AbsLocId L = 0; L < R.Locs.size(); ++L)
    OS << " " << R.Locs.label(P, L);
  OS << "\nreachable:";
  for (FuncId F : R.reachableFuncs())
    OS << " " << P.funcName(F);
  OS << "\n";
  for (FuncId F = 0; F < P.Funcs.size(); ++F) {
    for (VarId V = 0; V < P.Funcs[F].NumVars; ++V) {
      if (R.ptVar(F, V).empty())
        continue;
      OS << "var " << P.funcName(F) << "#" << V << ":";
      Set(R.ptVar(F, V));
      OS << "\n";
    }
  }
  for (GlobalId G = 0; G < P.Globals.size(); ++G) {
    if (R.ptGlobal(G).empty())
      continue;
    OS << "global " << P.globalName(G) << ":";
    Set(R.ptGlobal(G));
    OS << "\n";
  }
  for (AbsLocId L = 0; L < R.Locs.size(); ++L)
    for (auto [Fld, T] : R.fieldEdges(L))
      OS << "field " << R.Locs.label(P, L) << "." << P.fieldName(Fld)
         << " -> " << R.Locs.label(P, T) << "\n";
  for (FuncId F = 0; F < P.Funcs.size(); ++F) {
    for (const CallEdge &E : R.callersOf(F)) {
      OS << "calledge " << P.funcName(E.Caller) << "@" << E.At.F << ":"
         << E.At.B << ":" << E.At.Idx << " ctx=" << E.CallerCtx << " -> "
         << P.funcName(E.Callee) << " ctx=" << E.CalleeCtx << "\n";
    }
    if (!R.modSetOf(F).Fields.empty() || !R.modSetOf(F).Globals.empty()) {
      OS << "mod " << P.funcName(F) << " fields:";
      for (FieldId Fld : R.modSetOf(F).Fields)
        OS << " " << Fld;
      OS << " globals:";
      for (GlobalId G : R.modSetOf(F).Globals)
        OS << " " << G;
      OS << "\n";
    }
  }
  OS << "edges=" << R.numEdges() << "\n";
  return OS.str();
}

} // namespace

TEST_P(PtaEquivTest, SolversAgree) {
  const EquivCase &C = GetParam();
  SCOPED_TRACE(C.Path);
  std::ifstream In(C.Path);
  std::stringstream SS;
  SS << In.rdbuf();
  CompileResult CR =
      C.Android ? compileAndroidApp(SS.str()) : compileMJ(SS.str());
  ASSERT_TRUE(CR.ok()) << (CR.Errors.empty() ? "?" : CR.Errors[0]);
  const Program &P = *CR.Prog;

  PTAOptions Delta, Naive;
  Delta.Policy = Naive.Policy = C.Policy;
  Delta.Solver = PTASolver::DeltaLCD;
  Naive.Solver = PTASolver::Naive;
  auto RD = PointsToAnalysis(P, Delta).run();
  auto RN = PointsToAnalysis(P, Naive).run();

  EXPECT_EQ(dumpResult(P, *RD), dumpResult(P, *RN));
}

INSTANTIATE_TEST_SUITE_P(Corpus, PtaEquivTest,
                         ::testing::ValuesIn(allCases()),
                         [](const ::testing::TestParamInfo<EquivCase> &I) {
                           return I.param.Name;
                         });
