//===- ir_test.cpp - Unit tests for the IR layer --------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace thresher;

namespace {

/// Builds: fun f() { x = new C; loop { x.f = x; } return }
std::unique_ptr<Program> buildLoopProgram() {
  ProgramBuilder PB;
  ClassId C = PB.addClass("C");
  FieldId F = PB.addField(C, "f");
  FunctionBuilder FB = PB.beginFunc("f", 0);
  VarId X = FB.newVar("x");
  VarId I = FB.newVar("i");
  BlockId Head = FB.newBlock();
  BlockId Body = FB.newBlock();
  BlockId Exit = FB.newBlock();
  FB.newObj(X, C, "c0");
  FB.constInt(I, 0);
  FB.jump(Head);
  FB.setBlock(Head);
  FB.branchConst(I, RelOp::LT, 10, Body, Exit);
  FB.setBlock(Body);
  FB.store(X, F, X);
  FB.binopConst(I, I, BinopKind::Add, 1);
  FB.jump(Head);
  FB.setBlock(Exit);
  FB.retVoid();
  FuncId Fn = FB.finish();
  PB.setEntry(Fn);
  return PB.take();
}

} // namespace

TEST(IRTest, BuilderCreatesWellKnownClasses) {
  ProgramBuilder PB;
  auto P = PB.take();
  EXPECT_NE(P->ObjectClass, InvalidId);
  EXPECT_NE(P->StringClass, InvalidId);
  EXPECT_NE(P->ElemsField, InvalidId);
  EXPECT_EQ(P->className(P->ObjectClass), "Object");
  EXPECT_EQ(P->Classes[P->ObjectClass].Super, InvalidId);
  EXPECT_EQ(P->Classes[P->StringClass].Super, P->ObjectClass);
}

TEST(IRTest, SubclassAndDispatch) {
  ProgramBuilder PB;
  ClassId A = PB.addClass("A");
  ClassId B = PB.addClass("B", A);
  ClassId C = PB.addClass("C", B);
  {
    FunctionBuilder FB = PB.beginFunc("m", 1, A, /*IsStatic=*/false);
    FB.retVoid();
    FB.finish();
  }
  FuncId BM;
  {
    FunctionBuilder FB = PB.beginFunc("m", 1, B, /*IsStatic=*/false);
    FB.retVoid();
    BM = FB.finish();
  }
  auto P = PB.take();
  EXPECT_TRUE(P->isSubclassOf(C, A));
  EXPECT_TRUE(P->isSubclassOf(B, B));
  EXPECT_FALSE(P->isSubclassOf(A, B));
  NameId M = P->Names.lookup("m");
  // C inherits B's override; A keeps its own.
  EXPECT_EQ(P->resolveVirtual(C, M), BM);
  EXPECT_EQ(P->resolveVirtual(B, M), BM);
  EXPECT_NE(P->resolveVirtual(A, M), BM);
  EXPECT_NE(P->resolveVirtual(A, M), InvalidId);
}

TEST(IRTest, LoopAnalysisFindsNaturalLoop) {
  auto P = buildLoopProgram();
  const Function &Fn = P->Funcs[P->EntryFunc];
  ASSERT_TRUE(Fn.Analyzed);
  // Block 1 (Head) is the loop header; body = {Head, Body}.
  EXPECT_TRUE(Fn.isLoopHeader(1));
  EXPECT_FALSE(Fn.isLoopHeader(0));
  EXPECT_FALSE(Fn.isLoopHeader(3));
  const LoopInfo &L = Fn.loopAt(1);
  EXPECT_TRUE(L.Body.contains(1));
  EXPECT_TRUE(L.Body.contains(2));
  EXPECT_FALSE(L.Body.contains(0));
  EXPECT_FALSE(L.Body.contains(3));
  // The loop writes field f and variable i (and x? no; x written outside).
  FieldId F = P->findField(P->findClass("C"), "f");
  EXPECT_TRUE(L.Mods.Fields.contains(F));
  EXPECT_TRUE(L.VarsWritten.contains(1)); // i
  EXPECT_FALSE(L.VarsWritten.contains(0)); // x
}

TEST(IRTest, PredecessorsComputed) {
  auto P = buildLoopProgram();
  const Function &Fn = P->Funcs[P->EntryFunc];
  // Head (1) has preds {entry (0), body (2)}.
  ASSERT_EQ(Fn.Preds[1].size(), 2u);
  EXPECT_EQ(Fn.Preds[0].size(), 0u);
  ASSERT_EQ(Fn.Preds[3].size(), 1u);
  EXPECT_EQ(Fn.Preds[3][0], 1u);
}

TEST(IRTest, VerifierAcceptsGoodProgram) {
  auto P = buildLoopProgram();
  EXPECT_TRUE(verifyProgram(*P).empty());
}

TEST(IRTest, VerifierCatchesBadOperands) {
  ProgramBuilder PB;
  FunctionBuilder FB = PB.beginFunc("f", 0);
  VarId X = FB.newVar("x");
  FB.assign(X, 77); // 77 out of range.
  FB.retVoid();
  FB.finish();
  PB.setEntry(0);
  auto P = PB.take();
  auto Problems = verifyProgram(*P);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("src"), std::string::npos);
}

TEST(IRTest, VerifierCatchesEntryWithParams) {
  ProgramBuilder PB;
  FunctionBuilder FB = PB.beginFunc("f", 2);
  FB.retVoid();
  FuncId F = FB.finish();
  PB.setEntry(F);
  auto P = PB.take();
  auto Problems = verifyProgram(*P);
  ASSERT_FALSE(Problems.empty());
}

TEST(IRTest, PrinterRoundTripsInstructionShapes) {
  auto P = buildLoopProgram();
  std::ostringstream OS;
  printProgram(OS, *P);
  std::string Text = OS.str();
  EXPECT_NE(Text.find("x = new C @c0"), std::string::npos);
  EXPECT_NE(Text.find("x.f = x"), std::string::npos);
  EXPECT_NE(Text.find("if i < 10"), std::string::npos);
  EXPECT_NE(Text.find("entry: f"), std::string::npos);
}

TEST(IRTest, RelOpHelpers) {
  EXPECT_EQ(negateRelOp(RelOp::LT), RelOp::GE);
  EXPECT_EQ(negateRelOp(RelOp::EQ), RelOp::NE);
  EXPECT_EQ(negateRelOp(RelOp::GE), RelOp::LT);
  EXPECT_EQ(swapRelOp(RelOp::LT), RelOp::GT);
  EXPECT_EQ(swapRelOp(RelOp::LE), RelOp::GE);
  EXPECT_EQ(swapRelOp(RelOp::EQ), RelOp::EQ);
}

TEST(IRTest, SuccessorsOfTerminators) {
  auto P = buildLoopProgram();
  const Function &Fn = P->Funcs[P->EntryFunc];
  EXPECT_EQ(Fn.successors(0), std::vector<BlockId>{1});
  EXPECT_EQ(Fn.successors(1), (std::vector<BlockId>{2, 3}));
  EXPECT_TRUE(Fn.successors(3).empty());
}
