//===- solver_test.cpp - Unit tests for the pure-constraint solver -------===//

#include "solver/Pure.h"

#include <gtest/gtest.h>

#include <random>

using namespace thresher;

namespace {

PureTerm V(uint32_t Id, int64_t Off = 0) { return PureTerm::mkVar(Id, Off); }
PureTerm C(int64_t Val) { return PureTerm::mkConst(Val); }

} // namespace

TEST(PureSolverTest, EmptyIsSat) {
  PureConstraints P;
  EXPECT_TRUE(P.isSatisfiable());
}

TEST(PureSolverTest, SimpleContradiction) {
  // The Fig. 1 refutation core: sz < cap, sz = 0, cap = -1.
  PureConstraints P;
  P.addCmp(V(0), RelOp::LT, V(1), true); // sz < cap
  EXPECT_TRUE(P.isSatisfiable());
  P.addCmp(V(0), RelOp::EQ, C(0), false); // sz = 0
  EXPECT_TRUE(P.isSatisfiable());
  P.addCmp(V(1), RelOp::EQ, C(-1), false); // cap = -1
  EXPECT_FALSE(P.isSatisfiable());
}

TEST(PureSolverTest, TransitiveChain) {
  PureConstraints P;
  P.addCmp(V(0), RelOp::LT, V(1), false);
  P.addCmp(V(1), RelOp::LT, V(2), false);
  P.addCmp(V(2), RelOp::LT, V(0), false);
  EXPECT_FALSE(P.isSatisfiable());
}

TEST(PureSolverTest, IntegerStrictness) {
  // x < y and y < x + 2 forces y == x + 1 over the integers.
  PureConstraints P;
  P.addCmp(V(0), RelOp::LT, V(1), false);
  P.addCmp(V(1), RelOp::LT, V(0, 2), false);
  EXPECT_TRUE(P.isSatisfiable());
  P.addCmp(V(1), RelOp::NE, V(0, 1), false);
  EXPECT_FALSE(P.isSatisfiable());
}

TEST(PureSolverTest, DisequalityWithSlack) {
  PureConstraints P;
  P.addCmp(V(0), RelOp::LE, V(1), false);
  P.addCmp(V(0), RelOp::NE, V(1), false);
  EXPECT_TRUE(P.isSatisfiable()); // x <= y and x != y: x < y works.
}

TEST(PureSolverTest, EqualityViaOffsets) {
  PureConstraints P;
  P.addCmp(V(0), RelOp::EQ, V(1, 3), false); // x = y + 3
  P.addCmp(V(1), RelOp::EQ, C(4), false);    // y = 4
  P.addCmp(V(0), RelOp::GE, C(8), false);    // x >= 8, but x = 7.
  EXPECT_FALSE(P.isSatisfiable());
}

TEST(PureSolverTest, GroundContradiction) {
  PureConstraints P;
  EXPECT_FALSE(P.addCmp(C(1), RelOp::LT, C(0), false));
  EXPECT_FALSE(P.isSatisfiable());
}

TEST(PureSolverTest, Entailment) {
  PureConstraints Strong, Weak;
  Strong.addCmp(V(0), RelOp::EQ, C(5), false);
  Weak.addCmp(V(0), RelOp::GE, C(0), false);
  EXPECT_TRUE(Strong.entails(Weak));
  EXPECT_FALSE(Weak.entails(Strong));
  // Everything entails the empty conjunction.
  PureConstraints Empty;
  EXPECT_TRUE(Strong.entails(Empty));
  EXPECT_TRUE(Empty.entails(Empty));
}

TEST(PureSolverTest, EntailmentOfDisequality) {
  PureConstraints Strong, Weak;
  Strong.addCmp(V(0), RelOp::LT, V(1), false);
  Weak.addCmp(V(0), RelOp::NE, V(1), false);
  EXPECT_TRUE(Strong.entails(Weak));
}

TEST(PureSolverTest, SubstituteMergesVariables) {
  PureConstraints P;
  P.addCmp(V(0), RelOp::LT, V(1), false);
  P.addCmp(V(2), RelOp::LT, V(0), false);
  EXPECT_TRUE(P.isSatisfiable());
  P.substitute(2, 1); // Now: v0 < v1 and v1 < v0.
  EXPECT_FALSE(P.isSatisfiable());
}

TEST(PureSolverTest, PathConstraintCapMachinery) {
  PureConstraints P;
  P.addCmp(V(0), RelOp::LT, C(10), true);
  P.addCmp(V(1), RelOp::LT, C(10), true);
  P.addCmp(V(2), RelOp::EQ, C(3), false);
  EXPECT_EQ(P.pathCount(), 2u);
  P.dropOldestPath();
  EXPECT_EQ(P.pathCount(), 1u);
  // The non-path equality must survive.
  EXPECT_TRUE(P.mentions(2));
  EXPECT_FALSE(P.mentions(0));
}

// Regression: dedup used to compare only the structural core (K/X/Y/C)
// and silently dropped a branch-guard prim when a provenance-free twin was
// already present, undercounting the Sec. 4 path cap.
TEST(PureSolverTest, DedupPreservesPathProvenance) {
  PureConstraints P;
  P.addCmp(V(0), RelOp::LT, C(10), false); // Non-path fact: v0 <= 9.
  EXPECT_EQ(P.pathCount(), 0u);
  // The same constraint arrives again as a branch guard. It must count
  // toward the cap even though its shape is already present.
  P.addCmp(V(0), RelOp::LT, C(10), true);
  EXPECT_EQ(P.pathCount(), 1u);
  EXPECT_EQ(P.size(), 1u); // Still deduplicated, just re-provenanced.
}

// Regression: merging two guard groups must keep the *older* PathSeq so
// dropOldestPath evicts the merged group first, not a younger survivor.
TEST(PureSolverTest, DedupMergeThenEvictDropsOlderGroup) {
  PureConstraints P;
  P.addCmp(V(0), RelOp::LT, C(10), true); // Group 1: v0 <= 9.
  P.addCmp(V(1), RelOp::LT, C(20), true); // Group 2: v1 <= 19.
  // Group 3 re-derives group 1's constraint; the dedup merge must fold it
  // into group 1 (older seq), leaving two distinct groups, not three.
  P.addCmp(V(0), RelOp::LT, C(10), true);
  EXPECT_EQ(P.pathCount(), 2u);
  // Evicting the oldest group drops v0's guard (groups 1+3), keeping v1's.
  P.dropOldestPath();
  EXPECT_EQ(P.pathCount(), 1u);
  EXPECT_FALSE(P.mentions(0));
  EXPECT_TRUE(P.mentions(1));
}

// A guard prim absorbed into a non-path twin adopts the guard's group, so
// a later eviction removes it rather than resurrecting the "free" fact.
TEST(PureSolverTest, UpgradedPrimIsEvictable) {
  PureConstraints P;
  P.addCmp(V(0), RelOp::LT, C(10), false);
  P.addCmp(V(0), RelOp::LT, C(10), true);
  ASSERT_EQ(P.pathCount(), 1u);
  P.dropOldestPath();
  EXPECT_EQ(P.pathCount(), 0u);
  EXPECT_FALSE(P.mentions(0));
}

TEST(PureSolverTest, DropMentioning) {
  PureConstraints P;
  P.addCmp(V(0), RelOp::LT, V(1), false);
  P.addCmp(V(2), RelOp::EQ, C(1), false);
  P.dropMentioning([](uint32_t Id) { return Id == 1; });
  EXPECT_FALSE(P.mentions(0)); // v0 < v1 dropped with v1.
  EXPECT_TRUE(P.mentions(2));
}

// Property test: random difference-logic systems checked against a
// brute-force assignment search over a small domain.
TEST(PureSolverTest, PropertyAgainstBruteForce) {
  std::mt19937 Rng(7);
  const int NumVars = 3;
  const int64_t Lo = -3, Hi = 3;
  for (int Trial = 0; Trial < 300; ++Trial) {
    PureConstraints P;
    struct RawCmp {
      uint32_t A, B;
      RelOp R;
      int64_t Off;
    };
    std::vector<RawCmp> Raw;
    int N = 1 + static_cast<int>(Rng() % 4);
    for (int I = 0; I < N; ++I) {
      RawCmp RC;
      RC.A = Rng() % NumVars;
      RC.B = Rng() % NumVars;
      RC.R = static_cast<RelOp>(Rng() % 6);
      RC.Off = static_cast<int64_t>(Rng() % 5) - 2;
      Raw.push_back(RC);
      P.addCmp(V(RC.A), RC.R, V(RC.B, RC.Off), false);
    }
    // Brute force over assignments in [Lo, Hi]^3. The solver may only
    // claim UNSAT if no assignment in the integers satisfies it; a
    // bounded domain can miss models, so only check one direction:
    // a found model implies the solver must say SAT.
    bool FoundModel = false;
    for (int64_t X = Lo; X <= Hi && !FoundModel; ++X)
      for (int64_t Y = Lo; Y <= Hi && !FoundModel; ++Y)
        for (int64_t Z = Lo; Z <= Hi && !FoundModel; ++Z) {
          int64_t Vals[3] = {X, Y, Z};
          bool Ok = true;
          for (const RawCmp &RC : Raw) {
            int64_t A = Vals[RC.A], B = Vals[RC.B] + RC.Off;
            switch (RC.R) {
            case RelOp::EQ:
              Ok &= A == B;
              break;
            case RelOp::NE:
              Ok &= A != B;
              break;
            case RelOp::LT:
              Ok &= A < B;
              break;
            case RelOp::LE:
              Ok &= A <= B;
              break;
            case RelOp::GT:
              Ok &= A > B;
              break;
            case RelOp::GE:
              Ok &= A >= B;
              break;
            }
            if (!Ok)
              break;
          }
          FoundModel = Ok;
        }
    if (FoundModel) {
      EXPECT_TRUE(P.isSatisfiable()) << "trial " << Trial;
    }
  }
}

// Completeness direction on pure difference systems (no disequalities):
// if the solver says SAT there must be an integer model; we cross-check
// via the closure being cycle-free by asserting that adding the negation
// of an implied bound makes it UNSAT.
TEST(PureSolverTest, ImpliedBoundsAreTight) {
  PureConstraints P;
  P.addCmp(V(0), RelOp::LE, V(1, -2), false); // x <= y - 2
  P.addCmp(V(1), RelOp::LE, C(10), false);    // y <= 10
  // Implied: x <= 8. Adding x > 8 must be UNSAT; x > 7 must stay SAT.
  PureConstraints Q1 = P;
  Q1.addCmp(V(0), RelOp::GT, C(8), false);
  EXPECT_FALSE(Q1.isSatisfiable());
  PureConstraints Q2 = P;
  Q2.addCmp(V(0), RelOp::GT, C(7), false);
  EXPECT_TRUE(Q2.isSatisfiable());
}

//===----------------------------------------------------------------------===//
// queryWeakerThan order properties (sym/Subsume.h)
//===----------------------------------------------------------------------===//
//
// The subsumption registry and the per-run history both prune through
// queryWeakerThan, so it must behave like a preorder on queries: every
// query subsumes itself (reflexivity — otherwise the exact-key fast path
// and the weaker-than slow path disagree), and subsumption must chain
// (transitivity — the registry keeps the weakest representative per slot
// and relies on weaker(A,B) ∧ weaker(B,C) ⇒ weaker(A,C) to prune C after
// deduplicating B away). Exercised over randomly generated strengthening
// chains: A is weakened from B which is weakened from C by widening
// instance regions and dropping pure constraints, the two moves the
// engine's own weakening performs.

#include "sym/Query.h"
#include "sym/Subsume.h"
#include "sym/WitnessSearch.h"

namespace {

/// Random base query: locals 0..N-1 bound to fresh syms over random
/// regions from a small universe, plus random pure bounds on the syms.
Query randomQuery(std::mt19937 &Rng, std::vector<SymVarId> &Syms) {
  Query Q;
  QueryFrame F;
  F.Func = 0;
  Q.Frames.push_back(F);
  Q.Pos = {0, 0, 0};
  std::uniform_int_distribution<int> NLocals(1, 3), Loc(1, 6), Coin(0, 1);
  int N = NLocals(Rng);
  for (int I = 0; I < N; ++I) {
    IdSet Locs;
    Locs.insert(static_cast<uint32_t>(Loc(Rng)));
    if (Coin(Rng))
      Locs.insert(static_cast<uint32_t>(Loc(Rng)));
    SymVarId S = Q.freshSym(Region::ofLocs(std::move(Locs)));
    Q.setLocal(0, static_cast<uint32_t>(I), ValRef::mkSym(S));
    Syms.push_back(S);
  }
  return Q;
}

/// Strengthens \p Q in place: narrows one region to a single location
/// and/or adds a pure upper bound on a random sym. Returns true if a
/// region was STRICTLY narrowed (used for the non-symmetry check).
bool strengthen(Query &Q, const std::vector<SymVarId> &Syms,
                std::mt19937 &Rng) {
  std::uniform_int_distribution<size_t> Pick(0, Syms.size() - 1);
  std::uniform_int_distribution<int> Coin(0, 1), Bound(0, 20);
  bool Narrowed = false;
  SymVarId S = Syms[Pick(Rng)];
  Region &R = Q.regionOf(S);
  if (R.Locs.size() > 1) {
    uint32_t Keep = *R.Locs.begin();
    R = Region::ofLocs(IdSet{Keep});
    Narrowed = true;
  }
  if (Coin(Rng)) {
    SymVarId T = Syms[Pick(Rng)];
    Q.Pure.addCmp(PureTerm::mkVar(T), RelOp::LE,
                  PureTerm::mkConst(Bound(Rng)), false);
  }
  return Narrowed;
}

} // namespace

TEST(QueryWeakerThanTest, ReflexiveOnRandomQueries) {
  std::mt19937 Rng(7);
  for (int Round = 0; Round < 100; ++Round) {
    std::vector<SymVarId> Syms;
    Query Q = randomQuery(Rng, Syms);
    EXPECT_TRUE(queryWeakerThan(Q, Q, Representation::Mixed));
    EXPECT_TRUE(queryWeakerThan(Q, Q, Representation::FullySymbolic));
  }
}

TEST(QueryWeakerThanTest, TransitiveAlongStrengtheningChains) {
  std::mt19937 Rng(7);
  int StrictChains = 0;
  for (int Round = 0; Round < 100; ++Round) {
    std::vector<SymVarId> Syms;
    Query A = randomQuery(Rng, Syms); // Weakest.
    Query B = A;
    bool NarrowedB = strengthen(B, Syms, Rng);
    Query C = B;
    strengthen(C, Syms, Rng);
    // The chain holds by construction...
    ASSERT_TRUE(queryWeakerThan(A, B, Representation::Mixed));
    ASSERT_TRUE(queryWeakerThan(B, C, Representation::Mixed));
    // ...and must compose.
    EXPECT_TRUE(queryWeakerThan(A, C, Representation::Mixed));
    // Strict narrowing must not be symmetric: the narrowed query's
    // refutation says nothing about the wide one.
    if (NarrowedB) {
      EXPECT_FALSE(queryWeakerThan(B, A, Representation::Mixed));
      ++StrictChains;
    }
  }
  EXPECT_GT(StrictChains, 10) << "generator produced no strict chains";
}
