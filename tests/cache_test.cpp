//===- cache_test.cpp - Persistent refutation cache integration -----------===//
//
// End-to-end tests for the refutation cache: a warm run over unmodified
// source must serve every consulted edge from the cache (zero witness
// searches) while keeping the deterministic JSON report byte-identical to
// the cold run at 1 and 4 threads; editing one function must invalidate
// only the edges whose footprint includes it; --cache-verify must agree
// with the cache on the whole corpus; and corrupt stores are discarded,
// never trusted.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "cache/RefutationCache.h"
#include "leak/LeakChecker.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace thresher;

#ifndef THRESHER_CORPUS_DIR
#error "THRESHER_CORPUS_DIR must be defined by the build"
#endif

namespace {

struct CorpusProgram {
  std::string Path;
  bool Android = false;
};

std::vector<CorpusProgram> allPrograms() {
  std::vector<CorpusProgram> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(THRESHER_CORPUS_DIR)) {
    if (Entry.path().extension() != ".mj")
      continue;
    CorpusProgram CP;
    CP.Path = Entry.path().string();
    std::ifstream In(CP.Path);
    std::string Line;
    while (std::getline(In, Line))
      if (Line.rfind("// ANDROID", 0) == 0)
        CP.Android = true;
    Out.push_back(CP);
  }
  std::sort(Out.begin(), Out.end(),
            [](const CorpusProgram &A, const CorpusProgram &B) {
              return A.Path < B.Path;
            });
  return Out;
}

/// Fresh per-test cache directory under the system temp dir.
std::string cacheDir(const std::string &Name) {
  auto Dir = std::filesystem::temp_directory_path() /
             ("thresher_cache_test_" + Name);
  std::filesystem::remove_all(Dir);
  return Dir.string();
}

/// The sink class for plain (non-Android) programs: the class producing
/// the most alarms, so the cache actually has edges to remember (same
/// fallback as the parallel differential test).
ClassId pickSinkClass(const Program &P, const PointsToResult &PTA) {
  ClassId Act = activityBaseClass(P);
  if (Act != InvalidId)
    return Act;
  ClassId Best = 0;
  uint32_t BestAlarms = 0;
  for (ClassId C = 0; C < P.Classes.size(); ++C) {
    LeakChecker Probe(P, PTA, C);
    uint32_t N = Probe.run(1).NumAlarms;
    if (N > BestAlarms) {
      BestAlarms = N;
      Best = C;
    }
  }
  return Best;
}

std::string deterministicJson(LeakChecker &LC, const LeakReport &R) {
  ReportJsonOptions JO;
  JO.DeterministicOnly = true;
  return LC.buildJsonReport(R, JO).toString(2);
}

/// One checker run against the store in \p Dir (load + validate + run +
/// save), returning the report; \p SearchesOut gets the number of real
/// witness searches the run performed.
LeakReport cachedRun(const Program &P, const PointsToResult &PTA,
                     ClassId Act, const std::string &Dir, unsigned Threads,
                     uint64_t *SearchesOut = nullptr,
                     std::string *JsonOut = nullptr, bool Verify = false) {
  RefutationCache Cache(Dir);
  EXPECT_TRUE(Cache.load());
  uint64_t Config = RefutationCache::configHash(SymOptions{}, false);
  Cache.validate(P, PTA, Config);
  LeakChecker LC(P, PTA, Act, SymOptions{});
  LC.setCache(&Cache, Config, Verify);
  LeakReport R = LC.run(Threads);
  if (SearchesOut)
    *SearchesOut = LC.stats().get("leak.searches");
  if (JsonOut)
    *JsonOut = deterministicJson(LC, R);
  EXPECT_TRUE(Cache.save());
  return R;
}

class CacheCorpusTest : public ::testing::TestWithParam<CorpusProgram> {};

} // namespace

TEST_P(CacheCorpusTest, WarmRunSkipsAllSearches) {
  const CorpusProgram &CP = GetParam();
  SCOPED_TRACE(CP.Path);
  std::ifstream In(CP.Path);
  std::stringstream SS;
  SS << In.rdbuf();
  CompileResult CR =
      CP.Android ? compileAndroidApp(SS.str()) : compileMJ(SS.str());
  ASSERT_TRUE(CR.ok()) << (CR.Errors.empty() ? "?" : CR.Errors[0]);
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();
  ClassId Act = pickSinkClass(P, *PTA);

  std::string Dir = cacheDir(
      "warm_" + std::filesystem::path(CP.Path).stem().string());

  uint64_t ColdSearches = 0, WarmSearches = 0;
  std::string ColdJson, WarmJson, Warm4Json;
  LeakReport Cold =
      cachedRun(P, *PTA, Act, Dir, 1, &ColdSearches, &ColdJson);
  EXPECT_EQ(Cold.Cache.Hits, 0u);
  EXPECT_EQ(Cold.Cache.Inserted, ColdSearches);

  LeakReport Warm =
      cachedRun(P, *PTA, Act, Dir, 1, &WarmSearches, &WarmJson);
  EXPECT_EQ(WarmSearches, 0u)
      << "warm run over unmodified source must not search";
  EXPECT_EQ(Warm.Cache.Hits, static_cast<uint64_t>(Warm.Edges.size()));
  for (const EdgeVerdict &V : Warm.Edges)
    EXPECT_EQ(V.Cache, EdgeCacheState::Hit) << V.Label;
  EXPECT_EQ(WarmJson, ColdJson) << "deterministic report must be cold==warm";

  // Parallel warm run: the prefetcher may additionally thresh (and then
  // cache) edges the sequential algorithm never consults, but every
  // consulted edge must hit and the deterministic report must not move.
  LeakReport Warm4 =
      cachedRun(P, *PTA, Act, Dir, 4, nullptr, &Warm4Json);
  for (const EdgeVerdict &V : Warm4.Edges)
    EXPECT_EQ(V.Cache, EdgeCacheState::Hit) << V.Label;
  EXPECT_EQ(Warm4Json, ColdJson);

  // Second parallel warm run: now even the prefetched superset is cached.
  uint64_t Warm4Searches = 0;
  cachedRun(P, *PTA, Act, Dir, 4, &Warm4Searches);
  EXPECT_EQ(Warm4Searches, 0u);
}

TEST_P(CacheCorpusTest, CacheVerifyAgrees) {
  const CorpusProgram &CP = GetParam();
  SCOPED_TRACE(CP.Path);
  std::ifstream In(CP.Path);
  std::stringstream SS;
  SS << In.rdbuf();
  CompileResult CR =
      CP.Android ? compileAndroidApp(SS.str()) : compileMJ(SS.str());
  ASSERT_TRUE(CR.ok());
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();
  ClassId Act = pickSinkClass(P, *PTA);

  std::string Dir = cacheDir(
      "verify_" + std::filesystem::path(CP.Path).stem().string());
  cachedRun(P, *PTA, Act, Dir, 1);
  LeakReport R = cachedRun(P, *PTA, Act, Dir, 1, nullptr, nullptr,
                           /*Verify=*/true);
  EXPECT_EQ(R.Cache.Verified, R.Cache.Hits);
  EXPECT_EQ(R.Cache.VerifyMismatches, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Files, CacheCorpusTest, ::testing::ValuesIn(allPrograms()),
    [](const ::testing::TestParamInfo<CorpusProgram> &Info) {
      std::string Name =
          std::filesystem::path(Info.param.Path).stem().string();
      for (char &Ch : Name)
        if (!isalnum(static_cast<unsigned char>(Ch)))
          Ch = '_';
      return Name;
    });

namespace {

const char *TwoWriterSource = R"(
class SinkA { static var a; }
class SinkB { static var b; }
fun setA() { SinkA.a = new Object() @oa; }
fun setB() { SinkB.b = new Object() @ob; }
fun main() { setA(); setB(); }
)";

const char *TwoWriterEditedB = R"(
class SinkA { static var a; }
class SinkB { static var b; }
fun setA() { SinkA.a = new Object() @oa; }
fun setB() { var pad = 0; SinkB.b = new Object() @ob; }
fun main() { setA(); setB(); }
)";

} // namespace

TEST(CacheTest, EditingOneFunctionInvalidatesOnlyItsEdges) {
  CompileResult CR1 = compileMJ(TwoWriterSource);
  ASSERT_TRUE(CR1.ok());
  const Program &P1 = *CR1.Prog;
  auto PTA1 = PointsToAnalysis(P1).run();
  ClassId Act1 = P1.ObjectClass; // Every allocation alarms.

  std::string Dir = cacheDir("invalidation");
  LeakReport Cold = cachedRun(P1, *PTA1, Act1, Dir, 1);
  ASSERT_GE(Cold.Edges.size(), 2u);

  // "Edit" setB (recompile the mutated source) and warm-run: the SinkB.b
  // edge's footprint includes setB, so it must be re-searched; the
  // SinkA.a edge never consulted setB and must still hit.
  CompileResult CR2 = compileMJ(TwoWriterEditedB);
  ASSERT_TRUE(CR2.ok());
  const Program &P2 = *CR2.Prog;
  auto PTA2 = PointsToAnalysis(P2).run();
  uint64_t WarmSearches = 0;
  std::string WarmJson;
  LeakReport Warm = cachedRun(P2, *PTA2, Act1, Dir, 1, &WarmSearches,
                              &WarmJson);
  bool SawA = false, SawB = false;
  for (const EdgeVerdict &V : Warm.Edges) {
    if (V.Label.rfind("SinkA.a", 0) == 0) {
      SawA = true;
      EXPECT_EQ(V.Cache, EdgeCacheState::Hit) << V.Label;
    } else if (V.Label.rfind("SinkB.b", 0) == 0) {
      SawB = true;
      EXPECT_EQ(V.Cache, EdgeCacheState::Invalidated) << V.Label;
    }
  }
  EXPECT_TRUE(SawA);
  EXPECT_TRUE(SawB);
  EXPECT_GT(WarmSearches, 0u);
  EXPECT_GT(Warm.Cache.Hits, 0u);
  EXPECT_EQ(Warm.Cache.Invalidated, WarmSearches);

  // The mixed warm run's verdicts must equal a from-scratch cold run over
  // the edited program.
  LeakChecker Fresh(P2, *PTA2, Act1, SymOptions{});
  LeakReport FreshR = Fresh.run(1);
  EXPECT_EQ(WarmJson, deterministicJson(Fresh, FreshR));
}

TEST(CacheTest, CorruptStoreIsDiscarded) {
  std::string Dir = cacheDir("corrupt");
  std::filesystem::create_directories(Dir);
  {
    std::ofstream Out(Dir + "/cache.jsonl");
    Out << "{\"schema\":\"thresher-cache/v1\",\"generation\":1}\n";
    Out << "this is not json\n";
  }
  RefutationCache Cache(Dir);
  std::string Err;
  EXPECT_FALSE(Cache.load(&Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_EQ(Cache.size(), 0u);

  // A wrong schema tag is also discarded wholesale.
  {
    std::ofstream Out(Dir + "/cache.jsonl");
    Out << "{\"schema\":\"thresher-cache/v999\",\"generation\":1}\n";
  }
  EXPECT_FALSE(Cache.load(&Err));
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(CacheTest, UntouchedEntriesAreEvicted) {
  std::string Dir = cacheDir("evict");
  RefutationCache Cache(Dir);
  ASSERT_TRUE(Cache.load());
  Cache.KeepGenerations = 1;
  Cache.insert("G -> loc", true, 7, SearchOutcome::Refuted, 42, {});
  ASSERT_EQ(Cache.size(), 1u);
  // The entry was inserted at generation 1; it survives saves until its
  // age exceeds KeepGenerations.
  ASSERT_TRUE(Cache.save()); // gen 1, age 0
  EXPECT_EQ(Cache.size(), 1u);
  ASSERT_TRUE(Cache.save()); // gen 2, age 1
  EXPECT_EQ(Cache.size(), 1u);
  ASSERT_TRUE(Cache.save()); // gen 3, age 2 > KeepGenerations
  EXPECT_EQ(Cache.size(), 0u);

  RefutationCache Reloaded(Dir);
  ASSERT_TRUE(Reloaded.load());
  EXPECT_EQ(Reloaded.size(), 0u);
  EXPECT_EQ(Reloaded.generation(), 3u);
}
