//===- property_test.cpp - Randomized soundness properties ----------------===//
//
// A random program generator plus the invariants that must hold for every
// generated program:
//
//  P1  The generated source compiles and verifies.
//  P2  The concrete interpreter completes under any havoc schedule
//      (programs are constructed with bounded loops and no null derefs).
//  P3  The points-to analysis over-approximates the interpreter: every
//      concrete heap write is covered by a points-to edge.
//  P4  Refutation soundness (Theorem 1): no witness search refutes an edge
//      the interpreter realizes.
//  P5  The witness search is deterministic: re-running a search yields the
//      same outcome and step count.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "interp/Interp.h"
#include "ir/Verifier.h"
#include "sym/WitnessSearch.h"

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <sstream>

using namespace thresher;

namespace {

/// Generates a random but always-valid mini-Java program. Object-typed
/// locals are partitioned into definitely-non-null ones (initialized by
/// allocation; safe to dereference) and maybe-null ones (loaded from
/// fields/statics; only used as store sources).
class ProgramGen {
public:
  explicit ProgramGen(uint32_t Seed) : Rng(Seed) {}

  std::string generate() {
    Out << "class Node { var f; var g; }\n";
    Out << "class Holder { static var s0; static var s1; static var s2; "
           "}\n";
    int NumHelpers = 1 + static_cast<int>(Rng() % 3);
    for (int I = 0; I < NumHelpers; ++I)
      genHelper(I);
    Out << "fun main() {\n";
    Indent = "  ";
    Scope S = freshScope(/*WithParams=*/false);
    genBody(S, /*Depth=*/0, 6 + static_cast<int>(Rng() % 8));
    Out << "}\n";
    return Out.str();
  }

private:
  struct Scope {
    std::vector<std::string> NonNullObjs; ///< Safe to dereference.
    std::vector<std::string> MaybeObjs;   ///< Store sources only.
    std::vector<std::string> Ints;
    int NextVar = 0;
  };

  uint32_t pick(uint32_t N) { return Rng() % N; }

  std::string freshName(Scope &S) {
    return "v" + std::to_string(S.NextVar++);
  }

  Scope freshScope(bool WithParams) {
    Scope S;
    if (WithParams) {
      S.NonNullObjs.push_back("p0");
      S.Ints.push_back("p1");
    }
    return S;
  }

  void genHelper(int I) {
    // The helper may only call helpers generated before it, so the static
    // call graph is acyclic and every execution terminates.
    Out << "fun helper" << I << "(p0, p1) {\n";
    Indent = "  ";
    Scope S = freshScope(/*WithParams=*/true);
    genBody(S, /*Depth=*/1, 2 + static_cast<int>(Rng() % 4));
    Out << "}\n";
    Helpers.push_back("helper" + std::to_string(I));
  }

  std::string randField() { return pick(2) == 0 ? "f" : "g"; }
  std::string randStatic() {
    return "Holder.s" + std::to_string(pick(3));
  }

  void genBody(Scope &S, int Depth, int NumStmts) {
    // Seed the scope with one allocation and one int so statements always
    // have operands.
    std::string V = freshName(S);
    Out << Indent << "var " << V << " = new Node() @site" << SiteCount++
        << ";\n";
    S.NonNullObjs.push_back(V);
    std::string N = freshName(S);
    Out << Indent << "var " << N << " = " << pick(10) << ";\n";
    S.Ints.push_back(N);
    for (int I = 0; I < NumStmts; ++I)
      genStmt(S, Depth);
  }

  void genStmt(Scope &S, int Depth) {
    switch (pick(11)) {
    case 0: { // Allocation.
      std::string V = freshName(S);
      Out << Indent << "var " << V << " = new Node() @site" << SiteCount++
          << ";\n";
      S.NonNullObjs.push_back(V);
      break;
    }
    case 1: { // Copy between object vars.
      if (S.NonNullObjs.size() < 2)
        break;
      std::string A = S.NonNullObjs[pick(S.NonNullObjs.size())];
      std::string B = S.NonNullObjs[pick(S.NonNullObjs.size())];
      Out << Indent << A << " = " << B << ";\n";
      break;
    }
    case 2: { // Field store (base must be non-null).
      std::string Base = S.NonNullObjs[pick(S.NonNullObjs.size())];
      std::string Src = anyObj(S);
      Out << Indent << Base << "." << randField() << " = " << Src << ";\n";
      break;
    }
    case 3: { // Field load (result is maybe-null).
      std::string Base = S.NonNullObjs[pick(S.NonNullObjs.size())];
      std::string V = freshName(S);
      Out << Indent << "var " << V << " = " << Base << "." << randField()
          << ";\n";
      S.MaybeObjs.push_back(V);
      break;
    }
    case 4: // Static store.
      Out << Indent << randStatic() << " = " << anyObj(S) << ";\n";
      break;
    case 5: { // Static load.
      std::string V = freshName(S);
      Out << Indent << "var " << V << " = " << randStatic() << ";\n";
      S.MaybeObjs.push_back(V);
      break;
    }
    case 6: { // Integer arithmetic.
      std::string A = S.Ints[pick(S.Ints.size())];
      std::string V = freshName(S);
      Out << Indent << "var " << V << " = " << A
          << (pick(2) == 0 ? " + " : " - ") << (1 + pick(5)) << ";\n";
      S.Ints.push_back(V);
      break;
    }
    case 7: { // Guarded block.
      if (Depth >= 3)
        break;
      std::string Cond;
      switch (pick(3)) {
      case 0:
        Cond = S.Ints[pick(S.Ints.size())] + relOp() +
               std::to_string(pick(10));
        break;
      case 1: {
        const std::string &V = S.MaybeObjs.empty()
                                   ? S.NonNullObjs[pick(
                                         S.NonNullObjs.size())]
                                   : S.MaybeObjs[pick(S.MaybeObjs.size())];
        Cond = V + (pick(2) == 0 ? " == null" : " != null");
        break;
      }
      default:
        Cond = "*";
        break;
      }
      Out << Indent << "if (" << Cond << ") {\n";
      nested(S, Depth);
      Out << Indent << "}\n";
      break;
    }
    case 8: { // Bounded loop.
      if (Depth >= 2)
        break;
      std::string I = freshName(S);
      Out << Indent << "var " << I << " = 0;\n";
      Out << Indent << "while (" << I << " < " << (1 + pick(3)) << ") {\n";
      {
        std::string SavedIndent = Indent;
        Indent += "  ";
        Scope Inner = S; // Locals declared inside stay inside.
        for (int K = 0, E2 = 1 + static_cast<int>(pick(3)); K < E2; ++K)
          genStmt(Inner, Depth + 2);
        Out << Indent << I << " = " << I << " + 1;\n";
        Indent = SavedIndent;
      }
      Out << Indent << "}\n";
      S.Ints.push_back(I);
      break;
    }
    case 9: { // Helper call.
      if (Helpers.empty() || Depth >= 2)
        break;
      const std::string &H = Helpers[pick(Helpers.size())];
      Out << Indent << H << "("
          << S.NonNullObjs[pick(S.NonNullObjs.size())] << ", "
          << S.Ints[pick(S.Ints.size())] << ");\n";
      break;
    }
    default: { // Copy maybe-null into a store.
      if (S.MaybeObjs.empty())
        break;
      std::string Base = S.NonNullObjs[pick(S.NonNullObjs.size())];
      Out << Indent << Base << "." << randField() << " = "
          << S.MaybeObjs[pick(S.MaybeObjs.size())] << ";\n";
      break;
    }
    }
  }

  void nested(Scope &S, int Depth) {
    std::string SavedIndent = Indent;
    Indent += "  ";
    Scope Inner = S;
    for (int K = 0, E = 1 + static_cast<int>(pick(3)); K < E; ++K)
      genStmt(Inner, Depth + 1);
    Indent = SavedIndent;
  }

  std::string anyObj(Scope &S) {
    if (!S.MaybeObjs.empty() && pick(3) == 0)
      return S.MaybeObjs[pick(S.MaybeObjs.size())];
    return S.NonNullObjs[pick(S.NonNullObjs.size())];
  }

  std::string relOp() {
    const char *Ops[] = {" < ", " <= ", " > ", " >= ", " == ", " != "};
    return Ops[pick(6)];
  }

  std::mt19937 Rng;
  std::ostringstream Out;
  std::string Indent;
  std::vector<std::string> Helpers;
  int SiteCount = 0;
};

class RandomProgramTest : public ::testing::TestWithParam<uint32_t> {};

} // namespace

TEST_P(RandomProgramTest, GeneratedProgramSoundness) {
  uint32_t Seed = GetParam();
  ProgramGen Gen(Seed);
  std::string Src = Gen.generate();
  SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Src);

  // P1: compiles and verifies.
  CompileResult CR = compileMJ(Src);
  ASSERT_TRUE(CR.ok()) << (CR.Errors.empty() ? "?" : CR.Errors[0]);
  EXPECT_TRUE(verifyProgram(*CR.Prog).empty());
  const Program &P = *CR.Prog;

  // P2: interpreter completes under several schedules; collect writes.
  std::mt19937 Sched(Seed * 31 + 7);
  std::vector<WriteEvent> Writes;
  for (int Trial = 0; Trial < 6; ++Trial) {
    InterpOptions IO;
    IO.HavocProvider = [&]() { return static_cast<int64_t>(Sched() % 2); };
    Interpreter I(P, IO);
    InterpResult R = I.run();
    ASSERT_TRUE(R.Completed) << R.Error;
    for (const WriteEvent &E : R.Writes)
      Writes.push_back(E);
  }

  auto PTA = PointsToAnalysis(P).run();

  // P3: points-to over-approximation of every concrete heap write.
  for (const WriteEvent &E : Writes) {
    if (E.TargetSite == InvalidId)
      continue; // Null store: no points-to edge expected.
    bool Covered = false;
    if (E.IsStatic) {
      for (AbsLocId T : PTA->locsOfSite(E.TargetSite))
        Covered |= PTA->ptGlobal(E.Global).contains(T);
      EXPECT_TRUE(Covered) << "uncovered static write to "
                           << P.globalName(E.Global);
    } else {
      for (AbsLocId B : PTA->locsOfSite(E.BaseSite))
        for (AbsLocId T : PTA->locsOfSite(E.TargetSite))
          Covered |= PTA->ptField(B, E.Field).contains(T);
      EXPECT_TRUE(Covered) << "uncovered field write "
                           << P.allocLabel(E.BaseSite) << "."
                           << P.fieldName(E.Field) << " <- "
                           << P.allocLabel(E.TargetSite);
    }
  }

  // P4: refutation soundness on a sample of realized writes (dedup first;
  // each edge search is bounded).
  WitnessSearch WS(P, *PTA);
  std::set<std::string> Checked;
  int Budgeted = 0;
  for (const WriteEvent &E : Writes) {
    if (E.TargetSite == InvalidId || Budgeted > 25)
      break;
    std::ostringstream KeyS;
    KeyS << E.IsStatic << ":" << E.Global << ":" << E.BaseSite << ":"
         << E.Field << ":" << E.TargetSite;
    if (!Checked.insert(KeyS.str()).second)
      continue;
    ++Budgeted;
    bool SomeNotRefuted = false;
    if (E.IsStatic) {
      for (AbsLocId T : PTA->locsOfSite(E.TargetSite)) {
        if (!PTA->ptGlobal(E.Global).contains(T))
          continue;
        if (WS.searchGlobalEdge(E.Global, T).Outcome !=
            SearchOutcome::Refuted)
          SomeNotRefuted = true;
      }
      EXPECT_TRUE(SomeNotRefuted)
          << "soundness: concrete static write refuted: "
          << P.globalName(E.Global) << " <- "
          << P.allocLabel(E.TargetSite);
    } else {
      for (AbsLocId B : PTA->locsOfSite(E.BaseSite)) {
        for (AbsLocId T : PTA->locsOfSite(E.TargetSite)) {
          if (!PTA->ptField(B, E.Field).contains(T))
            continue;
          if (WS.searchFieldEdge(B, E.Field, T).Outcome !=
              SearchOutcome::Refuted)
            SomeNotRefuted = true;
        }
      }
      EXPECT_TRUE(SomeNotRefuted)
          << "soundness: concrete field write refuted: "
          << P.allocLabel(E.BaseSite) << "." << P.fieldName(E.Field)
          << " <- " << P.allocLabel(E.TargetSite);
    }
  }

  // P5: determinism of a representative search.
  if (!Writes.empty() && Writes[0].IsStatic &&
      Writes[0].TargetSite != InvalidId) {
    const WriteEvent &E = Writes[0];
    for (AbsLocId T : PTA->locsOfSite(E.TargetSite)) {
      if (!PTA->ptGlobal(E.Global).contains(T))
        continue;
      WitnessSearch W1(P, *PTA), W2(P, *PTA);
      EdgeSearchResult R1 = W1.searchGlobalEdge(E.Global, T);
      EdgeSearchResult R2 = W2.searchGlobalEdge(E.Global, T);
      EXPECT_EQ(R1.Outcome, R2.Outcome);
      EXPECT_EQ(R1.StepsUsed, R2.StepsUsed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(0u, 30u));
