//===- pta_test.cpp - Points-to analysis tests ----------------------------===//

#include "pta/PointsTo.h"

#include "TestPrograms.h"
#include "android/AndroidModel.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace thresher;

namespace {

struct Analyzed {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<PointsToResult> PTA;
};

Analyzed analyze(const std::string &Src, PTAOptions Opts = {}) {
  Analyzed A;
  CompileResult R = compileMJ(Src);
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  A.Prog = std::move(R.Prog);
  A.PTA = PointsToAnalysis(*A.Prog, Opts).run();
  return A;
}

Analyzed analyzeApp(const char *AppSrc, PTAOptions Opts = {}) {
  Analyzed A;
  CompileResult R = compileAndroidApp(AppSrc);
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  A.Prog = std::move(R.Prog);
  A.PTA = PointsToAnalysis(*A.Prog, Opts).run();
  return A;
}

/// pt(local named VName in function FName) rendered as labels.
std::set<std::string> ptOf(const Analyzed &A, const std::string &FName,
                           const std::string &VName) {
  std::set<std::string> Out;
  FuncId F = A.Prog->findFunc(FName);
  EXPECT_NE(F, InvalidId) << FName;
  const Function &Fn = A.Prog->Funcs[F];
  for (VarId V = 0; V < Fn.NumVars; ++V) {
    if (Fn.varName(V) != VName)
      continue;
    for (AbsLocId L : A.PTA->ptVar(F, V))
      Out.insert(A.PTA->Locs.label(*A.Prog, L));
  }
  return Out;
}

} // namespace

TEST(PTATest, DirectAssignmentFlow) {
  Analyzed A = analyze("fun main() {\n"
                       "  var x = new Object() @o1;\n"
                       "  var y = x;\n"
                       "  var z = y;\n"
                       "}\n");
  EXPECT_EQ(ptOf(A, "main", "z"), (std::set<std::string>{"o1"}));
}

TEST(PTATest, FieldFlow) {
  Analyzed A = analyze("class C { var f; }\n"
                       "fun main() {\n"
                       "  var c = new C() @c0;\n"
                       "  var o = new Object() @o0;\n"
                       "  c.f = o;\n"
                       "  var r = c.f;\n"
                       "}\n");
  EXPECT_EQ(ptOf(A, "main", "r"), (std::set<std::string>{"o0"}));
}

TEST(PTATest, FieldsAreLocationSensitive) {
  Analyzed A = analyze("class C { var f; }\n"
                       "fun main() {\n"
                       "  var c1 = new C() @c1;\n"
                       "  var c2 = new C() @c2;\n"
                       "  c1.f = new Object() @o1;\n"
                       "  c2.f = new Object() @o2;\n"
                       "  var r = c1.f;\n"
                       "}\n");
  EXPECT_EQ(ptOf(A, "main", "r"), (std::set<std::string>{"o1"}));
}

TEST(PTATest, VirtualDispatchResolvesByClass) {
  Analyzed A = analyze("class A { m() { return new Object() @fromA; } }\n"
                       "class B extends A { m() { return new Object() "
                       "@fromB; } }\n"
                       "fun main() {\n"
                       "  var b = new B() @b0;\n"
                       "  var r = b.m();\n"
                       "}\n");
  EXPECT_EQ(ptOf(A, "main", "r"), (std::set<std::string>{"fromB"}));
}

TEST(PTATest, CallGraphIsOnTheFly) {
  // A.m unreachable since only B instances flow to the call site.
  Analyzed A = analyze("class A { m() { return new Object() @fromA; } }\n"
                       "class B extends A { m() { return new Object() "
                       "@fromB; } }\n"
                       "fun main() {\n"
                       "  var b = new B() @b0;\n"
                       "  var r = b.m();\n"
                       "}\n");
  FuncId AM = A.Prog->findMethod(A.Prog->findClass("A"), "m");
  FuncId BM = A.Prog->findMethod(A.Prog->findClass("B"), "m");
  ASSERT_NE(AM, InvalidId);
  ASSERT_NE(BM, InvalidId);
  EXPECT_FALSE(A.PTA->isReachable(AM));
  EXPECT_TRUE(A.PTA->isReachable(BM));
  EXPECT_FALSE(A.PTA->callersOf(BM).empty());
}

TEST(PTATest, GlobalsFlow) {
  Analyzed A = analyze("class S { static var g; }\n"
                       "fun main() {\n"
                       "  S.g = new Object() @o0;\n"
                       "  var r = S.g;\n"
                       "}\n");
  GlobalId G = A.Prog->findGlobal("S", "g");
  ASSERT_NE(G, InvalidId);
  ASSERT_EQ(A.PTA->ptGlobal(G).size(), 1u);
  EXPECT_EQ(ptOf(A, "main", "r"), (std::set<std::string>{"o0"}));
}

TEST(PTATest, ArraysSummarizeElements) {
  Analyzed A = analyze("fun main() {\n"
                       "  var a = new Object[2] @arr;\n"
                       "  var i = 0;\n"
                       "  a[i] = new Object() @o0;\n"
                       "  var r = a[i];\n"
                       "}\n");
  EXPECT_EQ(ptOf(A, "main", "r"), (std::set<std::string>{"o0"}));
}

TEST(PTATest, ContainerCFAClonesAllocations) {
  // Two Vecs: their internal tbl arrays must be distinguished (vec0.vecTbl
  // vs vec1.vecTbl), as in Fig. 2 of the paper.
  Analyzed A = analyzeApp(testprogs::figure1App());
  // The Act.objs static Vec is vec0; the local one vec1.
  GlobalId Objs = A.Prog->findGlobal("Act", "objs");
  ASSERT_NE(Objs, InvalidId);
  ASSERT_EQ(A.PTA->ptGlobal(Objs).size(), 1u);
  AbsLocId Vec0 = *A.PTA->ptGlobal(Objs).begin();
  EXPECT_EQ(A.PTA->Locs.label(*A.Prog, Vec0), "vec0");
  FieldId Tbl = A.Prog->findField(A.Prog->findClass("Vec"), "tbl");
  ASSERT_NE(Tbl, InvalidId);
  std::set<std::string> TblLabels;
  for (AbsLocId L : A.PTA->ptField(Vec0, Tbl))
    TblLabels.insert(A.PTA->Locs.label(*A.Prog, L));
  // vec0's table: the shared EMPTY array plus vec0's own clone.
  EXPECT_TRUE(TblLabels.count("vecEmpty"));
  EXPECT_TRUE(TblLabels.count("vec0.vecTbl"));
  EXPECT_FALSE(TblLabels.count("vec1.vecTbl"));
}

TEST(PTATest, Figure1PollutionIsPresent) {
  // The flow-insensitive analysis must (imprecisely) claim the EMPTY array
  // can contain the Activity — that is the false alarm Thresher refutes.
  Analyzed A = analyzeApp(testprogs::figure1App());
  GlobalId Empty = A.Prog->findGlobal("Vec", "EMPTY");
  ASSERT_NE(Empty, InvalidId);
  ASSERT_EQ(A.PTA->ptGlobal(Empty).size(), 1u);
  AbsLocId Arr0 = *A.PTA->ptGlobal(Empty).begin();
  std::set<std::string> Elems;
  for (AbsLocId L : A.PTA->ptField(Arr0, A.Prog->ElemsField))
    Elems.insert(A.PTA->Locs.label(*A.Prog, L));
  EXPECT_TRUE(Elems.count("act0"));
}

TEST(PTATest, InsensitivePolicyConflatesClones) {
  PTAOptions Opts;
  Opts.Policy = CtxPolicy::Insensitive;
  Analyzed A = analyzeApp(testprogs::figure1App(), Opts);
  GlobalId Objs = A.Prog->findGlobal("Act", "objs");
  AbsLocId Vec0 = *A.PTA->ptGlobal(Objs).begin();
  FieldId Tbl = A.Prog->findField(A.Prog->findClass("Vec"), "tbl");
  std::set<std::string> TblLabels;
  for (AbsLocId L : A.PTA->ptField(Vec0, Tbl))
    TblLabels.insert(A.PTA->Locs.label(*A.Prog, L));
  // Without container context there is a single conflated vecTbl.
  EXPECT_TRUE(TblLabels.count("vecTbl"));
}

TEST(PTATest, AnnotationEmptiesGlobal) {
  PTAOptions Opts;
  CompileResult R = compileAndroidApp(testprogs::figure1App());
  ASSERT_TRUE(R.ok());
  annotateHashMapEmptyTable(*R.Prog, Opts);
  auto PTA = PointsToAnalysis(*R.Prog, Opts).run();
  GlobalId G = R.Prog->findGlobal("HashMap", "EMPTY_TABLE");
  ASSERT_NE(G, InvalidId);
  EXPECT_TRUE(PTA->ptGlobal(G).empty());
}

TEST(PTATest, ProducersOfGlobalEdge) {
  Analyzed A = analyze("class S { static var g; }\n"
                       "fun main() {\n"
                       "  var o = new Object() @o0;\n"
                       "  S.g = o;\n"
                       "}\n");
  GlobalId G = A.Prog->findGlobal("S", "g");
  AbsLocId O0 = *A.PTA->ptGlobal(G).begin();
  auto Producers = A.PTA->producersOfGlobalEdge(G, O0);
  ASSERT_EQ(Producers.size(), 1u);
  const ProgramPoint &At = Producers[0].At;
  const Instruction &I = A.Prog->Funcs[At.F].Blocks[At.B].Insts[At.Idx];
  EXPECT_EQ(I.Op, Opcode::StoreStatic);
}

TEST(PTATest, ProducersOfFieldEdge) {
  Analyzed A = analyze("class C { var f; }\n"
                       "fun main() {\n"
                       "  var c = new C() @c0;\n"
                       "  var o = new Object() @o0;\n"
                       "  c.f = o;\n"
                       "}\n");
  FieldId F = A.Prog->findField(A.Prog->findClass("C"), "f");
  FuncId Main = A.Prog->findFunc("main");
  const Function &Fn = A.Prog->Funcs[Main];
  AbsLocId C0 = InvalidId, O0 = InvalidId;
  for (VarId V = 0; V < Fn.NumVars; ++V) {
    for (AbsLocId L : A.PTA->ptVar(Main, V)) {
      if (A.PTA->Locs.label(*A.Prog, L) == "c0")
        C0 = L;
      if (A.PTA->Locs.label(*A.Prog, L) == "o0")
        O0 = L;
    }
  }
  ASSERT_NE(C0, InvalidId);
  ASSERT_NE(O0, InvalidId);
  auto Producers = A.PTA->producersOfFieldEdge(C0, F, O0);
  EXPECT_EQ(Producers.size(), 1u);
}

TEST(PTATest, ModSetsAreTransitive) {
  Analyzed A = analyze("class C { var f; }\n"
                       "class S { static var g; }\n"
                       "fun leaf(c) { c.f = c; S.g = c; }\n"
                       "fun mid(c) { leaf(c); }\n"
                       "fun main() { var c = new C() @c0; mid(c); }\n");
  FuncId Mid = A.Prog->findFunc("mid");
  const ModSet &M = A.PTA->modSetOf(Mid);
  FieldId F = A.Prog->findField(A.Prog->findClass("C"), "f");
  GlobalId G = A.Prog->findGlobal("S", "g");
  EXPECT_TRUE(M.Fields.contains(F));
  EXPECT_TRUE(M.Globals.contains(G));
}

//===----------------------------------------------------------------------===//
// Context sensitivity and mod/ref summaries
//===----------------------------------------------------------------------===//

TEST(PTATest, CtxQualifiedVarPts) {
  // Per-context parameter points-to: in (push, vec-A) the val parameter
  // holds only what was pushed into A.
  Analyzed A = analyzeApp(testprogs::figure1App());
  FuncId Push = A.Prog->findMethod(A.Prog->findClass("Vec"), "push");
  ASSERT_NE(Push, InvalidId);
  AbsLocId Vec0 = InvalidId, Vec1 = InvalidId;
  for (AbsLocId L = 0; L < A.PTA->Locs.size(); ++L) {
    if (A.PTA->Locs.label(*A.Prog, L) == "vec0")
      Vec0 = L;
    if (A.PTA->Locs.label(*A.Prog, L) == "vec1")
      Vec1 = L;
  }
  ASSERT_NE(Vec0, InvalidId);
  ASSERT_NE(Vec1, InvalidId);
  // Parameter slot 1 = val.
  std::set<std::string> V0, V1;
  for (AbsLocId L : A.PTA->ptVarCtx(Push, Vec0, 1))
    V0.insert(A.PTA->Locs.label(*A.Prog, L));
  for (AbsLocId L : A.PTA->ptVarCtx(Push, Vec1, 1))
    V1.insert(A.PTA->Locs.label(*A.Prog, L));
  EXPECT_TRUE(V0.count("str\"hello\"")); // objs.push("hello")
  EXPECT_FALSE(V0.count("act0"));
  EXPECT_TRUE(V1.count("act0"));         // acts.push(this)
  EXPECT_FALSE(V1.count("str\"hello\""));
  // The union view sees both.
  std::set<std::string> U;
  for (AbsLocId L : A.PTA->ptVar(Push, 1))
    U.insert(A.PTA->Locs.label(*A.Prog, L));
  EXPECT_TRUE(U.count("act0"));
  EXPECT_TRUE(U.count("str\"hello\""));
}

TEST(PTATest, CtxQualifiedCallEdges) {
  Analyzed A = analyzeApp(testprogs::figure1App());
  FuncId Push = A.Prog->findMethod(A.Prog->findClass("Vec"), "push");
  AbsLocId Vec0 = InvalidId;
  for (AbsLocId L = 0; L < A.PTA->Locs.size(); ++L)
    if (A.PTA->Locs.label(*A.Prog, L) == "vec0")
      Vec0 = L;
  // Exactly one call edge targets (push, vec0): the objs.push site.
  auto Callers = A.PTA->callersOfCtx(Push, Vec0);
  ASSERT_EQ(Callers.size(), 1u);
  EXPECT_EQ(Callers[0].CalleeCtx, Vec0);
  // And from that caller's site, calleesAtCtx resolves back.
  auto Edges = A.PTA->calleesAtCtx(Callers[0].At, Callers[0].CallerCtx);
  bool Found = false;
  for (const CallEdge &E : Edges)
    Found |= E.Callee == Push && E.CalleeCtx == Vec0;
  EXPECT_TRUE(Found);
}

TEST(PTATest, ReceiverIsHeapContext) {
  Analyzed A = analyzeApp(testprogs::figure1App());
  FuncId Push = A.Prog->findMethod(A.Prog->findClass("Vec"), "push");
  FuncId Main = A.Prog->findFunc("main");
  EXPECT_TRUE(A.PTA->receiverIsHeapContext(Push));
  EXPECT_FALSE(A.PTA->receiverIsHeapContext(Main));
}

TEST(PTATest, AllocContextForRespectsDepthCap) {
  Analyzed A = analyzeApp(testprogs::figure1App());
  FuncId Push = A.Prog->findMethod(A.Prog->findClass("Vec"), "push");
  AbsLocId Vec0 = InvalidId;
  for (AbsLocId L = 0; L < A.PTA->Locs.size(); ++L)
    if (A.PTA->Locs.label(*A.Prog, L) == "vec0")
      Vec0 = L;
  EXPECT_EQ(A.PTA->allocContextFor(Push, Vec0), Vec0);
  EXPECT_EQ(A.PTA->allocContextFor(Push, InvalidId), InvalidId);
  FuncId Main = A.Prog->findFunc("main");
  EXPECT_EQ(A.PTA->allocContextFor(Main, Vec0), InvalidId);
}

TEST(PTATest, HeapModsArePointsToFiltered) {
  // Vec.push writes @elems only on Vec arrays, never on HashMap tables.
  Analyzed A = analyzeApp(testprogs::figure1App());
  FuncId Push = A.Prog->findMethod(A.Prog->findClass("Vec"), "push");
  const PointsToResult::HeapMod &M = A.PTA->heapModOf(Push);
  AbsLocId VecEmpty = InvalidId, HmEmpty = InvalidId;
  for (AbsLocId L = 0; L < A.PTA->Locs.size(); ++L) {
    if (A.PTA->Locs.label(*A.Prog, L) == "vecEmpty")
      VecEmpty = L;
    if (A.PTA->Locs.label(*A.Prog, L) == "hmEmpty")
      HmEmpty = L;
  }
  ASSERT_NE(VecEmpty, InvalidId);
  EXPECT_TRUE(M.mayWriteField(A.Prog->ElemsField, IdSet{VecEmpty}));
  if (HmEmpty != InvalidId) {
    EXPECT_FALSE(M.mayWriteField(A.Prog->ElemsField, IdSet{HmEmpty}));
  }
}

TEST(PTATest, HeapModsTransitiveThroughWrappers) {
  Analyzed A = analyze("class C { var f; }\n"
                       "class S { static var g; }\n"
                       "fun leaf(c) { c.f = c; S.g = c; }\n"
                       "fun w1(c) { leaf(c); }\n"
                       "fun w2(c) { w1(c); }\n"
                       "fun main() { var c = new C() @c0; w2(c); }\n");
  FuncId W2 = A.Prog->findFunc("w2");
  const PointsToResult::HeapMod &M = A.PTA->heapModOf(W2);
  GlobalId G = A.Prog->findGlobal("S", "g");
  EXPECT_TRUE(M.Globals.contains(G));
  FieldId F = A.Prog->findFieldByName("f");
  AbsLocId C0 = InvalidId;
  for (AbsLocId L = 0; L < A.PTA->Locs.size(); ++L)
    if (A.PTA->Locs.label(*A.Prog, L) == "c0")
      C0 = L;
  EXPECT_TRUE(M.mayWriteField(F, IdSet{C0}));
}

TEST(PTATest, ProducersCarryContexts) {
  Analyzed A = analyzeApp(testprogs::figure1App());
  GlobalId Empty = A.Prog->findGlobal("Vec", "EMPTY");
  AbsLocId Arr0 = *A.PTA->ptGlobal(Empty).begin();
  AbsLocId Act0 = InvalidId;
  for (AbsLocId L = 0; L < A.PTA->Locs.size(); ++L)
    if (A.PTA->Locs.label(*A.Prog, L) == "act0")
      Act0 = L;
  auto Producers =
      A.PTA->producersOfFieldEdge(Arr0, A.Prog->ElemsField, Act0);
  ASSERT_FALSE(Producers.empty());
  // Every producer is a statement in Vec.push under a Vec context. The
  // direct push of act0 happens under vec1; the copy loop can also
  // (abstractly) re-copy the polluted contents under vec0.
  FuncId Push = A.Prog->findMethod(A.Prog->findClass("Vec"), "push");
  bool SawVec1 = false;
  for (const ProducerSite &PS : Producers) {
    EXPECT_EQ(PS.At.F, Push);
    std::string Ctx = A.PTA->Locs.label(*A.Prog, PS.Ctx);
    EXPECT_TRUE(Ctx == "vec0" || Ctx == "vec1") << Ctx;
    SawVec1 |= Ctx == "vec1";
  }
  EXPECT_TRUE(SawVec1);
}

TEST(PTATest, AllObjSensPolicy) {
  PTAOptions Opts;
  Opts.Policy = CtxPolicy::AllObjSens;
  Analyzed A = analyze("class C {\n"
                       "  var f;\n"
                       "  set(v) { f = v; }\n"
                       "}\n"
                       "fun main() {\n"
                       "  var c1 = new C() @c1;\n"
                       "  var c2 = new C() @c2;\n"
                       "  c1.set(new Object() @o1);\n"
                       "  c2.set(new Object() @o2);\n"
                       "  var r = c1.f;\n"
                       "}\n",
                       Opts);
  // With all-object sensitivity the two receivers don't conflate.
  EXPECT_EQ(ptOf(A, "main", "r"), (std::set<std::string>{"o1"}));
}

TEST(PTATest, InsensitivePolicyConflatesParams) {
  PTAOptions Opts;
  Opts.Policy = CtxPolicy::Insensitive;
  Analyzed A = analyze("class C {\n"
                       "  var f;\n"
                       "  set(v) { f = v; }\n"
                       "}\n"
                       "fun main() {\n"
                       "  var c1 = new C() @c1;\n"
                       "  var c2 = new C() @c2;\n"
                       "  c1.set(new Object() @o1);\n"
                       "  c2.set(new Object() @o2);\n"
                       "  var r = c1.f;\n"
                       "}\n",
                       Opts);
  EXPECT_EQ(ptOf(A, "main", "r"), (std::set<std::string>{"o1", "o2"}));
}
