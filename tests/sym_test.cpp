//===- sym_test.cpp - Witness-refutation engine tests ---------------------===//

#include "sym/WitnessSearch.h"

#include "TestPrograms.h"
#include "android/AndroidModel.h"
#include "frontend/Frontend.h"

#include <gtest/gtest.h>

using namespace thresher;

namespace {

struct Env {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<PointsToResult> PTA;

  AbsLocId loc(const std::string &Label) const {
    for (AbsLocId L = 0; L < PTA->Locs.size(); ++L)
      if (PTA->Locs.label(*Prog, L) == Label)
        return L;
    ADD_FAILURE() << "no abstract location labelled " << Label;
    return InvalidId;
  }

  GlobalId global(const std::string &Cls, const std::string &Fld) const {
    GlobalId G = Prog->findGlobal(Cls, Fld);
    EXPECT_NE(G, InvalidId) << Cls << "." << Fld;
    return G;
  }

  FieldId field(const std::string &Fld) const {
    FieldId F = Prog->findFieldByName(Fld);
    EXPECT_NE(F, InvalidId) << Fld;
    return F;
  }
};

Env setup(const std::string &Src, PTAOptions PtaOpts = {}) {
  Env S;
  CompileResult R = compileMJ(Src);
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  S.Prog = std::move(R.Prog);
  S.PTA = PointsToAnalysis(*S.Prog, PtaOpts).run();
  return S;
}

Env setupApp(const char *AppSrc) {
  Env S;
  CompileResult R = compileAndroidApp(AppSrc);
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  S.Prog = std::move(R.Prog);
  S.PTA = PointsToAnalysis(*S.Prog, {}).run();
  return S;
}

} // namespace

TEST(SymTest, WitnessesRealizableGlobalEdge) {
  Env S = setup("class G { static var g; }\n"
                  "fun main() { G.g = new Object() @o0; }\n");
  WitnessSearch WS(*S.Prog, *S.PTA);
  EdgeSearchResult R = WS.searchGlobalEdge(S.global("G", "g"), S.loc("o0"));
  EXPECT_EQ(R.Outcome, SearchOutcome::Witnessed);
}

TEST(SymTest, RefutesEdgeBehindFalseGuard) {
  // The guard compares a constant: the store can never execute.
  Env S = setup("class G { static var g; }\n"
                  "fun main() {\n"
                  "  var flag = 0;\n"
                  "  var o = new Object() @o0;\n"
                  "  if (flag != 0) { G.g = o; }\n"
                  "}\n");
  WitnessSearch WS(*S.Prog, *S.PTA);
  EdgeSearchResult R = WS.searchGlobalEdge(S.global("G", "g"), S.loc("o0"));
  EXPECT_EQ(R.Outcome, SearchOutcome::Refuted);
}

TEST(SymTest, WitnessesEdgeBehindTrueGuard) {
  Env S = setup("class G { static var g; }\n"
                  "fun main() {\n"
                  "  var flag = 1;\n"
                  "  var o = new Object() @o0;\n"
                  "  if (flag != 0) { G.g = o; }\n"
                  "}\n");
  WitnessSearch WS(*S.Prog, *S.PTA);
  EdgeSearchResult R = WS.searchGlobalEdge(S.global("G", "g"), S.loc("o0"));
  EXPECT_EQ(R.Outcome, SearchOutcome::Witnessed);
}

TEST(SymTest, RefutesInterproceduralFlagGuard) {
  // The latent-flag pattern: flag initialized to 0 in __clinit__ and never
  // set; requires path-sensitive interprocedural reasoning.
  Env S = setupApp(testprogs::latentFlagApp());
  WitnessSearch WS(*S.Prog, *S.PTA);
  EdgeSearchResult R =
      WS.searchGlobalEdge(S.global("DAO", "cachedInstance"), S.loc("act0"));
  EXPECT_EQ(R.Outcome, SearchOutcome::Refuted);
}

TEST(SymTest, WitnessesWhenFlagCanBeEnabled) {
  Env S = setup("class Act { }\n"
                  "class DAO {\n"
                  "  static var cached;\n"
                  "  static var enabled = 0;\n"
                  "  static cache(o) {\n"
                  "    if (DAO.enabled != 0) { DAO.cached = o; }\n"
                  "  }\n"
                  "}\n"
                  "fun main() {\n"
                  "  if (*) { DAO.enabled = 1; }\n"
                  "  DAO.cache(new Act() @a0);\n"
                  "}\n");
  WitnessSearch WS(*S.Prog, *S.PTA);
  EdgeSearchResult R =
      WS.searchGlobalEdge(S.global("DAO", "cached"), S.loc("a0"));
  EXPECT_EQ(R.Outcome, SearchOutcome::Witnessed);
}

TEST(SymTest, RefutesWrongAllocationSiteArgument) {
  // The paper's "objs.push(\"hello\")" refutation via WitNew/instance
  // constraints: the callee's store cannot have stored an @a0 instance
  // when called with a string.
  Env S = setup("class Act { }\n"
                  "class Sink { static var slot; }\n"
                  "fun put(x) { Sink.slot = x; }\n"
                  "fun main() {\n"
                  "  var a = new Act() @a0;\n"
                  "  put(\"hello\");\n"
                  "}\n");
  WitnessSearch WS(*S.Prog, *S.PTA);
  // pt(slot) only contains the string, so there is no a0 edge at all;
  // query the string edge (witnessed) to check the machinery end to end.
  EdgeSearchResult R = WS.searchGlobalEdge(S.global("Sink", "slot"),
                                           S.loc("str\"hello\""));
  EXPECT_EQ(R.Outcome, SearchOutcome::Witnessed);
}

TEST(SymTest, RefutesCrossCalleeConfusion) {
  // Both an Act and a String flow to put, but only through different call
  // sites guarded by allocation identity: the a0->slotA edge is real, the
  // str->slotA is not (slotA only ever receives x when flag==1 fails).
  Env S = setup(
      "class Act { }\n"
      "class Sink { static var slot; }\n"
      "fun put(x, flag) {\n"
      "  if (flag == 1) { Sink.slot = x; }\n"
      "}\n"
      "fun main() {\n"
      "  var a = new Act() @a0;\n"
      "  put(a, 0);\n"        // Never stored: flag == 0.
      "  put(\"s\", 1);\n"    // Stored.
      "}\n");
  WitnessSearch WS(*S.Prog, *S.PTA);
  // a0 flows to pt(slot) flow-insensitively (both calls conflated), but
  // the context-sensitive backwards search refutes it.
  GlobalId Slot = S.global("Sink", "slot");
  EXPECT_TRUE(S.PTA->ptGlobal(Slot).contains(S.loc("a0")));
  EdgeSearchResult RA = WS.searchGlobalEdge(Slot, S.loc("a0"));
  EXPECT_EQ(RA.Outcome, SearchOutcome::Refuted);
  EdgeSearchResult RS = WS.searchGlobalEdge(Slot, S.loc("str\"s\""));
  EXPECT_EQ(RS.Outcome, SearchOutcome::Witnessed);
}

TEST(SymTest, Figure1EdgeIsRefuted) {
  // The headline result: arr0.@elems -> act0 is unrealizable.
  Env S = setupApp(testprogs::figure1App());
  WitnessSearch WS(*S.Prog, *S.PTA);
  EdgeSearchResult R = WS.searchFieldEdge(S.loc("vecEmpty"),
                                          S.Prog->ElemsField, S.loc("act0"));
  EXPECT_EQ(R.Outcome, SearchOutcome::Refuted)
      << "steps used: " << R.StepsUsed;
}

TEST(SymTest, Figure1TableEdgeIsWitnessed) {
  // The Activity does go into vec1's own table.
  Env S = setupApp(testprogs::figure1App());
  WitnessSearch WS(*S.Prog, *S.PTA);
  EdgeSearchResult R = WS.searchFieldEdge(S.loc("vec1.vecTbl"),
                                          S.Prog->ElemsField, S.loc("act0"));
  EXPECT_EQ(R.Outcome, SearchOutcome::Witnessed);
}

TEST(SymTest, Figure5LeakEdgesWitnessed) {
  Env S = setupApp(testprogs::figure5App());
  WitnessSearch WS(*S.Prog, *S.PTA);
  EdgeSearchResult R1 = WS.searchGlobalEdge(
      S.global("EmailAddressAdapter", "sInstance"), S.loc("adr0"));
  EXPECT_EQ(R1.Outcome, SearchOutcome::Witnessed);
  EdgeSearchResult R2 = WS.searchFieldEdge(
      S.loc("adr0"), S.field("mContext"), S.loc("act0"));
  EXPECT_EQ(R2.Outcome, SearchOutcome::Witnessed);
}

TEST(SymTest, BudgetExhaustionReported) {
  Env S = setupApp(testprogs::figure1App());
  SymOptions Opts;
  Opts.EdgeBudget = 3; // Absurdly small.
  WitnessSearch WS(*S.Prog, *S.PTA, Opts);
  EdgeSearchResult R = WS.searchFieldEdge(S.loc("vecEmpty"),
                                          S.Prog->ElemsField, S.loc("act0"));
  EXPECT_EQ(R.Outcome, SearchOutcome::BudgetExhausted);
}

TEST(SymTest, EdgeWithoutProducersIsRefuted) {
  Env S = setup("class G { static var g; }\n"
                  "fun main() { var o = new Object() @o0; }\n");
  WitnessSearch WS(*S.Prog, *S.PTA);
  EdgeSearchResult R = WS.searchGlobalEdge(S.global("G", "g"), S.loc("o0"));
  EXPECT_EQ(R.Outcome, SearchOutcome::Refuted);
}

TEST(SymTest, LoopWithIrrelevantBodyIsSkipped) {
  // Fig. 1's "irrelevant loop poses no difficulty" observation.
  Env S = setup("class G { static var g; }\n"
                  "fun main() {\n"
                  "  var o = new Object() @o0;\n"
                  "  var i = 0;\n"
                  "  while (i < 100) { i = i + 1; }\n"
                  "  G.g = o;\n"
                  "}\n");
  WitnessSearch WS(*S.Prog, *S.PTA);
  EdgeSearchResult R = WS.searchGlobalEdge(S.global("G", "g"), S.loc("o0"));
  EXPECT_EQ(R.Outcome, SearchOutcome::Witnessed);
  EXPECT_LT(R.StepsUsed, 1000u);
}

TEST(SymTest, RefutationThroughLoopNeedsInvariants) {
  // The value stored comes from a loop-carried variable; with full loop
  // invariant inference the search still refutes the impossible edge.
  Env S = setup("class G { static var g; }\n"
                  "fun main() {\n"
                  "  var o = new Object() @good;\n"
                  "  var bad = new Object() @bad;\n"
                  "  var cur = o;\n"
                  "  var i = 0;\n"
                  "  while (i < 10) { cur = o; i = i + 1; }\n"
                  "  G.g = cur;\n"
                  "}\n");
  WitnessSearch WS(*S.Prog, *S.PTA);
  EdgeSearchResult R = WS.searchGlobalEdge(S.global("G", "g"), S.loc("bad"));
  // pt(cur) = {good}: the bad edge has no producer at all. Check also the
  // realizable one survives the loop.
  EXPECT_EQ(R.Outcome, SearchOutcome::Refuted);
  EdgeSearchResult R2 = WS.searchGlobalEdge(S.global("G", "g"),
                                            S.loc("good"));
  EXPECT_EQ(R2.Outcome, SearchOutcome::Witnessed);
}

TEST(SymTest, DropAllLoopModeCannotDistinguishHashMaps) {
  // Hypothesis 3 (Sec. 4): the trivial drop-everything loop treatment
  // "could never distinguish the contents of different HashMap objects".
  // With two HashMaps, the static map's grown table is polluted with the
  // local map's entries only through the resize copy loop; refuting that
  // edge requires reasoning about array contents across the loop, which
  // DropAll discards. Note the Fig. 1 Vec refutation does NOT separate
  // the modes: its contradiction lives on the loop-invariant tbl field.
  const char *App = R"MJ(
class MapHolder {
  static var registry = new HashMap() @mapStat;
}
class MAct extends Activity {
  onCreate() {
    var mine = new HashMap() @mapLoc;
    mine.put("k", this);
    var r = MapHolder.registry;
    r.put("k2", "v2");
  }
}
fun main() {
  var a = new MAct() @act0;
  if (*) { a.onCreate(); }
}
)MJ";
  Env S = setupApp(App);
  // The copy-loop pollution edge: the static map's grown table claimed to
  // contain the local map's entry.
  AbsLocId GrownTable = S.loc("mapStat.hmTbl");
  AbsLocId LocalEntry = S.loc("mapLoc.hmEntry");
  SymOptions Full;
  Full.EdgeBudget = 100000;
  WitnessSearch WSFull(*S.Prog, *S.PTA, Full);
  EdgeSearchResult RFull = WSFull.searchFieldEdge(
      GrownTable, S.Prog->ElemsField, LocalEntry);
  EXPECT_EQ(RFull.Outcome, SearchOutcome::Refuted)
      << "steps: " << RFull.StepsUsed;

  SymOptions Drop;
  Drop.Loop = LoopMode::DropAll;
  Drop.EdgeBudget = 100000;
  WitnessSearch WSDrop(*S.Prog, *S.PTA, Drop);
  EdgeSearchResult RDrop = WSDrop.searchFieldEdge(
      GrownTable, S.Prog->ElemsField, LocalEntry);
  EXPECT_NE(RDrop.Outcome, SearchOutcome::Refuted);
}

TEST(SymTest, RepresentationModesAgreeOnFigure1) {
  Env S = setupApp(testprogs::figure1App());
  for (Representation Repr :
       {Representation::Mixed, Representation::FullyExplicit}) {
    SymOptions Opts;
    Opts.Repr = Repr;
    WitnessSearch WS(*S.Prog, *S.PTA, Opts);
    EdgeSearchResult R = WS.searchFieldEdge(
        S.loc("vecEmpty"), S.Prog->ElemsField, S.loc("act0"));
    EXPECT_EQ(R.Outcome, SearchOutcome::Refuted)
        << "representation " << static_cast<int>(Repr);
  }
}

TEST(SymTest, WitnessTrailIsRecorded) {
  Env S = setup("class G { static var g; }\n"
                  "fun main() { G.g = new Object() @o0; }\n");
  SymOptions Opts;
  Opts.RecordTrails = true;
  WitnessSearch WS(*S.Prog, *S.PTA, Opts);
  EdgeSearchResult R = WS.searchGlobalEdge(S.global("G", "g"), S.loc("o0"));
  ASSERT_EQ(R.Outcome, SearchOutcome::Witnessed);
  EXPECT_FALSE(R.WitnessTrail.empty());
}
