//===- reachability_test.cpp - General reachability assertion tests -------===//

#include "leak/ReachabilityAssert.h"

#include "frontend/Frontend.h"
#include "pta/PointsTo.h"

#include <gtest/gtest.h>

using namespace thresher;

namespace {

struct Env {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<PointsToResult> PTA;
};

Env mk(const std::string &Src) {
  Env E;
  CompileResult R = compileMJ(Src);
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  E.Prog = std::move(R.Prog);
  E.PTA = PointsToAnalysis(*E.Prog, {}).run();
  return E;
}

AllocSiteId site(const Program &P, const std::string &Label) {
  for (AllocSiteId S = 0; S < P.AllocSites.size(); ++S)
    if (P.allocLabel(S) == Label)
      return S;
  ADD_FAILURE() << "no allocation site labelled " << Label;
  return InvalidId;
}

} // namespace

TEST(ReachabilityTest, ProvenWhenTrulyUnreachable) {
  Env E = mk("class Secret { }\n"
             "class Pub { static var out; }\n"
             "fun main() {\n"
             "  var s = new Secret() @sec0;\n"
             "  Pub.out = new Object() @pub0;\n"
             "}\n");
  ReachabilityChecker RC(*E.Prog, *E.PTA);
  GlobalId Out = E.Prog->findGlobal("Pub", "out");
  AssertResult A =
      RC.assertUnreachableClass(Out, E.Prog->findClass("Secret"));
  EXPECT_EQ(A.Verdict, AssertVerdict::Proven);
  EXPECT_EQ(A.EdgesRefuted, 0u); // Not even flow-insensitively connected.
}

TEST(ReachabilityTest, ProvenViaRefutation) {
  Env E = mk("class Secret { }\n"
             "class Pub { static var out; }\n"
             "fun main() {\n"
             "  var dead = 0;\n"
             "  var s = new Secret() @sec0;\n"
             "  if (dead != 0) { Pub.out = s; }\n"
             "}\n");
  ReachabilityChecker RC(*E.Prog, *E.PTA);
  GlobalId Out = E.Prog->findGlobal("Pub", "out");
  // The flow-insensitive graph claims reachability...
  EXPECT_FALSE(E.PTA->ptGlobal(Out).empty());
  // ...and the checker proves it away.
  AssertResult A =
      RC.assertUnreachableClass(Out, E.Prog->findClass("Secret"));
  EXPECT_EQ(A.Verdict, AssertVerdict::Proven);
  EXPECT_GE(A.EdgesRefuted, 1u);
}

TEST(ReachabilityTest, ViolationGivesCounterexamplePath) {
  Env E = mk("class Secret { }\n"
             "class Box { var inner; }\n"
             "class Pub { static var out; }\n"
             "fun main() {\n"
             "  var s = new Secret() @sec0;\n"
             "  var b = new Box() @box0;\n"
             "  b.inner = s;\n"
             "  Pub.out = b;\n"
             "}\n");
  ReachabilityChecker RC(*E.Prog, *E.PTA);
  GlobalId Out = E.Prog->findGlobal("Pub", "out");
  AssertResult A =
      RC.assertUnreachableClass(Out, E.Prog->findClass("Secret"));
  ASSERT_EQ(A.Verdict, AssertVerdict::Violated);
  ASSERT_EQ(A.CounterexamplePath.size(), 2u);
  EXPECT_EQ(A.CounterexamplePath[0], "Pub.out -> box0");
  EXPECT_EQ(A.CounterexamplePath[1], "box0.inner -> sec0");
}

TEST(ReachabilityTest, SiteGranularAssertions) {
  Env E = mk("class Secret { }\n"
             "class Pub { static var out; }\n"
             "fun main() {\n"
             "  var a = new Secret() @sec0;\n"
             "  var b = new Secret() @sec1;\n"
             "  Pub.out = b;\n"
             "}\n");
  ReachabilityChecker RC(*E.Prog, *E.PTA);
  GlobalId Out = E.Prog->findGlobal("Pub", "out");
  // sec0 never escapes; sec1 does.
  EXPECT_EQ(RC.assertUnreachableSite(Out, site(*E.Prog, "sec0")).Verdict,
            AssertVerdict::Proven);
  EXPECT_EQ(RC.assertUnreachableSite(Out, site(*E.Prog, "sec1")).Verdict,
            AssertVerdict::Violated);
}

TEST(ReachabilityTest, InconclusiveOnBudget) {
  Env E = mk("class Secret { }\n"
             "class Pub { static var out; }\n"
             "fun main() {\n"
             "  var s = new Secret() @sec0;\n"
             "  Pub.out = s;\n"
             "}\n");
  SymOptions Opts;
  Opts.EdgeBudget = 0;
  ReachabilityChecker RC(*E.Prog, *E.PTA, Opts);
  GlobalId Out = E.Prog->findGlobal("Pub", "out");
  AssertResult A =
      RC.assertUnreachableClass(Out, E.Prog->findClass("Secret"));
  EXPECT_EQ(A.Verdict, AssertVerdict::Inconclusive);
  EXPECT_GE(A.EdgeTimeouts, 1u);
}
