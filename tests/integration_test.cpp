//===- integration_test.cpp - End-to-end pipeline tests -------------------===//
//
// Full pipeline: mini-Java -> IR -> points-to -> leak client -> report,
// plus the refutation-soundness property test against the concrete
// interpreter (Theorem 1).
//
//===----------------------------------------------------------------------===//

#include "android/Benchmarks.h"
#include "interp/Interp.h"
#include "leak/LeakChecker.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <random>

using namespace thresher;

namespace {

struct Pipeline {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<PointsToResult> PTA;
  ClassId ActBase = InvalidId;
};

Pipeline pipeline(const char *AppSrc, PTAOptions PtaOpts = {}) {
  Pipeline P;
  CompileResult R = compileAndroidApp(AppSrc);
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  P.Prog = std::move(R.Prog);
  P.PTA = PointsToAnalysis(*P.Prog, PtaOpts).run();
  P.ActBase = activityBaseClass(*P.Prog);
  return P;
}

} // namespace

TEST(IntegrationTest, Figure1AllAlarmsRefuted) {
  Pipeline P = pipeline(testprogs::figure1App());
  LeakChecker LC(*P.Prog, *P.PTA, P.ActBase);
  LeakReport R = LC.run();
  EXPECT_GT(R.NumAlarms, 0u) << "the false alarm must exist pre-threshing";
  EXPECT_EQ(R.RefutedAlarms, R.NumAlarms);
  EXPECT_EQ(R.RefutedFields, R.Fields);
  EXPECT_EQ(R.TimeoutEdges, 0u);
  EXPECT_GT(R.RefutedEdges, 0u);
}

TEST(IntegrationTest, Figure5LeakReported) {
  Pipeline P = pipeline(testprogs::figure5App());
  LeakChecker LC(*P.Prog, *P.PTA, P.ActBase);
  LeakReport R = LC.run();
  ASSERT_EQ(R.NumAlarms, 1u);
  EXPECT_EQ(R.RefutedAlarms, 0u);
  EXPECT_EQ(R.Alarms[0].Status, AlarmStatus::Witnessed);
  EXPECT_EQ(P.Prog->globalName(R.Alarms[0].Source),
            "EmailAddressAdapter.sInstance");
  uint32_t True = R.countTrue(*P.Prog, P.PTA->Locs,
                              {{R.Alarms[0].Source, "act0"}});
  EXPECT_EQ(True, 1u);
}

TEST(IntegrationTest, LatentFlagAlarmRefuted) {
  Pipeline P = pipeline(testprogs::latentFlagApp());
  LeakChecker LC(*P.Prog, *P.PTA, P.ActBase);
  LeakReport R = LC.run();
  ASSERT_EQ(R.NumAlarms, 1u);
  EXPECT_EQ(R.RefutedAlarms, 1u);
}

TEST(IntegrationTest, ConflationAlarmSurvivesAsFalseAlarm) {
  // Clear-before-publish: every edge individually realizable, so edge-wise
  // refutation cannot filter the alarm — and the interpreter confirms it
  // never concretely leaks. This is the FalA population of Table 1.
  const char *App = R"MJ(
class Holder { var item; }
class Pub {
  static var current;
  static wrap(x) {
    var h = new Holder() @hold0;
    h.item = x;
    return h;
  }
  static publish(act) {
    var w = Pub.wrap(act);
    w.item = null;
    Pub.current = w;
  }
}
class PAct extends Activity {
  onCreate() { Pub.publish(this); }
}
fun main() {
  var a = new PAct() @act0;
  if (*) { a.onCreate(); }
}
)MJ";
  Pipeline P = pipeline(App);
  LeakChecker LC(*P.Prog, *P.PTA, P.ActBase);
  LeakReport R = LC.run();
  ASSERT_EQ(R.NumAlarms, 1u);
  EXPECT_EQ(R.RefutedAlarms, 0u);
  // Concretely it never leaks.
  for (int64_t C = 0; C < 2; ++C) {
    InterpOptions O;
    O.HavocProvider = [&]() { return C; };
    Interpreter I(*P.Prog, O);
    ASSERT_TRUE(I.run().Completed);
    EXPECT_FALSE(I.activityReachableFromStatic(P.ActBase));
  }
}

TEST(IntegrationTest, AnnotationRemovesHashMapAlarms) {
  const char *App = R"MJ(
class MapHolder {
  static var registry = new HashMap() @map0;
}
class MAct extends Activity {
  onCreate() {
    var m = new HashMap() @map1;
    m.put("k", this);
    var r = MapHolder.registry;
    r.put("k", "v");
  }
}
fun main() {
  var a = new MAct() @act0;
  if (*) { a.onCreate(); }
}
)MJ";
  // Without annotation: alarms exist (EMPTY_TABLE pollution).
  Pipeline PN = pipeline(App);
  LeakChecker LCN(*PN.Prog, *PN.PTA, PN.ActBase);
  LeakReport RN = LCN.run();
  EXPECT_GT(RN.NumAlarms, 0u);
  // With annotation: the registry-side alarms disappear entirely.
  PTAOptions AnnOpts;
  {
    CompileResult CR = compileAndroidApp(App);
    ASSERT_TRUE(CR.ok());
    annotateHashMapEmptyTable(*CR.Prog, AnnOpts);
  }
  Pipeline PY = pipeline(App, AnnOpts);
  LeakChecker LCY(*PY.Prog, *PY.PTA, PY.ActBase);
  LeakReport RY = LCY.run();
  EXPECT_LT(RY.NumAlarms, RN.NumAlarms);
}

TEST(IntegrationTest, BenchmarkAppsCompileAndGroundTruthResolves) {
  for (const AppSpec &Spec : paperBenchmarks()) {
    BenchmarkApp App = buildBenchmarkApp(Spec);
    ASSERT_NE(App.Prog, nullptr) << Spec.Name;
    EXPECT_EQ(static_cast<int>(App.TrueLeaks.size()),
              Spec.SingletonLeaks * std::max(1, Spec.SingletonFanout))
        << Spec.Name;
    EXPECT_NE(App.ActivityBase, InvalidId);
  }
}

TEST(IntegrationTest, SmallBenchmarkEndToEnd) {
  // DroidLife (pure true leaks) end to end: every alarm witnessed, none
  // refuted, and the ground truth matches.
  AppSpec Spec;
  Spec.Name = "DroidLife";
  Spec.Activities = 3;
  Spec.SingletonLeaks = 3;
  BenchmarkApp App = buildBenchmarkApp(Spec);
  auto PTA = PointsToAnalysis(*App.Prog, {}).run();
  LeakChecker LC(*App.Prog, *PTA, App.ActivityBase);
  LeakReport R = LC.run();
  EXPECT_EQ(R.NumAlarms, 3u);
  EXPECT_EQ(R.RefutedAlarms, 0u);
  EXPECT_EQ(R.countTrue(*App.Prog, PTA->Locs, App.TrueLeaks), 3u);
}

// Refutation soundness (Theorem 1): for random harness schedules, any
// (base-site, field, target-site) heap write the interpreter performs at
// statement s must not have been refuted by a witness search started at s.
TEST(IntegrationTest, RefutationSoundnessProperty) {
  const char *Apps[] = {testprogs::figure1App(), testprogs::figure5App(),
                        testprogs::latentFlagApp()};
  std::mt19937 Rng(2024);
  for (const char *AppSrc : Apps) {
    Pipeline P = pipeline(AppSrc);
    WitnessSearch WS(*P.Prog, *P.PTA);
    // Gather concrete write events over several schedules.
    std::vector<WriteEvent> AllWrites;
    for (int Trial = 0; Trial < 8; ++Trial) {
      InterpOptions O;
      O.HavocProvider = [&]() { return static_cast<int64_t>(Rng() % 2); };
      Interpreter I(*P.Prog, O);
      InterpResult R = I.run();
      ASSERT_TRUE(R.Completed) << R.Error;
      for (const WriteEvent &E : R.Writes)
        AllWrites.push_back(E);
    }
    // For every concrete event with a heap target, the corresponding edge
    // must not be refutable.
    for (const WriteEvent &E : AllWrites) {
      if (E.TargetSite == InvalidId)
        continue; // Null/int store: no points-to edge.
      if (E.IsStatic) {
        for (AbsLocId T : P.PTA->locsOfSite(E.TargetSite)) {
          if (!P.PTA->ptGlobal(E.Global).contains(T))
            continue;
          EdgeSearchResult R = WS.searchGlobalEdge(E.Global, T);
          // At least one location variant of the site must be witnessable.
          if (R.Outcome != SearchOutcome::Refuted)
            goto nextEvent;
        }
        ADD_FAILURE() << "concrete static write refuted: "
                      << P.Prog->globalName(E.Global) << " <- site "
                      << P.Prog->allocLabel(E.TargetSite);
      } else {
        for (AbsLocId B : P.PTA->locsOfSite(E.BaseSite)) {
          for (AbsLocId T : P.PTA->locsOfSite(E.TargetSite)) {
            if (!P.PTA->ptField(B, E.Field).contains(T))
              continue;
            EdgeSearchResult R = WS.searchFieldEdge(B, E.Field, T);
            if (R.Outcome != SearchOutcome::Refuted)
              goto nextEvent;
          }
        }
        ADD_FAILURE() << "concrete field write refuted: site "
                      << P.Prog->allocLabel(E.BaseSite) << "."
                      << P.Prog->fieldName(E.Field) << " <- site "
                      << P.Prog->allocLabel(E.TargetSite);
      }
    nextEvent:;
    }
  }
}
