//===- TestPrograms.h - Shared mini-Java fixtures for tests ----*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef THRESHER_TESTS_TESTPROGRAMS_H
#define THRESHER_TESTS_TESTPROGRAMS_H

namespace thresher {
namespace testprogs {

/// The running example of the paper (Fig. 1): Act objects pushed into a
/// per-activity Vec, strings pushed into a static Vec; the shared EMPTY
/// array makes the flow-insensitive analysis report a false leak. Uses the
/// library Vec from AndroidModel.h (compile with compileAndroidApp).
inline const char *figure1App() {
  return R"MJ(
class Act extends Activity {
  static var objs = new Vec() @vec0;
  onCreate() {
    var acts = new Vec() @vec1;
    acts.push(this);
    var o = Act.objs;
    o.push("hello");
  }
}
fun main() {
  var a = new Act() @act0;
  a.onCreate();
}
)MJ";
}

/// The K9Mail singleton leak (Fig. 5): getInstance retains the creating
/// Activity through the CursorAdapter chain.
inline const char *figure5App() {
  return R"MJ(
class EmailAddressAdapter extends ResourceCursorAdapter {
  static var sInstance;
  EmailAddressAdapter(context) { super(context); }
  static getInstance(context) {
    if (EmailAddressAdapter.sInstance == null) {
      EmailAddressAdapter.sInstance =
          new EmailAddressAdapter(context) @adr0;
    }
    return EmailAddressAdapter.sInstance;
  }
}
class MailAct extends Activity {
  onCreate() {
    EmailAddressAdapter.getInstance(this);
  }
}
fun main() {
  var a = new MailAct() @act0;
  if (*) { a.onCreate(); }
  if (*) { a.onDestroy(); }
}
)MJ";
}

/// StandupTimer's latent leak: the cache store is guarded by a flag that
/// is never enabled, so the alarm is refutable — but flipping the flag
/// would make it real.
inline const char *latentFlagApp() {
  return R"MJ(
class DAO {
  static var cachedInstance;
  static var cacheDAOInstances = 0;
  static cache(obj) {
    if (DAO.cacheDAOInstances != 0) {
      DAO.cachedInstance = obj;
    }
  }
}
class TimerAct extends Activity {
  onCreate() {
    DAO.cache(this);
  }
}
fun main() {
  var a = new TimerAct() @act0;
  if (*) { a.onCreate(); }
}
)MJ";
}

} // namespace testprogs
} // namespace thresher

#endif // THRESHER_TESTS_TESTPROGRAMS_H
