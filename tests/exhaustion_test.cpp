//===- exhaustion_test.cpp - Resource governor + sound degradation --------===//
//
// Unit tests for the ResourceGovernor (charge/release accounting, the
// deterministic step-denominated deadlines, cooperative cancellation) plus
// the soundness-under-exhaustion property the whole robustness layer
// exists to guarantee: shrinking any budget may flip Refuted -> Timeout
// but can never mint a refutation (Witnessed/Timeout -> Refuted), and the
// count of surviving alarms is monotone in the budget. Also pins that
// exhausted verdicts are never persisted to the refutation cache.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "cache/RefutationCache.h"
#include "leak/LeakChecker.h"
#include "support/Budget.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>

using namespace thresher;

namespace {

/// Compiles one of the TestPrograms fixtures and runs the full pipeline
/// front half (frontend + points-to), shared by every budgeted run.
struct Pipeline {
  std::unique_ptr<CompileResult> CR;
  std::unique_ptr<PointsToResult> PTA;
  ClassId Act = InvalidId;

  explicit Pipeline(const char *Source) {
    CR = std::make_unique<CompileResult>(compileAndroidApp(Source));
    EXPECT_TRUE(CR->ok());
    PTA = PointsToAnalysis(*CR->Prog).run();
    Act = activityBaseClass(*CR->Prog);
  }
};

std::map<std::string, SearchOutcome> verdictsByLabel(const LeakReport &R) {
  std::map<std::string, SearchOutcome> Out;
  for (const EdgeVerdict &V : R.Edges)
    Out[V.Label] = V.Outcome;
  return Out;
}

std::string freshDir(const std::string &Name) {
  auto Dir = std::filesystem::temp_directory_path() /
             ("thresher_exhaustion_test_" + Name);
  std::filesystem::remove_all(Dir);
  return Dir.string();
}

} // namespace

//===----------------------------------------------------------------------===//
// Governor unit tests.
//===----------------------------------------------------------------------===//

TEST(GovernorTest, ReasonNames) {
  EXPECT_STREQ(exhaustionReasonName(ExhaustionReason::None), "none");
  EXPECT_STREQ(exhaustionReasonName(ExhaustionReason::Steps), "steps");
  EXPECT_STREQ(exhaustionReasonName(ExhaustionReason::Deadline), "deadline");
  EXPECT_STREQ(exhaustionReasonName(ExhaustionReason::Memory), "memory");
  EXPECT_STREQ(exhaustionReasonName(ExhaustionReason::Cancelled),
               "cancelled");
}

TEST(GovernorTest, ChargeReleaseBalancesAndTracksPeak) {
  GovernorConfig C;
  C.MemCeilingBytes = 200;
  ResourceGovernor G(C);
  EXPECT_TRUE(G.charge(100));
  EXPECT_TRUE(G.charge(50));
  EXPECT_EQ(G.memInUse(), 150u);
  EXPECT_EQ(G.memPeak(), 150u);
  EXPECT_FALSE(G.memExceeded());
  G.release(100);
  EXPECT_EQ(G.memInUse(), 50u);
  EXPECT_EQ(G.memPeak(), 150u); // Peak survives release.
  // Crossing the ceiling fails the charge but still records it, so the
  // caller's release keeps the account balanced.
  EXPECT_FALSE(G.charge(300));
  EXPECT_TRUE(G.memExceeded());
  EXPECT_EQ(G.memInUse(), 350u);
  G.release(300);
  G.release(50);
  EXPECT_EQ(G.memInUse(), 0u);
  EXPECT_FALSE(G.memExceeded());
}

TEST(GovernorTest, UnlimitedCeilingNeverFailsCharges) {
  ResourceGovernor G; // MemCeilingBytes == 0.
  EXPECT_TRUE(G.charge(1ull << 40));
  EXPECT_FALSE(G.memExceeded());
}

TEST(GovernorTest, DeterministicEdgeDeadlineFiresAtExactStep) {
  GovernorConfig C;
  C.Deterministic = true;
  C.StepsPerMs = 10;
  C.EdgeTimeoutMs = 2; // StepLimit = 20 steps.
  ResourceGovernor G(C);
  ResourceGovernor::EdgeScope Scope(G);
  for (int I = 0; I < 20; ++I)
    EXPECT_EQ(Scope.noteStepAndCheck(), ExhaustionReason::None) << I;
  EXPECT_EQ(Scope.noteStepAndCheck(), ExhaustionReason::Deadline);
  EXPECT_EQ(G.DeadlineHits.load(), 1u);
  // A second scope against the same governor starts a fresh step count.
  ResourceGovernor::EdgeScope Fresh(G);
  EXPECT_EQ(Fresh.noteStepAndCheck(), ExhaustionReason::None);
}

TEST(GovernorTest, DefaultScopeIsUnlimited) {
  ResourceGovernor::EdgeScope Scope; // No governor attached.
  for (int I = 0; I < 1000; ++I)
    ASSERT_EQ(Scope.noteStepAndCheck(), ExhaustionReason::None);
}

TEST(GovernorTest, CancellationPreemptsOtherLimits) {
  GovernorConfig C;
  C.StepsPerMs = 1;
  C.EdgeTimeoutMs = 1; // StepLimit = 1, crossed immediately below.
  ResourceGovernor G(C);
  ResourceGovernor::EdgeScope Scope(G);
  EXPECT_EQ(Scope.noteStepAndCheck(), ExhaustionReason::None);
  G.cancelRun();
  // Both the cancel flag and the edge deadline are now crossed; the
  // deterministic check order reports Cancelled.
  EXPECT_EQ(Scope.noteStepAndCheck(), ExhaustionReason::Cancelled);
  EXPECT_GE(G.CancelHits.load(), 1u);
  EXPECT_TRUE(G.runCancelled());
  EXPECT_TRUE(G.runExhausted());
}

TEST(GovernorTest, MemoryCeilingSurfacesThroughEdgeScope) {
  GovernorConfig C;
  C.MemCeilingBytes = 100;
  ResourceGovernor G(C);
  ResourceGovernor::EdgeScope Scope(G);
  EXPECT_EQ(Scope.noteStepAndCheck(), ExhaustionReason::None);
  EXPECT_FALSE(G.charge(150));
  EXPECT_EQ(Scope.noteStepAndCheck(), ExhaustionReason::Memory);
  G.release(150);
  EXPECT_EQ(Scope.noteStepAndCheck(), ExhaustionReason::None);
}

TEST(GovernorTest, DeterministicRunDeadlineCountsConsultedSteps) {
  GovernorConfig C;
  C.Deterministic = true;
  C.StepsPerMs = 100;
  C.RunTimeoutMs = 1; // Run budget: 100 consulted steps.
  ResourceGovernor G(C);
  G.beginRun();
  G.noteConsultedSteps(99);
  EXPECT_FALSE(G.runExhausted());
  G.noteConsultedSteps(1);
  EXPECT_TRUE(G.runExhausted());
  EXPECT_EQ(G.DeadlineHits.load(), 1u);
  // Firing latches the cancel token so siblings stop cooperatively.
  EXPECT_TRUE(G.runCancelled());
}

//===----------------------------------------------------------------------===//
// Soundness-under-exhaustion properties over the shared fixtures.
//===----------------------------------------------------------------------===//

namespace {

const char *fixtureSources[] = {testprogs::figure1App(),
                                testprogs::figure5App(),
                                testprogs::latentFlagApp()};

} // namespace

TEST(ExhaustionPropertyTest, ShrinkingBudgetNeverMintsRefutations) {
  for (const char *Source : fixtureSources) {
    Pipeline P(Source);
    ASSERT_NE(P.Act, InvalidId);

    const uint64_t Budgets[] = {10000, 500, 50, 5, 1};
    std::map<std::string, SearchOutcome> Prev;
    uint32_t PrevSurviving = 0;
    uint32_t PrevAlarms = 0;
    bool HavePrev = false;
    for (uint64_t Budget : Budgets) {
      SymOptions SO;
      SO.EdgeBudget = Budget;
      LeakChecker LC(*P.CR->Prog, *P.PTA, P.Act, SO);
      LeakReport R = LC.run();
      SCOPED_TRACE("budget " + std::to_string(Budget));

      // Alarm inventory comes from the points-to phase, not the budget.
      if (HavePrev) {
        EXPECT_EQ(R.NumAlarms, PrevAlarms);
      }
      auto Cur = verdictsByLabel(R);
      for (const EdgeVerdict &V : R.Edges) {
        // Exhausted searches always carry a structured reason; finished
        // searches never do.
        if (V.Outcome == SearchOutcome::BudgetExhausted)
          EXPECT_NE(V.Reason, ExhaustionReason::None) << V.Label;
        else
          EXPECT_EQ(V.Reason, ExhaustionReason::None) << V.Label;
      }
      uint32_t Surviving = R.NumAlarms - R.RefutedAlarms;
      if (HavePrev) {
        // A smaller budget may only LOSE refutations: any edge refuted
        // under the smaller budget must have been refuted under the
        // larger one too (no Witnessed/Timeout -> Refuted flips).
        for (const auto &[Label, Outcome] : Cur) {
          auto It = Prev.find(Label);
          if (It == Prev.end())
            continue;
          if (Outcome == SearchOutcome::Refuted) {
            EXPECT_EQ(It->second, SearchOutcome::Refuted) << Label;
          }
          if (It->second == SearchOutcome::Witnessed) {
            EXPECT_NE(Outcome, SearchOutcome::Refuted) << Label;
          }
        }
        // Surviving alarms are monotone nonincreasing in the budget.
        EXPECT_GE(Surviving, PrevSurviving);
      }
      Prev = std::move(Cur);
      PrevSurviving = Surviving;
      PrevAlarms = R.NumAlarms;
      HavePrev = true;
    }
  }
}

TEST(ExhaustionPropertyTest, StarvedSearchReportsStepsReason) {
  Pipeline P(testprogs::figure1App());
  SymOptions SO;
  SO.EdgeBudget = 1;
  LeakChecker LC(*P.CR->Prog, *P.PTA, P.Act, SO);
  LeakReport R = LC.run();
  ASSERT_GT(R.TimeoutEdges, 0u);
  for (const EdgeVerdict &V : R.Edges) {
    if (V.Outcome == SearchOutcome::BudgetExhausted) {
      EXPECT_EQ(V.Reason, ExhaustionReason::Steps) << V.Label;
    }
  }
  // The reason surfaces in the deterministic report form.
  ReportJsonOptions JO;
  JO.DeterministicOnly = true;
  std::string Json = LC.buildJsonReport(R, JO).toString(2);
  EXPECT_NE(Json.find("\"reason\": \"steps\""), std::string::npos);
}

TEST(ExhaustionPropertyTest, GovernorEdgeDeadlineDegradesSoundly) {
  Pipeline P(testprogs::figure1App());

  // Unlimited baseline.
  LeakChecker Base(*P.CR->Prog, *P.PTA, P.Act);
  LeakReport BaseR = Base.run();
  auto BaseV = verdictsByLabel(BaseR);

  GovernorConfig C;
  C.Deterministic = true;
  C.StepsPerMs = 1;
  C.EdgeTimeoutMs = 3; // 3 steps per edge: starves every real search.
  ResourceGovernor G(C);
  G.beginRun();
  LeakChecker LC(*P.CR->Prog, *P.PTA, P.Act);
  LC.setGovernor(&G);
  LeakReport R = LC.run();

  ASSERT_GT(R.TimeoutEdges, 0u);
  EXPECT_GT(G.DeadlineHits.load(), 0u);
  for (const EdgeVerdict &V : R.Edges) {
    if (V.Outcome == SearchOutcome::BudgetExhausted) {
      EXPECT_EQ(V.Reason, ExhaustionReason::Deadline) << V.Label;
    }
    // No refutation the unlimited run would not also make.
    if (V.Outcome == SearchOutcome::Refuted) {
      EXPECT_EQ(BaseV[V.Label], SearchOutcome::Refuted) << V.Label;
    }
  }
  EXPECT_GE(R.NumAlarms - R.RefutedAlarms,
            BaseR.NumAlarms - BaseR.RefutedAlarms);
  // The deadline hits and the per-edge reasons land in the stats/report.
  EXPECT_EQ(LC.stats().get("robust.deadlineHits"), G.DeadlineHits.load());
  // Edges abandoned mid-search still release every retained-state charge.
  EXPECT_GT(G.memPeak(), 0u);
  EXPECT_EQ(G.memInUse(), 0u);
}

TEST(ExhaustionPropertyTest, CancelledEdgeReturnsAccountantToZero) {
  // Charge/release pairing on the cancellation path: when the run deadline
  // latches the cancel token, every later edge is abandoned at its first
  // step with its initial query states still charged to the accountant.
  // Those charges must be released when the abandoned search unwinds, for
  // any intra-edge thread count (speculative buffers never charge live).
  Pipeline P(testprogs::figure1App());
  for (unsigned SearchThreads : {1u, 4u}) {
    SCOPED_TRACE("searchThreads " + std::to_string(SearchThreads));
    GovernorConfig C;
    C.Deterministic = true;
    C.StepsPerMs = 1;
    C.RunTimeoutMs = 1; // One consulted step: cancels after edge #1.
    ResourceGovernor G(C);
    G.beginRun();
    SymOptions SO;
    SO.SearchThreads = SearchThreads;
    LeakChecker LC(*P.CR->Prog, *P.PTA, P.Act, SO);
    LC.setGovernor(&G);
    LeakReport R = LC.run();
    EXPECT_TRUE(G.runCancelled());
    bool SawCancelled = false;
    for (const EdgeVerdict &V : R.Edges)
      SawCancelled |= V.Reason == ExhaustionReason::Cancelled;
    EXPECT_TRUE(SawCancelled);
    // Charges really happened (peak survives release)...
    EXPECT_GT(G.memPeak(), 0u);
    // ...and every one of them was paired with a release.
    EXPECT_EQ(G.memInUse(), 0u);
  }
}

TEST(ExhaustionPropertyTest, RunDeadlineIsThreadCountInvariant) {
  Pipeline P(testprogs::figure1App());

  auto RunAt = [&](unsigned Threads) {
    GovernorConfig C;
    C.Deterministic = true;
    C.StepsPerMs = 1;
    C.RunTimeoutMs = 1; // One consulted step: cuts off after edge #1.
    ResourceGovernor G(C);
    LeakChecker LC(*P.CR->Prog, *P.PTA, P.Act);
    LC.setGovernor(&G);
    LeakReport R = LC.run(Threads);
    ReportJsonOptions JO;
    JO.DeterministicOnly = true;
    return LC.buildJsonReport(R, JO).toString(2);
  };

  std::string One = RunAt(1);
  EXPECT_EQ(One, RunAt(2));
  EXPECT_EQ(One, RunAt(4));
  // The cut-off edges degrade to cancelled timeouts, visibly.
  EXPECT_NE(One.find("\"reason\": \"cancelled\""), std::string::npos);
}

TEST(ExhaustionPropertyTest, ExhaustedVerdictsNeverCached) {
  Pipeline P(testprogs::figure1App());
  std::string Dir = freshDir("never_cache_timeout");
  uint64_t Config = RefutationCache::configHash(SymOptions{}, false);

  uint64_t TimeoutEdges = 0;
  {
    // Cold run under a starvation deadline: everything times out.
    RefutationCache Cache(Dir);
    ASSERT_TRUE(Cache.load());
    Cache.validate(*P.CR->Prog, *P.PTA, Config);
    GovernorConfig C;
    C.Deterministic = true;
    C.StepsPerMs = 1;
    C.EdgeTimeoutMs = 3;
    ResourceGovernor G(C);
    LeakChecker LC(*P.CR->Prog, *P.PTA, P.Act);
    LC.setGovernor(&G);
    LC.setCache(&Cache, Config);
    LeakReport R = LC.run();
    TimeoutEdges = R.TimeoutEdges;
    ASSERT_GT(TimeoutEdges, 0u);
    EXPECT_EQ(LC.stats().get("robust.timeoutNotCached"), TimeoutEdges);
    ASSERT_TRUE(Cache.save());
  }
  {
    // Warm unlimited run: the timeouts were never persisted, so every
    // previously exhausted edge is searched for real and the cache
    // reports no hits for them.
    RefutationCache Cache(Dir);
    ASSERT_TRUE(Cache.load());
    Cache.validate(*P.CR->Prog, *P.PTA, Config);
    LeakChecker LC(*P.CR->Prog, *P.PTA, P.Act);
    LC.setCache(&Cache, Config);
    LeakReport R = LC.run();
    EXPECT_EQ(R.TimeoutEdges, 0u);
    EXPECT_GE(LC.stats().get("leak.searches"), TimeoutEdges);
    EXPECT_EQ(LC.stats().get("robust.staleTimeoutHits"), 0u);
  }
  std::filesystem::remove_all(Dir);
}
