//===- subsume_registry_test.cpp - Cross-edge subsumption registry --------===//
//
// Unit and property tests for the global subsumption registry
// (sym/Subsume.h): exact-key and weaker-than lookup semantics, shard
// distribution, thread-safety under a concurrent publish/probe hammer
// (meaningful under TSan), and the soundness property the whole design
// rests on: every registry hit must be reproducible by re-running the
// pruned query stand-alone with the registry disabled and obtaining a
// refutation. A hit that a stand-alone search cannot reproduce would mean
// the registry invented a refutation, which is exactly the bug class the
// cross-edge design must exclude.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "sym/Subsume.h"
#include "sym/WitnessSearch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

using namespace thresher;

#ifndef THRESHER_CORPUS_DIR
#error "THRESHER_CORPUS_DIR must be defined by the build"
#endif

namespace {

/// A minimal query anchored at a dummy frame, one local bound to a fresh
/// symbolic variable over \p Locs.
Query mkQuery(IdSet Locs, uint32_t Local = 0) {
  Query Q;
  QueryFrame F;
  F.Func = 0;
  Q.Frames.push_back(F);
  Q.Pos = {0, 0, 0};
  SymVarId S = Q.freshSym(Region::ofLocs(std::move(Locs)));
  Q.setLocal(0, Local, ValRef::mkSym(S));
  return Q;
}

SubsumeEntry mkEntry(const Query &Q) {
  SubsumeEntry E;
  E.Slot = Q.historySlot();
  E.CanonKey = Q.canonicalKey();
  E.Q = Q;
  return E;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lookup semantics
//===----------------------------------------------------------------------===//

TEST(SubsumeRegistryTest, ExactKeyHit) {
  SubsumeRegistry Reg;
  Query Q = mkQuery(IdSet{1, 2});
  EXPECT_FALSE(
      Reg.probe(Q, Q.historySlot(), Q.canonicalKey(), Representation::Mixed));
  EXPECT_TRUE(Reg.publish(mkEntry(Q)));
  EXPECT_TRUE(
      Reg.probe(Q, Q.historySlot(), Q.canonicalKey(), Representation::Mixed));
  EXPECT_EQ(Reg.size(), 1u);
}

TEST(SubsumeRegistryTest, DuplicateKeyNotReinserted) {
  SubsumeRegistry Reg;
  Query Q = mkQuery(IdSet{1, 2});
  EXPECT_TRUE(Reg.publish(mkEntry(Q)));
  EXPECT_FALSE(Reg.publish(mkEntry(Q)));
  EXPECT_EQ(Reg.size(), 1u);
}

TEST(SubsumeRegistryTest, WeakerEntrySubsumesStrongerProbe) {
  // Refuting the weaker query (wider region, fewer pure constraints)
  // refutes every stronger one, so registering it must prune them.
  SubsumeRegistry Reg;
  Query Weak = mkQuery(IdSet{1, 2, 3});
  ASSERT_TRUE(Reg.publish(mkEntry(Weak)));

  Query Strong = mkQuery(IdSet{1, 2}); // Narrower region, same shape.
  ASSERT_EQ(Strong.historySlot(), Weak.historySlot());
  ASSERT_NE(Strong.canonicalKey(), Weak.canonicalKey());
  EXPECT_TRUE(Reg.probe(Strong, Strong.historySlot(), Strong.canonicalKey(),
                        Representation::Mixed));

  // The fully symbolic representation cannot check region inclusion, so
  // the same probe must miss there (equality is required).
  EXPECT_FALSE(Reg.probe(Strong, Strong.historySlot(), Strong.canonicalKey(),
                         Representation::FullySymbolic));
}

TEST(SubsumeRegistryTest, StrongerEntryDoesNotSubsumeWeakerProbe) {
  // The converse direction would be unsound: refuting a narrow query says
  // nothing about a wider one.
  SubsumeRegistry Reg;
  Query Strong = mkQuery(IdSet{1});
  ASSERT_TRUE(Reg.publish(mkEntry(Strong)));
  Query Weak = mkQuery(IdSet{1, 2});
  EXPECT_FALSE(Reg.probe(Weak, Weak.historySlot(), Weak.canonicalKey(),
                         Representation::Mixed));
}

TEST(SubsumeRegistryTest, DifferentShapeMisses) {
  SubsumeRegistry Reg;
  Query Q = mkQuery(IdSet{1, 2});
  ASSERT_TRUE(Reg.publish(mkEntry(Q)));
  Query Other = mkQuery(IdSet{1, 2}, /*Local=*/7); // Different local slot.
  EXPECT_FALSE(Reg.probe(Other, Other.historySlot(), Other.canonicalKey(),
                         Representation::Mixed));
}

TEST(SubsumeRegistryTest, HitObserverSeesEntryAndProbe) {
  SubsumeRegistry Reg;
  Query Weak = mkQuery(IdSet{1, 2, 3});
  ASSERT_TRUE(Reg.publish(mkEntry(Weak)));
  std::vector<std::pair<std::string, std::string>> Hits;
  Reg.setHitObserver([&](const SubsumeEntry &E, const Query &Probe) {
    Hits.emplace_back(E.CanonKey, Probe.canonicalKey());
  });
  Query Strong = mkQuery(IdSet{1});
  ASSERT_TRUE(Reg.probe(Strong, Strong.historySlot(), Strong.canonicalKey(),
                        Representation::Mixed));
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].first, Weak.canonicalKey());
  EXPECT_EQ(Hits[0].second, Strong.canonicalKey());
}

//===----------------------------------------------------------------------===//
// Sharding
//===----------------------------------------------------------------------===//

TEST(SubsumeRegistryTest, ShardDistribution) {
  // ~64 distinct slots must spread over multiple shards and the shard
  // sizes must account for every entry (no slot lost, none double-held).
  SubsumeRegistry Reg;
  Query Q = mkQuery(IdSet{1});
  for (int I = 0; I < 64; ++I) {
    SubsumeEntry E = mkEntry(Q);
    E.Slot = "slot-" + std::to_string(I);
    ASSERT_TRUE(Reg.publish(std::move(E)));
  }
  EXPECT_EQ(Reg.size(), 64u);
  auto Sizes = Reg.shardSizes();
  size_t Sum = 0, NonEmpty = 0;
  for (size_t N : Sizes) {
    Sum += N;
    NonEmpty += N > 0 ? 1 : 0;
  }
  EXPECT_EQ(Sum, 64u);
  EXPECT_GT(NonEmpty, 1u) << "all slots hashed to one shard";

  Reg.clear();
  EXPECT_EQ(Reg.size(), 0u);
}

//===----------------------------------------------------------------------===//
// Concurrency (run under TSan in CI)
//===----------------------------------------------------------------------===//

TEST(SubsumeRegistryTest, ConcurrentPublishProbeHammer) {
  SubsumeRegistry Reg;
  constexpr int Threads = 8;
  constexpr int PerThread = 200;
  std::atomic<size_t> Inserted{0};
  std::atomic<size_t> Hits{0};
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T) {
    Pool.emplace_back([&, T] {
      Query Q = mkQuery(IdSet{1, 2});
      for (int I = 0; I < PerThread; ++I) {
        // Half the slots are shared across threads (contended inserts and
        // duplicate suppression), half are private.
        std::string Slot = I % 2 == 0
                               ? "shared-" + std::to_string(I)
                               : "t" + std::to_string(T) + "-" +
                                     std::to_string(I);
        SubsumeEntry E = mkEntry(Q);
        E.Slot = Slot;
        if (Reg.publish(std::move(E)))
          Inserted.fetch_add(1, std::memory_order_relaxed);
        if (Reg.probe(Q, Slot, Q.canonicalKey(), Representation::Mixed))
          Hits.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread &Th : Pool)
    Th.join();
  // Shared slots dedupe to one entry each; private slots all land.
  const size_t SharedSlots = PerThread / 2;
  const size_t PrivateSlots = static_cast<size_t>(Threads) * (PerThread / 2);
  EXPECT_EQ(Inserted.load(), SharedSlots + PrivateSlots);
  EXPECT_EQ(Reg.size(), SharedSlots + PrivateSlots);
  // Every probe follows this thread's own publish of the same slot.
  EXPECT_EQ(Hits.load(), static_cast<size_t>(Threads) * PerThread);
}

//===----------------------------------------------------------------------===//
// Serialization round-trip
//===----------------------------------------------------------------------===//

TEST(SubsumeRegistryTest, JsonRoundTripPreservesProbeBehaviour) {
  std::vector<SubsumeEntry> Entries;
  Entries.push_back(mkEntry(mkQuery(IdSet{1, 2, 3})));
  Entries.push_back(mkEntry(mkQuery(IdSet{4}, /*Local=*/2)));
  std::string Json = subsumeEntriesToJson(Entries);
  std::vector<SubsumeEntry> Back;
  ASSERT_TRUE(subsumeEntriesFromJson(Json, Back));
  ASSERT_EQ(Back.size(), Entries.size());
  SubsumeRegistry Reg;
  Reg.publishAll(std::move(Back));
  Query Strong = mkQuery(IdSet{1});
  EXPECT_TRUE(Reg.probe(Strong, Strong.historySlot(), Strong.canonicalKey(),
                        Representation::Mixed));
}

TEST(SubsumeRegistryTest, MalformedJsonRejected) {
  std::vector<SubsumeEntry> Out;
  EXPECT_FALSE(subsumeEntriesFromJson("not json", Out));
  EXPECT_FALSE(subsumeEntriesFromJson("{\"s\":1}", Out));
  EXPECT_FALSE(subsumeEntriesFromJson("[{\"s\":\"x\"}]", Out));
  EXPECT_TRUE(subsumeEntriesFromJson("[]", Out));
  EXPECT_TRUE(Out.empty());
}

//===----------------------------------------------------------------------===//
// Reproducibility property (the registry's soundness contract)
//===----------------------------------------------------------------------===//

namespace {

struct CorpusProgram {
  std::string Path;
  bool Android = false;
};

std::vector<CorpusProgram> allPrograms() {
  std::vector<CorpusProgram> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(THRESHER_CORPUS_DIR)) {
    if (Entry.path().extension() != ".mj")
      continue;
    CorpusProgram CP;
    CP.Path = Entry.path().string();
    std::ifstream In(CP.Path);
    std::string Line;
    while (std::getline(In, Line))
      if (Line.rfind("// ANDROID", 0) == 0)
        CP.Android = true;
    Out.push_back(CP);
  }
  std::sort(Out.begin(), Out.end(),
            [](const CorpusProgram &A, const CorpusProgram &B) {
              return A.Path < B.Path;
            });
  return Out;
}

} // namespace

TEST(SubsumeRegistryTest, EveryHitReproducibleStandalone) {
  // Drive the engine (owned-registry mode) over every points-to edge of
  // every corpus program with an observer recording each registry hit's
  // probing query. Then re-run every pruned query stand-alone with the
  // registry off: each must refute on its own. At least one hit must
  // occur across the corpus, else the property is vacuous and the
  // registry integration has regressed.
  size_t TotalHits = 0;
  for (const CorpusProgram &CP : allPrograms()) {
    SCOPED_TRACE(CP.Path);
    std::ifstream In(CP.Path);
    std::stringstream SS;
    SS << In.rdbuf();
    CompileResult CR =
        CP.Android ? compileAndroidApp(SS.str()) : compileMJ(SS.str());
    ASSERT_TRUE(CR.ok()) << (CR.Errors.empty() ? "?" : CR.Errors[0]);
    const Program &P = *CR.Prog;
    auto PTA = PointsToAnalysis(P).run();

    WitnessSearch WS(P, *PTA);
    ASSERT_NE(WS.registry(), nullptr);
    std::vector<Query> Pruned;
    WS.registry()->setHitObserver(
        [&](const SubsumeEntry &, const Query &Probe) {
          Pruned.push_back(Probe);
        });

    for (GlobalId G = 0; G < P.Globals.size(); ++G)
      for (AbsLocId L : PTA->ptGlobal(G))
        WS.searchGlobalEdge(G, L);
    for (AbsLocId L = 0; L < PTA->Locs.size(); ++L)
      for (auto [Fld, T] : PTA->fieldEdges(L))
        WS.searchFieldEdge(L, Fld, T);

    TotalHits += Pruned.size();
    SymOptions NoReg;
    NoReg.GlobalSubsume = false;
    for (const Query &Q : Pruned) {
      WitnessSearch Solo(P, *PTA, NoReg);
      uint64_t Budget = 1u << 22;
      EdgeSearchResult R = Solo.searchFrom(Q, Budget);
      EXPECT_EQ(R.Outcome, SearchOutcome::Refuted)
          << "registry pruned a query a stand-alone search cannot refute";
    }
  }
  EXPECT_GT(TotalHits, 0u)
      << "registry never fired on the corpus; the property is vacuous";
}
