//===- fault_test.cpp - Deterministic fault-injection sweep ---------------===//
//
// Exercises the FaultInject registry itself (counted triggers, spec
// parsing) and then sweeps every in-process injection site over the
// pipeline, asserting the robustness contract: a fault never crashes the
// run, never mints a refutation the clean run would not make, and never
// leaves a torn cache store behind. The cache.write mid-write fault is
// additionally pinned as a durability regression test: the old store must
// survive byte-identical and stay loadable.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "cache/RefutationCache.h"
#include "leak/LeakChecker.h"
#include "support/Budget.h"
#include "support/FaultInject.h"

#include "TestPrograms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

using namespace thresher;

namespace {

std::string freshDir(const std::string &Name) {
  auto Dir = std::filesystem::temp_directory_path() /
             ("thresher_fault_test_" + Name);
  std::filesystem::remove_all(Dir);
  return Dir.string();
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Every test disarms the global registry on entry and exit, so a failed
/// assertion in one case cannot leak an armed fault into the next.
class FaultTest : public ::testing::Test {
protected:
  void SetUp() override { FaultInject::reset(); }
  void TearDown() override { FaultInject::reset(); }
};

/// Shared pipeline front half for the sweep.
struct Pipeline {
  std::unique_ptr<CompileResult> CR;
  std::unique_ptr<PointsToResult> PTA;
  ClassId Act = InvalidId;

  Pipeline() {
    CR = std::make_unique<CompileResult>(
        compileAndroidApp(testprogs::figure1App()));
    EXPECT_TRUE(CR->ok());
    PTA = PointsToAnalysis(*CR->Prog).run();
    Act = activityBaseClass(*CR->Prog);
  }
};

struct RunResult {
  LeakReport Report;
  std::string Json;
  bool CacheLoaded = false;
  bool CacheSaved = false;
  uint64_t Recovered = 0;
};

/// One cached, governed checker run against the store in \p Dir. Faults
/// armed by the caller fire wherever their sites are probed.
RunResult governedRun(const Pipeline &P, const std::string &Dir) {
  RunResult Out;
  RefutationCache Cache(Dir);
  Out.CacheLoaded = Cache.load();
  uint64_t Config = RefutationCache::configHash(SymOptions{}, false);
  Cache.validate(*P.CR->Prog, *P.PTA, Config);
  // An (unlimited) governor is attached so the governed code paths — and
  // the fault probes on them — are live.
  ResourceGovernor Gov;
  LeakChecker LC(*P.CR->Prog, *P.PTA, P.Act);
  LC.setGovernor(&Gov);
  LC.setCache(&Cache, Config);
  Out.Report = LC.run();
  Out.Json = LC.buildJsonReport(Out.Report).toString(2);
  Out.CacheSaved = Cache.save();
  Out.Recovered = Cache.recoveredStores();
  return Out;
}

std::map<std::string, SearchOutcome> verdictsByLabel(const LeakReport &R) {
  std::map<std::string, SearchOutcome> Out;
  for (const EdgeVerdict &V : R.Edges)
    Out[V.Label] = V.Outcome;
  return Out;
}

bool dirHasTempFiles(const std::string &Dir) {
  if (!std::filesystem::exists(Dir))
    return false;
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    if (E.path().extension() == ".tmp")
      return true;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry semantics.
//===----------------------------------------------------------------------===//

TEST_F(FaultTest, CountedTriggerFiresOnNthHitExactlyOnce) {
  FaultInject::arm("test.site", 3);
  EXPECT_FALSE(FaultInject::shouldFail("test.site"));
  EXPECT_FALSE(FaultInject::shouldFail("test.site"));
  EXPECT_TRUE(FaultInject::shouldFail("test.site"));
  EXPECT_FALSE(FaultInject::shouldFail("test.site")); // Once per arming.
  EXPECT_EQ(FaultInject::firedCount(), 1u);
  // Re-arming resets the hit count.
  FaultInject::arm("test.site", 1);
  EXPECT_TRUE(FaultInject::shouldFail("test.site"));
  EXPECT_EQ(FaultInject::firedCount(), 2u);
}

TEST_F(FaultTest, UnarmedSitesNeverFire) {
  for (const std::string &Site : faultSiteCatalogue())
    EXPECT_FALSE(FaultInject::shouldFail(Site.c_str())) << Site;
  EXPECT_EQ(FaultInject::firedCount(), 0u);
}

TEST_F(FaultTest, SpecParsing) {
  std::string Err;
  EXPECT_TRUE(FaultInject::armFromSpec("search.step:2,cache.read:1", &Err))
      << Err;
  EXPECT_FALSE(FaultInject::shouldFail(faultsite::SearchStep));
  EXPECT_TRUE(FaultInject::shouldFail(faultsite::SearchStep));
  EXPECT_TRUE(FaultInject::shouldFail(faultsite::CacheRead));

  // A bare site name defaults to firing on the first hit.
  EXPECT_TRUE(FaultInject::armFromSpec("bare.site", &Err));
  EXPECT_TRUE(FaultInject::shouldFail("bare.site"));

  EXPECT_FALSE(FaultInject::armFromSpec(":5", &Err)); // Empty site.
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(FaultInject::armFromSpec("site:notanumber", &Err));
  EXPECT_FALSE(FaultInject::armFromSpec("site:0", &Err)); // 1-based.
}

TEST_F(FaultTest, CatalogueListsTheWellKnownSites) {
  std::vector<std::string> Sites = faultSiteCatalogue();
  for (const char *S :
       {faultsite::SearchStep, faultsite::CacheRead, faultsite::CacheWrite,
        faultsite::ReportWrite, faultsite::SolverEntry})
    EXPECT_NE(std::find(Sites.begin(), Sites.end(), S), Sites.end()) << S;
}

//===----------------------------------------------------------------------===//
// Pipeline sweep: every site, no crash, no minted refutation, no torn
// cache.
//===----------------------------------------------------------------------===//

TEST_F(FaultTest, SweepAllSitesDegradesSoundly) {
  Pipeline P;
  ASSERT_NE(P.Act, InvalidId);

  // Clean baseline (also seeds the cache store so cache.read has a file
  // to choke on in the faulted warm runs below).
  std::string Dir = freshDir("sweep");
  RunResult Base = governedRun(P, Dir);
  ASSERT_TRUE(Base.CacheLoaded);
  ASSERT_TRUE(Base.CacheSaved);
  auto BaseV = verdictsByLabel(Base.Report);
  std::string CleanStore = slurp(Dir + "/cache.jsonl");
  ASSERT_FALSE(CleanStore.empty());

  for (const std::string &Site : faultSiteCatalogue()) {
    SCOPED_TRACE("fault site " + Site);
    // Restore the clean store so every site starts from the same state.
    std::filesystem::remove_all(Dir);
    std::filesystem::create_directories(Dir);
    std::ofstream(Dir + "/cache.jsonl", std::ios::binary) << CleanStore;

    FaultInject::reset();
    FaultInject::arm(Site, 1);
    RunResult R = governedRun(P, Dir);
    FaultInject::reset();

    // The run completed (no crash) and its report is well-formed JSON.
    JsonValue Back;
    std::string Err;
    EXPECT_TRUE(parseJson(R.Json, Back, &Err)) << Err;

    // Verdicts partition the consulted edges and no faulted path minted
    // a refutation the clean run would not make.
    EXPECT_EQ(R.Report.RefutedEdges + R.Report.WitnessedEdges +
                  R.Report.TimeoutEdges,
              R.Report.Edges.size());
    for (const EdgeVerdict &V : R.Report.Edges) {
      if (V.Outcome == SearchOutcome::Refuted) {
        EXPECT_EQ(BaseV[V.Label], SearchOutcome::Refuted) << V.Label;
      }
    }
    EXPECT_GE(R.Report.NumAlarms - R.Report.RefutedAlarms,
              Base.Report.NumAlarms - Base.Report.RefutedAlarms);

    // Never a torn store: either the old bytes or a complete new store.
    EXPECT_FALSE(dirHasTempFiles(Dir));
    if (!R.CacheSaved) {
      EXPECT_EQ(slurp(Dir + "/cache.jsonl"), CleanStore);
    }
    RefutationCache Reload(Dir);
    EXPECT_TRUE(Reload.load());
  }
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Cache durability regressions.
//===----------------------------------------------------------------------===//

TEST_F(FaultTest, MidWriteFaultLeavesOldStoreIntact) {
  Pipeline P;
  std::string Dir = freshDir("midwrite");

  RunResult Cold = governedRun(P, Dir);
  ASSERT_TRUE(Cold.CacheSaved);
  std::string Before = slurp(Dir + "/cache.jsonl");
  ASSERT_FALSE(Before.empty());

  // The next save dies mid-write: the temp file is discarded and the
  // previous store must survive byte-identical.
  FaultInject::arm(faultsite::CacheWrite, 1);
  RunResult Warm = governedRun(P, Dir);
  EXPECT_TRUE(Warm.CacheLoaded);
  EXPECT_FALSE(Warm.CacheSaved);
  EXPECT_EQ(FaultInject::firedCount(), 1u);
  EXPECT_EQ(slurp(Dir + "/cache.jsonl"), Before);
  EXPECT_FALSE(dirHasTempFiles(Dir));

  // And the surviving store is still fully usable.
  FaultInject::reset();
  RunResult Recovered = governedRun(P, Dir);
  EXPECT_TRUE(Recovered.CacheLoaded);
  EXPECT_TRUE(Recovered.CacheSaved);
  EXPECT_EQ(Recovered.Recovered, 0u);
  std::filesystem::remove_all(Dir);
}

TEST_F(FaultTest, ReadFaultQuarantinesStoreAndRebuilds) {
  Pipeline P;
  std::string Dir = freshDir("readfault");

  RunResult Cold = governedRun(P, Dir);
  ASSERT_TRUE(Cold.CacheSaved);

  // A corrupt read quarantines the store (preserved for post-mortem),
  // counts the recovery, and the run continues cold.
  FaultInject::arm(faultsite::CacheRead, 1);
  RunResult Faulted = governedRun(P, Dir);
  EXPECT_FALSE(Faulted.CacheLoaded);
  EXPECT_EQ(Faulted.Recovered, 1u);
  EXPECT_TRUE(std::filesystem::exists(Dir + "/cache.jsonl.corrupt"));
  // The cold re-run rebuilt a fresh store over the quarantined one.
  EXPECT_TRUE(Faulted.CacheSaved);
  EXPECT_TRUE(std::filesystem::exists(Dir + "/cache.jsonl"));

  FaultInject::reset();
  RunResult Recovered = governedRun(P, Dir);
  EXPECT_TRUE(Recovered.CacheLoaded);
  std::filesystem::remove_all(Dir);
}
