//===- parallel_diff_test.cpp - 1-vs-N thread differential harness --------===//
//
// Runs the leak checker over every corpus program across the full
// {edge-threads} x {intra-edge search-threads} cross-product and requires
// bit-identical observable behaviour: the same alarm verdicts, the same
// per-edge verdicts (label, kind, outcome, steps), and the same
// deterministic-form JSON report, byte for byte. The parallel modes may
// thresh MORE edges (prefetch), but everything the report exposes as
// deterministic must not depend on either thread count.
//
// This is the pin that keeps both parallel extensions honest: any
// scheduling leak into verdicts, exploration order, or serialization shows
// up as a string diff here. A governed variant additionally times runs out
// mid-edge (deterministic step-denominated deadline) and requires the
// degraded verdicts to be just as invariant.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "leak/LeakChecker.h"
#include "support/Budget.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

using namespace thresher;

#ifndef THRESHER_CORPUS_DIR
#error "THRESHER_CORPUS_DIR must be defined by the build"
#endif

namespace {

struct CorpusProgram {
  std::string Path;
  bool Android = false;
};

std::vector<CorpusProgram> allPrograms() {
  std::vector<CorpusProgram> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(THRESHER_CORPUS_DIR)) {
    if (Entry.path().extension() != ".mj")
      continue;
    CorpusProgram CP;
    CP.Path = Entry.path().string();
    std::ifstream In(CP.Path);
    std::string Line;
    while (std::getline(In, Line))
      if (Line.rfind("// ANDROID", 0) == 0)
        CP.Android = true;
    Out.push_back(CP);
  }
  std::sort(Out.begin(), Out.end(),
            [](const CorpusProgram &A, const CorpusProgram &B) {
              return A.Path < B.Path;
            });
  return Out;
}

/// One thread-count run's observable outputs.
struct RunObservation {
  LeakReport Report;
  std::string DeterministicJson;
  /// Deterministic trace fields keyed by edge label (the trace may cover
  /// more edges under prefetch; the consulted subset must agree).
  std::map<std::string, std::tuple<std::string, uint32_t, uint64_t, uint64_t>>
      TraceByEdge;
};

class ParallelDiffTest : public ::testing::TestWithParam<CorpusProgram> {};

} // namespace

TEST_P(ParallelDiffTest, ThreadCountInvariance) {
  const CorpusProgram &CP = GetParam();
  SCOPED_TRACE(CP.Path);
  std::ifstream In(CP.Path);
  std::stringstream SS;
  SS << In.rdbuf();

  CompileResult CR =
      CP.Android ? compileAndroidApp(SS.str()) : compileMJ(SS.str());
  ASSERT_TRUE(CR.ok()) << (CR.Errors.empty() ? "?" : CR.Errors[0]);
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();

  // Android programs check the real Activity sink. Plain programs have no
  // Activity class, but the thread-count invariance must hold regardless
  // of the sink, so pick the class that produces the most alarms (falling
  // back to class 0 — even an alarm-free report must be identical).
  ClassId Act = activityBaseClass(P);
  if (Act == InvalidId) {
    ASSERT_GT(P.Classes.size(), 0u);
    Act = 0;
    uint32_t BestAlarms = 0;
    for (ClassId C = 0; C < P.Classes.size(); ++C) {
      LeakChecker Probe(P, *PTA, C);
      uint32_t N = Probe.run(1).NumAlarms;
      if (N > BestAlarms) {
        BestAlarms = N;
        Act = C;
      }
    }
  }

  // {edge-threads} x {search-threads}: (1,1) is the sequential baseline;
  // edge-threads >1 exercises the inter-edge prefetch pool, search-threads
  // >1 the intra-edge speculation pool, and the mixed entries both at once.
  struct ThreadConfig {
    unsigned EdgeThreads;
    unsigned SearchThreads;
  };
  const ThreadConfig Configs[] = {{1, 1}, {2, 1}, {4, 1}, {1, 2},
                                  {1, 4}, {2, 2}, {2, 4}};
  std::vector<RunObservation> Obs;
  for (const ThreadConfig &TC : Configs) {
    SymOptions SO;
    SO.SearchThreads = TC.SearchThreads;
    LeakChecker LC(P, *PTA, Act, SO);
    RunObservation O;
    O.Report = LC.run(TC.EdgeThreads);
    ReportJsonOptions JO;
    JO.DeterministicOnly = true;
    O.DeterministicJson = LC.buildJsonReport(O.Report, JO).toString(2);
    for (const TraceEvent &Ev : LC.traceEvents())
      O.TraceByEdge.emplace(
          Ev.Edge, std::make_tuple(Ev.Verdict, Ev.ProducersTried, Ev.Steps,
                                   Ev.Budget));
    Obs.push_back(std::move(O));
  }

  const RunObservation &Base = Obs[0];
  EXPECT_EQ(Base.Report.PrefetchedEdges, Base.Report.Edges.size())
      << "sequential run must not thresh edges it never consults";
  for (size_t I = 1; I < Obs.size(); ++I) {
    const RunObservation &O = Obs[I];
    SCOPED_TRACE("edgeThreads=" + std::to_string(Configs[I].EdgeThreads) +
                 " searchThreads=" +
                 std::to_string(Configs[I].SearchThreads));

    // Alarm verdicts.
    ASSERT_EQ(O.Report.Alarms.size(), Base.Report.Alarms.size());
    for (size_t A = 0; A < O.Report.Alarms.size(); ++A) {
      EXPECT_EQ(O.Report.Alarms[A].Source, Base.Report.Alarms[A].Source);
      EXPECT_EQ(O.Report.Alarms[A].Activity, Base.Report.Alarms[A].Activity);
      EXPECT_EQ(O.Report.Alarms[A].Status, Base.Report.Alarms[A].Status);
      EXPECT_EQ(O.Report.Alarms[A].PathDescription,
                Base.Report.Alarms[A].PathDescription);
    }

    // Per-edge verdicts, including the consulted-edge totals.
    ASSERT_EQ(O.Report.Edges.size(), Base.Report.Edges.size());
    for (size_t E = 0; E < O.Report.Edges.size(); ++E) {
      EXPECT_EQ(O.Report.Edges[E].Label, Base.Report.Edges[E].Label);
      EXPECT_EQ(O.Report.Edges[E].IsGlobal, Base.Report.Edges[E].IsGlobal);
      EXPECT_EQ(O.Report.Edges[E].Outcome, Base.Report.Edges[E].Outcome)
          << O.Report.Edges[E].Label;
      EXPECT_EQ(O.Report.Edges[E].Steps, Base.Report.Edges[E].Steps)
          << O.Report.Edges[E].Label;
    }
    EXPECT_EQ(O.Report.RefutedEdges, Base.Report.RefutedEdges);
    EXPECT_EQ(O.Report.WitnessedEdges, Base.Report.WitnessedEdges);
    EXPECT_EQ(O.Report.TimeoutEdges, Base.Report.TimeoutEdges);
    EXPECT_GE(O.Report.PrefetchedEdges, O.Report.Edges.size());

    // The deterministic JSON form must be byte-identical.
    EXPECT_EQ(O.DeterministicJson, Base.DeterministicJson);

    // Trace events for every consulted edge must carry the same
    // deterministic fields (the prefetch trace is a superset).
    for (const auto &[Edge, Fields] : Base.TraceByEdge) {
      auto It = O.TraceByEdge.find(Edge);
      ASSERT_NE(It, O.TraceByEdge.end()) << Edge;
      EXPECT_EQ(It->second, Fields) << Edge;
    }
  }
}

TEST_P(ParallelDiffTest, RegistryModeThreadCountInvariance) {
  // The global subsumption registry must not leak thread scheduling into
  // any deterministic output: with the registry ON and with it OFF, the
  // deterministic JSON report must be byte-identical across the whole
  // {edge-threads 1,2} x {search-threads 1,2,4} cross-product. (Verdict
  // equivalence BETWEEN the two modes is the soundness harness's job —
  // here each mode is only held to its own sequential baseline.)
  const CorpusProgram &CP = GetParam();
  SCOPED_TRACE(CP.Path);
  std::ifstream In(CP.Path);
  std::stringstream SS;
  SS << In.rdbuf();
  CompileResult CR =
      CP.Android ? compileAndroidApp(SS.str()) : compileMJ(SS.str());
  ASSERT_TRUE(CR.ok()) << (CR.Errors.empty() ? "?" : CR.Errors[0]);
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();
  ClassId Act = activityBaseClass(P);
  if (Act == InvalidId)
    Act = 0;

  struct ThreadConfig {
    unsigned EdgeThreads;
    unsigned SearchThreads;
  };
  const ThreadConfig Configs[] = {{1, 1}, {1, 2}, {1, 4},
                                  {2, 1}, {2, 2}, {2, 4}};
  for (bool Subsume : {true, false}) {
    SCOPED_TRACE(Subsume ? "subsume=on" : "subsume=off");
    std::string BaseJson;
    for (const ThreadConfig &TC : Configs) {
      SCOPED_TRACE("edgeThreads=" + std::to_string(TC.EdgeThreads) +
                   " searchThreads=" + std::to_string(TC.SearchThreads));
      SymOptions SO;
      SO.SearchThreads = TC.SearchThreads;
      SO.GlobalSubsume = Subsume;
      LeakChecker LC(P, *PTA, Act, SO);
      LeakReport R = LC.run(TC.EdgeThreads);
      ReportJsonOptions JO;
      JO.DeterministicOnly = true;
      std::string Json = LC.buildJsonReport(R, JO).toString(2);
      if (BaseJson.empty())
        BaseJson = std::move(Json);
      else
        EXPECT_EQ(Json, BaseJson);
    }
  }
}

TEST(GovernedParallelDiffTest, RegistryModeMidEdgeTimeoutInvariance) {
  // The governed (mid-edge deterministic deadline) variant of the
  // registry-mode invariance: prefetched searches are cut off mid-edge
  // and re-searched by the sequential consult loop when published
  // registry entries intersect their probed slots; the outcome must
  // still not depend on either thread count, in both registry modes.
  auto Programs = allPrograms();
  const CorpusProgram *Pick = nullptr;
  for (const CorpusProgram &CP : Programs)
    if (CP.Android) {
      Pick = &CP;
      break;
    }
  ASSERT_NE(Pick, nullptr);
  std::ifstream In(Pick->Path);
  std::stringstream SS;
  SS << In.rdbuf();
  CompileResult CR = compileAndroidApp(SS.str());
  ASSERT_TRUE(CR.ok()) << (CR.Errors.empty() ? "?" : CR.Errors[0]);
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();
  ClassId Act = activityBaseClass(P);
  ASSERT_NE(Act, InvalidId);

  struct ThreadConfig {
    unsigned EdgeThreads;
    unsigned SearchThreads;
  };
  const ThreadConfig Configs[] = {{1, 1}, {1, 2}, {1, 4},
                                  {2, 1}, {2, 2}, {2, 4}};
  for (bool Subsume : {true, false}) {
    SCOPED_TRACE(Subsume ? "subsume=on" : "subsume=off");
    std::string BaseJson;
    for (const ThreadConfig &TC : Configs) {
      SCOPED_TRACE("edgeThreads=" + std::to_string(TC.EdgeThreads) +
                   " searchThreads=" + std::to_string(TC.SearchThreads));
      GovernorConfig GC;
      GC.Deterministic = true;
      GC.StepsPerMs = 1;
      GC.EdgeTimeoutMs = 5;
      ResourceGovernor G(GC);
      SymOptions SO;
      SO.SearchThreads = TC.SearchThreads;
      SO.GlobalSubsume = Subsume;
      LeakChecker LC(P, *PTA, Act, SO);
      LC.setGovernor(&G);
      LeakReport R = LC.run(TC.EdgeThreads);
      ReportJsonOptions JO;
      JO.DeterministicOnly = true;
      std::string Json = LC.buildJsonReport(R, JO).toString(2);
      if (BaseJson.empty()) {
        ASSERT_GT(R.TimeoutEdges, 0u);
        BaseJson = std::move(Json);
      } else {
        EXPECT_EQ(Json, BaseJson);
      }
      EXPECT_EQ(G.memInUse(), 0u);
    }
  }
}

TEST(GovernedParallelDiffTest, MidEdgeTimeoutIsThreadConfigInvariant) {
  // A deterministic step-denominated edge deadline cuts every real search
  // off mid-edge. The degraded verdicts (TIMEOUT, reason "deadline"), the
  // deterministic report, and the consulted traces must still be invariant
  // across the whole thread-config cross-product, and every retained-state
  // charge of the abandoned searches must be released.
  auto Programs = allPrograms();
  const CorpusProgram *Pick = nullptr;
  for (const CorpusProgram &CP : Programs)
    if (CP.Android) {
      Pick = &CP; // Lexicographically-first Android program: real alarms.
      break;
    }
  ASSERT_NE(Pick, nullptr);
  std::ifstream In(Pick->Path);
  std::stringstream SS;
  SS << In.rdbuf();
  CompileResult CR = compileAndroidApp(SS.str());
  ASSERT_TRUE(CR.ok()) << (CR.Errors.empty() ? "?" : CR.Errors[0]);
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();
  ClassId Act = activityBaseClass(P);
  ASSERT_NE(Act, InvalidId);

  struct ThreadConfig {
    unsigned EdgeThreads;
    unsigned SearchThreads;
  };
  const ThreadConfig Configs[] = {{1, 1}, {2, 1}, {1, 2}, {1, 4}, {2, 4}};
  std::string BaseJson;
  std::map<std::string, std::tuple<std::string, uint32_t, uint64_t, uint64_t>>
      BaseTrace;
  for (const ThreadConfig &TC : Configs) {
    SCOPED_TRACE("edgeThreads=" + std::to_string(TC.EdgeThreads) +
                 " searchThreads=" + std::to_string(TC.SearchThreads));
    GovernorConfig GC;
    GC.Deterministic = true;
    GC.StepsPerMs = 1;
    GC.EdgeTimeoutMs = 5; // Five steps per edge: stops every real search.
    ResourceGovernor G(GC);
    SymOptions SO;
    SO.SearchThreads = TC.SearchThreads;
    LeakChecker LC(P, *PTA, Act, SO);
    LC.setGovernor(&G);
    LeakReport R = LC.run(TC.EdgeThreads);
    ReportJsonOptions JO;
    JO.DeterministicOnly = true;
    std::string Json = LC.buildJsonReport(R, JO).toString(2);
    std::map<std::string,
             std::tuple<std::string, uint32_t, uint64_t, uint64_t>>
        Trace;
    for (const TraceEvent &Ev : LC.traceEvents())
      Trace.emplace(Ev.Edge, std::make_tuple(Ev.Verdict, Ev.ProducersTried,
                                             Ev.Steps, Ev.Budget));
    if (BaseJson.empty()) {
      ASSERT_GT(R.TimeoutEdges, 0u);
      EXPECT_NE(Json.find("\"reason\": \"deadline\""), std::string::npos);
      BaseJson = std::move(Json);
      BaseTrace = std::move(Trace);
    } else {
      EXPECT_EQ(Json, BaseJson);
      for (const auto &[Edge, Fields] : BaseTrace) {
        auto It = Trace.find(Edge);
        ASSERT_NE(It, Trace.end()) << Edge;
        EXPECT_EQ(It->second, Fields) << Edge;
      }
    }
    // Mid-edge abandonment keeps the memory accountant balanced.
    EXPECT_EQ(G.memInUse(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Files, ParallelDiffTest, ::testing::ValuesIn(allPrograms()),
    [](const ::testing::TestParamInfo<CorpusProgram> &Info) {
      std::string Name =
          std::filesystem::path(Info.param.Path).stem().string();
      for (char &Ch : Name)
        if (!isalnum(static_cast<unsigned char>(Ch)))
          Ch = '_';
      return Name;
    });
