//===- parallel_diff_test.cpp - 1-vs-N thread differential harness --------===//
//
// Runs the leak checker with 1, 2, and 4 threads over every corpus program
// and requires bit-identical observable behaviour: the same alarm verdicts,
// the same per-edge verdicts (label, kind, outcome, steps), and the same
// deterministic-form JSON report, byte for byte. The parallel mode may
// thresh MORE edges (prefetch), but everything the report exposes as
// deterministic must not depend on the thread count.
//
// This is the pin that keeps the parallel extension honest: any scheduling
// leak into verdicts, exploration order, or serialization shows up as a
// string diff here.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "leak/LeakChecker.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

using namespace thresher;

#ifndef THRESHER_CORPUS_DIR
#error "THRESHER_CORPUS_DIR must be defined by the build"
#endif

namespace {

struct CorpusProgram {
  std::string Path;
  bool Android = false;
};

std::vector<CorpusProgram> allPrograms() {
  std::vector<CorpusProgram> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(THRESHER_CORPUS_DIR)) {
    if (Entry.path().extension() != ".mj")
      continue;
    CorpusProgram CP;
    CP.Path = Entry.path().string();
    std::ifstream In(CP.Path);
    std::string Line;
    while (std::getline(In, Line))
      if (Line.rfind("// ANDROID", 0) == 0)
        CP.Android = true;
    Out.push_back(CP);
  }
  std::sort(Out.begin(), Out.end(),
            [](const CorpusProgram &A, const CorpusProgram &B) {
              return A.Path < B.Path;
            });
  return Out;
}

/// One thread-count run's observable outputs.
struct RunObservation {
  LeakReport Report;
  std::string DeterministicJson;
  /// Deterministic trace fields keyed by edge label (the trace may cover
  /// more edges under prefetch; the consulted subset must agree).
  std::map<std::string, std::tuple<std::string, uint32_t, uint64_t, uint64_t>>
      TraceByEdge;
};

class ParallelDiffTest : public ::testing::TestWithParam<CorpusProgram> {};

} // namespace

TEST_P(ParallelDiffTest, ThreadCountInvariance) {
  const CorpusProgram &CP = GetParam();
  SCOPED_TRACE(CP.Path);
  std::ifstream In(CP.Path);
  std::stringstream SS;
  SS << In.rdbuf();

  CompileResult CR =
      CP.Android ? compileAndroidApp(SS.str()) : compileMJ(SS.str());
  ASSERT_TRUE(CR.ok()) << (CR.Errors.empty() ? "?" : CR.Errors[0]);
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();

  // Android programs check the real Activity sink. Plain programs have no
  // Activity class, but the thread-count invariance must hold regardless
  // of the sink, so pick the class that produces the most alarms (falling
  // back to class 0 — even an alarm-free report must be identical).
  ClassId Act = activityBaseClass(P);
  if (Act == InvalidId) {
    ASSERT_GT(P.Classes.size(), 0u);
    Act = 0;
    uint32_t BestAlarms = 0;
    for (ClassId C = 0; C < P.Classes.size(); ++C) {
      LeakChecker Probe(P, *PTA, C);
      uint32_t N = Probe.run(1).NumAlarms;
      if (N > BestAlarms) {
        BestAlarms = N;
        Act = C;
      }
    }
  }

  const unsigned ThreadCounts[] = {1, 2, 4};
  std::vector<RunObservation> Obs;
  for (unsigned T : ThreadCounts) {
    LeakChecker LC(P, *PTA, Act);
    RunObservation O;
    O.Report = LC.run(T);
    ReportJsonOptions JO;
    JO.DeterministicOnly = true;
    O.DeterministicJson = LC.buildJsonReport(O.Report, JO).toString(2);
    for (const TraceEvent &Ev : LC.traceEvents())
      O.TraceByEdge.emplace(
          Ev.Edge, std::make_tuple(Ev.Verdict, Ev.ProducersTried, Ev.Steps,
                                   Ev.Budget));
    Obs.push_back(std::move(O));
  }

  const RunObservation &Base = Obs[0];
  EXPECT_EQ(Base.Report.PrefetchedEdges, Base.Report.Edges.size())
      << "sequential run must not thresh edges it never consults";
  for (size_t I = 1; I < Obs.size(); ++I) {
    const RunObservation &O = Obs[I];
    SCOPED_TRACE("threads=" + std::to_string(ThreadCounts[I]));

    // Alarm verdicts.
    ASSERT_EQ(O.Report.Alarms.size(), Base.Report.Alarms.size());
    for (size_t A = 0; A < O.Report.Alarms.size(); ++A) {
      EXPECT_EQ(O.Report.Alarms[A].Source, Base.Report.Alarms[A].Source);
      EXPECT_EQ(O.Report.Alarms[A].Activity, Base.Report.Alarms[A].Activity);
      EXPECT_EQ(O.Report.Alarms[A].Status, Base.Report.Alarms[A].Status);
      EXPECT_EQ(O.Report.Alarms[A].PathDescription,
                Base.Report.Alarms[A].PathDescription);
    }

    // Per-edge verdicts, including the consulted-edge totals.
    ASSERT_EQ(O.Report.Edges.size(), Base.Report.Edges.size());
    for (size_t E = 0; E < O.Report.Edges.size(); ++E) {
      EXPECT_EQ(O.Report.Edges[E].Label, Base.Report.Edges[E].Label);
      EXPECT_EQ(O.Report.Edges[E].IsGlobal, Base.Report.Edges[E].IsGlobal);
      EXPECT_EQ(O.Report.Edges[E].Outcome, Base.Report.Edges[E].Outcome)
          << O.Report.Edges[E].Label;
      EXPECT_EQ(O.Report.Edges[E].Steps, Base.Report.Edges[E].Steps)
          << O.Report.Edges[E].Label;
    }
    EXPECT_EQ(O.Report.RefutedEdges, Base.Report.RefutedEdges);
    EXPECT_EQ(O.Report.WitnessedEdges, Base.Report.WitnessedEdges);
    EXPECT_EQ(O.Report.TimeoutEdges, Base.Report.TimeoutEdges);
    EXPECT_GE(O.Report.PrefetchedEdges, O.Report.Edges.size());

    // The deterministic JSON form must be byte-identical.
    EXPECT_EQ(O.DeterministicJson, Base.DeterministicJson);

    // Trace events for every consulted edge must carry the same
    // deterministic fields (the prefetch trace is a superset).
    for (const auto &[Edge, Fields] : Base.TraceByEdge) {
      auto It = O.TraceByEdge.find(Edge);
      ASSERT_NE(It, O.TraceByEdge.end()) << Edge;
      EXPECT_EQ(It->second, Fields) << Edge;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Files, ParallelDiffTest, ::testing::ValuesIn(allPrograms()),
    [](const ::testing::TestParamInfo<CorpusProgram> &Info) {
      std::string Name =
          std::filesystem::path(Info.param.Path).stem().string();
      for (char &Ch : Name)
        if (!isalnum(static_cast<unsigned char>(Ch)))
          Ch = '_';
      return Name;
    });
