//===- soundness_diff_test.cpp - Reducer off/on soundness harness ---------===//
//
// The refutation-soundness differential harness for the two search
// reducers (forward reachability slicing and the global subsumption
// registry). For every corpus program, the full checker runs with the
// reducers off (the baseline) and in every other corner of the
// {slice off/on} x {subsume off/on} square. The reducers may only ever
// REMOVE witness-free work:
//
//   * an alarm the baseline refutes stays refuted, and an alarm the
//     baseline witnesses stays witnessed (a flip in either direction
//     means a reducer pruned a real witness or invented one);
//   * per consulted edge, REFUTED stays REFUTED and WITNESSED stays
//     WITNESSED; only TIMEOUT may improve to REFUTED (pruning can finish
//     a search the baseline's budget could not);
//   * the surviving-path descriptions of witnessed alarms are identical.
//
// A governed variant repeats the square under a deterministic
// step-denominated deadline so the TIMEOUT -> REFUTED improvement arm is
// actually exercised rather than vacuously true.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "leak/LeakChecker.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

using namespace thresher;

#ifndef THRESHER_CORPUS_DIR
#error "THRESHER_CORPUS_DIR must be defined by the build"
#endif

namespace {

struct CorpusProgram {
  std::string Path;
  bool Android = false;
};

std::vector<CorpusProgram> allPrograms() {
  std::vector<CorpusProgram> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(THRESHER_CORPUS_DIR)) {
    if (Entry.path().extension() != ".mj")
      continue;
    CorpusProgram CP;
    CP.Path = Entry.path().string();
    std::ifstream In(CP.Path);
    std::string Line;
    while (std::getline(In, Line))
      if (Line.rfind("// ANDROID", 0) == 0)
        CP.Android = true;
    Out.push_back(CP);
  }
  std::sort(Out.begin(), Out.end(),
            [](const CorpusProgram &A, const CorpusProgram &B) {
              return A.Path < B.Path;
            });
  return Out;
}

struct ReducerConfig {
  bool Slice;
  bool Subsume;
};

constexpr ReducerConfig Square[] = {
    {false, false}, {true, false}, {false, true}, {true, true}};

std::string cfgName(const ReducerConfig &C) {
  return std::string("slice=") + (C.Slice ? "on" : "off") +
         " subsume=" + (C.Subsume ? "on" : "off");
}

/// Runs the checker on \p P with the reducer corner \p C, optionally under
/// a deterministic step deadline of \p DeadlineMs (0 = ungoverned).
LeakReport runConfig(const Program &P, const PointsToResult &PTA,
                     ClassId Act, const ReducerConfig &C,
                     uint32_t DeadlineMs) {
  SymOptions SO;
  SO.ForwardSlice = C.Slice;
  SO.GlobalSubsume = C.Subsume;
  LeakChecker LC(P, PTA, Act, SO);
  if (DeadlineMs > 0) {
    GovernorConfig GC;
    GC.Deterministic = true;
    GC.StepsPerMs = 1;
    GC.EdgeTimeoutMs = DeadlineMs;
    ResourceGovernor G(GC);
    LC.setGovernor(&G);
    return LC.run(1);
  }
  return LC.run(1);
}

/// Checks the reducer soundness rules of \p R against baseline \p Base.
void expectSoundAgainstBaseline(const LeakReport &Base, const LeakReport &R) {
  // Alarms: the alarm list is derived from the points-to solution, which
  // no reducer touches, so it is the same set in the same order.
  ASSERT_EQ(R.Alarms.size(), Base.Alarms.size());
  for (size_t A = 0; A < R.Alarms.size(); ++A) {
    const AlarmResult &BA = Base.Alarms[A];
    const AlarmResult &RA = R.Alarms[A];
    EXPECT_EQ(RA.Source, BA.Source);
    EXPECT_EQ(RA.Activity, BA.Activity);
    switch (BA.Status) {
    case AlarmStatus::Refuted:
      EXPECT_EQ(RA.Status, AlarmStatus::Refuted)
          << "reducer un-refuted alarm " << A;
      break;
    case AlarmStatus::Witnessed:
      EXPECT_EQ(RA.Status, AlarmStatus::Witnessed)
          << "reducer flipped witnessed alarm " << A;
      EXPECT_EQ(RA.PathDescription, BA.PathDescription);
      break;
    case AlarmStatus::Timeout:
      // Pruning may let the search finish: TIMEOUT improving to REFUTED
      // is the one permitted change. Witnessing is not: a timed-out path
      // had no witness, and reducers never add one.
      EXPECT_NE(RA.Status, AlarmStatus::Witnessed)
          << "reducer invented a witness for timed-out alarm " << A;
      break;
    }
  }

  // Per-edge verdicts over the common consulted labels (pruning can
  // change which edges the threshing loop needs to consult).
  std::map<std::string, SearchOutcome> BaseEdges;
  for (const EdgeVerdict &E : Base.Edges)
    BaseEdges.emplace(E.Label, E.Outcome);
  for (const EdgeVerdict &E : R.Edges) {
    auto It = BaseEdges.find(E.Label);
    if (It == BaseEdges.end())
      continue;
    switch (It->second) {
    case SearchOutcome::Refuted:
      EXPECT_EQ(E.Outcome, SearchOutcome::Refuted) << E.Label;
      break;
    case SearchOutcome::Witnessed:
      EXPECT_EQ(E.Outcome, SearchOutcome::Witnessed) << E.Label;
      break;
    case SearchOutcome::BudgetExhausted:
      EXPECT_NE(E.Outcome, SearchOutcome::Witnessed)
          << E.Label << ": reducer turned a timeout into a witness";
      break;
    }
  }
}

ClassId pickActivity(const Program &P, const PointsToResult &PTA) {
  ClassId Act = activityBaseClass(P);
  if (Act != InvalidId)
    return Act;
  // Plain programs: pick the class with the most alarms (see
  // parallel_diff_test.cpp), falling back to class 0.
  Act = 0;
  uint32_t BestAlarms = 0;
  for (ClassId C = 0; C < P.Classes.size(); ++C) {
    LeakChecker Probe(P, PTA, C);
    uint32_t N = Probe.run(1).NumAlarms;
    if (N > BestAlarms) {
      BestAlarms = N;
      Act = C;
    }
  }
  return Act;
}

class SoundnessDiffTest : public ::testing::TestWithParam<CorpusProgram> {};

} // namespace

TEST_P(SoundnessDiffTest, ReducersNeverFlipVerdicts) {
  const CorpusProgram &CP = GetParam();
  SCOPED_TRACE(CP.Path);
  std::ifstream In(CP.Path);
  std::stringstream SS;
  SS << In.rdbuf();
  CompileResult CR =
      CP.Android ? compileAndroidApp(SS.str()) : compileMJ(SS.str());
  ASSERT_TRUE(CR.ok()) << (CR.Errors.empty() ? "?" : CR.Errors[0]);
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();
  ASSERT_GT(P.Classes.size(), 0u);
  ClassId Act = pickActivity(P, *PTA);

  LeakReport Base = runConfig(P, *PTA, Act, Square[0], /*DeadlineMs=*/0);
  for (size_t I = 1; I < std::size(Square); ++I) {
    SCOPED_TRACE(cfgName(Square[I]));
    LeakReport R = runConfig(P, *PTA, Act, Square[I], /*DeadlineMs=*/0);
    expectSoundAgainstBaseline(Base, R);
  }
}

TEST_P(SoundnessDiffTest, ReducersNeverFlipVerdictsGoverned) {
  // Same square under a tight deterministic step deadline, so the
  // baseline actually produces TIMEOUT verdicts and the
  // TIMEOUT -> REFUTED improvement arm is exercised.
  const CorpusProgram &CP = GetParam();
  SCOPED_TRACE(CP.Path);
  std::ifstream In(CP.Path);
  std::stringstream SS;
  SS << In.rdbuf();
  CompileResult CR =
      CP.Android ? compileAndroidApp(SS.str()) : compileMJ(SS.str());
  ASSERT_TRUE(CR.ok()) << (CR.Errors.empty() ? "?" : CR.Errors[0]);
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();
  ASSERT_GT(P.Classes.size(), 0u);
  ClassId Act = pickActivity(P, *PTA);

  LeakReport Base = runConfig(P, *PTA, Act, Square[0], /*DeadlineMs=*/25);
  for (size_t I = 1; I < std::size(Square); ++I) {
    SCOPED_TRACE(cfgName(Square[I]));
    LeakReport R = runConfig(P, *PTA, Act, Square[I], /*DeadlineMs=*/25);
    expectSoundAgainstBaseline(Base, R);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Files, SoundnessDiffTest, ::testing::ValuesIn(allPrograms()),
    [](const ::testing::TestParamInfo<CorpusProgram> &Info) {
      std::string Name =
          std::filesystem::path(Info.param.Path).stem().string();
      for (char &Ch : Name)
        if (!isalnum(static_cast<unsigned char>(Ch)))
          Ch = '_';
      return Name;
    });
