//===- leak_test.cpp - Activity-leak client tests --------------------------===//

#include "leak/LeakChecker.h"

#include "TestPrograms.h"
#include "android/AndroidModel.h"

#include <gtest/gtest.h>

using namespace thresher;

namespace {

struct Env {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<PointsToResult> PTA;
  ClassId ActBase = InvalidId;
};

Env mk(const char *AppSrc, PTAOptions PtaOpts = {}) {
  Env E;
  CompileResult R = compileAndroidApp(AppSrc);
  EXPECT_TRUE(R.ok()) << (R.Errors.empty() ? "?" : R.Errors[0]);
  E.Prog = std::move(R.Prog);
  E.PTA = PointsToAnalysis(*E.Prog, PtaOpts).run();
  E.ActBase = activityBaseClass(*E.Prog);
  return E;
}

} // namespace

TEST(LeakTest, ActivityInLocalStructureOnly) {
  // The Activity is stored only into a local object's field: no static
  // field can reach it, so there is no alarm. (Note: pushing into a
  // library Vec WOULD alarm via the shared Vec.EMPTY pollution — that is
  // the Fig. 1 scenario, covered elsewhere.)
  Env E = mk(R"MJ(
class Node { var next; }
class QuietAct extends Activity {
  onCreate() { var n = new Node() @n0; n.next = this; }
}
fun main() { var a = new QuietAct() @act0; if (*) { a.onCreate(); } }
)MJ");
  LeakChecker LC(*E.Prog, *E.PTA, E.ActBase);
  LeakReport R = LC.run();
  EXPECT_EQ(R.NumAlarms, 0u);
  EXPECT_EQ(R.Fields, 0u);
}

TEST(LeakTest, DirectLeakOneAlarmOneField) {
  Env E = mk(R"MJ(
class Keeper { static var held; }
class KAct extends Activity {
  onCreate() { Keeper.held = this; }
}
fun main() { var a = new KAct() @act0; if (*) { a.onCreate(); } }
)MJ");
  LeakChecker LC(*E.Prog, *E.PTA, E.ActBase);
  LeakReport R = LC.run();
  ASSERT_EQ(R.NumAlarms, 1u);
  EXPECT_EQ(R.Fields, 1u);
  EXPECT_EQ(R.Alarms[0].Status, AlarmStatus::Witnessed);
  ASSERT_EQ(R.Alarms[0].PathDescription.size(), 1u);
  EXPECT_EQ(R.Alarms[0].PathDescription[0], "Keeper.held -> act0");
}

TEST(LeakTest, MultiHopPathReported) {
  Env E = mk(R"MJ(
class Box { var inner; }
class Keeper { static var box; }
class KAct extends Activity {
  onCreate() {
    var b = new Box() @box0;
    b.inner = this;
    Keeper.box = b;
  }
}
fun main() { var a = new KAct() @act0; if (*) { a.onCreate(); } }
)MJ");
  LeakChecker LC(*E.Prog, *E.PTA, E.ActBase);
  LeakReport R = LC.run();
  ASSERT_EQ(R.NumAlarms, 1u);
  ASSERT_EQ(R.Alarms[0].PathDescription.size(), 2u);
  EXPECT_EQ(R.Alarms[0].PathDescription[0], "Keeper.box -> box0");
  EXPECT_EQ(R.Alarms[0].PathDescription[1], "box0.inner -> act0");
}

TEST(LeakTest, RefutingOneEdgeTriggersPathReSearch) {
  // Two routes into the activity: a dead guarded one (refutable edge) and
  // a live one. The alarm must survive via the live route.
  Env E = mk(R"MJ(
class Keeper { static var slot; }
class KAct extends Activity {
  onCreate() {
    var dead = 0;
    if (dead != 0) { Keeper.slot = this; }
    var b = new Box() @box0;
    b.inner = this;
    Keeper.slot = b;
  }
}
class Box { var inner; }
fun main() { var a = new KAct() @act0; if (*) { a.onCreate(); } }
)MJ");
  LeakChecker LC(*E.Prog, *E.PTA, E.ActBase);
  LeakReport R = LC.run();
  ASSERT_EQ(R.NumAlarms, 1u);
  EXPECT_EQ(R.Alarms[0].Status, AlarmStatus::Witnessed);
  // The direct Keeper.slot -> act0 edge was refuted along the way.
  EXPECT_GE(R.RefutedEdges, 1u);
  ASSERT_EQ(R.Alarms[0].PathDescription.size(), 2u);
}

TEST(LeakTest, AllRoutesRefutedDisconnects) {
  Env E = mk(R"MJ(
class Keeper { static var slot; }
class KAct extends Activity {
  onCreate() {
    var dead = 0;
    if (dead != 0) { Keeper.slot = this; }
  }
}
fun main() { var a = new KAct() @act0; if (*) { a.onCreate(); } }
)MJ");
  LeakChecker LC(*E.Prog, *E.PTA, E.ActBase);
  LeakReport R = LC.run();
  ASSERT_EQ(R.NumAlarms, 1u);
  EXPECT_EQ(R.RefutedAlarms, 1u);
  EXPECT_EQ(R.RefutedFields, 1u);
}

TEST(LeakTest, EdgeResultsAreCachedAcrossAlarms) {
  // Two activities through the same singleton field: the shared edge is
  // searched once.
  Env E = mk(R"MJ(
class Keeper { static var slot; }
class A1 extends Activity { onCreate() { Keeper.slot = this; } }
class A2 extends Activity { onCreate() { Keeper.slot = this; } }
fun main() {
  var a = new A1() @act1;
  var b = new A2() @act2;
  if (*) { a.onCreate(); }
  if (*) { b.onCreate(); }
}
)MJ");
  LeakChecker LC(*E.Prog, *E.PTA, E.ActBase);
  LeakReport R = LC.run();
  EXPECT_EQ(R.NumAlarms, 2u);
  // Distinct targets: two edges, both witnessed.
  EXPECT_EQ(R.WitnessedEdges, 2u);
  EXPECT_EQ(LC.edgesWithOutcome(SearchOutcome::Witnessed).size(), 2u);
  EXPECT_TRUE(LC.edgesWithOutcome(SearchOutcome::Refuted).empty());
}

TEST(LeakTest, TimeoutMarksAlarm) {
  Env E = mk(testprogs::figure1App());
  SymOptions Opts;
  Opts.EdgeBudget = 5; // Force budget exhaustion.
  LeakChecker LC(*E.Prog, *E.PTA, E.ActBase, Opts);
  LeakReport R = LC.run();
  EXPECT_GT(R.NumAlarms, 0u);
  EXPECT_GT(R.TimeoutEdges, 0u);
  bool SawTimeoutAlarm = false;
  for (const AlarmResult &A : R.Alarms)
    SawTimeoutAlarm |= A.Status == AlarmStatus::Timeout;
  EXPECT_TRUE(SawTimeoutAlarm);
}

TEST(LeakTest, CountTrueMatchesGroundTruth) {
  Env E = mk(testprogs::figure5App());
  LeakChecker LC(*E.Prog, *E.PTA, E.ActBase);
  LeakReport R = LC.run();
  GlobalId G = E.Prog->findGlobal("EmailAddressAdapter", "sInstance");
  EXPECT_EQ(R.countTrue(*E.Prog, E.PTA->Locs, {{G, "act0"}}), 1u);
  EXPECT_EQ(R.countTrue(*E.Prog, E.PTA->Locs, {{G, "wrongLabel"}}), 0u);
  EXPECT_EQ(R.countTrue(*E.Prog, E.PTA->Locs, {}), 0u);
}

TEST(LeakTest, SubclassActivitiesCount) {
  Env E = mk(R"MJ(
class BaseAct extends Activity { }
class DerivedAct extends BaseAct {
  onCreate() { Keeper.slot = this; }
}
class Keeper { static var slot; }
fun main() { var a = new DerivedAct() @act0; if (*) { a.onCreate(); } }
)MJ");
  LeakChecker LC(*E.Prog, *E.PTA, E.ActBase);
  LeakReport R = LC.run();
  EXPECT_EQ(R.NumAlarms, 1u);
}

TEST(LeakTest, NonActivityObjectsIgnored) {
  Env E = mk(R"MJ(
class Plain { }
class Keeper { static var slot; }
class PAct extends Activity {
  onCreate() { Keeper.slot = new Plain() @plain0; }
}
fun main() { var a = new PAct() @act0; if (*) { a.onCreate(); } }
)MJ");
  LeakChecker LC(*E.Prog, *E.PTA, E.ActBase);
  LeakReport R = LC.run();
  EXPECT_EQ(R.NumAlarms, 0u);
}

TEST(LeakTest, ParallelMatchesSequentialVerdicts) {
  // The parallel prefetch must not change any alarm verdict.
  Env E = mk(testprogs::figure1App());
  LeakChecker Seq(*E.Prog, *E.PTA, E.ActBase);
  LeakReport RS = Seq.run();
  LeakChecker Par(*E.Prog, *E.PTA, E.ActBase);
  LeakReport RP = Par.run(/*Threads=*/4);
  ASSERT_EQ(RS.NumAlarms, RP.NumAlarms);
  EXPECT_EQ(RS.RefutedAlarms, RP.RefutedAlarms);
  EXPECT_EQ(RS.RefutedFields, RP.RefutedFields);
  for (size_t I = 0; I < RS.Alarms.size(); ++I) {
    EXPECT_EQ(RS.Alarms[I].Source, RP.Alarms[I].Source);
    EXPECT_EQ(RS.Alarms[I].Status, RP.Alarms[I].Status);
  }
}

TEST(LeakTest, ParallelMatchesSequentialOnLeak) {
  Env E = mk(testprogs::figure5App());
  LeakChecker Par(*E.Prog, *E.PTA, E.ActBase);
  LeakReport R = Par.run(/*Threads=*/3);
  ASSERT_EQ(R.NumAlarms, 1u);
  EXPECT_EQ(R.Alarms[0].Status, AlarmStatus::Witnessed);
}

TEST(LeakTest, ViewHierarchyLeak) {
  // The paper: "Sub-components of Activitys (such as Adapters, Cursors,
  // and Views) typically keep pointers to their parent Activity, meaning
  // that any persistent reference to an element in the Activity's
  // hierarchy can potentially create a leak." A cached root View retains
  // its Activity through mContext.
  Env E = mk(R"MJ(
class Cache { static var rootView; }
class VAct extends Activity {
  onCreate() {
    var v = new View(this) @view0;
    Cache.rootView = v;
  }
}
fun main() { var a = new VAct() @act0; if (*) { a.onCreate(); } }
)MJ");
  LeakChecker LC(*E.Prog, *E.PTA, E.ActBase);
  LeakReport R = LC.run();
  ASSERT_EQ(R.NumAlarms, 1u);
  EXPECT_EQ(R.Alarms[0].Status, AlarmStatus::Witnessed);
  ASSERT_EQ(R.Alarms[0].PathDescription.size(), 2u);
  EXPECT_EQ(R.Alarms[0].PathDescription[1], "view0.mContext -> act0");
}

TEST(LeakTest, ViewGroupChildChainLeak) {
  // Deeper: the cached ViewGroup holds children (via the library Vec)
  // whose mContext is the Activity.
  Env E = mk(R"MJ(
class Cache { static var panel; }
class VAct extends Activity {
  onCreate() {
    var g = new ViewGroup(this) @group0;
    var child = new View(this) @child0;
    g.addView(child);
    Cache.panel = g;
  }
}
fun main() { var a = new VAct() @act0; if (*) { a.onCreate(); } }
)MJ");
  LeakChecker LC(*E.Prog, *E.PTA, E.ActBase);
  LeakReport R = LC.run();
  // Two alarms: the real one through Cache.panel, and a Fig. 1-style
  // false one through the library Vec's shared EMPTY array (the child is
  // pushed into the ViewGroup's children Vec). The real one is witnessed,
  // the pollution one refuted.
  ASSERT_EQ(R.NumAlarms, 2u);
  EXPECT_EQ(R.RefutedAlarms, 1u);
  bool PanelWitnessed = false;
  for (const AlarmResult &A : R.Alarms)
    if (E.Prog->globalName(A.Source) == "Cache.panel")
      PanelWitnessed = A.Status == AlarmStatus::Witnessed;
  EXPECT_TRUE(PanelWitnessed);
}
