//===- bench_pta.cpp - Points-to solver cold-solve benchmark --------------===//
//
// Times a cold constraint solve with both solvers (the naive reference
// and the production delta-propagation + cycle-collapsing one) over two
// workload families:
//
//  - every program in tests/corpus/ (realistic, small: guards against the
//    delta machinery regressing the common case), and
//  - generated synthetic stressors: a copy-edge ring ("cycle-heavy",
//    where the naive solver re-propagates entire sets around the cycle
//    until convergence and online collapsing folds the ring into one
//    node) and a long copy chain fed from allocation-heavy sources
//    ("chain-heavy", where difference propagation crosses each edge with
//    each location exactly once).
//
// --json FILE writes a thresher-bench-pta/v1 document with per-workload
// wall times, speedups, and the solver's pta.* effort counters.
// --check-baseline FILE compares the delta-solver wall times against a
// previously recorded document and exits nonzero on a >2x regression on
// any workload (the CI perf-smoke contract; see .github/workflows/ci.yml).
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "pta/PointsTo.h"
#include "support/Json.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace thresher;

#ifndef THRESHER_CORPUS_DIR
#error "THRESHER_CORPUS_DIR must be defined by the build"
#endif

namespace {

struct Workload {
  std::string Name;
  std::string Kind; // "corpus" or "synthetic"
  std::string Text;
  bool Android = false;
};

std::vector<Workload> corpusWorkloads() {
  std::vector<Workload> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(THRESHER_CORPUS_DIR)) {
    if (Entry.path().extension() != ".mj")
      continue;
    Workload W;
    W.Name = Entry.path().stem().string();
    W.Kind = "corpus";
    std::ifstream In(Entry.path());
    std::stringstream SS;
    SS << In.rdbuf();
    W.Text = SS.str();
    W.Android = W.Text.rfind("// ANDROID", 0) == 0;
    Out.push_back(W);
  }
  std::sort(Out.begin(), Out.end(),
            [](const Workload &A, const Workload &B) {
              return A.Name < B.Name;
            });
  return Out;
}

/// A ring of N locals connected by copy edges oriented *against* the
/// declaration order, with an allocation seeding every K-th variable.
/// Flow-insensitively the assignments form one big copy-edge cycle, so
/// every allocation must reach every variable. The orientation matters:
/// the naive solver's FIFO worklist visits nodes in seeding order, so
/// each location advances one hop per pop and the whole (growing) set is
/// re-shipped every time — O(ring length x seeds) re-propagations, a
/// schedule the solver cannot avoid by luck. Collapsing folds the ring
/// into one node up front and propagates each location exactly once.
Workload makeCycleHeavy(unsigned N, unsigned Every) {
  std::ostringstream OS;
  OS << "fun main() {\n";
  for (unsigned I = 0; I < N; ++I) {
    if (I % Every == 0)
      OS << "  var a" << I << " = new Object() @c" << I << ";\n";
    else
      OS << "  var a" << I << " = null;\n";
  }
  for (unsigned I = 0; I + 1 < N; ++I)
    OS << "  a" << I << " = a" << (I + 1) << ";\n"; // Edge a(I+1) -> aI.
  OS << "  a" << (N - 1) << " = a0;\n";             // Close the ring.
  OS << "}\n";
  Workload W;
  W.Name = "synthetic_cycle_n" + std::to_string(N);
  W.Kind = "synthetic";
  W.Text = OS.str();
  return W;
}

/// A long copy chain whose head receives M allocations, plus a second
/// tier of chains branching off. No cycles: measures pure propagation
/// throughput (difference propagation must not lose to the naive solver
/// here).
Workload makeChainHeavy(unsigned N, unsigned M) {
  std::ostringstream OS;
  OS << "fun main() {\n";
  OS << "  var a0 = new Object() @h0;\n";
  for (unsigned I = 1; I < M; ++I)
    OS << "  a0 = new Object() @h" << I << ";\n";
  for (unsigned I = 1; I < N; ++I)
    OS << "  var a" << I << " = a" << (I - 1) << ";\n";
  OS << "}\n";
  Workload W;
  W.Name = "synthetic_chain_n" + std::to_string(N) + "_m" +
           std::to_string(M);
  W.Kind = "synthetic";
  W.Text = OS.str();
  return W;
}

struct Measurement {
  uint64_t NaiveNanos = 0;
  uint64_t DeltaNanos = 0;
  std::map<std::string, uint64_t> Counters; // pta.* from the delta run.
};

uint64_t bestOf(const Program &P, PTASolver Solver, unsigned Reps) {
  PTAOptions Opts;
  Opts.Solver = Solver;
  uint64_t Best = UINT64_MAX;
  for (unsigned R = 0; R < Reps; ++R) {
    Timer T;
    auto Result = PointsToAnalysis(P, Opts).run();
    uint64_t Nanos = static_cast<uint64_t>(T.seconds() * 1e9);
    if (Result->Locs.size() == 0)
      std::fprintf(stderr, "warning: empty result\n");
    if (Nanos < Best)
      Best = Nanos;
  }
  return Best;
}

Measurement measure(const Workload &W, unsigned Reps) {
  CompileResult CR =
      W.Android ? compileAndroidApp(W.Text) : compileMJ(W.Text);
  if (!CR.ok()) {
    std::fprintf(stderr, "compile error in %s: %s\n", W.Name.c_str(),
                 CR.Errors.empty() ? "?" : CR.Errors[0].c_str());
    std::exit(1);
  }
  const Program &P = *CR.Prog;
  Measurement M;
  M.DeltaNanos = bestOf(P, PTASolver::DeltaLCD, Reps);
  M.NaiveNanos = bestOf(P, PTASolver::Naive, Reps);
  PTAOptions Opts; // One more delta run to snapshot the effort counters.
  auto R = PointsToAnalysis(P, Opts).run();
  for (const auto &[Name, Value] : R->Effort.counterSnapshot())
    if (Name.rfind("pta.", 0) == 0)
      M.Counters[Name] = Value;
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath, BaselinePath;
  unsigned Reps = 5;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (A == "--check-baseline" && I + 1 < Argc)
      BaselinePath = Argv[++I];
    else if (A == "--reps" && I + 1 < Argc)
      Reps = static_cast<unsigned>(std::atoi(Argv[++I]));
    else {
      std::fprintf(stderr,
                   "usage: bench_pta [--json FILE] "
                   "[--check-baseline FILE] [--reps N]\n");
      return 2;
    }
  }

  std::vector<Workload> Workloads = corpusWorkloads();
  Workloads.push_back(makeCycleHeavy(1500, 15));
  Workloads.push_back(makeCycleHeavy(3000, 30));
  Workloads.push_back(makeChainHeavy(2000, 100));

  JsonValue Doc = JsonValue::makeObject();
  Doc.set("schema", JsonValue::makeString("thresher-bench-pta/v1"));
  Doc.set("reps", JsonValue::makeUint(Reps));
  JsonValue Rows = JsonValue::makeArray();

  std::printf("%-32s %12s %12s %8s\n", "workload", "naive(us)",
              "delta(us)", "speedup");
  bool CycleSpeedupOk = true;
  for (const Workload &W : Workloads) {
    Measurement M = measure(W, Reps);
    double Speedup =
        M.DeltaNanos ? double(M.NaiveNanos) / double(M.DeltaNanos) : 0.0;
    std::printf("%-32s %12.1f %12.1f %7.2fx\n", W.Name.c_str(),
                M.NaiveNanos / 1e3, M.DeltaNanos / 1e3, Speedup);
    if (W.Kind == "synthetic" && W.Name.rfind("synthetic_cycle", 0) == 0 &&
        Speedup < 2.0)
      CycleSpeedupOk = false;
    JsonValue Row = JsonValue::makeObject();
    Row.set("name", JsonValue::makeString(W.Name));
    Row.set("kind", JsonValue::makeString(W.Kind));
    Row.set("naiveNanos", JsonValue::makeUint(M.NaiveNanos));
    Row.set("deltaNanos", JsonValue::makeUint(M.DeltaNanos));
    Row.set("speedup", JsonValue::makeDouble(Speedup));
    JsonValue Counters = JsonValue::makeObject();
    for (const auto &[Name, Value] : M.Counters)
      Counters.set(Name, JsonValue::makeUint(Value));
    Row.set("counters", std::move(Counters));
    Rows.append(std::move(Row));
  }
  Doc.set("workloads", std::move(Rows));

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    Doc.write(Out, 2);
    Out << "\n";
  }

  if (!CycleSpeedupOk) {
    std::fprintf(stderr,
                 "FAIL: cycle-heavy stressor speedup below 2x\n");
    return 1;
  }

  if (!BaselinePath.empty()) {
    std::ifstream In(BaselinePath);
    if (!In) {
      std::fprintf(stderr, "cannot open baseline '%s'\n",
                   BaselinePath.c_str());
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    JsonValue Base;
    std::string Err;
    if (!parseJson(SS.str(), Base, &Err)) {
      std::fprintf(stderr, "bad baseline JSON: %s\n", Err.c_str());
      return 1;
    }
    bool Ok = true;
    const JsonValue *BaseRows = Base.find("workloads");
    for (const JsonValue &Row : Doc.find("workloads")->items()) {
      const std::string &Name = Row.find("name")->asString();
      uint64_t Now = Row.find("deltaNanos")->asUint();
      const JsonValue *BaseRow = nullptr;
      if (BaseRows)
        for (const JsonValue &BR : BaseRows->items())
          if (BR.find("name") && BR.find("name")->asString() == Name)
            BaseRow = &BR;
      if (!BaseRow || !BaseRow->find("deltaNanos"))
        continue; // New workload: no baseline yet.
      uint64_t Then = BaseRow->find("deltaNanos")->asUint();
      // Floor at 1ms so scheduler noise on trivially fast corpus solves
      // cannot trip the gate; the stressors run well above it.
      if (Now > 2 * Then && Now > 1000000) {
        std::fprintf(stderr,
                     "FAIL: %s cold solve regressed >2x "
                     "(%.1fus -> %.1fus)\n",
                     Name.c_str(), Then / 1e3, Now / 1e3);
        Ok = false;
      }
    }
    if (!Ok)
      return 1;
    std::printf("baseline check passed (%s)\n", BaselinePath.c_str());
  }
  return 0;
}
