//===- bench_simplification.cpp - Query simplification ablation -----------===//
//
// Hypothesis 2 of Sec. 4: disabling query simplification (the
// entailment-based history joins at loop heads and procedure boundaries)
// significantly hurts performance on the computation-heavy apps without
// changing the number of alarms refuted. The paper reports 102.4X slower
// on PulsePoint, 4.3X on SMSPopUp, 3.2X on K9Mail, and out-of-memory on
// StandupTimer (we bound the equivalent blowup by the edge budget rather
// than exhausting memory).
//
// Runs the annotated (Ann?=Y) configuration, as in the paper.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "sym/WitnessSearch.h"

using namespace thresher;
using namespace thresher::bench;

namespace {

/// A program family where simplification pays: K call sites route objects
/// with NESTED points-to sets into a shared sink. Backwards, the search
/// produces K queries that differ only in their instance-constraint
/// regions; the entailment-based history join (Eq. § of Sec. 3.3) keeps
/// only the weakest, while exact-match deduplication keeps all K and
/// re-explores the long shared prefix K times.
std::string nestedRegionApp(int K) {
  // Every path is refutable (the fill is flag-guarded and the flag stays
  // 0), so both configurations explore the full space and the step counts
  // compare like for like. The K mid() call sites produce K backwards
  // queries that differ only in the nested region of the cell base ĥ;
  // with simplification the widest query (the first caller) subsumes the
  // rest at the shared onCreate positions.
  std::string Src = "class H { var f; }\n"
                    "class Flags { static var on = 0; }\n"
                    "class Store { static var cell; }\n"
                    "fun fill(h, a) {\n"
                    "  if (Flags.on != 0) { h.f = a; }\n"
                    "}\n"
                    "fun sink(h) {\n"
                    "  var t = h.f;\n"
                    "  Store.cell = t;\n"
                    "}\n"
                    "fun mid(h) { sink(h); }\n";
  Src += "class NAct extends Activity {\n  onCreate() {\n";
  // Nested points-to sets: pt(v_i) = {s_i .. s_K}.
  Src += "    var v" + std::to_string(K) + " = new H() @s" +
         std::to_string(K) + ";\n";
  for (int I = K - 1; I >= 1; --I) {
    std::string N = std::to_string(I);
    std::string N1 = std::to_string(I + 1);
    Src += "    var v" + N + " = v" + N1 + ";\n";
    Src += "    if (*) { v" + N + " = new H() @s" + N + "; }\n";
  }
  Src += "    fill(v1, this);\n";
  // A loop head between the expensive backwards suffix (chain + fill +
  // harness + clinit) and the K-way split below: histories live at loop
  // heads and procedure boundaries (Sec. 3.3), so this is where the
  // K nested queries can merge — by entailment only.
  Src += "    var w = 0;\n"
         "    while (w < 3) { w = w + 1; }\n";
  for (int I = 1; I <= K; ++I)
    Src += "    mid(v" + std::to_string(I) + ");\n";
  Src += "  }\n}\n";
  Src += "fun main() {\n"
         "  var a = new NAct() @act0;\n"
         "  if (*) { a.onCreate(); }\n"
         "}\n";
  return Src;
}

void runNestedRegionFamily() {
  std::printf("\n=== Simplification on the nested-region family ===\n");
  std::printf("%-6s %12s %12s %10s %12s %12s\n", "K", "steps(on)",
              "steps(off)", "blowup", "Ton(s)", "Toff(s)");
  for (int K : {4, 8, 12, 16}) {
    CompileResult CR = compileAndroidApp(nestedRegionApp(K));
    if (!CR.ok())
      return;
    const Program &P = *CR.Prog;
    auto PTA = PointsToAnalysis(P).run();
    GlobalId Cell = P.findGlobal("Store", "cell");
    AbsLocId S1 = InvalidId;
    for (AbsLocId L = 0; L < PTA->Locs.size(); ++L)
      if (PTA->Locs.label(P, L) == "act0")
        S1 = L;
    uint64_t Steps[2];
    double Secs[2];
    for (bool Simplify : {true, false}) {
      SymOptions Opts;
      Opts.QuerySimplification = Simplify;
      Opts.EdgeBudget = 500000;
      WitnessSearch WS(P, *PTA, Opts);
      Timer T;
      EdgeSearchResult R = WS.searchGlobalEdge(Cell, S1);
      int Idx = Simplify ? 0 : 1;
      Steps[Idx] = R.StepsUsed;
      Secs[Idx] = T.seconds();
    }
    double Blowup =
        Steps[0] > 0 ? static_cast<double>(Steps[1]) / Steps[0] : 0.0;
    std::printf("%-6d %12llu %12llu %9.1fX %12.3f %12.3f\n", K,
                static_cast<unsigned long long>(Steps[0]),
                static_cast<unsigned long long>(Steps[1]), Blowup, Secs[0],
                Secs[1]);
  }
}

} // namespace

int main() {
  std::printf("=== Query simplification ablation (Ann?=Y) ===\n");
  std::printf("%-13s %10s %12s %10s %8s %8s %7s\n", "Benchmark", "Ton(s)",
              "Toff(s)", "slowdown", "TOon", "TOoff", "dRefA");
  for (const AppSpec &Spec : paperBenchmarks()) {
    BenchmarkApp App = buildBenchmarkApp(Spec);
    SymOptions On;
    On.EdgeBudget = Spec.EdgeBudget;
    Row ROn = runConfig(App, /*Annotated=*/true, On);
    SymOptions Off = On;
    Off.QuerySimplification = false;
    Row ROff = runConfig(App, /*Annotated=*/true, Off);
    double Slow = ROn.Seconds > 0 ? ROff.Seconds / ROn.Seconds : 0.0;
    std::printf("%-13s %10.2f %12.2f %9.1fX %8u %8u %+7d\n",
                Spec.Name.c_str(), ROn.Seconds, ROff.Seconds, Slow, ROn.TO,
                ROff.TO,
                static_cast<int>(ROff.RefA) - static_cast<int>(ROn.RefA));
  }
  std::printf("\nPaper reference: 102.4X (PulsePoint), 4.3X (SMSPopUp), "
              "3.2X (K9Mail), OOM (StandupTimer); refuted alarms "
              "unchanged where the run completed.\n");
  runNestedRegionFamily();
  return 0;
}
