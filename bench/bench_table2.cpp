//===- bench_table2.cpp - Reproduce Table 2 -------------------------------===//
//
// Table 2 of the paper: performance of the fully symbolic query
// representation compared to the mixed symbolic-explicit representation
// (hypothesis 1 of Sec. 4). For each benchmark and configuration we run
// the leak client under both representations and report the time, the
// slowdown factor, and the timed-out edge delta.
//
// Paper shape to check: the fully symbolic representation is slower
// (mostly 1.6x-4.1x) and times out on at least as many edges, but does not
// change which alarms are refuted on most apps.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace thresher;
using namespace thresher::bench;

int main() {
  std::printf("=== Table 2: fully symbolic vs mixed representation ===\n");
  std::printf("%-13s %-4s %10s %10s %10s %8s %8s %7s\n", "Benchmark",
              "Ann?", "Tmix(s)", "Tsym(s)", "slowdown", "TOmix", "TOsym",
              "dRefA");
  for (const AppSpec &Spec : paperBenchmarks()) {
    BenchmarkApp App = buildBenchmarkApp(Spec);
    for (bool Ann : {false, true}) {
      SymOptions Mixed;
      Mixed.EdgeBudget = Spec.EdgeBudget;
      Row RM = runConfig(App, Ann, Mixed);
      SymOptions Sym = Mixed;
      Sym.Repr = Representation::FullySymbolic;
      Row RS = runConfig(App, Ann, Sym);
      double Slow = RM.Seconds > 0 ? RS.Seconds / RM.Seconds : 0.0;
      std::printf("%-13s %-4s %10.2f %10.2f %9.1fX %8u %8u %+7d\n",
                  Spec.Name.c_str(), Ann ? "Y" : "N", RM.Seconds,
                  RS.Seconds, Slow, RM.TO, RS.TO,
                  static_cast<int>(RS.RefA) - static_cast<int>(RM.RefA));
    }
  }
  std::printf("\nPaper reference (Table 2, Ann?=N/Y): slowdowns 0.9X-4.1X, "
              "timeouts +0..+6, refuted alarms unchanged.\n");
  return 0;
}
