//===- bench_incremental.cpp - Refutation cache cold/warm/edit ------------===//
//
// Measures what the persistent refutation cache buys on the corpus: for
// every program, a cold run (empty cache), a warm run over unmodified
// source (every consulted edge should hit), and a warm run after a
// one-function edit (only edges whose recorded footprint includes the
// edited function are re-searched). The edit pads the entry function,
// which sits on most footprints — so the "edit" column is close to the
// worst case for incrementality, and the per-edge invalidation counts show
// how much of the store still survives.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "cache/RefutationCache.h"
#include "leak/LeakChecker.h"
#include "support/Timer.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace thresher;

#ifndef THRESHER_CORPUS_DIR
#error "THRESHER_CORPUS_DIR must be defined by the build"
#endif

namespace {

struct CorpusProgram {
  std::string Name;
  std::string Text;
  bool Android = false;
};

std::vector<CorpusProgram> allPrograms() {
  std::vector<CorpusProgram> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(THRESHER_CORPUS_DIR)) {
    if (Entry.path().extension() != ".mj")
      continue;
    CorpusProgram CP;
    CP.Name = Entry.path().stem().string();
    std::ifstream In(Entry.path());
    std::stringstream SS;
    SS << In.rdbuf();
    CP.Text = SS.str();
    CP.Android = CP.Text.find("// ANDROID") != std::string::npos;
    Out.push_back(CP);
  }
  std::sort(Out.begin(), Out.end(),
            [](const CorpusProgram &A, const CorpusProgram &B) {
              return A.Name < B.Name;
            });
  return Out;
}

struct Measurement {
  double Seconds = 0.0;
  LeakReport::CacheSummary Cache;
  uint64_t Searches = 0;
};

/// One cached check of \p Text against the store in \p Dir.
Measurement measure(const std::string &Text, bool Android,
                    const std::string &Dir) {
  CompileResult CR = Android ? compileAndroidApp(Text) : compileMJ(Text);
  if (!CR.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 CR.Errors.empty() ? "?" : CR.Errors[0].c_str());
    std::exit(1);
  }
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();
  ClassId Act = activityBaseClass(P);
  if (Act == InvalidId)
    Act = P.ObjectClass; // Plain programs: treat every allocation as a sink.

  RefutationCache Cache(Dir);
  Cache.load();
  uint64_t Config = RefutationCache::configHash(SymOptions{}, false);

  Measurement M;
  Timer T;
  Cache.validate(P, *PTA, Config);
  LeakChecker LC(P, *PTA, Act, SymOptions{});
  LC.setCache(&Cache, Config, false);
  LeakReport R = LC.run(1);
  M.Seconds = T.seconds(); // Validation + threshing, i.e. the warm path.
  M.Cache = R.Cache;
  M.Searches = LC.stats().get("leak.searches");
  Cache.save();
  return M;
}

} // namespace

int main() {
  std::printf("=== Incremental re-analysis: cold vs. warm vs. one-function "
              "edit ===\n");
  std::printf("(edit = pad the entry function; searches = real witness "
              "searches run)\n");
  std::printf("%-26s %9s %9s %5s %9s %6s %6s %6s\n", "Benchmark", "cold(s)",
              "warm(s)", "hits", "edit(s)", "inval", "hits", "srch");
  double ColdTotal = 0, WarmTotal = 0, EditTotal = 0;
  for (const CorpusProgram &CP : allPrograms()) {
    auto Dir = std::filesystem::temp_directory_path() /
               ("thresher_bench_incremental_" + CP.Name);
    std::filesystem::remove_all(Dir);

    Measurement Cold = measure(CP.Text, CP.Android, Dir.string());
    Measurement Warm = measure(CP.Text, CP.Android, Dir.string());

    // The one-function edit: pad main() with a dead local. Every corpus
    // program declares `fun main()`.
    std::string Edited = CP.Text;
    size_t At = Edited.find("fun main() {");
    if (At == std::string::npos) {
      std::fprintf(stderr, "%s: no 'fun main() {'\n", CP.Name.c_str());
      return 1;
    }
    Edited.replace(At, 12, "fun main() { var __benchpad = 0;");
    Measurement Edit = measure(Edited, CP.Android, Dir.string());

    std::filesystem::remove_all(Dir);
    ColdTotal += Cold.Seconds;
    WarmTotal += Warm.Seconds;
    EditTotal += Edit.Seconds;
    std::printf("%-26s %9.4f %9.4f %5llu %9.4f %6llu %6llu %6llu\n",
                CP.Name.c_str(), Cold.Seconds, Warm.Seconds,
                static_cast<unsigned long long>(Warm.Cache.Hits),
                Edit.Seconds,
                static_cast<unsigned long long>(Edit.Cache.Invalidated),
                static_cast<unsigned long long>(Edit.Cache.Hits),
                static_cast<unsigned long long>(Edit.Searches));
    if (Warm.Searches != 0)
      std::printf("  WARNING: warm run performed %llu searches\n",
                  static_cast<unsigned long long>(Warm.Searches));
  }
  std::printf("%-26s %9.4f %9.4f %5s %9.4f\n", "TOTAL", ColdTotal, WarmTotal,
              "", EditTotal);
  if (ColdTotal > 0 && WarmTotal > 0 && EditTotal > 0)
    std::printf("warm speedup = %.2fX, edit speedup = %.2fX\n",
                ColdTotal / WarmTotal, ColdTotal / EditTotal);
  return 0;
}
