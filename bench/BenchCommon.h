//===- BenchCommon.h - Shared helpers for the bench harnesses ---*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The harnesses consume the machine-readable JSON report (schema
// thresher-report/v1) rather than poking at LeakReport fields directly, so
// every number printed in a table is one that external tooling can extract
// from `thresher check --json` — and every bench run round-trips the
// serializer and parser.
//
//===----------------------------------------------------------------------===//

#ifndef THRESHER_BENCH_BENCHCOMMON_H
#define THRESHER_BENCH_BENCHCOMMON_H

#include "android/Benchmarks.h"
#include "leak/LeakChecker.h"
#include "support/Json.h"
#include "support/Timer.h"

#include <cassert>
#include <cstdio>
#include <string>

namespace thresher {
namespace bench {

/// One Table-1-style measurement row.
struct Row {
  std::string Name;
  bool Annotated = false;
  uint32_t Alarms = 0, RefA = 0, TruA = 0, FalA = 0;
  uint32_t Flds = 0, RefFlds = 0;
  uint32_t RefEdg = 0, WitEdg = 0, TO = 0;
  double Seconds = 0.0;
};

/// Extracts a Table-1-style row from a thresher-report/v1 document.
/// \p TrueLeaks pairs global names with allocation-site labels (the ground
/// truth of seeded leaks) for the TruA/FalA split.
inline Row rowFromJsonReport(
    const JsonValue &Doc, const std::string &Name, bool Annotated,
    const std::vector<std::pair<std::string, std::string>> &TrueLeaks) {
  assert(Doc.findPath("schema") &&
         Doc.findPath("schema")->asString() == LeakChecker::ReportSchemaVersion &&
         "unexpected report schema");
  auto U32 = [&](const char *Path) {
    const JsonValue *V = Doc.findPath(Path);
    return V ? static_cast<uint32_t>(V->asUint()) : 0u;
  };
  Row Out;
  Out.Name = Name;
  Out.Annotated = Annotated;
  Out.Alarms = U32("summary.alarms");
  Out.RefA = U32("summary.refutedAlarms");
  Out.Flds = U32("summary.fields");
  Out.RefFlds = U32("summary.refutedFields");
  Out.RefEdg = U32("summary.edges.refuted");
  Out.WitEdg = U32("summary.edges.witnessed");
  Out.TO = U32("summary.edges.timeout");
  if (const JsonValue *Secs = Doc.findPath("effort.seconds"))
    Out.Seconds = Secs->asDouble();
  if (const JsonValue *Alarms = Doc.findPath("alarms")) {
    for (const JsonValue &A : Alarms->items()) {
      const JsonValue *Status = A.find("status");
      const JsonValue *Source = A.find("source");
      const JsonValue *Activity = A.find("activity");
      if (!Status || !Source || !Activity ||
          Status->asString() == "REFUTED")
        continue;
      for (const auto &[GlobalName, SiteLabel] : TrueLeaks) {
        if (Source->asString() == GlobalName &&
            Activity->asString() == SiteLabel) {
          ++Out.TruA;
          break;
        }
      }
    }
  }
  Out.FalA = Out.Alarms - Out.RefA - Out.TruA;
  return Out;
}

/// Runs the full pipeline for \p App in the given configuration and builds
/// the row from the (serialized and re-parsed) JSON report.
inline Row runConfig(const BenchmarkApp &App, bool Annotated,
                     SymOptions SymOpts, unsigned Threads = 1) {
  PTAOptions PtaOpts;
  if (Annotated)
    annotateHashMapEmptyTable(*App.Prog, PtaOpts);
  auto PTA = PointsToAnalysis(*App.Prog, PtaOpts).run();
  LeakChecker LC(*App.Prog, *PTA, App.ActivityBase, SymOpts);
  LeakReport R = LC.run(Threads);
  // Round-trip the report through its wire format so the benches measure
  // exactly what external consumers of `thresher check --json` see.
  std::string Wire = LC.buildJsonReport(R).toString();
  JsonValue Doc;
  std::string Error;
  bool Ok = parseJson(Wire, Doc, &Error);
  assert(Ok && "report did not round-trip");
  (void)Ok;
  std::vector<std::pair<std::string, std::string>> TrueLeaks;
  for (const auto &[G, SiteLabel] : App.TrueLeaks)
    TrueLeaks.push_back({App.Prog->globalName(G), SiteLabel});
  return rowFromJsonReport(Doc, App.Spec.Name, Annotated, TrueLeaks);
}

inline void printRowHeader() {
  std::printf("%-13s %-4s %6s %6s %6s %6s %6s %8s %7s %7s %4s %9s\n",
              "Benchmark", "Ann?", "Alrms", "RefA", "TruA", "FalA", "Flds",
              "RefFlds", "RefEdg", "WitEdg", "TO", "T(s)");
}

inline void printRow(const Row &R) {
  std::printf("%-13s %-4s %6u %6u %6u %6u %6u %8u %7u %7u %4u %9.2f\n",
              R.Name.c_str(), R.Annotated ? "Y" : "N", R.Alarms, R.RefA,
              R.TruA, R.FalA, R.Flds, R.RefFlds, R.RefEdg, R.WitEdg, R.TO,
              R.Seconds);
}

} // namespace bench
} // namespace thresher

#endif // THRESHER_BENCH_BENCHCOMMON_H
