//===- BenchCommon.h - Shared helpers for the bench harnesses ---*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef THRESHER_BENCH_BENCHCOMMON_H
#define THRESHER_BENCH_BENCHCOMMON_H

#include "android/Benchmarks.h"
#include "leak/LeakChecker.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>

namespace thresher {
namespace bench {

/// One Table-1-style measurement row.
struct Row {
  std::string Name;
  bool Annotated = false;
  uint32_t Alarms = 0, RefA = 0, TruA = 0, FalA = 0;
  uint32_t Flds = 0, RefFlds = 0;
  uint32_t RefEdg = 0, WitEdg = 0, TO = 0;
  double Seconds = 0.0;
};

/// Runs the full pipeline for \p App in the given configuration.
inline Row runConfig(const BenchmarkApp &App, bool Annotated,
                     SymOptions SymOpts) {
  PTAOptions PtaOpts;
  if (Annotated)
    annotateHashMapEmptyTable(*App.Prog, PtaOpts);
  auto PTA = PointsToAnalysis(*App.Prog, PtaOpts).run();
  LeakChecker LC(*App.Prog, *PTA, App.ActivityBase, SymOpts);
  LeakReport R = LC.run();
  Row Out;
  Out.Name = App.Spec.Name;
  Out.Annotated = Annotated;
  Out.Alarms = R.NumAlarms;
  Out.RefA = R.RefutedAlarms;
  Out.TruA = R.countTrue(*App.Prog, PTA->Locs, App.TrueLeaks);
  Out.FalA = R.NumAlarms - R.RefutedAlarms - Out.TruA;
  Out.Flds = R.Fields;
  Out.RefFlds = R.RefutedFields;
  Out.RefEdg = R.RefutedEdges;
  Out.WitEdg = R.WitnessedEdges;
  Out.TO = R.TimeoutEdges;
  Out.Seconds = R.Seconds;
  return Out;
}

inline void printRowHeader() {
  std::printf("%-13s %-4s %6s %6s %6s %6s %6s %8s %7s %7s %4s %9s\n",
              "Benchmark", "Ann?", "Alrms", "RefA", "TruA", "FalA", "Flds",
              "RefFlds", "RefEdg", "WitEdg", "TO", "T(s)");
}

inline void printRow(const Row &R) {
  std::printf("%-13s %-4s %6u %6u %6u %6u %6u %8u %7u %7u %4u %9.2f\n",
              R.Name.c_str(), R.Annotated ? "Y" : "N", R.Alarms, R.RefA,
              R.TruA, R.FalA, R.Flds, R.RefFlds, R.RefEdg, R.WitEdg, R.TO,
              R.Seconds);
}

} // namespace bench
} // namespace thresher

#endif // THRESHER_BENCH_BENCHCOMMON_H
