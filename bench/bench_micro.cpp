//===- bench_micro.cpp - Microbenchmarks (google-benchmark) ---------------===//
//
// Throughput microbenchmarks for the substrate components: frontend
// compilation, points-to solving, pure-constraint satisfiability, and
// witness-refutation search. These are not paper experiments; they track
// the performance of the pieces the experiments are built from.
//
//===----------------------------------------------------------------------===//

#include "android/Benchmarks.h"
#include "interp/Interp.h"
#include "leak/LeakChecker.h"
#include "solver/Pure.h"

#include <benchmark/benchmark.h>

using namespace thresher;

namespace {

const AppSpec &k9Spec() {
  static std::vector<AppSpec> Specs = paperBenchmarks();
  for (const AppSpec &S : Specs)
    if (S.Name == "K9Mail")
      return S;
  return Specs.back();
}

void BM_FrontendCompile(benchmark::State &State) {
  std::string Src = generateAppSource(k9Spec());
  for (auto _ : State) {
    CompileResult R = compileAndroidApp(Src);
    benchmark::DoNotOptimize(R.Prog);
  }
}
BENCHMARK(BM_FrontendCompile);

void BM_PointsToSolve(benchmark::State &State) {
  BenchmarkApp App = buildBenchmarkApp(k9Spec());
  for (auto _ : State) {
    auto PTA = PointsToAnalysis(*App.Prog).run();
    benchmark::DoNotOptimize(PTA->numEdges());
  }
}
BENCHMARK(BM_PointsToSolve);

void BM_PureSolverSat(benchmark::State &State) {
  PureConstraints P;
  P.addCmp(PureTerm::mkVar(0), RelOp::LT, PureTerm::mkVar(1), true);
  P.addCmp(PureTerm::mkVar(1), RelOp::LE, PureTerm::mkVar(2, -1), false);
  P.addCmp(PureTerm::mkVar(2), RelOp::EQ, PureTerm::mkConst(7), false);
  P.addCmp(PureTerm::mkVar(0), RelOp::NE, PureTerm::mkVar(2), false);
  for (auto _ : State)
    benchmark::DoNotOptimize(P.isSatisfiable());
}
BENCHMARK(BM_PureSolverSat);

void BM_WitnessRefuteFlagEdge(benchmark::State &State) {
  // The latent-flag refutation: a short interprocedural path-sensitive
  // search ending in a pure contradiction.
  const char *App = R"MJ(
class DAO {
  static var cached;
  static var enabled = 0;
  static cache(o) { if (DAO.enabled != 0) { DAO.cached = o; } }
}
class TAct extends Activity { onCreate() { DAO.cache(this); } }
fun main() { var a = new TAct() @act0; if (*) { a.onCreate(); } }
)MJ";
  CompileResult CR = compileAndroidApp(App);
  auto PTA = PointsToAnalysis(*CR.Prog).run();
  GlobalId G = CR.Prog->findGlobal("DAO", "cached");
  AbsLocId Act = InvalidId;
  for (AbsLocId L = 0; L < PTA->Locs.size(); ++L)
    if (PTA->Locs.label(*CR.Prog, L) == "act0")
      Act = L;
  for (auto _ : State) {
    WitnessSearch WS(*CR.Prog, *PTA);
    EdgeSearchResult R = WS.searchGlobalEdge(G, Act);
    benchmark::DoNotOptimize(R.Outcome);
  }
}
BENCHMARK(BM_WitnessRefuteFlagEdge);

void BM_WitnessRefuteFig1Edge(benchmark::State &State) {
  // The Fig. 1 refutation: strong updates + path sensitivity + the copy
  // loop's invariant inference.
  const char *App = R"MJ(
class Act extends Activity {
  static var objs = new Vec() @vec0;
  onCreate() {
    var acts = new Vec() @vec1;
    acts.push(this);
    var o = Act.objs;
    o.push("hello");
  }
}
fun main() { var a = new Act() @act0; a.onCreate(); }
)MJ";
  CompileResult CR = compileAndroidApp(App);
  auto PTA = PointsToAnalysis(*CR.Prog).run();
  AbsLocId Arr = InvalidId, Act = InvalidId;
  for (AbsLocId L = 0; L < PTA->Locs.size(); ++L) {
    if (PTA->Locs.label(*CR.Prog, L) == "vecEmpty")
      Arr = L;
    if (PTA->Locs.label(*CR.Prog, L) == "act0")
      Act = L;
  }
  for (auto _ : State) {
    WitnessSearch WS(*CR.Prog, *PTA);
    EdgeSearchResult R = WS.searchFieldEdge(Arr, CR.Prog->ElemsField, Act);
    benchmark::DoNotOptimize(R.Outcome);
  }
}
BENCHMARK(BM_WitnessRefuteFig1Edge);

void BM_InterpreterRun(benchmark::State &State) {
  BenchmarkApp App = buildBenchmarkApp(k9Spec());
  for (auto _ : State) {
    InterpOptions O;
    O.HavocProvider = []() { return 0; };
    O.RecordWrites = false;
    Interpreter I(*App.Prog, O);
    InterpResult R = I.run();
    benchmark::DoNotOptimize(R.Steps);
  }
}
BENCHMARK(BM_InterpreterRun);

} // namespace

BENCHMARK_MAIN();
