//===- bench_subsume.cpp - Search-reducer stressor (slice + registry) -----===//
//
// Stressor for the two composing search reducers: the forward
// reachability slice (pta/ForwardSlice.h) and the global cross-edge
// subsumption registry (sym/Subsume.h).
//
// The workload makes every candidate edge's backwards search walk the
// same expensive prefix — a stack of branchy counting loops in main, each
// of which costs a loop-invariant inference pass to cross — via two
// families of feeder functions that load a not-yet-published holder and
// store a fresh object into one of its fields:
//
//   fun feedJ() { var t = Sink.holdK; t.fJ = new Act() @fedJ; }
//
// Every hK.fJ -> fedJ search discharges its target inside the feeder and
// carries the SAME residue into main — {Sink.holdK -> T, T in {hK}} —
// which is only refuted at main's entry (the holder global is still null
// there). The residue is identical across a family's feeders, so with the
// registry on the first feeder pays the loop walk, publishes its refuted
// loop-head queries, and the rest refute at their first loop-head probe.
// The two families differ in where the holder is allocated:
//
//  - family A: holder @h1 allocated AFTER the loops and the feeder calls.
//    The feeders' call sites sit before the allocation — outside the
//    forward slice — so the slice refutes them instantly; with it off,
//    each walks the whole loop stack.
//
//  - family B: holder @h2 allocated BEFORE the loops. The slice is
//    powerless until the walk reaches main's first block, so these edges
//    pay the loop walk in every corner EXCEPT when the registry prunes
//    them — guaranteeing registry hits even with both reducers on.
//
// Gates (the CI perf-smoke contract):
//  - both-on vs both-off wall speedup >= 1.3x,
//  - par.registryHits > 0 and sym.refute.slice > 0 on the both-on run
//    (a reducer that never fires makes the speedup gate meaningless),
//  - --check-baseline FILE: both-on wall regressed > 2x vs the checked-in
//    baseline (1ms floor) fails the run.
//
// --json FILE writes a thresher-bench-subsume/v1 document with the four
// reducer-corner walls and the both-on reducer counters.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <fstream>
#include <sstream>

using namespace thresher;
using namespace thresher::bench;

namespace {

std::string makeReducerStressor(unsigned Loops, unsigned FeedersPerFamily) {
  std::ostringstream OS;
  OS << "class Act extends Activity { }\n";
  OS << "container class Holder {";
  for (unsigned J = 0; J < FeedersPerFamily; ++J)
    OS << " var f" << J << ";";
  OS << " }\n";
  OS << "class Sink { static var hold1; static var hold2; }\n";
  // Feeders: the heap-loaded base keeps an instance constraint alive into
  // the caller; the fresh target dies inside the feeder, so every feeder
  // of a family leaves the identical residue {holdK -> T, T in {hK}}.
  for (unsigned J = 0; J < FeedersPerFamily; ++J) {
    OS << "fun feedA" << J << "() {\n";
    OS << "  var t = Sink.hold1;\n";
    OS << "  t.f" << J << " = new Act() @fedA" << J << ";\n";
    OS << "}\n";
    OS << "fun feedB" << J << "() {\n";
    OS << "  var t = Sink.hold2;\n";
    OS << "  t.f" << J << " = new Act() @fedB" << J << ";\n";
    OS << "}\n";
  }
  OS << "fun main() {\n";
  // Family B's holder: allocated before the loops, so the forward slice
  // cannot prune B-feeder walks until main's first block.
  OS << "  var h2 = new Holder() @h2;\n";
  // The expensive shared prefix: branchy counting loops, each costing a
  // loop-invariant inference pass to cross backwards.
  // One nondet arm per body: two arms per crossing squares the path
  // count and blows every feeder edge past any reasonable budget, while
  // one arm keeps the whole stack refutable in seconds.
  for (unsigned L = 0; L < Loops; ++L) {
    OS << "  var i" << L << " = 0;\n";
    OS << "  while (i" << L << " < 8) {\n";
    OS << "    if (*) { i" << L << " = i" << L << " + 1; }\n";
    OS << "    i" << L << " = i" << L << " + 1;\n";
    OS << "  }\n";
  }
  for (unsigned J = 0; J < FeedersPerFamily; ++J) {
    OS << "  feedA" << J << "();\n";
    OS << "  feedB" << J << "();\n";
  }
  // Family A's holder: allocated after the feeder calls, so every
  // A-feeder continuation sits outside its forward slice.
  OS << "  var h1 = new Holder() @h1;\n";
  OS << "  Sink.hold1 = h1;\n";
  OS << "  Sink.hold2 = h2;\n";
  OS << "}\n";
  return OS.str();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath, BaselinePath;
  unsigned Reps = 3;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (A == "--check-baseline" && I + 1 < Argc)
      BaselinePath = Argv[++I];
    else if (A == "--reps" && I + 1 < Argc)
      Reps = std::max(1, std::atoi(Argv[++I]));
    else {
      std::fprintf(stderr, "usage: bench_subsume [--json FILE] "
                           "[--check-baseline FILE] [--reps N]\n");
      return 2;
    }
  }

  std::string Src = makeReducerStressor(/*Loops=*/2, /*FeedersPerFamily=*/5);
  CompileResult CR = compileAndroidApp(Src);
  if (!CR.ok()) {
    std::fprintf(stderr, "stressor compile error: %s\n",
                 CR.Errors.empty() ? "?" : CR.Errors[0].c_str());
    return 1;
  }
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();
  ClassId Act = activityBaseClass(P);

  struct Corner {
    const char *Name;
    bool Slice;
    bool Subsume;
  };
  const Corner Corners[] = {{"off_off", false, false},
                            {"slice_only", true, false},
                            {"subsume_only", false, true},
                            {"on_on", true, true}};

  std::map<std::string, uint64_t> Counters;
  uint64_t Walls[4] = {0, 0, 0, 0};
  for (int C = 0; C < 4; ++C) {
    uint64_t Best = UINT64_MAX;
    // The reduced corners repeat; the expensive both-off baseline makes
    // its point in one rep (mirroring bench_parallel's stuck corner).
    unsigned CornerReps = C == 0 ? 1 : Reps;
    for (unsigned R = 0; R < CornerReps; ++R) {
      SymOptions SO;
      SO.ForwardSlice = Corners[C].Slice;
      SO.GlobalSubsume = Corners[C].Subsume;
      LeakChecker LC(P, *PTA, Act, SO);
      Timer T;
      LeakReport Rep = LC.run(1);
      uint64_t Nanos = static_cast<uint64_t>(T.seconds() * 1e9);
      Best = std::min(Best, Nanos);
      if (Rep.NumAlarms == 0)
        std::fprintf(stderr, "warning: stressor produced no alarms\n");
      if (C == 3 && R + 1 == CornerReps)
        for (const auto &[Name, Value] : LC.stats().counterSnapshot())
          if (Name.rfind("par.registry", 0) == 0 ||
              Name == "sym.refute.slice" || Name == "sym.subsumedGlobal" ||
              Name == "sym.pathsRefuted")
            Counters[Name] = Value;
    }
    Walls[C] = Best;
  }

  double Speedup =
      Walls[3] ? double(Walls[0]) / double(Walls[3]) : 0.0;
  std::printf("=== Search-reducer stressor (forward slice + global "
              "subsumption) ===\n");
  std::printf("%-14s %10s\n", "corner", "wall(ms)");
  for (int C = 0; C < 4; ++C)
    std::printf("%-14s %10.2f\n", Corners[C].Name, Walls[C] / 1e6);
  std::printf("both-on speedup %.2fx (registryHits=%llu, "
              "sliceRefutes=%llu)\n",
              Speedup,
              static_cast<unsigned long long>(
                  Counters["par.registryHits"]),
              static_cast<unsigned long long>(
                  Counters["sym.refute.slice"]));

  if (!JsonPath.empty()) {
    JsonValue Doc = JsonValue::makeObject();
    Doc.set("schema", JsonValue::makeString("thresher-bench-subsume/v1"));
    Doc.set("reps", JsonValue::makeUint(Reps));
    JsonValue Rows = JsonValue::makeArray();
    JsonValue Row = JsonValue::makeObject();
    Row.set("name", JsonValue::makeString("reducer_stressor"));
    for (int C = 0; C < 4; ++C)
      Row.set(std::string(Corners[C].Name) + "Nanos",
              JsonValue::makeUint(Walls[C]));
    Row.set("speedup", JsonValue::makeDouble(Speedup));
    JsonValue Cs = JsonValue::makeObject();
    for (const auto &[Name, Value] : Counters)
      Cs.set(Name, JsonValue::makeUint(Value));
    Row.set("counters", std::move(Cs));
    Rows.append(std::move(Row));
    Doc.set("workloads", std::move(Rows));
    std::ofstream Out(JsonPath);
    Doc.write(Out, 2);
    Out << "\n";
  }

  bool Fail = false;
  if (Counters["par.registryHits"] == 0) {
    std::fprintf(stderr, "FAIL: registry never hit on the stressor\n");
    Fail = true;
  }
  if (Counters["sym.refute.slice"] == 0) {
    std::fprintf(stderr, "FAIL: forward slice never fired on the "
                         "stressor\n");
    Fail = true;
  }
  if (Speedup < 1.3) {
    std::fprintf(stderr,
                 "FAIL: both-on speedup %.2fx below the 1.3x gate\n",
                 Speedup);
    Fail = true;
  }
  if (!Fail)
    std::printf("reducer gates passed (speedup %.2fx >= 1.3x, both "
                "reducers fired)\n",
                Speedup);

  if (!BaselinePath.empty()) {
    std::ifstream In(BaselinePath);
    if (!In) {
      std::fprintf(stderr, "cannot open baseline '%s'\n",
                   BaselinePath.c_str());
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    JsonValue Base;
    std::string Err;
    if (!parseJson(SS.str(), Base, &Err)) {
      std::fprintf(stderr, "bad baseline JSON: %s\n", Err.c_str());
      return 1;
    }
    const JsonValue *BaseRows = Base.find("workloads");
    const JsonValue *BaseRow = nullptr;
    if (BaseRows)
      for (const JsonValue &BR : BaseRows->items())
        if (BR.find("name") &&
            BR.find("name")->asString() == "reducer_stressor")
          BaseRow = &BR;
    if (BaseRow && BaseRow->find("on_onNanos")) {
      uint64_t Then = BaseRow->find("on_onNanos")->asUint();
      // 1ms floor, mirroring bench_parallel's contract: scheduler noise
      // on trivially fast runs must not trip the gate.
      if (Walls[3] > 2 * Then && Walls[3] > 1000000) {
        std::fprintf(stderr,
                     "FAIL: both-on wall regressed >2x "
                     "(%.1fms -> %.1fms)\n",
                     Then / 1e6, Walls[3] / 1e6);
        return 1;
      }
    }
    std::printf("baseline check passed (%s)\n", BaselinePath.c_str());
  }
  return Fail ? 1 : 0;
}
