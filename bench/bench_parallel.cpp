//===- bench_parallel.cpp - Parallel threshing (paper extension) ----------===//
//
// Sec. 4 of the paper: "Though our analysis is quite amenable to
// parallelization in theory, our current implementation is purely
// sequential." This harness realizes the parallelization at both levels:
//
//  - Inter-edge: candidate edges are threshed concurrently by workers with
//    independent WitnessSearch instances, then the sequential path
//    algorithm consumes the cache (the first table, over the paper
//    benchmarks).
//  - Intra-edge: one edge's backwards-search frontier is explored by a
//    speculate-ahead worker pool (--search-threads; the skewed stressor
//    below, where a single hot edge dominates and inter-edge parallelism
//    is structurally useless).
//
// Verdicts, per-edge verdicts, and the consulted-edge counts are identical
// by construction for every thread configuration (pinned by
// tests/parallel_diff_test); only wall-clock and the eager prefetch total
// vary.
//
// --json FILE writes a thresher-bench-parallel/v1 document with the
// stressor's wall times, speedups, and par.* scheduling counters.
// --check-baseline FILE compares the sequential stressor wall time
// against a previously recorded document and exits nonzero on a >2x
// regression (1ms floor — the CI perf-smoke contract). Independently of
// any baseline, the stressor fails the run when the 4-search-thread
// speedup drops below 1.8x, provided the host actually has >= 4 hardware
// threads (on smaller hosts the gate is reported as skipped).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <fstream>
#include <sstream>
#include <thread>

using namespace thresher;
using namespace thresher::bench;

namespace {

/// The skewed stressor: the Fig. 1 Vec pattern scaled until one hot edge
/// dominates the whole run. Every feedN helper funnels a string (or a
/// decoy object, behind nondeterministic branches inside a loop) into the
/// single static Vec, so the backwards search from the one producing
/// store inside Vec.push fans out over all the call sites at function
/// entry — a wide frontier of independent, individually expensive
/// subsearches (loop invariant inference plus ever-growing subsumption
/// scans), all charged to one edge. Inter-edge workers cannot split that;
/// only the intra-edge pool can.
std::string makeSkewedHotEdge(unsigned Helpers, unsigned Iters) {
  std::ostringstream OS;
  OS << "class Act extends Activity {\n";
  OS << "  static var objs = new Vec() @vecS;\n";
  OS << "  onCreate() {\n";
  OS << "    var acts = new Vec() @vecL;\n";
  OS << "    acts.push(this);\n";
  OS << "  }\n";
  OS << "}\n";
  for (unsigned H = 0; H < Helpers; ++H) {
    OS << "fun feed" << H << "() {\n";
    OS << "  var x = \"s" << H << "\";\n";
    OS << "  var t = new Object() @t" << H << ";\n";
    OS << "  var i = 0;\n";
    OS << "  while (i < " << Iters << ") {\n";
    OS << "    if (*) { x = t; }\n";
    OS << "    i = i + 1;\n";
    OS << "  }\n";
    OS << "  var o = Act.objs;\n";
    OS << "  o.push(x);\n";
    OS << "}\n";
  }
  OS << "fun main() {\n";
  OS << "  var a = new Act() @act0;\n";
  OS << "  a.onCreate();\n";
  for (unsigned H = 0; H < Helpers; ++H)
    OS << "  feed" << H << "();\n";
  OS << "}\n";
  return OS.str();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath, BaselinePath;
  unsigned Reps = 3;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--json" && I + 1 < Argc)
      JsonPath = Argv[++I];
    else if (A == "--check-baseline" && I + 1 < Argc)
      BaselinePath = Argv[++I];
    else if (A == "--reps" && I + 1 < Argc)
      Reps = std::max(1, std::atoi(Argv[++I]));
    else {
      std::fprintf(stderr,
                   "usage: bench_parallel [--json FILE] "
                   "[--check-baseline FILE] [--reps N]\n");
      return 2;
    }
  }

  unsigned HW = std::max(2u, std::thread::hardware_concurrency());
  std::printf("=== Parallel threshing (Ann?=Y, %u hardware threads) ===\n",
              HW);
  std::printf("Note: the parallel mode eagerly threshes EVERY candidate "
              "edge (prefetch4 below), while the sequential order consults "
              "only edges on live paths (consulted — identical for every "
              "thread count). Wall-clock wins therefore need cores > "
              "extra-work factor.\n");
  std::printf("%-13s %10s %10s %10s %10s %10s %10s\n", "Benchmark", "T1(s)",
              "consulted", "T2(s)", "T4(s)", "prefetch4", "speedup4");
  for (const AppSpec &Spec : paperBenchmarks()) {
    BenchmarkApp App = buildBenchmarkApp(Spec);
    PTAOptions PtaOpts;
    annotateHashMapEmptyTable(*App.Prog, PtaOpts);
    auto PTA = PointsToAnalysis(*App.Prog, PtaOpts).run();
    SymOptions SymOpts;
    SymOpts.EdgeBudget = Spec.EdgeBudget;
    double Secs[3];
    uint64_t Consulted[3];
    uint64_t Prefetched[3];
    unsigned ThreadCounts[3] = {1, 2, 4};
    for (int I = 0; I < 3; ++I) {
      LeakChecker LC(*App.Prog, *PTA, App.ActivityBase, SymOpts);
      Timer T;
      LeakReport R = LC.run(ThreadCounts[I]);
      Secs[I] = T.seconds();
      // Read the totals off the wire format, like any external consumer.
      JsonValue Doc = LC.buildJsonReport(R);
      Consulted[I] = Doc.findPath("summary.edges.consulted")->asUint();
      Prefetched[I] = Doc.findPath("effort.prefetchedEdges")->asUint();
    }
    std::printf("%-13s %10.2f %10llu %10.2f %10.2f %10llu %9.1fX\n",
                Spec.Name.c_str(), Secs[0],
                static_cast<unsigned long long>(Consulted[0]), Secs[1],
                Secs[2], static_cast<unsigned long long>(Prefetched[2]),
                Secs[2] > 0 ? Secs[0] / Secs[2] : 0.0);
  }

  //===------------------------------------------------------------------===//
  // Skewed stressor: one hot edge, intra-edge parallelism only.
  //===------------------------------------------------------------------===//

  std::printf("\n=== Skewed stressor: one hot edge "
              "(intra-edge work stealing) ===\n");
  std::string Src = makeSkewedHotEdge(/*Helpers=*/40, /*Iters=*/4);
  CompileResult CR = compileAndroidApp(Src);
  if (!CR.ok()) {
    std::fprintf(stderr, "stressor compile error: %s\n",
                 CR.Errors.empty() ? "?" : CR.Errors[0].c_str());
    return 1;
  }
  const Program &P = *CR.Prog;
  auto PTA = PointsToAnalysis(P).run();
  ClassId Act = activityBaseClass(P);

  // Best-of-reps wall for one full governed-free run at the given thread
  // configuration; the last rep's stats snapshot is kept for the counters.
  std::map<std::string, uint64_t> Counters;
  auto measureNanos = [&](unsigned EdgeThreads, unsigned SearchThreads,
                          unsigned RepCount, bool KeepCounters = false) {
    uint64_t Best = UINT64_MAX;
    for (unsigned R = 0; R < RepCount; ++R) {
      SymOptions SO;
      SO.EdgeBudget = 400000;
      SO.SearchThreads = SearchThreads;
      LeakChecker LC(P, *PTA, Act, SO);
      Timer T;
      LeakReport Rep = LC.run(EdgeThreads);
      uint64_t Nanos = static_cast<uint64_t>(T.seconds() * 1e9);
      if (Rep.NumAlarms == 0)
        std::fprintf(stderr, "warning: stressor produced no alarms\n");
      Best = std::min(Best, Nanos);
      if (KeepCounters && R + 1 == RepCount)
        for (const auto &[Name, Value] : LC.stats().counterSnapshot())
          if (Name.rfind("par.", 0) == 0 || Name == "sym.queriesProcessed")
            Counters[Name] = Value;
    }
    return Best;
  };

  uint64_t T1 = measureNanos(1, 1, Reps);
  // Edge workers alone are structurally stuck on one hot edge (and pay
  // for eagerly threshing every candidate); one rep makes the point.
  uint64_t E4 = measureNanos(4, 1, 1);
  uint64_t S2 = measureNanos(1, 2, Reps);
  uint64_t S4 = measureNanos(1, 4, Reps, /*KeepCounters=*/true);
  double SpeedupE4 = E4 ? double(T1) / double(E4) : 0.0;
  double SpeedupS2 = S2 ? double(T1) / double(S2) : 0.0;
  double SpeedupS4 = S4 ? double(T1) / double(S4) : 0.0;
  std::printf("%-22s %10s %10s %10s %10s\n", "workload", "T1(s)",
              "edge4(s)", "search2(s)", "search4(s)");
  std::printf("%-22s %10.2f %10.2f %10.2f %10.2f\n", "skewed_hot_edge",
              T1 / 1e9, E4 / 1e9, S2 / 1e9, S4 / 1e9);
  std::printf("speedups: edge4 %.2fx, search2 %.2fx, search4 %.2fx "
              "(steals=%llu, waves=%llu, skipped=%llu)\n",
              SpeedupE4, SpeedupS2, SpeedupS4,
              static_cast<unsigned long long>(Counters["par.steals"]),
              static_cast<unsigned long long>(Counters["par.waves"]),
              static_cast<unsigned long long>(Counters["par.itemsSkipped"]));

  if (!JsonPath.empty()) {
    JsonValue Doc = JsonValue::makeObject();
    Doc.set("schema", JsonValue::makeString("thresher-bench-parallel/v1"));
    Doc.set("reps", JsonValue::makeUint(Reps));
    Doc.set("hardwareThreads", JsonValue::makeUint(HW));
    JsonValue Rows = JsonValue::makeArray();
    JsonValue Row = JsonValue::makeObject();
    Row.set("name", JsonValue::makeString("skewed_hot_edge"));
    Row.set("t1Nanos", JsonValue::makeUint(T1));
    Row.set("edge4Nanos", JsonValue::makeUint(E4));
    Row.set("search2Nanos", JsonValue::makeUint(S2));
    Row.set("search4Nanos", JsonValue::makeUint(S4));
    Row.set("search4Speedup", JsonValue::makeDouble(SpeedupS4));
    JsonValue Cs = JsonValue::makeObject();
    for (const auto &[Name, Value] : Counters)
      Cs.set(Name, JsonValue::makeUint(Value));
    Row.set("counters", std::move(Cs));
    Rows.append(std::move(Row));
    Doc.set("workloads", std::move(Rows));
    std::ofstream Out(JsonPath);
    Doc.write(Out, 2);
    Out << "\n";
  }

  // The speedup gate only means something when the host can actually run
  // four search workers in parallel.
  if (std::thread::hardware_concurrency() >= 4) {
    if (SpeedupS4 < 1.8) {
      std::fprintf(stderr,
                   "FAIL: skewed stressor search4 speedup %.2fx below "
                   "1.8x\n",
                   SpeedupS4);
      return 1;
    }
    std::printf("search4 speedup gate passed (%.2fx >= 1.8x)\n", SpeedupS4);
  } else {
    std::printf("search4 speedup gate skipped (%u hardware threads < 4)\n",
                std::thread::hardware_concurrency());
  }

  if (!BaselinePath.empty()) {
    std::ifstream In(BaselinePath);
    if (!In) {
      std::fprintf(stderr, "cannot open baseline '%s'\n",
                   BaselinePath.c_str());
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    JsonValue Base;
    std::string Err;
    if (!parseJson(SS.str(), Base, &Err)) {
      std::fprintf(stderr, "bad baseline JSON: %s\n", Err.c_str());
      return 1;
    }
    const JsonValue *BaseRows = Base.find("workloads");
    const JsonValue *BaseRow = nullptr;
    if (BaseRows)
      for (const JsonValue &BR : BaseRows->items())
        if (BR.find("name") &&
            BR.find("name")->asString() == "skewed_hot_edge")
          BaseRow = &BR;
    if (BaseRow && BaseRow->find("t1Nanos")) {
      uint64_t Then = BaseRow->find("t1Nanos")->asUint();
      // Floor at 1ms, mirroring bench_pta's contract, so scheduler noise
      // on trivially fast runs cannot trip the gate.
      if (T1 > 2 * Then && T1 > 1000000) {
        std::fprintf(stderr,
                     "FAIL: skewed stressor sequential wall regressed >2x "
                     "(%.1fms -> %.1fms)\n",
                     Then / 1e6, T1 / 1e6);
        return 1;
      }
    }
    std::printf("baseline check passed (%s)\n", BaselinePath.c_str());
  }
  return 0;
}
