//===- bench_parallel.cpp - Parallel threshing (paper extension) ----------===//
//
// Sec. 4 of the paper: "Though our analysis is quite amenable to
// parallelization in theory, our current implementation is purely
// sequential." This harness realizes the parallelization: candidate edges
// are threshed concurrently by workers with independent WitnessSearch
// instances, then the sequential path algorithm consumes the cache.
// Verdicts, per-edge verdicts, and the consulted-edge counts are identical
// by construction (pinned by tests/parallel_diff_test); only wall-clock
// and the eager prefetch total vary.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <thread>

using namespace thresher;
using namespace thresher::bench;

int main() {
  unsigned HW = std::max(2u, std::thread::hardware_concurrency());
  std::printf("=== Parallel threshing (Ann?=Y, %u hardware threads) ===\n",
              HW);
  std::printf("Note: the parallel mode eagerly threshes EVERY candidate "
              "edge (prefetch4 below), while the sequential order consults "
              "only edges on live paths (consulted — identical for every "
              "thread count). Wall-clock wins therefore need cores > "
              "extra-work factor.\n");
  std::printf("%-13s %10s %10s %10s %10s %10s %10s\n", "Benchmark", "T1(s)",
              "consulted", "T2(s)", "T4(s)", "prefetch4", "speedup4");
  for (const AppSpec &Spec : paperBenchmarks()) {
    BenchmarkApp App = buildBenchmarkApp(Spec);
    PTAOptions PtaOpts;
    annotateHashMapEmptyTable(*App.Prog, PtaOpts);
    auto PTA = PointsToAnalysis(*App.Prog, PtaOpts).run();
    SymOptions SymOpts;
    SymOpts.EdgeBudget = Spec.EdgeBudget;
    double Secs[3];
    uint64_t Consulted[3];
    uint64_t Prefetched[3];
    unsigned ThreadCounts[3] = {1, 2, 4};
    for (int I = 0; I < 3; ++I) {
      LeakChecker LC(*App.Prog, *PTA, App.ActivityBase, SymOpts);
      Timer T;
      LeakReport R = LC.run(ThreadCounts[I]);
      Secs[I] = T.seconds();
      // Read the totals off the wire format, like any external consumer.
      JsonValue Doc = LC.buildJsonReport(R);
      Consulted[I] = Doc.findPath("summary.edges.consulted")->asUint();
      Prefetched[I] = Doc.findPath("effort.prefetchedEdges")->asUint();
    }
    std::printf("%-13s %10.2f %10llu %10.2f %10.2f %10llu %9.1fX\n",
                Spec.Name.c_str(), Secs[0],
                static_cast<unsigned long long>(Consulted[0]), Secs[1],
                Secs[2], static_cast<unsigned long long>(Prefetched[2]),
                Secs[2] > 0 ? Secs[0] / Secs[2] : 0.0);
  }
  return 0;
}
