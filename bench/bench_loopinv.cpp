//===- bench_loopinv.cpp - Loop invariant inference ablation --------------===//
//
// Hypothesis 3 of Sec. 4: the on-the-fly loop invariant inference
// (Sec. 3.3) is needed to distinguish the contents of different HashMap
// objects; the trivial inference that drops every possibly-affected
// constraint at any loop cannot refute the resize-copy-loop pollution
// edges. We measure this exactly where the paper says it bites: programs
// with multiple HashMaps, where the grown table of a static map is claimed
// (falsely) to contain the entries of an unrelated local map.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "sym/WitnessSearch.h"

using namespace thresher;
using namespace thresher::bench;

namespace {

/// A family of programs with \p NumMaps HashMaps: one static registry and
/// NumMaps-1 locals fed with Activities.
std::string multiMapApp(int NumMaps) {
  std::string Src = "class MapHolder {\n"
                    "  static var registry = new HashMap() @mapStat;\n"
                    "}\n"
                    "class MAct extends Activity {\n"
                    "  onCreate() {\n";
  for (int I = 1; I < NumMaps; ++I) {
    std::string N = std::to_string(I);
    Src += "    var m" + N + " = new HashMap() @mapLoc" + N + ";\n";
    Src += "    m" + N + ".put(\"k" + N + "\", this);\n";
  }
  Src += "    var r = MapHolder.registry;\n"
         "    r.put(\"rk\", \"rv\");\n"
         "  }\n"
         "}\n"
         "fun main() {\n"
         "  var a = new MAct() @act0;\n"
         "  if (*) { a.onCreate(); }\n"
         "}\n";
  return Src;
}

} // namespace

int main() {
  std::printf("=== Loop invariant inference ablation: multi-HashMap "
              "programs ===\n");
  std::printf("%-8s %-22s %12s %12s %10s %10s\n", "maps", "edge",
              "full", "drop-all", "Tfull(s)", "Tdrop(s)");
  for (int NumMaps : {2, 3, 4}) {
    CompileResult CR = compileAndroidApp(multiMapApp(NumMaps));
    if (!CR.ok())
      return 1;
    const Program &P = *CR.Prog;
    auto PTA = PointsToAnalysis(P).run();
    auto Loc = [&](const std::string &L) {
      for (AbsLocId I = 0; I < PTA->Locs.size(); ++I)
        if (PTA->Locs.label(P, I) == L)
          return I;
      return InvalidId;
    };
    // The copy-loop pollution edge: the static map's grown table claimed
    // to contain a local map's entry.
    AbsLocId Grown = Loc("mapStat.hmTbl");
    AbsLocId Entry = Loc("mapLoc1.hmEntry");
    const char *Verdict[2];
    double Secs[2];
    for (LoopMode Mode : {LoopMode::FullInference, LoopMode::DropAll}) {
      SymOptions Opts;
      Opts.Loop = Mode;
      Opts.EdgeBudget = 500000;
      WitnessSearch WS(P, *PTA, Opts);
      Timer T;
      EdgeSearchResult R = WS.searchFieldEdge(Grown, P.ElemsField, Entry);
      int Idx = Mode == LoopMode::FullInference ? 0 : 1;
      Secs[Idx] = T.seconds();
      Verdict[Idx] = R.Outcome == SearchOutcome::Refuted ? "REFUTED"
                     : R.Outcome == SearchOutcome::Witnessed ? "witnessed"
                                                             : "timeout";
    }
    std::printf("%-8d %-22s %12s %12s %10.3f %10.3f\n", NumMaps,
                "hmTbl.@elems->entry", Verdict[0], Verdict[1], Secs[0],
                Secs[1]);
  }
  std::printf("\nPaper reference: the full inference handles multi-HashMap "
              "cases precisely; the trivial drop-everything inference "
              "cannot distinguish the contents of different HashMaps and "
              "fails to refute these edges.\n");

  // Also confirm the end-to-end effect on the benchmark suite is limited
  // (the paper found no fewer overall refutations on its real apps due to
  // unrelated analysis limitations).
  std::printf("\n=== Loop mode across the benchmark suite (Ann?=N) ===\n");
  std::printf("%-13s %8s %8s\n", "Benchmark", "RefAfull", "RefAdrop");
  for (const AppSpec &Spec : paperBenchmarks()) {
    BenchmarkApp App = buildBenchmarkApp(Spec);
    SymOptions Full;
    Full.EdgeBudget = Spec.EdgeBudget;
    Row RF = runConfig(App, false, Full);
    SymOptions Drop = Full;
    Drop.Loop = LoopMode::DropAll;
    Row RD = runConfig(App, false, Drop);
    std::printf("%-13s %8u %8u\n", Spec.Name.c_str(), RF.RefA, RD.RefA);
  }
  return 0;
}
