//===- bench_table1.cpp - Reproduce Table 1 -------------------------------===//
//
// Table 1 of the paper: filtering effectiveness and computational effort of
// witness-refutation analysis over the benchmark apps, in the un-annotated
// (Ann?=N) and annotated (Ann?=Y) configurations.
//
// The apps are synthetic stand-ins with known ground truth (see
// android/Benchmarks.h); absolute counts differ from the paper, but the
// qualitative structure this table checks is the paper's:
//   - TruA is identical in both configurations (real leaks always found);
//   - the annotation removes HashMap-pollution alarms (Alrms drops N->Y);
//   - refutation effectiveness improves with the annotation on the
//     HashMap-heavy apps (RefA rises or FalA falls);
//   - DroidLife/SMSPopUp report exactly their seeded true leaks.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>

using namespace thresher;
using namespace thresher::bench;

namespace {

/// Paper reference values (PLDI'13, Table 1) printed for comparison.
struct PaperRow {
  const char *Name;
  const char *Ann;
  int Alarms, RefA, TruA, FalA;
};

const PaperRow PaperRows[] = {
    {"PulsePoint", "N", 24, 16, 8, 0},   {"PulsePoint", "Y", 16, 8, 8, 0},
    {"StandupTimer", "N", 25, 15, 0, 10}, {"StandupTimer", "Y", 25, 15, 0, 10},
    {"DroidLife", "N", 3, 0, 3, 0},      {"DroidLife", "Y", 3, 0, 3, 0},
    {"OpenSudoku", "N", 7, 1, 0, 6},     {"OpenSudoku", "Y", 0, 0, 0, 0},
    {"SMSPopUp", "N", 5, 1, 4, 0},       {"SMSPopUp", "Y", 5, 1, 4, 0},
    {"aMetro", "N", 144, 18, 36, 90},    {"aMetro", "Y", 54, 18, 36, 0},
    {"K9Mail", "N", 364, 78, 64, 222},   {"K9Mail", "Y", 208, 130, 64, 14},
};

} // namespace

namespace {

/// Lines of (generated) app source, mirroring Table 1's SLOC column.
uint64_t appSloc(const AppSpec &Spec) {
  std::string Src = generateAppSource(Spec);
  return static_cast<uint64_t>(
      std::count(Src.begin(), Src.end(), '\n'));
}

/// Instructions in call-graph-reachable functions, mirroring the CGB
/// (bytecodes in call graph) column.
uint64_t callGraphInsts(const BenchmarkApp &App) {
  auto PTA = PointsToAnalysis(*App.Prog).run();
  uint64_t N = 0;
  for (FuncId F : PTA->reachableFuncs())
    for (const BasicBlock &BB : App.Prog->Funcs[F].Blocks)
      N += BB.Insts.size() + 1;
  return N;
}

} // namespace

int main() {
  std::printf("=== Benchmark sizes ===\n");
  std::printf("%-13s %8s %8s\n", "Benchmark", "SLOC", "CG-insts");
  for (const AppSpec &Spec : paperBenchmarks()) {
    BenchmarkApp App = buildBenchmarkApp(Spec);
    std::printf("%-13s %8llu %8llu\n", Spec.Name.c_str(),
                static_cast<unsigned long long>(appSloc(Spec)),
                static_cast<unsigned long long>(callGraphInsts(App)));
  }

  std::printf("\n=== Table 1: threshing leak alarms (measured) ===\n");
  printRowHeader();
  Row Total[2];
  Total[0].Name = Total[1].Name = "Total";
  Total[1].Annotated = true;
  for (const AppSpec &Spec : paperBenchmarks()) {
    BenchmarkApp App = buildBenchmarkApp(Spec);
    for (bool Ann : {false, true}) {
      SymOptions Opts;
      Opts.EdgeBudget = Spec.EdgeBudget;
      Row R = runConfig(App, Ann, Opts);
      printRow(R);
      Row &T = Total[Ann ? 1 : 0];
      T.Alarms += R.Alarms;
      T.RefA += R.RefA;
      T.TruA += R.TruA;
      T.FalA += R.FalA;
      T.Flds += R.Flds;
      T.RefFlds += R.RefFlds;
      T.RefEdg += R.RefEdg;
      T.WitEdg += R.WitEdg;
      T.TO += R.TO;
      T.Seconds += R.Seconds;
    }
  }
  printRow(Total[0]);
  printRow(Total[1]);

  std::printf("\n=== Table 1: paper reference values (alarm columns) ===\n");
  std::printf("%-13s %-4s %6s %6s %6s %6s\n", "Benchmark", "Ann?", "Alrms",
              "RefA", "TruA", "FalA");
  for (const PaperRow &R : PaperRows)
    std::printf("%-13s %-4s %6d %6d %6d %6d\n", R.Name, R.Ann, R.Alarms,
                R.RefA, R.TruA, R.FalA);
  std::printf("\nShape checks: TruA(N) == TruA(Y) per app; Alrms(N) >= "
              "Alrms(Y); FalA shrinks with the annotation on HashMap-heavy "
              "apps.\n");
  return 0;
}
