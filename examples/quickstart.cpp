//===- quickstart.cpp - Minimal end-to-end use of the library -------------===//
//
// Builds a tiny program through the IRBuilder API, runs the points-to
// analysis, and asks the witness-refutation engine about two heap facts:
// one realizable (witnessed) and one guarded by an impossible condition
// (refuted). This is the smallest complete tour of the public API.
//
// Run:  ./quickstart
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "pta/PointsTo.h"
#include "sym/WitnessSearch.h"

#include <iostream>

using namespace thresher;

int main() {
  // --- 1. Build a program. ---
  //
  //   class Box { f }
  //   static Box Holder.slot;
  //   fun main() {
  //     b  = new Box()    @box0
  //     o  = new Object() @obj0
  //     b.f = o;
  //     flag = 0;
  //     if (flag != 0)  Holder.slot = o;   // dead guard
  //   }
  ProgramBuilder PB;
  ClassId Box = PB.addClass("Box");
  FieldId F = PB.addField(Box, "f");
  ClassId Holder = PB.addClass("Holder");
  GlobalId Slot = PB.addGlobal(Holder, "slot");

  FunctionBuilder FB = PB.beginFunc("main", 0);
  VarId B = FB.newVar("b");
  VarId O = FB.newVar("o");
  VarId Flag = FB.newVar("flag");
  BlockId Store = FB.newBlock();
  BlockId Done = FB.newBlock();
  FB.newObj(B, Box, "box0");
  FB.newObj(O, PB.prog().ObjectClass, "obj0");
  FB.store(B, F, O);
  FB.constInt(Flag, 0);
  FB.branchConst(Flag, RelOp::NE, 0, Store, Done);
  FB.setBlock(Store);
  FB.storeStatic(Slot, O);
  FB.jump(Done);
  FB.setBlock(Done);
  FB.retVoid();
  FuncId Main = FB.finish();
  PB.setEntry(Main);
  std::unique_ptr<Program> P = PB.take();

  std::cout << "=== Program ===\n";
  printProgram(std::cout, *P);

  // --- 2. Flow-insensitive points-to analysis. ---
  auto PTA = PointsToAnalysis(*P).run();
  std::cout << "\n=== Points-to facts ===\n";
  std::cout << "pt(Holder.slot) = {";
  for (AbsLocId L : PTA->ptGlobal(Slot))
    std::cout << " " << PTA->Locs.label(*P, L);
  std::cout << " }   <- imprecise: the store is dead\n";

  // Resolve the abstract locations by label.
  AbsLocId Box0 = InvalidId, Obj0 = InvalidId;
  for (AbsLocId L = 0; L < PTA->Locs.size(); ++L) {
    if (PTA->Locs.label(*P, L) == "box0")
      Box0 = L;
    if (PTA->Locs.label(*P, L) == "obj0")
      Obj0 = L;
  }

  // --- 3. Witness-refutation queries. ---
  WitnessSearch WS(*P, *PTA);

  EdgeSearchResult R1 = WS.searchFieldEdge(Box0, F, Obj0);
  std::cout << "\nquery box0.f -> obj0 : "
            << (R1.Outcome == SearchOutcome::Witnessed ? "WITNESSED"
                                                       : "refuted")
            << " (" << R1.StepsUsed << " states explored)\n";

  EdgeSearchResult R2 = WS.searchGlobalEdge(Slot, Obj0);
  std::cout << "query Holder.slot -> obj0 : "
            << (R2.Outcome == SearchOutcome::Refuted ? "REFUTED"
                                                     : "witnessed")
            << " (" << R2.StepsUsed << " states explored)\n";
  std::cout << "\nThe flow-insensitive analysis says Holder.slot may point "
               "to obj0;\nthe path-sensitive backwards search proves the "
               "guard is dead and refutes it.\n";
  return 0;
}
