//===- singleton_leak.cpp - The confirmed K9Mail leak (Fig. 5) ------------===//
//
// Reproduces the developer-confirmed Activity leak of Fig. 5: a singleton
// EmailAddressAdapter retains the Activity passed as its context through
// two super-constructors into CursorAdapter.mContext. The witness search
// produces a path program witness, which this example prints — the same
// artifact that let the paper's authors triage real leaks.
//
// Run:  ./singleton_leak
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "ir/Printer.h"
#include "leak/LeakChecker.h"

#include <iostream>

using namespace thresher;

static const char *App = R"MJ(
class EmailAddressAdapter extends ResourceCursorAdapter {
  static var sInstance;
  EmailAddressAdapter(context) { super(context); }
  static getInstance(context) {
    if (EmailAddressAdapter.sInstance == null) {
      EmailAddressAdapter.sInstance =
          new EmailAddressAdapter(context) @adr0;
    }
    return EmailAddressAdapter.sInstance;
  }
}
class MailAct extends Activity {
  onCreate() {
    EmailAddressAdapter.getInstance(this);
  }
}
fun main() {
  var a = new MailAct() @act0;
  if (*) { a.onCreate(); }
  if (*) { a.onDestroy(); }
}
)MJ";

int main() {
  CompileResult R = compileAndroidApp(App);
  if (!R.ok()) {
    for (const std::string &E : R.Errors)
      std::cerr << "compile error: " << E << "\n";
    return 1;
  }
  const Program &P = *R.Prog;
  auto PTA = PointsToAnalysis(P).run();

  SymOptions Opts;
  Opts.RecordTrails = true;
  LeakChecker LC(P, *PTA, activityBaseClass(P), Opts);
  LeakReport Rep = LC.run();

  std::cout << "alarms: " << Rep.NumAlarms
            << ", refuted: " << Rep.RefutedAlarms << "\n\n";
  for (const AlarmResult &A : Rep.Alarms) {
    if (A.Status == AlarmStatus::Refuted)
      continue;
    std::cout << "LEAK: Activity " << PTA->Locs.label(P, A.Activity)
              << " reachable from static field " << P.globalName(A.Source)
              << "\nheap path:\n";
    for (const std::string &Edge : A.PathDescription)
      std::cout << "    " << Edge << "\n";
  }

  // Also print the witnessing path program for the first leak edge.
  GlobalId SInst = P.findGlobal("EmailAddressAdapter", "sInstance");
  AbsLocId Adr0 = *PTA->ptGlobal(SInst).begin();
  WitnessSearch WS(P, *PTA, Opts);
  EdgeSearchResult E = WS.searchGlobalEdge(SInst, Adr0);
  std::cout << "\npath program witnessing "
            << P.globalName(SInst) << " -> "
            << PTA->Locs.label(P, Adr0) << ":\n";
  for (const ProgramPoint &PP : E.WitnessTrail) {
    const Function &Fn = P.Funcs[PP.F];
    std::cout << "  " << P.funcName(PP.F) << " bb" << PP.B;
    if (PP.Idx < Fn.Blocks[PP.B].Insts.size())
      std::cout << ": "
                << printInstruction(P, Fn, Fn.Blocks[PP.B].Insts[PP.Idx]);
    std::cout << "\n";
  }
  return Rep.NumAlarms > Rep.RefutedAlarms ? 0 : 1;
}
