//===- leak_scan.cpp - Scan a synthetic app in both configurations --------===//
//
// Runs the full Thresher pipeline over one of the synthetic benchmark apps
// in both the un-annotated (Ann?=N) and annotated (Ann?=Y) configurations,
// printing a Table-1-style row for each. Pass a benchmark name
// (PulsePoint, StandupTimer, DroidLife, OpenSudoku, SMSPopUp, aMetro,
// K9Mail); defaults to SMSPopUp.
//
// Run:  ./leak_scan [app-name]
//
//===----------------------------------------------------------------------===//

#include "android/Benchmarks.h"
#include "leak/LeakChecker.h"

#include <cstdio>
#include <iostream>

using namespace thresher;

static void scan(const BenchmarkApp &App, bool Annotated) {
  PTAOptions PtaOpts;
  if (Annotated)
    annotateHashMapEmptyTable(*App.Prog, PtaOpts);
  auto PTA = PointsToAnalysis(*App.Prog, PtaOpts).run();
  SymOptions SymOpts;
  SymOpts.EdgeBudget = App.Spec.EdgeBudget;
  LeakChecker LC(*App.Prog, *PTA, App.ActivityBase, SymOpts);
  LeakReport R = LC.run();
  uint32_t True = R.countTrue(*App.Prog, PTA->Locs, App.TrueLeaks);
  uint32_t Surviving = R.NumAlarms - R.RefutedAlarms;
  uint32_t False = Surviving - True;
  std::printf("%-13s %-4s %6u %6u %6u %6u %6u %8u %7u %7u %4u %8.2f\n",
              App.Spec.Name.c_str(), Annotated ? "Y" : "N", R.NumAlarms,
              R.RefutedAlarms, True, False, R.Fields, R.RefutedFields,
              R.RefutedEdges, R.WitnessedEdges, R.TimeoutEdges, R.Seconds);
}

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "SMSPopUp";
  for (const AppSpec &Spec : paperBenchmarks()) {
    if (Spec.Name != Name)
      continue;
    BenchmarkApp App = buildBenchmarkApp(Spec);
    std::printf("%-13s %-4s %6s %6s %6s %6s %6s %8s %7s %7s %4s %8s\n",
                "Benchmark", "Ann?", "Alrms", "RefA", "TruA", "FalA",
                "Flds", "RefFlds", "RefEdg", "WitEdg", "TO", "T(s)");
    scan(App, /*Annotated=*/false);
    scan(App, /*Annotated=*/true);
    return 0;
  }
  std::cerr << "unknown benchmark '" << Name << "'\n";
  return 1;
}
