//===- vec_null_object.cpp - The paper's running example (Fig. 1/2) -------===//
//
// Reproduces Sec. 2 of the paper: the Vec collection uses the null object
// pattern (all empty Vecs share the static EMPTY array), which makes the
// flow-insensitive points-to analysis claim that an Activity pushed into
// one Vec can end up in the shared array — a false leak alarm. The
// witness-refutation search disproves every producing statement, including
// the copy-loop one that needs loop invariant inference.
//
// Run:  ./vec_null_object
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "leak/LeakChecker.h"
#include "pta/GraphExport.h"
#include "pta/PointsTo.h"

#include <fstream>
#include <iostream>

using namespace thresher;

static const char *App = R"MJ(
class Act extends Activity {
  static var objs = new Vec() @vec0;
  onCreate() {
    var acts = new Vec() @vec1;
    acts.push(this);
    var o = Act.objs;
    o.push("hello");
  }
}
fun main() {
  var a = new Act() @act0;
  a.onCreate();
}
)MJ";

int main() {
  CompileResult R = compileAndroidApp(App);
  if (!R.ok()) {
    for (const std::string &E : R.Errors)
      std::cerr << "compile error: " << E << "\n";
    return 1;
  }
  const Program &P = *R.Prog;
  auto PTA = PointsToAnalysis(P).run();

  // Show the polluted points-to graph (Fig. 2 of the paper).
  std::cout << "=== Flow-insensitive heap graph around the EMPTY array ===\n";
  GlobalId Empty = P.findGlobal("Vec", "EMPTY");
  AbsLocId Arr0 = *PTA->ptGlobal(Empty).begin();
  std::cout << "Vec.EMPTY -> " << PTA->Locs.label(P, Arr0) << "\n";
  for (auto [Fld, Target] : PTA->fieldEdges(Arr0))
    std::cout << PTA->Locs.label(P, Arr0) << "." << P.fieldName(Fld)
              << " -> " << PTA->Locs.label(P, Target) << "\n";
  std::cout << "\nThe edge to act0 is the pollution: the analysis thinks an\n"
               "Activity can sit in the shared empty array.\n";

  // Refute every producing statement of the polluted edge.
  AbsLocId Act0 = InvalidId;
  for (AbsLocId L = 0; L < PTA->Locs.size(); ++L)
    if (PTA->Locs.label(P, L) == "act0")
      Act0 = L;
  WitnessSearch WS(P, *PTA);
  auto Producers = PTA->producersOfFieldEdge(Arr0, P.ElemsField, Act0);
  std::cout << "\n=== Threshing edge " << PTA->Locs.label(P, Arr0)
            << ".@elems -> act0 ===\n"
            << Producers.size() << " producing statement(s) found\n";
  EdgeSearchResult E = WS.searchFieldEdge(Arr0, P.ElemsField, Act0);
  std::cout << "edge verdict: "
            << (E.Outcome == SearchOutcome::Refuted ? "REFUTED" : "witnessed")
            << " after exploring " << E.StepsUsed << " states\n";

  // Emit the Fig. 2-style points-to graph for inspection.
  {
    std::ofstream Dot("fig2.dot");
    GraphExportOptions GO;
    GO.Roots = {P.findGlobal("Act", "objs"), Empty};
    GO.HighlightClass = activityBaseClass(P);
    exportPointsToDot(Dot, P, *PTA, GO);
    std::cout << "\n(wrote the Fig. 2-style points-to graph to fig2.dot)\n";
  }

  // Full leak-client run: both alarms (Act.objs and Vec.EMPTY) filtered.
  std::cout << "\n=== Leak client ===\n";
  LeakChecker LC(P, *PTA, activityBaseClass(P));
  LeakReport Rep = LC.run();
  std::cout << "alarms: " << Rep.NumAlarms
            << ", refuted: " << Rep.RefutedAlarms
            << ", edges refuted: " << Rep.RefutedEdges
            << ", edges witnessed: " << Rep.WitnessedEdges << "\n";
  for (const AlarmResult &A : Rep.Alarms)
    std::cout << "  " << P.globalName(A.Source) << " ~> "
              << PTA->Locs.label(P, A.Activity) << " : "
              << (A.Status == AlarmStatus::Refuted ? "refuted (no leak)"
                                                   : "REPORTED")
              << "\n";
  return Rep.RefutedAlarms == Rep.NumAlarms ? 0 : 1;
}
