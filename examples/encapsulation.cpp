//===- encapsulation.cpp - Heap-reachability assertions beyond leaks ------===//
//
// The paper's introduction: "A heap reachability checker would also enable
// a developer to write statically checkable assertions about, for example,
// object lifetimes, encapsulation of fields, or immutability of objects."
//
// This example checks an encapsulation property: a Ledger's internal
// Record objects must never become reachable from the global audit
// registry. Two code versions are checked — one that only publishes
// redacted snapshots (the assertion is PROVEN despite a flow-insensitive
// false alarm), and one with a debug path that publishes the record itself
// (VIOLATED, with the counterexample heap path printed).
//
// Run:  ./encapsulation
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "leak/ReachabilityAssert.h"
#include "pta/PointsTo.h"

#include <iostream>

using namespace thresher;

namespace {

// The internal records flow into a snapshot wrapper; only the wrapper is
// published. A dead debug flag guards a direct publish, which the
// flow-insensitive analysis cannot rule out: pt(Audit.log) claims rec0.
const char *SafeModule = R"MJ(
class Record { var payload; }
class Snapshot { var summary; }
class Audit { static var log; }
class Ledger {
  static var debugMode = 0;
  var records;
  Ledger() { records = new Record() @rec0; }
  publish() {
    if (Ledger.debugMode != 0) {
      Audit.log = records;
    }
    var s = new Snapshot() @snap0;
    Audit.log = s;
  }
}
fun main() {
  var l = new Ledger() @ledger0;
  l.publish();
}
)MJ";

// Same module, but the debug flag can actually be enabled.
const char *LeakyModule = R"MJ(
class Record { var payload; }
class Snapshot { var summary; }
class Audit { static var log; }
class Ledger {
  static var debugMode = 0;
  var records;
  Ledger() { records = new Record() @rec0; }
  publish() {
    if (Ledger.debugMode != 0) {
      Audit.log = records;
    }
    var s = new Snapshot() @snap0;
    Audit.log = s;
  }
}
fun main() {
  if (*) { Ledger.debugMode = 1; }
  var l = new Ledger() @ledger0;
  l.publish();
}
)MJ";

int checkModule(const char *Name, const char *Src) {
  CompileResult R = compileMJ(Src);
  if (!R.ok()) {
    for (const std::string &E : R.Errors)
      std::cerr << "compile error: " << E << "\n";
    return 1;
  }
  const Program &P = *R.Prog;
  auto PTA = PointsToAnalysis(P).run();
  GlobalId Log = P.findGlobal("Audit", "log");
  ClassId Record = P.findClass("Record");

  std::cout << "== " << Name << " ==\n";
  std::cout << "flow-insensitive pt(Audit.log) = {";
  for (AbsLocId L : PTA->ptGlobal(Log))
    std::cout << " " << PTA->Locs.label(P, L);
  std::cout << " }\n";

  ReachabilityChecker RC(P, *PTA);
  AssertResult A = RC.assertUnreachableClass(Log, Record);
  std::cout << "assert Record unreachable from Audit.log: ";
  switch (A.Verdict) {
  case AssertVerdict::Proven:
    std::cout << "PROVEN (" << A.EdgesRefuted << " edge(s) refuted)\n";
    break;
  case AssertVerdict::Violated:
    std::cout << "VIOLATED — counterexample heap path:\n";
    for (const std::string &E : A.CounterexamplePath)
      std::cout << "    " << E << "\n";
    break;
  case AssertVerdict::Inconclusive:
    std::cout << "inconclusive (budget)\n";
    break;
  }
  std::cout << "\n";
  return 0;
}

} // namespace

int main() {
  int Rc = checkModule("safe module (dead debug flag)", SafeModule);
  Rc |= checkModule("leaky module (debug flag reachable)", LeakyModule);
  return Rc;
}
