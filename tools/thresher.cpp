//===- thresher.cpp - Command-line driver ---------------------------------===//
//
// Part of the Thresher reproduction. MIT license.
//
// The command-line face of the library: compile mini-Java sources, then
// dump IR, dump points-to facts, interpret, query a single heap edge, or
// run the full Activity-leak client.
//
//   thresher check  [opts] file.mj...   leak analysis (the default)
//   thresher ir     [opts] file.mj...   dump the compiled IR
//   thresher pta    [opts] file.mj...   dump points-to facts
//                   (--dot renders the Fig. 2-style Graphviz graph)
//   thresher run    [opts] file.mj...   interpret the program
//   thresher edge   [opts] --from Cls.field --to label file.mj...
//                                       witness/refute one static edge
//
// Options:
//   --android              prepend the modelled Android library
//   --annotate-hashmap     Ann?=Y configuration (HashMap.EMPTY_TABLE empty)
//   --budget N             per-edge exploration budget (default 10000)
//   --depth N              callee-entry stack depth bound (default 3)
//   --threads N            parallel edge threshing for 'check'
//   --search-threads N     work-stealing workers inside each edge search
//                          (intra-edge parallelism; results are identical
//                          for every N — see docs/PARALLELISM.md)
//   --pta-solver delta|naive
//                          constraint solver: difference propagation with
//                          cycle collapsing (default) or the naive
//                          reference; results are identical (docs/PTA.md)
//   --repr mixed|symbolic|explicit
//   --loop full|drop       loop invariant inference mode
//   --no-simplify          disable query simplification (also disables the
//                          subsumption registry, which keys on simplified
//                          canonical queries)
//   --forward-slice        forward reachability slice pruning (default on;
//                          --no-forward-slice disables; docs/PRUNING.md)
//   --global-subsume       cross-edge subsumption registry (default on;
//                          --no-global-subsume disables; docs/PRUNING.md)
//   --trails               print witness path programs
//   --entry NAME           entry function name (default "main")
//   --activity CLASS       Activity base class (default "Activity")
//   --stats                print engine counters
//   --json FILE            write the machine-readable report for 'check'
//                          (schema thresher-report/v1.1; "-" for stdout)
//   --deterministic        restrict --json to the thread-count- and
//                          cache-independent fields (byte-comparable)
//   --trace FILE           write per-edge JSONL trace events for 'check'
//                          ("-" for stdout)
//   --cache DIR            persistent refutation cache for 'check': load
//                          and validate DIR/cache.jsonl, skip searches
//                          whose cached facts still hold, save on exit
//   --cache-verify         with --cache, re-search cache hits and fail if
//                          any cached verdict disagrees
//   --edge-timeout-ms N    per-edge deadline; deterministic by default
//                          (denominated in steps via --steps-per-ms)
//   --run-timeout-ms N     whole-run deadline; unfinished edges degrade to
//                          TIMEOUT (alarms kept), workers are cancelled
//   --mem-ceiling-mb N     memory-accountant ceiling; searches that cross
//                          it degrade to TIMEOUT(memory)
//   --wall-clock           deadlines in real time instead of steps
//                          (reports become machine-dependent)
//   --steps-per-ms N       steps/ms rate for deterministic deadlines
//                          (default 1000; recorded in the report)
//   --fault SITE:N         fault injection: fail the Nth hit of SITE
//                          (also via THRESHER_FAULT env; see
//                          docs/ROBUSTNESS.md for the site catalogue)
//
// Exit codes: 0 clean, 1 leaks/input error, 2 usage, 3 cache-verify
// mismatch, 4 resource limit aborted a non-degradable phase.
//
// The JSON report and trace event schemas are documented in
// docs/OBSERVABILITY.md; the cache store format in docs/CACHING.md;
// resource governance and fault injection in docs/ROBUSTNESS.md.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "cache/RefutationCache.h"
#include "interp/Interp.h"
#include "ir/Printer.h"
#include "pta/GraphExport.h"
#include "leak/LeakChecker.h"
#include "support/Budget.h"
#include "support/Error.h"
#include "support/FaultInject.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>

using namespace thresher;

namespace {

struct CliOptions {
  std::string Command = "check";
  std::vector<std::string> Files;
  bool Android = false;
  bool AnnotateHashMap = false;
  bool Dot = false;
  bool Trails = false;
  bool PrintStats = false;
  std::string Entry = "main";
  std::string ActivityClass = "Activity";
  std::string EdgeFrom, EdgeTo;
  std::string JsonPath, TracePath;
  std::string CacheDir;
  bool CacheVerify = false;
  bool Deterministic = false;
  unsigned Threads = 1;
  PTASolver Solver = PTASolver::DeltaLCD;
  SymOptions Sym;
  /// Resource governance; a governor is created only when one of its
  /// flags was given (GovSet) so ungoverned runs stay zero-overhead.
  GovernorConfig Gov;
  bool GovSet = false;
  std::vector<std::string> FaultSpecs;
};

/// Strict positive-integer option parser: rejects empty, non-numeric,
/// signed, zero, and out-of-range values (std::stoi-style prefix parsing
/// silently accepted "4x" and crashed on "abc").
bool parseCount(const std::string &Flag, const char *V, uint64_t Max,
                uint64_t &Out) {
  std::string S = V ? V : "";
  bool Ok = !S.empty() && S.size() <= 19;
  for (char C : S)
    Ok = Ok && C >= '0' && C <= '9';
  Out = Ok ? std::strtoull(S.c_str(), nullptr, 10) : 0;
  if (!Ok || Out == 0 || Out > Max) {
    std::cerr << "error: " << Flag << " expects a positive integer (1.."
              << Max << "), got '" << S << "'\n";
    return false;
  }
  return true;
}

int usage() {
  std::cerr << "usage: thresher <check|ir|pta|run|edge> [options] "
               "file.mj...\n"
               "run 'head -40 tools/thresher.cpp' for the option list\n";
  return 2;
}

bool parseArgs(int Argc, char **Argv, CliOptions &O) {
  int I = 1;
  if (I < Argc && Argv[I][0] != '-') {
    std::string Cmd = Argv[I];
    if (Cmd == "check" || Cmd == "ir" || Cmd == "pta" || Cmd == "run" ||
        Cmd == "edge") {
      O.Command = Cmd;
      ++I;
    }
  }
  for (; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (A == "--android") {
      O.Android = true;
    } else if (A == "--dot") {
      O.Dot = true;
    } else if (A == "--annotate-hashmap") {
      O.AnnotateHashMap = true;
    } else if (A == "--trails") {
      O.Trails = true;
      O.Sym.RecordTrails = true;
    } else if (A == "--stats") {
      O.PrintStats = true;
    } else if (A == "--no-simplify") {
      O.Sym.QuerySimplification = false;
    } else if (A == "--forward-slice") {
      O.Sym.ForwardSlice = true;
    } else if (A == "--no-forward-slice") {
      O.Sym.ForwardSlice = false;
    } else if (A == "--global-subsume") {
      O.Sym.GlobalSubsume = true;
    } else if (A == "--no-global-subsume") {
      O.Sym.GlobalSubsume = false;
    } else if (A == "--budget") {
      uint64_t N;
      if (!parseCount(A, Next(), UINT64_MAX / 2, N))
        return false;
      O.Sym.EdgeBudget = N;
    } else if (A == "--depth") {
      uint64_t N;
      if (!parseCount(A, Next(), 1024, N))
        return false;
      O.Sym.MaxCallStackDepth = static_cast<uint32_t>(N);
    } else if (A == "--threads") {
      uint64_t N;
      if (!parseCount(A, Next(), 1024, N))
        return false;
      O.Threads = static_cast<unsigned>(N);
    } else if (A == "--search-threads") {
      uint64_t N;
      if (!parseCount(A, Next(), 256, N))
        return false;
      O.Sym.SearchThreads = static_cast<unsigned>(N);
    } else if (A == "--repr") {
      const char *V = Next();
      if (!V)
        return false;
      std::string S = V;
      if (S == "mixed")
        O.Sym.Repr = Representation::Mixed;
      else if (S == "symbolic")
        O.Sym.Repr = Representation::FullySymbolic;
      else if (S == "explicit")
        O.Sym.Repr = Representation::FullyExplicit;
      else
        return false;
    } else if (A == "--loop") {
      const char *V = Next();
      if (!V)
        return false;
      std::string S = V;
      if (S == "full")
        O.Sym.Loop = LoopMode::FullInference;
      else if (S == "drop")
        O.Sym.Loop = LoopMode::DropAll;
      else
        return false;
    } else if (A == "--entry") {
      const char *V = Next();
      if (!V)
        return false;
      O.Entry = V;
    } else if (A == "--activity") {
      const char *V = Next();
      if (!V)
        return false;
      O.ActivityClass = V;
    } else if (A == "--json") {
      const char *V = Next();
      if (!V)
        return false;
      O.JsonPath = V;
    } else if (A == "--trace") {
      const char *V = Next();
      if (!V)
        return false;
      O.TracePath = V;
    } else if (A == "--cache") {
      const char *V = Next();
      if (!V)
        return false;
      O.CacheDir = V;
    } else if (A == "--cache-verify") {
      O.CacheVerify = true;
    } else if (A == "--edge-timeout-ms") {
      uint64_t N;
      if (!parseCount(A, Next(), UINT64_MAX / 1000000, N))
        return false;
      O.Gov.EdgeTimeoutMs = N;
      O.GovSet = true;
    } else if (A == "--run-timeout-ms") {
      uint64_t N;
      if (!parseCount(A, Next(), UINT64_MAX / 1000000, N))
        return false;
      O.Gov.RunTimeoutMs = N;
      O.GovSet = true;
    } else if (A == "--mem-ceiling-mb") {
      uint64_t N;
      if (!parseCount(A, Next(), UINT64_MAX >> 21, N))
        return false;
      O.Gov.MemCeilingBytes = N << 20;
      O.GovSet = true;
    } else if (A == "--wall-clock") {
      O.Gov.Deterministic = false;
      O.GovSet = true;
    } else if (A == "--steps-per-ms") {
      uint64_t N;
      if (!parseCount(A, Next(), UINT64_MAX / 1000000, N))
        return false;
      O.Gov.StepsPerMs = N;
      O.GovSet = true;
    } else if (A == "--fault") {
      const char *V = Next();
      if (!V)
        return false;
      O.FaultSpecs.push_back(V);
    } else if (A == "--deterministic") {
      O.Deterministic = true;
    } else if (A == "--pta-solver") {
      const char *V = Next();
      if (!V)
        return false;
      std::string S = V;
      if (S == "delta")
        O.Solver = PTASolver::DeltaLCD;
      else if (S == "naive")
        O.Solver = PTASolver::Naive;
      else
        return false;
    } else if (A == "--from") {
      const char *V = Next();
      if (!V)
        return false;
      O.EdgeFrom = V;
    } else if (A == "--to") {
      const char *V = Next();
      if (!V)
        return false;
      O.EdgeTo = V;
    } else if (A[0] == '-') {
      std::cerr << "unknown option '" << A << "'\n";
      return false;
    } else {
      O.Files.push_back(A);
    }
  }
  return !O.Files.empty();
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    Error::input("cannot open '" + Path + "'").report(std::cerr);
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

/// Writes an output artifact crash-safely: temp file + atomic rename, with
/// the report.write fault site between write and publish. A failure (real
/// or injected) never leaves a torn file at \p Path — the previous
/// artifact, if any, stays intact.
bool writeOutputFile(const std::string &Path,
                     const std::function<void(std::ostream &)> &W,
                     std::string *Err) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out) {
      *Err = "cannot write '" + Tmp + "'";
      return false;
    }
    W(Out);
    if (!Out.good()) {
      *Err = "write failed for '" + Tmp + "'";
      return false;
    }
  }
  std::error_code EC;
  if (FaultInject::shouldFail(faultsite::ReportWrite)) {
    std::filesystem::remove(Tmp, EC);
    *Err = "injected write fault publishing '" + Path + "'";
    return false;
  }
  std::filesystem::rename(Tmp, Path, EC);
  if (EC) {
    *Err = "cannot publish '" + Path + "': " + EC.message();
    return false;
  }
  return true;
}

void printWitnessTrail(const Program &P, const EdgeSearchResult &R) {
  for (const ProgramPoint &PP : R.WitnessTrail) {
    const Function &Fn = P.Funcs[PP.F];
    std::cout << "    " << P.funcName(PP.F) << " bb" << PP.B;
    if (PP.Idx < Fn.Blocks[PP.B].Insts.size())
      std::cout << ": "
                << printInstruction(P, Fn, Fn.Blocks[PP.B].Insts[PP.Idx]);
    std::cout << "\n";
  }
}

int runCheck(const CliOptions &O, const Program &P, const PointsToResult &PTA,
             ResourceGovernor *Gov) {
  ClassId ActBase = P.findClass(O.ActivityClass);
  if (ActBase == InvalidId) {
    Error::input("no class named '" + O.ActivityClass + "'")
        .report(std::cerr);
    return 1;
  }
  LeakChecker LC(P, PTA, ActBase, O.Sym);
  LC.setGovernor(Gov);
  std::unique_ptr<RefutationCache> Cache;
  if (!O.CacheDir.empty()) {
    Cache = std::make_unique<RefutationCache>(O.CacheDir);
    std::string Err;
    if (!Cache->load(&Err)) {
      // Sound recovery: the corrupt store was quarantined; this run is
      // simply cold and rebuilds a fresh store on save.
      std::cerr << "warning: discarding refutation cache: " << Err << "\n";
      LC.stats().bump("robust.cacheRecovered", Cache->recoveredStores());
    }
    uint64_t ConfigHash =
        RefutationCache::configHash(O.Sym, O.AnnotateHashMap);
    Cache->validate(P, PTA, ConfigHash);
    LC.setCache(Cache.get(), ConfigHash, O.CacheVerify);
  }
  LeakReport R = LC.run(O.Threads);
  ReportJsonOptions JO;
  JO.DeterministicOnly = O.Deterministic;
  bool OutputFailed = false;
  if (!O.JsonPath.empty()) {
    if (O.JsonPath == "-") {
      LC.writeJsonReport(std::cout, R, JO);
    } else {
      std::string Err;
      if (!writeOutputFile(
              O.JsonPath, [&](std::ostream &S) { LC.writeJsonReport(S, R, JO); },
              &Err)) {
        Error::io(Err).report(std::cerr);
        OutputFailed = true;
      }
    }
  }
  if (!O.TracePath.empty()) {
    if (O.TracePath == "-") {
      LC.writeTraceJsonl(std::cout);
    } else {
      std::string Err;
      if (!writeOutputFile(O.TracePath,
                           [&](std::ostream &S) { LC.writeTraceJsonl(S); },
                           &Err)) {
        Error::io(Err).report(std::cerr);
        OutputFailed = true;
      }
    }
  }
  std::cout << "alarms: " << R.NumAlarms << "  refuted: " << R.RefutedAlarms
            << "  fields: " << R.Fields << "  refuted fields: "
            << R.RefutedFields << "\nedges refuted: " << R.RefutedEdges
            << "  witnessed: " << R.WitnessedEdges
            << "  timeouts: " << R.TimeoutEdges << "  time: " << R.Seconds
            << "s\n";
  for (const AlarmResult &A : R.Alarms) {
    if (A.Status == AlarmStatus::Refuted)
      continue;
    std::cout << "LEAK"
              << (A.Status == AlarmStatus::Timeout ? " (timeout)" : "")
              << ": " << P.globalName(A.Source) << " ~> "
              << PTA.Locs.label(P, A.Activity) << "\n";
    for (const std::string &E : A.PathDescription)
      std::cout << "    " << E << "\n";
  }
  if (R.Cache.Enabled)
    std::cout << "cache: " << R.Cache.Hits << " hits, " << R.Cache.Misses
              << " misses, " << R.Cache.Invalidated << " invalidated, "
              << R.Cache.Inserted << " inserted\n";
  if (O.PrintStats)
    LC.stats().print(std::cout);
  if (Cache) {
    std::string Err;
    if (!Cache->save(&Err))
      std::cerr << "warning: cannot save refutation cache: " << Err << "\n";
    if (R.Cache.VerifyMismatches > 0) {
      // Exit 3: distinguishable from "leaks found" (1) and usage (2).
      std::cerr << "error: --cache-verify found " << R.Cache.VerifyMismatches
                << " cached verdict mismatch(es)\n";
      return 3;
    }
  }
  if (OutputFailed)
    return 1;
  return R.NumAlarms == R.RefutedAlarms ? 0 : 1;
}

int runEdge(const CliOptions &O, const Program &P, const PointsToResult &PTA,
            ResourceGovernor *Gov) {
  size_t Dot = O.EdgeFrom.find('.');
  if (Dot == std::string::npos || O.EdgeTo.empty()) {
    Error::usage("edge mode needs --from Class.field and --to <label>")
        .report(std::cerr);
    return 2;
  }
  GlobalId G = P.findGlobal(O.EdgeFrom.substr(0, Dot),
                            O.EdgeFrom.substr(Dot + 1));
  if (G == InvalidId) {
    Error::input("no static field '" + O.EdgeFrom + "'").report(std::cerr);
    return 1;
  }
  AbsLocId Target = InvalidId;
  for (AbsLocId L = 0; L < PTA.Locs.size(); ++L)
    if (PTA.Locs.label(P, L) == O.EdgeTo)
      Target = L;
  if (Target == InvalidId) {
    Error::input("no abstract location labelled '" + O.EdgeTo + "'")
        .report(std::cerr);
    return 1;
  }
  WitnessSearch WS(P, PTA, O.Sym);
  WS.setGovernor(Gov);
  if (Gov)
    Gov->beginRun();
  EdgeSearchResult R = WS.searchGlobalEdge(G, Target);
  std::string Verdict = R.Outcome == SearchOutcome::Refuted ? "REFUTED"
                        : R.Outcome == SearchOutcome::Witnessed
                            ? "WITNESSED"
                            : "BUDGET EXHAUSTED";
  if (R.Outcome == SearchOutcome::BudgetExhausted)
    Verdict += std::string(" [") + exhaustionReasonName(R.Exhaustion) + "]";
  std::cout << O.EdgeFrom << " -> " << O.EdgeTo << ": " << Verdict << " ("
            << R.StepsUsed << " states)\n";
  if (O.Trails && R.Outcome == SearchOutcome::Witnessed) {
    std::cout << "  witnessing path program:\n";
    printWitnessTrail(P, R);
  }
  if (O.Trails && R.Outcome == SearchOutcome::Refuted &&
      !R.DeepestRefutedTrail.empty()) {
    // Even refuted path programs help triage (the paper's StandupTimer
    // almost-leak was found this way).
    std::cout << "  deepest refuted path program:\n";
    for (const ProgramPoint &PP : R.DeepestRefutedTrail) {
      const Function &Fn = P.Funcs[PP.F];
      std::cout << "    " << P.funcName(PP.F) << " bb" << PP.B;
      if (PP.Idx < Fn.Blocks[PP.B].Insts.size())
        std::cout << ": "
                  << printInstruction(P, Fn, Fn.Blocks[PP.B].Insts[PP.Idx]);
      std::cout << "\n";
    }
  }
  if (O.PrintStats)
    WS.stats().print(std::cout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions O;
  if (!parseArgs(Argc, Argv, O))
    return usage();

  // Fault injection: THRESHER_FAULT env first, --fault flags on top.
  {
    std::string Err = FaultInject::armFromEnv();
    if (!Err.empty()) {
      Error::usage("THRESHER_FAULT: " + Err).report(std::cerr);
      return 2;
    }
    for (const std::string &Spec : O.FaultSpecs) {
      if (!FaultInject::armFromSpec(Spec, &Err)) {
        Error::usage("--fault: " + Err).report(std::cerr);
        return 2;
      }
    }
  }

  std::vector<std::string> Sources;
  if (O.Android)
    Sources.push_back(androidLibrarySource());
  for (const std::string &F : O.Files) {
    std::string Text;
    if (!readFile(F, Text))
      return 1;
    Sources.push_back(std::move(Text));
  }
  CompileResult CR = compileMJ(Sources, O.Entry);
  if (!CR.ok()) {
    for (const std::string &E : CR.Errors)
      Error::frontend(E).report(std::cerr);
    return 1;
  }
  const Program &P = *CR.Prog;

  if (O.Command == "ir") {
    printProgram(std::cout, P);
    return 0;
  }
  if (O.Command == "run") {
    Interpreter I(P);
    InterpResult R = I.run();
    if (!R.Completed) {
      std::cerr << "runtime error: " << R.Error << "\n";
      return 1;
    }
    std::cout << "completed in " << R.Steps << " steps, " << I.heap().size()
              << " objects allocated\n";
    return 0;
  }

  // The governor spans every phase from points-to solving onwards.
  std::unique_ptr<ResourceGovernor> Gov;
  if (O.GovSet)
    Gov = std::make_unique<ResourceGovernor>(O.Gov);

  PTAOptions PtaOpts;
  PtaOpts.Solver = O.Solver;
  PtaOpts.Gov = Gov.get();
  if (O.AnnotateHashMap)
    annotateHashMapEmptyTable(P, PtaOpts);
  auto PTA = PointsToAnalysis(P, PtaOpts).run();
  if (Gov && Gov->MemCeilingHits.load() > 0) {
    // No sound degraded points-to result exists: abort, distinctly.
    Error::resource("points-to solving exceeded the memory ceiling (" +
                    std::to_string(O.Gov.MemCeilingBytes >> 20) + " MiB)")
        .report(std::cerr);
    return 4;
  }

  if (O.Command == "pta") {
    if (O.Dot) {
      GraphExportOptions GO;
      ClassId Act = P.findClass(O.ActivityClass);
      if (Act != InvalidId)
        GO.HighlightClass = Act;
      exportPointsToDot(std::cout, P, *PTA, GO);
      return 0;
    }
    for (GlobalId G = 0; G < P.Globals.size(); ++G) {
      if (PTA->ptGlobal(G).empty())
        continue;
      std::cout << P.globalName(G) << " ->";
      for (AbsLocId L : PTA->ptGlobal(G))
        std::cout << " " << PTA->Locs.label(P, L);
      std::cout << "\n";
    }
    for (AbsLocId L = 0; L < PTA->Locs.size(); ++L)
      for (auto [Fld, T] : PTA->fieldEdges(L))
        std::cout << PTA->Locs.label(P, L) << "." << P.fieldName(Fld)
                  << " -> " << PTA->Locs.label(P, T) << "\n";
    std::cout << "(" << PTA->numEdges() << " points-to edges, "
              << PTA->reachableFuncs().size() << " reachable functions)\n";
    return 0;
  }
  if (O.Command == "edge")
    return runEdge(O, P, *PTA, Gov.get());
  return runCheck(O, P, *PTA, Gov.get());
}
