//===- thresher.cpp - Command-line driver ---------------------------------===//
//
// Part of the Thresher reproduction. MIT license.
//
// The command-line face of the library: compile mini-Java sources, then
// dump IR, dump points-to facts, interpret, query a single heap edge, or
// run the full Activity-leak client.
//
//   thresher check  [opts] file.mj...   leak analysis (the default)
//   thresher ir     [opts] file.mj...   dump the compiled IR
//   thresher pta    [opts] file.mj...   dump points-to facts
//                   (--dot renders the Fig. 2-style Graphviz graph)
//   thresher run    [opts] file.mj...   interpret the program
//   thresher edge   [opts] --from Cls.field --to label file.mj...
//                                       witness/refute one static edge
//
// Options:
//   --android              prepend the modelled Android library
//   --annotate-hashmap     Ann?=Y configuration (HashMap.EMPTY_TABLE empty)
//   --budget N             per-edge exploration budget (default 10000)
//   --depth N              callee-entry stack depth bound (default 3)
//   --threads N            parallel edge threshing for 'check'
//   --pta-solver delta|naive
//                          constraint solver: difference propagation with
//                          cycle collapsing (default) or the naive
//                          reference; results are identical (docs/PTA.md)
//   --repr mixed|symbolic|explicit
//   --loop full|drop       loop invariant inference mode
//   --no-simplify          disable query simplification
//   --trails               print witness path programs
//   --entry NAME           entry function name (default "main")
//   --activity CLASS       Activity base class (default "Activity")
//   --stats                print engine counters
//   --json FILE            write the machine-readable report for 'check'
//                          (schema thresher-report/v1; "-" for stdout)
//   --deterministic        restrict --json to the thread-count- and
//                          cache-independent fields (byte-comparable)
//   --trace FILE           write per-edge JSONL trace events for 'check'
//                          ("-" for stdout)
//   --cache DIR            persistent refutation cache for 'check': load
//                          and validate DIR/cache.jsonl, skip searches
//                          whose cached facts still hold, save on exit
//   --cache-verify         with --cache, re-search cache hits and fail if
//                          any cached verdict disagrees
//
// The JSON report and trace event schemas are documented in
// docs/OBSERVABILITY.md; the cache store format in docs/CACHING.md.
//
//===----------------------------------------------------------------------===//

#include "android/AndroidModel.h"
#include "cache/RefutationCache.h"
#include "interp/Interp.h"
#include "ir/Printer.h"
#include "pta/GraphExport.h"
#include "leak/LeakChecker.h"

#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

using namespace thresher;

namespace {

struct CliOptions {
  std::string Command = "check";
  std::vector<std::string> Files;
  bool Android = false;
  bool AnnotateHashMap = false;
  bool Dot = false;
  bool Trails = false;
  bool PrintStats = false;
  std::string Entry = "main";
  std::string ActivityClass = "Activity";
  std::string EdgeFrom, EdgeTo;
  std::string JsonPath, TracePath;
  std::string CacheDir;
  bool CacheVerify = false;
  bool Deterministic = false;
  unsigned Threads = 1;
  PTASolver Solver = PTASolver::DeltaLCD;
  SymOptions Sym;
};

/// Strict positive-integer option parser: rejects empty, non-numeric,
/// signed, zero, and out-of-range values (std::stoi-style prefix parsing
/// silently accepted "4x" and crashed on "abc").
bool parseCount(const std::string &Flag, const char *V, uint64_t Max,
                uint64_t &Out) {
  std::string S = V ? V : "";
  bool Ok = !S.empty() && S.size() <= 19;
  for (char C : S)
    Ok = Ok && C >= '0' && C <= '9';
  Out = Ok ? std::strtoull(S.c_str(), nullptr, 10) : 0;
  if (!Ok || Out == 0 || Out > Max) {
    std::cerr << "error: " << Flag << " expects a positive integer (1.."
              << Max << "), got '" << S << "'\n";
    return false;
  }
  return true;
}

int usage() {
  std::cerr << "usage: thresher <check|ir|pta|run|edge> [options] "
               "file.mj...\n"
               "run 'head -40 tools/thresher.cpp' for the option list\n";
  return 2;
}

bool parseArgs(int Argc, char **Argv, CliOptions &O) {
  int I = 1;
  if (I < Argc && Argv[I][0] != '-') {
    std::string Cmd = Argv[I];
    if (Cmd == "check" || Cmd == "ir" || Cmd == "pta" || Cmd == "run" ||
        Cmd == "edge") {
      O.Command = Cmd;
      ++I;
    }
  }
  for (; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (A == "--android") {
      O.Android = true;
    } else if (A == "--dot") {
      O.Dot = true;
    } else if (A == "--annotate-hashmap") {
      O.AnnotateHashMap = true;
    } else if (A == "--trails") {
      O.Trails = true;
      O.Sym.RecordTrails = true;
    } else if (A == "--stats") {
      O.PrintStats = true;
    } else if (A == "--no-simplify") {
      O.Sym.QuerySimplification = false;
    } else if (A == "--budget") {
      uint64_t N;
      if (!parseCount(A, Next(), UINT64_MAX / 2, N))
        return false;
      O.Sym.EdgeBudget = N;
    } else if (A == "--depth") {
      uint64_t N;
      if (!parseCount(A, Next(), 1024, N))
        return false;
      O.Sym.MaxCallStackDepth = static_cast<uint32_t>(N);
    } else if (A == "--threads") {
      uint64_t N;
      if (!parseCount(A, Next(), 1024, N))
        return false;
      O.Threads = static_cast<unsigned>(N);
    } else if (A == "--repr") {
      const char *V = Next();
      if (!V)
        return false;
      std::string S = V;
      if (S == "mixed")
        O.Sym.Repr = Representation::Mixed;
      else if (S == "symbolic")
        O.Sym.Repr = Representation::FullySymbolic;
      else if (S == "explicit")
        O.Sym.Repr = Representation::FullyExplicit;
      else
        return false;
    } else if (A == "--loop") {
      const char *V = Next();
      if (!V)
        return false;
      std::string S = V;
      if (S == "full")
        O.Sym.Loop = LoopMode::FullInference;
      else if (S == "drop")
        O.Sym.Loop = LoopMode::DropAll;
      else
        return false;
    } else if (A == "--entry") {
      const char *V = Next();
      if (!V)
        return false;
      O.Entry = V;
    } else if (A == "--activity") {
      const char *V = Next();
      if (!V)
        return false;
      O.ActivityClass = V;
    } else if (A == "--json") {
      const char *V = Next();
      if (!V)
        return false;
      O.JsonPath = V;
    } else if (A == "--trace") {
      const char *V = Next();
      if (!V)
        return false;
      O.TracePath = V;
    } else if (A == "--cache") {
      const char *V = Next();
      if (!V)
        return false;
      O.CacheDir = V;
    } else if (A == "--cache-verify") {
      O.CacheVerify = true;
    } else if (A == "--deterministic") {
      O.Deterministic = true;
    } else if (A == "--pta-solver") {
      const char *V = Next();
      if (!V)
        return false;
      std::string S = V;
      if (S == "delta")
        O.Solver = PTASolver::DeltaLCD;
      else if (S == "naive")
        O.Solver = PTASolver::Naive;
      else
        return false;
    } else if (A == "--from") {
      const char *V = Next();
      if (!V)
        return false;
      O.EdgeFrom = V;
    } else if (A == "--to") {
      const char *V = Next();
      if (!V)
        return false;
      O.EdgeTo = V;
    } else if (A[0] == '-') {
      std::cerr << "unknown option '" << A << "'\n";
      return false;
    } else {
      O.Files.push_back(A);
    }
  }
  return !O.Files.empty();
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "error: cannot open '" << Path << "'\n";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

void printWitnessTrail(const Program &P, const EdgeSearchResult &R) {
  for (const ProgramPoint &PP : R.WitnessTrail) {
    const Function &Fn = P.Funcs[PP.F];
    std::cout << "    " << P.funcName(PP.F) << " bb" << PP.B;
    if (PP.Idx < Fn.Blocks[PP.B].Insts.size())
      std::cout << ": "
                << printInstruction(P, Fn, Fn.Blocks[PP.B].Insts[PP.Idx]);
    std::cout << "\n";
  }
}

int runCheck(const CliOptions &O, const Program &P,
             const PointsToResult &PTA) {
  ClassId ActBase = P.findClass(O.ActivityClass);
  if (ActBase == InvalidId) {
    std::cerr << "error: no class named '" << O.ActivityClass << "'\n";
    return 1;
  }
  LeakChecker LC(P, PTA, ActBase, O.Sym);
  std::unique_ptr<RefutationCache> Cache;
  if (!O.CacheDir.empty()) {
    Cache = std::make_unique<RefutationCache>(O.CacheDir);
    std::string Err;
    if (!Cache->load(&Err))
      std::cerr << "warning: discarding refutation cache: " << Err << "\n";
    uint64_t ConfigHash =
        RefutationCache::configHash(O.Sym, O.AnnotateHashMap);
    Cache->validate(P, PTA, ConfigHash);
    LC.setCache(Cache.get(), ConfigHash, O.CacheVerify);
  }
  LeakReport R = LC.run(O.Threads);
  ReportJsonOptions JO;
  JO.DeterministicOnly = O.Deterministic;
  if (!O.JsonPath.empty()) {
    if (O.JsonPath == "-") {
      LC.writeJsonReport(std::cout, R, JO);
    } else {
      std::ofstream Out(O.JsonPath);
      if (!Out) {
        std::cerr << "error: cannot write '" << O.JsonPath << "'\n";
        return 1;
      }
      LC.writeJsonReport(Out, R, JO);
    }
  }
  if (!O.TracePath.empty()) {
    if (O.TracePath == "-") {
      LC.writeTraceJsonl(std::cout);
    } else {
      std::ofstream Out(O.TracePath);
      if (!Out) {
        std::cerr << "error: cannot write '" << O.TracePath << "'\n";
        return 1;
      }
      LC.writeTraceJsonl(Out);
    }
  }
  std::cout << "alarms: " << R.NumAlarms << "  refuted: " << R.RefutedAlarms
            << "  fields: " << R.Fields << "  refuted fields: "
            << R.RefutedFields << "\nedges refuted: " << R.RefutedEdges
            << "  witnessed: " << R.WitnessedEdges
            << "  timeouts: " << R.TimeoutEdges << "  time: " << R.Seconds
            << "s\n";
  for (const AlarmResult &A : R.Alarms) {
    if (A.Status == AlarmStatus::Refuted)
      continue;
    std::cout << "LEAK"
              << (A.Status == AlarmStatus::Timeout ? " (timeout)" : "")
              << ": " << P.globalName(A.Source) << " ~> "
              << PTA.Locs.label(P, A.Activity) << "\n";
    for (const std::string &E : A.PathDescription)
      std::cout << "    " << E << "\n";
  }
  if (R.Cache.Enabled)
    std::cout << "cache: " << R.Cache.Hits << " hits, " << R.Cache.Misses
              << " misses, " << R.Cache.Invalidated << " invalidated, "
              << R.Cache.Inserted << " inserted\n";
  if (O.PrintStats)
    LC.stats().print(std::cout);
  if (Cache) {
    std::string Err;
    if (!Cache->save(&Err))
      std::cerr << "warning: cannot save refutation cache: " << Err << "\n";
    if (R.Cache.VerifyMismatches > 0) {
      // Exit 3: distinguishable from "leaks found" (1) and usage (2).
      std::cerr << "error: --cache-verify found " << R.Cache.VerifyMismatches
                << " cached verdict mismatch(es)\n";
      return 3;
    }
  }
  return R.NumAlarms == R.RefutedAlarms ? 0 : 1;
}

int runEdge(const CliOptions &O, const Program &P,
            const PointsToResult &PTA) {
  size_t Dot = O.EdgeFrom.find('.');
  if (Dot == std::string::npos || O.EdgeTo.empty()) {
    std::cerr << "edge mode needs --from Class.field and --to <label>\n";
    return 2;
  }
  GlobalId G = P.findGlobal(O.EdgeFrom.substr(0, Dot),
                            O.EdgeFrom.substr(Dot + 1));
  if (G == InvalidId) {
    std::cerr << "error: no static field '" << O.EdgeFrom << "'\n";
    return 1;
  }
  AbsLocId Target = InvalidId;
  for (AbsLocId L = 0; L < PTA.Locs.size(); ++L)
    if (PTA.Locs.label(P, L) == O.EdgeTo)
      Target = L;
  if (Target == InvalidId) {
    std::cerr << "error: no abstract location labelled '" << O.EdgeTo
              << "'\n";
    return 1;
  }
  WitnessSearch WS(P, PTA, O.Sym);
  EdgeSearchResult R = WS.searchGlobalEdge(G, Target);
  const char *Verdict = R.Outcome == SearchOutcome::Refuted ? "REFUTED"
                        : R.Outcome == SearchOutcome::Witnessed
                            ? "WITNESSED"
                            : "BUDGET EXHAUSTED";
  std::cout << O.EdgeFrom << " -> " << O.EdgeTo << ": " << Verdict << " ("
            << R.StepsUsed << " states)\n";
  if (O.Trails && R.Outcome == SearchOutcome::Witnessed) {
    std::cout << "  witnessing path program:\n";
    printWitnessTrail(P, R);
  }
  if (O.Trails && R.Outcome == SearchOutcome::Refuted &&
      !R.DeepestRefutedTrail.empty()) {
    // Even refuted path programs help triage (the paper's StandupTimer
    // almost-leak was found this way).
    std::cout << "  deepest refuted path program:\n";
    for (const ProgramPoint &PP : R.DeepestRefutedTrail) {
      const Function &Fn = P.Funcs[PP.F];
      std::cout << "    " << P.funcName(PP.F) << " bb" << PP.B;
      if (PP.Idx < Fn.Blocks[PP.B].Insts.size())
        std::cout << ": "
                  << printInstruction(P, Fn, Fn.Blocks[PP.B].Insts[PP.Idx]);
      std::cout << "\n";
    }
  }
  if (O.PrintStats)
    WS.stats().print(std::cout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions O;
  if (!parseArgs(Argc, Argv, O))
    return usage();

  std::vector<std::string> Sources;
  if (O.Android)
    Sources.push_back(androidLibrarySource());
  for (const std::string &F : O.Files) {
    std::string Text;
    if (!readFile(F, Text))
      return 1;
    Sources.push_back(std::move(Text));
  }
  CompileResult CR = compileMJ(Sources, O.Entry);
  if (!CR.ok()) {
    for (const std::string &E : CR.Errors)
      std::cerr << "error: " << E << "\n";
    return 1;
  }
  const Program &P = *CR.Prog;

  if (O.Command == "ir") {
    printProgram(std::cout, P);
    return 0;
  }
  if (O.Command == "run") {
    Interpreter I(P);
    InterpResult R = I.run();
    if (!R.Completed) {
      std::cerr << "runtime error: " << R.Error << "\n";
      return 1;
    }
    std::cout << "completed in " << R.Steps << " steps, " << I.heap().size()
              << " objects allocated\n";
    return 0;
  }

  PTAOptions PtaOpts;
  PtaOpts.Solver = O.Solver;
  if (O.AnnotateHashMap)
    annotateHashMapEmptyTable(P, PtaOpts);
  auto PTA = PointsToAnalysis(P, PtaOpts).run();

  if (O.Command == "pta") {
    if (O.Dot) {
      GraphExportOptions GO;
      ClassId Act = P.findClass(O.ActivityClass);
      if (Act != InvalidId)
        GO.HighlightClass = Act;
      exportPointsToDot(std::cout, P, *PTA, GO);
      return 0;
    }
    for (GlobalId G = 0; G < P.Globals.size(); ++G) {
      if (PTA->ptGlobal(G).empty())
        continue;
      std::cout << P.globalName(G) << " ->";
      for (AbsLocId L : PTA->ptGlobal(G))
        std::cout << " " << PTA->Locs.label(P, L);
      std::cout << "\n";
    }
    for (AbsLocId L = 0; L < PTA->Locs.size(); ++L)
      for (auto [Fld, T] : PTA->fieldEdges(L))
        std::cout << PTA->Locs.label(P, L) << "." << P.fieldName(Fld)
                  << " -> " << PTA->Locs.label(P, T) << "\n";
    std::cout << "(" << PTA->numEdges() << " points-to edges, "
              << PTA->reachableFuncs().size() << " reachable functions)\n";
    return 0;
  }
  if (O.Command == "edge")
    return runEdge(O, P, *PTA);
  return runCheck(O, P, *PTA);
}
