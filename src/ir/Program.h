//===- Program.h - Whole-program IR container -------------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The whole-program container: classes with single inheritance, instance
/// fields, static fields (globals), allocation sites, functions, and the
/// designated entry function (the event-handler harness). Also provides the
/// class-hierarchy queries (subtyping, virtual dispatch resolution) that the
/// points-to analysis and the leak client need.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_IR_PROGRAM_H
#define THRESHER_IR_PROGRAM_H

#include "ir/Function.h"
#include "support/StringPool.h"

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace thresher {

/// Bit flags attached to classes.
enum ClassFlags : uint8_t {
  CF_None = 0,
  /// Container classes get deeper heap context in the points-to analysis,
  /// emulating WALA's 0-1-Container-CFA.
  CF_Container = 1 << 0,
};

/// A class: name, superclass, declared instance fields, declared methods.
struct ClassInfo {
  NameId Name = InvalidId;
  ClassId Super = InvalidId; ///< InvalidId only for the root (Object).
  uint8_t Flags = CF_None;
  std::vector<FieldId> OwnFields;
  /// Instance methods declared directly on this class, by selector name.
  /// Virtual dispatch walks the superclass chain through these maps.
  std::unordered_map<NameId, FuncId> Methods;

  bool isContainer() const { return Flags & CF_Container; }
};

/// An instance field: name plus declaring class.
struct FieldInfo {
  NameId Name = InvalidId;
  ClassId Owner = InvalidId; ///< InvalidId for synthetic fields (@elems).
};

/// A static field (modelled as a global variable, as in the paper).
struct GlobalInfo {
  NameId Name = InvalidId;
  ClassId Owner = InvalidId;
};

/// An allocation site (the subscript `a` on new in the paper).
struct AllocSiteInfo {
  ClassId Class = InvalidId;
  FuncId InFunc = InvalidId;
  NameId Label = InvalidId;  ///< E.g. "act0"; used in all diagnostics.
  bool IsArray = false;
  /// For string-literal allocations: the literal's interned text.
  NameId StrLiteral = InvalidId;
};

/// The whole program.
class Program {
public:
  StringPool Names;
  std::vector<ClassInfo> Classes;
  std::vector<FieldInfo> Fields;
  std::vector<GlobalInfo> Globals;
  std::vector<AllocSiteInfo> AllocSites;
  std::vector<Function> Funcs;
  FuncId EntryFunc = InvalidId;

  /// Well-known classes, created by ProgramBuilder.
  ClassId ObjectClass = InvalidId;
  ClassId StringClass = InvalidId;
  /// The synthetic field holding array element contents ("contents" in the
  /// paper's arr0·contents edges).
  FieldId ElemsField = InvalidId;

  /// Returns true if \p C is \p Base or a (transitive) subclass of it.
  bool isSubclassOf(ClassId C, ClassId Base) const;

  /// Resolves virtual dispatch of selector \p Method on dynamic class \p C,
  /// walking up the superclass chain. Returns InvalidId if unresolved.
  FuncId resolveVirtual(ClassId C, NameId Method) const;

  /// Finds a class by name; returns InvalidId if absent.
  ClassId findClass(std::string_view Name) const;

  /// Finds a global (static field) as "Class.field"; InvalidId if absent.
  GlobalId findGlobal(std::string_view ClassName,
                      std::string_view FieldName) const;

  /// Finds an instance field declared on \p C or a superclass by name.
  FieldId findField(ClassId C, std::string_view Name) const;

  /// Finds an instance field by name anywhere in the program. The frontend
  /// merges same-named fields into one FieldId, so this is unambiguous for
  /// frontend-produced programs.
  FieldId findFieldByName(std::string_view Name) const;

  /// Finds a function by plain name (first match); InvalidId if absent.
  FuncId findFunc(std::string_view Name) const;

  /// Finds a method \p Name on exactly class \p C; InvalidId if absent.
  FuncId findMethod(ClassId C, std::string_view Name) const;

  /// Human-readable label helpers for diagnostics.
  std::string className(ClassId C) const;
  std::string fieldName(FieldId F) const;
  std::string globalName(GlobalId G) const;
  std::string funcName(FuncId F) const;
  std::string allocLabel(AllocSiteId A) const;
};

/// A program point: before instruction Idx of block B in function F.
/// Idx == Blocks[B].Insts.size() means "before the terminator".
struct ProgramPoint {
  FuncId F = InvalidId;
  BlockId B = InvalidId;
  uint32_t Idx = 0;

  bool operator==(const ProgramPoint &O) const {
    return F == O.F && B == O.B && Idx == O.Idx;
  }
  bool operator<(const ProgramPoint &O) const {
    if (F != O.F)
      return F < O.F;
    if (B != O.B)
      return B < O.B;
    return Idx < O.Idx;
  }
};

} // namespace thresher

#endif // THRESHER_IR_PROGRAM_H
