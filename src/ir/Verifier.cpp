#include "ir/Verifier.h"

#include <sstream>

using namespace thresher;

namespace {

class VerifierImpl {
public:
  explicit VerifierImpl(const Program &P) : P(P) {}

  std::vector<std::string> run() {
    for (FuncId F = 0; F < P.Funcs.size(); ++F)
      checkFunction(F);
    if (P.EntryFunc != InvalidId) {
      if (P.EntryFunc >= P.Funcs.size())
        report("program", "entry function id out of range");
      else if (P.Funcs[P.EntryFunc].NumParams != 0)
        report("program", "entry function must take no parameters");
    }
    return std::move(Problems);
  }

private:
  void report(const std::string &Where, const std::string &What) {
    Problems.push_back(Where + ": " + What);
  }

  void checkVar(const std::string &Where, const Function &Fn, VarId V,
                const char *Slot) {
    if (V == NoVar || V >= Fn.NumVars)
      report(Where, std::string("invalid ") + Slot + " variable");
  }

  void checkFunction(FuncId F) {
    const Function &Fn = P.Funcs[F];
    std::string Where = P.funcName(F);
    if (Fn.Blocks.empty()) {
      report(Where, "function has no blocks");
      return;
    }
    if (Fn.Entry >= Fn.Blocks.size())
      report(Where, "entry block out of range");
    if (Fn.NumParams > Fn.NumVars)
      report(Where, "more params than vars");
    for (BlockId B = 0; B < Fn.Blocks.size(); ++B) {
      std::string BWhere = Where + "/bb" + std::to_string(B);
      for (const Instruction &I : Fn.Blocks[B].Insts)
        checkInstruction(BWhere, Fn, I);
      checkTerminator(BWhere, Fn, Fn.Blocks[B].Term);
    }
  }

  void checkInstruction(const std::string &Where, const Function &Fn,
                        const Instruction &I) {
    switch (I.Op) {
    case Opcode::Assign:
      checkVar(Where, Fn, I.Dst, "dst");
      checkVar(Where, Fn, I.Src, "src");
      break;
    case Opcode::ConstInt:
    case Opcode::ConstNull:
    case Opcode::Havoc:
      checkVar(Where, Fn, I.Dst, "dst");
      break;
    case Opcode::New:
      checkVar(Where, Fn, I.Dst, "dst");
      if (I.Class >= P.Classes.size())
        report(Where, "new of invalid class");
      if (I.Alloc >= P.AllocSites.size())
        report(Where, "invalid allocation site");
      break;
    case Opcode::NewArray:
      checkVar(Where, Fn, I.Dst, "dst");
      if (!I.RhsIsConst)
        checkVar(Where, Fn, I.Src, "length");
      if (I.Alloc >= P.AllocSites.size())
        report(Where, "invalid allocation site");
      break;
    case Opcode::Load:
      checkVar(Where, Fn, I.Dst, "dst");
      checkVar(Where, Fn, I.Src, "base");
      if (I.Field >= P.Fields.size())
        report(Where, "load of invalid field");
      break;
    case Opcode::Store:
      checkVar(Where, Fn, I.Dst, "base");
      checkVar(Where, Fn, I.Src, "src");
      if (I.Field >= P.Fields.size())
        report(Where, "store to invalid field");
      break;
    case Opcode::LoadStatic:
      checkVar(Where, Fn, I.Dst, "dst");
      if (I.Global >= P.Globals.size())
        report(Where, "load of invalid global");
      break;
    case Opcode::StoreStatic:
      checkVar(Where, Fn, I.Src, "src");
      if (I.Global >= P.Globals.size())
        report(Where, "store to invalid global");
      break;
    case Opcode::ArrayLoad:
      checkVar(Where, Fn, I.Dst, "dst");
      checkVar(Where, Fn, I.Src, "array");
      checkVar(Where, Fn, I.Src2, "index");
      break;
    case Opcode::ArrayStore:
      checkVar(Where, Fn, I.Dst, "array");
      checkVar(Where, Fn, I.Src, "src");
      checkVar(Where, Fn, I.Src2, "index");
      break;
    case Opcode::ArrayLen:
      checkVar(Where, Fn, I.Dst, "dst");
      checkVar(Where, Fn, I.Src, "array");
      break;
    case Opcode::Binop:
      checkVar(Where, Fn, I.Dst, "dst");
      checkVar(Where, Fn, I.Src, "lhs");
      if (!I.RhsIsConst)
        checkVar(Where, Fn, I.Src2, "rhs");
      break;
    case Opcode::Call: {
      if (I.Dst != NoVar)
        checkVar(Where, Fn, I.Dst, "dst");
      for (VarId A : I.Args)
        checkVar(Where, Fn, A, "arg");
      if (I.IsVirtual) {
        if (I.Args.empty())
          report(Where, "virtual call without receiver");
        if (I.Method == InvalidId)
          report(Where, "virtual call without selector");
      } else {
        if (I.DirectCallee >= P.Funcs.size())
          report(Where, "direct call to invalid function");
        else if (I.Args.size() != P.Funcs[I.DirectCallee].NumParams)
          report(Where, "direct call arity mismatch calling " +
                            P.funcName(I.DirectCallee));
      }
      break;
    }
    }
  }

  void checkTerminator(const std::string &Where, const Function &Fn,
                       const Terminator &T) {
    switch (T.Kind) {
    case TermKind::Goto:
      if (T.Then >= Fn.Blocks.size())
        report(Where, "goto target out of range");
      break;
    case TermKind::If:
      checkVar(Where, Fn, T.Lhs, "cond lhs");
      if (T.RhsKind == CondRhsKind::Var)
        checkVar(Where, Fn, T.Rhs, "cond rhs");
      if (T.Then >= Fn.Blocks.size() || T.Else >= Fn.Blocks.size())
        report(Where, "branch target out of range");
      if (T.RhsKind == CondRhsKind::Null && T.Rel != RelOp::EQ &&
          T.Rel != RelOp::NE)
        report(Where, "null compare must use == or !=");
      break;
    case TermKind::Return:
      if (T.HasRetVal)
        checkVar(Where, Fn, T.RetVal, "return value");
      break;
    }
  }

  const Program &P;
  std::vector<std::string> Problems;
};

} // namespace

std::vector<std::string> thresher::verifyProgram(const Program &P) {
  return VerifierImpl(P).run();
}
