//===- Ids.h - Dense id types for the IR ------------------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense integer id types used throughout the IR and the analyses. All ids
/// index into vectors owned by the Program (or, for VarId/BlockId, by the
/// enclosing Function).
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_IR_IDS_H
#define THRESHER_IR_IDS_H

#include <cstdint>

namespace thresher {

using ClassId = uint32_t;     ///< Index into Program::Classes.
using FieldId = uint32_t;     ///< Index into Program::Fields.
using GlobalId = uint32_t;    ///< Index into Program::Globals (static fields).
using FuncId = uint32_t;      ///< Index into Program::Funcs.
using AllocSiteId = uint32_t; ///< Index into Program::AllocSites.
using VarId = uint32_t;       ///< Local variable slot within a Function.
using BlockId = uint32_t;     ///< Basic block index within a Function.

/// Sentinel for "no id" in any of the id spaces above.
inline constexpr uint32_t InvalidId = ~0u;

/// Sentinel for "no variable" operand slots.
inline constexpr VarId NoVar = ~0u;

} // namespace thresher

#endif // THRESHER_IR_IDS_H
