//===- Fingerprint.cpp - Stable structural IR fingerprints ----------------===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Fingerprint.h"

#include <sstream>

using namespace thresher;

uint64_t thresher::fingerprintString(std::string_view S) {
  StableHasher H;
  H.add(S);
  return H.hash();
}

namespace {

const char *opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Assign:
    return "assign";
  case Opcode::ConstInt:
    return "const";
  case Opcode::ConstNull:
    return "null";
  case Opcode::New:
    return "new";
  case Opcode::NewArray:
    return "newarray";
  case Opcode::Load:
    return "load";
  case Opcode::Store:
    return "store";
  case Opcode::LoadStatic:
    return "loadstatic";
  case Opcode::StoreStatic:
    return "storestatic";
  case Opcode::ArrayLoad:
    return "aload";
  case Opcode::ArrayStore:
    return "astore";
  case Opcode::ArrayLen:
    return "alen";
  case Opcode::Binop:
    return "binop";
  case Opcode::Call:
    return "call";
  case Opcode::Havoc:
    return "havoc";
  }
  return "?";
}

const char *binopName(BinopKind K) {
  switch (K) {
  case BinopKind::Add:
    return "+";
  case BinopKind::Sub:
    return "-";
  case BinopKind::Mul:
    return "*";
  case BinopKind::Div:
    return "/";
  case BinopKind::Rem:
    return "%";
  }
  return "?";
}

const char *relName(RelOp R) {
  switch (R) {
  case RelOp::EQ:
    return "==";
  case RelOp::NE:
    return "!=";
  case RelOp::LT:
    return "<";
  case RelOp::LE:
    return "<=";
  case RelOp::GT:
    return ">";
  case RelOp::GE:
    return ">=";
  }
  return "?";
}

void emitVar(std::ostream &OS, VarId V) {
  if (V == NoVar)
    OS << "_";
  else
    OS << "v" << V;
}

/// Allocation-site identity: label + class name + kind. Labels are
/// frontend-stable ("@o1" annotations or generated per-function), so this
/// names the site without its dense id.
void emitAllocSite(std::ostream &OS, const Program &P, AllocSiteId A) {
  if (A == InvalidId) {
    OS << "<none>";
    return;
  }
  const AllocSiteInfo &Site = P.AllocSites[A];
  OS << P.allocLabel(A) << ":" << P.className(Site.Class);
  if (Site.IsArray)
    OS << "[]";
  if (Site.StrLiteral != InvalidId)
    OS << ":str=" << P.Names.str(Site.StrLiteral);
}

void emitInstruction(std::ostream &OS, const Program &P,
                     const Instruction &I) {
  OS << opcodeName(I.Op) << " ";
  emitVar(OS, I.Dst);
  switch (I.Op) {
  case Opcode::Assign:
    OS << " = ";
    emitVar(OS, I.Src);
    break;
  case Opcode::ConstInt:
    OS << " = " << I.IntVal;
    break;
  case Opcode::ConstNull:
  case Opcode::Havoc:
    break;
  case Opcode::New:
    OS << " = ";
    emitAllocSite(OS, P, I.Alloc);
    break;
  case Opcode::NewArray:
    OS << " = ";
    emitAllocSite(OS, P, I.Alloc);
    OS << " len ";
    if (I.RhsIsConst)
      OS << I.IntVal;
    else
      emitVar(OS, I.Src);
    break;
  case Opcode::Load:
    OS << " = ";
    emitVar(OS, I.Src);
    OS << "." << P.fieldName(I.Field);
    break;
  case Opcode::Store:
    OS << "." << P.fieldName(I.Field) << " = ";
    emitVar(OS, I.Src);
    break;
  case Opcode::LoadStatic:
    OS << " = " << P.globalName(I.Global);
    break;
  case Opcode::StoreStatic:
    // Dst is unused for static stores; the global is the target.
    OS << " " << P.globalName(I.Global) << " = ";
    emitVar(OS, I.Src);
    break;
  case Opcode::ArrayLoad:
    OS << " = ";
    emitVar(OS, I.Src);
    OS << "[";
    emitVar(OS, I.Src2);
    OS << "]";
    break;
  case Opcode::ArrayStore:
    OS << "[";
    emitVar(OS, I.Src2);
    OS << "] = ";
    emitVar(OS, I.Src);
    break;
  case Opcode::ArrayLen:
    OS << " = len ";
    emitVar(OS, I.Src);
    break;
  case Opcode::Binop:
    OS << " = ";
    emitVar(OS, I.Src);
    OS << " " << binopName(I.BK) << " ";
    if (I.RhsIsConst)
      OS << I.IntVal;
    else
      emitVar(OS, I.Src2);
    break;
  case Opcode::Call:
    OS << " = ";
    if (I.IsVirtual)
      OS << "virtual " << P.Names.str(I.Method);
    else
      OS << "direct " << P.funcName(I.DirectCallee);
    OS << "(";
    for (size_t A = 0; A < I.Args.size(); ++A) {
      if (A)
        OS << ",";
      emitVar(OS, I.Args[A]);
    }
    OS << ")";
    break;
  }
}

void emitTerminator(std::ostream &OS, const Terminator &T) {
  switch (T.Kind) {
  case TermKind::Goto:
    OS << "goto bb" << T.Then;
    break;
  case TermKind::If:
    OS << "if ";
    emitVar(OS, T.Lhs);
    OS << " " << relName(T.Rel) << " ";
    switch (T.RhsKind) {
    case CondRhsKind::Var:
      emitVar(OS, T.Rhs);
      break;
    case CondRhsKind::IntConst:
      OS << T.RhsConst;
      break;
    case CondRhsKind::Null:
      OS << "null";
      break;
    }
    OS << " bb" << T.Then << " bb" << T.Else;
    break;
  case TermKind::Return:
    OS << "ret";
    if (T.HasRetVal) {
      OS << " ";
      emitVar(OS, T.RetVal);
    }
    break;
  }
}

} // namespace

std::string thresher::functionFingerprintText(const Program &P, FuncId F) {
  const Function &Fn = P.Funcs[F];
  std::ostringstream OS;
  OS << "func " << P.funcName(F);
  OS << " owner=" << P.className(Fn.Owner);
  OS << (Fn.IsStatic ? " static" : " instance");
  OS << " params=" << Fn.NumParams << " vars=" << Fn.NumVars;
  OS << " entry=bb" << Fn.Entry << "\n";
  for (BlockId B = 0; B < Fn.Blocks.size(); ++B) {
    const BasicBlock &BB = Fn.Blocks[B];
    OS << "bb" << B << ":\n";
    for (const Instruction &I : BB.Insts) {
      OS << "  ";
      emitInstruction(OS, P, I);
      OS << "\n";
    }
    OS << "  ";
    emitTerminator(OS, BB.Term);
    OS << "\n";
  }
  return OS.str();
}

uint64_t thresher::fingerprintFunction(const Program &P, FuncId F) {
  return fingerprintString(functionFingerprintText(P, F));
}

uint64_t thresher::fingerprintProgram(const Program &P) {
  StableHasher H;
  H.add(std::string_view("thresher-program-fp/1"));
  H.add(static_cast<uint64_t>(P.Classes.size()));
  for (const ClassInfo &C : P.Classes) {
    H.add(P.Names.str(C.Name));
    H.add(C.Super == InvalidId ? std::string_view("<root>")
                               : std::string_view(
                                     P.Names.str(P.Classes[C.Super].Name)));
    H.add(static_cast<uint64_t>(C.Flags));
    H.add(static_cast<uint64_t>(C.OwnFields.size()));
    for (FieldId Fld : C.OwnFields)
      H.add(P.fieldName(Fld));
  }
  H.add(static_cast<uint64_t>(P.Globals.size()));
  for (GlobalId G = 0; G < P.Globals.size(); ++G)
    H.add(P.globalName(G));
  H.add(static_cast<uint64_t>(P.AllocSites.size()));
  for (AllocSiteId A = 0; A < P.AllocSites.size(); ++A) {
    std::ostringstream OS;
    emitAllocSite(OS, P, A);
    H.add(OS.str());
  }
  H.add(static_cast<uint64_t>(P.Funcs.size()));
  for (FuncId F = 0; F < P.Funcs.size(); ++F)
    H.add(fingerprintFunction(P, F));
  H.add(P.EntryFunc == InvalidId ? std::string("<none>")
                                 : P.funcName(P.EntryFunc));
  return H.hash();
}
