//===- Fingerprint.h - Stable structural IR fingerprints --------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stable structural fingerprints of IR entities, the identity layer of the
/// persistent refutation cache (docs/CACHING.md). A fingerprint must be
/// identical across processes for structurally identical input (dense ids
/// may be assigned differently between compilations, so every cross-entity
/// reference is serialized by *name*, never by id) and must change whenever
/// anything that can influence an analysis verdict changes: an instruction,
/// a terminator, a callee, a field or global name, an allocation label, or
/// the signature.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_IR_FINGERPRINT_H
#define THRESHER_IR_FINGERPRINT_H

#include "ir/Program.h"

#include <string>
#include <string_view>

namespace thresher {

/// Incremental FNV-1a 64-bit hasher. Deliberately boring: the value is
/// persisted in cache files, so the algorithm is part of the on-disk
/// format and must never depend on platform, pointer width, or libc++.
class StableHasher {
public:
  static constexpr uint64_t Offset = 0xcbf29ce484222325ull;
  static constexpr uint64_t Prime = 0x100000001b3ull;

  void addByte(uint8_t B) {
    H ^= B;
    H *= Prime;
  }
  void add(std::string_view S) {
    // Length-prefix so ("ab","c") and ("a","bc") never collide.
    add(static_cast<uint64_t>(S.size()));
    for (char C : S)
      addByte(static_cast<uint8_t>(C));
  }
  void add(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      addByte(static_cast<uint8_t>(V >> (I * 8)));
  }
  uint64_t hash() const { return H; }

private:
  uint64_t H = Offset;
};

/// Hash of an arbitrary string (length-prefixed FNV-1a).
uint64_t fingerprintString(std::string_view S);

/// Canonical, name-based serialization of function \p F: signature, blocks,
/// instructions, terminators. Two compilations of the same source produce
/// identical text; any structural edit changes it. Exposed (rather than
/// only the hash) so tests can distinguish a hash collision from genuinely
/// identical structure, and for debugging cache invalidations.
std::string functionFingerprintText(const Program &P, FuncId F);

/// fingerprintString(functionFingerprintText(P, F)).
uint64_t fingerprintFunction(const Program &P, FuncId F);

/// Whole-program fingerprint: classes (name, super, fields, flags),
/// globals, allocation sites, and every function fingerprint, plus the
/// entry function. Changes iff some functionFingerprintText or program
/// shape changes.
uint64_t fingerprintProgram(const Program &P);

} // namespace thresher

#endif // THRESHER_IR_FINGERPRINT_H
