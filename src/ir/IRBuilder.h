//===- IRBuilder.h - Fluent program construction API ------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ProgramBuilder/FunctionBuilder: the programmatic way to construct IR.
/// The mini-Java frontend lowers through this API, and tests/examples that
/// need precise control over the IR use it directly.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_IR_IRBUILDER_H
#define THRESHER_IR_IRBUILDER_H

#include "ir/Program.h"

#include <memory>
#include <string_view>

namespace thresher {

class ProgramBuilder;

/// Builds one function's body block by block. Obtained from
/// ProgramBuilder::beginFunc; call finish() when the body is complete.
class FunctionBuilder {
public:
  /// Returns the VarId of parameter \p I (params occupy slots 0..N-1;
  /// for instance methods slot 0 is `this`).
  VarId param(uint32_t I) const;

  /// Allocates a fresh local variable slot.
  VarId newVar(std::string_view Name = "");

  /// Sets the debug name of an existing local (e.g. a parameter).
  void setVarName(VarId V, std::string_view Name);

  /// Creates a new (empty, unterminated) basic block.
  BlockId newBlock();

  /// Makes \p B the current insertion block.
  void setBlock(BlockId B);

  BlockId curBlock() const { return Cur; }

  // --- Instructions (appended to the current block). ---
  void assign(VarId Dst, VarId Src);
  void constInt(VarId Dst, int64_t V);
  void constNull(VarId Dst);
  /// Dst = new C(); returns the fresh allocation site.
  AllocSiteId newObj(VarId Dst, ClassId C, std::string_view Label = "");
  /// Dst = new C[LenVar].
  AllocSiteId newArray(VarId Dst, ClassId Elem, VarId LenVar,
                       std::string_view Label = "");
  /// Dst = new C[LenConst].
  AllocSiteId newArrayConst(VarId Dst, ClassId Elem, int64_t LenConst,
                            std::string_view Label = "");
  /// Dst = "Lit" (allocates a String at a fresh site).
  AllocSiteId constStr(VarId Dst, std::string_view Lit,
                       std::string_view Label = "");
  void load(VarId Dst, VarId Base, FieldId F);
  void store(VarId Base, FieldId F, VarId Src);
  void loadStatic(VarId Dst, GlobalId G);
  void storeStatic(GlobalId G, VarId Src);
  void arrayLoad(VarId Dst, VarId Arr, VarId Idx);
  void arrayStore(VarId Arr, VarId Idx, VarId Src);
  void arrayLen(VarId Dst, VarId Arr);
  void havoc(VarId Dst);
  void binop(VarId Dst, VarId A, BinopKind K, VarId B);
  void binopConst(VarId Dst, VarId A, BinopKind K, int64_t C);
  /// Virtual call: Dst = Args[0].Method(Args[1..]). Dst may be NoVar.
  void callVirtual(VarId Dst, std::string_view Method,
                   std::vector<VarId> Args);
  /// Direct (static / constructor) call.
  void callDirect(VarId Dst, FuncId Callee, std::vector<VarId> Args);

  // --- Terminators (seal the current block). ---
  void jump(BlockId Target);
  void branch(VarId Lhs, RelOp R, VarId Rhs, BlockId Then, BlockId Else);
  void branchConst(VarId Lhs, RelOp R, int64_t RhsConst, BlockId Then,
                   BlockId Else);
  void branchNull(VarId Lhs, RelOp R, BlockId Then, BlockId Else);
  void retVoid();
  void ret(VarId V);

  /// Seals the function (verifies every block is terminated) and returns
  /// its id. The builder must not be used afterwards.
  FuncId finish();

  FuncId funcId() const { return F; }

private:
  friend class ProgramBuilder;
  FunctionBuilder(ProgramBuilder &PB, FuncId F) : PB(PB), F(F) {}

  Function &func();
  void append(Instruction I);
  void setTerm(Terminator T);

  ProgramBuilder &PB;
  FuncId F;
  BlockId Cur = 0;
  bool Finished = false;
};

/// Builds a whole Program. Creates the well-known Object and String classes
/// and the @elems pseudo-field up front.
class ProgramBuilder {
public:
  ProgramBuilder();

  /// Adds a class deriving from \p Super (defaults to Object).
  ClassId addClass(std::string_view Name, ClassId Super = InvalidId,
                   uint8_t Flags = CF_None);

  /// Declares an instance field on \p Owner.
  FieldId addField(ClassId Owner, std::string_view Name);

  /// Declares a static field.
  GlobalId addGlobal(ClassId Owner, std::string_view Name);

  /// Starts a function. For instance methods pass the owner class and
  /// IsStatic=false; slot 0 is then `this` and NumParams must include it.
  /// Instance methods are registered for virtual dispatch under \p Name
  /// unless \p RegisterVirtual is false (used for constructors, which are
  /// always called directly).
  FunctionBuilder beginFunc(std::string_view Name, uint32_t NumParams,
                            ClassId Owner = InvalidId, bool IsStatic = true,
                            bool RegisterVirtual = true);

  /// Returns a builder positioned at the entry block of an already-begun
  /// function (used by the frontend's two-pass lowering).
  FunctionBuilder resumeFunc(FuncId F);

  /// Designates the entry (harness) function.
  void setEntry(FuncId F) { P->EntryFunc = F; }

  /// Finalizes: runs CFG analyses on every function and returns the program.
  std::unique_ptr<Program> take();

  Program &prog() { return *P; }
  const Program &prog() const { return *P; }

private:
  friend class FunctionBuilder;
  AllocSiteId addAllocSite(ClassId C, FuncId InFunc, std::string_view Label,
                           bool IsArray, std::string_view StrLit = "");

  std::unique_ptr<Program> P;
  uint32_t AnonAllocCount = 0;
};

} // namespace thresher

#endif // THRESHER_IR_IRBUILDER_H
