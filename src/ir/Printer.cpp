#include "ir/Printer.h"

#include <sstream>

using namespace thresher;

namespace {

const char *relOpText(RelOp R) {
  switch (R) {
  case RelOp::EQ:
    return "==";
  case RelOp::NE:
    return "!=";
  case RelOp::LT:
    return "<";
  case RelOp::LE:
    return "<=";
  case RelOp::GT:
    return ">";
  case RelOp::GE:
    return ">=";
  }
  return "?";
}

const char *binopText(BinopKind K) {
  switch (K) {
  case BinopKind::Add:
    return "+";
  case BinopKind::Sub:
    return "-";
  case BinopKind::Mul:
    return "*";
  case BinopKind::Div:
    return "/";
  case BinopKind::Rem:
    return "%";
  }
  return "?";
}

} // namespace

std::string thresher::printInstruction(const Program &P, const Function &Fn,
                                       const Instruction &I) {
  std::ostringstream OS;
  auto V = [&](VarId Id) { return Fn.varName(Id); };
  switch (I.Op) {
  case Opcode::Assign:
    OS << V(I.Dst) << " = " << V(I.Src);
    break;
  case Opcode::ConstInt:
    OS << V(I.Dst) << " = " << I.IntVal;
    break;
  case Opcode::ConstNull:
    OS << V(I.Dst) << " = null";
    break;
  case Opcode::New:
    OS << V(I.Dst) << " = new " << P.className(I.Class) << " @"
       << P.allocLabel(I.Alloc);
    break;
  case Opcode::NewArray:
    OS << V(I.Dst) << " = new " << P.className(I.Class) << "[";
    if (I.RhsIsConst)
      OS << I.IntVal;
    else
      OS << V(I.Src);
    OS << "] @" << P.allocLabel(I.Alloc);
    break;
  case Opcode::Load:
    OS << V(I.Dst) << " = " << V(I.Src) << "." << P.fieldName(I.Field);
    break;
  case Opcode::Store:
    OS << V(I.Dst) << "." << P.fieldName(I.Field) << " = " << V(I.Src);
    break;
  case Opcode::LoadStatic:
    OS << V(I.Dst) << " = " << P.globalName(I.Global);
    break;
  case Opcode::StoreStatic:
    OS << P.globalName(I.Global) << " = " << V(I.Src);
    break;
  case Opcode::ArrayLoad:
    OS << V(I.Dst) << " = " << V(I.Src) << "[" << V(I.Src2) << "]";
    break;
  case Opcode::ArrayStore:
    OS << V(I.Dst) << "[" << V(I.Src2) << "] = " << V(I.Src);
    break;
  case Opcode::ArrayLen:
    OS << V(I.Dst) << " = " << V(I.Src) << ".length";
    break;
  case Opcode::Binop:
    OS << V(I.Dst) << " = " << V(I.Src) << " " << binopText(I.BK) << " ";
    if (I.RhsIsConst)
      OS << I.IntVal;
    else
      OS << V(I.Src2);
    break;
  case Opcode::Havoc:
    OS << V(I.Dst) << " = havoc";
    break;
  case Opcode::Call: {
    if (I.Dst != NoVar)
      OS << V(I.Dst) << " = ";
    if (I.IsVirtual) {
      OS << V(I.Args[0]) << "." << P.Names.str(I.Method) << "(";
      for (size_t K = 1; K < I.Args.size(); ++K)
        OS << (K > 1 ? ", " : "") << V(I.Args[K]);
    } else {
      OS << P.funcName(I.DirectCallee) << "(";
      for (size_t K = 0; K < I.Args.size(); ++K)
        OS << (K > 0 ? ", " : "") << V(I.Args[K]);
    }
    OS << ")";
    break;
  }
  }
  return OS.str();
}

std::string thresher::printTerminator(const Program &P, const Function &Fn,
                                      const Terminator &T) {
  (void)P;
  std::ostringstream OS;
  auto V = [&](VarId Id) { return Fn.varName(Id); };
  switch (T.Kind) {
  case TermKind::Goto:
    OS << "goto bb" << T.Then;
    break;
  case TermKind::If:
    OS << "if " << V(T.Lhs) << " " << relOpText(T.Rel) << " ";
    switch (T.RhsKind) {
    case CondRhsKind::Var:
      OS << V(T.Rhs);
      break;
    case CondRhsKind::IntConst:
      OS << T.RhsConst;
      break;
    case CondRhsKind::Null:
      OS << "null";
      break;
    }
    OS << " then bb" << T.Then << " else bb" << T.Else;
    break;
  case TermKind::Return:
    OS << "return";
    if (T.HasRetVal)
      OS << " " << V(T.RetVal);
    break;
  }
  return OS.str();
}

void thresher::printFunction(std::ostream &OS, const Program &P, FuncId F) {
  const Function &Fn = P.Funcs[F];
  OS << "func " << P.funcName(F) << "(" << Fn.NumParams << " params, "
     << Fn.NumVars << " vars)" << (Fn.IsStatic ? " static" : "") << " {\n";
  for (BlockId B = 0; B < Fn.Blocks.size(); ++B) {
    OS << " bb" << B << ":\n";
    for (const Instruction &I : Fn.Blocks[B].Insts)
      OS << "    " << printInstruction(P, Fn, I) << "\n";
    OS << "    " << printTerminator(P, Fn, Fn.Blocks[B].Term) << "\n";
  }
  OS << "}\n";
}

void thresher::printProgram(std::ostream &OS, const Program &P) {
  for (ClassId C = 0; C < P.Classes.size(); ++C) {
    const ClassInfo &CI = P.Classes[C];
    OS << "class " << P.className(C);
    if (CI.Super != InvalidId)
      OS << " extends " << P.className(CI.Super);
    if (CI.isContainer())
      OS << " [container]";
    OS << " {";
    for (FieldId F : CI.OwnFields)
      OS << " " << P.fieldName(F) << ";";
    OS << " }\n";
  }
  for (GlobalId G = 0; G < P.Globals.size(); ++G)
    OS << "static " << P.globalName(G) << ";\n";
  for (FuncId F = 0; F < P.Funcs.size(); ++F)
    printFunction(OS, P, F);
  if (P.EntryFunc != InvalidId)
    OS << "entry: " << P.funcName(P.EntryFunc) << "\n";
}
