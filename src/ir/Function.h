//===- Function.h - Functions, blocks, CFG analyses -------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Functions (methods) with their basic-block CFGs, plus the derived CFG
/// facts the backwards symbolic executor needs: predecessor lists,
/// dominators, and natural-loop information (headers, bodies, and the
/// variables/fields/globals a loop body may modify).
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_IR_FUNCTION_H
#define THRESHER_IR_FUNCTION_H

#include "ir/Instruction.h"
#include "support/IdSet.h"

#include <string>
#include <vector>

namespace thresher {

/// A basic block: straight-line instructions plus one terminator.
struct BasicBlock {
  std::vector<Instruction> Insts;
  Terminator Term;
};

/// Sets of things a region of code may modify; used both for loop widening
/// and (per-function, transitively) for sound call skipping.
struct ModSet {
  IdSet Fields;   ///< Instance/array fields possibly written.
  IdSet Globals;  ///< Static fields possibly written.
  bool AllocatesOrCalls = false; ///< Region allocates or makes calls.

  bool mergeFrom(const ModSet &Other) {
    bool Changed = Fields.insertAll(Other.Fields);
    Changed |= Globals.insertAll(Other.Globals);
    if (Other.AllocatesOrCalls && !AllocatesOrCalls) {
      AllocatesOrCalls = true;
      Changed = true;
    }
    return Changed;
  }
};

/// Natural loop discovered from a back edge; Body includes the header.
struct LoopInfo {
  BlockId Header = InvalidId;
  IdSet Body;      ///< Block ids in the loop (header included).
  IdSet VarsWritten;   ///< Locals assigned anywhere in the body.
  ModSet Mods;     ///< Fields/globals the body writes (callees NOT included;
                   ///< the engine unions callee mod sets on demand).
  bool HasCalls = false; ///< Body contains call instructions.
};

/// A function (free function or method).
struct Function {
  NameId Name = InvalidId;
  ClassId Owner = InvalidId;  ///< Owning class for methods, InvalidId else.
  bool IsStatic = true;       ///< Instance methods receive `this` as param 0.
  uint32_t NumParams = 0;     ///< Locals [0, NumParams) are parameters.
  uint32_t NumVars = 0;       ///< Total local slots (params included).
  std::vector<std::string> VarNames; ///< Debug names, may be shorter.
  std::vector<BasicBlock> Blocks;
  BlockId Entry = 0;

  // ---- Derived facts, filled in by analyze(). ----
  std::vector<std::vector<BlockId>> Preds;
  std::vector<LoopInfo> Loops;             ///< One per loop header.
  std::vector<uint32_t> LoopIndexOfHeader; ///< Block -> index or InvalidId.
  ModSet LocalMods; ///< Fields/globals written directly by this function.
  bool Analyzed = false;

  /// Successor block ids of \p B.
  std::vector<BlockId> successors(BlockId B) const;

  /// True if \p B heads a natural loop.
  bool isLoopHeader(BlockId B) const {
    return Analyzed && B < LoopIndexOfHeader.size() &&
           LoopIndexOfHeader[B] != InvalidId;
  }

  /// Loop info for header \p B; must be a loop header.
  const LoopInfo &loopAt(BlockId B) const;

  /// Computes Preds, dominators, natural loops, and mod summaries.
  /// Call once after the body is complete (the builder does this).
  void analyze();

  /// Returns a debug name for local \p V.
  std::string varName(VarId V) const;
};

} // namespace thresher

#endif // THRESHER_IR_FUNCTION_H
