#include "ir/Function.h"

#include <cassert>

using namespace thresher;

RelOp thresher::negateRelOp(RelOp R) {
  switch (R) {
  case RelOp::EQ:
    return RelOp::NE;
  case RelOp::NE:
    return RelOp::EQ;
  case RelOp::LT:
    return RelOp::GE;
  case RelOp::LE:
    return RelOp::GT;
  case RelOp::GT:
    return RelOp::LE;
  case RelOp::GE:
    return RelOp::LT;
  }
  assert(false && "unknown relop");
  return RelOp::EQ;
}

RelOp thresher::swapRelOp(RelOp R) {
  switch (R) {
  case RelOp::EQ:
    return RelOp::EQ;
  case RelOp::NE:
    return RelOp::NE;
  case RelOp::LT:
    return RelOp::GT;
  case RelOp::LE:
    return RelOp::GE;
  case RelOp::GT:
    return RelOp::LT;
  case RelOp::GE:
    return RelOp::LE;
  }
  assert(false && "unknown relop");
  return RelOp::EQ;
}

std::vector<BlockId> Function::successors(BlockId B) const {
  assert(B < Blocks.size() && "block out of range");
  const Terminator &T = Blocks[B].Term;
  switch (T.Kind) {
  case TermKind::Goto:
    return {T.Then};
  case TermKind::If:
    if (T.Then == T.Else)
      return {T.Then};
    return {T.Then, T.Else};
  case TermKind::Return:
    return {};
  }
  return {};
}

const LoopInfo &Function::loopAt(BlockId B) const {
  assert(isLoopHeader(B) && "not a loop header");
  return Loops[LoopIndexOfHeader[B]];
}

std::string Function::varName(VarId V) const {
  if (V < VarNames.size() && !VarNames[V].empty())
    return VarNames[V];
  return "v" + std::to_string(V);
}

namespace {

/// Records the destination local of \p I into \p Vars and its heap effects
/// into \p Mods.
void recordWrites(const Instruction &I, IdSet &Vars, ModSet &Mods,
                  bool &HasCalls) {
  if (I.Dst != NoVar && I.Op != Opcode::Store && I.Op != Opcode::ArrayStore)
    Vars.insert(I.Dst);
  switch (I.Op) {
  case Opcode::Store:
    Mods.Fields.insert(I.Field);
    break;
  case Opcode::ArrayStore:
    Mods.Fields.insert(I.Field); // The @elems pseudo-field.
    break;
  case Opcode::StoreStatic:
    Mods.Globals.insert(I.Global);
    break;
  case Opcode::New:
  case Opcode::NewArray:
    Mods.AllocatesOrCalls = true;
    break;
  case Opcode::Call:
    Mods.AllocatesOrCalls = true;
    HasCalls = true;
    break;
  default:
    break;
  }
}

} // namespace

void Function::analyze() {
  size_t N = Blocks.size();
  Preds.assign(N, {});
  for (BlockId B = 0; B < N; ++B)
    for (BlockId S : successors(B))
      Preds[S].push_back(B);

  // Iterative dominator computation (small CFGs; simplicity over speed).
  // Dom[B] is the set of blocks dominating B, as a bitset in a vector.
  std::vector<std::vector<bool>> Dom(N, std::vector<bool>(N, true));
  if (N > 0) {
    Dom[Entry].assign(N, false);
    Dom[Entry][Entry] = true;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BlockId B = 0; B < N; ++B) {
        if (B == Entry)
          continue;
        std::vector<bool> NewDom(N, true);
        if (Preds[B].empty())
          NewDom.assign(N, false); // Unreachable: dominated by nothing.
        for (BlockId P : Preds[B])
          for (size_t K = 0; K < N; ++K)
            NewDom[K] = NewDom[K] && Dom[P][K];
        NewDom[B] = true;
        if (NewDom != Dom[B]) {
          Dom[B] = std::move(NewDom);
          Changed = true;
        }
      }
    }
  }

  // Natural loops: back edge B -> H where H dominates B. The body is the set
  // of blocks that reach B without passing through H.
  Loops.clear();
  LoopIndexOfHeader.assign(N, InvalidId);
  for (BlockId B = 0; B < N; ++B) {
    for (BlockId H : successors(B)) {
      if (!Dom[B][H])
        continue;
      // Found back edge B -> H. Merge into an existing loop at H if any.
      uint32_t Idx = LoopIndexOfHeader[H];
      if (Idx == InvalidId) {
        Idx = static_cast<uint32_t>(Loops.size());
        Loops.push_back({});
        Loops[Idx].Header = H;
        Loops[Idx].Body.insert(H);
        LoopIndexOfHeader[H] = Idx;
      }
      LoopInfo &L = Loops[Idx];
      // Backwards reachability from B, stopping at H.
      std::vector<BlockId> Work;
      if (L.Body.insert(B))
        Work.push_back(B);
      while (!Work.empty()) {
        BlockId Cur = Work.back();
        Work.pop_back();
        if (Cur == H)
          continue;
        for (BlockId P : Preds[Cur])
          if (L.Body.insert(P))
            Work.push_back(P);
      }
    }
  }

  // Per-loop and per-function write summaries.
  LocalMods = {};
  bool IgnoredCalls = false;
  IdSet IgnoredVars;
  for (const BasicBlock &BB : Blocks)
    for (const Instruction &I : BB.Insts)
      recordWrites(I, IgnoredVars, LocalMods, IgnoredCalls);

  for (LoopInfo &L : Loops) {
    for (uint32_t B : L.Body) {
      for (const Instruction &I : Blocks[B].Insts)
        recordWrites(I, L.VarsWritten, L.Mods, L.HasCalls);
    }
  }

  Analyzed = true;
}
