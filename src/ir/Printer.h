//===- Printer.h - Textual IR dumping ---------------------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef THRESHER_IR_PRINTER_H
#define THRESHER_IR_PRINTER_H

#include "ir/Program.h"

#include <ostream>
#include <string>

namespace thresher {

/// Renders one instruction of \p Fn as text.
std::string printInstruction(const Program &P, const Function &Fn,
                             const Instruction &I);

/// Renders a terminator as text.
std::string printTerminator(const Program &P, const Function &Fn,
                            const Terminator &T);

/// Dumps a full function.
void printFunction(std::ostream &OS, const Program &P, FuncId F);

/// Dumps the whole program.
void printProgram(std::ostream &OS, const Program &P);

} // namespace thresher

#endif // THRESHER_IR_PRINTER_H
