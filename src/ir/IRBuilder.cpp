#include "ir/IRBuilder.h"

#include <cassert>

using namespace thresher;

//===----------------------------------------------------------------------===//
// ProgramBuilder
//===----------------------------------------------------------------------===//

ProgramBuilder::ProgramBuilder() : P(std::make_unique<Program>()) {
  P->ObjectClass = addClass("Object");
  P->StringClass = addClass("String");
  // The synthetic field for array element contents.
  FieldInfo FI;
  FI.Name = P->Names.intern("@elems");
  FI.Owner = InvalidId;
  P->Fields.push_back(FI);
  P->ElemsField = static_cast<FieldId>(P->Fields.size() - 1);
}

ClassId ProgramBuilder::addClass(std::string_view Name, ClassId Super,
                                 uint8_t Flags) {
  ClassInfo CI;
  CI.Name = P->Names.intern(Name);
  CI.Super = (Super == InvalidId && !P->Classes.empty()) ? P->ObjectClass
                                                         : Super;
  if (P->Classes.empty())
    CI.Super = InvalidId; // The root class (Object) has no superclass.
  CI.Flags = Flags;
  P->Classes.push_back(std::move(CI));
  return static_cast<ClassId>(P->Classes.size() - 1);
}

FieldId ProgramBuilder::addField(ClassId Owner, std::string_view Name) {
  assert(Owner < P->Classes.size() && "bad owner class");
  FieldInfo FI;
  FI.Name = P->Names.intern(Name);
  FI.Owner = Owner;
  P->Fields.push_back(FI);
  FieldId F = static_cast<FieldId>(P->Fields.size() - 1);
  P->Classes[Owner].OwnFields.push_back(F);
  return F;
}

GlobalId ProgramBuilder::addGlobal(ClassId Owner, std::string_view Name) {
  GlobalInfo GI;
  GI.Name = P->Names.intern(Name);
  GI.Owner = Owner;
  P->Globals.push_back(GI);
  return static_cast<GlobalId>(P->Globals.size() - 1);
}

FunctionBuilder ProgramBuilder::beginFunc(std::string_view Name,
                                          uint32_t NumParams, ClassId Owner,
                                          bool IsStatic,
                                          bool RegisterVirtual) {
  Function Fn;
  Fn.Name = P->Names.intern(Name);
  Fn.Owner = Owner;
  Fn.IsStatic = IsStatic;
  Fn.NumParams = NumParams;
  Fn.NumVars = NumParams;
  Fn.Blocks.emplace_back(); // Entry block.
  P->Funcs.push_back(std::move(Fn));
  FuncId F = static_cast<FuncId>(P->Funcs.size() - 1);
  if (Owner != InvalidId && !IsStatic && RegisterVirtual)
    P->Classes[Owner].Methods[P->Funcs[F].Name] = F;
  return FunctionBuilder(*this, F);
}

FunctionBuilder ProgramBuilder::resumeFunc(FuncId F) {
  assert(F < P->Funcs.size() && "bad function id");
  return FunctionBuilder(*this, F);
}

AllocSiteId ProgramBuilder::addAllocSite(ClassId C, FuncId InFunc,
                                         std::string_view Label, bool IsArray,
                                         std::string_view StrLit) {
  AllocSiteInfo AI;
  AI.Class = C;
  AI.InFunc = InFunc;
  std::string L(Label);
  if (L.empty())
    L = "alloc" + std::to_string(AnonAllocCount++);
  AI.Label = P->Names.intern(L);
  AI.IsArray = IsArray;
  if (!StrLit.empty() || C == P->StringClass)
    AI.StrLiteral = P->Names.intern(StrLit);
  P->AllocSites.push_back(AI);
  return static_cast<AllocSiteId>(P->AllocSites.size() - 1);
}

std::unique_ptr<Program> ProgramBuilder::take() {
  for (Function &Fn : P->Funcs)
    if (!Fn.Analyzed)
      Fn.analyze();
  return std::move(P);
}

//===----------------------------------------------------------------------===//
// FunctionBuilder
//===----------------------------------------------------------------------===//

Function &FunctionBuilder::func() { return PB.P->Funcs[F]; }

VarId FunctionBuilder::param(uint32_t I) const {
  assert(I < PB.P->Funcs[F].NumParams && "param index out of range");
  return I;
}

VarId FunctionBuilder::newVar(std::string_view Name) {
  Function &Fn = func();
  VarId V = Fn.NumVars++;
  Fn.VarNames.resize(Fn.NumVars);
  Fn.VarNames[V] = std::string(Name);
  return V;
}

void FunctionBuilder::setVarName(VarId V, std::string_view Name) {
  Function &Fn = func();
  assert(V < Fn.NumVars && "bad variable id");
  if (Fn.VarNames.size() < Fn.NumVars)
    Fn.VarNames.resize(Fn.NumVars);
  Fn.VarNames[V] = std::string(Name);
}

BlockId FunctionBuilder::newBlock() {
  func().Blocks.emplace_back();
  return static_cast<BlockId>(func().Blocks.size() - 1);
}

void FunctionBuilder::setBlock(BlockId B) {
  assert(B < func().Blocks.size() && "bad block");
  Cur = B;
}

void FunctionBuilder::append(Instruction I) {
  assert(!Finished && "builder already finished");
  func().Blocks[Cur].Insts.push_back(std::move(I));
}

void FunctionBuilder::setTerm(Terminator T) {
  assert(!Finished && "builder already finished");
  func().Blocks[Cur].Term = T;
}

void FunctionBuilder::assign(VarId Dst, VarId Src) {
  Instruction I;
  I.Op = Opcode::Assign;
  I.Dst = Dst;
  I.Src = Src;
  append(std::move(I));
}

void FunctionBuilder::constInt(VarId Dst, int64_t V) {
  Instruction I;
  I.Op = Opcode::ConstInt;
  I.Dst = Dst;
  I.IntVal = V;
  append(std::move(I));
}

void FunctionBuilder::constNull(VarId Dst) {
  Instruction I;
  I.Op = Opcode::ConstNull;
  I.Dst = Dst;
  append(std::move(I));
}

AllocSiteId FunctionBuilder::newObj(VarId Dst, ClassId C,
                                    std::string_view Label) {
  AllocSiteId A = PB.addAllocSite(C, F, Label, /*IsArray=*/false);
  Instruction I;
  I.Op = Opcode::New;
  I.Dst = Dst;
  I.Class = C;
  I.Alloc = A;
  append(std::move(I));
  return A;
}

AllocSiteId FunctionBuilder::newArray(VarId Dst, ClassId Elem, VarId LenVar,
                                      std::string_view Label) {
  AllocSiteId A = PB.addAllocSite(Elem, F, Label, /*IsArray=*/true);
  Instruction I;
  I.Op = Opcode::NewArray;
  I.Dst = Dst;
  I.Src = LenVar;
  I.Class = Elem;
  I.Alloc = A;
  append(std::move(I));
  return A;
}

AllocSiteId FunctionBuilder::newArrayConst(VarId Dst, ClassId Elem,
                                           int64_t LenConst,
                                           std::string_view Label) {
  AllocSiteId A = PB.addAllocSite(Elem, F, Label, /*IsArray=*/true);
  Instruction I;
  I.Op = Opcode::NewArray;
  I.Dst = Dst;
  I.Class = Elem;
  I.Alloc = A;
  I.IntVal = LenConst;
  I.RhsIsConst = true;
  append(std::move(I));
  return A;
}

AllocSiteId FunctionBuilder::constStr(VarId Dst, std::string_view Lit,
                                      std::string_view Label) {
  std::string L(Label);
  if (L.empty())
    L = "str\"" + std::string(Lit) + "\"";
  AllocSiteId A =
      PB.addAllocSite(PB.P->StringClass, F, L, /*IsArray=*/false, Lit);
  Instruction I;
  I.Op = Opcode::New;
  I.Dst = Dst;
  I.Class = PB.P->StringClass;
  I.Alloc = A;
  append(std::move(I));
  return A;
}

void FunctionBuilder::load(VarId Dst, VarId Base, FieldId Fld) {
  Instruction I;
  I.Op = Opcode::Load;
  I.Dst = Dst;
  I.Src = Base;
  I.Field = Fld;
  append(std::move(I));
}

void FunctionBuilder::store(VarId Base, FieldId Fld, VarId Src) {
  Instruction I;
  I.Op = Opcode::Store;
  I.Dst = Base;
  I.Src = Src;
  I.Field = Fld;
  append(std::move(I));
}

void FunctionBuilder::loadStatic(VarId Dst, GlobalId G) {
  Instruction I;
  I.Op = Opcode::LoadStatic;
  I.Dst = Dst;
  I.Global = G;
  append(std::move(I));
}

void FunctionBuilder::storeStatic(GlobalId G, VarId Src) {
  Instruction I;
  I.Op = Opcode::StoreStatic;
  I.Src = Src;
  I.Global = G;
  append(std::move(I));
}

void FunctionBuilder::arrayLoad(VarId Dst, VarId Arr, VarId Idx) {
  Instruction I;
  I.Op = Opcode::ArrayLoad;
  I.Dst = Dst;
  I.Src = Arr;
  I.Src2 = Idx;
  I.Field = PB.P->ElemsField;
  append(std::move(I));
}

void FunctionBuilder::arrayStore(VarId Arr, VarId Idx, VarId Src) {
  Instruction I;
  I.Op = Opcode::ArrayStore;
  I.Dst = Arr;
  I.Src = Src;
  I.Src2 = Idx;
  I.Field = PB.P->ElemsField;
  append(std::move(I));
}

void FunctionBuilder::arrayLen(VarId Dst, VarId Arr) {
  Instruction I;
  I.Op = Opcode::ArrayLen;
  I.Dst = Dst;
  I.Src = Arr;
  append(std::move(I));
}

void FunctionBuilder::havoc(VarId Dst) {
  Instruction I;
  I.Op = Opcode::Havoc;
  I.Dst = Dst;
  append(std::move(I));
}

void FunctionBuilder::binop(VarId Dst, VarId A, BinopKind K, VarId B) {
  Instruction I;
  I.Op = Opcode::Binop;
  I.Dst = Dst;
  I.Src = A;
  I.Src2 = B;
  I.BK = K;
  append(std::move(I));
}

void FunctionBuilder::binopConst(VarId Dst, VarId A, BinopKind K, int64_t C) {
  Instruction I;
  I.Op = Opcode::Binop;
  I.Dst = Dst;
  I.Src = A;
  I.BK = K;
  I.IntVal = C;
  I.RhsIsConst = true;
  append(std::move(I));
}

void FunctionBuilder::callVirtual(VarId Dst, std::string_view Method,
                                  std::vector<VarId> Args) {
  assert(!Args.empty() && "virtual call needs a receiver");
  Instruction I;
  I.Op = Opcode::Call;
  I.Dst = Dst;
  I.IsVirtual = true;
  I.Method = PB.P->Names.intern(Method);
  I.Args = std::move(Args);
  append(std::move(I));
}

void FunctionBuilder::callDirect(VarId Dst, FuncId Callee,
                                 std::vector<VarId> Args) {
  assert(Callee < PB.P->Funcs.size() && "bad callee");
  assert(Args.size() == PB.P->Funcs[Callee].NumParams &&
         "arity mismatch in direct call");
  Instruction I;
  I.Op = Opcode::Call;
  I.Dst = Dst;
  I.IsVirtual = false;
  I.DirectCallee = Callee;
  I.Args = std::move(Args);
  append(std::move(I));
}

void FunctionBuilder::jump(BlockId Target) {
  setTerm(Terminator::mkGoto(Target));
}

void FunctionBuilder::branch(VarId Lhs, RelOp R, VarId Rhs, BlockId Then,
                             BlockId Else) {
  Terminator T;
  T.Kind = TermKind::If;
  T.Lhs = Lhs;
  T.Rel = R;
  T.RhsKind = CondRhsKind::Var;
  T.Rhs = Rhs;
  T.Then = Then;
  T.Else = Else;
  setTerm(T);
}

void FunctionBuilder::branchConst(VarId Lhs, RelOp R, int64_t RhsConst,
                                  BlockId Then, BlockId Else) {
  Terminator T;
  T.Kind = TermKind::If;
  T.Lhs = Lhs;
  T.Rel = R;
  T.RhsKind = CondRhsKind::IntConst;
  T.RhsConst = RhsConst;
  T.Then = Then;
  T.Else = Else;
  setTerm(T);
}

void FunctionBuilder::branchNull(VarId Lhs, RelOp R, BlockId Then,
                                 BlockId Else) {
  assert((R == RelOp::EQ || R == RelOp::NE) && "null compare must be ==/!=");
  Terminator T;
  T.Kind = TermKind::If;
  T.Lhs = Lhs;
  T.Rel = R;
  T.RhsKind = CondRhsKind::Null;
  T.Then = Then;
  T.Else = Else;
  setTerm(T);
}

void FunctionBuilder::retVoid() { setTerm(Terminator::mkReturnVoid()); }

void FunctionBuilder::ret(VarId V) { setTerm(Terminator::mkReturn(V)); }

FuncId FunctionBuilder::finish() {
  assert(!Finished && "builder already finished");
  Finished = true;
  func().analyze();
  return F;
}
