//===- Instruction.h - IR instructions and terminators ----------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set of the Java-like register IR consumed by the
/// points-to analysis, the concrete interpreter, and the backwards symbolic
/// executor. This corresponds to the atomic commands of Sec. 3 of the paper
/// (assignment, field read, field write, allocation, guard), extended with
/// the statics, arrays, arithmetic, and calls that the implementation
/// section requires.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_IR_INSTRUCTION_H
#define THRESHER_IR_INSTRUCTION_H

#include "ir/Ids.h"
#include "support/StringPool.h"

#include <cstdint>
#include <vector>

namespace thresher {

/// Instruction opcodes.
enum class Opcode : uint8_t {
  Assign,      ///< Dst = Src
  ConstInt,    ///< Dst = IntVal
  ConstNull,   ///< Dst = null
  New,         ///< Dst = new Class() at Alloc (also used for string literals)
  NewArray,    ///< Dst = new Class[Src or IntVal] at Alloc
  Load,        ///< Dst = Src.Field
  Store,       ///< Dst.Field = Src  (Dst is the base variable)
  LoadStatic,  ///< Dst = Global
  StoreStatic, ///< Global = Src
  ArrayLoad,   ///< Dst = Src[Src2]
  ArrayStore,  ///< Dst[Src2] = Src  (Dst is the array variable)
  ArrayLen,    ///< Dst = Src.length
  Binop,       ///< Dst = Src BK Src2   or   Dst = Src BK IntVal
  Call,        ///< Dst = Args[0].Method(Args[1..]) or direct call
  Havoc,       ///< Dst = nondeterministic int (harness choice points)
};

/// Arithmetic operators for Opcode::Binop.
enum class BinopKind : uint8_t { Add, Sub, Mul, Div, Rem };

/// Relational operators for conditional branches.
enum class RelOp : uint8_t { EQ, NE, LT, LE, GT, GE };

/// Returns the negation of \p R (used when taking the else edge).
RelOp negateRelOp(RelOp R);

/// Returns \p R with its operands swapped (e.g. LT becomes GT).
RelOp swapRelOp(RelOp R);

/// One IR instruction. A plain struct: the Opcode selects which fields are
/// meaningful (see the Opcode doc comments). Calls carry their argument list
/// inline; Args[0] is the receiver for virtual calls.
struct Instruction {
  Opcode Op = Opcode::Assign;
  VarId Dst = NoVar;
  VarId Src = NoVar;
  VarId Src2 = NoVar;
  FieldId Field = InvalidId;
  GlobalId Global = InvalidId;
  ClassId Class = InvalidId;
  AllocSiteId Alloc = InvalidId;
  int64_t IntVal = 0;
  BinopKind BK = BinopKind::Add;
  /// Binop: true when the right operand is IntVal rather than Src2.
  /// NewArray: true when the length is the constant IntVal.
  bool RhsIsConst = false;

  // Call payload.
  bool IsVirtual = false;        ///< Dispatch on Args[0]'s dynamic class.
  NameId Method = InvalidId;     ///< Selector name for virtual dispatch.
  FuncId DirectCallee = InvalidId; ///< Callee for non-virtual calls.
  std::vector<VarId> Args;       ///< Receiver first for virtual calls.
};

/// Terminator kinds for basic blocks.
enum class TermKind : uint8_t {
  Goto,   ///< Unconditional jump to Then.
  If,     ///< Conditional: branch on Lhs Rel Rhs (or constant / null).
  Return, ///< Return RetVal if HasRetVal, else void return.
};

/// Kinds for the right-hand side of an If condition.
enum class CondRhsKind : uint8_t { Var, IntConst, Null };

/// Block terminator. For If, the comparison is
///   Lhs Rel (Rhs | RhsConst | null)
/// and control goes to Then when it holds, Else otherwise.
struct Terminator {
  TermKind Kind = TermKind::Return;
  // If payload.
  VarId Lhs = NoVar;
  RelOp Rel = RelOp::EQ;
  CondRhsKind RhsKind = CondRhsKind::Var;
  VarId Rhs = NoVar;
  int64_t RhsConst = 0;
  BlockId Then = InvalidId; ///< Also the Goto target.
  BlockId Else = InvalidId;
  // Return payload.
  bool HasRetVal = false;
  VarId RetVal = NoVar;

  static Terminator mkGoto(BlockId Target) {
    Terminator T;
    T.Kind = TermKind::Goto;
    T.Then = Target;
    return T;
  }

  static Terminator mkReturnVoid() {
    Terminator T;
    T.Kind = TermKind::Return;
    return T;
  }

  static Terminator mkReturn(VarId V) {
    Terminator T;
    T.Kind = TermKind::Return;
    T.HasRetVal = true;
    T.RetVal = V;
    return T;
  }
};

} // namespace thresher

#endif // THRESHER_IR_INSTRUCTION_H
