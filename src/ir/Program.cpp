#include "ir/Program.h"

#include <cassert>

using namespace thresher;

bool Program::isSubclassOf(ClassId C, ClassId Base) const {
  while (C != InvalidId) {
    if (C == Base)
      return true;
    C = Classes[C].Super;
  }
  return false;
}

FuncId Program::resolveVirtual(ClassId C, NameId Method) const {
  while (C != InvalidId) {
    const ClassInfo &CI = Classes[C];
    auto It = CI.Methods.find(Method);
    if (It != CI.Methods.end())
      return It->second;
    C = CI.Super;
  }
  return InvalidId;
}

ClassId Program::findClass(std::string_view Name) const {
  NameId N = Names.lookup(Name);
  if (N == InvalidId)
    return InvalidId;
  for (ClassId C = 0; C < Classes.size(); ++C)
    if (Classes[C].Name == N)
      return C;
  return InvalidId;
}

GlobalId Program::findGlobal(std::string_view ClassName,
                             std::string_view FieldName) const {
  ClassId C = findClass(ClassName);
  NameId N = Names.lookup(FieldName);
  if (C == InvalidId || N == InvalidId)
    return InvalidId;
  for (GlobalId G = 0; G < Globals.size(); ++G)
    if (Globals[G].Owner == C && Globals[G].Name == N)
      return G;
  return InvalidId;
}

FieldId Program::findField(ClassId C, std::string_view Name) const {
  NameId N = Names.lookup(Name);
  if (N == InvalidId)
    return InvalidId;
  while (C != InvalidId) {
    for (FieldId F : Classes[C].OwnFields)
      if (Fields[F].Name == N)
        return F;
    C = Classes[C].Super;
  }
  return InvalidId;
}

FieldId Program::findFieldByName(std::string_view Name) const {
  NameId N = Names.lookup(Name);
  if (N == InvalidId)
    return InvalidId;
  for (FieldId F = 0; F < Fields.size(); ++F)
    if (Fields[F].Name == N)
      return F;
  return InvalidId;
}

FuncId Program::findFunc(std::string_view Name) const {
  NameId N = Names.lookup(Name);
  if (N == InvalidId)
    return InvalidId;
  for (FuncId F = 0; F < Funcs.size(); ++F)
    if (Funcs[F].Name == N)
      return F;
  return InvalidId;
}

FuncId Program::findMethod(ClassId C, std::string_view Name) const {
  NameId N = Names.lookup(Name);
  if (N == InvalidId || C == InvalidId)
    return InvalidId;
  auto It = Classes[C].Methods.find(N);
  return It == Classes[C].Methods.end() ? InvalidId : It->second;
}

std::string Program::className(ClassId C) const {
  if (C == InvalidId)
    return "<none>";
  return Names.str(Classes[C].Name);
}

std::string Program::fieldName(FieldId F) const {
  if (F == InvalidId)
    return "<none>";
  return Names.str(Fields[F].Name);
}

std::string Program::globalName(GlobalId G) const {
  if (G == InvalidId)
    return "<none>";
  const GlobalInfo &GI = Globals[G];
  std::string Owner =
      GI.Owner == InvalidId ? std::string("<global>") : className(GI.Owner);
  return Owner + "." + Names.str(GI.Name);
}

std::string Program::funcName(FuncId F) const {
  if (F == InvalidId)
    return "<none>";
  const Function &Fn = Funcs[F];
  if (Fn.Owner != InvalidId)
    return className(Fn.Owner) + "." + Names.str(Fn.Name);
  return Names.str(Fn.Name);
}

std::string Program::allocLabel(AllocSiteId A) const {
  if (A == InvalidId)
    return "<none>";
  return Names.str(AllocSites[A].Label);
}
