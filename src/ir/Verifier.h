//===- Verifier.h - IR well-formedness checks -------------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef THRESHER_IR_VERIFIER_H
#define THRESHER_IR_VERIFIER_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace thresher {

/// Checks structural well-formedness of \p P: every operand id in range,
/// every block terminated with in-range targets, direct-call arities
/// matching, and the entry function taking no parameters. Returns the list
/// of problems found (empty means well-formed).
std::vector<std::string> verifyProgram(const Program &P);

} // namespace thresher

#endif // THRESHER_IR_VERIFIER_H
