#include "android/Benchmarks.h"

#include <cassert>
#include <cstdio>
#include <sstream>

using namespace thresher;

namespace {

/// Accumulates generated classes plus the per-activity handler bodies.
class AppGen {
public:
  explicit AppGen(const AppSpec &Spec) : Spec(Spec) {
    Handlers.resize(std::max(1, Spec.Activities));
  }

  std::string generate() {
    int Slot = 0;
    auto NextSlot = [&]() {
      int S = Slot;
      Slot = (Slot + 1) % static_cast<int>(Handlers.size());
      return S;
    };
    if (Spec.CoupleVecWithHashMap && Spec.VecFalseAlarms > 0)
      genLabels();
    for (int I = 0; I < Spec.SingletonLeaks; ++I)
      genSingleton(I, NextSlot());
    for (int I = 0; I < Spec.LatentFlagAlarms; ++I)
      genLatentFlag(I, NextSlot());
    for (int I = 0; I < Spec.VecFalseAlarms; ++I)
      genVecAlarm(I, NextSlot());
    for (int I = 0; I < Spec.HashMapAlarms; ++I)
      genHashMapAlarm(I, NextSlot());
    for (int I = 0; I < Spec.ConflationFalseAlarms; ++I)
      genConflation(I, NextSlot());
    genActivitiesAndHarness();
    return Out.str();
  }

private:
  std::string num(int I) const { return std::to_string(I); }

  void handlerCall(int Slot, const std::string &Stmt) {
    Handlers[static_cast<size_t>(Slot)].push_back(Stmt);
  }

  // Shared label map coupling the Vec pattern to HashMap pollution.
  void genLabels() {
    LabelsEmitted = true;
    Out << "class Labels {\n"
        << "  static var table = new HashMap() @labelsMap;\n"
        << "  static get(k) {\n"
        << "    var t = Labels.table;\n"
        << "    var r = t.get(k);\n"
        << "    return r;\n"
        << "  }\n"
        << "  static put(k, v) {\n"
        << "    var t = Labels.table;\n"
        << "    t.put(k, v);\n"
        << "  }\n"
        << "}\n";
  }

  // Fig. 5: singleton adapter retaining its creating Activity. With
  // fanout > 1, several activities share the same singleton field, so one
  // static field accounts for several (field, Activity) alarm pairs, as in
  // the paper's DroidLife / SMSPopUp rows.
  void genSingleton(int I, int Slot) {
    std::string C = "Adapter" + num(I);
    Out << "class " << C << " extends ResourceCursorAdapter {\n"
        << "  static var sInstance;\n"
        << "  " << C << "(context) { super(context); }\n"
        << "  static getInstance(context) {\n"
        << "    if (" << C << ".sInstance == null) {\n"
        << "      " << C << ".sInstance = new " << C << "(context) @adr"
        << num(I) << ";\n"
        << "    }\n"
        << "    return " << C << ".sInstance;\n"
        << "  }\n"
        << "}\n";
    int Slots = static_cast<int>(Handlers.size());
    for (int K = 0; K < std::max(1, Spec.SingletonFanout); ++K)
      handlerCall((Slot + K) % Slots, C + ".getInstance(this);");
  }

  // StandupTimer: Activity cache behind a permanently-disabled flag.
  void genLatentFlag(int I, int Slot) {
    std::string C = "Dao" + num(I);
    Out << "class " << C << " {\n"
        << "  static var cachedInstance;\n"
        << "  static var cacheEnabled = 0;\n"
        << "  static cache(obj) {\n"
        << "    if (" << C << ".cacheEnabled != 0) {\n"
        << "      " << C << ".cachedInstance = obj;\n"
        << "    }\n"
        << "  }\n"
        << "}\n";
    handlerCall(Slot, C + ".cache(this);");
  }

  // Fig. 1: Activities into a local Vec, strings into a static Vec; the
  // shared EMPTY array conflates them flow-insensitively. With the
  // Labels coupling, the pushed string is fetched from a shared HashMap,
  // so under Ann?=N the polluted EMPTY_TABLE feeds the Vec searches.
  void genVecAlarm(int I, int Slot) {
    std::string C = "VecUser" + num(I);
    Out << "class " << C << " {\n"
        << "  static var names = new Vec() @vecStat" << num(I) << ";\n"
        << "  static remember(act) {\n"
        << "    var mine = new Vec() @vecLoc" << num(I) << ";\n"
        << "    mine.push(act);\n"
        << "    var n = " << C << ".names;\n";
    if (LabelsEmitted) {
      Out << "    Labels.put(\"tag" << num(I) << "\", \"label"
          << num(I) << "\");\n"
          << "    var label = Labels.get(\"tag" << num(I) << "\");\n"
          << "    n.push(label);\n";
    } else {
      Out << "    n.push(\"tag" << num(I) << "\");\n";
    }
    Out << "  }\n"
        << "}\n";
    handlerCall(Slot, C + ".remember(this);");
  }

  // HashMap pollution through EMPTY_TABLE, optionally behind wrappers.
  void genHashMapAlarm(int I, int Slot) {
    std::string C = "MapUser" + num(I);
    Out << "class " << C << " {\n"
        << "  static var registry = new HashMap() @mapStat" << num(I)
        << ";\n";
    // Wrapper chain: wD -> ... -> w0 -> put.
    Out << "  static w0(m, k, v) { m.put(k, v); }\n";
    for (int D = 1; D <= Spec.HashMapWrapperDepth; ++D)
      Out << "  static w" << D << "(m, k, v) { " << C << ".w" << (D - 1)
          << "(m, k, v); }\n";
    std::string Top = "w" + num(Spec.HashMapWrapperDepth);
    Out << "  static remember(act) {\n"
        << "    var mine = new HashMap() @mapLoc" << num(I) << ";\n"
        << "    " << C << "." << Top << "(mine, \"k" << num(I)
        << "\", act);\n"
        << "    var r = " << C << ".registry;\n"
        << "    " << C << "." << Top << "(r, \"r" << num(I) << "\", \"v"
        << num(I) << "\");\n"
        << "  }\n"
        << "}\n";
    handlerCall(Slot, C + ".remember(this);");
  }

  // Clear-before-publish: never leaks, but edge-wise refutation cannot
  // prove it (each edge is individually realizable).
  void genConflation(int I, int Slot) {
    if (!HolderEmitted) {
      HolderEmitted = true;
      Out << "class Holder { var item; }\n";
    }
    std::string C = "Pub" + num(I);
    Out << "class " << C << " {\n"
        << "  static var current;\n"
        << "  static wrap(x) {\n"
        << "    var h = new Holder() @hold" << num(I) << ";\n"
        << "    h.item = x;\n"
        << "    return h;\n"
        << "  }\n"
        << "  static publish(act) {\n"
        << "    var w = " << C << ".wrap(act);\n"
        << "    w.item = null;\n"
        << "    " << C << ".current = w;\n"
        << "  }\n"
        << "}\n";
    handlerCall(Slot, C + ".publish(this);");
  }

  void genActivitiesAndHarness() {
    for (size_t K = 0; K < Handlers.size(); ++K) {
      Out << "class MainActivity" << K << " extends Activity {\n"
          << "  onCreate() {\n";
      for (const std::string &Stmt : Handlers[K])
        Out << "    " << Stmt << "\n";
      Out << "  }\n"
          << "  onDestroy() { }\n"
          << "}\n";
    }
    // Harness: allocate each activity, then invoke each handler at most
    // once under nondeterministic guards (Sec. 4's harness, with a fixed
    // relative order between handlers of one activity).
    Out << "fun main() {\n";
    for (size_t K = 0; K < Handlers.size(); ++K)
      Out << "  var a" << K << " = new MainActivity" << K << "() @act" << K
          << ";\n";
    for (size_t K = 0; K < Handlers.size(); ++K) {
      Out << "  if (*) { a" << K << ".onCreate(); }\n";
      Out << "  if (*) { a" << K << ".onDestroy(); }\n";
    }
    Out << "}\n";
  }

  const AppSpec &Spec;
  std::ostringstream Out;
  std::vector<std::vector<std::string>> Handlers;
  bool HolderEmitted = false;
  bool LabelsEmitted = false;
};

} // namespace

std::string thresher::generateAppSource(const AppSpec &Spec) {
  AppGen G(Spec);
  return G.generate();
}

BenchmarkApp thresher::buildBenchmarkApp(const AppSpec &Spec) {
  BenchmarkApp App;
  App.Spec = Spec;
  std::string Source = generateAppSource(Spec);
  CompileResult R = compileAndroidApp(Source);
  if (!R.ok()) {
    for (const std::string &E : R.Errors)
      std::fprintf(stderr, "benchmark %s: %s\n", Spec.Name.c_str(),
                   E.c_str());
    assert(false && "benchmark app failed to compile");
    return App;
  }
  App.Prog = std::move(R.Prog);
  App.ActivityBase = activityBaseClass(*App.Prog);

  // Ground truth: singleton i leaks the activities of the fanout slots
  // starting at slot i (patterns are assigned round-robin in generation
  // order, singletons first).
  int Slots = std::max(1, Spec.Activities);
  for (int I = 0; I < Spec.SingletonLeaks; ++I) {
    GlobalId G = App.Prog->findGlobal("Adapter" + std::to_string(I),
                                      "sInstance");
    assert(G != InvalidId && "singleton global missing");
    int Slot = I % Slots;
    for (int K = 0; K < std::max(1, Spec.SingletonFanout); ++K)
      App.TrueLeaks.push_back(
          {G, "act" + std::to_string((Slot + K) % Slots)});
  }
  return App;
}

std::vector<AppSpec> thresher::paperBenchmarks() {
  std::vector<AppSpec> Specs;
  // Shapes chosen to mirror Table 1's qualitative structure: which apps
  // have true leaks (TruA constant across configurations), which are
  // dominated by refutable pollution, which depend on the HashMap
  // annotation (alarms and time drop from Ann?=N to Ann?=Y), and which
  // are tiny. Absolute counts are synthetic-corpus dependent; see
  // EXPERIMENTS.md for the paper-vs-measured comparison.
  //
  // The per-edge budget is 100k query states: our budget unit is a single
  // processed query state, finer-grained than the paper's 10,000 path
  // programs, so the numeric budget is proportionally larger.
  constexpr uint64_t DefaultBudget = 100000;
  {
    AppSpec S;
    S.EdgeBudget = DefaultBudget;
    S.Name = "PulsePoint";
    S.Activities = 4;
    S.SingletonLeaks = 2;
    S.SingletonFanout = 4;
    S.LatentFlagAlarms = 2;
    S.VecFalseAlarms = 2;
    S.HashMapAlarms = 2;
    S.HashMapWrapperDepth = 2;
    S.CoupleVecWithHashMap = true;
    Specs.push_back(S);
  }
  {
    AppSpec S;
    S.EdgeBudget = DefaultBudget;
    S.Name = "StandupTimer";
    S.Activities = 3;
    S.LatentFlagAlarms = 9;
    S.VecFalseAlarms = 3;
    S.ConflationFalseAlarms = 10;
    Specs.push_back(S);
  }
  {
    AppSpec S;
    S.EdgeBudget = DefaultBudget;
    S.Name = "DroidLife";
    S.Activities = 3;
    S.SingletonLeaks = 1;
    S.SingletonFanout = 3;
    Specs.push_back(S);
  }
  {
    AppSpec S;
    S.EdgeBudget = DefaultBudget;
    S.Name = "OpenSudoku";
    S.Activities = 3;
    S.HashMapAlarms = 2;
    S.HashMapWrapperDepth = 3;
    Specs.push_back(S);
  }
  {
    AppSpec S;
    S.EdgeBudget = DefaultBudget;
    S.Name = "SMSPopUp";
    S.Activities = 4;
    S.SingletonLeaks = 1;
    S.SingletonFanout = 4;
    S.LatentFlagAlarms = 1;
    Specs.push_back(S);
  }
  {
    AppSpec S;
    S.EdgeBudget = DefaultBudget;
    S.Name = "aMetro";
    S.Activities = 6;
    S.SingletonLeaks = 6;
    S.SingletonFanout = 6;
    S.LatentFlagAlarms = 3;
    S.VecFalseAlarms = 6;
    S.HashMapAlarms = 6;
    S.HashMapWrapperDepth = 3;
    S.CoupleVecWithHashMap = true;
    Specs.push_back(S);
  }
  {
    AppSpec S;
    S.EdgeBudget = DefaultBudget;
    S.Name = "K9Mail";
    S.Activities = 8;
    S.SingletonLeaks = 8;
    S.SingletonFanout = 8;
    S.LatentFlagAlarms = 10;
    S.VecFalseAlarms = 8;
    S.HashMapAlarms = 8;
    S.HashMapWrapperDepth = 4;
    S.ConflationFalseAlarms = 14;
    S.CoupleVecWithHashMap = true;
    Specs.push_back(S);
  }
  return Specs;
}
