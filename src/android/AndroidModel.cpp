#include "android/AndroidModel.h"

using namespace thresher;

std::string thresher::androidLibrarySource() {
  return R"MJ(
// ---- Modelled Android core classes ----

class Context { }

class Activity extends Context {
  onCreate() { }
  onStart() { }
  onPause() { }
  onDestroy() { }
}

class Intent { }
class Bundle { }

class View {
  var mContext;
  View(ctx) { mContext = ctx; }
  getContext() { return mContext; }
}

class ViewGroup extends View {
  var children;
  ViewGroup(ctx) {
    super(ctx);
    children = new Vec() @viewChildren;
  }
  addView(v) {
    var c = children;
    c.push(v);
  }
}

// ---- CursorAdapter chain (Fig. 5 leak substrate): the context parameter
// travels through two super constructors into mContext. Marked container
// so the shared super-constructors are analyzed per receiver, standing in
// for the call-site context WALA's 0-1-CFA gives constructors (otherwise
// every adapter's mContext would conflate every caller's Activity). ----

container class CursorAdapter {
  var mContext;
  CursorAdapter(context) { mContext = context; }
}

container class ResourceCursorAdapter extends CursorAdapter {
  ResourceCursorAdapter(context) { super(context); }
}

// ---- Vec: the Fig. 1 collection, null object pattern. All empty Vecs
// share the static EMPTY array; push is carefully written never to store
// into it, which only path-sensitive reasoning can see. ----

container class Vec {
  static var EMPTY = new Object[1] @vecEmpty;
  var sz;
  var cap;
  var tbl;
  Vec() {
    sz = 0;
    cap = -1;
    tbl = Vec.EMPTY;
  }
  push(val) {
    var oldtbl = tbl;
    if (sz >= cap) {
      cap = tbl.length * 2;
      tbl = new Object[cap] @vecTbl;
      var i = 0;
      while (i < sz) {
        var moved = oldtbl[i];
        tbl[i] = moved;
        i = i + 1;
      }
    }
    tbl[sz] = val;
    sz = sz + 1;
  }
  get(i) {
    var t = tbl;
    var r = t[i];
    return r;
  }
  size() { return sz; }
}

// ---- HashMap: same null-object pattern through EMPTY_TABLE; this is the
// field the paper annotates in the Ann?=Y configuration. ----

class MapEntry {
  var key;
  var value;
}

container class HashMap {
  static var EMPTY_TABLE = new MapEntry[2] @hmEmpty;
  var table;
  var hsize;
  var threshold;
  HashMap() {
    hsize = 0;
    threshold = -1;
    table = HashMap.EMPTY_TABLE;
  }
  put(k, v) {
    if (hsize >= threshold) {
      threshold = table.length * 2;
      var newtab = new MapEntry[threshold] @hmTbl;
      var i = 0;
      var oldtab = table;
      while (i < hsize) {
        var movede = oldtab[i];
        newtab[i] = movede;
        i = i + 1;
      }
      table = newtab;
    }
    var e = new MapEntry() @hmEntry;
    e.key = k;
    e.value = v;
    table[hsize] = e;
    hsize = hsize + 1;
  }
  get(k) {
    var i = 0;
    var t = table;
    while (i < hsize) {
      var e = t[i];
      if (e.key == k) {
        return e.value;
      }
      i = i + 1;
    }
    return null;
  }
  size() { return hsize; }
}
)MJ";
}

CompileResult thresher::compileAndroidApp(const std::string &AppSource) {
  return compileMJ({androidLibrarySource(), AppSource}, "main");
}

ClassId thresher::activityBaseClass(const Program &P) {
  return P.findClass(activityClassName());
}

void thresher::annotateHashMapEmptyTable(const Program &P, PTAOptions &Opts) {
  GlobalId G = P.findGlobal("HashMap", "EMPTY_TABLE");
  if (G != InvalidId)
    Opts.AnnotatedEmptyGlobals.insert(G);
}
