//===- Benchmarks.h - Synthetic benchmark applications ----------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generators for the seven synthetic benchmark applications standing in
/// for the paper's app corpus (PulsePoint, StandupTimer, DroidLife,
/// OpenSudoku, SMSPopUp, aMetro, K9Mail). Each app is assembled from leak
/// and false-alarm patterns with known ground truth:
///
///  - Singleton leaks (Fig. 5): a static sInstance retaining an Activity
///    through the CursorAdapter chain. TRUE alarms.
///  - Latent-flag caches (the StandupTimer almost-leak): an Activity cache
///    guarded by a flag that is never enabled. REFUTABLE false alarms
///    (need path sensitivity over the flag).
///  - Vec pollution (Fig. 1): Activities pushed into local Vecs alongside
///    strings pushed into static Vecs; the shared EMPTY array conflates
///    them. REFUTABLE false alarms (need strong updates + path
///    sensitivity; the copy-loop producer also needs loop invariants).
///  - HashMap pollution: the same through HashMap.EMPTY_TABLE, optionally
///    routed through wrapper layers to inflate the backwards search (the
///    timeout behaviour of the paper's Ann?=N runs). REFUTABLE in
///    principle; expensive. Removed entirely by the Ann?=Y annotation.
///  - Clear-before-publish conflation: a wrapper whose Activity field is
///    nulled before the wrapper is published to a static. Never leaks
///    concretely, but every individual edge is realizable, so edge-wise
///    refutation cannot filter it. UNREFUTABLE false alarms (the paper's
///    FalA column).
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_ANDROID_BENCHMARKS_H
#define THRESHER_ANDROID_BENCHMARKS_H

#include "android/AndroidModel.h"

#include <memory>
#include <string>
#include <vector>

namespace thresher {

/// Shape parameters of one synthetic app.
struct AppSpec {
  std::string Name;
  int Activities = 1;
  int SingletonLeaks = 0;       ///< True alarms (Fig. 5 pattern).
  int SingletonFanout = 1;      ///< Activities calling each getInstance
                                ///< (one static field, several alarms).
  int LatentFlagAlarms = 0;     ///< Refutable via path sensitivity.
  int VecFalseAlarms = 0;       ///< Refutable via Fig. 1 reasoning.
  int HashMapAlarms = 0;        ///< Refutable but expensive; gone in Ann?=Y.
  int HashMapWrapperDepth = 0;  ///< Wrapper layers inflating call fan-in.
  int ConflationFalseAlarms = 0; ///< Unrefutable FalA.
  /// Route the strings the Vec pattern pushes through a shared HashMap of
  /// labels. Under Ann?=N the polluted EMPTY_TABLE makes every Vec search
  /// wander into HashMap code (the paper's coupling that makes the
  /// un-annotated configuration slow and timeout-prone); under Ann?=Y the
  /// pollution—and the cost—disappears.
  bool CoupleVecWithHashMap = false;
  uint64_t EdgeBudget = 10000;  ///< Per-edge exploration budget.
};

/// Emits the mini-Java source for \p Spec (library not included).
std::string generateAppSource(const AppSpec &Spec);

/// A compiled benchmark app with its ground truth.
struct BenchmarkApp {
  AppSpec Spec;
  std::unique_ptr<Program> Prog;
  ClassId ActivityBase = InvalidId;
  /// Ground-truth true leaks: (static field, activity alloc-site label).
  std::vector<std::pair<GlobalId, std::string>> TrueLeaks;
};

/// Compiles library + generated app and resolves ground truth. Aborts via
/// assertion on generator/compile errors (they are programmer mistakes).
BenchmarkApp buildBenchmarkApp(const AppSpec &Spec);

/// The seven paper-shaped benchmark specs.
std::vector<AppSpec> paperBenchmarks();

} // namespace thresher

#endif // THRESHER_ANDROID_BENCHMARKS_H
