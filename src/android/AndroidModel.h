//===- AndroidModel.h - Modelled Android library -----------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mini-Java model of the Android library idioms the paper identifies as
/// the sources of points-to imprecision and of real leaks:
///
///  - `Vec`: the Fig. 1 growable collection implemented with the null
///    object pattern (a shared static EMPTY backing array);
///  - `HashMap`: same pattern via the shared EMPTY_TABLE (the class the
///    paper annotates in the Ann?=Y configuration);
///  - the Context/Activity hierarchy and the CursorAdapter chain through
///    which the K9Mail singleton leak (Fig. 5) retains its Activity;
///  - View objects holding their parent Activity via mContext.
///
/// Substitutes for Android 2.3.3 (see DESIGN.md's substitution table).
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_ANDROID_ANDROIDMODEL_H
#define THRESHER_ANDROID_ANDROIDMODEL_H

#include "frontend/Frontend.h"
#include "pta/PointsTo.h"

#include <string>

namespace thresher {

/// The mini-Java source of the modelled Android library.
std::string androidLibrarySource();

/// Compiles the library plus \p AppSource into one program whose entry is
/// the app's `main` harness function.
CompileResult compileAndroidApp(const std::string &AppSource);

/// The class name used as the Activity base in the leak client.
inline const char *activityClassName() { return "Activity"; }

/// Looks up the Activity base class in a compiled program.
ClassId activityBaseClass(const Program &P);

/// Applies the paper's Ann?=Y configuration: the HashMap.EMPTY_TABLE
/// static field is annotated as never pointing to anything.
void annotateHashMapEmptyTable(const Program &P, PTAOptions &Opts);

} // namespace thresher

#endif // THRESHER_ANDROID_ANDROIDMODEL_H
