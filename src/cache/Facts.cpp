//===- Facts.cpp - Replayable dependency facts for the cache --------------===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cache/Facts.h"

#include "ir/Fingerprint.h"

#include <algorithm>
#include <sstream>

using namespace thresher;

//===----------------------------------------------------------------------===//
// Canonical value strings
//===----------------------------------------------------------------------===//
//
// Each consulted points-to fact is rendered as a canonical string built
// from *names* (loc labels, qualified function names), sorted so that the
// value is independent of dense-id assignment. materializeFootprint hashes
// these at record time; FactReplayer recomputes and compares at reuse time.

namespace {

std::string ctxLabel(const Program &P, const PointsToResult &PTA,
                     AbsLocId Ctx) {
  return Ctx == InvalidId ? std::string("-") : PTA.Locs.label(P, Ctx);
}

std::string joinSorted(std::vector<std::string> Parts) {
  std::sort(Parts.begin(), Parts.end());
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Out += ' ';
    Out += Parts[I];
  }
  return Out;
}

std::string locSetValue(const Program &P, const PointsToResult &PTA,
                        const IdSet &Locs) {
  std::vector<std::string> Labels;
  Labels.reserve(Locs.size());
  for (AbsLocId L : Locs)
    Labels.push_back(PTA.Locs.label(P, L));
  return joinSorted(std::move(Labels));
}

std::string calleeSiteValue(const Program &P, const PointsToResult &PTA,
                            const ProgramPoint &At, AbsLocId Ctx) {
  std::vector<std::string> Parts;
  for (const CallEdge &E : PTA.calleesAtCtx(At, Ctx))
    Parts.push_back(P.funcName(E.Callee) + "|" +
                    ctxLabel(P, PTA, E.CalleeCtx));
  return joinSorted(std::move(Parts));
}

std::string calleesAllValue(const Program &P, const PointsToResult &PTA,
                            const ProgramPoint &At) {
  std::vector<std::string> Parts;
  for (FuncId Callee : PTA.calleesAt(At))
    Parts.push_back(P.funcName(Callee));
  return joinSorted(std::move(Parts));
}

std::string siteDesc(const Program &P, const PointsToResult &PTA,
                     const ProgramPoint &At, AbsLocId Ctx) {
  std::ostringstream OS;
  OS << P.funcName(At.F) << "@bb" << At.B << ":" << At.Idx << "|"
     << ctxLabel(P, PTA, Ctx);
  return OS.str();
}

std::string callersValue(const Program &P, const PointsToResult &PTA,
                         FuncId F, AbsLocId Ctx) {
  std::vector<std::string> Parts;
  for (const CallEdge &E : PTA.callersOfCtx(F, Ctx))
    Parts.push_back(siteDesc(P, PTA, E.At, E.CallerCtx));
  return joinSorted(std::move(Parts));
}

std::string heapModValue(const Program &P, const PointsToResult &PTA,
                         FuncId F) {
  const PointsToResult::HeapMod &M = PTA.heapModOf(F);
  std::vector<std::string> Parts;
  for (GlobalId G : M.Globals)
    Parts.push_back("g:" + P.globalName(G));
  for (const auto &[Fld, Bases] : M.FieldBases)
    Parts.push_back("f:" + P.fieldName(Fld) + "{" +
                    locSetValue(P, PTA, Bases) + "}");
  return joinSorted(std::move(Parts));
}

std::string allocCtxValue(const Program &P, const PointsToResult &PTA,
                          FuncId F, AbsLocId FrameCtx) {
  return ctxLabel(P, PTA, PTA.allocContextFor(F, FrameCtx));
}

std::string locFindValue(const PointsToResult &PTA, AllocSiteId Site,
                         AbsLocId Ctx) {
  return PTA.Locs.find(Site, Ctx) == InvalidId ? "0" : "1";
}

std::string dispatchValue(const Program &P, ClassId C, NameId Method) {
  FuncId F = P.resolveVirtual(C, Method);
  return F == InvalidId ? std::string("-") : P.funcName(F);
}

std::string locClassValue(const Program &P, const PointsToResult &PTA,
                          AbsLocId L) {
  const AllocSiteInfo &Site = P.AllocSites[PTA.Locs.site(L)];
  std::string V = P.className(Site.Class);
  if (Site.IsArray)
    V += "[]";
  return V;
}

std::string producersFieldValue(const Program &P, const PointsToResult &PTA,
                                AbsLocId Base, FieldId Fld, AbsLocId Target) {
  std::vector<std::string> Parts;
  for (const ProducerSite &S : PTA.producersOfFieldEdge(Base, Fld, Target))
    Parts.push_back(siteDesc(P, PTA, S.At, S.Ctx));
  return joinSorted(std::move(Parts));
}

std::string producersGlobalValue(const Program &P, const PointsToResult &PTA,
                                 GlobalId G, AbsLocId Target) {
  std::vector<std::string> Parts;
  for (const ProducerSite &S : PTA.producersOfGlobalEdge(G, Target))
    Parts.push_back(siteDesc(P, PTA, S.At, S.Ctx));
  return joinSorted(std::move(Parts));
}

Fact mkFact(std::string Kind, std::vector<std::string> Key,
            const std::string &Value) {
  Fact F;
  F.Kind = std::move(Kind);
  F.Key = std::move(Key);
  F.ValueHash = fingerprintString(Value);
  return F;
}

} // namespace

//===----------------------------------------------------------------------===//
// Materialization
//===----------------------------------------------------------------------===//

std::vector<Fact> thresher::materializeFootprint(const Program &P,
                                                 const PointsToResult &PTA,
                                                 const DepFootprint &FP) {
  std::vector<Fact> Out;
  auto Ctx = [&](AbsLocId C) { return ctxLabel(P, PTA, C); };

  for (FuncId F : FP.Funcs) {
    Fact FF;
    FF.Kind = "func";
    FF.Key = {P.funcName(F)};
    FF.ValueHash = fingerprintFunction(P, F);
    Out.push_back(std::move(FF));
  }
  for (GlobalId G : FP.PtGlobals)
    Out.push_back(mkFact("ptGlobal", {P.globalName(G)},
                         locSetValue(P, PTA, PTA.ptGlobal(G))));
  for (const auto &[L, Fld] : FP.PtFields)
    Out.push_back(mkFact("ptField",
                         {PTA.Locs.label(P, L), P.fieldName(Fld)},
                         locSetValue(P, PTA, PTA.ptField(L, Fld))));
  for (const auto &[F, C, V] : FP.PtVars)
    Out.push_back(mkFact("ptVar",
                         {P.funcName(F), Ctx(C), std::to_string(V)},
                         locSetValue(P, PTA, PTA.ptVarCtx(F, C, V))));
  for (const auto &[At, C] : FP.CalleeSites)
    Out.push_back(mkFact("calleeSite",
                         {P.funcName(At.F), std::to_string(At.B),
                          std::to_string(At.Idx), Ctx(C)},
                         calleeSiteValue(P, PTA, At, C)));
  for (const ProgramPoint &At : FP.CalleesAllSites)
    Out.push_back(mkFact("calleesAll",
                         {P.funcName(At.F), std::to_string(At.B),
                          std::to_string(At.Idx)},
                         calleesAllValue(P, PTA, At)));
  for (const auto &[F, C] : FP.CallerUnits)
    Out.push_back(mkFact("callers", {P.funcName(F), Ctx(C)},
                         callersValue(P, PTA, F, C)));
  for (FuncId F : FP.HeapMods)
    Out.push_back(mkFact("heapMod", {P.funcName(F)},
                         heapModValue(P, PTA, F)));
  for (const auto &[F, C] : FP.AllocCtxs)
    Out.push_back(mkFact("allocCtx", {P.funcName(F), Ctx(C)},
                         allocCtxValue(P, PTA, F, C)));
  for (const auto &[Site, C] : FP.LocFinds)
    Out.push_back(mkFact("locFind", {P.allocLabel(Site), Ctx(C)},
                         locFindValue(PTA, Site, C)));
  for (const auto &[C, M] : FP.Dispatches)
    Out.push_back(mkFact("dispatch", {P.className(C), P.Names.str(M)},
                         dispatchValue(P, C, M)));
  for (AbsLocId L : FP.LocClasses)
    Out.push_back(mkFact("locClass", {PTA.Locs.label(P, L)},
                         locClassValue(P, PTA, L)));
  for (const auto &[B, Fld, T] : FP.FieldProducers)
    Out.push_back(mkFact("producersF",
                         {PTA.Locs.label(P, B), P.fieldName(Fld),
                          PTA.Locs.label(P, T)},
                         producersFieldValue(P, PTA, B, Fld, T)));
  for (const auto &[G, T] : FP.GlobalProducers)
    Out.push_back(mkFact("producersG",
                         {P.globalName(G), PTA.Locs.label(P, T)},
                         producersGlobalValue(P, PTA, G, T)));

  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

uint64_t thresher::footprintHash(const std::vector<Fact> &Facts) {
  StableHasher H;
  H.add(static_cast<uint64_t>(Facts.size()));
  for (const Fact &F : Facts) {
    H.add(std::string_view(F.Kind));
    H.add(static_cast<uint64_t>(F.Key.size()));
    for (const std::string &K : F.Key)
      H.add(std::string_view(K));
    H.add(F.ValueHash);
  }
  return H.hash();
}

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

namespace {

/// Inserts Name -> Id, demoting duplicated names to InvalidId (ambiguous
/// names cannot be replayed soundly, so facts over them fail).
template <typename IdT>
void addName(std::map<std::string, IdT> &M, std::string Name, IdT Id) {
  auto [It, Fresh] = M.emplace(std::move(Name), Id);
  if (!Fresh)
    It->second = InvalidId;
}

template <typename IdT>
IdT lookupName(const std::map<std::string, IdT> &M, const std::string &Name) {
  auto It = M.find(Name);
  return It == M.end() ? InvalidId : It->second;
}

/// Parses a non-negative integer key part; InvalidId on junk.
uint32_t parseIdx(const std::string &S) {
  if (S.empty() || S.size() > 9)
    return InvalidId;
  uint32_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return InvalidId;
    V = V * 10 + static_cast<uint32_t>(C - '0');
  }
  return V;
}

} // namespace

FactReplayer::FactReplayer(const Program &P, const PointsToResult &PTA)
    : P(P), PTA(PTA) {
  for (FuncId F = 0; F < P.Funcs.size(); ++F)
    addName(Funcs, P.funcName(F), F);
  for (GlobalId G = 0; G < P.Globals.size(); ++G)
    addName(Globals, P.globalName(G), G);
  for (FieldId F = 0; F < P.Fields.size(); ++F)
    addName(Fields, P.fieldName(F), F);
  for (AbsLocId L = 0; L < PTA.Locs.size(); ++L)
    addName(Locs, PTA.Locs.label(P, L), L);
  for (AllocSiteId A = 0; A < P.AllocSites.size(); ++A)
    addName(Sites, P.allocLabel(A), A);
}

FuncId FactReplayer::funcByName(const std::string &Name) const {
  return lookupName(Funcs, Name);
}
GlobalId FactReplayer::globalByName(const std::string &Name) const {
  return lookupName(Globals, Name);
}
FieldId FactReplayer::fieldByName(const std::string &Name) const {
  return lookupName(Fields, Name);
}
AbsLocId FactReplayer::locByLabel(const std::string &Label) const {
  return lookupName(Locs, Label);
}
AllocSiteId FactReplayer::siteByLabel(const std::string &Label) const {
  return lookupName(Sites, Label);
}

bool FactReplayer::holds(const Fact &F) const {
  auto Matches = [&](const std::string &Value) {
    return fingerprintString(Value) == F.ValueHash;
  };
  // Context key parts: "-" means no context; anything else must resolve
  // to a live abstract location. Ok=false fails the fact.
  auto CtxOf = [&](const std::string &Label, bool &Ok) -> AbsLocId {
    if (Label == "-")
      return InvalidId;
    AbsLocId L = locByLabel(Label);
    if (L == InvalidId)
      Ok = false;
    return L;
  };

  if (F.Kind == "func") {
    if (F.Key.size() != 1)
      return false;
    FuncId Id = funcByName(F.Key[0]);
    return Id != InvalidId && fingerprintFunction(P, Id) == F.ValueHash;
  }
  if (F.Kind == "ptGlobal") {
    if (F.Key.size() != 1)
      return false;
    GlobalId G = globalByName(F.Key[0]);
    return G != InvalidId && Matches(locSetValue(P, PTA, PTA.ptGlobal(G)));
  }
  if (F.Kind == "ptField") {
    if (F.Key.size() != 2)
      return false;
    AbsLocId L = locByLabel(F.Key[0]);
    FieldId Fld = fieldByName(F.Key[1]);
    return L != InvalidId && Fld != InvalidId &&
           Matches(locSetValue(P, PTA, PTA.ptField(L, Fld)));
  }
  if (F.Kind == "ptVar") {
    if (F.Key.size() != 3)
      return false;
    FuncId Fn = funcByName(F.Key[0]);
    bool Ok = Fn != InvalidId;
    AbsLocId C = CtxOf(F.Key[1], Ok);
    VarId V = parseIdx(F.Key[2]);
    return Ok && V != InvalidId &&
           Matches(locSetValue(P, PTA, PTA.ptVarCtx(Fn, C, V)));
  }
  if (F.Kind == "calleeSite") {
    if (F.Key.size() != 4)
      return false;
    FuncId Fn = funcByName(F.Key[0]);
    BlockId B = parseIdx(F.Key[1]);
    uint32_t Idx = parseIdx(F.Key[2]);
    bool Ok = Fn != InvalidId && B != InvalidId && Idx != InvalidId;
    AbsLocId C = CtxOf(F.Key[3], Ok);
    return Ok && Matches(calleeSiteValue(P, PTA, {Fn, B, Idx}, C));
  }
  if (F.Kind == "calleesAll") {
    if (F.Key.size() != 3)
      return false;
    FuncId Fn = funcByName(F.Key[0]);
    BlockId B = parseIdx(F.Key[1]);
    uint32_t Idx = parseIdx(F.Key[2]);
    return Fn != InvalidId && B != InvalidId && Idx != InvalidId &&
           Matches(calleesAllValue(P, PTA, {Fn, B, Idx}));
  }
  if (F.Kind == "callers") {
    if (F.Key.size() != 2)
      return false;
    FuncId Fn = funcByName(F.Key[0]);
    bool Ok = Fn != InvalidId;
    AbsLocId C = CtxOf(F.Key[1], Ok);
    return Ok && Matches(callersValue(P, PTA, Fn, C));
  }
  if (F.Kind == "heapMod") {
    if (F.Key.size() != 1)
      return false;
    FuncId Fn = funcByName(F.Key[0]);
    return Fn != InvalidId && Matches(heapModValue(P, PTA, Fn));
  }
  if (F.Kind == "allocCtx") {
    if (F.Key.size() != 2)
      return false;
    FuncId Fn = funcByName(F.Key[0]);
    bool Ok = Fn != InvalidId;
    AbsLocId C = CtxOf(F.Key[1], Ok);
    return Ok && Matches(allocCtxValue(P, PTA, Fn, C));
  }
  if (F.Kind == "locFind") {
    if (F.Key.size() != 2)
      return false;
    AllocSiteId Site = siteByLabel(F.Key[0]);
    bool Ok = Site != InvalidId;
    AbsLocId C = CtxOf(F.Key[1], Ok);
    return Ok && Matches(locFindValue(PTA, Site, C));
  }
  if (F.Kind == "dispatch") {
    if (F.Key.size() != 2)
      return false;
    ClassId C = P.findClass(F.Key[0]);
    NameId M = P.Names.lookup(F.Key[1]);
    return C != InvalidId && M != InvalidId &&
           Matches(dispatchValue(P, C, M));
  }
  if (F.Kind == "locClass") {
    if (F.Key.size() != 1)
      return false;
    AbsLocId L = locByLabel(F.Key[0]);
    return L != InvalidId && Matches(locClassValue(P, PTA, L));
  }
  if (F.Kind == "producersF") {
    if (F.Key.size() != 3)
      return false;
    AbsLocId B = locByLabel(F.Key[0]);
    FieldId Fld = fieldByName(F.Key[1]);
    AbsLocId T = locByLabel(F.Key[2]);
    return B != InvalidId && Fld != InvalidId && T != InvalidId &&
           Matches(producersFieldValue(P, PTA, B, Fld, T));
  }
  if (F.Kind == "producersG") {
    if (F.Key.size() != 2)
      return false;
    GlobalId G = globalByName(F.Key[0]);
    AbsLocId T = locByLabel(F.Key[1]);
    return G != InvalidId && T != InvalidId &&
           Matches(producersGlobalValue(P, PTA, G, T));
  }
  return false; // Unknown kind (future schema): fail safe.
}
