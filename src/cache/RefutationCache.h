//===- RefutationCache.h - Persistent per-edge verdict cache ----*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent refutation cache: a versioned on-disk store mapping
/// (edge label, analysis-config hash) to the edge's search verdict plus the
/// dependency facts the original search consulted. A warm run loads the
/// store, validates every entry's facts against the fresh program (one pass
/// before searching), and then serves Hit/Miss/Stale probes; hits skip the
/// symbolic search entirely while reproducing the exact cold-run verdict
/// and step count, so the deterministic report stays byte-identical.
/// See docs/CACHING.md for the file format and invalidation rules.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_CACHE_REFUTATIONCACHE_H
#define THRESHER_CACHE_REFUTATIONCACHE_H

#include "cache/Facts.h"
#include "sym/WitnessSearch.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace thresher {

class RefutationCache {
public:
  /// On-disk schema tag; bump on any incompatible format change. Files
  /// with a different tag are discarded wholesale.
  static constexpr const char *SchemaVersion = "thresher-cache/v1";

  enum class Probe : uint8_t {
    Hit,   ///< Entry present and its facts replayed successfully.
    Miss,  ///< No entry for this (edge, config).
    Stale, ///< Entry present but invalidated (or never validated).
  };

  /// \p Dir is created on save if missing; the store lives at
  /// <Dir>/cache.jsonl.
  explicit RefutationCache(std::string Dir);

  /// Loads the store. A missing file is an empty cache (returns true);
  /// a corrupt or schema-mismatched file discards all entries and returns
  /// false with \p Error set — callers warn and continue cold. The corrupt
  /// file is quarantined to <store>.corrupt (never re-read, preserved for
  /// post-mortem) and recoveredStores() counts the rebuild.
  bool load(std::string *Error = nullptr);

  /// Replays every loaded entry's facts against the fresh program and
  /// marks it Valid or Stale. Entries recorded under a different config
  /// hash are left unvalidated (they probe as Stale for this run but are
  /// retained on save for generation-based eviction). Call once, before
  /// run(); afterwards probes are read-mostly and thread-safe.
  void validate(const Program &P, const PointsToResult &PTA,
                uint64_t ConfigHash);

  /// Looks up (EdgeLabel, ConfigHash). On Hit fills \p Outcome and
  /// \p Steps with the cached verdict and touches the entry's generation.
  /// When \p RegOut is non-null, a hit additionally fills it with the
  /// entry's persisted subsumption-registry payload (empty when none was
  /// recorded, or when the payload's program fingerprint does not match
  /// the program validate() last saw — query payloads carry raw dense ids,
  /// so they are only meaningful for the exact program they came from).
  Probe probe(const std::string &EdgeLabel, uint64_t ConfigHash,
              SearchOutcome &Outcome, uint64_t &Steps,
              std::string *RegOut = nullptr);

  /// Records a fresh search result with its materialized facts.
  /// \p RegJson optionally carries the edge's subsumption-registry harvest
  /// (subsumeEntriesToJson) with \p RegFp the fingerprintProgram() it was
  /// produced against.
  void insert(std::string EdgeLabel, bool IsGlobal, uint64_t ConfigHash,
              SearchOutcome Outcome, uint64_t Steps, std::vector<Fact> Facts,
              std::string RegJson = {}, uint64_t RegFp = 0);

  /// Drops the entry for (EdgeLabel, ConfigHash) if present (used when a
  /// verify re-search exhausts: the stale verdict must not survive).
  void erase(const std::string &EdgeLabel, uint64_t ConfigHash);

  /// Writes the store crash-safely: temp file + fsync + atomic rename +
  /// directory fsync, bumping the generation. A crash or fault at any
  /// point leaves the previous store intact. Entries that failed
  /// validation are dropped; entries untouched for more than
  /// KeepGenerations generations are evicted.
  bool save(std::string *Error = nullptr);

  /// Hash of everything in the analysis configuration that can change an
  /// edge verdict (representation, loop mode, simplification, budgets,
  /// depth caps, and the leak client's annotate-hashmap switch).
  static uint64_t configHash(const SymOptions &Opts, bool AnnotateHashMap);

  /// Generations an untouched entry survives before eviction at save.
  uint32_t KeepGenerations = 16;

  const std::string &dir() const { return Dir; }
  uint64_t generation() const { return Generation; }
  size_t size() const { return Entries.size(); }
  /// Entry counts as of load/validate (for the report's cache section).
  uint64_t loadedEntries() const { return NumLoaded; }
  uint64_t validEntries() const { return NumValid; }
  uint64_t staleEntries() const { return NumStale; }
  /// Times load() found a corrupt store, quarantined it, and rebuilt cold
  /// (surfaced as the robust.cacheRecovered counter).
  uint64_t recoveredStores() const { return NumRecovered; }

private:
  struct Entry {
    bool IsGlobal = false;
    SearchOutcome Outcome = SearchOutcome::Refuted;
    uint64_t Steps = 0;
    std::vector<Fact> Facts;
    uint64_t FootprintHash = 0;
    /// Optional subsumption-registry payload ("reg"/"regfp" fields):
    /// serialized refuted queries harvested by the search that produced
    /// this verdict, guarded by the producing program's fingerprint.
    std::string RegJson;
    uint64_t RegFp = 0;
    uint64_t Gen = 0;       ///< Generation of last touch (hit or insert).
    bool Validated = false; ///< validate() examined this entry.
    bool Valid = false;     ///< All facts replayed successfully.
  };

  std::string storePath() const;

  std::string Dir;
  /// (edge label, config hash) -> entry.
  std::map<std::pair<std::string, uint64_t>, Entry> Entries;
  /// fingerprintProgram() of the program validate() last ran against;
  /// registry payloads are only served when their RegFp matches.
  uint64_t CurFp = 0;
  uint64_t Generation = 0;
  uint64_t NumLoaded = 0;
  uint64_t NumValid = 0;
  uint64_t NumStale = 0;
  uint64_t NumRecovered = 0;
  std::mutex M;
};

} // namespace thresher

#endif // THRESHER_CACHE_REFUTATIONCACHE_H
