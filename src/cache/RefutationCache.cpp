//===- RefutationCache.cpp - Persistent per-edge verdict cache ------------===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "cache/RefutationCache.h"

#include "ir/Fingerprint.h"
#include "support/FaultInject.h"
#include "support/Json.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

using namespace thresher;

namespace {

/// fsync() the file or directory at \p Path; durability best-effort on
/// platforms without it. Crash-safety of the store is rename-atomicity;
/// the fsyncs close the power-loss window between rename and writeback.
bool syncPath(const std::string &Path, bool IsDir) {
#ifndef _WIN32
  int Fd = ::open(Path.c_str(), IsDir ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (Fd < 0)
    return false;
  bool Ok = ::fsync(Fd) == 0;
  ::close(Fd);
  return Ok;
#else
  (void)Path;
  (void)IsDir;
  return true;
#endif
}

std::string toHex(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

bool fromHex(const std::string &S, uint64_t &Out) {
  if (S.empty() || S.size() > 16)
    return false;
  Out = 0;
  for (char C : S) {
    uint64_t D;
    if (C >= '0' && C <= '9')
      D = static_cast<uint64_t>(C - '0');
    else if (C >= 'a' && C <= 'f')
      D = static_cast<uint64_t>(C - 'a') + 10;
    else
      return false;
    Out = (Out << 4) | D;
  }
  return true;
}

bool outcomeFromName(const std::string &S, SearchOutcome &Out) {
  if (S == "REFUTED")
    Out = SearchOutcome::Refuted;
  else if (S == "WITNESSED")
    Out = SearchOutcome::Witnessed;
  else if (S == "TIMEOUT")
    Out = SearchOutcome::BudgetExhausted;
  else
    return false;
  return true;
}

} // namespace

RefutationCache::RefutationCache(std::string Dir) : Dir(std::move(Dir)) {}

std::string RefutationCache::storePath() const {
  return (std::filesystem::path(Dir) / "cache.jsonl").string();
}

bool RefutationCache::load(std::string *Error) {
  std::lock_guard<std::mutex> Lock(M);
  Entries.clear();
  Generation = 0;
  NumLoaded = NumValid = NumStale = 0;

  std::ifstream In(storePath());
  if (!In.is_open())
    return true; // No store yet: empty cache.

  auto Corrupt = [&](const std::string &Why) {
    Entries.clear();
    Generation = 0;
    // Quarantine the bad file so the next save starts from a clean slate
    // and the evidence survives for post-mortem; never re-read it.
    std::error_code EC;
    std::filesystem::rename(storePath(), storePath() + ".corrupt", EC);
    ++NumRecovered;
    if (Error)
      *Error = storePath() + ": " + Why +
               (EC ? "" : " (quarantined to cache.jsonl.corrupt)");
    return false;
  };

  if (FaultInject::shouldFail(faultsite::CacheRead))
    return Corrupt("injected read fault");

  std::string Line;
  if (!std::getline(In, Line))
    return Corrupt("empty cache file");
  JsonValue Header;
  if (!parseJson(Line, Header) || !Header.isObject())
    return Corrupt("malformed header line");
  const JsonValue *Schema = Header.find("schema");
  if (!Schema || !Schema->isString() || Schema->asString() != SchemaVersion)
    return Corrupt("unknown cache schema (expected " +
                   std::string(SchemaVersion) + ")");
  const JsonValue *Gen = Header.find("generation");
  if (!Gen || !Gen->isNumber())
    return Corrupt("header missing generation");
  Generation = Gen->asUint();

  size_t LineNo = 1;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    JsonValue E;
    if (!parseJson(Line, E) || !E.isObject())
      return Corrupt("malformed entry at line " + std::to_string(LineNo));
    const JsonValue *Edge = E.find("edge");
    const JsonValue *Global = E.find("global");
    const JsonValue *Config = E.find("config");
    const JsonValue *Verdict = E.find("verdict");
    const JsonValue *Steps = E.find("steps");
    const JsonValue *Fp = E.find("fp");
    const JsonValue *EGen = E.find("gen");
    const JsonValue *Facts = E.find("facts");
    if (!Edge || !Edge->isString() || !Global || !Global->isBool() ||
        !Config || !Config->isString() || !Verdict || !Verdict->isString() ||
        !Steps || !Steps->isNumber() || !Fp || !Fp->isString() || !EGen ||
        !EGen->isNumber() || !Facts || !Facts->isArray())
      return Corrupt("entry missing fields at line " + std::to_string(LineNo));
    Entry Ent;
    uint64_t ConfigHash;
    if (!fromHex(Config->asString(), ConfigHash) ||
        !fromHex(Fp->asString(), Ent.FootprintHash) ||
        !outcomeFromName(Verdict->asString(), Ent.Outcome))
      return Corrupt("bad entry encoding at line " + std::to_string(LineNo));
    Ent.IsGlobal = Global->asBool();
    Ent.Steps = Steps->asUint();
    Ent.Gen = EGen->asUint();
    for (const JsonValue &FV : Facts->items()) {
      if (!FV.isArray() || FV.items().size() < 2)
        return Corrupt("bad fact at line " + std::to_string(LineNo));
      Fact F;
      const auto &Parts = FV.items();
      for (size_t I = 0; I < Parts.size(); ++I) {
        if (!Parts[I].isString())
          return Corrupt("bad fact part at line " + std::to_string(LineNo));
        if (I == 0)
          F.Kind = Parts[I].asString();
        else if (I + 1 == Parts.size()) {
          if (!fromHex(Parts[I].asString(), F.ValueHash))
            return Corrupt("bad fact hash at line " + std::to_string(LineNo));
        } else
          F.Key.push_back(Parts[I].asString());
      }
      Ent.Facts.push_back(std::move(F));
    }
    // Optional registry payload; absent on entries from registry-off runs
    // and older stores (the schema is unchanged — unknown fields would be
    // ignored, and these known-optional ones default to empty).
    const JsonValue *Reg = E.find("reg");
    const JsonValue *RegFp = E.find("regfp");
    if (Reg && Reg->isString() && RegFp && RegFp->isString()) {
      if (!fromHex(RegFp->asString(), Ent.RegFp))
        return Corrupt("bad regfp encoding at line " + std::to_string(LineNo));
      Ent.RegJson = Reg->asString();
    }
    // The stored footprint hash must match the stored facts (truncation
    // or tampering shows up here).
    if (footprintHash(Ent.Facts) != Ent.FootprintHash)
      return Corrupt("footprint hash mismatch at line " +
                     std::to_string(LineNo));
    Entries[{Edge->asString(), ConfigHash}] = std::move(Ent);
  }
  NumLoaded = Entries.size();
  return true;
}

void RefutationCache::validate(const Program &P, const PointsToResult &PTA,
                               uint64_t ConfigHash) {
  std::lock_guard<std::mutex> Lock(M);
  FactReplayer Replayer(P, PTA);
  CurFp = fingerprintProgram(P);
  NumValid = NumStale = 0;
  for (auto &[Key, Ent] : Entries) {
    if (Key.second != ConfigHash)
      continue; // Other config: retained but not served this run.
    Ent.Validated = true;
    Ent.Valid = true;
    for (const Fact &F : Ent.Facts) {
      if (!Replayer.holds(F)) {
        Ent.Valid = false;
        break;
      }
    }
    if (Ent.Valid)
      ++NumValid;
    else
      ++NumStale;
  }
}

RefutationCache::Probe RefutationCache::probe(const std::string &EdgeLabel,
                                              uint64_t ConfigHash,
                                              SearchOutcome &Outcome,
                                              uint64_t &Steps,
                                              std::string *RegOut) {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Entries.find({EdgeLabel, ConfigHash});
  if (It == Entries.end())
    return Probe::Miss;
  Entry &Ent = It->second;
  if (!Ent.Validated || !Ent.Valid)
    return Probe::Stale;
  Ent.Gen = Generation + 1; // Touched: survives the next eviction scan.
  Outcome = Ent.Outcome;
  Steps = Ent.Steps;
  if (RegOut) {
    // The payload's raw ids are only meaningful for the exact program it
    // was produced against; a mismatched fingerprint silently drops it
    // (the verdict itself is guarded by the fact replay, not by this).
    *RegOut = (Ent.RegFp != 0 && Ent.RegFp == CurFp) ? Ent.RegJson
                                                     : std::string();
  }
  return Probe::Hit;
}

void RefutationCache::insert(std::string EdgeLabel, bool IsGlobal,
                             uint64_t ConfigHash, SearchOutcome Outcome,
                             uint64_t Steps, std::vector<Fact> Facts,
                             std::string RegJson, uint64_t RegFp) {
  std::lock_guard<std::mutex> Lock(M);
  Entry Ent;
  Ent.IsGlobal = IsGlobal;
  Ent.Outcome = Outcome;
  Ent.Steps = Steps;
  Ent.FootprintHash = footprintHash(Facts);
  Ent.Facts = std::move(Facts);
  Ent.RegJson = std::move(RegJson);
  Ent.RegFp = RegFp;
  Ent.Gen = Generation + 1;
  Ent.Validated = true;
  Ent.Valid = true;
  Entries[{std::move(EdgeLabel), ConfigHash}] = std::move(Ent);
}

void RefutationCache::erase(const std::string &EdgeLabel,
                            uint64_t ConfigHash) {
  std::lock_guard<std::mutex> Lock(M);
  Entries.erase({EdgeLabel, ConfigHash});
}

bool RefutationCache::save(std::string *Error) {
  std::lock_guard<std::mutex> Lock(M);
  uint64_t NewGen = Generation + 1;

  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC) {
    if (Error)
      *Error = Dir + ": " + EC.message();
    return false;
  }
  std::string Tmp = storePath() + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::trunc);
    if (!Out.is_open()) {
      if (Error)
        *Error = Tmp + ": cannot open for writing";
      return false;
    }
    JsonValue Header = JsonValue::makeObject();
    Header.set("schema", JsonValue::makeString(SchemaVersion));
    Header.set("generation", JsonValue::makeUint(NewGen));
    Out << Header.toString() << "\n";
    for (auto It = Entries.begin(); It != Entries.end();) {
      const Entry &Ent = It->second;
      bool Invalidated = Ent.Validated && !Ent.Valid;
      bool Expired = NewGen - Ent.Gen > KeepGenerations;
      if (Invalidated || Expired) {
        It = Entries.erase(It);
        continue;
      }
      JsonValue E = JsonValue::makeObject();
      E.set("edge", JsonValue::makeString(It->first.first));
      E.set("global", JsonValue::makeBool(Ent.IsGlobal));
      E.set("config", JsonValue::makeString(toHex(It->first.second)));
      E.set("verdict", JsonValue::makeString(outcomeName(Ent.Outcome)));
      E.set("steps", JsonValue::makeUint(Ent.Steps));
      E.set("fp", JsonValue::makeString(toHex(Ent.FootprintHash)));
      E.set("gen", JsonValue::makeUint(Ent.Gen));
      JsonValue Facts = JsonValue::makeArray();
      for (const Fact &F : Ent.Facts) {
        JsonValue FV = JsonValue::makeArray();
        FV.append(JsonValue::makeString(F.Kind));
        for (const std::string &K : F.Key)
          FV.append(JsonValue::makeString(K));
        FV.append(JsonValue::makeString(toHex(F.ValueHash)));
        Facts.append(std::move(FV));
      }
      E.set("facts", std::move(Facts));
      if (!Ent.RegJson.empty() && Ent.RegFp != 0) {
        E.set("reg", JsonValue::makeString(Ent.RegJson));
        E.set("regfp", JsonValue::makeString(toHex(Ent.RegFp)));
      }
      Out << E.toString() << "\n";
      ++It;
    }
    if (!Out.good()) {
      if (Error)
        *Error = Tmp + ": write failed";
      return false;
    }
  }
  // Injected mid-write crash: the temp file exists (possibly torn) but the
  // rename never happens, so the previous store must remain intact and
  // loadable — pinned by tests/fault_test.cpp.
  if (FaultInject::shouldFail(faultsite::CacheWrite)) {
    std::filesystem::remove(Tmp, EC);
    if (Error)
      *Error = Tmp + ": injected write fault";
    return false;
  }
  // Durability: flush the temp file before the rename makes it visible,
  // and the directory after, so a power cut cannot leave the store name
  // pointing at unwritten blocks.
  syncPath(Tmp, /*IsDir=*/false);
  std::filesystem::rename(Tmp, storePath(), EC);
  if (EC) {
    if (Error)
      *Error = storePath() + ": " + EC.message();
    return false;
  }
  syncPath(Dir, /*IsDir=*/true);
  Generation = NewGen;
  return true;
}

uint64_t RefutationCache::configHash(const SymOptions &Opts,
                                     bool AnnotateHashMap) {
  StableHasher H;
  H.add(std::string_view("thresher-config/1"));
  H.add(static_cast<uint64_t>(Opts.Repr));
  H.add(static_cast<uint64_t>(Opts.QuerySimplification));
  H.add(static_cast<uint64_t>(Opts.Loop));
  H.add(Opts.EdgeBudget);
  H.add(static_cast<uint64_t>(Opts.MaxCallStackDepth));
  H.add(static_cast<uint64_t>(Opts.PathConstraintCap));
  H.add(static_cast<uint64_t>(Opts.MaxLoopCrossings));
  H.add(static_cast<uint64_t>(AnnotateHashMap));
  // The search reducers change per-edge step counts (never verdicts), so
  // cached entries must not cross a reducer-config boundary.
  H.add(static_cast<uint64_t>(Opts.ForwardSlice));
  H.add(static_cast<uint64_t>(Opts.GlobalSubsume));
  return H.hash();
}
