//===- Facts.h - Replayable dependency facts for the cache ------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns the id-level DepFootprint recorded during a witness search into
/// name-based, value-hashed *facts* that can be persisted and replayed
/// against a future compilation of the (possibly edited) program. A fact is
/// (kind, key parts, hash of the canonical value string); a cached verdict
/// is reusable iff every fact's value recomputes to the same hash against
/// the fresh Program/PointsToResult. Resolution failures (a name that no
/// longer exists, or is ambiguous) fail the fact — fail-safe: the edge is
/// simply re-searched.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_CACHE_FACTS_H
#define THRESHER_CACHE_FACTS_H

#include "pta/PointsTo.h"
#include "sym/Footprint.h"

#include <map>
#include <string>
#include <vector>

namespace thresher {

/// One replayable dependency fact.
struct Fact {
  std::string Kind;
  std::vector<std::string> Key;
  uint64_t ValueHash = 0;

  bool operator<(const Fact &O) const {
    if (Kind != O.Kind)
      return Kind < O.Kind;
    if (Key != O.Key)
      return Key < O.Key;
    return ValueHash < O.ValueHash;
  }
  bool operator==(const Fact &O) const {
    return Kind == O.Kind && Key == O.Key && ValueHash == O.ValueHash;
  }
};

/// Materializes \p FP into sorted facts (by kind, then key). Ids are
/// resolved to names against the Program/PointsToResult the footprint was
/// recorded on, so the result is compilation-independent.
std::vector<Fact> materializeFootprint(const Program &P,
                                       const PointsToResult &PTA,
                                       const DepFootprint &FP);

/// Order-sensitive combined hash of \p Facts (callers sort via
/// materializeFootprint). Stored in the cache entry as a quick equality
/// check and surfaced in --cache-verify diagnostics.
uint64_t footprintHash(const std::vector<Fact> &Facts);

/// Replays facts against a fresh Program/PointsToResult: resolves the
/// name-based key back to dense ids and recomputes the value hash.
class FactReplayer {
public:
  FactReplayer(const Program &P, const PointsToResult &PTA);

  /// True iff \p F's value recomputes to the same hash. Unknown kinds,
  /// unresolvable names, and ambiguous names all return false.
  bool holds(const Fact &F) const;

private:
  FuncId funcByName(const std::string &Name) const;
  GlobalId globalByName(const std::string &Name) const;
  FieldId fieldByName(const std::string &Name) const;
  AbsLocId locByLabel(const std::string &Label) const;
  AllocSiteId siteByLabel(const std::string &Label) const;

  const Program &P;
  const PointsToResult &PTA;
  /// Name -> id maps; InvalidId marks an ambiguous (duplicated) name.
  std::map<std::string, FuncId> Funcs;
  std::map<std::string, GlobalId> Globals;
  std::map<std::string, FieldId> Fields;
  std::map<std::string, AbsLocId> Locs;
  std::map<std::string, AllocSiteId> Sites;
};

} // namespace thresher

#endif // THRESHER_CACHE_FACTS_H
