//===- Budget.h - Resource governance for the analysis pipeline -*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resource-governance layer: a shared, thread-safe ResourceGovernor
/// holding per-edge and whole-run deadlines, a memory ceiling tracked by an
/// explicit charge/release accountant, and a cooperative cancellation token
/// checked at search-step granularity.
///
/// Soundness contract: a search that cannot finish must KEEP the alarm,
/// never refute it. Every exhaustion signal the governor raises therefore
/// maps to SearchOutcome::BudgetExhausted downstream (reported as TIMEOUT),
/// with a structured ExhaustionReason recorded per edge.
///
/// Determinism contract: in deterministic mode (the default) deadlines are
/// denominated in search *steps*, converted from milliseconds via a
/// steps/ms rate recorded in the report, so verdicts and reports are
/// byte-identical across machines, thread counts, and repeated runs.
/// Wall-clock mode (--wall-clock) is the production opt-in: deadlines are
/// real time and reports become volatile. See docs/ROBUSTNESS.md.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_BUDGET_H
#define THRESHER_SUPPORT_BUDGET_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace thresher {

/// Why a search (or the whole run) was cut short. Ordered roughly by how
/// deterministic the cause is: Steps is always deterministic; Deadline and
/// Memory are deterministic in step-denominated mode; Cancelled propagates
/// a sibling's or the run's exhaustion.
enum class ExhaustionReason : uint8_t {
  None = 0, ///< Not exhausted.
  Steps,    ///< Per-edge step budget (SymOptions::EdgeBudget) ran out.
  Deadline, ///< Per-edge deadline (step-denominated or wall-clock) fired.
  Memory,   ///< The memory accountant crossed the configured ceiling.
  Cancelled ///< Cooperative cancellation (run deadline or sibling failure).
};

/// Canonical name for \p R: "none", "steps", "deadline", "memory", or
/// "cancelled" (used by trace events, the JSON report, and tests).
const char *exhaustionReasonName(ExhaustionReason R);

/// Cooperative cancellation flag shared by every worker of a run. Workers
/// poll it at search-step granularity; setting it never interrupts a
/// thread, it only makes the next step return BudgetExhausted(Cancelled).
class CancelToken {
public:
  void cancel() { Flag.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return Flag.load(std::memory_order_relaxed); }
  void reset() { Flag.store(false, std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// Governor configuration. All limits are "0 = unlimited".
struct GovernorConfig {
  /// Deterministic mode: deadlines are denominated in steps (ms converted
  /// via StepsPerMs). Wall-clock mode: deadlines are real milliseconds.
  bool Deterministic = true;
  /// Conversion rate for deterministic deadlines. The default is a fixed
  /// calibration constant so reports are byte-identical across machines;
  /// override with --steps-per-ms after calibrating for your hardware.
  uint64_t StepsPerMs = 1000;
  /// Per-edge deadline in milliseconds (spans all producers of the edge).
  uint64_t EdgeTimeoutMs = 0;
  /// Whole-run deadline in milliseconds. In deterministic mode this bounds
  /// the cumulative steps of *consulted* searches (identical across thread
  /// counts); in wall-clock mode it bounds real time and cancels siblings.
  uint64_t RunTimeoutMs = 0;
  /// Memory ceiling in bytes for the charge/release accountant.
  uint64_t MemCeilingBytes = 0;
};

/// Shared, thread-safe resource governor for one analysis run.
///
/// The accountant is an explicit charge/release API instrumented at the
/// big consumers (Query state clones in the witness search, PTA delta
/// sets), not a global allocator hook: the point is governed degradation
/// at well-defined check points, not byte-exact RSS tracking.
class ResourceGovernor {
public:
  explicit ResourceGovernor(GovernorConfig C = {});

  const GovernorConfig &config() const { return Cfg; }

  /// Marks the start of the run (wall-clock run deadline anchor).
  void beginRun();

  // --- Memory accountant. ---

  /// Charges \p Bytes to the accountant. Returns false if the ceiling is
  /// (or just became) exceeded; the caller must treat the work it was
  /// about to retain as unaffordable and degrade soundly. The charge is
  /// recorded either way so release() stays balanced.
  bool charge(uint64_t Bytes);
  /// Releases \p Bytes previously charged.
  void release(uint64_t Bytes);
  uint64_t memInUse() const { return MemBytes.load(std::memory_order_relaxed); }
  uint64_t memPeak() const { return MemPeak.load(std::memory_order_relaxed); }
  bool memExceeded() const {
    return Cfg.MemCeilingBytes != 0 &&
           MemBytes.load(std::memory_order_relaxed) > Cfg.MemCeilingBytes;
  }

  // --- Cancellation. ---

  CancelToken &cancelToken() { return Cancel; }
  void cancelRun() { Cancel.cancel(); }
  bool runCancelled() const { return Cancel.cancelled(); }

  // --- Run deadline. ---

  /// Adds \p Steps to the run's consulted-step account (deterministic-mode
  /// run deadline; called by the sequential consult loop only, so the
  /// account is identical across thread counts).
  void noteConsultedSteps(uint64_t Steps) {
    ConsultedSteps.fetch_add(Steps, std::memory_order_relaxed);
  }
  uint64_t consultedSteps() const {
    return ConsultedSteps.load(std::memory_order_relaxed);
  }

  /// True once the whole-run deadline has fired (consulted steps in
  /// deterministic mode, elapsed wall-clock otherwise). Also latches the
  /// cancellation token so sibling workers stop cooperatively.
  bool runExhausted();

  // --- Per-edge scope. ---

  /// Per-edge governance scope: tracks the edge's own step count and start
  /// time, and answers "may this search take another step?". One scope
  /// spans every producer tried for the edge. Scopes are cheap
  /// (non-allocating) and thread-confined; the governor they point to is
  /// shared.
  class EdgeScope {
  public:
    EdgeScope() = default;
    explicit EdgeScope(ResourceGovernor &G);

    /// Accounts one search step and checks every governed limit, in
    /// deterministic order (cancellation, edge deadline, memory).
    /// Returns ExhaustionReason::None while the search may continue.
    ExhaustionReason noteStepAndCheck();

    uint64_t steps() const { return Steps; }
    /// Elapsed wall-clock milliseconds since the scope was created
    /// (volatile; used for the hist.robust.edgeMs histogram only).
    uint64_t elapsedMs() const;

  private:
    ResourceGovernor *Gov = nullptr;
    uint64_t Steps = 0;
    /// Step-denominated edge deadline (deterministic mode), 0 = none.
    uint64_t StepLimit = 0;
    /// How many steps between wall-clock polls (wall-clock mode).
    static constexpr uint64_t ClockPollInterval = 256;
    std::chrono::steady_clock::time_point Start;
    std::chrono::steady_clock::time_point EdgeDeadline;
    bool HasWallDeadline = false;
  };

  /// Robustness counters, read out into Stats by the pipeline owner after
  /// the run (the governor itself stays dependency-free).
  std::atomic<uint64_t> DeadlineHits{0};
  std::atomic<uint64_t> MemCeilingHits{0};
  std::atomic<uint64_t> CancelHits{0};

private:
  friend class EdgeScope;

  GovernorConfig Cfg;
  CancelToken Cancel;
  std::atomic<uint64_t> MemBytes{0};
  std::atomic<uint64_t> MemPeak{0};
  std::atomic<uint64_t> ConsultedSteps{0};
  std::chrono::steady_clock::time_point RunStart;
  bool RunStarted = false;
};

} // namespace thresher

#endif // THRESHER_SUPPORT_BUDGET_H
