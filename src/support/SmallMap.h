//===- SmallMap.h - Sorted small-vector map ---------------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A map over a sorted vector of (key, value) pairs. For the handful-of-
/// entries maps the symbolic stage builds and throws away at high rates
/// (per-subsumption-check variable renamings), a contiguous sorted vector
/// beats std::map's node allocations on both construction and lookup.
/// Iteration is in ascending key order, matching std::map.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_SMALLMAP_H
#define THRESHER_SUPPORT_SMALLMAP_H

#include <algorithm>
#include <utility>
#include <vector>

namespace thresher {

/// Sorted-vector map with a std::map-like surface (find/emplace/count/
/// operator[], sorted iteration). Keys must be LessThanComparable.
template <typename K, typename V> class SmallMap {
public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator find(const K &Key) {
    auto It = lowerBound(Key);
    return (It != E.end() && It->first == Key) ? It : E.end();
  }
  const_iterator find(const K &Key) const {
    auto It = lowerBound(Key);
    return (It != E.end() && It->first == Key) ? It : E.end();
  }

  /// Inserts (Key, Val) if Key is absent; returns the entry and whether
  /// an insertion happened.
  std::pair<iterator, bool> emplace(const K &Key, V Val) {
    auto It = lowerBound(Key);
    if (It != E.end() && It->first == Key)
      return {It, false};
    It = E.insert(It, {Key, std::move(Val)});
    return {It, true};
  }

  V &operator[](const K &Key) {
    auto It = lowerBound(Key);
    if (It == E.end() || It->first != Key)
      It = E.insert(It, {Key, V()});
    return It->second;
  }

  size_t count(const K &Key) const { return find(Key) != E.end() ? 1 : 0; }
  bool empty() const { return E.empty(); }
  size_t size() const { return E.size(); }
  void clear() { E.clear(); }
  void reserve(size_t N) { E.reserve(N); }

  iterator begin() { return E.begin(); }
  iterator end() { return E.end(); }
  const_iterator begin() const { return E.begin(); }
  const_iterator end() const { return E.end(); }

private:
  iterator lowerBound(const K &Key) {
    return std::lower_bound(
        E.begin(), E.end(), Key,
        [](const value_type &A, const K &B) { return A.first < B; });
  }
  const_iterator lowerBound(const K &Key) const {
    return std::lower_bound(
        E.begin(), E.end(), Key,
        [](const value_type &A, const K &B) { return A.first < B; });
  }

  std::vector<value_type> E;
};

} // namespace thresher

#endif // THRESHER_SUPPORT_SMALLMAP_H
