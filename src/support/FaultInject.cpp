//===- FaultInject.cpp - Deterministic counted fault injection ------------===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

using namespace thresher;

namespace {

struct Trigger {
  uint64_t Nth = 0;  ///< Fire on this hit (1-based).
  uint64_t Hits = 0; ///< Hits recorded so far.
  bool Fired = false;
};

struct Registry {
  std::mutex M;
  std::map<std::string, Trigger> Sites;
  std::atomic<uint64_t> Fired{0};
};

Registry &registry() {
  static Registry R;
  return R;
}

/// Fast path: true only while at least one site is armed. Lets unarmed
/// probes skip the registry lock entirely.
std::atomic<bool> &anyArmed() {
  static std::atomic<bool> A{false};
  return A;
}

} // namespace

std::vector<std::string> thresher::faultSiteCatalogue() {
  return {faultsite::SearchStep, faultsite::CacheRead, faultsite::CacheWrite,
          faultsite::ReportWrite, faultsite::SolverEntry};
}

void FaultInject::arm(const std::string &Site, uint64_t Nth) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  R.Sites[Site] = Trigger{Nth == 0 ? 1 : Nth, 0, false};
  anyArmed().store(true, std::memory_order_release);
}

bool FaultInject::armFromSpec(const std::string &Spec, std::string *Error) {
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Part = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Part.empty())
      continue;
    size_t Colon = Part.rfind(':');
    std::string Site = Colon == std::string::npos ? Part
                                                  : Part.substr(0, Colon);
    uint64_t Nth = 1;
    if (Colon != std::string::npos) {
      std::string N = Part.substr(Colon + 1);
      bool Ok = !N.empty() && N.size() <= 19;
      for (char C : N)
        Ok = Ok && C >= '0' && C <= '9';
      if (!Ok || Site.empty()) {
        if (Error)
          *Error = "malformed fault spec '" + Part +
                   "' (expected site:N with N a positive integer)";
        return false;
      }
      Nth = std::strtoull(N.c_str(), nullptr, 10);
      if (Nth == 0) {
        if (Error)
          *Error = "fault spec '" + Part + "': N must be >= 1";
        return false;
      }
    }
    arm(Site, Nth);
  }
  return true;
}

std::string FaultInject::armFromEnv() {
  const char *Env = std::getenv("THRESHER_FAULT");
  if (!Env || !*Env)
    return "";
  std::string Error;
  if (!armFromSpec(Env, &Error))
    return Error;
  return "";
}

bool FaultInject::shouldFail(const char *Site) {
  if (!anyArmed().load(std::memory_order_acquire))
    return false;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  auto It = R.Sites.find(Site);
  if (It == R.Sites.end())
    return false;
  Trigger &T = It->second;
  if (T.Fired)
    return false;
  if (++T.Hits < T.Nth)
    return false;
  T.Fired = true;
  R.Fired.fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint64_t FaultInject::firedCount() {
  return registry().Fired.load(std::memory_order_relaxed);
}

void FaultInject::reset() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  R.Sites.clear();
  R.Fired.store(0, std::memory_order_relaxed);
  anyArmed().store(false, std::memory_order_release);
}
