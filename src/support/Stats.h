//===- Stats.h - Named analysis counters ------------------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small registry of named counters used to report analysis effort
/// (queries explored, refutations by kind, case splits, ...).
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_STATS_H
#define THRESHER_SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace thresher {

/// Named monotonic counters for analysis effort reporting.
class Stats {
public:
  /// Increments counter \p Name by \p Delta.
  void bump(const std::string &Name, uint64_t Delta = 1) {
    Counters[Name] += Delta;
  }

  /// Returns the value of counter \p Name (0 if never bumped).
  uint64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  /// Merges all counters from \p Other into this.
  void mergeFrom(const Stats &Other) {
    for (const auto &[Name, Value] : Other.Counters)
      Counters[Name] += Value;
  }

  void clear() { Counters.clear(); }

  /// Prints all counters, one per line, sorted by name.
  void print(std::ostream &OS) const;

private:
  std::map<std::string, uint64_t> Counters;
};

} // namespace thresher

#endif // THRESHER_SUPPORT_STATS_H
