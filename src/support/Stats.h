//===- Stats.h - Named analysis counters and histograms ---------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe registry of named monotonic counters and log-scaled
/// histograms used to report analysis effort (queries explored,
/// refutations by kind, states per edge, subsumption-check latency, ...),
/// plus a scoped RAII timer that records elapsed nanoseconds into a
/// histogram. See docs/OBSERVABILITY.md for the naming conventions and the
/// full list of counters the engine emits.
///
/// The registry is internally synchronized so that it is safe to bump from
/// concurrent workers; the intended discipline is still per-worker
/// registries merged once via mergeFrom (no contention on the hot path),
/// and the lock makes accidental sharing safe rather than fast.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_STATS_H
#define THRESHER_SUPPORT_STATS_H

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>

namespace thresher {

/// A log2-bucketed histogram of unsigned samples (latencies in
/// nanoseconds, states per edge, loop crossings, ...). Bucket B counts
/// samples whose bit width is B, i.e. values in [2^(B-1), 2^B); bucket 0
/// counts zero samples. 64 buckets cover the full uint64_t range, so
/// recording never saturates.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 65;

  /// Bucket index for value \p V (0 for 0, else bit_width(V)).
  static unsigned bucketFor(uint64_t V) {
    unsigned B = 0;
    while (V) {
      ++B;
      V >>= 1;
    }
    return B;
  }

  /// Inclusive lower bound of bucket \p B.
  static uint64_t bucketLo(unsigned B) {
    return B == 0 ? 0 : uint64_t(1) << (B - 1);
  }

  void record(uint64_t V) {
    ++Buckets[bucketFor(V)];
    ++N;
    Total += V;
    if (N == 1 || V < Lo)
      Lo = V;
    if (V > Hi)
      Hi = V;
  }

  void mergeFrom(const Histogram &O) {
    if (O.N == 0)
      return;
    if (N == 0 || O.Lo < Lo)
      Lo = O.Lo;
    if (O.Hi > Hi)
      Hi = O.Hi;
    N += O.N;
    Total += O.Total;
    for (unsigned B = 0; B < NumBuckets; ++B)
      Buckets[B] += O.Buckets[B];
  }

  uint64_t count() const { return N; }
  uint64_t sum() const { return Total; }
  uint64_t min() const { return N ? Lo : 0; }
  uint64_t max() const { return Hi; }
  double mean() const { return N ? double(Total) / double(N) : 0.0; }
  const std::array<uint64_t, NumBuckets> &buckets() const { return Buckets; }

  /// Approximate quantile (\p Q in [0,1]) from the bucket boundaries:
  /// returns the lower bound of the bucket containing the Q-th sample, or
  /// std::nullopt for an empty histogram — "never sampled" must stay
  /// distinguishable from "every sample was zero".
  std::optional<uint64_t> quantile(double Q) const;

private:
  uint64_t N = 0;
  uint64_t Total = 0;
  uint64_t Lo = 0;
  uint64_t Hi = 0;
  std::array<uint64_t, NumBuckets> Buckets{};
};

/// Thread-safe registry of named monotonic counters and histograms.
class Stats {
public:
  Stats() = default;
  Stats(const Stats &) = delete;
  Stats &operator=(const Stats &) = delete;

  /// Increments counter \p Name by \p Delta.
  void bump(const std::string &Name, uint64_t Delta = 1) {
    std::lock_guard<std::mutex> Lock(M);
    Counters[Name] += Delta;
  }

  /// Returns the value of counter \p Name (0 if never bumped).
  uint64_t get(const std::string &Name) const {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  /// Records sample \p Value into histogram \p Name.
  void record(const std::string &Name, uint64_t Value) {
    std::lock_guard<std::mutex> Lock(M);
    Histograms[Name].record(Value);
  }

  /// Merges a locally accumulated histogram into histogram \p Name in one
  /// registry operation. Hot loops should batch samples into a stack-local
  /// Histogram and fold it in once, instead of paying the lock and the
  /// name lookup per sample.
  void mergeHistogram(const std::string &Name, const Histogram &H) {
    if (H.count() == 0)
      return;
    std::lock_guard<std::mutex> Lock(M);
    Histograms[Name].mergeFrom(H);
  }

  /// Ensures histogram \p Name exists in the registry, creating an empty
  /// one if needed. Lets a phase that may legitimately record nothing
  /// still appear in reports (with count 0 and null quantiles) instead of
  /// vanishing.
  void ensureHistogram(const std::string &Name) {
    std::lock_guard<std::mutex> Lock(M);
    (void)Histograms[Name];
  }

  /// Returns a copy of histogram \p Name (empty if never recorded).
  Histogram histogram(const std::string &Name) const {
    std::lock_guard<std::mutex> Lock(M);
    auto It = Histograms.find(Name);
    return It == Histograms.end() ? Histogram() : It->second;
  }

  /// Name-sorted snapshots, for reporting and serialization.
  std::map<std::string, uint64_t> counterSnapshot() const {
    std::lock_guard<std::mutex> Lock(M);
    return Counters;
  }
  std::map<std::string, Histogram> histogramSnapshot() const {
    std::lock_guard<std::mutex> Lock(M);
    return Histograms;
  }

  /// Merges all counters and histograms from \p Other into this.
  void mergeFrom(const Stats &Other) {
    // Snapshot first so the two registry locks are never held together.
    auto OC = Other.counterSnapshot();
    auto OH = Other.histogramSnapshot();
    std::lock_guard<std::mutex> Lock(M);
    for (const auto &[Name, Value] : OC)
      Counters[Name] += Value;
    for (const auto &[Name, H] : OH)
      Histograms[Name].mergeFrom(H);
  }

  void clear() {
    std::lock_guard<std::mutex> Lock(M);
    Counters.clear();
    Histograms.clear();
  }

  /// Prints all counters (one per line, sorted by name), then histogram
  /// summaries (count/sum/min/mean/p50/p90/max).
  void print(std::ostream &OS) const;

private:
  mutable std::mutex M;
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, Histogram> Histograms;
};

/// RAII helper: records the scope's elapsed wall-clock nanoseconds into
/// histogram \p Name of \p S on destruction.
class ScopedTimer {
public:
  ScopedTimer(Stats &S, std::string Name)
      : S(S), Name(std::move(Name)), Start(Clock::now()) {}
  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;
  ~ScopedTimer() {
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - Start)
                  .count();
    S.record(Name, static_cast<uint64_t>(Ns < 0 ? 0 : Ns));
  }

private:
  using Clock = std::chrono::steady_clock;
  Stats &S;
  std::string Name;
  Clock::time_point Start;
};

} // namespace thresher

#endif // THRESHER_SUPPORT_STATS_H
