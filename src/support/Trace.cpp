#include "support/Trace.h"

#include "support/Json.h"

#include <algorithm>

using namespace thresher;

TraceSink::~TraceSink() = default;

std::string thresher::traceEventToJson(const TraceEvent &Ev) {
  JsonValue O = JsonValue::makeObject();
  O.set("seq", JsonValue::makeUint(Ev.Seq));
  O.set("edge", JsonValue::makeString(Ev.Edge));
  O.set("kind", JsonValue::makeString(Ev.IsGlobal ? "global" : "field"));
  O.set("verdict", JsonValue::makeString(Ev.Verdict));
  if (!Ev.Reason.empty())
    O.set("reason", JsonValue::makeString(Ev.Reason));
  O.set("producersTried", JsonValue::makeUint(Ev.ProducersTried));
  if (!Ev.Producer.empty())
    O.set("producer", JsonValue::makeString(Ev.Producer));
  O.set("steps", JsonValue::makeUint(Ev.Steps));
  O.set("budget", JsonValue::makeUint(Ev.Budget));
  if (!Ev.RefuteKinds.empty()) {
    JsonValue RK = JsonValue::makeObject();
    for (const auto &[Kind, N] : Ev.RefuteKinds)
      RK.set(Kind, JsonValue::makeUint(N));
    O.set("refuteKinds", std::move(RK));
  }
  JsonValue Ph = JsonValue::makeObject();
  Ph.set("enumNanos", JsonValue::makeUint(Ev.EnumNanos));
  Ph.set("searchNanos", JsonValue::makeUint(Ev.SearchNanos));
  O.set("phases", std::move(Ph));
  if (!Ev.Note.empty())
    O.set("note", JsonValue::makeString(Ev.Note));
  return O.toString();
}

void JsonlTraceSink::emit(const TraceEvent &Ev) {
  OS << traceEventToJson(Ev) << "\n";
}

std::vector<TraceEvent>
thresher::mergeTraceEvents(std::vector<std::vector<TraceEvent>> Buffers) {
  std::vector<TraceEvent> All;
  for (std::vector<TraceEvent> &B : Buffers) {
    All.insert(All.end(), std::make_move_iterator(B.begin()),
               std::make_move_iterator(B.end()));
    B.clear();
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     if (A.Edge != B.Edge)
                       return A.Edge < B.Edge;
                     if (A.ProducersTried != B.ProducersTried)
                       return A.ProducersTried < B.ProducersTried;
                     return A.Steps < B.Steps;
                   });
  for (size_t I = 0; I < All.size(); ++I)
    All[I].Seq = I;
  return All;
}
