#include "support/Stats.h"

using namespace thresher;

void Stats::print(std::ostream &OS) const {
  for (const auto &[Name, Value] : Counters)
    OS << "  " << Name << " = " << Value << "\n";
}
