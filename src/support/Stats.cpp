#include "support/Stats.h"

using namespace thresher;

std::optional<uint64_t> Histogram::quantile(double Q) const {
  if (N == 0)
    return std::nullopt;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  uint64_t Rank = static_cast<uint64_t>(Q * double(N - 1));
  uint64_t Seen = 0;
  for (unsigned B = 0; B < NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen > Rank)
      return bucketLo(B);
  }
  return Hi;
}

void Stats::print(std::ostream &OS) const {
  auto C = counterSnapshot();
  auto H = histogramSnapshot();
  for (const auto &[Name, Value] : C)
    OS << "  " << Name << " = " << Value << "\n";
  auto Q = [](const Histogram &Hist, double P) {
    auto V = Hist.quantile(P);
    return V ? std::to_string(*V) : std::string("-");
  };
  for (const auto &[Name, Hist] : H) {
    OS << "  " << Name << ": n=" << Hist.count() << " sum=" << Hist.sum()
       << " min=" << Hist.min() << " mean=" << Hist.mean()
       << " p50=" << Q(Hist, 0.5) << " p90=" << Q(Hist, 0.9)
       << " max=" << Hist.max() << "\n";
  }
}
