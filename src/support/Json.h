//===- Json.h - Minimal JSON document model ---------------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON value (build, serialize, parse) used by the
/// observability layer: the machine-readable leak report, the JSONL trace
/// backend, and the tests/benches that consume them. Object members keep
/// insertion order so that serialization is deterministic and reports are
/// byte-comparable across runs.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_JSON_H
#define THRESHER_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace thresher {

/// One JSON value: null, bool, integer, double, string, array, or object.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Int, Double, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  static JsonValue makeBool(bool B) {
    JsonValue V;
    V.K = Kind::Bool;
    V.B = B;
    return V;
  }
  static JsonValue makeInt(int64_t I) {
    JsonValue V;
    V.K = Kind::Int;
    V.I = I;
    return V;
  }
  static JsonValue makeUint(uint64_t U) {
    return makeInt(static_cast<int64_t>(U));
  }
  static JsonValue makeDouble(double D) {
    JsonValue V;
    V.K = Kind::Double;
    V.D = D;
    return V;
  }
  static JsonValue makeString(std::string S) {
    JsonValue V;
    V.K = Kind::String;
    V.S = std::move(S);
    return V;
  }
  static JsonValue makeArray() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue makeObject() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  int64_t asInt() const { return K == Kind::Double ? int64_t(D) : I; }
  uint64_t asUint() const { return static_cast<uint64_t>(asInt()); }
  double asDouble() const { return K == Kind::Int ? double(I) : D; }
  const std::string &asString() const { return S; }

  // --- Array interface. ---
  const std::vector<JsonValue> &items() const { return Items; }
  JsonValue &append(JsonValue V) {
    Items.push_back(std::move(V));
    return Items.back();
  }
  size_t size() const { return isObject() ? Members.size() : Items.size(); }

  // --- Object interface (insertion-ordered). ---
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }
  /// Adds or replaces member \p Key.
  JsonValue &set(const std::string &Key, JsonValue V);
  /// Member lookup; nullptr when missing or not an object.
  const JsonValue *find(const std::string &Key) const;
  /// Path lookup ("a.b.c"); nullptr when any hop is missing.
  const JsonValue *findPath(const std::string &DottedPath) const;

  /// Serializes compactly when \p Indent < 0, else pretty-printed.
  void write(std::ostream &OS, int Indent = -1) const;
  std::string toString(int Indent = -1) const;

private:
  void writeImpl(std::ostream &OS, int Indent, int Depth) const;

  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  double D = 0.0;
  std::string S;
  std::vector<JsonValue> Items;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Writes \p S with JSON escaping (including the surrounding quotes).
void writeJsonString(std::ostream &OS, const std::string &S);

/// Parses \p Text; returns false (and sets \p Error) on malformed input.
bool parseJson(const std::string &Text, JsonValue &Out, std::string *Error = nullptr);

} // namespace thresher

#endif // THRESHER_SUPPORT_JSON_H
