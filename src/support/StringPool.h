//===- StringPool.h - Interned strings --------------------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings so the IR can refer to names by dense 32-bit ids.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_STRINGPOOL_H
#define THRESHER_SUPPORT_STRINGPOOL_H

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace thresher {

/// Dense id for an interned string.
using NameId = uint32_t;

/// Interns strings and hands out stable dense ids.
class StringPool {
public:
  /// Interns \p Str, returning its id (existing or fresh).
  NameId intern(std::string_view Str);

  /// Returns the string for \p Id.
  const std::string &str(NameId Id) const;

  /// Returns the id for \p Str if interned, or ~0u otherwise.
  NameId lookup(std::string_view Str) const;

  size_t size() const { return Strings.size(); }

private:
  // A deque keeps each stored std::string object (and thus any SSO buffer)
  // at a stable address, so the string_view keys in Index stay valid.
  std::deque<std::string> Strings;
  std::unordered_map<std::string_view, NameId> Index;
};

} // namespace thresher

#endif // THRESHER_SUPPORT_STRINGPOOL_H
