//===- IdSet.h - Hybrid sorted-vector / bitmap set of ids ------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic set of dense 32-bit ids with a hybrid representation:
/// small sets are a sorted vector (cache-friendly, cheap to copy), and sets
/// that grow past a threshold switch to a word-granular bitmap so repeated
/// insertAll/contains on hot large sets (points-to sets of heavily shared
/// locations, successor lists of collapsed cycle representatives) stop
/// costing O(n) reallocations per merge. Both representations iterate in
/// ascending id order and compare by content, so the representation a set
/// happens to be in is unobservable — analysis output stays byte-identical
/// no matter which path built the set.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_IDSET_H
#define THRESHER_SUPPORT_IDSET_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <iterator>
#include <vector>

namespace thresher {

/// A deterministic set of dense 32-bit ids: sorted vector while small, word
/// bitmap once large. Iteration is always in ascending id order.
class IdSet {
public:
  /// Element count at which a vector set becomes promotion-eligible.
  static constexpr size_t BitmapThreshold = 64;
  /// Promotion is skipped while the bitmap would need more than this many
  /// words per element (very sparse sets stay vectors: correct either way,
  /// and the vector is smaller).
  static constexpr size_t MaxWordsPerElem = 4;

  IdSet() = default;
  IdSet(std::initializer_list<uint32_t> Ids) : Elems(Ids) { normalize(); }
  explicit IdSet(std::vector<uint32_t> Ids) : Elems(std::move(Ids)) {
    normalize();
  }

  /// Returns true if \p Id is a member.
  bool contains(uint32_t Id) const {
    if (isBitmap()) {
      size_t W = Id >> 6;
      return W < Words.size() && (Words[W] >> (Id & 63)) & 1;
    }
    return std::binary_search(Elems.begin(), Elems.end(), Id);
  }

  /// Inserts \p Id; returns true if it was not already present.
  bool insert(uint32_t Id) {
    if (isBitmap()) {
      size_t W = Id >> 6;
      if (W >= Words.size())
        Words.resize(W + 1, 0);
      uint64_t Bit = uint64_t(1) << (Id & 63);
      if (Words[W] & Bit)
        return false;
      Words[W] |= Bit;
      ++Count;
      return true;
    }
    auto It = std::lower_bound(Elems.begin(), Elems.end(), Id);
    if (It != Elems.end() && *It == Id)
      return false;
    Elems.insert(It, Id);
    maybePromote();
    return true;
  }

  /// Inserts every element of \p Other; returns true if this set grew.
  bool insertAll(const IdSet &Other) {
    if (Other.empty())
      return false;
    if (empty()) {
      *this = Other;
      return true;
    }
    if (isBitmap() && Other.isBitmap()) {
      if (Words.size() < Other.Words.size())
        Words.resize(Other.Words.size(), 0);
      size_t NewCount = 0;
      for (size_t W = 0; W < Words.size(); ++W) {
        if (W < Other.Words.size())
          Words[W] |= Other.Words[W];
        NewCount += popcount(Words[W]);
      }
      bool Grew = NewCount != Count;
      Count = NewCount;
      return Grew;
    }
    if (isBitmap()) { // Bitmap |= vector.
      bool Grew = false;
      for (uint32_t Id : Other.Elems)
        Grew |= insert(Id);
      return Grew;
    }
    if (Other.isBitmap()) { // Vector |= bitmap: the result is large anyway.
      IdSet Merged = Other;
      for (uint32_t Id : Elems)
        Merged.insert(Id);
      bool Grew = Merged.size() != Elems.size(); // Merged is a superset.
      *this = std::move(Merged);
      return Grew;
    }
    size_t OldSize = Elems.size();
    std::vector<uint32_t> Merged;
    Merged.reserve(OldSize + Other.size());
    std::set_union(Elems.begin(), Elems.end(), Other.Elems.begin(),
                   Other.Elems.end(), std::back_inserter(Merged));
    Elems = std::move(Merged);
    bool Grew = Elems.size() != OldSize;
    maybePromote();
    return Grew;
  }

  /// Inserts every element of \p Other that is not in \p Except; returns
  /// true if this set grew. This is the delta-propagation primitive
  /// (delta := delta | (src \ pts)) and runs word-wise when all three sets
  /// are bitmaps.
  bool insertAllExcept(const IdSet &Other, const IdSet &Except) {
    if (Other.empty())
      return false;
    if (Except.empty())
      return insertAll(Other);
    if (empty()) {
      // Clone-and-subtract: the common delta-propagation case (the
      // receiving delta was just drained) must not degrade to
      // per-element sorted-vector insertion.
      if (Other.isBitmap()) {
        *this = Other;
        if (Except.isBitmap()) {
          size_t Overlap = std::min(Words.size(), Except.Words.size());
          for (size_t W = 0; W < Overlap; ++W)
            Words[W] &= ~Except.Words[W];
          Count = 0;
          for (uint64_t W : Words)
            Count += popcount(W);
        } else {
          for (uint32_t Id : Except.Elems)
            erase(Id);
        }
        trimTrailingZeroWords();
        return !empty();
      }
      Elems.reserve(Other.Elems.size());
      for (uint32_t Id : Other.Elems)
        if (!Except.contains(Id))
          Elems.push_back(Id); // Other.Elems is sorted; order preserved.
      maybePromote();
      return !empty();
    }
    if (isBitmap() && Other.isBitmap() && Except.isBitmap()) {
      if (Words.size() < Other.Words.size())
        Words.resize(Other.Words.size(), 0);
      size_t NewCount = 0;
      for (size_t W = 0; W < Words.size(); ++W) {
        if (W < Other.Words.size()) {
          uint64_t Src = Other.Words[W];
          if (W < Except.Words.size())
            Src &= ~Except.Words[W];
          Words[W] |= Src;
        }
        NewCount += popcount(Words[W]);
      }
      bool Grew = NewCount != Count;
      Count = NewCount;
      trimTrailingZeroWords(); // The Except mask can zero appended words.
      return Grew;
    }
    bool Grew = false;
    for (uint32_t Id : Other)
      if (!Except.contains(Id))
        Grew |= insert(Id);
    return Grew;
  }

  /// Removes \p Id if present; returns true if it was removed.
  bool erase(uint32_t Id) {
    if (isBitmap()) {
      size_t W = Id >> 6;
      uint64_t Bit = uint64_t(1) << (Id & 63);
      if (W >= Words.size() || !(Words[W] & Bit))
        return false;
      Words[W] &= ~Bit;
      --Count;
      trimTrailingZeroWords();
      return true;
    }
    auto It = std::lower_bound(Elems.begin(), Elems.end(), Id);
    if (It == Elems.end() || *It != Id)
      return false;
    Elems.erase(It);
    return true;
  }

  /// Returns the intersection of this set and \p Other.
  IdSet intersectWith(const IdSet &Other) const {
    if (!isBitmap() && !Other.isBitmap()) {
      IdSet Result;
      std::set_intersection(Elems.begin(), Elems.end(), Other.Elems.begin(),
                            Other.Elems.end(),
                            std::back_inserter(Result.Elems));
      return Result;
    }
    const IdSet &Small = size() <= Other.size() ? *this : Other;
    const IdSet &Large = size() <= Other.size() ? Other : *this;
    std::vector<uint32_t> Kept;
    for (uint32_t Id : Small)
      if (Large.contains(Id))
        Kept.push_back(Id);
    IdSet Result;
    Result.Elems = std::move(Kept); // Already sorted and unique.
    Result.maybePromote();
    return Result;
  }

  /// Returns true if this set and \p Other share no element.
  bool disjointWith(const IdSet &Other) const {
    if (!isBitmap() && !Other.isBitmap()) {
      auto I = Elems.begin(), J = Other.Elems.begin();
      while (I != Elems.end() && J != Other.Elems.end()) {
        if (*I < *J)
          ++I;
        else if (*J < *I)
          ++J;
        else
          return false;
      }
      return true;
    }
    if (isBitmap() && Other.isBitmap()) {
      size_t N = std::min(Words.size(), Other.Words.size());
      for (size_t W = 0; W < N; ++W)
        if (Words[W] & Other.Words[W])
          return false;
      return true;
    }
    const IdSet &Small = size() <= Other.size() ? *this : Other;
    const IdSet &Large = size() <= Other.size() ? Other : *this;
    for (uint32_t Id : Small)
      if (Large.contains(Id))
        return false;
    return true;
  }

  /// Returns true if every element of this set is in \p Other.
  bool subsetOf(const IdSet &Other) const {
    if (size() > Other.size())
      return false;
    if (!isBitmap() && !Other.isBitmap())
      return std::includes(Other.Elems.begin(), Other.Elems.end(),
                           Elems.begin(), Elems.end());
    if (isBitmap() && Other.isBitmap()) {
      for (size_t W = 0; W < Words.size(); ++W) {
        uint64_t O = W < Other.Words.size() ? Other.Words[W] : 0;
        if (Words[W] & ~O)
          return false;
      }
      return true;
    }
    for (uint32_t Id : *this)
      if (!Other.contains(Id))
        return false;
    return true;
  }

  bool empty() const { return isBitmap() ? Count == 0 : Elems.empty(); }
  size_t size() const { return isBitmap() ? Count : Elems.size(); }

  /// Approximate heap bytes held by this set (memory-accountant input;
  /// capacity is deliberately ignored so the estimate is deterministic
  /// across allocators and growth histories).
  size_t heapBytes() const {
    return isBitmap() ? Words.size() * sizeof(uint64_t)
                      : Elems.size() * sizeof(uint32_t);
  }

  /// The sole element of a singleton set.
  uint32_t singleElement() const {
    assert(size() == 1 && "not a singleton set");
    return *begin();
  }

  void clear() {
    Elems.clear();
    Words.clear();
    Count = 0;
  }

  /// Forward iterator yielding ids in ascending order in either
  /// representation (dereference returns the id by value).
  class const_iterator {
  public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const uint32_t *;
    using reference = uint32_t;

    const_iterator() = default;
    uint32_t operator*() const {
      return S->isBitmap() ? static_cast<uint32_t>(Pos) : S->Elems[Pos];
    }
    const_iterator &operator++() {
      Pos = S->isBitmap() ? S->nextSetBit(Pos + 1) : Pos + 1;
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator Tmp = *this;
      ++*this;
      return Tmp;
    }
    bool operator==(const const_iterator &O) const { return Pos == O.Pos; }
    bool operator!=(const const_iterator &O) const { return Pos != O.Pos; }

  private:
    friend class IdSet;
    const_iterator(const IdSet *S, size_t Pos) : S(S), Pos(Pos) {}
    const IdSet *S = nullptr;
    size_t Pos = 0; ///< Vector: index into Elems. Bitmap: the current id.
  };

  const_iterator begin() const {
    return {this, isBitmap() ? nextSetBit(0) : 0};
  }
  const_iterator end() const {
    return {this, isBitmap() ? Words.size() * 64 : Elems.size()};
  }

  /// Content equality, independent of representation.
  bool operator==(const IdSet &Other) const {
    if (size() != Other.size())
      return false;
    if (!isBitmap() && !Other.isBitmap())
      return Elems == Other.Elems;
    if (isBitmap() && Other.isBitmap())
      return Words == Other.Words; // No trailing zero words by invariant.
    return std::equal(begin(), end(), Other.begin());
  }
  bool operator!=(const IdSet &Other) const { return !(*this == Other); }

  /// True when the set currently uses the bitmap representation. Exposed
  /// for tests and diagnostics only; the representation never affects
  /// observable content, ordering, or equality.
  bool usesBitmap() const { return isBitmap(); }

private:
  bool isBitmap() const { return !Words.empty() || Count != 0; }

  static unsigned popcount(uint64_t V) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_popcountll(V));
#else
    unsigned N = 0;
    while (V) {
      V &= V - 1;
      ++N;
    }
    return N;
#endif
  }

  static unsigned countTrailingZeros(uint64_t V) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_ctzll(V));
#else
    unsigned N = 0;
    while (!(V & 1)) {
      V >>= 1;
      ++N;
    }
    return N;
#endif
  }

  /// First set bit at or after id \p From; Words.size()*64 if none.
  size_t nextSetBit(size_t From) const {
    size_t W = From >> 6;
    if (W >= Words.size())
      return Words.size() * 64;
    uint64_t Cur = Words[W] & (~uint64_t(0) << (From & 63));
    while (!Cur) {
      if (++W >= Words.size())
        return Words.size() * 64;
      Cur = Words[W];
    }
    return (W << 6) + countTrailingZeros(Cur);
  }

  void trimTrailingZeroWords() {
    while (!Words.empty() && Words.back() == 0)
      Words.pop_back();
  }

  /// Switches a sorted vector that crossed the threshold to the bitmap,
  /// unless the id range is too sparse for the bitmap to pay off. The
  /// decision depends only on the set's content, never on how it was
  /// built, so equal sets behave identically.
  void maybePromote() {
    if (Elems.size() < BitmapThreshold)
      return;
    size_t NumWords = (size_t(Elems.back()) >> 6) + 1;
    if (NumWords > MaxWordsPerElem * Elems.size())
      return;
    Words.assign(NumWords, 0);
    for (uint32_t Id : Elems)
      Words[Id >> 6] |= uint64_t(1) << (Id & 63);
    Count = Elems.size();
    Elems.clear();
    Elems.shrink_to_fit();
  }

  void normalize() {
    std::sort(Elems.begin(), Elems.end());
    Elems.erase(std::unique(Elems.begin(), Elems.end()), Elems.end());
    maybePromote();
  }

  std::vector<uint32_t> Elems; ///< Vector representation (sorted, unique).
  std::vector<uint64_t> Words; ///< Bitmap representation (no trailing 0s).
  size_t Count = 0;            ///< Bitmap element count (0 in vector rep).
};

} // namespace thresher

#endif // THRESHER_SUPPORT_IDSET_H
