//===- IdSet.h - Sorted small set of dense integer ids ----------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sorted-vector set of 32-bit ids. Points-to sets and instance-constraint
/// regions are small in practice, so a sorted vector beats a hash set on both
/// memory and iteration order determinism (which we rely on for reproducible
/// analysis output).
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_IDSET_H
#define THRESHER_SUPPORT_IDSET_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace thresher {

/// A deterministic set of dense 32-bit ids stored as a sorted vector.
class IdSet {
public:
  IdSet() = default;
  IdSet(std::initializer_list<uint32_t> Ids) : Elems(Ids) { normalize(); }
  explicit IdSet(std::vector<uint32_t> Ids) : Elems(std::move(Ids)) {
    normalize();
  }

  /// Returns true if \p Id is a member.
  bool contains(uint32_t Id) const {
    return std::binary_search(Elems.begin(), Elems.end(), Id);
  }

  /// Inserts \p Id; returns true if it was not already present.
  bool insert(uint32_t Id) {
    auto It = std::lower_bound(Elems.begin(), Elems.end(), Id);
    if (It != Elems.end() && *It == Id)
      return false;
    Elems.insert(It, Id);
    return true;
  }

  /// Inserts every element of \p Other; returns true if this set grew.
  bool insertAll(const IdSet &Other) {
    if (Other.empty())
      return false;
    size_t OldSize = Elems.size();
    std::vector<uint32_t> Merged;
    Merged.reserve(OldSize + Other.size());
    std::set_union(Elems.begin(), Elems.end(), Other.Elems.begin(),
                   Other.Elems.end(), std::back_inserter(Merged));
    Elems = std::move(Merged);
    return Elems.size() != OldSize;
  }

  /// Removes \p Id if present; returns true if it was removed.
  bool erase(uint32_t Id) {
    auto It = std::lower_bound(Elems.begin(), Elems.end(), Id);
    if (It == Elems.end() || *It != Id)
      return false;
    Elems.erase(It);
    return true;
  }

  /// Returns the intersection of this set and \p Other.
  IdSet intersectWith(const IdSet &Other) const {
    IdSet Result;
    std::set_intersection(Elems.begin(), Elems.end(), Other.Elems.begin(),
                          Other.Elems.end(),
                          std::back_inserter(Result.Elems));
    return Result;
  }

  /// Returns true if this set and \p Other share no element.
  bool disjointWith(const IdSet &Other) const {
    auto I = Elems.begin(), J = Other.Elems.begin();
    while (I != Elems.end() && J != Other.Elems.end()) {
      if (*I < *J)
        ++I;
      else if (*J < *I)
        ++J;
      else
        return false;
    }
    return true;
  }

  /// Returns true if every element of this set is in \p Other.
  bool subsetOf(const IdSet &Other) const {
    return std::includes(Other.Elems.begin(), Other.Elems.end(),
                         Elems.begin(), Elems.end());
  }

  bool empty() const { return Elems.empty(); }
  size_t size() const { return Elems.size(); }

  /// The sole element of a singleton set.
  uint32_t singleElement() const {
    assert(Elems.size() == 1 && "not a singleton set");
    return Elems.front();
  }

  void clear() { Elems.clear(); }

  using const_iterator = std::vector<uint32_t>::const_iterator;
  const_iterator begin() const { return Elems.begin(); }
  const_iterator end() const { return Elems.end(); }

  bool operator==(const IdSet &Other) const { return Elems == Other.Elems; }
  bool operator!=(const IdSet &Other) const { return Elems != Other.Elems; }

private:
  void normalize() {
    std::sort(Elems.begin(), Elems.end());
    Elems.erase(std::unique(Elems.begin(), Elems.end()), Elems.end());
  }

  std::vector<uint32_t> Elems;
};

} // namespace thresher

#endif // THRESHER_SUPPORT_IDSET_H
