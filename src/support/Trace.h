//===- Trace.h - Structured per-edge trace events ---------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured tracing for the witness-refutation engine: every edge search
/// emits one TraceEvent carrying the edge identity, the statement that
/// witnessed it (when one did), the verdict, the budget consumed, the
/// refutation kinds encountered, and per-phase nanosecond timings. Sinks
/// decide what to do with events: collect them (VectorTraceSink, used by
/// the parallel leak-checker workers so that merged traces are
/// deterministic) or stream them as JSON Lines (JsonlTraceSink, the
/// `thresher check --trace` backend). See docs/OBSERVABILITY.md for the
/// event schema.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_TRACE_H
#define THRESHER_SUPPORT_TRACE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace thresher {

/// One structured trace event for a completed edge search.
struct TraceEvent {
  /// Deterministic sequence number, assigned after merging (events are
  /// ordered by edge label, not by wall-clock completion order).
  uint64_t Seq = 0;
  /// Human-readable edge identity ("Cls.field -> label" or
  /// "label.f -> label"), also the deterministic merge key.
  std::string Edge;
  bool IsGlobal = false;
  /// Verdict: "REFUTED", "WITNESSED", or "TIMEOUT".
  std::string Verdict;
  /// Structured exhaustion reason ("steps", "deadline", "memory",
  /// "cancelled"); empty unless Verdict is "TIMEOUT".
  std::string Reason;
  /// Number of producing statements the search tried.
  uint32_t ProducersTried = 0;
  /// The producing statement that was witnessed (empty unless WITNESSED).
  std::string Producer;
  /// Query states consumed out of the per-edge budget.
  uint64_t Steps = 0;
  /// The per-edge budget in effect.
  uint64_t Budget = 0;
  /// Refutation kinds hit during the search (kind -> path count).
  std::map<std::string, uint64_t> RefuteKinds;
  /// Per-phase wall-clock nanoseconds.
  uint64_t EnumNanos = 0;   ///< Producer-site enumeration.
  uint64_t SearchNanos = 0; ///< Backwards symbolic execution.
  /// Free-form note from the engine (e.g. budget-exhaustion cause).
  std::string Note;
};

/// Abstract consumer of trace events. Implementations must tolerate
/// emit() being called from the thread that owns the sink only; use one
/// VectorTraceSink per worker and merge for concurrent producers.
class TraceSink {
public:
  virtual ~TraceSink();
  virtual void emit(const TraceEvent &Ev) = 0;
};

/// Collects events in memory (per-worker buffer, test inspection).
class VectorTraceSink : public TraceSink {
public:
  void emit(const TraceEvent &Ev) override { Events.push_back(Ev); }
  std::vector<TraceEvent> &events() { return Events; }
  const std::vector<TraceEvent> &events() const { return Events; }

private:
  std::vector<TraceEvent> Events;
};

/// Streams each event as one JSON object per line (JSON Lines).
class JsonlTraceSink : public TraceSink {
public:
  explicit JsonlTraceSink(std::ostream &OS) : OS(OS) {}
  void emit(const TraceEvent &Ev) override;

private:
  std::ostream &OS;
};

/// Serializes \p Ev as a single-line JSON object (no trailing newline).
std::string traceEventToJson(const TraceEvent &Ev);

/// Deterministically merges per-worker event buffers: concatenates,
/// sorts by (edge label, producers tried, steps), and assigns Seq.
std::vector<TraceEvent>
mergeTraceEvents(std::vector<std::vector<TraceEvent>> Buffers);

} // namespace thresher

#endif // THRESHER_SUPPORT_TRACE_H
