//===- Budget.cpp - Resource governance for the analysis pipeline ---------===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Budget.h"

using namespace thresher;

const char *thresher::exhaustionReasonName(ExhaustionReason R) {
  switch (R) {
  case ExhaustionReason::None:
    return "none";
  case ExhaustionReason::Steps:
    return "steps";
  case ExhaustionReason::Deadline:
    return "deadline";
  case ExhaustionReason::Memory:
    return "memory";
  case ExhaustionReason::Cancelled:
    return "cancelled";
  }
  return "?";
}

ResourceGovernor::ResourceGovernor(GovernorConfig C) : Cfg(C) {}

void ResourceGovernor::beginRun() {
  RunStart = std::chrono::steady_clock::now();
  RunStarted = true;
  ConsultedSteps.store(0, std::memory_order_relaxed);
}

bool ResourceGovernor::charge(uint64_t Bytes) {
  uint64_t Now = MemBytes.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
  uint64_t Peak = MemPeak.load(std::memory_order_relaxed);
  while (Now > Peak &&
         !MemPeak.compare_exchange_weak(Peak, Now, std::memory_order_relaxed))
    ;
  return Cfg.MemCeilingBytes == 0 || Now <= Cfg.MemCeilingBytes;
}

void ResourceGovernor::release(uint64_t Bytes) {
  MemBytes.fetch_sub(Bytes, std::memory_order_relaxed);
}

bool ResourceGovernor::runExhausted() {
  if (Cancel.cancelled())
    return true;
  if (Cfg.RunTimeoutMs == 0)
    return false;
  bool Fired;
  if (Cfg.Deterministic) {
    Fired = ConsultedSteps.load(std::memory_order_relaxed) >=
            Cfg.RunTimeoutMs * Cfg.StepsPerMs;
  } else {
    if (!RunStarted)
      return false;
    Fired = std::chrono::steady_clock::now() - RunStart >=
            std::chrono::milliseconds(Cfg.RunTimeoutMs);
  }
  if (Fired) {
    DeadlineHits.fetch_add(1, std::memory_order_relaxed);
    Cancel.cancel(); // Propagate to sibling workers cooperatively.
  }
  return Fired;
}

ResourceGovernor::EdgeScope::EdgeScope(ResourceGovernor &G)
    : Gov(&G), Start(std::chrono::steady_clock::now()) {
  const GovernorConfig &C = G.Cfg;
  if (C.EdgeTimeoutMs != 0) {
    if (C.Deterministic) {
      StepLimit = C.EdgeTimeoutMs * C.StepsPerMs;
    } else {
      EdgeDeadline = Start + std::chrono::milliseconds(C.EdgeTimeoutMs);
      HasWallDeadline = true;
    }
  }
}

uint64_t ResourceGovernor::EdgeScope::elapsedMs() const {
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - Start)
                .count();
  return static_cast<uint64_t>(Ms < 0 ? 0 : Ms);
}

ExhaustionReason ResourceGovernor::EdgeScope::noteStepAndCheck() {
  if (!Gov)
    return ExhaustionReason::None;
  ++Steps;
  // Check order is fixed so deterministic runs report deterministic
  // reasons even when several limits are crossed at once.
  if (Gov->Cancel.cancelled()) {
    Gov->CancelHits.fetch_add(1, std::memory_order_relaxed);
    return ExhaustionReason::Cancelled;
  }
  if (StepLimit != 0 && Steps > StepLimit) {
    Gov->DeadlineHits.fetch_add(1, std::memory_order_relaxed);
    return ExhaustionReason::Deadline;
  }
  if (HasWallDeadline && Steps % ClockPollInterval == 0 &&
      std::chrono::steady_clock::now() >= EdgeDeadline) {
    Gov->DeadlineHits.fetch_add(1, std::memory_order_relaxed);
    return ExhaustionReason::Deadline;
  }
  // In wall-clock mode the run deadline is polled here too, so a long
  // single edge search cannot outlive the run budget unobserved.
  if (!Gov->Cfg.Deterministic && Gov->Cfg.RunTimeoutMs != 0 &&
      Steps % ClockPollInterval == 0 && Gov->runExhausted()) {
    Gov->CancelHits.fetch_add(1, std::memory_order_relaxed);
    return ExhaustionReason::Cancelled;
  }
  if (Gov->memExceeded()) {
    Gov->MemCeilingHits.fetch_add(1, std::memory_order_relaxed);
    return ExhaustionReason::Memory;
  }
  return ExhaustionReason::None;
}
