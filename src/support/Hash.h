//===- Hash.h - Shared hash mixing helpers ----------------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-process hash mixing for unordered containers keyed by id pairs and
/// small tuples. The historical pattern `(size_t(A) << 32) ^ B` silently
/// truncates to `B ^ A<<0` when size_t is 32 bits and keeps low-entropy
/// low bits even on 64-bit hosts; every pair-keyed map should use
/// hashPair() instead. These hashes are NOT stable across processes —
/// persistent formats use ir/Fingerprint.h's StableHasher.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_HASH_H
#define THRESHER_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>

namespace thresher {

/// Finalizer of the splitmix64 generator: a full-avalanche 64-bit mix, so
/// every input bit affects every output bit (including the low bits that
/// unordered containers actually use).
inline uint64_t hashMix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Hash of an ordered pair of 32-bit ids, mixed to a full-width size_t.
inline size_t hashPair(uint32_t A, uint32_t B) {
  return static_cast<size_t>(
      hashMix64((static_cast<uint64_t>(A) << 32) | B));
}

/// Combines an additional value into a running hash (Boost-style).
inline uint64_t hashCombine(uint64_t Seed, uint64_t V) {
  return hashMix64(Seed ^ (V + 0x9e3779b97f4a7c15ull + (Seed << 6) +
                           (Seed >> 2)));
}

} // namespace thresher

#endif // THRESHER_SUPPORT_HASH_H
