#include "support/StringPool.h"

#include <cassert>

using namespace thresher;

NameId StringPool::intern(std::string_view Str) {
  auto It = Index.find(Str);
  if (It != Index.end())
    return It->second;
  Strings.emplace_back(Str);
  NameId Id = static_cast<NameId>(Strings.size() - 1);
  Index.emplace(std::string_view(Strings.back()), Id);
  return Id;
}

const std::string &StringPool::str(NameId Id) const {
  assert(Id < Strings.size() && "invalid name id");
  return Strings[Id];
}

NameId StringPool::lookup(std::string_view Str) const {
  auto It = Index.find(Str);
  return It == Index.end() ? ~0u : It->second;
}
