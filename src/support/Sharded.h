//===- Sharded.h - Sharded string-keyed slot map ----------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concurrency-friendly map from string slots to append-only value lists,
/// split into independently locked shards so readers and writers touching
/// different slots rarely contend. The global subsumption registry
/// (sym/Subsume.h) layers query semantics on top; this container knows
/// nothing about queries, so it can live in support without dragging the
/// symbolic layer in.
///
/// Determinism contract: values are only appended, never reordered or
/// removed (except clear()), and every scan sees the entries of its slot in
/// append order. Callers that need cross-thread determinism must arrange
/// their publish points deterministically (docs/PRUNING.md); the container
/// itself only guarantees data-race freedom and per-slot ordering.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_SHARDED_H
#define THRESHER_SUPPORT_SHARDED_H

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace thresher {

/// FNV-1a shard hash. Deliberately independent of std::hash so shard
/// assignment (observable through shardSizes(), which tests pin loosely)
/// does not vary across standard libraries.
inline size_t shardHashString(std::string_view S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : S) {
    H ^= static_cast<uint8_t>(C);
    H *= 0x100000001b3ull;
  }
  return static_cast<size_t>(H);
}

/// Sharded map: slot string -> append-only vector<V>.
template <typename V, size_t NumShardsT = 16> class ShardedSlotMap {
public:
  static constexpr size_t NumShards = NumShardsT;

  /// Appends \p Val to \p Slot's list.
  void append(const std::string &Slot, V Val) {
    Shard &Sh = shardOf(Slot);
    std::lock_guard<std::mutex> Lock(Sh.M);
    Sh.Slots[Slot].push_back(std::move(Val));
  }

  /// Calls \p F on each value in \p Slot (append order) under the shard
  /// lock until F returns true; returns whether F accepted an entry.
  template <typename Fn> bool scan(const std::string &Slot, Fn &&F) const {
    const Shard &Sh = shardOf(Slot);
    std::lock_guard<std::mutex> Lock(Sh.M);
    auto It = Sh.Slots.find(Slot);
    if (It == Sh.Slots.end())
      return false;
    for (const V &Val : It->second)
      if (F(Val))
        return true;
    return false;
  }

  /// Appends \p Val unless \p Same accepts an existing entry of the slot.
  /// Returns true if the value was inserted. Atomic per slot.
  template <typename Fn>
  bool appendIfNone(const std::string &Slot, V Val, Fn &&Same) {
    Shard &Sh = shardOf(Slot);
    std::lock_guard<std::mutex> Lock(Sh.M);
    std::vector<V> &Vals = Sh.Slots[Slot];
    for (const V &Existing : Vals)
      if (Same(Existing))
        return false;
    Vals.push_back(std::move(Val));
    return true;
  }

  /// Total values held across all shards.
  size_t size() const {
    size_t N = 0;
    for (const Shard &Sh : Shards) {
      std::lock_guard<std::mutex> Lock(Sh.M);
      for (const auto &[Slot, Vals] : Sh.Slots) {
        (void)Slot;
        N += Vals.size();
      }
    }
    return N;
  }

  /// Per-shard value counts (for distribution diagnostics and tests).
  std::array<size_t, NumShards> shardSizes() const {
    std::array<size_t, NumShards> Out{};
    for (size_t I = 0; I < NumShards; ++I) {
      std::lock_guard<std::mutex> Lock(Shards[I].M);
      for (const auto &[Slot, Vals] : Shards[I].Slots) {
        (void)Slot;
        Out[I] += Vals.size();
      }
    }
    return Out;
  }

  void clear() {
    for (Shard &Sh : Shards) {
      std::lock_guard<std::mutex> Lock(Sh.M);
      Sh.Slots.clear();
    }
  }

private:
  struct Shard {
    mutable std::mutex M;
    std::unordered_map<std::string, std::vector<V>> Slots;
  };

  Shard &shardOf(const std::string &Slot) {
    return Shards[shardHashString(Slot) % NumShards];
  }
  const Shard &shardOf(const std::string &Slot) const {
    return Shards[shardHashString(Slot) % NumShards];
  }

  std::array<Shard, NumShards> Shards;
};

} // namespace thresher

#endif // THRESHER_SUPPORT_SHARDED_H
