#include "support/UnionFind.h"

using namespace thresher;

void UnionFind::growTo(uint32_t Id) {
  while (Parent.size() <= Id) {
    Parent.push_back(static_cast<uint32_t>(Parent.size()));
    Rank.push_back(0);
  }
}

uint32_t UnionFind::find(uint32_t Id) {
  growTo(Id);
  uint32_t Cur = Id;
  while (Parent[Cur] != Cur) {
    Parent[Cur] = Parent[Parent[Cur]]; // Path halving.
    Cur = Parent[Cur];
  }
  return Cur;
}

uint32_t UnionFind::findConst(uint32_t Id) const {
  if (Id >= Parent.size())
    return Id;
  uint32_t Cur = Id;
  while (Parent[Cur] != Cur)
    Cur = Parent[Cur];
  return Cur;
}

uint32_t UnionFind::unite(uint32_t A, uint32_t B) {
  uint32_t RA = find(A), RB = find(B);
  if (RA == RB)
    return RA;
  if (Rank[RA] < Rank[RB])
    std::swap(RA, RB);
  Parent[RB] = RA;
  if (Rank[RA] == Rank[RB])
    ++Rank[RA];
  return RA;
}
