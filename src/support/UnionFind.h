//===- UnionFind.h - Disjoint-set forest ------------------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Union-find over dense 32-bit ids with path halving and union by rank.
/// Used by the pure-constraint solver's equality congruence and by query
/// normalization when exact points-to constraints force two symbolic
/// variables to denote the same instance.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_UNIONFIND_H
#define THRESHER_SUPPORT_UNIONFIND_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace thresher {

/// Disjoint-set forest over ids 0..N-1; grows on demand.
class UnionFind {
public:
  /// Returns the representative of \p Id's class (grows the forest to
  /// include \p Id if needed).
  uint32_t find(uint32_t Id);

  /// Const find: returns \p Id itself if it is beyond the current forest.
  uint32_t findConst(uint32_t Id) const;

  /// Merges the classes of \p A and \p B; returns the new representative.
  uint32_t unite(uint32_t A, uint32_t B);

  /// Returns true if \p A and \p B are known equal.
  bool sameClass(uint32_t A, uint32_t B) { return find(A) == find(B); }

  size_t size() const { return Parent.size(); }

private:
  void growTo(uint32_t Id);

  std::vector<uint32_t> Parent;
  std::vector<uint8_t> Rank;
};

} // namespace thresher

#endif // THRESHER_SUPPORT_UNIONFIND_H
