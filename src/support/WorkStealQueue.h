//===- WorkStealQueue.h - Fixed-capacity work-stealing deque ----*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Chase-Lev-style work-stealing deque with a fixed-capacity ring: the
/// owning worker pushes and pops at the bottom (LIFO, cache-hot), thieves
/// steal at the top (FIFO, oldest items first). Elements are stored in
/// atomic slots so the container is data-race-free under TSan without
/// relying on usage discipline.
///
/// Intended usage (SearchPool): one bulk-load phase by the distributing
/// thread before a wave starts (synchronized with workers by the pool's
/// wave barrier), then concurrent pop/steal during the wave. The ring does
/// not grow — the capacity must cover the largest single load, which for
/// wave-scoped scheduling is the wave width.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_WORKSTEALQUEUE_H
#define THRESHER_SUPPORT_WORKSTEALQUEUE_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

namespace thresher {

template <typename T> class WorkStealQueue {
  static_assert(std::is_trivially_copyable_v<T>,
                "slots are atomic; elements must be trivially copyable");

public:
  explicit WorkStealQueue(size_t CapacityHint = 1024) {
    size_t Cap = 8;
    while (Cap < CapacityHint)
      Cap <<= 1;
    Ring = std::make_unique<std::atomic<T>[]>(Cap);
    Mask = Cap - 1;
  }

  size_t capacity() const { return Mask + 1; }

  /// Owner only, quiesced (no concurrent pop/steal): drop all items.
  void reset() {
    Top.store(0, std::memory_order_relaxed);
    Bottom.store(0, std::memory_order_relaxed);
  }

  /// Owner (or the distributing thread before the consumers start): append
  /// one item at the bottom. Returns false if the ring is full.
  bool push(T V) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t Tp = Top.load(std::memory_order_acquire);
    if (B - Tp >= static_cast<int64_t>(capacity()))
      return false;
    Ring[static_cast<size_t>(B) & Mask].store(V, std::memory_order_relaxed);
    Bottom.store(B + 1, std::memory_order_release);
    return true;
  }

  /// Owner only: take the most recently pushed item (LIFO).
  bool pop(T &Out) {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Bottom.store(B, std::memory_order_seq_cst);
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    if (Tp > B) {
      // Deque was empty; restore.
      Bottom.store(B + 1, std::memory_order_relaxed);
      return false;
    }
    Out = Ring[static_cast<size_t>(B) & Mask].load(std::memory_order_relaxed);
    if (Tp == B) {
      // Last item: race the thieves for it.
      bool Won = Top.compare_exchange_strong(Tp, Tp + 1,
                                             std::memory_order_seq_cst);
      Bottom.store(B + 1, std::memory_order_relaxed);
      return Won;
    }
    return true;
  }

  /// Any thread: take the oldest item (FIFO). May fail spuriously when
  /// racing another thief or the owner's pop of the last item.
  bool steal(T &Out) {
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_seq_cst);
    if (Tp >= B)
      return false;
    Out = Ring[static_cast<size_t>(Tp) & Mask].load(std::memory_order_relaxed);
    return Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst);
  }

  /// Racy size estimate; exact when quiesced.
  size_t sizeEstimate() const {
    int64_t B = Bottom.load(std::memory_order_acquire);
    int64_t Tp = Top.load(std::memory_order_acquire);
    return B > Tp ? static_cast<size_t>(B - Tp) : 0;
  }

private:
  std::unique_ptr<std::atomic<T>[]> Ring;
  size_t Mask = 0;
  /// Thief end. Only ever incremented (by successful steals and the
  /// owner's last-item pop), so a CAS on it claims a slot exactly once.
  std::atomic<int64_t> Top{0};
  /// Owner end.
  std::atomic<int64_t> Bottom{0};
};

} // namespace thresher

#endif // THRESHER_SUPPORT_WORKSTEALQUEUE_H
