//===- Timer.h - Wall-clock timing helpers ----------------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_TIMER_H
#define THRESHER_SUPPORT_TIMER_H

#include <chrono>

namespace thresher {

/// A simple wall-clock stopwatch.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  double seconds() const;

  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace thresher

#endif // THRESHER_SUPPORT_TIMER_H
