#include "support/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace thresher;

//===----------------------------------------------------------------------===//
// Building and lookup
//===----------------------------------------------------------------------===//

JsonValue &JsonValue::set(const std::string &Key, JsonValue V) {
  K = Kind::Object;
  for (auto &[Name, Val] : Members)
    if (Name == Key) {
      Val = std::move(V);
      return Val;
    }
  Members.emplace_back(Key, std::move(V));
  return Members.back().second;
}

const JsonValue *JsonValue::find(const std::string &Key) const {
  if (!isObject())
    return nullptr;
  for (const auto &[Name, Val] : Members)
    if (Name == Key)
      return &Val;
  return nullptr;
}

const JsonValue *JsonValue::findPath(const std::string &DottedPath) const {
  const JsonValue *Cur = this;
  size_t Pos = 0;
  while (Cur && Pos <= DottedPath.size()) {
    size_t Dot = DottedPath.find('.', Pos);
    std::string Key = DottedPath.substr(
        Pos, Dot == std::string::npos ? std::string::npos : Dot - Pos);
    Cur = Cur->find(Key);
    if (Dot == std::string::npos)
      return Cur;
    Pos = Dot + 1;
  }
  return Cur;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

void thresher::writeJsonString(std::ostream &OS, const std::string &S) {
  OS << '"';
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    case '\r':
      OS << "\\r";
      break;
    case '\t':
      OS << "\\t";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", Ch);
        OS << Buf;
      } else {
        OS << Ch;
      }
    }
  }
  OS << '"';
}

void JsonValue::writeImpl(std::ostream &OS, int Indent, int Depth) const {
  auto NL = [&](int D) {
    if (Indent < 0)
      return;
    OS << '\n';
    for (int I2 = 0; I2 < Indent * D; ++I2)
      OS << ' ';
  };
  switch (K) {
  case Kind::Null:
    OS << "null";
    return;
  case Kind::Bool:
    OS << (B ? "true" : "false");
    return;
  case Kind::Int:
    OS << I;
    return;
  case Kind::Double: {
    if (std::isfinite(D)) {
      char Buf[40];
      std::snprintf(Buf, sizeof(Buf), "%.17g", D);
      OS << Buf;
    } else {
      OS << "null"; // JSON has no inf/nan.
    }
    return;
  }
  case Kind::String:
    writeJsonString(OS, S);
    return;
  case Kind::Array: {
    OS << '[';
    for (size_t I2 = 0; I2 < Items.size(); ++I2) {
      if (I2)
        OS << ',';
      NL(Depth + 1);
      Items[I2].writeImpl(OS, Indent, Depth + 1);
    }
    if (!Items.empty())
      NL(Depth);
    OS << ']';
    return;
  }
  case Kind::Object: {
    OS << '{';
    for (size_t I2 = 0; I2 < Members.size(); ++I2) {
      if (I2)
        OS << ',';
      NL(Depth + 1);
      writeJsonString(OS, Members[I2].first);
      OS << (Indent < 0 ? ":" : ": ");
      Members[I2].second.writeImpl(OS, Indent, Depth + 1);
    }
    if (!Members.empty())
      NL(Depth);
    OS << '}';
    return;
  }
  }
}

void JsonValue::write(std::ostream &OS, int Indent) const {
  writeImpl(OS, Indent, 0);
}

std::string JsonValue::toString(int Indent) const {
  std::ostringstream SS;
  write(SS, Indent);
  return SS.str();
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text) : Text(Text) {}

  bool parse(JsonValue &Out, std::string &Error) {
    if (!value(Out) || (skipWs(), Pos != Text.size())) {
      Error = Err.empty() ? "trailing content" : Err;
      return false;
    }
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return fail(std::string("expected '") + C + "'");
  }

  bool literal(const char *Lit) {
    size_t N = std::string(Lit).size();
    if (Text.compare(Pos, N, Lit) == 0) {
      Pos += N;
      return true;
    }
    return fail(std::string("expected ") + Lit);
  }

  bool stringBody(std::string &Out) {
    if (!consume('"'))
      return false;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return fail("bad escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("bad \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= unsigned(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= unsigned(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= unsigned(H - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        // UTF-8 encode the BMP code point (no surrogate-pair handling;
        // the reports never emit them).
        if (Code < 0x80) {
          Out.push_back(char(Code));
        } else if (Code < 0x800) {
          Out.push_back(char(0xC0 | (Code >> 6)));
          Out.push_back(char(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(char(0xE0 | (Code >> 12)));
          Out.push_back(char(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(char(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool value(JsonValue &Out) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{') {
      ++Pos;
      Out = JsonValue::makeObject();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        std::string Key;
        if (!stringBody(Key) || !consume(':'))
          return false;
        JsonValue V;
        if (!value(V))
          return false;
        Out.set(Key, std::move(V));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          skipWs();
          continue;
        }
        return consume('}');
      }
    }
    if (C == '[') {
      ++Pos;
      Out = JsonValue::makeArray();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        JsonValue V;
        if (!value(V))
          return false;
        Out.append(std::move(V));
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        return consume(']');
      }
    }
    if (C == '"') {
      std::string S;
      if (!stringBody(S))
        return false;
      Out = JsonValue::makeString(std::move(S));
      return true;
    }
    if (C == 't') {
      Out = JsonValue::makeBool(true);
      return literal("true");
    }
    if (C == 'f') {
      Out = JsonValue::makeBool(false);
      return literal("false");
    }
    if (C == 'n') {
      Out = JsonValue();
      return literal("null");
    }
    // Number.
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    bool IsDouble = false;
    while (Pos < Text.size()) {
      char D = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(D))) {
        ++Pos;
      } else if (D == '.' || D == 'e' || D == 'E' || D == '-' || D == '+') {
        if (D == '.' || D == 'e' || D == 'E')
          IsDouble = true;
        ++Pos;
      } else {
        break;
      }
    }
    if (Pos == Start)
      return fail("unexpected character");
    std::string Num = Text.substr(Start, Pos - Start);
    if (IsDouble)
      Out = JsonValue::makeDouble(std::strtod(Num.c_str(), nullptr));
    else
      Out = JsonValue::makeInt(std::strtoll(Num.c_str(), nullptr, 10));
    return true;
  }

  const std::string &Text;
  size_t Pos = 0;
  std::string Err;
};

} // namespace

bool thresher::parseJson(const std::string &Text, JsonValue &Out,
                         std::string *Error) {
  std::string Err;
  Parser Ps(Text);
  if (Ps.parse(Out, Err))
    return true;
  if (Error)
    *Error = Err;
  return false;
}
