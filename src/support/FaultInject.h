//===- FaultInject.h - Deterministic counted fault injection ----*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection harness: a registry of named injection
/// sites, each armed with a counted trigger. A fault fires on the Nth hit
/// of its site (1-based), deterministically, and exactly once per arming.
/// Arm sites from the THRESHER_FAULT environment variable ("site:N",
/// comma-separated) or the --fault CLI flag.
///
/// This is what makes the soundness-under-failure properties *testable*:
/// tests/fault_test.cpp sweeps every registered site over the corpus and
/// asserts no crash, valid exit code + report, no refutation on a faulted
/// path, and no torn cache files. The site catalogue lives in
/// docs/ROBUSTNESS.md; code declares sites simply by probing them.
///
/// Probing an unarmed site costs one relaxed atomic load (the registry is
/// empty in production), so probes may sit on hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_FAULTINJECT_H
#define THRESHER_SUPPORT_FAULTINJECT_H

#include <cstdint>
#include <string>
#include <vector>

namespace thresher {

/// The well-known injection sites (kept here so tests and the CLI can
/// enumerate them; probing a site not in this list still works).
namespace faultsite {
inline constexpr const char *SearchStep = "search.step";
inline constexpr const char *CacheRead = "cache.read";
inline constexpr const char *CacheWrite = "cache.write";
inline constexpr const char *ReportWrite = "report.write";
inline constexpr const char *SolverEntry = "solver.entry";
} // namespace faultsite

/// All well-known sites, for sweeps.
std::vector<std::string> faultSiteCatalogue();

/// Global, thread-safe fault registry.
class FaultInject {
public:
  /// Arms \p Site to fire on its \p Nth hit (1-based). Re-arming a site
  /// replaces its trigger and resets its hit count.
  static void arm(const std::string &Site, uint64_t Nth);

  /// Parses a "site:N[,site:N...]" spec (the THRESHER_FAULT format) and
  /// arms each entry. Returns false (with \p Error set) on a malformed
  /// spec; earlier well-formed entries remain armed.
  static bool armFromSpec(const std::string &Spec, std::string *Error);

  /// Arms sites from the THRESHER_FAULT environment variable if present.
  /// Malformed specs are reported on the returned string (empty = ok).
  static std::string armFromEnv();

  /// Records one hit of \p Site; returns true when the armed trigger fires
  /// (exactly once). Unarmed sites return false at one atomic load's cost.
  static bool shouldFail(const char *Site);

  /// Number of faults fired so far (all sites).
  static uint64_t firedCount();

  /// Disarms everything and resets counters (tests).
  static void reset();
};

} // namespace thresher

#endif // THRESHER_SUPPORT_FAULTINJECT_H
