//===- Error.h - Structured user-facing errors ------------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured error for malformed *input* (unreadable files, bad CLI
/// arguments, frontend diagnostics, resource aborts): carries a category,
/// a one-line message, and the process exit code the driver should use.
/// Input problems surface as thresher::Error and a nonzero exit; asserts
/// remain reserved for internal invariants only.
///
/// Exit-code map (tools/thresher.cpp):
///   0  clean / all alarms refuted       2  usage error
///   1  leaks reported or input error    3  --cache-verify mismatch
///   4  resource limit aborted a non-degradable phase (e.g. PTA memory)
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SUPPORT_ERROR_H
#define THRESHER_SUPPORT_ERROR_H

#include <ostream>
#include <string>
#include <utility>

namespace thresher {

struct Error {
  enum class Category : uint8_t {
    Usage,    ///< Malformed command line (exit 2).
    Input,    ///< Unreadable or malformed input file (exit 1).
    Frontend, ///< Source program failed to compile (exit 1).
    Io,       ///< Output file could not be written (exit 1).
    Resource, ///< A non-degradable phase hit a resource limit (exit 4).
  };

  Category Cat = Category::Input;
  std::string Message;

  Error() = default;
  Error(Category Cat, std::string Message)
      : Cat(Cat), Message(std::move(Message)) {}

  static Error usage(std::string M) { return {Category::Usage, std::move(M)}; }
  static Error input(std::string M) { return {Category::Input, std::move(M)}; }
  static Error frontend(std::string M) {
    return {Category::Frontend, std::move(M)};
  }
  static Error io(std::string M) { return {Category::Io, std::move(M)}; }
  static Error resource(std::string M) {
    return {Category::Resource, std::move(M)};
  }

  int exitCode() const {
    switch (Cat) {
    case Category::Usage:
      return 2;
    case Category::Resource:
      return 4;
    case Category::Input:
    case Category::Frontend:
    case Category::Io:
      return 1;
    }
    return 1;
  }

  /// One-line diagnostic: "error: <message>".
  void report(std::ostream &OS) const { OS << "error: " << Message << "\n"; }
};

} // namespace thresher

#endif // THRESHER_SUPPORT_ERROR_H
