#include "support/Timer.h"

using namespace thresher;

double Timer::seconds() const {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}
