#include "interp/Interp.h"

#include <cassert>
#include <deque>

using namespace thresher;

Interpreter::Interpreter(const Program &Prog, InterpOptions Options)
    : P(Prog), Opts(std::move(Options)) {
  Globals.assign(P.Globals.size(), Value::mkNull());
  if (!Opts.HavocProvider)
    Opts.HavocProvider = []() { return 0; };
}

void Interpreter::fail(const std::string &Msg) {
  if (!Failed) {
    Failed = true;
    Result.Error = Msg;
  }
}

InterpResult Interpreter::run() {
  if (P.EntryFunc == InvalidId) {
    fail("program has no entry function");
    return std::move(Result);
  }
  return runFunction(P.EntryFunc);
}

InterpResult Interpreter::runFunction(FuncId F) {
  Value Ret;
  if (callFunction(F, {}, Ret) && !Failed)
    Result.Completed = true;
  return std::move(Result);
}

bool Interpreter::callFunction(FuncId F, const std::vector<Value> &Args,
                               Value &Ret) {
  const Function &Fn = P.Funcs[F];
  assert(Args.size() == Fn.NumParams && "arity mismatch at runtime");
  if (++CallDepth > Opts.MaxCallDepth) {
    fail("call depth exceeded in " + P.funcName(F));
    --CallDepth;
    return false;
  }
  std::vector<Value> Locals(Fn.NumVars, Value::mkNull());
  for (size_t I = 0; I < Args.size(); ++I)
    Locals[I] = Args[I];
  bool Ok = execBlockChain(F, Locals, Ret);
  --CallDepth;
  return Ok;
}

bool Interpreter::execBlockChain(FuncId F, std::vector<Value> &Locals,
                                 Value &Ret) {
  const Function &Fn = P.Funcs[F];
  BlockId B = Fn.Entry;

  auto RequireRef = [&](const Value &V, const char *What) -> bool {
    if (V.isRef())
      return true;
    fail(std::string("null dereference (") + What + ") in " + P.funcName(F));
    return false;
  };

  while (true) {
    const BasicBlock &BB = Fn.Blocks[B];
    for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
      const Instruction &I = BB.Insts[Idx];
      if (++Result.Steps > Opts.MaxSteps) {
        fail("step budget exceeded");
        return false;
      }
      switch (I.Op) {
      case Opcode::Assign:
        Locals[I.Dst] = Locals[I.Src];
        break;
      case Opcode::ConstInt:
        Locals[I.Dst] = Value::mkInt(I.IntVal);
        break;
      case Opcode::ConstNull:
        Locals[I.Dst] = Value::mkNull();
        break;
      case Opcode::Havoc:
        Locals[I.Dst] = Value::mkInt(Opts.HavocProvider());
        break;
      case Opcode::New: {
        HeapObject Obj;
        Obj.Class = I.Class;
        Obj.Site = I.Alloc;
        Heap.push_back(std::move(Obj));
        Locals[I.Dst] = Value::mkRef(static_cast<uint32_t>(Heap.size() - 1));
        break;
      }
      case Opcode::NewArray: {
        int64_t Len = I.RhsIsConst ? I.IntVal : Locals[I.Src].I;
        if (!I.RhsIsConst && Locals[I.Src].K != Value::Kind::Int) {
          fail("array length is not an integer");
          return false;
        }
        if (Len < 0) {
          fail("negative array length");
          return false;
        }
        HeapObject Obj;
        Obj.Class = I.Class;
        Obj.Site = I.Alloc;
        Obj.IsArray = true;
        Obj.Elems.assign(static_cast<size_t>(Len), Value::mkNull());
        Heap.push_back(std::move(Obj));
        Locals[I.Dst] = Value::mkRef(static_cast<uint32_t>(Heap.size() - 1));
        break;
      }
      case Opcode::Load: {
        const Value &Base = Locals[I.Src];
        if (!RequireRef(Base, "field load"))
          return false;
        const HeapObject &Obj = Heap[Base.Obj];
        auto It = Obj.Fields.find(I.Field);
        Locals[I.Dst] = It == Obj.Fields.end() ? Value::mkNull() : It->second;
        break;
      }
      case Opcode::Store: {
        const Value &Base = Locals[I.Dst];
        if (!RequireRef(Base, "field store"))
          return false;
        const Value &V = Locals[I.Src];
        Heap[Base.Obj].Fields[I.Field] = V;
        if (Opts.RecordWrites) {
          WriteEvent E;
          E.At = {F, B, Idx};
          E.BaseSite = Heap[Base.Obj].Site;
          E.Field = I.Field;
          E.TargetSite = V.isRef() ? Heap[V.Obj].Site : InvalidId;
          Result.Writes.push_back(E);
        }
        break;
      }
      case Opcode::LoadStatic:
        Locals[I.Dst] = Globals[I.Global];
        break;
      case Opcode::StoreStatic: {
        const Value &V = Locals[I.Src];
        Globals[I.Global] = V;
        if (Opts.RecordWrites) {
          WriteEvent E;
          E.At = {F, B, Idx};
          E.IsStatic = true;
          E.Global = I.Global;
          E.TargetSite = V.isRef() ? Heap[V.Obj].Site : InvalidId;
          Result.Writes.push_back(E);
        }
        break;
      }
      case Opcode::ArrayLoad: {
        const Value &Arr = Locals[I.Src];
        if (!RequireRef(Arr, "array load"))
          return false;
        const Value &Idx2 = Locals[I.Src2];
        const HeapObject &Obj = Heap[Arr.Obj];
        if (Idx2.K != Value::Kind::Int || Idx2.I < 0 ||
            static_cast<size_t>(Idx2.I) >= Obj.Elems.size()) {
          fail("array index out of bounds on load in " + P.funcName(F));
          return false;
        }
        Locals[I.Dst] = Obj.Elems[static_cast<size_t>(Idx2.I)];
        break;
      }
      case Opcode::ArrayStore: {
        const Value &Arr = Locals[I.Dst];
        if (!RequireRef(Arr, "array store"))
          return false;
        const Value &Idx2 = Locals[I.Src2];
        HeapObject &Obj = Heap[Arr.Obj];
        if (Idx2.K != Value::Kind::Int || Idx2.I < 0 ||
            static_cast<size_t>(Idx2.I) >= Obj.Elems.size()) {
          fail("array index out of bounds on store in " + P.funcName(F));
          return false;
        }
        const Value &V = Locals[I.Src];
        Obj.Elems[static_cast<size_t>(Idx2.I)] = V;
        if (Opts.RecordWrites) {
          WriteEvent E;
          E.At = {F, B, Idx};
          E.BaseSite = Obj.Site;
          E.Field = P.ElemsField;
          E.TargetSite = V.isRef() ? Heap[V.Obj].Site : InvalidId;
          Result.Writes.push_back(E);
        }
        break;
      }
      case Opcode::ArrayLen: {
        const Value &Arr = Locals[I.Src];
        if (!RequireRef(Arr, "length"))
          return false;
        Locals[I.Dst] =
            Value::mkInt(static_cast<int64_t>(Heap[Arr.Obj].Elems.size()));
        break;
      }
      case Opcode::Binop: {
        const Value &A = Locals[I.Src];
        int64_t Rhs = I.RhsIsConst ? I.IntVal : Locals[I.Src2].I;
        if (A.K != Value::Kind::Int ||
            (!I.RhsIsConst && Locals[I.Src2].K != Value::Kind::Int)) {
          fail("arithmetic on non-integer in " + P.funcName(F));
          return false;
        }
        int64_t R = 0;
        switch (I.BK) {
        case BinopKind::Add:
          R = A.I + Rhs;
          break;
        case BinopKind::Sub:
          R = A.I - Rhs;
          break;
        case BinopKind::Mul:
          R = A.I * Rhs;
          break;
        case BinopKind::Div:
          if (Rhs == 0) {
            fail("division by zero in " + P.funcName(F));
            return false;
          }
          R = A.I / Rhs;
          break;
        case BinopKind::Rem:
          if (Rhs == 0) {
            fail("remainder by zero in " + P.funcName(F));
            return false;
          }
          R = A.I % Rhs;
          break;
        }
        Locals[I.Dst] = Value::mkInt(R);
        break;
      }
      case Opcode::Call: {
        FuncId Callee = I.DirectCallee;
        if (I.IsVirtual) {
          const Value &Recv = Locals[I.Args[0]];
          if (!RequireRef(Recv, "virtual call receiver"))
            return false;
          Callee = P.resolveVirtual(Heap[Recv.Obj].Class, I.Method);
          if (Callee == InvalidId) {
            fail("unresolved virtual call to '" + P.Names.str(I.Method) +
                 "' on " + P.className(Heap[Recv.Obj].Class));
            return false;
          }
        }
        std::vector<Value> Args;
        Args.reserve(I.Args.size());
        for (VarId A : I.Args)
          Args.push_back(Locals[A]);
        Value RetV;
        if (!callFunction(Callee, Args, RetV))
          return false;
        if (I.Dst != NoVar)
          Locals[I.Dst] = RetV;
        break;
      }
      }
    }

    // Terminator.
    const Terminator &T = BB.Term;
    if (++Result.Steps > Opts.MaxSteps) {
      fail("step budget exceeded");
      return false;
    }
    switch (T.Kind) {
    case TermKind::Goto:
      B = T.Then;
      break;
    case TermKind::Return:
      Ret = T.HasRetVal ? Locals[T.RetVal] : Value::mkNull();
      return true;
    case TermKind::If: {
      const Value &L = Locals[T.Lhs];
      bool Taken = false;
      if (T.RhsKind == CondRhsKind::Null) {
        bool IsNull = L.isNull();
        Taken = (T.Rel == RelOp::EQ) ? IsNull : !IsNull;
      } else {
        int64_t LV, RV;
        if (T.RhsKind == CondRhsKind::IntConst) {
          RV = T.RhsConst;
        } else {
          const Value &R = Locals[T.Rhs];
          // Reference equality compares heap indices; mixed null/ref works.
          if (L.isRef() || R.isRef() || (L.isNull() && R.isNull())) {
            bool Eq = (L.K == R.K) && (!L.isRef() || L.Obj == R.Obj);
            if (T.Rel == RelOp::EQ)
              Taken = Eq;
            else if (T.Rel == RelOp::NE)
              Taken = !Eq;
            else {
              fail("ordered comparison of references");
              return false;
            }
            B = Taken ? T.Then : T.Else;
            goto nextBlock;
          }
          RV = R.I;
        }
        if (L.isRef() || L.isNull()) {
          // Comparing a reference/null against an int constant: only ==/!=
          // against semantics of 'false' make no sense; treat as error.
          fail("comparison of reference with integer");
          return false;
        }
        LV = L.I;
        switch (T.Rel) {
        case RelOp::EQ:
          Taken = LV == RV;
          break;
        case RelOp::NE:
          Taken = LV != RV;
          break;
        case RelOp::LT:
          Taken = LV < RV;
          break;
        case RelOp::LE:
          Taken = LV <= RV;
          break;
        case RelOp::GT:
          Taken = LV > RV;
          break;
        case RelOp::GE:
          Taken = LV >= RV;
          break;
        }
      }
      B = Taken ? T.Then : T.Else;
      break;
    }
    }
  nextBlock:;
  }
}

bool Interpreter::activityReachableFromStatic(ClassId ActivityBase) const {
  return !reachableActivities(ActivityBase).empty();
}

std::vector<std::pair<GlobalId, AllocSiteId>>
Interpreter::reachableActivities(ClassId ActivityBase) const {
  std::vector<std::pair<GlobalId, AllocSiteId>> Out;
  for (GlobalId G = 0; G < Globals.size(); ++G) {
    if (!Globals[G].isRef())
      continue;
    // BFS over the heap from this global.
    std::vector<bool> Seen(Heap.size(), false);
    std::deque<uint32_t> Work;
    Work.push_back(Globals[G].Obj);
    Seen[Globals[G].Obj] = true;
    while (!Work.empty()) {
      uint32_t O = Work.front();
      Work.pop_front();
      const HeapObject &Obj = Heap[O];
      if (!Obj.IsArray && P.isSubclassOf(Obj.Class, ActivityBase))
        Out.push_back({G, Obj.Site});
      auto Visit = [&](const Value &V) {
        if (V.isRef() && !Seen[V.Obj]) {
          Seen[V.Obj] = true;
          Work.push_back(V.Obj);
        }
      };
      for (const auto &[_, V] : Obj.Fields)
        Visit(V);
      for (const Value &V : Obj.Elems)
        Visit(V);
    }
  }
  return Out;
}
