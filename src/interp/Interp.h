//===- Interp.h - Concrete IR interpreter -----------------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concrete big-step interpreter for the IR. Its role in this project is
/// to provide ground truth: the refutation-soundness property tests run
/// programs under many nondeterministic schedules and check that no heap
/// fact the symbolic engine refuted is ever realized concretely
/// (Theorem 1 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_INTERP_INTERP_H
#define THRESHER_INTERP_INTERP_H

#include "ir/Program.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace thresher {

/// A runtime value: null, an integer, or a heap reference.
struct Value {
  enum class Kind : uint8_t { Null, Int, Ref };
  Kind K = Kind::Null;
  int64_t I = 0;    ///< Integer payload.
  uint32_t Obj = 0; ///< Heap index for Kind::Ref.

  static Value mkNull() { return {}; }
  static Value mkInt(int64_t V) {
    Value R;
    R.K = Kind::Int;
    R.I = V;
    return R;
  }
  static Value mkRef(uint32_t Obj) {
    Value R;
    R.K = Kind::Ref;
    R.Obj = Obj;
    return R;
  }
  bool isNull() const { return K == Kind::Null; }
  bool isRef() const { return K == Kind::Ref; }
};

/// A heap object or array.
struct HeapObject {
  ClassId Class = InvalidId;
  AllocSiteId Site = InvalidId;
  bool IsArray = false;
  std::map<FieldId, Value> Fields; ///< Absent fields read as null.
  std::vector<Value> Elems;        ///< Array payload.
};

/// A concrete heap write event: statement position plus the abstract
/// identities of base and target. Used by soundness property tests to
/// compare against symbolic refutations.
struct WriteEvent {
  ProgramPoint At;          ///< Position of the store instruction.
  bool IsStatic = false;    ///< True for global (static field) writes.
  GlobalId Global = InvalidId;
  AllocSiteId BaseSite = InvalidId;   ///< For instance/array writes.
  FieldId Field = InvalidId;          ///< @elems for array writes.
  AllocSiteId TargetSite = InvalidId; ///< InvalidId when storing null/int.
};

/// Interpreter outcome.
struct InterpResult {
  bool Completed = false;    ///< Ran to normal termination.
  std::string Error;         ///< Non-empty on runtime error.
  uint64_t Steps = 0;        ///< Instructions executed.
  std::vector<WriteEvent> Writes; ///< All heap write events, in order.
};

/// Interpreter configuration.
struct InterpOptions {
  uint64_t MaxSteps = 1'000'000; ///< Step budget; exceeding is an error.
  uint32_t MaxCallDepth = 2000;  ///< Frame budget (guards the C++ stack).
  /// Supplies values for Havoc instructions (harness nondeterminism).
  /// Defaults to always-zero if unset.
  std::function<int64_t()> HavocProvider;
  /// If true, record WriteEvents (costs memory on long runs).
  bool RecordWrites = true;
};

/// Concrete interpreter over a Program.
class Interpreter {
public:
  Interpreter(const Program &P, InterpOptions Opts = {});

  /// Runs the program's entry function. Can be called once per Interpreter.
  InterpResult run();

  /// Runs an arbitrary 0-argument function (e.g. for unit tests).
  InterpResult runFunction(FuncId F);

  /// After run(): true if any object whose class derives from
  /// \p ActivityBase is reachable from some static field via references.
  bool activityReachableFromStatic(ClassId ActivityBase) const;

  /// After run(): the set of (global, reachable activity allocation site)
  /// pairs, mirroring the leak client's alarm universe.
  std::vector<std::pair<GlobalId, AllocSiteId>>
  reachableActivities(ClassId ActivityBase) const;

  const std::vector<HeapObject> &heap() const { return Heap; }
  const std::vector<Value> &globals() const { return Globals; }

private:
  bool callFunction(FuncId F, const std::vector<Value> &Args, Value &Ret);
  bool execBlockChain(FuncId F, std::vector<Value> &Locals, Value &Ret);
  void fail(const std::string &Msg);

  const Program &P;
  InterpOptions Opts;
  std::vector<HeapObject> Heap;
  std::vector<Value> Globals;
  InterpResult Result;
  bool Failed = false;
  uint32_t CallDepth = 0;
};

} // namespace thresher

#endif // THRESHER_INTERP_INTERP_H
