//===- Lexer.h - Tokenizer for the mini-Java language -----------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the mini-Java ("MJ") surface language that substitutes for
/// the Java frontend of the original tool. See frontend/Parser.h for the
/// grammar.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_FRONTEND_LEXER_H
#define THRESHER_FRONTEND_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace thresher {
namespace mj {

/// Token kinds. Keywords get their own kinds; punctuation is one kind each.
enum class Tok : uint8_t {
  // Literals and names.
  Ident,
  IntLit,
  StrLit,
  // Keywords.
  KwClass,
  KwExtends,
  KwContainer,
  KwStatic,
  KwVar,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwNew,
  KwNull,
  KwThis,
  KwSuper,
  KwFun,
  // Punctuation.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  At,
  Assign, // =
  EqEq,
  NotEq,
  Lt,
  Le,
  Gt,
  Ge,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  AndAnd,
  OrOr,
  Eof,
  Error,
};

/// One token with its source position (1-based line).
struct Token {
  Tok Kind = Tok::Eof;
  std::string Text;  ///< Identifier spelling or string literal contents.
  int64_t IntVal = 0;
  uint32_t Line = 0;
};

/// Tokenizes \p Source. Lexical errors produce Tok::Error tokens whose Text
/// describes the problem; the stream always ends with Tok::Eof.
std::vector<Token> lex(std::string_view Source);

/// Returns a printable name for a token kind (for diagnostics).
const char *tokName(Tok K);

} // namespace mj
} // namespace thresher

#endif // THRESHER_FRONTEND_LEXER_H
