#include "frontend/Parser.h"

#include "frontend/Lexer.h"

#include <cassert>

using namespace thresher;
using namespace thresher::mj;

namespace {

class Parser {
public:
  explicit Parser(std::string_view Source) : Toks(lex(Source)) {}

  ParseResult run() {
    ParseResult R;
    while (!at(Tok::Eof) && Errors.size() < MaxErrors) {
      size_t Before = Pos;
      if (at(Tok::KwFun)) {
        R.TheUnit.Funs.push_back(parseFun());
      } else if (at(Tok::KwClass) || at(Tok::KwContainer)) {
        R.TheUnit.Classes.push_back(parseClass());
      } else {
        error("expected 'class', 'container', or 'fun'");
        advance();
      }
      if (Pos == Before)
        advance(); // Guarantee progress on malformed input.
    }
    R.Errors = std::move(Errors);
    return R;
  }

private:
  // --- Token helpers. ---
  const Token &cur() const { return Toks[Pos]; }
  bool at(Tok K) const { return cur().Kind == K; }
  void advance() {
    if (!at(Tok::Eof))
      ++Pos;
  }
  bool accept(Tok K) {
    if (!at(K))
      return false;
    advance();
    return true;
  }
  void expect(Tok K, const char *What) {
    if (at(K)) {
      advance();
      return;
    }
    error(std::string("expected ") + What + ", found " + tokName(cur().Kind));
  }
  std::string expectIdent(const char *What) {
    if (at(Tok::Ident)) {
      std::string S = cur().Text;
      advance();
      return S;
    }
    error(std::string("expected ") + What);
    return "<error>";
  }
  void error(const std::string &Msg) {
    Errors.push_back("line " + std::to_string(cur().Line) + ": " + Msg);
  }

  // --- Declarations. ---
  FunDecl parseFun() {
    FunDecl F;
    F.Line = cur().Line;
    expect(Tok::KwFun, "'fun'");
    F.Name = expectIdent("function name");
    expect(Tok::LParen, "'('");
    F.Params = parseParams();
    expect(Tok::RParen, "')'");
    F.Body = parseBlock();
    return F;
  }

  ClassDecl parseClass() {
    ClassDecl C;
    C.Line = cur().Line;
    C.Container = accept(Tok::KwContainer);
    expect(Tok::KwClass, "'class'");
    C.Name = expectIdent("class name");
    if (accept(Tok::KwExtends))
      C.Super = expectIdent("superclass name");
    expect(Tok::LBrace, "'{'");
    while (!at(Tok::RBrace) && !at(Tok::Eof) && Errors.size() < MaxErrors) {
      size_t Before = Pos;
      parseMember(C);
      if (Pos == Before)
        advance(); // Guarantee progress on malformed input.
    }
    expect(Tok::RBrace, "'}'");
    return C;
  }

  void parseMember(ClassDecl &C) {
    uint32_t Line = cur().Line;
    bool IsStatic = accept(Tok::KwStatic);
    if (accept(Tok::KwVar)) {
      FieldDecl F;
      F.Line = Line;
      F.IsStatic = IsStatic;
      F.Name = expectIdent("field name");
      if (accept(Tok::Assign)) {
        if (!IsStatic)
          error("only static fields may have initializers");
        F.Init = parseExpr();
      }
      expect(Tok::Semi, "';'");
      C.Fields.push_back(std::move(F));
      return;
    }
    MethodDecl M;
    M.Line = Line;
    M.IsStatic = IsStatic;
    M.Name = expectIdent("method name");
    M.IsCtor = (M.Name == C.Name);
    if (M.IsCtor && IsStatic)
      error("constructor may not be static");
    expect(Tok::LParen, "'('");
    M.Params = parseParams();
    expect(Tok::RParen, "')'");
    M.Body = parseBlock();
    C.Methods.push_back(std::move(M));
  }

  std::vector<std::string> parseParams() {
    std::vector<std::string> Params;
    if (at(Tok::RParen))
      return Params;
    Params.push_back(expectIdent("parameter name"));
    while (accept(Tok::Comma))
      Params.push_back(expectIdent("parameter name"));
    return Params;
  }

  // --- Statements. ---
  std::vector<StmtPtr> parseBlock() {
    std::vector<StmtPtr> Body;
    expect(Tok::LBrace, "'{'");
    while (!at(Tok::RBrace) && !at(Tok::Eof) && Errors.size() < MaxErrors) {
      size_t Before = Pos;
      Body.push_back(parseStmt());
      if (Pos == Before)
        advance(); // Guarantee progress on malformed input.
    }
    expect(Tok::RBrace, "'}'");
    return Body;
  }

  StmtPtr parseStmt() {
    auto S = std::make_unique<Stmt>();
    S->Line = cur().Line;
    if (accept(Tok::KwVar)) {
      S->K = Stmt::Kind::VarDecl;
      S->Str = expectIdent("variable name");
      if (accept(Tok::Assign))
        S->E1 = parseExpr();
      expect(Tok::Semi, "';'");
      return S;
    }
    if (at(Tok::KwIf))
      return parseIf();
    if (accept(Tok::KwWhile)) {
      S->K = Stmt::Kind::While;
      expect(Tok::LParen, "'('");
      S->C = parseCond();
      expect(Tok::RParen, "')'");
      S->Body = parseBlock();
      return S;
    }
    if (accept(Tok::KwReturn)) {
      S->K = Stmt::Kind::Return;
      if (!at(Tok::Semi))
        S->E1 = parseExpr();
      expect(Tok::Semi, "';'");
      return S;
    }
    if (at(Tok::KwSuper) && Toks[Pos + 1].Kind == Tok::LParen) {
      advance();
      S->K = Stmt::Kind::SuperCall;
      expect(Tok::LParen, "'('");
      S->Args = parseArgs();
      expect(Tok::RParen, "')'");
      expect(Tok::Semi, "';'");
      return S;
    }
    // Assignment or expression statement.
    ExprPtr E = parseExpr();
    if (accept(Tok::Assign)) {
      S->K = Stmt::Kind::Assign;
      S->E1 = std::move(E);
      S->E2 = parseExpr();
    } else {
      S->K = Stmt::Kind::ExprStmt;
      S->E1 = std::move(E);
    }
    expect(Tok::Semi, "';'");
    return S;
  }

  StmtPtr parseIf() {
    auto S = std::make_unique<Stmt>();
    S->Line = cur().Line;
    expect(Tok::KwIf, "'if'");
    S->K = Stmt::Kind::If;
    expect(Tok::LParen, "'('");
    S->C = parseCond();
    expect(Tok::RParen, "')'");
    S->Body = parseBlock();
    if (accept(Tok::KwElse)) {
      if (at(Tok::KwIf)) {
        S->ElseBody.push_back(parseIf());
      } else {
        S->ElseBody = parseBlock();
      }
    }
    return S;
  }

  // --- Conditions. ---
  CondPtr parseCond() {
    CondPtr L = parseAndCond();
    while (accept(Tok::OrOr)) {
      auto C = std::make_unique<Cond>();
      C->K = Cond::Kind::Or;
      C->Line = cur().Line;
      C->C1 = std::move(L);
      C->C2 = parseAndCond();
      L = std::move(C);
    }
    return L;
  }

  CondPtr parseAndCond() {
    CondPtr L = parseAtomCond();
    while (accept(Tok::AndAnd)) {
      auto C = std::make_unique<Cond>();
      C->K = Cond::Kind::And;
      C->Line = cur().Line;
      C->C1 = std::move(L);
      C->C2 = parseAtomCond();
      L = std::move(C);
    }
    return L;
  }

  CondPtr parseAtomCond() {
    auto C = std::make_unique<Cond>();
    C->Line = cur().Line;
    if (at(Tok::Star) &&
        (Toks[Pos + 1].Kind == Tok::RParen ||
         Toks[Pos + 1].Kind == Tok::AndAnd ||
         Toks[Pos + 1].Kind == Tok::OrOr)) {
      advance();
      C->K = Cond::Kind::Nondet;
      return C;
    }
    // Parenthesized sub-condition, e.g. (a && (b || c)). Ambiguous with a
    // parenthesized expression like (x + y) < z, so parse speculatively
    // and roll back if it does not read as a condition.
    if (at(Tok::LParen)) {
      size_t SavedPos = Pos;
      size_t SavedErrors = Errors.size();
      advance();
      CondPtr Inner = parseCond();
      bool Ok = Errors.size() == SavedErrors && at(Tok::RParen) &&
                (Toks[Pos + 1].Kind == Tok::AndAnd ||
                 Toks[Pos + 1].Kind == Tok::OrOr ||
                 Toks[Pos + 1].Kind == Tok::RParen);
      if (Ok) {
        advance(); // ')'
        return Inner;
      }
      Pos = SavedPos;
      Errors.resize(SavedErrors);
    }
    C->K = Cond::Kind::Cmp;
    C->L = parseExpr();
    switch (cur().Kind) {
    case Tok::EqEq:
      C->Rel = RelOp::EQ;
      break;
    case Tok::NotEq:
      C->Rel = RelOp::NE;
      break;
    case Tok::Lt:
      C->Rel = RelOp::LT;
      break;
    case Tok::Le:
      C->Rel = RelOp::LE;
      break;
    case Tok::Gt:
      C->Rel = RelOp::GT;
      break;
    case Tok::Ge:
      C->Rel = RelOp::GE;
      break;
    default:
      error("expected comparison operator in condition");
      return C;
    }
    advance();
    C->R = parseExpr();
    return C;
  }

  // --- Expressions. ---
  std::vector<ExprPtr> parseArgs() {
    std::vector<ExprPtr> Args;
    if (at(Tok::RParen))
      return Args;
    Args.push_back(parseExpr());
    while (accept(Tok::Comma))
      Args.push_back(parseExpr());
    return Args;
  }

  ExprPtr mkExpr(Expr::Kind K) {
    auto E = std::make_unique<Expr>();
    E->K = K;
    E->Line = cur().Line;
    return E;
  }

  ExprPtr parseExpr() {
    ExprPtr L = parseMul();
    while (at(Tok::Plus) || at(Tok::Minus)) {
      BinopKind BK = at(Tok::Plus) ? BinopKind::Add : BinopKind::Sub;
      advance();
      auto E = mkExpr(Expr::Kind::Binary);
      E->BK = BK;
      E->A = std::move(L);
      E->B = parseMul();
      L = std::move(E);
    }
    return L;
  }

  ExprPtr parseMul() {
    ExprPtr L = parseUnary();
    while (at(Tok::Star) || at(Tok::Slash) || at(Tok::Percent)) {
      BinopKind BK = at(Tok::Star)    ? BinopKind::Mul
                     : at(Tok::Slash) ? BinopKind::Div
                                      : BinopKind::Rem;
      advance();
      auto E = mkExpr(Expr::Kind::Binary);
      E->BK = BK;
      E->A = std::move(L);
      E->B = parseUnary();
      L = std::move(E);
    }
    return L;
  }

  ExprPtr parseUnary() {
    if (accept(Tok::Minus)) {
      auto E = mkExpr(Expr::Kind::Neg);
      E->A = parseUnary();
      return E;
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    while (true) {
      if (accept(Tok::Dot)) {
        std::string Member = expectIdent("member name");
        if (accept(Tok::LParen)) {
          auto Call = mkExpr(Expr::Kind::Call);
          Call->Str = std::move(Member);
          Call->A = std::move(E);
          Call->Args = parseArgs();
          expect(Tok::RParen, "')'");
          E = std::move(Call);
        } else {
          auto Get = mkExpr(Expr::Kind::FieldGet);
          Get->Str = std::move(Member);
          Get->A = std::move(E);
          E = std::move(Get);
        }
        continue;
      }
      if (accept(Tok::LBracket)) {
        auto Idx = mkExpr(Expr::Kind::Index);
        Idx->A = std::move(E);
        Idx->B = parseExpr();
        expect(Tok::RBracket, "']'");
        E = std::move(Idx);
        continue;
      }
      break;
    }
    return E;
  }

  ExprPtr parsePrimary() {
    if (at(Tok::IntLit)) {
      auto E = mkExpr(Expr::Kind::IntLit);
      E->IntVal = cur().IntVal;
      advance();
      return E;
    }
    if (at(Tok::StrLit)) {
      auto E = mkExpr(Expr::Kind::StrLit);
      E->Str = cur().Text;
      advance();
      if (accept(Tok::At))
        E->Label = expectIdent("allocation label after '@'");
      return E;
    }
    if (accept(Tok::KwNull))
      return mkExpr(Expr::Kind::Null);
    if (accept(Tok::KwThis))
      return mkExpr(Expr::Kind::This);
    if (accept(Tok::LParen)) {
      ExprPtr E = parseExpr();
      expect(Tok::RParen, "')'");
      return E;
    }
    if (accept(Tok::KwNew)) {
      std::string ClassName = expectIdent("class name after 'new'");
      ExprPtr E;
      if (accept(Tok::LBracket)) {
        E = mkExpr(Expr::Kind::NewArray);
        E->Str = std::move(ClassName);
        E->A = parseExpr();
        expect(Tok::RBracket, "']'");
      } else {
        expect(Tok::LParen, "'('");
        E = mkExpr(Expr::Kind::New);
        E->Str = std::move(ClassName);
        E->Args = parseArgs();
        expect(Tok::RParen, "')'");
      }
      if (accept(Tok::At))
        E->Label = expectIdent("allocation label after '@'");
      return E;
    }
    if (at(Tok::Ident)) {
      std::string Name = cur().Text;
      uint32_t Line = cur().Line;
      advance();
      if (accept(Tok::LParen)) {
        auto Call = mkExpr(Expr::Kind::Call);
        Call->Line = Line;
        Call->Str = std::move(Name);
        Call->Args = parseArgs();
        expect(Tok::RParen, "')'");
        return Call;
      }
      auto E = mkExpr(Expr::Kind::Name);
      E->Line = Line;
      E->Str = std::move(Name);
      return E;
    }
    error(std::string("expected expression, found ") + tokName(cur().Kind));
    advance();
    return mkExpr(Expr::Kind::Null);
  }

  static constexpr size_t MaxErrors = 25;
  std::vector<Token> Toks;
  size_t Pos = 0;
  std::vector<std::string> Errors;
};

} // namespace

ParseResult mj::parseUnit(std::string_view Source) {
  return Parser(Source).run();
}
