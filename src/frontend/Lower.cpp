//===- Lower.cpp - AST to IR lowering ------------------------------------===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Two-pass lowering: pass 1 declares classes, fields, globals, and function
// signatures; pass 2 lowers bodies through the IRBuilder. Field names live
// in a single namespace (field-name merging): the analyses are field-
// sensitive on FieldId, and the corpus we compile controls name reuse.
//
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"

#include "frontend/Parser.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"

#include <cassert>
#include <unordered_map>

using namespace thresher;
using namespace thresher::mj;

namespace {

class Lowerer {
public:
  explicit Lowerer(std::string_view EntryName) : EntryName(EntryName) {}

  CompileResult run(std::vector<Unit> Units) {
    declareClasses(Units);
    patchSupers(Units);
    if (!Errors.empty())
      return finish();
    declareFieldsAndSigs(Units);
    if (!Errors.empty())
      return finish();
    lowerBodies(Units);
    buildClinit(Units);
    buildEntry();
    return finish();
  }

private:
  friend class BodyLowerer;

  CompileResult finish() {
    CompileResult R;
    R.Errors = std::move(Errors);
    if (R.Errors.empty()) {
      R.Prog = PB.take();
      for (std::string &Problem : verifyProgram(*R.Prog))
        R.Errors.push_back("verifier: " + Problem);
      if (!R.Errors.empty())
        R.Prog.reset();
    }
    return R;
  }

  void error(uint32_t Line, const std::string &Msg) {
    Errors.push_back("line " + std::to_string(Line) + ": " + Msg);
  }

  // --- Pass 1a: class names. ---
  void declareClasses(const std::vector<Unit> &Units) {
    // The builder pre-creates the well-known root classes.
    ClassByName["Object"] = PB.prog().ObjectClass;
    ClassByName["String"] = PB.prog().StringClass;
    for (const Unit &U : Units) {
      for (const ClassDecl &C : U.Classes) {
        if (ClassByName.count(C.Name)) {
          error(C.Line, "duplicate class '" + C.Name + "'");
          continue;
        }
        uint8_t Flags = C.Container ? CF_Container : CF_None;
        ClassByName[C.Name] = PB.addClass(C.Name, InvalidId, Flags);
      }
    }
  }

  // --- Pass 1b: superclass links. ---
  void patchSupers(const std::vector<Unit> &Units) {
    Program &P = PB.prog();
    for (const Unit &U : Units) {
      for (const ClassDecl &C : U.Classes) {
        auto It = ClassByName.find(C.Name);
        if (It == ClassByName.end())
          continue;
        if (C.Super.empty())
          continue;
        auto SIt = ClassByName.find(C.Super);
        if (SIt == ClassByName.end()) {
          error(C.Line, "unknown superclass '" + C.Super + "'");
          continue;
        }
        P.Classes[It->second].Super = SIt->second;
      }
    }
    // Cycle check.
    for (const auto &[Name, C] : ClassByName) {
      ClassId Cur = C;
      size_t Steps = 0;
      while (Cur != InvalidId && Steps++ <= P.Classes.size())
        Cur = P.Classes[Cur].Super;
      if (Steps > P.Classes.size())
        Errors.push_back("inheritance cycle involving class '" + Name + "'");
    }
  }

  // --- Pass 1c: fields, globals, signatures. ---
  void declareFieldsAndSigs(const std::vector<Unit> &Units) {
    for (const Unit &U : Units) {
      for (const ClassDecl &C : U.Classes) {
        ClassId CId = ClassByName.at(C.Name);
        for (const FieldDecl &F : C.Fields) {
          if (F.IsStatic) {
            if (findGlobalOn(CId, F.Name) != InvalidId) {
              error(F.Line, "duplicate static field '" + F.Name + "'");
              continue;
            }
            GlobalByClassField[{CId, F.Name}] = PB.addGlobal(CId, F.Name);
          } else {
            auto It = FieldByName.find(F.Name);
            if (It == FieldByName.end())
              FieldByName[F.Name] = PB.addField(CId, F.Name);
            // Same-named fields in other classes share the FieldId.
          }
        }
        for (const MethodDecl &M : C.Methods) {
          uint32_t NumParams =
              static_cast<uint32_t>(M.Params.size()) + (M.IsStatic ? 0 : 1);
          bool RegisterVirtual = !M.IsCtor && !M.IsStatic;
          std::string IRName = M.IsCtor ? "<init>" : M.Name;
          FunctionBuilder FB = PB.beginFunc(IRName, NumParams, CId,
                                            M.IsStatic, RegisterVirtual);
          FuncId F = FB.funcId();
          if (M.IsCtor) {
            if (CtorOf.count(CId))
              error(M.Line, "duplicate constructor for '" + C.Name + "'");
            CtorOf[CId] = F;
          } else if (M.IsStatic) {
            if (StaticMethodByClass.count({CId, M.Name}))
              error(M.Line, "duplicate static method '" + M.Name + "'");
            StaticMethodByClass[{CId, M.Name}] = F;
          }
          // Instance methods are registered for dispatch by beginFunc.
        }
      }
      for (const FunDecl &F : U.Funs) {
        if (FreeFunByName.count(F.Name)) {
          error(F.Line, "duplicate function '" + F.Name + "'");
          continue;
        }
        FunctionBuilder FB =
            PB.beginFunc(F.Name, static_cast<uint32_t>(F.Params.size()));
        FreeFunByName[F.Name] = FB.funcId();
      }
    }
  }

  void lowerBodies(const std::vector<Unit> &Units);
  void buildClinit(const std::vector<Unit> &Units);
  void buildEntry();

  // --- Lookup helpers used during body lowering. ---
  ClassId findClassByName(const std::string &Name) const {
    auto It = ClassByName.find(Name);
    return It == ClassByName.end() ? InvalidId : It->second;
  }

  FieldId findFieldByName(const std::string &Name) const {
    auto It = FieldByName.find(Name);
    return It == FieldByName.end() ? InvalidId : It->second;
  }

  GlobalId findGlobalOn(ClassId C, const std::string &Name) const {
    auto It = GlobalByClassField.find({C, Name});
    return It == GlobalByClassField.end() ? InvalidId : It->second;
  }

  /// Searches \p C's superclass chain for a static field \p Name.
  GlobalId findGlobalOnChain(ClassId C, const std::string &Name) const {
    const Program &P = PB.prog();
    while (C != InvalidId) {
      GlobalId G = findGlobalOn(C, Name);
      if (G != InvalidId)
        return G;
      C = P.Classes[C].Super;
    }
    return InvalidId;
  }

  /// Searches \p C's superclass chain for a static method \p Name.
  FuncId findStaticMethodOnChain(ClassId C, const std::string &Name) const {
    const Program &P = PB.prog();
    while (C != InvalidId) {
      auto It = StaticMethodByClass.find({C, Name});
      if (It != StaticMethodByClass.end())
        return It->second;
      C = P.Classes[C].Super;
    }
    return InvalidId;
  }

  /// True if some class in \p C's chain declares instance method \p Name.
  bool hasInstanceMethod(ClassId C, const std::string &Name) const {
    const Program &P = PB.prog();
    NameId N = PB.prog().Names.lookup(Name);
    if (N == InvalidId)
      return false;
    while (C != InvalidId) {
      if (P.Classes[C].Methods.count(N))
        return true;
      C = P.Classes[C].Super;
    }
    return false;
  }

  struct PairHash {
    size_t operator()(const std::pair<ClassId, std::string> &P) const {
      return std::hash<std::string>()(P.second) * 31 + P.first;
    }
  };

  std::string EntryName;
  ProgramBuilder PB;
  std::vector<std::string> Errors;
  std::unordered_map<std::string, ClassId> ClassByName;
  std::unordered_map<std::string, FieldId> FieldByName;
  std::unordered_map<std::pair<ClassId, std::string>, GlobalId, PairHash>
      GlobalByClassField;
  std::unordered_map<std::pair<ClassId, std::string>, FuncId, PairHash>
      StaticMethodByClass;
  std::unordered_map<ClassId, FuncId> CtorOf;
  std::unordered_map<std::string, FuncId> FreeFunByName;
  FuncId ClinitFunc = InvalidId;
};

/// Lowers one function body.
class BodyLowerer {
public:
  BodyLowerer(Lowerer &L, FunctionBuilder FB, ClassId CurClass, bool IsStatic,
              bool IsCtor)
      : L(L), FB(std::move(FB)), CurClass(CurClass), IsStatic(IsStatic),
        IsCtor(IsCtor) {}

  void lowerParams(const std::vector<std::string> &Params) {
    pushScope();
    uint32_t Slot = 0;
    if (!IsStatic) {
      FB.setVarName(FB.param(0), "this");
      Slot = 1;
    }
    for (const std::string &Name : Params) {
      VarId V = FB.param(Slot++);
      FB.setVarName(V, Name);
      declareLocal(0, Name, V);
    }
  }

  void lowerBody(const std::vector<StmtPtr> &Body) {
    for (const StmtPtr &S : Body)
      lowerStmt(*S);
    if (!Terminated)
      FB.retVoid();
    FB.finish();
  }

  /// Lowers a single expression and stores it to global \p G (for static
  /// field initializers in __clinit__).
  void lowerGlobalInit(GlobalId G, const Expr &Init) {
    VarId V = lowerExpr(Init);
    FB.storeStatic(G, V);
  }

  /// Appends a direct call statement (used by synthetic functions).
  void emitCall(FuncId F) { FB.callDirect(NoVar, F, {}); }

  void seal() {
    if (!Terminated)
      FB.retVoid();
    FB.finish();
  }

private:
  void error(uint32_t Line, const std::string &Msg) { L.error(Line, Msg); }

  // --- Scopes. ---
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  void declareLocal(uint32_t Line, const std::string &Name, VarId V) {
    if (Scopes.back().count(Name))
      error(Line, "duplicate variable '" + Name + "' in scope");
    Scopes.back()[Name] = V;
  }
  VarId lookupLocal(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return F->second;
    }
    return NoVar;
  }

  /// Starts a fresh block after a terminator so trailing statements have
  /// somewhere (unreachable) to go.
  void startDeadBlock() {
    BlockId B = FB.newBlock();
    FB.setBlock(B);
    Terminated = false;
  }

  // --- Statements. ---
  void lowerStmt(const Stmt &S) {
    if (Terminated)
      startDeadBlock();
    switch (S.K) {
    case Stmt::Kind::VarDecl: {
      VarId V = FB.newVar(S.Str);
      if (S.E1) {
        VarId Init = lowerExpr(*S.E1);
        FB.assign(V, Init);
      }
      declareLocal(S.Line, S.Str, V);
      break;
    }
    case Stmt::Kind::Assign:
      lowerAssign(S);
      break;
    case Stmt::Kind::If:
      lowerIf(S);
      break;
    case Stmt::Kind::While:
      lowerWhile(S);
      break;
    case Stmt::Kind::Return:
      if (S.E1) {
        VarId V = lowerExpr(*S.E1);
        FB.ret(V);
      } else {
        FB.retVoid();
      }
      Terminated = true;
      break;
    case Stmt::Kind::ExprStmt:
      if (S.E1->K == Expr::Kind::Call)
        lowerCall(*S.E1, /*WantValue=*/false);
      else
        error(S.Line, "expression statement must be a call");
      break;
    case Stmt::Kind::SuperCall:
      lowerSuperCall(S);
      break;
    }
  }

  void lowerAssign(const Stmt &S) {
    const Expr &LHS = *S.E1;
    switch (LHS.K) {
    case Expr::Kind::Name: {
      // Local, implicit this-field, or static field on the current chain.
      VarId Local = lookupLocal(LHS.Str);
      if (Local != NoVar) {
        VarId V = lowerExpr(*S.E2);
        FB.assign(Local, V);
        return;
      }
      if (!IsStatic && CurClass != InvalidId) {
        FieldId F = L.findFieldByName(LHS.Str);
        if (F != InvalidId) {
          VarId V = lowerExpr(*S.E2);
          FB.store(FB.param(0), F, V);
          return;
        }
      }
      GlobalId G = CurClass != InvalidId
                       ? L.findGlobalOnChain(CurClass, LHS.Str)
                       : InvalidId;
      if (G != InvalidId) {
        VarId V = lowerExpr(*S.E2);
        FB.storeStatic(G, V);
        return;
      }
      error(S.Line, "unknown variable or field '" + LHS.Str + "'");
      return;
    }
    case Expr::Kind::FieldGet: {
      // Static C.f = v, or instance obj.f = v.
      if (LHS.A->K == Expr::Kind::Name && lookupLocal(LHS.A->Str) == NoVar) {
        ClassId C = L.findClassByName(LHS.A->Str);
        if (C != InvalidId) {
          GlobalId G = L.findGlobalOnChain(C, LHS.Str);
          if (G == InvalidId) {
            error(S.Line, "unknown static field '" + LHS.A->Str + "." +
                              LHS.Str + "'");
            return;
          }
          VarId V = lowerExpr(*S.E2);
          FB.storeStatic(G, V);
          return;
        }
      }
      FieldId F = L.findFieldByName(LHS.Str);
      if (F == InvalidId) {
        error(S.Line, "unknown field '" + LHS.Str + "'");
        return;
      }
      VarId Base = lowerExpr(*LHS.A);
      VarId V = lowerExpr(*S.E2);
      FB.store(Base, F, V);
      return;
    }
    case Expr::Kind::Index: {
      VarId Arr = lowerExpr(*LHS.A);
      VarId Idx = lowerExpr(*LHS.B);
      VarId V = lowerExpr(*S.E2);
      FB.arrayStore(Arr, Idx, V);
      return;
    }
    default:
      error(S.Line, "invalid assignment target");
      return;
    }
  }

  void lowerIf(const Stmt &S) {
    BlockId ThenB = FB.newBlock();
    BlockId Merge = FB.newBlock();
    BlockId ElseB = S.ElseBody.empty() ? Merge : FB.newBlock();
    lowerCond(*S.C, ThenB, ElseB);
    FB.setBlock(ThenB);
    Terminated = false;
    pushScope();
    for (const StmtPtr &St : S.Body)
      lowerStmt(*St);
    popScope();
    if (!Terminated)
      FB.jump(Merge);
    if (!S.ElseBody.empty()) {
      FB.setBlock(ElseB);
      Terminated = false;
      pushScope();
      for (const StmtPtr &St : S.ElseBody)
        lowerStmt(*St);
      popScope();
      if (!Terminated)
        FB.jump(Merge);
    }
    FB.setBlock(Merge);
    Terminated = false;
  }

  void lowerWhile(const Stmt &S) {
    BlockId Head = FB.newBlock();
    BlockId Body = FB.newBlock();
    BlockId Exit = FB.newBlock();
    FB.jump(Head);
    FB.setBlock(Head);
    Terminated = false;
    lowerCond(*S.C, Body, Exit);
    FB.setBlock(Body);
    Terminated = false;
    pushScope();
    for (const StmtPtr &St : S.Body)
      lowerStmt(*St);
    popScope();
    if (!Terminated)
      FB.jump(Head);
    FB.setBlock(Exit);
    Terminated = false;
  }

  // --- Conditions (short-circuit lowering). ---
  void lowerCond(const Cond &C, BlockId TrueB, BlockId FalseB) {
    switch (C.K) {
    case Cond::Kind::And: {
      BlockId Mid = FB.newBlock();
      lowerCond(*C.C1, Mid, FalseB);
      FB.setBlock(Mid);
      lowerCond(*C.C2, TrueB, FalseB);
      return;
    }
    case Cond::Kind::Or: {
      BlockId Mid = FB.newBlock();
      lowerCond(*C.C1, TrueB, Mid);
      FB.setBlock(Mid);
      lowerCond(*C.C2, TrueB, FalseB);
      return;
    }
    case Cond::Kind::Nondet: {
      VarId T = FB.newVar("$nd");
      FB.havoc(T);
      FB.branchConst(T, RelOp::EQ, 0, TrueB, FalseB);
      return;
    }
    case Cond::Kind::Cmp:
      break;
    }
    const Expr *LE = C.L.get();
    const Expr *RE = C.R.get();
    RelOp Rel = C.Rel;
    // Normalize literal/null on the right.
    if (LE->K == Expr::Kind::Null || LE->K == Expr::Kind::IntLit) {
      std::swap(LE, RE);
      Rel = swapRelOp(Rel);
    }
    if (RE->K == Expr::Kind::Null) {
      if (LE->K == Expr::Kind::Null) {
        // null == null: constant condition.
        FB.jump(Rel == RelOp::EQ ? TrueB : FalseB);
        return;
      }
      VarId V = lowerExpr(*LE);
      FB.branchNull(V, Rel, TrueB, FalseB);
      return;
    }
    if (RE->K == Expr::Kind::IntLit) {
      if (LE->K == Expr::Kind::IntLit) {
        FB.jump(evalConstCmp(LE->IntVal, Rel, RE->IntVal) ? TrueB : FalseB);
        return;
      }
      VarId V = lowerExpr(*LE);
      FB.branchConst(V, Rel, RE->IntVal, TrueB, FalseB);
      return;
    }
    VarId LV = lowerExpr(*LE);
    VarId RV = lowerExpr(*RE);
    FB.branch(LV, Rel, RV, TrueB, FalseB);
  }

  static bool evalConstCmp(int64_t A, RelOp R, int64_t B) {
    switch (R) {
    case RelOp::EQ:
      return A == B;
    case RelOp::NE:
      return A != B;
    case RelOp::LT:
      return A < B;
    case RelOp::LE:
      return A <= B;
    case RelOp::GT:
      return A > B;
    case RelOp::GE:
      return A >= B;
    }
    return false;
  }

  // --- Expressions. ---
  VarId lowerExpr(const Expr &E) {
    switch (E.K) {
    case Expr::Kind::IntLit: {
      VarId V = FB.newVar("");
      FB.constInt(V, E.IntVal);
      return V;
    }
    case Expr::Kind::StrLit: {
      VarId V = FB.newVar("");
      FB.constStr(V, E.Str, E.Label);
      return V;
    }
    case Expr::Kind::Null: {
      VarId V = FB.newVar("");
      FB.constNull(V);
      return V;
    }
    case Expr::Kind::This:
      if (IsStatic) {
        error(E.Line, "'this' used in a static context");
        return errorVar();
      }
      return FB.param(0);
    case Expr::Kind::Name:
      return lowerNameRead(E);
    case Expr::Kind::New:
      return lowerNew(E);
    case Expr::Kind::NewArray: {
      ClassId Elem = L.findClassByName(E.Str);
      if (Elem == InvalidId) {
        error(E.Line, "unknown class '" + E.Str + "' in array allocation");
        return errorVar();
      }
      VarId V = FB.newVar("");
      if (E.A->K == Expr::Kind::IntLit) {
        FB.newArrayConst(V, Elem, E.A->IntVal, E.Label);
      } else {
        VarId Len = lowerExpr(*E.A);
        FB.newArray(V, Elem, Len, E.Label);
      }
      return V;
    }
    case Expr::Kind::FieldGet:
      return lowerFieldGet(E);
    case Expr::Kind::Index: {
      VarId Arr = lowerExpr(*E.A);
      VarId Idx = lowerExpr(*E.B);
      VarId V = FB.newVar("");
      FB.arrayLoad(V, Arr, Idx);
      return V;
    }
    case Expr::Kind::Call:
      return lowerCall(E, /*WantValue=*/true);
    case Expr::Kind::Binary: {
      VarId A = lowerExpr(*E.A);
      VarId V = FB.newVar("");
      if (E.B->K == Expr::Kind::IntLit) {
        FB.binopConst(V, A, E.BK, E.B->IntVal);
      } else {
        VarId B = lowerExpr(*E.B);
        FB.binop(V, A, E.BK, B);
      }
      return V;
    }
    case Expr::Kind::Neg: {
      if (E.A->K == Expr::Kind::IntLit) {
        VarId V = FB.newVar("");
        FB.constInt(V, -E.A->IntVal);
        return V;
      }
      VarId A = lowerExpr(*E.A);
      VarId Zero = FB.newVar("");
      FB.constInt(Zero, 0);
      VarId V = FB.newVar("");
      FB.binop(V, Zero, BinopKind::Sub, A);
      return V;
    }
    }
    return errorVar();
  }

  VarId errorVar() {
    VarId V = FB.newVar("$err");
    FB.constNull(V);
    return V;
  }

  VarId lowerNameRead(const Expr &E) {
    VarId Local = lookupLocal(E.Str);
    if (Local != NoVar)
      return Local;
    if (!IsStatic && CurClass != InvalidId) {
      FieldId F = L.findFieldByName(E.Str);
      if (F != InvalidId) {
        VarId V = FB.newVar("");
        FB.load(V, FB.param(0), F);
        return V;
      }
    }
    GlobalId G = CurClass != InvalidId
                     ? L.findGlobalOnChain(CurClass, E.Str)
                     : InvalidId;
    if (G != InvalidId) {
      VarId V = FB.newVar("");
      FB.loadStatic(V, G);
      return V;
    }
    error(E.Line, "unknown variable '" + E.Str + "'");
    return errorVar();
  }

  VarId lowerFieldGet(const Expr &E) {
    // C.f static access?
    if (E.A->K == Expr::Kind::Name && lookupLocal(E.A->Str) == NoVar) {
      ClassId C = L.findClassByName(E.A->Str);
      if (C != InvalidId) {
        GlobalId G = L.findGlobalOnChain(C, E.Str);
        if (G == InvalidId) {
          error(E.Line,
                "unknown static field '" + E.A->Str + "." + E.Str + "'");
          return errorVar();
        }
        VarId V = FB.newVar("");
        FB.loadStatic(V, G);
        return V;
      }
    }
    VarId Base = lowerExpr(*E.A);
    if (E.Str == "length") {
      VarId V = FB.newVar("");
      FB.arrayLen(V, Base);
      return V;
    }
    FieldId F = L.findFieldByName(E.Str);
    if (F == InvalidId) {
      error(E.Line, "unknown field '" + E.Str + "'");
      return errorVar();
    }
    VarId V = FB.newVar("");
    FB.load(V, Base, F);
    return V;
  }

  VarId lowerNew(const Expr &E) {
    ClassId C = L.findClassByName(E.Str);
    if (C == InvalidId) {
      error(E.Line, "unknown class '" + E.Str + "'");
      return errorVar();
    }
    VarId V = FB.newVar("");
    FB.newObj(V, C, E.Label);
    auto CtorIt = L.CtorOf.find(C);
    if (CtorIt != L.CtorOf.end()) {
      std::vector<VarId> Args = {V};
      for (const ExprPtr &A : E.Args)
        Args.push_back(lowerExpr(*A));
      const Program &P = L.PB.prog();
      if (Args.size() != P.Funcs[CtorIt->second].NumParams) {
        error(E.Line, "constructor arity mismatch for '" + E.Str + "'");
        return V;
      }
      FB.callDirect(NoVar, CtorIt->second, std::move(Args));
    } else if (!E.Args.empty()) {
      error(E.Line, "class '" + E.Str + "' has no constructor");
    }
    return V;
  }

  VarId lowerCall(const Expr &E, bool WantValue) {
    std::vector<VarId> Args;
    VarId Dst = WantValue ? FB.newVar("") : NoVar;

    auto LowerArgs = [&]() {
      for (const ExprPtr &A : E.Args)
        Args.push_back(lowerExpr(*A));
    };

    auto Direct = [&](FuncId F) -> VarId {
      const Program &P = L.PB.prog();
      if (Args.size() != P.Funcs[F].NumParams) {
        error(E.Line, "arity mismatch calling '" + E.Str + "'");
        return WantValue ? errorVar() : NoVar;
      }
      FB.callDirect(Dst, F, std::move(Args));
      if (WantValue)
        return Dst;
      return NoVar;
    };

    if (!E.A) {
      // Bare call m(args): static method on chain, free fun, or this.m.
      if (CurClass != InvalidId) {
        FuncId F = L.findStaticMethodOnChain(CurClass, E.Str);
        if (F != InvalidId) {
          LowerArgs();
          return Direct(F);
        }
      }
      auto FIt = L.FreeFunByName.find(E.Str);
      if (FIt != L.FreeFunByName.end()) {
        LowerArgs();
        return Direct(FIt->second);
      }
      if (!IsStatic && CurClass != InvalidId &&
          L.hasInstanceMethod(CurClass, E.Str)) {
        Args.push_back(FB.param(0));
        LowerArgs();
        FB.callVirtual(Dst, E.Str, std::move(Args));
        return WantValue ? Dst : NoVar;
      }
      error(E.Line, "unknown function '" + E.Str + "'");
      return WantValue ? errorVar() : NoVar;
    }

    // C.m(args) static call?
    if (E.A->K == Expr::Kind::Name && lookupLocal(E.A->Str) == NoVar) {
      ClassId C = L.findClassByName(E.A->Str);
      if (C != InvalidId) {
        FuncId F = L.findStaticMethodOnChain(C, E.Str);
        if (F == InvalidId) {
          error(E.Line,
                "unknown static method '" + E.A->Str + "." + E.Str + "'");
          return WantValue ? errorVar() : NoVar;
        }
        LowerArgs();
        return Direct(F);
      }
    }

    // Virtual call.
    VarId Recv = lowerExpr(*E.A);
    Args.push_back(Recv);
    LowerArgs();
    FB.callVirtual(Dst, E.Str, std::move(Args));
    return WantValue ? Dst : NoVar;
  }

  void lowerSuperCall(const Stmt &S) {
    if (!IsCtor || CurClass == InvalidId) {
      error(S.Line, "'super(...)' is only allowed in constructors");
      return;
    }
    const Program &P = L.PB.prog();
    ClassId Super = P.Classes[CurClass].Super;
    if (Super == InvalidId) {
      error(S.Line, "class has no superclass");
      return;
    }
    auto It = L.CtorOf.find(Super);
    if (It == L.CtorOf.end()) {
      error(S.Line, "superclass has no constructor");
      return;
    }
    std::vector<VarId> Args = {FB.param(0)};
    for (const ExprPtr &A : S.Args)
      Args.push_back(lowerExpr(*A));
    if (Args.size() != P.Funcs[It->second].NumParams) {
      error(S.Line, "super constructor arity mismatch");
      return;
    }
    FB.callDirect(NoVar, It->second, std::move(Args));
  }

  Lowerer &L;
  FunctionBuilder FB;
  ClassId CurClass;
  bool IsStatic;
  bool IsCtor;
  std::vector<std::unordered_map<std::string, VarId>> Scopes;
  bool Terminated = false;
};

void Lowerer::lowerBodies(const std::vector<Unit> &Units) {
  for (const Unit &U : Units) {
    for (const ClassDecl &C : U.Classes) {
      ClassId CId = ClassByName.at(C.Name);
      for (const MethodDecl &M : C.Methods) {
        FuncId F;
        if (M.IsCtor) {
          F = CtorOf.at(CId);
        } else if (M.IsStatic) {
          F = StaticMethodByClass.at({CId, M.Name});
        } else {
          F = PB.prog().Classes[CId].Methods.at(PB.prog().Names.lookup(M.Name));
        }
        BodyLowerer BL(*this, PB.resumeFunc(F), CId, M.IsStatic, M.IsCtor);
        BL.lowerParams(M.Params);
        BL.lowerBody(M.Body);
      }
    }
    for (const FunDecl &FD : U.Funs) {
      FuncId F = FreeFunByName.at(FD.Name);
      BodyLowerer BL(*this, PB.resumeFunc(F), InvalidId, /*IsStatic=*/true,
                     /*IsCtor=*/false);
      BL.lowerParams(FD.Params);
      BL.lowerBody(FD.Body);
    }
  }
}

void Lowerer::buildClinit(const std::vector<Unit> &Units) {
  FunctionBuilder FB = PB.beginFunc("__clinit__", 0);
  ClinitFunc = FB.funcId();
  for (const Unit &U : Units) {
    for (const ClassDecl &C : U.Classes) {
      ClassId CId = ClassByName.at(C.Name);
      for (const FieldDecl &FD : C.Fields) {
        if (!FD.IsStatic || !FD.Init)
          continue;
        GlobalId G = findGlobalOn(CId, FD.Name);
        if (G == InvalidId)
          continue;
        // Each initializer gets its own lowering context, but all of them
        // append to the same entry block of __clinit__ in order.
        BodyLowerer BL(*this, PB.resumeFunc(ClinitFunc), CId,
                       /*IsStatic=*/true, /*IsCtor=*/false);
        BL.lowerParams({});
        BL.lowerGlobalInit(G, *FD.Init);
      }
    }
  }
  FunctionBuilder Sealer = PB.resumeFunc(ClinitFunc);
  Sealer.retVoid();
  Sealer.finish();
}

void Lowerer::buildEntry() {
  // Find the requested entry: a free fun, else a unique 0-arg static method.
  FuncId Entry = InvalidId;
  auto It = FreeFunByName.find(EntryName);
  if (It != FreeFunByName.end()) {
    Entry = It->second;
  } else {
    for (const auto &[Key, F] : StaticMethodByClass) {
      if (Key.second == EntryName && PB.prog().Funcs[F].NumParams == 0) {
        if (Entry != InvalidId) {
          Errors.push_back("multiple candidate entry methods named '" +
                           EntryName + "'");
          return;
        }
        Entry = F;
      }
    }
  }
  if (Entry == InvalidId)
    return; // No entry requested/found; caller may set one explicitly.
  if (PB.prog().Funcs[Entry].NumParams != 0) {
    Errors.push_back("entry function '" + EntryName +
                     "' must take no parameters");
    return;
  }
  FunctionBuilder FB = PB.beginFunc("__entry__", 0);
  FB.callDirect(NoVar, ClinitFunc, {});
  FB.callDirect(NoVar, Entry, {});
  FB.retVoid();
  FuncId EntryWrapper = FB.finish();
  PB.setEntry(EntryWrapper);
}

} // namespace

CompileResult thresher::compileMJ(const std::vector<std::string> &Sources,
                                  std::string_view EntryName) {
  std::vector<Unit> Units;
  std::vector<std::string> ParseErrors;
  for (size_t I = 0; I < Sources.size(); ++I) {
    ParseResult R = parseUnit(Sources[I]);
    for (std::string &E : R.Errors)
      ParseErrors.push_back("source " + std::to_string(I) + ", " + E);
    Units.push_back(std::move(R.TheUnit));
  }
  if (!ParseErrors.empty()) {
    CompileResult CR;
    CR.Errors = std::move(ParseErrors);
    return CR;
  }
  return Lowerer(EntryName).run(std::move(Units));
}

CompileResult thresher::compileMJ(std::string_view Source,
                                  std::string_view EntryName) {
  return compileMJ(std::vector<std::string>{std::string(Source)}, EntryName);
}
