//===- Frontend.h - Mini-Java to IR compiler --------------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Top-level frontend entry point: parses one or more mini-Java sources and
/// lowers them into a single Program. Static field initializers are
/// collected into a synthetic `__clinit__` function; if a free function (or
/// unique static method) named \p EntryName exists, a synthetic `__entry__`
/// that runs `__clinit__` followed by the entry is installed as the
/// program's entry function.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_FRONTEND_FRONTEND_H
#define THRESHER_FRONTEND_FRONTEND_H

#include "ir/Program.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace thresher {

/// Result of compiling mini-Java sources.
struct CompileResult {
  std::unique_ptr<Program> Prog;
  std::vector<std::string> Errors;
  bool ok() const { return Errors.empty() && Prog != nullptr; }
};

/// Compiles the given sources (in order; later sources may reference classes
/// from earlier ones) into one Program.
CompileResult compileMJ(const std::vector<std::string> &Sources,
                        std::string_view EntryName = "main");

/// Convenience overload for a single source text.
CompileResult compileMJ(std::string_view Source,
                        std::string_view EntryName = "main");

} // namespace thresher

#endif // THRESHER_FRONTEND_FRONTEND_H
