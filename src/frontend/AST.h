//===- AST.h - Abstract syntax for the mini-Java language -------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions for mini-Java. Names are resolved during lowering
/// (frontend/Lower.cpp), not during parsing, because resolution needs the
/// full class table.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_FRONTEND_AST_H
#define THRESHER_FRONTEND_AST_H

#include "ir/Instruction.h"

#include <memory>
#include <string>
#include <vector>

namespace thresher {
namespace mj {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expressions. Kind selects the meaningful fields.
struct Expr {
  enum class Kind {
    IntLit,    ///< IntVal
    StrLit,    ///< Str
    Null,      ///<
    This,      ///<
    Name,      ///< Str (unresolved: local / implicit this-field / static)
    New,       ///< Str = class name, Args = ctor args, Label = @label
    NewArray,  ///< Str = element class name, A = length, Label
    FieldGet,  ///< A . Str  (also C.f static get and arr.length)
    Index,     ///< A [ B ]
    Call,      ///< A . Str (Args) where A may be null for bare calls
    Binary,    ///< A BK B
    Neg,       ///< - A
  };
  Kind K;
  uint32_t Line = 0;
  int64_t IntVal = 0;
  std::string Str;   ///< Name / literal text / class name.
  std::string Label; ///< Allocation-site label for New/NewArray/StrLit.
  BinopKind BK = BinopKind::Add;
  ExprPtr A, B;
  std::vector<ExprPtr> Args;
};

struct Cond;
using CondPtr = std::unique_ptr<Cond>;

/// Conditions of if/while. Separate from Expr: the IR branches on
/// relational comparisons, and && / || lower to short-circuit CFG.
struct Cond {
  enum class Kind {
    Cmp,    ///< L Rel R (R may be the Null expr)
    And,    ///< C1 && C2
    Or,     ///< C1 || C2
    Nondet, ///< '*': nondeterministic choice
  };
  Kind K;
  uint32_t Line = 0;
  RelOp Rel = RelOp::EQ;
  ExprPtr L, R;
  CondPtr C1, C2;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Statements.
struct Stmt {
  enum class Kind {
    VarDecl,   ///< var Str [= E1];
    Assign,    ///< E1 = E2; (E1 is a Name/FieldGet/Index lvalue)
    If,        ///< if (C) Body else ElseBody
    While,     ///< while (C) Body
    Return,    ///< return [E1];
    ExprStmt,  ///< E1; (must be a call)
    SuperCall, ///< super(Args);
  };
  Kind K;
  uint32_t Line = 0;
  std::string Str;
  ExprPtr E1, E2;
  CondPtr C;
  std::vector<StmtPtr> Body, ElseBody;
  std::vector<ExprPtr> Args;
};

/// A method (or constructor, when Name equals the class name).
struct MethodDecl {
  std::string Name;
  bool IsStatic = false;
  bool IsCtor = false;
  std::vector<std::string> Params;
  std::vector<StmtPtr> Body;
  uint32_t Line = 0;
};

/// An instance or static field; static fields may carry an initializer,
/// collected into the synthetic __clinit__ function.
struct FieldDecl {
  std::string Name;
  bool IsStatic = false;
  ExprPtr Init;
  uint32_t Line = 0;
};

struct ClassDecl {
  std::string Name;
  std::string Super; ///< Empty means Object.
  bool Container = false;
  std::vector<FieldDecl> Fields;
  std::vector<MethodDecl> Methods;
  uint32_t Line = 0;
};

/// A free (top-level) function.
struct FunDecl {
  std::string Name;
  std::vector<std::string> Params;
  std::vector<StmtPtr> Body;
  uint32_t Line = 0;
};

/// One compilation unit (several may be lowered together).
struct Unit {
  std::vector<ClassDecl> Classes;
  std::vector<FunDecl> Funs;
};

} // namespace mj
} // namespace thresher

#endif // THRESHER_FRONTEND_AST_H
