#include "frontend/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace thresher;
using namespace thresher::mj;

namespace {

const std::unordered_map<std::string_view, Tok> Keywords = {
    {"class", Tok::KwClass},         {"extends", Tok::KwExtends},
    {"container", Tok::KwContainer}, {"static", Tok::KwStatic},
    {"var", Tok::KwVar},             {"if", Tok::KwIf},
    {"else", Tok::KwElse},           {"while", Tok::KwWhile},
    {"return", Tok::KwReturn},       {"new", Tok::KwNew},
    {"null", Tok::KwNull},           {"this", Tok::KwThis},
    {"super", Tok::KwSuper},         {"fun", Tok::KwFun},
};

} // namespace

std::vector<Token> mj::lex(std::string_view Src) {
  std::vector<Token> Out;
  size_t I = 0, N = Src.size();
  uint32_t Line = 1;

  auto Push = [&](Tok K, std::string Text = "", int64_t V = 0) {
    Token T;
    T.Kind = K;
    T.Text = std::move(Text);
    T.IntVal = V;
    T.Line = Line;
    Out.push_back(std::move(T));
  };

  while (I < N) {
    char C = Src[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Comments: // to end of line, /* ... */.
    if (C == '/' && I + 1 < N && Src[I + 1] == '/') {
      while (I < N && Src[I] != '\n')
        ++I;
      continue;
    }
    if (C == '/' && I + 1 < N && Src[I + 1] == '*') {
      I += 2;
      while (I + 1 < N && !(Src[I] == '*' && Src[I + 1] == '/')) {
        if (Src[I] == '\n')
          ++Line;
        ++I;
      }
      if (I + 1 >= N) {
        Push(Tok::Error, "unterminated block comment");
        break;
      }
      I += 2;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Src[I])) ||
                       Src[I] == '_'))
        ++I;
      std::string_view Word = Src.substr(Start, I - Start);
      auto It = Keywords.find(Word);
      if (It != Keywords.end())
        Push(It->second, std::string(Word));
      else
        Push(Tok::Ident, std::string(Word));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = I;
      while (I < N && std::isdigit(static_cast<unsigned char>(Src[I])))
        ++I;
      int64_t V = 0;
      for (size_t K = Start; K < I; ++K)
        V = V * 10 + (Src[K] - '0');
      Push(Tok::IntLit, std::string(Src.substr(Start, I - Start)), V);
      continue;
    }
    if (C == '"') {
      ++I;
      std::string Text;
      bool Closed = false;
      while (I < N) {
        if (Src[I] == '"') {
          Closed = true;
          ++I;
          break;
        }
        if (Src[I] == '\n')
          ++Line;
        if (Src[I] == '\\' && I + 1 < N) {
          ++I;
          switch (Src[I]) {
          case 'n':
            Text.push_back('\n');
            break;
          case 't':
            Text.push_back('\t');
            break;
          default:
            Text.push_back(Src[I]);
            break;
          }
          ++I;
          continue;
        }
        Text.push_back(Src[I]);
        ++I;
      }
      if (!Closed) {
        Push(Tok::Error, "unterminated string literal");
        break;
      }
      Push(Tok::StrLit, std::move(Text));
      continue;
    }
    auto Two = [&](char Next, Tok IfTwo, Tok IfOne) {
      if (I + 1 < N && Src[I + 1] == Next) {
        Push(IfTwo);
        I += 2;
      } else {
        Push(IfOne);
        ++I;
      }
    };
    switch (C) {
    case '{':
      Push(Tok::LBrace);
      ++I;
      break;
    case '}':
      Push(Tok::RBrace);
      ++I;
      break;
    case '(':
      Push(Tok::LParen);
      ++I;
      break;
    case ')':
      Push(Tok::RParen);
      ++I;
      break;
    case '[':
      Push(Tok::LBracket);
      ++I;
      break;
    case ']':
      Push(Tok::RBracket);
      ++I;
      break;
    case ';':
      Push(Tok::Semi);
      ++I;
      break;
    case ',':
      Push(Tok::Comma);
      ++I;
      break;
    case '.':
      Push(Tok::Dot);
      ++I;
      break;
    case '@':
      Push(Tok::At);
      ++I;
      break;
    case '=':
      Two('=', Tok::EqEq, Tok::Assign);
      break;
    case '!':
      if (I + 1 < N && Src[I + 1] == '=') {
        Push(Tok::NotEq);
        I += 2;
      } else {
        Push(Tok::Error, "unexpected '!'");
        ++I;
      }
      break;
    case '<':
      Two('=', Tok::Le, Tok::Lt);
      break;
    case '>':
      Two('=', Tok::Ge, Tok::Gt);
      break;
    case '+':
      Push(Tok::Plus);
      ++I;
      break;
    case '-':
      Push(Tok::Minus);
      ++I;
      break;
    case '*':
      Push(Tok::Star);
      ++I;
      break;
    case '/':
      Push(Tok::Slash);
      ++I;
      break;
    case '%':
      Push(Tok::Percent);
      ++I;
      break;
    case '&':
      if (I + 1 < N && Src[I + 1] == '&') {
        Push(Tok::AndAnd);
        I += 2;
      } else {
        Push(Tok::Error, "unexpected '&'");
        ++I;
      }
      break;
    case '|':
      if (I + 1 < N && Src[I + 1] == '|') {
        Push(Tok::OrOr);
        I += 2;
      } else {
        Push(Tok::Error, "unexpected '|'");
        ++I;
      }
      break;
    default:
      Push(Tok::Error, std::string("unexpected character '") + C + "'");
      ++I;
      break;
    }
  }
  Push(Tok::Eof);
  return Out;
}

const char *mj::tokName(Tok K) {
  switch (K) {
  case Tok::Ident:
    return "identifier";
  case Tok::IntLit:
    return "integer literal";
  case Tok::StrLit:
    return "string literal";
  case Tok::KwClass:
    return "'class'";
  case Tok::KwExtends:
    return "'extends'";
  case Tok::KwContainer:
    return "'container'";
  case Tok::KwStatic:
    return "'static'";
  case Tok::KwVar:
    return "'var'";
  case Tok::KwIf:
    return "'if'";
  case Tok::KwElse:
    return "'else'";
  case Tok::KwWhile:
    return "'while'";
  case Tok::KwReturn:
    return "'return'";
  case Tok::KwNew:
    return "'new'";
  case Tok::KwNull:
    return "'null'";
  case Tok::KwThis:
    return "'this'";
  case Tok::KwSuper:
    return "'super'";
  case Tok::KwFun:
    return "'fun'";
  case Tok::LBrace:
    return "'{'";
  case Tok::RBrace:
    return "'}'";
  case Tok::LParen:
    return "'('";
  case Tok::RParen:
    return "')'";
  case Tok::LBracket:
    return "'['";
  case Tok::RBracket:
    return "']'";
  case Tok::Semi:
    return "';'";
  case Tok::Comma:
    return "','";
  case Tok::Dot:
    return "'.'";
  case Tok::At:
    return "'@'";
  case Tok::Assign:
    return "'='";
  case Tok::EqEq:
    return "'=='";
  case Tok::NotEq:
    return "'!='";
  case Tok::Lt:
    return "'<'";
  case Tok::Le:
    return "'<='";
  case Tok::Gt:
    return "'>'";
  case Tok::Ge:
    return "'>='";
  case Tok::Plus:
    return "'+'";
  case Tok::Minus:
    return "'-'";
  case Tok::Star:
    return "'*'";
  case Tok::Slash:
    return "'/'";
  case Tok::Percent:
    return "'%'";
  case Tok::AndAnd:
    return "'&&'";
  case Tok::OrOr:
    return "'||'";
  case Tok::Eof:
    return "end of input";
  case Tok::Error:
    return "lexical error";
  }
  return "?";
}
