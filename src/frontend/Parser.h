//===- Parser.h - Recursive-descent parser for mini-Java --------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing the AST of frontend/AST.h.
///
/// Grammar (EBNF):
/// \code
///   unit      := (classDecl | funDecl)*
///   funDecl   := "fun" ID "(" params ")" block
///   classDecl := ["container"] "class" ID ["extends" ID] "{" member* "}"
///   member    := "static" "var" ID ["=" expr] ";"
///              | "var" ID ";"
///              | ["static"] ID "(" params ")" block   // ctor if ID == class
///   params    := [ID ("," ID)*]
///   block     := "{" stmt* "}"
///   stmt      := "var" ID ["=" expr] ";"
///              | "if" "(" cond ")" block ["else" (block | ifStmt)]
///              | "while" "(" cond ")" block
///              | "return" [expr] ";"
///              | "super" "(" args ")" ";"
///              | expr ["=" expr] ";"
///   cond      := andCond ("||" andCond)*
///   andCond   := atomCond ("&&" atomCond)*
///   atomCond  := "*" | "(" cond ")" | expr relop expr
///   relop     := "==" | "!=" | "<" | "<=" | ">" | ">="
///   expr      := mulExpr (("+"|"-") mulExpr)*
///   mulExpr   := unary (("*"|"/"|"%") unary)*
///   unary     := "-" unary | postfix
///   postfix   := primary ("." ID ["(" args ")"] | "[" expr "]")*
///   primary   := INT | STRING ["@" ID] | "null" | "this" | "(" expr ")"
///              | ID ["(" args ")"]
///              | "new" ID ("(" args ")" | "[" expr "]") ["@" ID]
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_FRONTEND_PARSER_H
#define THRESHER_FRONTEND_PARSER_H

#include "frontend/AST.h"

#include <string>
#include <string_view>
#include <vector>

namespace thresher {
namespace mj {

/// Parse result: the unit plus any syntax errors ("line N: message").
struct ParseResult {
  Unit TheUnit;
  std::vector<std::string> Errors;
  bool ok() const { return Errors.empty(); }
};

/// Parses one source text.
ParseResult parseUnit(std::string_view Source);

} // namespace mj
} // namespace thresher

#endif // THRESHER_FRONTEND_PARSER_H
