//===- Pure.h - Pure (non-heap) constraint solving --------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision procedure for the pure constraints of witness-refutation
/// queries. The original tool hands these to Z3; the fragment Thresher
/// actually generates — comparisons between integer-valued symbolic
/// variables and constants arising from guards, constant assignments, and
/// var-plus-constant arithmetic, with the path-constraint set capped at two
/// (Sec. 4) — is difference logic plus disequalities, for which the
/// difference-bound closure below is sound and complete over the integers.
///
/// Constraints are normalized to primitives:
///   LE:  X - Y <= C      NE:  X - Y != C
/// where X/Y are symbolic variable ids or the distinguished Zero.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SOLVER_PURE_H
#define THRESHER_SOLVER_PURE_H

#include "ir/Instruction.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace thresher {

/// A pure term: a symbolic variable plus offset, or a plain constant.
struct PureTerm {
  bool IsVar = false;
  uint32_t Var = 0; ///< Symbolic variable id (engine-assigned).
  int64_t C = 0;    ///< Offset (IsVar) or constant value.

  static PureTerm mkVar(uint32_t V, int64_t Off = 0) {
    PureTerm T;
    T.IsVar = true;
    T.Var = V;
    T.C = Off;
    return T;
  }
  static PureTerm mkConst(int64_t V) {
    PureTerm T;
    T.C = V;
    return T;
  }
};

/// A primitive constraint. Var id ZeroVar denotes the constant 0.
struct PurePrim {
  enum class Kind : uint8_t { LE, NE };
  static constexpr uint32_t ZeroVar = ~0u;

  Kind K = Kind::LE;
  uint32_t X = ZeroVar;
  uint32_t Y = ZeroVar;
  int64_t C = 0;
  bool IsPath = false; ///< Came from a branch guard (subject to the cap).
  /// Groups the primitives of one source-level constraint (an equality
  /// expands to two LE primitives); the path cap counts groups.
  uint32_t PathSeq = 0;

  /// Structural core, ignoring provenance. Two prims with the same shape
  /// are logically interchangeable but may belong to different path-cap
  /// groups; dedup must merge their provenance, not drop one.
  bool sameShape(const PurePrim &O) const {
    return K == O.K && X == O.X && Y == O.Y && C == O.C;
  }

  bool operator==(const PurePrim &O) const {
    return sameShape(O) && IsPath == O.IsPath && PathSeq == O.PathSeq;
  }
};

/// A conjunction of primitive pure constraints with a decision procedure.
class PureConstraints {
public:
  /// Adds L Rel R. \p IsPath marks branch-guard provenance. Returns false
  /// if the constraint is trivially contradictory on its own (e.g. 1 < 0).
  bool addCmp(PureTerm L, RelOp Rel, PureTerm R, bool IsPath);

  /// Whole-set satisfiability (integer difference-bound closure plus
  /// disequality checks).
  bool isSatisfiable() const;

  /// True if this conjunction semantically entails every constraint in
  /// \p Other (so Other is weaker-or-equal).
  bool entails(const PureConstraints &Other) const;

  /// Substitutes variable \p From by \p To everywhere (unification).
  void substitute(uint32_t From, uint32_t To);

  /// Removes all constraints mentioning any variable accepted by \p Drop
  /// (loop widening / sound call skipping).
  void dropMentioning(const std::function<bool(uint32_t)> &Drop);

  /// Number of path-provenance constraints (source-level groups) held.
  size_t pathCount() const;

  /// Drops the oldest path-provenance constraint (the paper's size-two
  /// path-constraint cap). No-op if none.
  void dropOldestPath();

  /// True if any constraint mentions \p Var.
  bool mentions(uint32_t Var) const;

  const std::vector<PurePrim> &prims() const { return Prims; }
  bool empty() const { return Prims.empty(); }
  size_t size() const { return Prims.size(); }

  /// Renders the conjunction for diagnostics, mapping variable ids through
  /// \p VarName.
  std::string
  toString(const std::function<std::string(uint32_t)> &VarName) const;

private:
  struct Closure;
  void addPrim(PurePrim Prim);

  std::vector<PurePrim> Prims;
  uint32_t NextPathSeq = 1;
};

} // namespace thresher

#endif // THRESHER_SOLVER_PURE_H
