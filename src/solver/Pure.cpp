#include "solver/Pure.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>
#include <unordered_map>

using namespace thresher;

namespace {

constexpr int64_t Inf = std::numeric_limits<int64_t>::max() / 4;

} // namespace

//===----------------------------------------------------------------------===//
// Difference-bound closure
//===----------------------------------------------------------------------===//

/// Shortest-path closure over the variables mentioned by a constraint set.
/// Node 0 is the distinguished Zero; others map dense ids to variables.
struct PureConstraints::Closure {
  std::unordered_map<uint32_t, size_t> Index; // Var -> dense node.
  std::vector<std::vector<int64_t>> D;        // D[i][j]: i - j <= D[i][j].
  bool Unsat = false;

  explicit Closure(const std::vector<PurePrim> &Prims) {
    Index[PurePrim::ZeroVar] = 0;
    for (const PurePrim &Pr : Prims) {
      if (!Index.count(Pr.X))
        Index[Pr.X] = Index.size();
      if (!Index.count(Pr.Y))
        Index[Pr.Y] = Index.size();
    }
    size_t N = Index.size();
    D.assign(N, std::vector<int64_t>(N, Inf));
    for (size_t I = 0; I < N; ++I)
      D[I][I] = 0;
    for (const PurePrim &Pr : Prims) {
      if (Pr.K != PurePrim::Kind::LE)
        continue;
      size_t X = Index[Pr.X], Y = Index[Pr.Y];
      D[X][Y] = std::min(D[X][Y], Pr.C);
    }
    // Floyd-Warshall; the sets are tiny (a handful of variables).
    for (size_t K = 0; K < N; ++K)
      for (size_t I = 0; I < N; ++I) {
        if (D[I][K] >= Inf)
          continue;
        for (size_t J = 0; J < N; ++J) {
          if (D[K][J] >= Inf)
            continue;
          int64_t Via = D[I][K] + D[K][J];
          if (Via < D[I][J])
            D[I][J] = Via;
        }
      }
    for (size_t I = 0; I < N; ++I)
      if (D[I][I] < 0)
        Unsat = true;
    if (Unsat)
      return;
    // Disequality check: X - Y != C is violated iff the closure forces
    // X - Y == C (both X - Y <= C and Y - X <= -C are tight).
    for (const PurePrim &Pr : Prims) {
      if (Pr.K != PurePrim::Kind::NE)
        continue;
      size_t X = Index[Pr.X], Y = Index[Pr.Y];
      if (D[X][Y] <= Pr.C && D[Y][X] <= -Pr.C) {
        Unsat = true;
        return;
      }
    }
  }

  /// Bound on X - Y, or Inf.
  int64_t bound(uint32_t X, uint32_t Y) const {
    auto XI = Index.find(X);
    auto YI = Index.find(Y);
    if (XI == Index.end() || YI == Index.end())
      return X == Y ? 0 : Inf;
    return D[XI->second][YI->second];
  }
};

//===----------------------------------------------------------------------===//
// PureConstraints
//===----------------------------------------------------------------------===//

void PureConstraints::addPrim(PurePrim Prim) {
  // Normalize constraints on Zero alone away (they are ground facts).
  if (Prim.X == Prim.Y) {
    // X - X <= / != C.
    if (Prim.K == PurePrim::Kind::LE && 0 <= Prim.C)
      return; // Trivially true.
    if (Prim.K == PurePrim::Kind::NE && Prim.C != 0)
      return; // Trivially true.
    // Trivially false: keep it so isSatisfiable() reports unsat.
  }
  for (PurePrim &Existing : Prims)
    if (Existing.sameShape(Prim)) {
      // Same logical constraint: keep the strongest provenance. A path
      // (branch-guard) prim must stay subject to the Sec. 4 cap, and when
      // two guard groups collide the merged prim joins the *older* group
      // so dropOldestPath evicts it first, never a younger survivor.
      if (Prim.IsPath) {
        if (!Existing.IsPath) {
          Existing.IsPath = true;
          Existing.PathSeq = Prim.PathSeq;
        } else {
          Existing.PathSeq = std::min(Existing.PathSeq, Prim.PathSeq);
        }
      }
      return;
    }
  Prims.push_back(Prim);
}

bool PureConstraints::addCmp(PureTerm L, RelOp Rel, PureTerm R, bool IsPath) {
  // Normalize both sides into (var, offset): constants use ZeroVar.
  uint32_t X = L.IsVar ? L.Var : PurePrim::ZeroVar;
  uint32_t Y = R.IsVar ? R.Var : PurePrim::ZeroVar;
  // L - R = (X + L.C) - (Y + R.C); constraint L Rel R becomes
  // X - Y Rel (R.C - L.C).
  int64_t C = R.C - L.C;

  uint32_t Seq = IsPath ? NextPathSeq++ : 0;
  auto LE = [&](uint32_t A, uint32_t B, int64_t K) {
    PurePrim Pr;
    Pr.K = PurePrim::Kind::LE;
    Pr.X = A;
    Pr.Y = B;
    Pr.C = K;
    Pr.IsPath = IsPath;
    Pr.PathSeq = Seq;
    addPrim(Pr);
  };
  auto NE = [&](uint32_t A, uint32_t B, int64_t K) {
    PurePrim Pr;
    Pr.K = PurePrim::Kind::NE;
    Pr.X = A;
    Pr.Y = B;
    Pr.C = K;
    Pr.IsPath = IsPath;
    Pr.PathSeq = Seq;
    addPrim(Pr);
  };

  switch (Rel) {
  case RelOp::EQ:
    LE(X, Y, C);
    LE(Y, X, -C);
    break;
  case RelOp::NE:
    NE(X, Y, C);
    break;
  case RelOp::LT:
    LE(X, Y, C - 1); // Integer semantics: X - Y < C  <=>  X - Y <= C-1.
    break;
  case RelOp::LE:
    LE(X, Y, C);
    break;
  case RelOp::GT:
    LE(Y, X, -C - 1);
    break;
  case RelOp::GE:
    LE(Y, X, -C);
    break;
  }
  if (X == PurePrim::ZeroVar && Y == PurePrim::ZeroVar) {
    // Ground comparison; report immediate contradiction.
    return isSatisfiable();
  }
  return true;
}

bool PureConstraints::isSatisfiable() const {
  if (Prims.empty())
    return true;
  return !Closure(Prims).Unsat;
}

bool PureConstraints::entails(const PureConstraints &Other) const {
  if (Other.Prims.empty())
    return true;
  Closure Cl(Prims);
  if (Cl.Unsat)
    return true; // False entails everything.
  for (const PurePrim &Pr : Other.Prims) {
    switch (Pr.K) {
    case PurePrim::Kind::LE:
      if (Cl.bound(Pr.X, Pr.Y) > Pr.C)
        return false;
      break;
    case PurePrim::Kind::NE:
      // Entailed iff equality is impossible: X - Y < C or X - Y > C forced.
      if (!(Cl.bound(Pr.X, Pr.Y) < Pr.C || Cl.bound(Pr.Y, Pr.X) < -Pr.C))
        return false;
      break;
    }
  }
  return true;
}

void PureConstraints::substitute(uint32_t From, uint32_t To) {
  for (PurePrim &Pr : Prims) {
    if (Pr.X == From)
      Pr.X = To;
    if (Pr.Y == From)
      Pr.Y = To;
  }
}

void PureConstraints::dropMentioning(
    const std::function<bool(uint32_t)> &Drop) {
  Prims.erase(std::remove_if(Prims.begin(), Prims.end(),
                             [&](const PurePrim &Pr) {
                               bool XHit = Pr.X != PurePrim::ZeroVar &&
                                           Drop(Pr.X);
                               bool YHit = Pr.Y != PurePrim::ZeroVar &&
                                           Drop(Pr.Y);
                               return XHit || YHit;
                             }),
              Prims.end());
}

size_t PureConstraints::pathCount() const {
  std::set<uint32_t> Seqs;
  for (const PurePrim &Pr : Prims)
    if (Pr.IsPath)
      Seqs.insert(Pr.PathSeq);
  return Seqs.size();
}

void PureConstraints::dropOldestPath() {
  uint32_t Oldest = ~0u;
  for (const PurePrim &Pr : Prims)
    if (Pr.IsPath && Pr.PathSeq < Oldest)
      Oldest = Pr.PathSeq;
  if (Oldest == ~0u)
    return;
  Prims.erase(std::remove_if(Prims.begin(), Prims.end(),
                             [&](const PurePrim &Pr) {
                               return Pr.IsPath && Pr.PathSeq == Oldest;
                             }),
              Prims.end());
}

bool PureConstraints::mentions(uint32_t Var) const {
  for (const PurePrim &Pr : Prims)
    if (Pr.X == Var || Pr.Y == Var)
      return true;
  return false;
}

std::string PureConstraints::toString(
    const std::function<std::string(uint32_t)> &VarName) const {
  std::ostringstream OS;
  auto Name = [&](uint32_t V) {
    return V == PurePrim::ZeroVar ? std::string("0") : VarName(V);
  };
  bool First = true;
  for (const PurePrim &Pr : Prims) {
    if (!First)
      OS << " /\\ ";
    First = false;
    OS << Name(Pr.X) << " - " << Name(Pr.Y)
       << (Pr.K == PurePrim::Kind::LE ? " <= " : " != ") << Pr.C;
  }
  return OS.str();
}
