//===- ForwardSlice.h - Forward reachability slices for witnesses -*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward reachability slices: for an abstract location, the set of basic
/// blocks control can possibly reach *after* the location's allocation site
/// has executed. Any concrete witness for a heap edge must allocate each
/// queried instance before flowing it anywhere, so a backwards query that
/// still constrains a symbolic instance of location L while standing in a
/// block the allocation of L can never reach has no concretization — the
/// witness search refutes it outright (Opts.ForwardSlice, counted under
/// sym.refute.slice). See docs/PRUNING.md for the soundness argument.
///
/// The slice is context-insensitive (a location's slice is its allocation
/// *site*'s slice) and tracked as, per basic block, the earliest
/// instruction index from which execution may be past the allocation
/// ("after-point"), computed over the PTA call graph:
///
///   seed:    the point just past the allocation instruction, and — for
///            every call site whose callee can (transitively) execute the
///            allocation — the point just past that call.
///   flow:    an after-point flows forward through its block to the end,
///            so every CFG successor is after from its start (index 0).
///   calls:   a call at or past a block's after-point runs its callee
///            entirely after the allocation (all callee blocks, index 0).
///
/// The index lattice makes the crucial distinction the engine needs: a
/// call site *before* the allocation (or before the returning call that
/// performs it) does not drag its callee — or, transitively, the whole
/// program — into the slice. This is a least fixpoint over min-indices,
/// so the result is order-independent and deterministic; every
/// over-approximation (context-insensitive call edges, whole-callee
/// import) only weakens the pruning, never the soundness.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_PTA_FORWARDSLICE_H
#define THRESHER_PTA_FORWARDSLICE_H

#include "pta/PointsTo.h"
#include "support/IdSet.h"

#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace thresher {

/// Lazily computed, memoized forward slices. Thread-safe: a SearchPool's
/// speculative runs share their engine's instance. Memoization is per
/// allocation site (all heap contexts of a site share one slice).
class ForwardSlice {
public:
  ForwardSlice(const Program &P, const PointsToResult &PTA)
      : P(P), PTA(PTA) {}

  /// May control be at the *start* of block (\p F, \p B) with the
  /// allocation of \p L already executed? Conservative: true when the
  /// site cannot be located in the IR.
  bool mayExecuteAfter(AbsLocId L, FuncId F, BlockId B);

private:
  struct LocSlice {
    /// Site not locatable (e.g. synthetic/harness allocation): no pruning.
    bool AlwaysAfter = false;
    /// Per function: block -> earliest instruction index from which
    /// execution may be past the allocation. Index 0 means the block
    /// start itself is reachable after the allocation.
    std::map<FuncId, std::map<BlockId, uint32_t>> AfterFrom;
  };

  const LocSlice &sliceFor(AllocSiteId Site);
  std::unique_ptr<LocSlice> compute(AllocSiteId Site) const;

  const Program &P;
  const PointsToResult &PTA;
  std::mutex M;
  std::unordered_map<AllocSiteId, std::unique_ptr<LocSlice>> Memo;
};

} // namespace thresher

#endif // THRESHER_PTA_FORWARDSLICE_H
