#include "pta/AbsLoc.h"

using namespace thresher;

AbsLocId AbsLocTable::intern(AllocSiteId Site, AbsLocId Ctx) {
  auto Key = std::make_pair(Site, Ctx);
  auto It = Index.find(Key);
  if (It != Index.end())
    return It->second;
  Entry E;
  E.Site = Site;
  E.Ctx = Ctx;
  E.Depth = Ctx == InvalidId ? 1 : Entries[Ctx].Depth + 1;
  Entries.push_back(E);
  AbsLocId Id = static_cast<AbsLocId>(Entries.size() - 1);
  Index.emplace(Key, Id);
  return Id;
}

AbsLocId AbsLocTable::find(AllocSiteId Site, AbsLocId Ctx) const {
  auto It = Index.find(std::make_pair(Site, Ctx));
  return It == Index.end() ? InvalidId : It->second;
}

std::string AbsLocTable::label(const Program &P, AbsLocId L) const {
  const Entry &E = Entries[L];
  std::string Base = P.allocLabel(E.Site);
  if (E.Ctx == InvalidId)
    return Base;
  return label(P, E.Ctx) + "." + Base;
}
