//===- PointsTo.h - Andersen-style points-to analysis -----------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flow-insensitive, field-sensitive, inclusion-based (Andersen) points-to
/// analysis with an on-the-fly call graph, selectable context policy, and
/// per-function transitive mod sets. This is the "obtain a conservative
/// analysis result" phase of the paper (Sec. 2) and the provider of the
/// pt() function the witness-refutation search consults (Sec. 3).
///
/// Context policies:
///  - Insensitive: classic 0-CFA.
///  - ContainerCFA (default): methods of classes flagged CF_Container are
///    analyzed once per receiver abstract location and their allocations
///    are heap-cloned by that receiver, emulating WALA's 0-1-Container-CFA.
///  - AllObjSens: every instance method is receiver-sensitive (costly).
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_PTA_POINTSTO_H
#define THRESHER_PTA_POINTSTO_H

#include "pta/AbsLoc.h"
#include "support/Hash.h"
#include "support/IdSet.h"
#include "support/Stats.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace thresher {

class ResourceGovernor;

/// Context policy for the analysis.
enum class CtxPolicy : uint8_t { Insensitive, ContainerCFA, AllObjSens };

/// Constraint-solver algorithm. Both produce identical results (the
/// equivalence is enforced by tests/pta_equiv_test.cpp and by the
/// canonical renumbering documented in docs/PTA.md); DeltaLCD is the
/// production solver, Naive is the textbook reference kept for
/// differential testing.
enum class PTASolver : uint8_t {
  /// Difference propagation (only each node's new locations flow to
  /// successors and constraints) with lazy online cycle detection that
  /// collapses copy-edge cycles into union-find representatives.
  DeltaLCD,
  /// Full re-propagation of every node's entire points-to set per
  /// worklist pop, no cycle collapsing (the original solver).
  Naive,
};

/// Analysis options.
struct PTAOptions {
  CtxPolicy Policy = CtxPolicy::ContainerCFA;
  PTASolver Solver = PTASolver::DeltaLCD;
  /// Maximum context-chain depth for heap cloning; deeper allocations fall
  /// back to the unqualified location.
  uint32_t MaxCtxDepth = 3;
  /// Static fields annotated as never pointing to anything (the paper's
  /// HashMap.EMPTY_TABLE annotation): stores into them are ignored.
  IdSet AnnotatedEmptyGlobals;
  /// Instance fields annotated likewise.
  IdSet AnnotatedEmptyFields;
  /// Optional shared resource governor (see support/Budget.h; not owned).
  /// The delta solver charges its in-flight delta sets to the memory
  /// accountant; a crossed ceiling is counted (MemCeilingHits) for the
  /// driver to abort on — the PTA phase has no sound degraded result, so
  /// exhaustion here is fatal (exit 4), never a weaker analysis.
  ResourceGovernor *Gov = nullptr;
};

/// A resolved call edge between method contexts: the position of the call
/// plus caller and callee, each qualified by its receiver heap context
/// (InvalidId for context-insensitive analysis units).
struct CallEdge {
  ProgramPoint At;
  FuncId Caller = InvalidId;
  FuncId Callee = InvalidId;
  AbsLocId CallerCtx = InvalidId;
  AbsLocId CalleeCtx = InvalidId;
};

/// A statement that may produce a points-to edge, qualified by the method
/// context under which it produces it.
struct ProducerSite {
  ProgramPoint At;
  AbsLocId Ctx = InvalidId; ///< Receiver context of the producing frame.
};

/// The analysis result: points-to sets over AbsLocIds, the call graph, and
/// mod summaries. All query results are unions over contexts, which is what
/// the (variable-context-insensitive) symbolic stage consumes.
class PointsToResult {
public:
  AbsLocTable Locs;

  /// Analysis-effort counters (`pta.*`: abstract locations, graph edges,
  /// reachable functions, call edges, solve time). The leak checker folds
  /// these into its own registry so the JSON report covers every phase.
  Stats Effort;

  /// pt(x): locations local \p V of function \p F may point to, unioned
  /// over all analysis contexts of \p F.
  const IdSet &ptVar(FuncId F, VarId V) const;

  /// Context-qualified pt(x): the points-to set of \p V in the method
  /// context (\p F, \p Ctx). Falls back to the context union when the
  /// context is unknown to the analysis.
  const IdSet &ptVarCtx(FuncId F, AbsLocId Ctx, VarId V) const;

  /// pt(g): locations static field \p G may point to.
  const IdSet &ptGlobal(GlobalId G) const;

  /// pt(a.f): locations field \p Fld of location \p L may contain.
  const IdSet &ptField(AbsLocId L, FieldId Fld) const;

  /// pt(y.f) as in the paper: union of ptField over pt(y).
  IdSet ptVarField(FuncId F, VarId V, FieldId Fld) const;

  /// All (field, target) edges out of \p L.
  std::vector<std::pair<FieldId, AbsLocId>> fieldEdges(AbsLocId L) const;

  /// Callees resolved at the call instruction at \p At (all contexts).
  const std::vector<FuncId> &calleesAt(const ProgramPoint &At) const;

  /// Context-qualified call edges out of the call at \p At when the
  /// calling frame has context \p CallerCtx.
  std::vector<CallEdge> calleesAtCtx(const ProgramPoint &At,
                                     AbsLocId CallerCtx) const;

  /// Call sites that may invoke \p F (all contexts).
  const std::vector<CallEdge> &callersOf(FuncId F) const;

  /// Call edges into the method context (\p F, \p Ctx).
  std::vector<CallEdge> callersOfCtx(FuncId F, AbsLocId Ctx) const;

  /// Functions reachable from the entry.
  const std::vector<FuncId> &reachableFuncs() const { return Reachable; }
  bool isReachable(FuncId F) const;

  /// Transitive mod set of \p F (fields and globals possibly written by F
  /// or anything it may call).
  const ModSet &modSetOf(FuncId F) const;

  /// Heap-location-granular mod summary, as in WALA's ModRef: for each
  /// field, the abstract locations whose instances may be written.
  struct HeapMod {
    std::map<FieldId, IdSet> FieldBases;
    IdSet Globals;

    bool mergeFrom(const HeapMod &Other) {
      bool Changed = Globals.insertAll(Other.Globals);
      for (const auto &[Fld, Bases] : Other.FieldBases)
        Changed |= FieldBases[Fld].insertAll(Bases);
      return Changed;
    }
    /// May this summary write field \p Fld of an instance from \p Region?
    bool mayWriteField(FieldId Fld, const IdSet &Region) const {
      auto It = FieldBases.find(Fld);
      return It != FieldBases.end() && !It->second.disjointWith(Region);
    }
  };

  /// Transitive heap-granular mod summary of \p F.
  const HeapMod &heapModOf(FuncId F) const;

  /// All locations for a given allocation site (across contexts).
  const std::vector<AbsLocId> &locsOfSite(AllocSiteId S) const;

  /// True if allocations in \p F are heap-cloned by F's receiver (the
  /// context policy made F receiver-sensitive). The witness search uses
  /// this to tie a context-qualified location back to the receiver.
  bool receiverIsHeapContext(FuncId F) const;

  /// All locations whose site allocates a class derived from \p Base.
  IdSet locsOfClassDerivedFrom(const Program &P, ClassId Base) const;

  /// Statements that may produce the heap edge \p Base.\p Fld -> \p Target
  /// (field or array stores), qualified by the method context under which
  /// they can produce it. For edges out of statics use the global form.
  std::vector<ProducerSite> producersOfFieldEdge(AbsLocId Base, FieldId Fld,
                                                 AbsLocId Target) const;
  std::vector<ProducerSite> producersOfGlobalEdge(GlobalId G,
                                                  AbsLocId Target) const;

  /// The heap context that an allocation at \p Site inside function \p F
  /// receives when F runs under receiver context \p FrameCtx (mirrors the
  /// analysis' context policy, including the depth cap).
  AbsLocId allocContextFor(FuncId F, AbsLocId FrameCtx) const;

  /// Total number of points-to graph edges (for reporting).
  uint64_t numEdges() const;

private:
  friend class PointsToAnalysis;
  const Program *P = nullptr;

  struct PPHash {
    size_t operator()(const ProgramPoint &PP) const {
      return static_cast<size_t>(
          hashCombine(hashPair(PP.F, PP.B), PP.Idx));
    }
  };

  struct MCKeyHash {
    size_t operator()(const std::pair<FuncId, AbsLocId> &K) const {
      return hashPair(K.first, K.second);
    }
  };

  // Collapsed (context-unioned) views, built after solving.
  std::vector<std::vector<IdSet>> VarPts;      ///< [FuncId][VarId]
  /// Context-qualified views: (F, Ctx) -> per-var points-to sets.
  std::unordered_map<std::pair<FuncId, AbsLocId>, std::vector<IdSet>,
                     MCKeyHash>
      VarPtsCtx;
  uint32_t MaxCtxDepth = 3;
  std::vector<IdSet> GlobalPts;                ///< [GlobalId]
  std::map<std::pair<AbsLocId, FieldId>, IdSet> FieldPts;
  std::unordered_map<ProgramPoint, std::vector<FuncId>, PPHash> Callees;
  std::unordered_map<ProgramPoint, std::vector<CallEdge>, PPHash> EdgesAt;
  std::vector<std::vector<CallEdge>> Callers;  ///< [FuncId]
  std::vector<FuncId> Reachable;
  std::vector<bool> ReachableMask;
  std::vector<ModSet> ModSets;                 ///< [FuncId]
  std::vector<HeapMod> HeapMods;               ///< [FuncId]
  std::vector<std::vector<AbsLocId>> SiteLocs; ///< [AllocSiteId]
  std::vector<bool> ReceiverCtxFuncs;          ///< [FuncId]
  IdSet EmptySet;
  std::vector<FuncId> NoFuncs;
  std::vector<CallEdge> NoEdges;
};

/// Runs the analysis on \p P.
class PointsToAnalysis {
public:
  PointsToAnalysis(const Program &P, PTAOptions Opts = {});

  /// Solves constraints to a fixed point and returns the result.
  std::unique_ptr<PointsToResult> run();

private:
  struct Impl;
  const Program &P;
  PTAOptions Opts;
};

} // namespace thresher

#endif // THRESHER_PTA_POINTSTO_H
