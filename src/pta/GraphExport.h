//===- GraphExport.h - Points-to graph rendering ----------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the flow-insensitive points-to graph as Graphviz dot — the
/// artifact shown as Fig. 2 of the paper. Optionally restricted to the
/// subgraph reachable from a set of static fields (which is what the leak
/// client looks at) and with highlighted Activity nodes.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_PTA_GRAPHEXPORT_H
#define THRESHER_PTA_GRAPHEXPORT_H

#include "pta/PointsTo.h"

#include <optional>
#include <ostream>
#include <vector>

namespace thresher {

/// Options for the dot rendering.
struct GraphExportOptions {
  /// If non-empty, restrict to the subgraph reachable from these globals.
  std::vector<GlobalId> Roots;
  /// Highlight locations whose class derives from this one (e.g. the
  /// Activity base), as Fig. 2 highlights act0.
  std::optional<ClassId> HighlightClass;
};

/// Writes the points-to graph of \p PTA as Graphviz dot to \p OS.
void exportPointsToDot(std::ostream &OS, const Program &P,
                       const PointsToResult &PTA,
                       const GraphExportOptions &Opts = {});

} // namespace thresher

#endif // THRESHER_PTA_GRAPHEXPORT_H
