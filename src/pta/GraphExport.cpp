#include "pta/GraphExport.h"

#include <deque>
#include <set>

using namespace thresher;

namespace {

/// Escapes double quotes for dot labels (string-literal site labels
/// contain them).
std::string escapeLabel(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

} // namespace

void thresher::exportPointsToDot(std::ostream &OS, const Program &P,
                                 const PointsToResult &PTA,
                                 const GraphExportOptions &Opts) {
  // Select locations: everything, or the subgraph reachable from Roots.
  std::set<AbsLocId> Nodes;
  std::vector<GlobalId> Globals;
  if (Opts.Roots.empty()) {
    for (GlobalId G = 0; G < P.Globals.size(); ++G)
      if (!PTA.ptGlobal(G).empty())
        Globals.push_back(G);
    for (AbsLocId L = 0; L < PTA.Locs.size(); ++L)
      Nodes.insert(L);
  } else {
    Globals = Opts.Roots;
    std::deque<AbsLocId> Work;
    for (GlobalId G : Globals)
      for (AbsLocId L : PTA.ptGlobal(G))
        if (Nodes.insert(L).second)
          Work.push_back(L);
    while (!Work.empty()) {
      AbsLocId L = Work.front();
      Work.pop_front();
      for (auto [Fld, Next] : PTA.fieldEdges(L)) {
        (void)Fld;
        if (Nodes.insert(Next).second)
          Work.push_back(Next);
      }
    }
  }

  OS << "digraph pointsTo {\n"
     << "  rankdir=LR;\n"
     << "  node [fontname=\"Helvetica\"];\n";
  for (GlobalId G : Globals)
    OS << "  \"g" << G << "\" [label=\"" << P.globalName(G)
       << "\", shape=box];\n";
  for (AbsLocId L : Nodes) {
    bool Highlight = false;
    if (Opts.HighlightClass) {
      const AllocSiteInfo &Site = P.AllocSites[PTA.Locs.site(L)];
      Highlight = !Site.IsArray &&
                  P.isSubclassOf(Site.Class, *Opts.HighlightClass);
    }
    OS << "  \"n" << L << "\" [label=\"" << escapeLabel(PTA.Locs.label(P, L))
       << "\", shape=ellipse"
       << (Highlight ? ", style=filled, fillcolor=lightcoral" : "")
       << "];\n";
  }
  for (GlobalId G : Globals)
    for (AbsLocId L : PTA.ptGlobal(G))
      if (Nodes.count(L))
        OS << "  \"g" << G << "\" -> \"n" << L << "\";\n";
  for (AbsLocId L : Nodes)
    for (auto [Fld, Next] : PTA.fieldEdges(L))
      if (Nodes.count(Next))
        OS << "  \"n" << L << "\" -> \"n" << Next << "\" [label=\""
           << P.fieldName(Fld) << "\"];\n";
  OS << "}\n";
}
