#include "pta/PointsTo.h"

#include <cassert>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace thresher;

namespace {

using NodeId = uint32_t;
constexpr NodeId NoNode = ~0u;

} // namespace

//===----------------------------------------------------------------------===//
// Solver implementation
//===----------------------------------------------------------------------===//

struct PointsToAnalysis::Impl {
  const Program &P;
  PTAOptions Opts;
  std::unique_ptr<PointsToResult> R = std::make_unique<PointsToResult>();
  AbsLocTable &Locs = R->Locs;

  // --- Method contexts: (function, receiver location or InvalidId). ---
  struct MCKeyHash {
    size_t operator()(const std::pair<FuncId, AbsLocId> &K) const {
      return (static_cast<size_t>(K.first) << 32) ^ K.second;
    }
  };
  std::vector<std::pair<FuncId, AbsLocId>> MCs;
  std::unordered_map<std::pair<FuncId, AbsLocId>, uint32_t, MCKeyHash>
      MCIndex;
  std::deque<uint32_t> MCQueue;
  std::vector<bool> MCProcessed;

  // --- Nodes. Globals first, then vars / fields / returns on demand. ---
  std::vector<IdSet> Pts;
  std::vector<IdSet> Succ; // Successor node ids per node (copy edges).
  struct LoadCons {
    FieldId F;
    NodeId Dst;
  };
  struct StoreCons {
    FieldId F;
    NodeId Src;
  };
  struct CallCons {
    uint32_t Id; // Unique, for (cons, loc) processing dedup.
    ProgramPoint At;
    uint32_t CallerMC;
    bool IsVirtual;
    NameId Method;
    FuncId Direct;
    std::vector<NodeId> ArgNodes; // Excluding the receiver (index 0).
    NodeId DstNode;
  };
  std::vector<std::vector<LoadCons>> Loads;
  std::vector<std::vector<StoreCons>> Stores;
  std::vector<std::vector<CallCons>> Calls;
  uint32_t NextCallConsId = 0;
  std::unordered_set<uint64_t> CallProcessed; // (consId << 32) | loc
  std::deque<NodeId> Worklist;
  std::vector<bool> InWorklist;

  struct VarKeyHash {
    size_t operator()(const std::pair<uint32_t, VarId> &K) const {
      return (static_cast<size_t>(K.first) << 32) ^ K.second;
    }
  };
  std::unordered_map<std::pair<uint32_t, VarId>, NodeId, VarKeyHash> VarNodes;
  std::unordered_map<std::pair<AbsLocId, FieldId>, NodeId, VarKeyHash>
      FieldNodes;
  std::unordered_map<uint32_t, NodeId> RetNodes; // Per MC.

  // Call graph edges recorded during solving.
  std::vector<CallEdge> CallEdges;
  std::unordered_set<uint64_t> CallEdgeSeen; // Hash of (At, callee).

  Impl(const Program &P, PTAOptions Opts) : P(P), Opts(std::move(Opts)) {}

  // --- Node management. ---
  NodeId newNode() {
    Pts.emplace_back();
    Succ.emplace_back();
    Loads.emplace_back();
    Stores.emplace_back();
    Calls.emplace_back();
    InWorklist.push_back(false);
    return static_cast<NodeId>(Pts.size() - 1);
  }

  void initGlobalNodes() {
    for (GlobalId G = 0; G < P.Globals.size(); ++G) {
      NodeId N = newNode();
      (void)N;
      assert(N == G && "global nodes must come first");
    }
  }

  NodeId globalNode(GlobalId G) { return G; }

  NodeId varNode(uint32_t MC, VarId V) {
    auto Key = std::make_pair(MC, V);
    auto It = VarNodes.find(Key);
    if (It != VarNodes.end())
      return It->second;
    NodeId N = newNode();
    VarNodes.emplace(Key, N);
    return N;
  }

  NodeId fieldNode(AbsLocId L, FieldId F) {
    auto Key = std::make_pair(L, F);
    auto It = FieldNodes.find(Key);
    if (It != FieldNodes.end())
      return It->second;
    NodeId N = newNode();
    FieldNodes.emplace(Key, N);
    return N;
  }

  NodeId retNode(uint32_t MC) {
    auto It = RetNodes.find(MC);
    if (It != RetNodes.end())
      return It->second;
    NodeId N = newNode();
    RetNodes.emplace(MC, N);
    return N;
  }

  void push(NodeId N) {
    if (!InWorklist[N]) {
      InWorklist[N] = true;
      Worklist.push_back(N);
    }
  }

  bool addToPts(NodeId N, AbsLocId L) {
    if (Pts[N].insert(L)) {
      push(N);
      return true;
    }
    return false;
  }

  void addEdge(NodeId From, NodeId To) {
    if (From == To)
      return;
    if (!Succ[From].insert(To))
      return;
    if (Pts[To].insertAll(Pts[From]))
      push(To);
  }

  // --- Context policy. ---
  bool ctxSensitive(FuncId F) const {
    if (Opts.Policy == CtxPolicy::Insensitive)
      return false;
    const Function &Fn = P.Funcs[F];
    if (Fn.IsStatic || Fn.Owner == InvalidId)
      return false;
    if (Opts.Policy == CtxPolicy::AllObjSens)
      return true;
    // ContainerCFA: the owner or an ancestor is flagged container.
    ClassId C = Fn.Owner;
    while (C != InvalidId) {
      if (P.Classes[C].isContainer())
        return true;
      C = P.Classes[C].Super;
    }
    return false;
  }

  uint32_t internMC(FuncId F, AbsLocId Recv) {
    auto Key = std::make_pair(F, Recv);
    auto It = MCIndex.find(Key);
    if (It != MCIndex.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(MCs.size());
    MCs.push_back(Key);
    MCIndex.emplace(Key, Id);
    MCProcessed.push_back(false);
    MCQueue.push_back(Id);
    return Id;
  }

  // --- Constraint attachment (seeds with current pts). ---
  void attachLoad(NodeId Base, FieldId F, NodeId Dst) {
    Loads[Base].push_back({F, Dst});
    for (AbsLocId L : Pts[Base])
      addEdge(fieldNode(L, F), Dst);
  }

  void attachStore(NodeId Base, FieldId F, NodeId Src) {
    Stores[Base].push_back({F, Src});
    for (AbsLocId L : Pts[Base])
      addEdge(Src, fieldNode(L, F));
  }

  void attachCall(NodeId Recv, CallCons C) {
    Calls[Recv].push_back(C);
    // Copy needed: processCallLoc may reallocate Calls.
    CallCons Cons = Calls[Recv].back();
    for (AbsLocId L : Pts[Recv])
      processCallLoc(Cons, L);
  }

  void recordCallEdge(const ProgramPoint &At, uint32_t CallerMC,
                      FuncId Callee, AbsLocId CalleeCtx) {
    uint64_t H = (static_cast<uint64_t>(At.F) << 44) ^
                 (static_cast<uint64_t>(At.B) << 28) ^
                 (static_cast<uint64_t>(At.Idx) << 16) ^
                 (static_cast<uint64_t>(CallerMC) << 8) ^
                 (static_cast<uint64_t>(Callee) << 4) ^ CalleeCtx;
    if (!CallEdgeSeen.insert(H).second)
      return;
    CallEdge E;
    E.At = At;
    E.Caller = MCs[CallerMC].first;
    E.CallerCtx = MCs[CallerMC].second;
    E.Callee = Callee;
    E.CalleeCtx = CalleeCtx;
    CallEdges.push_back(E);
  }

  void processCallLoc(const CallCons &C, AbsLocId L) {
    uint64_t Key = (static_cast<uint64_t>(C.Id) << 32) | L;
    if (!CallProcessed.insert(Key).second)
      return;
    const AllocSiteInfo &Site = P.AllocSites[Locs.site(L)];
    FuncId Callee;
    if (C.IsVirtual) {
      if (Site.IsArray)
        return; // No methods on arrays.
      Callee = P.resolveVirtual(Site.Class, C.Method);
      if (Callee == InvalidId)
        return;
    } else {
      Callee = C.Direct;
      // Filter receivers that cannot be instances of the owner.
      if (P.Funcs[Callee].Owner != InvalidId && !Site.IsArray &&
          !P.isSubclassOf(Site.Class, P.Funcs[Callee].Owner))
        return;
    }
    AbsLocId Ctx = ctxSensitive(Callee) ? L : InvalidId;
    uint32_t CalleeMC = internMC(Callee, Ctx);
    const Function &CalleeFn = P.Funcs[Callee];
    // Bind receiver exactly to this location.
    if (CalleeFn.NumParams > 0)
      addToPts(varNode(CalleeMC, 0), L);
    // Bind remaining arguments.
    size_t N = std::min<size_t>(C.ArgNodes.size(),
                                CalleeFn.NumParams > 0
                                    ? CalleeFn.NumParams - 1
                                    : 0);
    for (size_t I = 0; I < N; ++I)
      addEdge(C.ArgNodes[I], varNode(CalleeMC, static_cast<VarId>(I + 1)));
    if (C.DstNode != NoNode)
      addEdge(retNode(CalleeMC), C.DstNode);
    recordCallEdge(C.At, C.CallerMC, Callee, Ctx);
  }

  /// Direct, context-insensitive call binding.
  void bindDirectCall(const ProgramPoint &At, uint32_t MC,
                      const Instruction &I) {
    FuncId Callee = I.DirectCallee;
    uint32_t CalleeMC = internMC(Callee, InvalidId);
    for (size_t K = 0; K < I.Args.size(); ++K)
      addEdge(varNode(MC, I.Args[K]),
              varNode(CalleeMC, static_cast<VarId>(K)));
    if (I.Dst != NoVar)
      addEdge(retNode(CalleeMC), varNode(MC, I.Dst));
    recordCallEdge(At, MC, Callee, InvalidId);
  }

  /// Heap context for an allocation in method context \p MC.
  AbsLocId allocCtx(uint32_t MC) const {
    auto [F, Recv] = MCs[MC];
    if (Recv == InvalidId)
      return InvalidId;
    if (!ctxSensitive(F))
      return InvalidId;
    if (Locs.depth(Recv) >= Opts.MaxCtxDepth)
      return InvalidId;
    return Recv;
  }

  // --- Constraint generation for one method context. ---
  void genConstraints(uint32_t MC) {
    auto [F, Recv] = MCs[MC];
    (void)Recv;
    const Function &Fn = P.Funcs[F];
    for (BlockId B = 0; B < Fn.Blocks.size(); ++B) {
      const BasicBlock &BB = Fn.Blocks[B];
      for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
        const Instruction &I = BB.Insts[Idx];
        ProgramPoint At{F, B, Idx};
        switch (I.Op) {
        case Opcode::Assign:
          addEdge(varNode(MC, I.Src), varNode(MC, I.Dst));
          break;
        case Opcode::ConstInt:
        case Opcode::ConstNull:
        case Opcode::Havoc:
        case Opcode::ArrayLen:
        case Opcode::Binop:
          break; // Data-only.
        case Opcode::New:
        case Opcode::NewArray:
          addToPts(varNode(MC, I.Dst), Locs.intern(I.Alloc, allocCtx(MC)));
          break;
        case Opcode::Load:
          attachLoad(varNode(MC, I.Src), I.Field, varNode(MC, I.Dst));
          break;
        case Opcode::ArrayLoad:
          attachLoad(varNode(MC, I.Src), P.ElemsField, varNode(MC, I.Dst));
          break;
        case Opcode::Store:
          if (!Opts.AnnotatedEmptyFields.contains(I.Field))
            attachStore(varNode(MC, I.Dst), I.Field, varNode(MC, I.Src));
          break;
        case Opcode::ArrayStore:
          if (!Opts.AnnotatedEmptyFields.contains(P.ElemsField))
            attachStore(varNode(MC, I.Dst), P.ElemsField,
                        varNode(MC, I.Src));
          break;
        case Opcode::LoadStatic:
          addEdge(globalNode(I.Global), varNode(MC, I.Dst));
          break;
        case Opcode::StoreStatic:
          if (!Opts.AnnotatedEmptyGlobals.contains(I.Global))
            addEdge(varNode(MC, I.Src), globalNode(I.Global));
          break;
        case Opcode::Call: {
          if (I.IsVirtual || (I.DirectCallee != InvalidId &&
                              ctxSensitive(I.DirectCallee))) {
            CallCons C;
            C.Id = NextCallConsId++;
            C.At = At;
            C.CallerMC = MC;
            C.IsVirtual = I.IsVirtual;
            C.Method = I.Method;
            C.Direct = I.DirectCallee;
            for (size_t K = 1; K < I.Args.size(); ++K)
              C.ArgNodes.push_back(varNode(MC, I.Args[K]));
            C.DstNode = I.Dst == NoVar ? NoNode : varNode(MC, I.Dst);
            attachCall(varNode(MC, I.Args[0]), C);
          } else {
            bindDirectCall(At, MC, I);
          }
          break;
        }
        }
      }
      const Terminator &T = BB.Term;
      if (T.Kind == TermKind::Return && T.HasRetVal)
        addEdge(varNode(MC, T.RetVal), retNode(MC));
    }
  }

  // --- Main solve loop. ---
  void solve() {
    initGlobalNodes();
    if (P.EntryFunc != InvalidId)
      internMC(P.EntryFunc, InvalidId);
    while (!MCQueue.empty() || !Worklist.empty()) {
      while (!MCQueue.empty()) {
        uint32_t MC = MCQueue.front();
        MCQueue.pop_front();
        if (MCProcessed[MC])
          continue;
        MCProcessed[MC] = true;
        genConstraints(MC);
      }
      while (!Worklist.empty()) {
        NodeId N = Worklist.front();
        Worklist.pop_front();
        InWorklist[N] = false;
        // Copy: processing may add nodes / grow vectors.
        IdSet Cur = Pts[N];
        for (uint32_t S : IdSet(Succ[N]))
          if (Pts[S].insertAll(Cur))
            push(S);
        for (LoadCons LC : std::vector<LoadCons>(Loads[N]))
          for (AbsLocId L : Cur)
            addEdge(fieldNode(L, LC.F), LC.Dst);
        for (StoreCons SC : std::vector<StoreCons>(Stores[N]))
          for (AbsLocId L : Cur)
            addEdge(SC.Src, fieldNode(L, SC.F));
        for (CallCons CC : std::vector<CallCons>(Calls[N]))
          for (AbsLocId L : Cur)
            processCallLoc(CC, L);
        if (!MCQueue.empty())
          break; // Generate constraints for newly reached methods first.
      }
    }
  }

  // --- Result finalization. ---
  void finalize() {
    R->P = &P;
    R->VarPts.assign(P.Funcs.size(), {});
    for (FuncId F = 0; F < P.Funcs.size(); ++F)
      R->VarPts[F].assign(P.Funcs[F].NumVars, IdSet());
    for (const auto &[Key, N] : VarNodes) {
      auto [MC, V] = Key;
      auto [F, Ctx] = MCs[MC];
      if (V < R->VarPts[F].size())
        R->VarPts[F][V].insertAll(Pts[N]);
      auto &PerCtx = R->VarPtsCtx[{F, Ctx}];
      if (PerCtx.empty())
        PerCtx.assign(P.Funcs[F].NumVars, IdSet());
      if (V < PerCtx.size())
        PerCtx[V].insertAll(Pts[N]);
    }
    R->MaxCtxDepth = Opts.MaxCtxDepth;
    R->GlobalPts.assign(P.Globals.size(), IdSet());
    for (GlobalId G = 0; G < P.Globals.size(); ++G)
      R->GlobalPts[G] = Pts[globalNode(G)];
    for (const auto &[Key, N] : FieldNodes)
      R->FieldPts[Key].insertAll(Pts[N]);

    // Call graph.
    R->Callers.assign(P.Funcs.size(), {});
    for (const CallEdge &E : CallEdges) {
      auto &CalleeList = R->Callees[E.At];
      if (std::find(CalleeList.begin(), CalleeList.end(), E.Callee) ==
          CalleeList.end())
        CalleeList.push_back(E.Callee);
      R->EdgesAt[E.At].push_back(E);
      R->Callers[E.Callee].push_back(E);
    }

    // Reachability.
    R->ReachableMask.assign(P.Funcs.size(), false);
    for (uint32_t MC = 0; MC < MCs.size(); ++MC)
      if (MCProcessed[MC])
        R->ReachableMask[MCs[MC].first] = true;
    for (FuncId F = 0; F < P.Funcs.size(); ++F)
      if (R->ReachableMask[F])
        R->Reachable.push_back(F);

    // Transitive mod sets over the call graph.
    R->ModSets.assign(P.Funcs.size(), ModSet());
    for (FuncId F : R->Reachable)
      R->ModSets[F] = P.Funcs[F].LocalMods;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const CallEdge &E : CallEdges)
        if (R->ModSets[E.Caller].mergeFrom(R->ModSets[E.Callee]))
          Changed = true;
    }

    // Heap-granular mod summaries (WALA ModRef style): direct writes with
    // their base points-to sets, then the transitive closure.
    R->HeapMods.assign(P.Funcs.size(), PointsToResult::HeapMod());
    for (FuncId F : R->Reachable) {
      PointsToResult::HeapMod &HM = R->HeapMods[F];
      const Function &Fn = P.Funcs[F];
      for (const BasicBlock &BB : Fn.Blocks) {
        for (const Instruction &I : BB.Insts) {
          switch (I.Op) {
          case Opcode::Store:
            HM.FieldBases[I.Field].insertAll(R->ptVar(F, I.Dst));
            break;
          case Opcode::ArrayStore:
            HM.FieldBases[P.ElemsField].insertAll(R->ptVar(F, I.Dst));
            break;
          case Opcode::StoreStatic:
            HM.Globals.insert(I.Global);
            break;
          default:
            break;
          }
        }
      }
    }
    Changed = true;
    while (Changed) {
      Changed = false;
      for (const CallEdge &E : CallEdges)
        if (R->HeapMods[E.Caller].mergeFrom(R->HeapMods[E.Callee]))
          Changed = true;
    }

    // Locations per allocation site.
    R->SiteLocs.assign(P.AllocSites.size(), {});
    for (AbsLocId L = 0; L < Locs.size(); ++L)
      R->SiteLocs[Locs.site(L)].push_back(L);

    R->ReceiverCtxFuncs.assign(P.Funcs.size(), false);
    for (FuncId F = 0; F < P.Funcs.size(); ++F)
      R->ReceiverCtxFuncs[F] = ctxSensitive(F);
  }
};

PointsToAnalysis::PointsToAnalysis(const Program &P, PTAOptions Opts)
    : P(P), Opts(std::move(Opts)) {}

std::unique_ptr<PointsToResult> PointsToAnalysis::run() {
  Impl I(P, Opts);
  {
    ScopedTimer ST(I.R->Effort, "hist.pta.solveNanos");
    I.solve();
    I.finalize();
  }
  PointsToResult &R = *I.R;
  R.Effort.bump("pta.absLocs", R.Locs.size());
  R.Effort.bump("pta.edges", R.numEdges());
  R.Effort.bump("pta.reachableFuncs", R.reachableFuncs().size());
  uint64_t CallEdges = 0;
  for (const auto &Cs : R.Callers)
    CallEdges += Cs.size();
  R.Effort.bump("pta.callEdges", CallEdges);
  return std::move(I.R);
}

//===----------------------------------------------------------------------===//
// PointsToResult queries
//===----------------------------------------------------------------------===//

const IdSet &PointsToResult::ptVar(FuncId F, VarId V) const {
  if (F >= VarPts.size() || V >= VarPts[F].size())
    return EmptySet;
  return VarPts[F][V];
}

const IdSet &PointsToResult::ptVarCtx(FuncId F, AbsLocId Ctx,
                                      VarId V) const {
  auto It = VarPtsCtx.find({F, Ctx});
  if (It == VarPtsCtx.end() || V >= It->second.size())
    return ptVar(F, V); // Unknown context: fall back to the union.
  return It->second[V];
}

const IdSet &PointsToResult::ptGlobal(GlobalId G) const {
  if (G >= GlobalPts.size())
    return EmptySet;
  return GlobalPts[G];
}

const IdSet &PointsToResult::ptField(AbsLocId L, FieldId Fld) const {
  auto It = FieldPts.find({L, Fld});
  return It == FieldPts.end() ? EmptySet : It->second;
}

IdSet PointsToResult::ptVarField(FuncId F, VarId V, FieldId Fld) const {
  IdSet Out;
  for (AbsLocId L : ptVar(F, V))
    Out.insertAll(ptField(L, Fld));
  return Out;
}

std::vector<std::pair<FieldId, AbsLocId>>
PointsToResult::fieldEdges(AbsLocId L) const {
  std::vector<std::pair<FieldId, AbsLocId>> Out;
  auto It = FieldPts.lower_bound({L, 0});
  for (; It != FieldPts.end() && It->first.first == L; ++It)
    for (AbsLocId T : It->second)
      Out.push_back({It->first.second, T});
  return Out;
}

const std::vector<FuncId> &
PointsToResult::calleesAt(const ProgramPoint &At) const {
  auto It = Callees.find(At);
  return It == Callees.end() ? NoFuncs : It->second;
}

const std::vector<CallEdge> &PointsToResult::callersOf(FuncId F) const {
  if (F >= Callers.size())
    return NoEdges;
  return Callers[F];
}

std::vector<CallEdge>
PointsToResult::calleesAtCtx(const ProgramPoint &At,
                             AbsLocId CallerCtx) const {
  std::vector<CallEdge> Out;
  auto It = EdgesAt.find(At);
  if (It == EdgesAt.end())
    return Out;
  for (const CallEdge &E : It->second)
    if (E.CallerCtx == CallerCtx)
      Out.push_back(E);
  return Out;
}

std::vector<CallEdge> PointsToResult::callersOfCtx(FuncId F,
                                                   AbsLocId Ctx) const {
  std::vector<CallEdge> Out;
  for (const CallEdge &E : callersOf(F))
    if (E.CalleeCtx == Ctx)
      Out.push_back(E);
  return Out;
}

AbsLocId PointsToResult::allocContextFor(FuncId F,
                                         AbsLocId FrameCtx) const {
  if (!receiverIsHeapContext(F) || FrameCtx == InvalidId)
    return InvalidId;
  if (Locs.depth(FrameCtx) >= MaxCtxDepth)
    return InvalidId;
  return FrameCtx;
}

bool PointsToResult::isReachable(FuncId F) const {
  return F < ReachableMask.size() && ReachableMask[F];
}

const ModSet &PointsToResult::modSetOf(FuncId F) const {
  static const ModSet Empty;
  if (F >= ModSets.size())
    return Empty;
  return ModSets[F];
}

const PointsToResult::HeapMod &PointsToResult::heapModOf(FuncId F) const {
  static const HeapMod Empty;
  if (F >= HeapMods.size())
    return Empty;
  return HeapMods[F];
}

const std::vector<AbsLocId> &PointsToResult::locsOfSite(AllocSiteId S) const {
  static const std::vector<AbsLocId> Empty;
  if (S >= SiteLocs.size())
    return Empty;
  return SiteLocs[S];
}

bool PointsToResult::receiverIsHeapContext(FuncId F) const {
  return F < ReceiverCtxFuncs.size() && ReceiverCtxFuncs[F];
}

IdSet PointsToResult::locsOfClassDerivedFrom(const Program &Prog,
                                             ClassId Base) const {
  IdSet Out;
  for (AbsLocId L = 0; L < Locs.size(); ++L) {
    const AllocSiteInfo &Site = Prog.AllocSites[Locs.site(L)];
    if (!Site.IsArray && Prog.isSubclassOf(Site.Class, Base))
      Out.insert(L);
  }
  return Out;
}

std::vector<ProducerSite>
PointsToResult::producersOfFieldEdge(AbsLocId Base, FieldId Fld,
                                     AbsLocId Target) const {
  std::vector<ProducerSite> Out;
  for (const auto &[MC, PerVar] : VarPtsCtx) {
    auto [F, Ctx] = MC;
    const Function &Fn = P->Funcs[F];
    for (BlockId B = 0; B < Fn.Blocks.size(); ++B) {
      const BasicBlock &BB = Fn.Blocks[B];
      for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
        const Instruction &I = BB.Insts[Idx];
        bool IsFieldStore = I.Op == Opcode::Store && I.Field == Fld;
        bool IsArrayStore =
            I.Op == Opcode::ArrayStore && Fld == P->ElemsField;
        if (!IsFieldStore && !IsArrayStore)
          continue;
        if (I.Dst < PerVar.size() && PerVar[I.Dst].contains(Base) &&
            I.Src < PerVar.size() && PerVar[I.Src].contains(Target))
          Out.push_back({{F, B, Idx}, Ctx});
      }
    }
  }
  // VarPtsCtx iteration order is unspecified; sort for determinism.
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    return std::tie(A.At.F, A.At.B, A.At.Idx, A.Ctx) <
           std::tie(B.At.F, B.At.B, B.At.Idx, B.Ctx);
  });
  return Out;
}

std::vector<ProducerSite>
PointsToResult::producersOfGlobalEdge(GlobalId G, AbsLocId Target) const {
  std::vector<ProducerSite> Out;
  for (const auto &[MC, PerVar] : VarPtsCtx) {
    auto [F, Ctx] = MC;
    const Function &Fn = P->Funcs[F];
    for (BlockId B = 0; B < Fn.Blocks.size(); ++B) {
      const BasicBlock &BB = Fn.Blocks[B];
      for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
        const Instruction &I = BB.Insts[Idx];
        if (I.Op != Opcode::StoreStatic || I.Global != G)
          continue;
        if (I.Src < PerVar.size() && PerVar[I.Src].contains(Target))
          Out.push_back({{F, B, Idx}, Ctx});
      }
    }
  }
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    return std::tie(A.At.F, A.At.B, A.At.Idx, A.Ctx) <
           std::tie(B.At.F, B.At.B, B.At.Idx, B.Ctx);
  });
  return Out;
}

uint64_t PointsToResult::numEdges() const {
  uint64_t N = 0;
  for (const auto &FPts : VarPts)
    for (const IdSet &S : FPts)
      N += S.size();
  for (const IdSet &S : GlobalPts)
    N += S.size();
  for (const auto &[_, S] : FieldPts)
    N += S.size();
  return N;
}
