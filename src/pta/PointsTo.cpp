#include "pta/PointsTo.h"

#include "support/Budget.h"
#include "support/Hash.h"
#include "support/UnionFind.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <deque>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

using namespace thresher;

namespace {

using NodeId = uint32_t;
constexpr NodeId NoNode = ~0u;

} // namespace

//===----------------------------------------------------------------------===//
// Solver implementation
//===----------------------------------------------------------------------===//
//
// Inclusion-constraint solving with difference propagation and online cycle
// collapsing (see docs/PTA.md for the full design):
//
//  - Every node keeps Pts (locations already propagated to its successors
//    and constraints) and Delta (locations that arrived since the node was
//    last popped). Only Delta flows on a pop, so a location crosses each
//    edge once instead of once per downstream change.
//  - Constraints attached mid-solve are seeded against Pts at attach time;
//    a pop then matches Delta against the node's whole constraint list by
//    index (the backing vectors may reallocate while fieldNode/varNode
//    create nodes, so elements are copied out one at a time — never the
//    whole list, which is what the old solver did on every pop).
//  - Copy-edge cycles are detected lazily (Hardekopf/Lin-style LCD): when
//    a pop propagates along an edge without growing the target and both
//    endpoints' points-to sets are equal, a DFS looks for a cycle through
//    that edge, and every node on one is collapsed into a single
//    union-find representative. All node lookups route through find().
//
// The Naive solver (full re-propagation, no collapsing) is retained for
// differential testing; both paths share constraint generation and
// finalization, and finalize() canonically renumbers abstract locations so
// the published result is independent of which solver — and which worklist
// schedule — produced it.

struct PointsToAnalysis::Impl {
  const Program &P;
  PTAOptions Opts;
  const bool UseDelta;
  std::unique_ptr<PointsToResult> R = std::make_unique<PointsToResult>();
  AbsLocTable &Locs = R->Locs;

  // --- Method contexts: (function, receiver location or InvalidId). ---
  struct MCKeyHash {
    size_t operator()(const std::pair<FuncId, AbsLocId> &K) const {
      return hashPair(K.first, K.second);
    }
  };
  std::vector<std::pair<FuncId, AbsLocId>> MCs;
  std::unordered_map<std::pair<FuncId, AbsLocId>, uint32_t, MCKeyHash>
      MCIndex;
  std::deque<uint32_t> MCQueue;
  std::vector<bool> MCProcessed;

  // --- Nodes. Globals first, then vars / fields / returns on demand. ---
  std::vector<IdSet> Pts;
  std::vector<IdSet> Delta; // Pending locations (DeltaLCD solver only).
  std::vector<IdSet> Succ;  // Successor node ids per node (copy edges).
  struct LoadCons {
    FieldId F;
    NodeId Dst;
  };
  struct StoreCons {
    FieldId F;
    NodeId Src;
  };
  struct CallCons {
    uint32_t Id; // Unique, for (cons, loc) processing dedup.
    ProgramPoint At;
    uint32_t CallerMC;
    bool IsVirtual;
    NameId Method;
    FuncId Direct;
    std::vector<NodeId> ArgNodes; // Excluding the receiver (index 0).
    NodeId DstNode;
  };
  std::vector<std::vector<LoadCons>> Loads;
  std::vector<std::vector<StoreCons>> Stores;
  std::vector<std::vector<CallCons>> Calls;
  uint32_t NextCallConsId = 0;
  std::unordered_set<uint64_t> CallProcessed; // (consId << 32) | loc
  std::deque<NodeId> Worklist;
  std::vector<bool> InWorklist;

  // --- Cycle collapsing state (DeltaLCD). ---
  UnionFind UF;
  std::unordered_set<uint64_t> CycleChecked; // Probed (from << 32) | to.
  std::vector<uint32_t> DfsState;            // Epoch-stamped DFS marks.
  uint32_t DfsEpoch = 0;
  uint64_t NumEdgesTotal = 0;   // Copy edges ever inserted (approximate
  uint64_t EdgesSinceScc = 0;   // after collapses; heuristic input only).

  // --- Effort accounting (folded into R->Effort once, after solving). ---
  uint64_t NumDeltaPops = 0, NumDeltaLocs = 0;
  uint64_t NumCyclesCollapsed = 0, NumNodesMerged = 0, NumLcdProbes = 0;
  uint64_t NumSccPasses = 0;
  Histogram DeltaSizeHist;

  struct VarKeyHash {
    size_t operator()(const std::pair<uint32_t, VarId> &K) const {
      return hashPair(K.first, K.second);
    }
  };
  std::unordered_map<std::pair<uint32_t, VarId>, NodeId, VarKeyHash> VarNodes;
  std::unordered_map<std::pair<AbsLocId, FieldId>, NodeId, VarKeyHash>
      FieldNodes;
  std::unordered_map<uint32_t, NodeId> RetNodes; // Per MC.

  // Call graph edges recorded during solving, deduplicated on the exact
  // edge key (the old shifted-xor hash could collide and drop edges).
  std::vector<CallEdge> CallEdges;
  struct CallEdgeKeyHash {
    size_t operator()(const std::array<uint32_t, 6> &K) const {
      uint64_t H = hashPair(K[0], K[1]);
      H = hashCombine(H, hashPair(K[2], K[3]));
      return static_cast<size_t>(hashCombine(H, hashPair(K[4], K[5])));
    }
  };
  std::unordered_set<std::array<uint32_t, 6>, CallEdgeKeyHash> CallEdgeSeen;

  Impl(const Program &P, PTAOptions Opts)
      : P(P), Opts(std::move(Opts)),
        UseDelta(this->Opts.Solver == PTASolver::DeltaLCD) {}

  // --- Node management. ---
  NodeId newNode() {
    Pts.emplace_back();
    Delta.emplace_back();
    Succ.emplace_back();
    Loads.emplace_back();
    Stores.emplace_back();
    Calls.emplace_back();
    InWorklist.push_back(false);
    return static_cast<NodeId>(Pts.size() - 1);
  }

  /// Current representative of \p N. Nodes merged by cycle collapsing
  /// forward to their union-find root; until a first collapse (always, in
  /// Naive mode) the identity — skip the out-of-line union-find walk that
  /// would otherwise tax every node lookup.
  bool HasMerges = false;
  NodeId find(NodeId N) { return HasMerges ? UF.find(N) : N; }

  void initGlobalNodes() {
    for (GlobalId G = 0; G < P.Globals.size(); ++G) {
      NodeId N = newNode();
      (void)N;
      assert(N == G && "global nodes must come first");
    }
  }

  NodeId globalNode(GlobalId G) { return find(G); }

  NodeId varNode(uint32_t MC, VarId V) {
    auto Key = std::make_pair(MC, V);
    auto It = VarNodes.find(Key);
    if (It != VarNodes.end())
      return find(It->second);
    NodeId N = newNode();
    VarNodes.emplace(Key, N);
    return N;
  }

  NodeId fieldNode(AbsLocId L, FieldId F) {
    auto Key = std::make_pair(L, F);
    auto It = FieldNodes.find(Key);
    if (It != FieldNodes.end())
      return find(It->second);
    NodeId N = newNode();
    FieldNodes.emplace(Key, N);
    return N;
  }

  NodeId retNode(uint32_t MC) {
    auto It = RetNodes.find(MC);
    if (It != RetNodes.end())
      return find(It->second);
    NodeId N = newNode();
    RetNodes.emplace(MC, N);
    return N;
  }

  void push(NodeId N) {
    if (!InWorklist[N]) {
      InWorklist[N] = true;
      Worklist.push_back(N);
    }
  }

  bool addToPts(NodeId N, AbsLocId L) {
    N = find(N);
    if (UseDelta) {
      if (Pts[N].contains(L) || !Delta[N].insert(L))
        return false;
      push(N);
      return true;
    }
    if (Pts[N].insert(L)) {
      push(N);
      return true;
    }
    return false;
  }

  void addEdge(NodeId From, NodeId To) {
    From = find(From);
    To = find(To);
    if (From == To)
      return;
    if (!Succ[From].insert(To))
      return;
    ++NumEdgesTotal;
    ++EdgesSinceScc;
    if (UseDelta) {
      // Seed only the already-propagated prefix; From's pending Delta
      // reaches To when From is popped (To is a successor now).
      if (Delta[To].insertAllExcept(Pts[From], Pts[To]))
        push(To);
      return;
    }
    if (Pts[To].insertAll(Pts[From]))
      push(To);
  }

  // --- Context policy. ---
  bool ctxSensitive(FuncId F) const {
    if (Opts.Policy == CtxPolicy::Insensitive)
      return false;
    const Function &Fn = P.Funcs[F];
    if (Fn.IsStatic || Fn.Owner == InvalidId)
      return false;
    if (Opts.Policy == CtxPolicy::AllObjSens)
      return true;
    // ContainerCFA: the owner or an ancestor is flagged container.
    ClassId C = Fn.Owner;
    while (C != InvalidId) {
      if (P.Classes[C].isContainer())
        return true;
      C = P.Classes[C].Super;
    }
    return false;
  }

  uint32_t internMC(FuncId F, AbsLocId Recv) {
    auto Key = std::make_pair(F, Recv);
    auto It = MCIndex.find(Key);
    if (It != MCIndex.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(MCs.size());
    MCs.push_back(Key);
    MCIndex.emplace(Key, Id);
    MCProcessed.push_back(false);
    MCQueue.push_back(Id);
    return Id;
  }

  // --- Constraint attachment (seeds with the propagated prefix). ---
  //
  // Seeding reads Pts only: any pending Delta reaches the new constraint
  // when the base node is popped (nonempty Delta implies the node is in
  // the worklist), so each (constraint, location) pair is processed
  // exactly once. The seed set is copied out first — the loop bodies
  // create nodes, which reallocates the per-node vectors and would
  // invalidate an iterator into Pts[Base].

  void attachLoad(NodeId Base, FieldId F, NodeId Dst) {
    Base = find(Base);
    Loads[Base].push_back({F, Dst});
    IdSet Seed = Pts[Base];
    for (AbsLocId L : Seed)
      addEdge(fieldNode(L, F), Dst);
  }

  void attachStore(NodeId Base, FieldId F, NodeId Src) {
    Base = find(Base);
    Stores[Base].push_back({F, Src});
    IdSet Seed = Pts[Base];
    for (AbsLocId L : Seed)
      addEdge(Src, fieldNode(L, F));
  }

  void attachCall(NodeId Recv, CallCons C) {
    Recv = find(Recv);
    Calls[Recv].push_back(std::move(C));
    // Copy needed: processCallLoc may reallocate Calls.
    CallCons Cons = Calls[Recv].back();
    IdSet Seed = Pts[Recv];
    for (AbsLocId L : Seed)
      processCallLoc(Cons, L);
  }

  void recordCallEdge(const ProgramPoint &At, uint32_t CallerMC,
                      FuncId Callee, AbsLocId CalleeCtx) {
    std::array<uint32_t, 6> Key{At.F, At.B, At.Idx, CallerMC, Callee,
                                CalleeCtx};
    if (!CallEdgeSeen.insert(Key).second)
      return;
    CallEdge E;
    E.At = At;
    E.Caller = MCs[CallerMC].first;
    E.CallerCtx = MCs[CallerMC].second;
    E.Callee = Callee;
    E.CalleeCtx = CalleeCtx;
    CallEdges.push_back(E);
  }

  void processCallLoc(const CallCons &C, AbsLocId L) {
    uint64_t Key = (static_cast<uint64_t>(C.Id) << 32) | L;
    if (!CallProcessed.insert(Key).second)
      return;
    const AllocSiteInfo &Site = P.AllocSites[Locs.site(L)];
    FuncId Callee;
    if (C.IsVirtual) {
      if (Site.IsArray)
        return; // No methods on arrays.
      Callee = P.resolveVirtual(Site.Class, C.Method);
      if (Callee == InvalidId)
        return;
    } else {
      Callee = C.Direct;
      // Filter receivers that cannot be instances of the owner.
      if (P.Funcs[Callee].Owner != InvalidId && !Site.IsArray &&
          !P.isSubclassOf(Site.Class, P.Funcs[Callee].Owner))
        return;
    }
    AbsLocId Ctx = ctxSensitive(Callee) ? L : InvalidId;
    uint32_t CalleeMC = internMC(Callee, Ctx);
    const Function &CalleeFn = P.Funcs[Callee];
    // Bind receiver exactly to this location.
    if (CalleeFn.NumParams > 0)
      addToPts(varNode(CalleeMC, 0), L);
    // Bind remaining arguments.
    size_t N = std::min<size_t>(C.ArgNodes.size(),
                                CalleeFn.NumParams > 0
                                    ? CalleeFn.NumParams - 1
                                    : 0);
    for (size_t I = 0; I < N; ++I)
      addEdge(C.ArgNodes[I], varNode(CalleeMC, static_cast<VarId>(I + 1)));
    if (C.DstNode != NoNode)
      addEdge(retNode(CalleeMC), C.DstNode);
    recordCallEdge(C.At, C.CallerMC, Callee, Ctx);
  }

  /// Direct, context-insensitive call binding.
  void bindDirectCall(const ProgramPoint &At, uint32_t MC,
                      const Instruction &I) {
    FuncId Callee = I.DirectCallee;
    uint32_t CalleeMC = internMC(Callee, InvalidId);
    for (size_t K = 0; K < I.Args.size(); ++K)
      addEdge(varNode(MC, I.Args[K]),
              varNode(CalleeMC, static_cast<VarId>(K)));
    if (I.Dst != NoVar)
      addEdge(retNode(CalleeMC), varNode(MC, I.Dst));
    recordCallEdge(At, MC, Callee, InvalidId);
  }

  /// Heap context for an allocation in method context \p MC.
  AbsLocId allocCtx(uint32_t MC) const {
    auto [F, Recv] = MCs[MC];
    if (Recv == InvalidId)
      return InvalidId;
    if (!ctxSensitive(F))
      return InvalidId;
    if (Locs.depth(Recv) >= Opts.MaxCtxDepth)
      return InvalidId;
    return Recv;
  }

  // --- Constraint generation for one method context. ---
  void genConstraints(uint32_t MC) {
    auto [F, Recv] = MCs[MC];
    (void)Recv;
    const Function &Fn = P.Funcs[F];
    for (BlockId B = 0; B < Fn.Blocks.size(); ++B) {
      const BasicBlock &BB = Fn.Blocks[B];
      for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
        const Instruction &I = BB.Insts[Idx];
        ProgramPoint At{F, B, Idx};
        switch (I.Op) {
        case Opcode::Assign:
          addEdge(varNode(MC, I.Src), varNode(MC, I.Dst));
          break;
        case Opcode::ConstInt:
        case Opcode::ConstNull:
        case Opcode::Havoc:
        case Opcode::ArrayLen:
        case Opcode::Binop:
          break; // Data-only.
        case Opcode::New:
        case Opcode::NewArray:
          addToPts(varNode(MC, I.Dst), Locs.intern(I.Alloc, allocCtx(MC)));
          break;
        case Opcode::Load:
          attachLoad(varNode(MC, I.Src), I.Field, varNode(MC, I.Dst));
          break;
        case Opcode::ArrayLoad:
          attachLoad(varNode(MC, I.Src), P.ElemsField, varNode(MC, I.Dst));
          break;
        case Opcode::Store:
          if (!Opts.AnnotatedEmptyFields.contains(I.Field))
            attachStore(varNode(MC, I.Dst), I.Field, varNode(MC, I.Src));
          break;
        case Opcode::ArrayStore:
          if (!Opts.AnnotatedEmptyFields.contains(P.ElemsField))
            attachStore(varNode(MC, I.Dst), P.ElemsField,
                        varNode(MC, I.Src));
          break;
        case Opcode::LoadStatic:
          addEdge(globalNode(I.Global), varNode(MC, I.Dst));
          break;
        case Opcode::StoreStatic:
          if (!Opts.AnnotatedEmptyGlobals.contains(I.Global))
            addEdge(varNode(MC, I.Src), globalNode(I.Global));
          break;
        case Opcode::Call: {
          if (I.IsVirtual || (I.DirectCallee != InvalidId &&
                              ctxSensitive(I.DirectCallee))) {
            CallCons C;
            C.Id = NextCallConsId++;
            C.At = At;
            C.CallerMC = MC;
            C.IsVirtual = I.IsVirtual;
            C.Method = I.Method;
            C.Direct = I.DirectCallee;
            for (size_t K = 1; K < I.Args.size(); ++K)
              C.ArgNodes.push_back(varNode(MC, I.Args[K]));
            C.DstNode = I.Dst == NoVar ? NoNode : varNode(MC, I.Dst);
            attachCall(varNode(MC, I.Args[0]), C);
          } else {
            bindDirectCall(At, MC, I);
          }
          break;
        }
        }
      }
      const Terminator &T = BB.Term;
      if (T.Kind == TermKind::Return && T.HasRetVal)
        addEdge(varNode(MC, T.RetVal), retNode(MC));
    }
  }

  // --- Cycle collapsing (DeltaLCD). ---

  /// Collects every node on a copy-edge path Start -> ... -> Target (all
  /// such nodes lie on a cycle through the already-present Target -> Start
  /// edge) into \p Members. Nodes whose reachability is still being
  /// resolved when revisited are treated as non-reaching — conservative:
  /// a missed member is picked up by a later probe, a false member never
  /// appears, so only true strongly-connected nodes are ever merged.
  bool collectCycle(NodeId Start, NodeId Target,
                    std::vector<NodeId> &Members) {
    // Epoch-stamped tri-state: Unvisited / InProgress / Done; a parallel
    // bit records "reaches Target" for Done nodes.
    constexpr uint32_t InProgress = 1, DoneNo = 2, DoneYes = 3;
    if (DfsState.size() < Pts.size())
      DfsState.resize(Pts.size(), 0);
    ++DfsEpoch;
    auto State = [&](NodeId N) -> uint32_t {
      uint32_t V = DfsState[N];
      return (V >> 2) == DfsEpoch ? (V & 3) : 0;
    };
    auto SetState = [&](NodeId N, uint32_t S) {
      DfsState[N] = (DfsEpoch << 2) | S;
    };

    struct Frame {
      NodeId N;
      IdSet::const_iterator It, End;
      bool Reaches = false;
    };
    std::vector<Frame> Stack;
    Stack.push_back({Start, Succ[Start].begin(), Succ[Start].end(), false});
    SetState(Start, InProgress);
    while (!Stack.empty()) {
      Frame &F = Stack.back();
      if (F.It != F.End) {
        NodeId W = find(*F.It);
        ++F.It;
        if (W == Target) {
          F.Reaches = true;
          continue;
        }
        uint32_t S = State(W);
        if (S == DoneYes)
          F.Reaches = true;
        else if (S == 0 && W != F.N) {
          SetState(W, InProgress);
          Stack.push_back({W, Succ[W].begin(), Succ[W].end(), false});
        }
        continue;
      }
      SetState(F.N, F.Reaches ? DoneYes : DoneNo);
      if (F.Reaches)
        Members.push_back(F.N);
      bool Reached = F.Reaches;
      Stack.pop_back();
      if (!Stack.empty() && Reached)
        Stack.back().Reaches = true;
    }
    if (Members.empty())
      return false;
    Members.push_back(Target);
    return true;
  }

  /// Merges the distinct representatives in \p Members into one node. The
  /// merged node restarts with everything in Delta, so its (concatenated)
  /// constraint list and successors see the union exactly once; the
  /// dedup sets make the re-matching cheap.
  void collapse(std::vector<NodeId> &Members) {
    HasMerges = true;
    NodeId Rep = Members[0];
    for (NodeId M : Members)
      Rep = UF.unite(Rep, M);
    Rep = find(Rep);

    IdSet AllLocs, NewSucc;
    std::vector<LoadCons> NewLoads;
    std::vector<StoreCons> NewStores;
    std::vector<CallCons> NewCalls;
    for (NodeId M : Members) {
      AllLocs.insertAll(Pts[M]);
      AllLocs.insertAll(Delta[M]);
      for (NodeId S : Succ[M]) {
        NodeId SR = find(S);
        if (SR != Rep)
          NewSucc.insert(SR);
      }
      NewLoads.insert(NewLoads.end(), Loads[M].begin(), Loads[M].end());
      NewStores.insert(NewStores.end(), Stores[M].begin(), Stores[M].end());
      NewCalls.insert(NewCalls.end(), Calls[M].begin(), Calls[M].end());
    }
    // Cycle members frequently carry textually duplicate constraints
    // (every variable in a collapsed ring loading the same field, say);
    // matching each duplicate against every location would erase the
    // win from merging, so dedup the concatenated lists by value.
    std::sort(NewLoads.begin(), NewLoads.end(),
              [](const LoadCons &A, const LoadCons &B) {
                return std::tie(A.F, A.Dst) < std::tie(B.F, B.Dst);
              });
    NewLoads.erase(std::unique(NewLoads.begin(), NewLoads.end(),
                               [](const LoadCons &A, const LoadCons &B) {
                                 return A.F == B.F && A.Dst == B.Dst;
                               }),
                   NewLoads.end());
    std::sort(NewStores.begin(), NewStores.end(),
              [](const StoreCons &A, const StoreCons &B) {
                return std::tie(A.F, A.Src) < std::tie(B.F, B.Src);
              });
    NewStores.erase(std::unique(NewStores.begin(), NewStores.end(),
                                [](const StoreCons &A, const StoreCons &B) {
                                  return A.F == B.F && A.Src == B.Src;
                                }),
                    NewStores.end());
    for (NodeId M : Members) {
      Pts[M].clear();
      Delta[M].clear();
      Succ[M].clear();
      Loads[M] = {};
      Stores[M] = {};
      Calls[M] = {};
    }
    Pts[Rep] = IdSet();
    Delta[Rep] = std::move(AllLocs);
    Succ[Rep] = std::move(NewSucc);
    Loads[Rep] = std::move(NewLoads);
    Stores[Rep] = std::move(NewStores);
    Calls[Rep] = std::move(NewCalls);
    ++NumCyclesCollapsed;
    NumNodesMerged += Members.size() - 1;
    if (!Delta[Rep].empty())
      push(Rep);
  }

  /// Structural cycle collapse: one Tarjan pass over the current copy
  /// graph, merging every multi-node SCC. Constraint generation emits
  /// whole functions' worth of copy edges at once, so cycles that exist
  /// syntactically (loops re-assigning through a chain of locals) are
  /// present before any propagation — value-based LCD would only notice
  /// them after sets have already crossed every edge. Runs at the
  /// MC-drain boundary when enough new edges accumulated; late cycles
  /// formed one edge at a time by load/store processing are LCD's job.
  void sccCollapse() {
    EdgesSinceScc = 0;
    ++NumSccPasses;
    size_t NumNodes = Pts.size();
    std::vector<uint32_t> Index(NumNodes, 0), Low(NumNodes, 0);
    std::vector<bool> OnStack(NumNodes, false);
    std::vector<NodeId> SccStack;
    uint32_t NextIndex = 1;
    struct Frame {
      NodeId N;
      IdSet::const_iterator It, End;
    };
    std::vector<Frame> Stack;
    std::vector<std::vector<NodeId>> Sccs;
    for (NodeId Root = 0; Root < NumNodes; ++Root) {
      if (find(Root) != Root || Index[Root] != 0)
        continue;
      Index[Root] = Low[Root] = NextIndex++;
      SccStack.push_back(Root);
      OnStack[Root] = true;
      Stack.push_back({Root, Succ[Root].begin(), Succ[Root].end()});
      while (!Stack.empty()) {
        Frame &F = Stack.back();
        if (F.It != F.End) {
          NodeId W = find(*F.It);
          ++F.It;
          if (W == F.N)
            continue;
          if (Index[W] == 0) {
            Index[W] = Low[W] = NextIndex++;
            SccStack.push_back(W);
            OnStack[W] = true;
            Stack.push_back({W, Succ[W].begin(), Succ[W].end()});
          } else if (OnStack[W] && Index[W] < Low[F.N]) {
            Low[F.N] = Index[W];
          }
          continue;
        }
        NodeId N = F.N;
        Stack.pop_back();
        if (!Stack.empty() && Low[N] < Low[Stack.back().N])
          Low[Stack.back().N] = Low[N];
        if (Low[N] == Index[N]) {
          std::vector<NodeId> Members;
          NodeId M;
          do {
            M = SccStack.back();
            SccStack.pop_back();
            OnStack[M] = false;
            Members.push_back(M);
          } while (M != N);
          if (Members.size() > 1)
            Sccs.push_back(std::move(Members));
        }
      }
    }
    // Collapse after the traversal: collapse() rewrites Succ sets the DFS
    // frames above would otherwise be iterating. SCCs are disjoint, so
    // the collapses cannot interfere with each other.
    for (auto &Members : Sccs)
      collapse(Members);
  }

  // --- Main solve loops. ---

  void solve() {
    initGlobalNodes();
    if (P.EntryFunc != InvalidId)
      internMC(P.EntryFunc, InvalidId);
    while (!MCQueue.empty() || !Worklist.empty()) {
      while (!MCQueue.empty()) {
        uint32_t MC = MCQueue.front();
        MCQueue.pop_front();
        if (MCProcessed[MC])
          continue;
        MCProcessed[MC] = true;
        genConstraints(MC);
      }
      // A Tarjan pass is O(nodes + edges): worth it only when the graph
      // grew substantially since the last one.
      if (UseDelta && EdgesSinceScc >= 64 &&
          EdgesSinceScc * 4 >= NumEdgesTotal)
        sccCollapse();
      while (!Worklist.empty()) {
        NodeId N = Worklist.front();
        Worklist.pop_front();
        InWorklist[N] = false;
        if (UseDelta)
          popDelta(N);
        else
          popNaive(N);
        if (!MCQueue.empty())
          break; // Generate constraints for newly reached methods first.
      }
    }
  }

  /// Naive pop: re-propagate the node's entire points-to set along every
  /// edge and constraint (the reference solver).
  void popNaive(NodeId N) {
    // Copy: constraint processing may add nodes / grow the node vectors.
    IdSet Cur = Pts[N];
    for (uint32_t S : Succ[N])
      if (Pts[S].insertAll(Cur))
        push(S);
    for (size_t I = 0; I < Loads[N].size(); ++I) {
      LoadCons LC = Loads[N][I];
      for (AbsLocId L : Cur)
        addEdge(fieldNode(L, LC.F), LC.Dst);
    }
    for (size_t I = 0; I < Stores[N].size(); ++I) {
      StoreCons SC = Stores[N][I];
      for (AbsLocId L : Cur)
        addEdge(SC.Src, fieldNode(L, SC.F));
    }
    for (size_t I = 0; I < Calls[N].size(); ++I) {
      CallCons CC = Calls[N][I];
      for (AbsLocId L : Cur)
        processCallLoc(CC, L);
    }
  }

  /// Delta pop: move the pending set into Pts, flow only it to successors
  /// and constraints, and probe edges that did not grow for cycles.
  void popDelta(NodeId N) {
    if (find(N) != N || Delta[N].empty())
      return; // Merged away, or drained by an earlier pop this round.
    IdSet D = std::move(Delta[N]);
    Delta[N] = IdSet();
    // Account the in-flight delta set plus the promotion it just caused in
    // Pts; there is no sound way to shrink a points-to fixpoint, so a
    // crossed ceiling only counts a hit here and the driver aborts the run
    // (exit 4) after the solve.
    uint64_t Charged = 0;
    if (Opts.Gov) {
      Charged = D.heapBytes();
      if (!Opts.Gov->charge(Charged))
        Opts.Gov->MemCeilingHits.fetch_add(1, std::memory_order_relaxed);
    }
    Pts[N].insertAll(D);
    ++NumDeltaPops;
    NumDeltaLocs += D.size();
    DeltaSizeHist.record(D.size());

    // Propagate along copy edges; a no-growth edge between nodes with
    // equal points-to sets is a cycle candidate. Collapsing is deferred
    // past the constraint matching below: it rewrites Succ and the
    // constraint lists we are iterating.
    std::vector<NodeId> CycleStarts;
    for (NodeId SRaw : Succ[N]) {
      NodeId S = find(SRaw);
      if (S == N)
        continue;
      if (Delta[S].insertAllExcept(D, Pts[S])) {
        push(S);
      } else if (Pts[S].size() == Pts[N].size() &&
                 CycleChecked
                     .insert((static_cast<uint64_t>(N) << 32) | S)
                     .second) {
        ++NumLcdProbes;
        if (Pts[S] == Pts[N])
          CycleStarts.push_back(S);
      }
    }

    // Match the delta against the node's constraints. Indexed access with
    // per-element copies: fieldNode/varNode below can reallocate the
    // outer per-node vectors, but never append to this node's own lists.
    for (size_t I = 0; I < Loads[N].size(); ++I) {
      LoadCons LC = Loads[N][I];
      for (AbsLocId L : D)
        addEdge(fieldNode(L, LC.F), LC.Dst);
    }
    for (size_t I = 0; I < Stores[N].size(); ++I) {
      StoreCons SC = Stores[N][I];
      for (AbsLocId L : D)
        addEdge(SC.Src, fieldNode(L, SC.F));
    }
    for (size_t I = 0; I < Calls[N].size(); ++I) {
      CallCons CC = Calls[N][I];
      for (AbsLocId L : D)
        processCallLoc(CC, L);
    }

    for (NodeId Start : CycleStarts) {
      NodeId Target = find(N);
      Start = find(Start);
      if (Start == Target)
        continue; // Already merged by an earlier probe.
      std::vector<NodeId> Members;
      if (collectCycle(Start, Target, Members))
        collapse(Members);
    }
    if (Opts.Gov && Charged)
      Opts.Gov->release(Charged);
  }

  // --- Canonical renumbering. ---
  //
  // Abstract locations are interned in the order method contexts are
  // reached, which depends on the solver's worklist schedule. Renumbering
  // them by the schedule-independent key (depth, allocation site,
  // renumbered parent context) makes every published id — and therefore
  // every IdSet iteration order, report byte, and golden file — a pure
  // function of the program and the analysis options. See docs/PTA.md.
  void canonicalizeLocs() {
    size_t N = Locs.size();
    std::vector<AbsLocId> NewId(N, InvalidId);
    std::vector<std::vector<AbsLocId>> ByDepth;
    for (AbsLocId L = 0; L < N; ++L) {
      uint32_t D = Locs.depth(L);
      if (ByDepth.size() < D)
        ByDepth.resize(D);
      ByDepth[D - 1].push_back(L);
    }
    AbsLocId Next = 0;
    for (auto &Level : ByDepth) {
      // (site, ctx) pairs are interned uniquely, and every context of a
      // depth-d location has depth d-1 and is already renumbered, so
      // (site, new parent id) is a strict total order within the level.
      std::sort(Level.begin(), Level.end(), [&](AbsLocId A, AbsLocId B) {
        AllocSiteId SA = Locs.site(A), SB = Locs.site(B);
        AbsLocId CA = Locs.context(A), CB = Locs.context(B);
        uint32_t PA = CA == InvalidId ? 0 : NewId[CA] + 1;
        uint32_t PB = CB == InvalidId ? 0 : NewId[CB] + 1;
        return std::tie(SA, PA) < std::tie(SB, PB);
      });
      for (AbsLocId L : Level)
        NewId[L] = Next++;
    }

    bool Identity = true;
    for (AbsLocId L = 0; L < N && Identity; ++L)
      Identity = NewId[L] == L;
    if (Identity)
      return;

    // Rebuild the table in canonical order (parents always precede
    // children, so the remapped context is already interned).
    std::vector<AbsLocId> OldOf(N);
    for (AbsLocId L = 0; L < N; ++L)
      OldOf[NewId[L]] = L;
    AbsLocTable NewLocs;
    for (AbsLocId NL = 0; NL < N; ++NL) {
      AbsLocId Old = OldOf[NL];
      AbsLocId Ctx = Locs.context(Old);
      AbsLocId Got = NewLocs.intern(
          Locs.site(Old), Ctx == InvalidId ? InvalidId : NewId[Ctx]);
      (void)Got;
      assert(Got == NL && "canonical interning out of order");
    }
    Locs = std::move(NewLocs);

    auto RemapSet = [&](IdSet &S) {
      if (S.empty())
        return;
      std::vector<uint32_t> Ids;
      Ids.reserve(S.size());
      for (uint32_t L : S)
        Ids.push_back(NewId[L]);
      S = IdSet(std::move(Ids));
    };
    for (IdSet &S : Pts)
      RemapSet(S);
    for (IdSet &S : Delta)
      RemapSet(S); // Empty at fixpoint; kept for safety.
    for (auto &[F, Recv] : MCs)
      if (Recv != InvalidId)
        Recv = NewId[Recv];
    for (CallEdge &E : CallEdges) {
      if (E.CallerCtx != InvalidId)
        E.CallerCtx = NewId[E.CallerCtx];
      if (E.CalleeCtx != InvalidId)
        E.CalleeCtx = NewId[E.CalleeCtx];
    }
    std::unordered_map<std::pair<AbsLocId, FieldId>, NodeId, VarKeyHash>
        NewFieldNodes;
    NewFieldNodes.reserve(FieldNodes.size());
    for (const auto &[Key, Node] : FieldNodes)
      NewFieldNodes.emplace(std::make_pair(NewId[Key.first], Key.second),
                            Node);
    FieldNodes = std::move(NewFieldNodes);
  }

  // --- Result finalization. ---
  void finalize() {
    canonicalizeLocs();

    // Canonical call-edge order: the discovery order depends on the
    // worklist schedule, every consumer (witness search, report) must
    // not.
    std::sort(CallEdges.begin(), CallEdges.end(),
              [](const CallEdge &A, const CallEdge &B) {
                return std::tie(A.At.F, A.At.B, A.At.Idx, A.Callee,
                                A.CalleeCtx, A.Caller, A.CallerCtx) <
                       std::tie(B.At.F, B.At.B, B.At.Idx, B.Callee,
                                B.CalleeCtx, B.Caller, B.CallerCtx);
              });

    R->P = &P;
    R->VarPts.assign(P.Funcs.size(), {});
    for (FuncId F = 0; F < P.Funcs.size(); ++F)
      R->VarPts[F].assign(P.Funcs[F].NumVars, IdSet());
    for (const auto &[Key, RawN] : VarNodes) {
      auto [MC, V] = Key;
      auto [F, Ctx] = MCs[MC];
      NodeId N = find(RawN);
      if (V < R->VarPts[F].size())
        R->VarPts[F][V].insertAll(Pts[N]);
      auto &PerCtx = R->VarPtsCtx[{F, Ctx}];
      if (PerCtx.empty())
        PerCtx.assign(P.Funcs[F].NumVars, IdSet());
      if (V < PerCtx.size())
        PerCtx[V].insertAll(Pts[N]);
    }
    R->MaxCtxDepth = Opts.MaxCtxDepth;
    R->GlobalPts.assign(P.Globals.size(), IdSet());
    for (GlobalId G = 0; G < P.Globals.size(); ++G)
      R->GlobalPts[G] = Pts[find(G)];
    for (const auto &[Key, N] : FieldNodes)
      R->FieldPts[Key].insertAll(Pts[find(N)]);

    // Call graph.
    R->Callers.assign(P.Funcs.size(), {});
    for (const CallEdge &E : CallEdges) {
      auto &CalleeList = R->Callees[E.At];
      if (std::find(CalleeList.begin(), CalleeList.end(), E.Callee) ==
          CalleeList.end())
        CalleeList.push_back(E.Callee);
      R->EdgesAt[E.At].push_back(E);
      R->Callers[E.Callee].push_back(E);
    }

    // Reachability.
    R->ReachableMask.assign(P.Funcs.size(), false);
    for (uint32_t MC = 0; MC < MCs.size(); ++MC)
      if (MCProcessed[MC])
        R->ReachableMask[MCs[MC].first] = true;
    for (FuncId F = 0; F < P.Funcs.size(); ++F)
      if (R->ReachableMask[F])
        R->Reachable.push_back(F);

    // Transitive mod sets over the call graph.
    R->ModSets.assign(P.Funcs.size(), ModSet());
    for (FuncId F : R->Reachable)
      R->ModSets[F] = P.Funcs[F].LocalMods;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const CallEdge &E : CallEdges)
        if (R->ModSets[E.Caller].mergeFrom(R->ModSets[E.Callee]))
          Changed = true;
    }

    // Heap-granular mod summaries (WALA ModRef style): direct writes with
    // their base points-to sets, then the transitive closure.
    R->HeapMods.assign(P.Funcs.size(), PointsToResult::HeapMod());
    for (FuncId F : R->Reachable) {
      PointsToResult::HeapMod &HM = R->HeapMods[F];
      const Function &Fn = P.Funcs[F];
      for (const BasicBlock &BB : Fn.Blocks) {
        for (const Instruction &I : BB.Insts) {
          switch (I.Op) {
          case Opcode::Store:
            HM.FieldBases[I.Field].insertAll(R->ptVar(F, I.Dst));
            break;
          case Opcode::ArrayStore:
            HM.FieldBases[P.ElemsField].insertAll(R->ptVar(F, I.Dst));
            break;
          case Opcode::StoreStatic:
            HM.Globals.insert(I.Global);
            break;
          default:
            break;
          }
        }
      }
    }
    Changed = true;
    while (Changed) {
      Changed = false;
      for (const CallEdge &E : CallEdges)
        if (R->HeapMods[E.Caller].mergeFrom(R->HeapMods[E.Callee]))
          Changed = true;
    }

    // Locations per allocation site.
    R->SiteLocs.assign(P.AllocSites.size(), {});
    for (AbsLocId L = 0; L < Locs.size(); ++L)
      R->SiteLocs[Locs.site(L)].push_back(L);

    R->ReceiverCtxFuncs.assign(P.Funcs.size(), false);
    for (FuncId F = 0; F < P.Funcs.size(); ++F)
      R->ReceiverCtxFuncs[F] = ctxSensitive(F);
  }
};

PointsToAnalysis::PointsToAnalysis(const Program &P, PTAOptions Opts)
    : P(P), Opts(std::move(Opts)) {}

std::unique_ptr<PointsToResult> PointsToAnalysis::run() {
  Impl I(P, Opts);
  {
    ScopedTimer ST(I.R->Effort, "hist.pta.solveNanos");
    I.solve();
    I.finalize();
  }
  PointsToResult &R = *I.R;
  R.Effort.bump("pta.absLocs", R.Locs.size());
  R.Effort.bump("pta.edges", R.numEdges());
  R.Effort.bump("pta.reachableFuncs", R.reachableFuncs().size());
  uint64_t CallEdges = 0;
  for (const auto &Cs : R.Callers)
    CallEdges += Cs.size();
  R.Effort.bump("pta.callEdges", CallEdges);
  if (I.UseDelta) {
    R.Effort.bump("pta.deltaPropagations", I.NumDeltaPops);
    R.Effort.bump("pta.deltaLocsPropagated", I.NumDeltaLocs);
    R.Effort.bump("pta.lcdProbes", I.NumLcdProbes);
    R.Effort.bump("pta.sccPasses", I.NumSccPasses);
    R.Effort.bump("pta.cyclesCollapsed", I.NumCyclesCollapsed);
    R.Effort.bump("pta.nodesMerged", I.NumNodesMerged);
    R.Effort.mergeHistogram("hist.pta.deltaSize", I.DeltaSizeHist);
  }
  return std::move(I.R);
}

//===----------------------------------------------------------------------===//
// PointsToResult queries
//===----------------------------------------------------------------------===//

const IdSet &PointsToResult::ptVar(FuncId F, VarId V) const {
  if (F >= VarPts.size() || V >= VarPts[F].size())
    return EmptySet;
  return VarPts[F][V];
}

const IdSet &PointsToResult::ptVarCtx(FuncId F, AbsLocId Ctx,
                                      VarId V) const {
  auto It = VarPtsCtx.find({F, Ctx});
  if (It == VarPtsCtx.end() || V >= It->second.size())
    return ptVar(F, V); // Unknown context: fall back to the union.
  return It->second[V];
}

const IdSet &PointsToResult::ptGlobal(GlobalId G) const {
  if (G >= GlobalPts.size())
    return EmptySet;
  return GlobalPts[G];
}

const IdSet &PointsToResult::ptField(AbsLocId L, FieldId Fld) const {
  auto It = FieldPts.find({L, Fld});
  return It == FieldPts.end() ? EmptySet : It->second;
}

IdSet PointsToResult::ptVarField(FuncId F, VarId V, FieldId Fld) const {
  IdSet Out;
  for (AbsLocId L : ptVar(F, V))
    Out.insertAll(ptField(L, Fld));
  return Out;
}

std::vector<std::pair<FieldId, AbsLocId>>
PointsToResult::fieldEdges(AbsLocId L) const {
  std::vector<std::pair<FieldId, AbsLocId>> Out;
  auto It = FieldPts.lower_bound({L, 0});
  for (; It != FieldPts.end() && It->first.first == L; ++It)
    for (AbsLocId T : It->second)
      Out.push_back({It->first.second, T});
  return Out;
}

const std::vector<FuncId> &
PointsToResult::calleesAt(const ProgramPoint &At) const {
  auto It = Callees.find(At);
  return It == Callees.end() ? NoFuncs : It->second;
}

const std::vector<CallEdge> &PointsToResult::callersOf(FuncId F) const {
  if (F >= Callers.size())
    return NoEdges;
  return Callers[F];
}

std::vector<CallEdge>
PointsToResult::calleesAtCtx(const ProgramPoint &At,
                             AbsLocId CallerCtx) const {
  std::vector<CallEdge> Out;
  auto It = EdgesAt.find(At);
  if (It == EdgesAt.end())
    return Out;
  for (const CallEdge &E : It->second)
    if (E.CallerCtx == CallerCtx)
      Out.push_back(E);
  return Out;
}

std::vector<CallEdge> PointsToResult::callersOfCtx(FuncId F,
                                                   AbsLocId Ctx) const {
  std::vector<CallEdge> Out;
  for (const CallEdge &E : callersOf(F))
    if (E.CalleeCtx == Ctx)
      Out.push_back(E);
  return Out;
}

AbsLocId PointsToResult::allocContextFor(FuncId F,
                                         AbsLocId FrameCtx) const {
  if (!receiverIsHeapContext(F) || FrameCtx == InvalidId)
    return InvalidId;
  if (Locs.depth(FrameCtx) >= MaxCtxDepth)
    return InvalidId;
  return FrameCtx;
}

bool PointsToResult::isReachable(FuncId F) const {
  return F < ReachableMask.size() && ReachableMask[F];
}

const ModSet &PointsToResult::modSetOf(FuncId F) const {
  static const ModSet Empty;
  if (F >= ModSets.size())
    return Empty;
  return ModSets[F];
}

const PointsToResult::HeapMod &PointsToResult::heapModOf(FuncId F) const {
  static const HeapMod Empty;
  if (F >= HeapMods.size())
    return Empty;
  return HeapMods[F];
}

const std::vector<AbsLocId> &PointsToResult::locsOfSite(AllocSiteId S) const {
  static const std::vector<AbsLocId> Empty;
  if (S >= SiteLocs.size())
    return Empty;
  return SiteLocs[S];
}

bool PointsToResult::receiverIsHeapContext(FuncId F) const {
  return F < ReceiverCtxFuncs.size() && ReceiverCtxFuncs[F];
}

IdSet PointsToResult::locsOfClassDerivedFrom(const Program &Prog,
                                             ClassId Base) const {
  IdSet Out;
  for (AbsLocId L = 0; L < Locs.size(); ++L) {
    const AllocSiteInfo &Site = Prog.AllocSites[Locs.site(L)];
    if (!Site.IsArray && Prog.isSubclassOf(Site.Class, Base))
      Out.insert(L);
  }
  return Out;
}

std::vector<ProducerSite>
PointsToResult::producersOfFieldEdge(AbsLocId Base, FieldId Fld,
                                     AbsLocId Target) const {
  std::vector<ProducerSite> Out;
  for (const auto &[MC, PerVar] : VarPtsCtx) {
    auto [F, Ctx] = MC;
    const Function &Fn = P->Funcs[F];
    for (BlockId B = 0; B < Fn.Blocks.size(); ++B) {
      const BasicBlock &BB = Fn.Blocks[B];
      for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
        const Instruction &I = BB.Insts[Idx];
        bool IsFieldStore = I.Op == Opcode::Store && I.Field == Fld;
        bool IsArrayStore =
            I.Op == Opcode::ArrayStore && Fld == P->ElemsField;
        if (!IsFieldStore && !IsArrayStore)
          continue;
        if (I.Dst < PerVar.size() && PerVar[I.Dst].contains(Base) &&
            I.Src < PerVar.size() && PerVar[I.Src].contains(Target))
          Out.push_back({{F, B, Idx}, Ctx});
      }
    }
  }
  // VarPtsCtx iteration order is unspecified; sort for determinism.
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    return std::tie(A.At.F, A.At.B, A.At.Idx, A.Ctx) <
           std::tie(B.At.F, B.At.B, B.At.Idx, B.Ctx);
  });
  return Out;
}

std::vector<ProducerSite>
PointsToResult::producersOfGlobalEdge(GlobalId G, AbsLocId Target) const {
  std::vector<ProducerSite> Out;
  for (const auto &[MC, PerVar] : VarPtsCtx) {
    auto [F, Ctx] = MC;
    const Function &Fn = P->Funcs[F];
    for (BlockId B = 0; B < Fn.Blocks.size(); ++B) {
      const BasicBlock &BB = Fn.Blocks[B];
      for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
        const Instruction &I = BB.Insts[Idx];
        if (I.Op != Opcode::StoreStatic || I.Global != G)
          continue;
        if (I.Src < PerVar.size() && PerVar[I.Src].contains(Target))
          Out.push_back({{F, B, Idx}, Ctx});
      }
    }
  }
  std::sort(Out.begin(), Out.end(), [](const auto &A, const auto &B) {
    return std::tie(A.At.F, A.At.B, A.At.Idx, A.Ctx) <
           std::tie(B.At.F, B.At.B, B.At.Idx, B.Ctx);
  });
  return Out;
}

uint64_t PointsToResult::numEdges() const {
  uint64_t N = 0;
  for (const auto &FPts : VarPts)
    for (const IdSet &S : FPts)
      N += S.size();
  for (const IdSet &S : GlobalPts)
    N += S.size();
  for (const auto &[_, S] : FieldPts)
    N += S.size();
  return N;
}
