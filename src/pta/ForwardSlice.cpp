//===- ForwardSlice.cpp - Forward reachability slices ---------------------===//

#include "pta/ForwardSlice.h"

#include "ir/Program.h"

#include <deque>
#include <set>
#include <vector>

using namespace thresher;

bool ForwardSlice::mayExecuteAfter(AbsLocId L, FuncId F, BlockId B) {
  const LocSlice &S = sliceFor(PTA.Locs.site(L));
  if (S.AlwaysAfter)
    return true;
  auto It = S.AfterFrom.find(F);
  if (It == S.AfterFrom.end())
    return false;
  auto BIt = It->second.find(B);
  // Only index 0 covers the block-start position the engine asks about;
  // a later after-point (the allocation's own block, a block whose only
  // after-suffix starts past a returning call) does not.
  return BIt != It->second.end() && BIt->second == 0;
}

const ForwardSlice::LocSlice &ForwardSlice::sliceFor(AllocSiteId Site) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<LocSlice> &Slot = Memo[Site];
  if (!Slot)
    Slot = compute(Site);
  return *Slot;
}

std::unique_ptr<ForwardSlice::LocSlice>
ForwardSlice::compute(AllocSiteId Site) const {
  auto Out = std::make_unique<LocSlice>();
  const AllocSiteInfo &AS = P.AllocSites[Site];
  if (AS.InFunc == InvalidId || AS.InFunc >= P.Funcs.size()) {
    Out->AlwaysAfter = true;
    return Out;
  }
  // Locate the allocation instruction.
  const Function &AllocFn = P.Funcs[AS.InFunc];
  BlockId AllocBlock = InvalidId;
  uint32_t AllocIdx = 0;
  for (BlockId B = 0; B < AllocFn.Blocks.size() && AllocBlock == InvalidId;
       ++B) {
    const BasicBlock &BB = AllocFn.Blocks[B];
    for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
      const Instruction &I = BB.Insts[Idx];
      if (I.Alloc == Site &&
          (I.Op == Opcode::New || I.Op == Opcode::NewArray)) {
        AllocBlock = B;
        AllocIdx = Idx;
        break;
      }
    }
  }
  if (AllocBlock == InvalidId) {
    Out->AlwaysAfter = true;
    return Out;
  }

  // Functions whose invocation can contain the allocation: the allocating
  // function and, transitively, everything that calls into it. A call to
  // one of these may return with the allocation done, so the caller's
  // continuation past that call site is an after-point.
  std::set<FuncId> Reaching{AS.InFunc};
  std::deque<FuncId> RWork{AS.InFunc};
  while (!RWork.empty()) {
    FuncId F = RWork.front();
    RWork.pop_front();
    for (const CallEdge &CE : PTA.callersOf(F)) {
      if (CE.Caller == InvalidId || CE.Caller >= P.Funcs.size())
        continue;
      if (Reaching.insert(CE.Caller).second)
        RWork.push_back(CE.Caller);
    }
  }

  // Min-index lattice: Mark lowers a block's after-point, never raises it.
  auto Mark = [&](FuncId F, BlockId B, uint32_t Idx) {
    auto &Fm = Out->AfterFrom[F];
    auto It = Fm.find(B);
    if (It != Fm.end() && It->second <= Idx)
      return false;
    Fm[B] = Idx;
    return true;
  };

  // Seeds: just past the allocation itself, and just past every call that
  // may perform it inside the callee.
  Mark(AS.InFunc, AllocBlock, AllocIdx + 1);
  for (FuncId F : Reaching)
    for (const CallEdge &CE : PTA.callersOf(F))
      if (CE.Caller != InvalidId && CE.Caller < P.Funcs.size())
        Mark(CE.Caller, CE.At.B, CE.At.Idx + 1);

  // Round-based least fixpoint (order-independent: min is monotone).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Snapshot: the rules add and lower entries while we walk.
    std::vector<std::pair<FuncId, std::pair<BlockId, uint32_t>>> Items;
    for (const auto &[F, Fm] : Out->AfterFrom)
      for (const auto &[B, Idx] : Fm)
        Items.push_back({F, {B, Idx}});
    for (const auto &[F, BI] : Items) {
      const auto [B, Idx] = BI;
      const Function &Fn = P.Funcs[F];
      const BasicBlock &BB = Fn.Blocks[B];
      // The after-suffix runs straight through to the block's end, so
      // every CFG successor is after from its start.
      for (BlockId S : Fn.successors(B))
        Changed |= Mark(F, S, 0);
      // A call at or past the after-point runs its callees entirely after
      // the allocation.
      for (uint32_t I = Idx; I < BB.Insts.size(); ++I) {
        if (BB.Insts[I].Op != Opcode::Call)
          continue;
        for (FuncId Callee : PTA.calleesAt({F, B, I})) {
          if (Callee >= P.Funcs.size())
            continue;
          for (BlockId CB = 0; CB < P.Funcs[Callee].Blocks.size(); ++CB)
            Changed |= Mark(Callee, CB, 0);
        }
      }
    }
  }
  return Out;
}
