//===- AbsLoc.h - Context-qualified abstract locations ----------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract locations: allocation sites qualified by a heap context. The
/// context of an allocation inside a container-class method is the abstract
/// location of the method's receiver, emulating WALA's 0-1-Container-CFA
/// naming (e.g. "vec0.arr1" for the arr1 instances allocated while
/// Vec.push runs on vec0 instances, exactly as in Fig. 2 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_PTA_ABSLOC_H
#define THRESHER_PTA_ABSLOC_H

#include "ir/Program.h"
#include "support/Hash.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace thresher {

/// Dense id of a context-qualified abstract location.
using AbsLocId = uint32_t;

/// Interns (allocation site, context) pairs into dense AbsLocIds. The
/// context is itself an AbsLocId (the receiver's location) or InvalidId.
class AbsLocTable {
public:
  /// Interns the location for \p Site under context \p Ctx.
  AbsLocId intern(AllocSiteId Site, AbsLocId Ctx = InvalidId);

  /// Looks up the location for (Site, Ctx) without creating it; returns
  /// InvalidId if that combination was never realized by the analysis.
  AbsLocId find(AllocSiteId Site, AbsLocId Ctx = InvalidId) const;

  AllocSiteId site(AbsLocId L) const { return Entries[L].Site; }
  AbsLocId context(AbsLocId L) const { return Entries[L].Ctx; }

  /// Context-chain depth: 1 for an unqualified location, +1 per level.
  uint32_t depth(AbsLocId L) const { return Entries[L].Depth; }

  /// Human-readable label, e.g. "vec0.arr1".
  std::string label(const Program &P, AbsLocId L) const;

  size_t size() const { return Entries.size(); }

private:
  struct Entry {
    AllocSiteId Site;
    AbsLocId Ctx;
    uint32_t Depth;
  };
  struct KeyHash {
    size_t operator()(const std::pair<AllocSiteId, AbsLocId> &K) const {
      return hashPair(K.first, K.second);
    }
  };
  std::vector<Entry> Entries;
  std::unordered_map<std::pair<AllocSiteId, AbsLocId>, AbsLocId, KeyHash>
      Index;
};

} // namespace thresher

#endif // THRESHER_PTA_ABSLOC_H
