//===- Footprint.h - Dependency footprint of an edge search -----*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dependency footprint of one witness-refutation edge search: every
/// function stepped through and every points-to fact consulted while the
/// search ran. The persistent refutation cache (src/cache) materializes a
/// footprint into name-based, value-hashed facts; a later run replays them
/// against a fresh Program/PointsToResult and reuses the cached verdict iff
/// every fact still holds (docs/CACHING.md).
///
/// Recording is id-level and cheap (set inserts on the search hot path);
/// the expensive name materialization happens once per insert, outside the
/// search. Over-approximation is sound: an extra fact can only cause a
/// spurious re-search, never a stale hit.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SYM_FOOTPRINT_H
#define THRESHER_SYM_FOOTPRINT_H

#include "pta/AbsLoc.h"

#include <set>
#include <tuple>
#include <utility>

namespace thresher {

/// Everything one edge search consulted, as dense ids (valid only against
/// the Program/PointsToResult the search ran on).
struct DepFootprint {
  /// Function bodies the search stepped through or read instructions from.
  std::set<FuncId> Funcs;
  /// ptGlobal(G) consultations.
  std::set<GlobalId> PtGlobals;
  /// ptField(L, Fld) consultations.
  std::set<std::pair<AbsLocId, FieldId>> PtFields;
  /// ptVarCtx(F, Ctx, V) consultations.
  std::set<std::tuple<FuncId, AbsLocId, VarId>> PtVars;
  /// calleesAtCtx(At, Ctx) consultations.
  std::set<std::pair<ProgramPoint, AbsLocId>> CalleeSites;
  /// calleesAt(At) consultations (context-unioned callee lists).
  std::set<ProgramPoint> CalleesAllSites;
  /// callersOfCtx(F, Ctx) consultations.
  std::set<std::pair<FuncId, AbsLocId>> CallerUnits;
  /// heapModOf(F) consultations.
  std::set<FuncId> HeapMods;
  /// allocContextFor(F, FrameCtx) consultations.
  std::set<std::pair<FuncId, AbsLocId>> AllocCtxs;
  /// Locs.find(Site, Ctx) existence checks.
  std::set<std::pair<AllocSiteId, AbsLocId>> LocFinds;
  /// resolveVirtual(Class, Method) dispatch resolutions.
  std::set<std::pair<ClassId, NameId>> Dispatches;
  /// Locations whose site class/arrayness narrowed a dispatch.
  std::set<AbsLocId> LocClasses;
  /// producersOfFieldEdge(Base, Fld, Target) enumerations.
  std::set<std::tuple<AbsLocId, FieldId, AbsLocId>> FieldProducers;
  /// producersOfGlobalEdge(G, Target) enumerations.
  std::set<std::pair<GlobalId, AbsLocId>> GlobalProducers;

  void clear() {
    Funcs.clear();
    PtGlobals.clear();
    PtFields.clear();
    PtVars.clear();
    CalleeSites.clear();
    CalleesAllSites.clear();
    CallerUnits.clear();
    HeapMods.clear();
    AllocCtxs.clear();
    LocFinds.clear();
    Dispatches.clear();
    LocClasses.clear();
    FieldProducers.clear();
    GlobalProducers.clear();
  }

  bool empty() const {
    return Funcs.empty() && PtGlobals.empty() && PtFields.empty() &&
           PtVars.empty() && CalleeSites.empty() && CalleesAllSites.empty() &&
           CallerUnits.empty() && HeapMods.empty() && AllocCtxs.empty() &&
           LocFinds.empty() && Dispatches.empty() && LocClasses.empty() &&
           FieldProducers.empty() && GlobalProducers.empty();
  }

  void mergeFrom(const DepFootprint &O) {
    Funcs.insert(O.Funcs.begin(), O.Funcs.end());
    PtGlobals.insert(O.PtGlobals.begin(), O.PtGlobals.end());
    PtFields.insert(O.PtFields.begin(), O.PtFields.end());
    PtVars.insert(O.PtVars.begin(), O.PtVars.end());
    CalleeSites.insert(O.CalleeSites.begin(), O.CalleeSites.end());
    CalleesAllSites.insert(O.CalleesAllSites.begin(),
                           O.CalleesAllSites.end());
    CallerUnits.insert(O.CallerUnits.begin(), O.CallerUnits.end());
    HeapMods.insert(O.HeapMods.begin(), O.HeapMods.end());
    AllocCtxs.insert(O.AllocCtxs.begin(), O.AllocCtxs.end());
    LocFinds.insert(O.LocFinds.begin(), O.LocFinds.end());
    Dispatches.insert(O.Dispatches.begin(), O.Dispatches.end());
    LocClasses.insert(O.LocClasses.begin(), O.LocClasses.end());
    FieldProducers.insert(O.FieldProducers.begin(), O.FieldProducers.end());
    GlobalProducers.insert(O.GlobalProducers.begin(),
                           O.GlobalProducers.end());
  }
};

} // namespace thresher

#endif // THRESHER_SYM_FOOTPRINT_H
