//===- QueryJson.cpp - Query (de)serialization for registry payloads ------===//
//
// Persists refuted queries into the refutation cache so a warm run can
// republish the same cross-edge subsumption entries a cold run harvested
// (docs/PRUNING.md). The format is compact positional arrays: payloads ride
// inside every cache entry of a registry-enabled run, so size matters more
// than readability here.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "sym/Query.h"

using namespace thresher;

namespace {

/// ValRef <-> JSON: null stays JSON null; a symbolic binding is its id.
JsonValue valToJson(const ValRef &V) {
  return V.isNull() ? JsonValue() : JsonValue::makeUint(V.Sym);
}

bool valFromJson(const JsonValue &J, ValRef &Out) {
  if (J.isNull()) {
    Out = ValRef::mkNull();
    return true;
  }
  if (!J.isNumber())
    return false;
  Out = ValRef::mkSym(static_cast<SymVarId>(J.asUint()));
  return true;
}

bool asU32(const JsonValue &J, uint32_t &Out) {
  if (!J.isNumber())
    return false;
  Out = static_cast<uint32_t>(J.asUint());
  return true;
}

} // namespace

JsonValue Query::toJson() const {
  JsonValue Obj = JsonValue::makeObject();
  JsonValue PosArr = JsonValue::makeArray();
  PosArr.append(JsonValue::makeUint(Pos.F));
  PosArr.append(JsonValue::makeUint(Pos.B));
  PosArr.append(JsonValue::makeUint(Pos.Idx));
  Obj.set("pos", std::move(PosArr));

  JsonValue FrArr = JsonValue::makeArray();
  for (const QueryFrame &Fr : Frames) {
    JsonValue F = JsonValue::makeArray();
    F.append(JsonValue::makeUint(Fr.Func));
    F.append(JsonValue::makeUint(Fr.Ctx));
    F.append(JsonValue::makeBool(Fr.HasCallSite));
    F.append(JsonValue::makeUint(Fr.CallAt.F));
    F.append(JsonValue::makeUint(Fr.CallAt.B));
    F.append(JsonValue::makeUint(Fr.CallAt.Idx));
    FrArr.append(std::move(F));
  }
  Obj.set("frames", std::move(FrArr));

  JsonValue LocArr = JsonValue::makeArray();
  for (const auto &[K, V] : Locals) {
    JsonValue L = JsonValue::makeArray();
    L.append(JsonValue::makeUint(K.first));
    L.append(JsonValue::makeUint(K.second));
    L.append(valToJson(V));
    LocArr.append(std::move(L));
  }
  Obj.set("locals", std::move(LocArr));

  JsonValue GlArr = JsonValue::makeArray();
  for (const auto &[G, V] : Globals) {
    JsonValue GJ = JsonValue::makeArray();
    GJ.append(JsonValue::makeUint(G));
    GJ.append(valToJson(V));
    GlArr.append(std::move(GJ));
  }
  Obj.set("globals", std::move(GlArr));

  JsonValue CellArr = JsonValue::makeArray();
  for (const HeapCell &C : Cells) {
    JsonValue CJ = JsonValue::makeArray();
    CJ.append(JsonValue::makeUint(C.Base));
    CJ.append(JsonValue::makeUint(C.Field));
    CJ.append(valToJson(C.Target));
    CellArr.append(std::move(CJ));
  }
  Obj.set("cells", std::move(CellArr));

  JsonValue RegArr = JsonValue::makeArray();
  for (const auto &[Sym, R] : Regions) {
    JsonValue RJ = JsonValue::makeArray();
    RJ.append(JsonValue::makeUint(Sym));
    RJ.append(JsonValue::makeBool(R.HasData));
    JsonValue Locs = JsonValue::makeArray();
    for (AbsLocId L : R.Locs)
      Locs.append(JsonValue::makeUint(L));
    RJ.append(std::move(Locs));
    RegArr.append(std::move(RJ));
  }
  Obj.set("regions", std::move(RegArr));

  JsonValue PureArr = JsonValue::makeArray();
  for (const PurePrim &Pr : Pure.prims()) {
    JsonValue PJ = JsonValue::makeArray();
    PJ.append(JsonValue::makeBool(Pr.K == PurePrim::Kind::NE));
    PJ.append(JsonValue::makeUint(Pr.X));
    PJ.append(JsonValue::makeUint(Pr.Y));
    PJ.append(JsonValue::makeInt(Pr.C));
    PJ.append(JsonValue::makeBool(Pr.IsPath));
    PureArr.append(std::move(PJ));
  }
  Obj.set("pure", std::move(PureArr));

  Obj.set("next", JsonValue::makeUint(NextSym));
  return Obj;
}

std::optional<Query> Query::fromJson(const JsonValue &V) {
  if (!V.isObject())
    return std::nullopt;
  Query Q;

  const JsonValue *PosJ = V.find("pos");
  if (!PosJ || !PosJ->isArray() || PosJ->items().size() != 3)
    return std::nullopt;
  if (!asU32(PosJ->items()[0], Q.Pos.F) || !asU32(PosJ->items()[1], Q.Pos.B) ||
      !asU32(PosJ->items()[2], Q.Pos.Idx))
    return std::nullopt;

  const JsonValue *FrJ = V.find("frames");
  if (!FrJ || !FrJ->isArray() || FrJ->items().empty())
    return std::nullopt;
  for (const JsonValue &F : FrJ->items()) {
    if (!F.isArray() || F.items().size() != 6 || !F.items()[2].isBool())
      return std::nullopt;
    QueryFrame Fr;
    Fr.HasCallSite = F.items()[2].asBool();
    if (!asU32(F.items()[0], Fr.Func) || !asU32(F.items()[1], Fr.Ctx) ||
        !asU32(F.items()[3], Fr.CallAt.F) ||
        !asU32(F.items()[4], Fr.CallAt.B) ||
        !asU32(F.items()[5], Fr.CallAt.Idx))
      return std::nullopt;
    Q.Frames.push_back(Fr);
  }

  const JsonValue *LocJ = V.find("locals");
  if (!LocJ || !LocJ->isArray())
    return std::nullopt;
  for (const JsonValue &L : LocJ->items()) {
    if (!L.isArray() || L.items().size() != 3)
      return std::nullopt;
    uint32_t Frame = 0, Var = 0;
    ValRef Val;
    if (!asU32(L.items()[0], Frame) || !asU32(L.items()[1], Var) ||
        !valFromJson(L.items()[2], Val))
      return std::nullopt;
    Q.Locals[{Frame, Var}] = Val;
  }

  const JsonValue *GlJ = V.find("globals");
  if (!GlJ || !GlJ->isArray())
    return std::nullopt;
  for (const JsonValue &G : GlJ->items()) {
    if (!G.isArray() || G.items().size() != 2)
      return std::nullopt;
    uint32_t Gid = 0;
    ValRef Val;
    if (!asU32(G.items()[0], Gid) || !valFromJson(G.items()[1], Val))
      return std::nullopt;
    Q.Globals[Gid] = Val;
  }

  const JsonValue *CellJ = V.find("cells");
  if (!CellJ || !CellJ->isArray())
    return std::nullopt;
  for (const JsonValue &C : CellJ->items()) {
    if (!C.isArray() || C.items().size() != 3)
      return std::nullopt;
    HeapCell Cell;
    if (!asU32(C.items()[0], Cell.Base) || !asU32(C.items()[1], Cell.Field) ||
        !valFromJson(C.items()[2], Cell.Target))
      return std::nullopt;
    Q.Cells.push_back(Cell);
  }

  const JsonValue *RegJ = V.find("regions");
  if (!RegJ || !RegJ->isArray())
    return std::nullopt;
  for (const JsonValue &R : RegJ->items()) {
    if (!R.isArray() || R.items().size() != 3 || !R.items()[1].isBool() ||
        !R.items()[2].isArray())
      return std::nullopt;
    uint32_t Sym = 0;
    if (!asU32(R.items()[0], Sym))
      return std::nullopt;
    Region Reg;
    Reg.HasData = R.items()[1].asBool();
    for (const JsonValue &L : R.items()[2].items()) {
      uint32_t Loc = 0;
      if (!asU32(L, Loc))
        return std::nullopt;
      Reg.Locs.insert(Loc);
    }
    Q.Regions.emplace(Sym, std::move(Reg));
  }

  const JsonValue *PureJ = V.find("pure");
  if (!PureJ || !PureJ->isArray())
    return std::nullopt;
  for (const JsonValue &PJ : PureJ->items()) {
    if (!PJ.isArray() || PJ.items().size() != 5 || !PJ.items()[0].isBool() ||
        !PJ.items()[3].isNumber() || !PJ.items()[4].isBool())
      return std::nullopt;
    uint32_t X = 0, Y = 0;
    if (!asU32(PJ.items()[1], X) || !asU32(PJ.items()[2], Y))
      return std::nullopt;
    int64_t C = PJ.items()[3].asInt();
    bool IsNE = PJ.items()[0].asBool();
    bool IsPath = PJ.items()[4].asBool();
    // Rebuild through addCmp: semantically identical, though the
    // path-group numbering restarts (each guard prim lands in its own
    // group). Round-tripped queries are probed, never re-executed, so the
    // cap machinery never sees the difference.
    PureTerm L = X == PurePrim::ZeroVar ? PureTerm::mkConst(0)
                                        : PureTerm::mkVar(X);
    PureTerm R = Y == PurePrim::ZeroVar ? PureTerm::mkConst(C)
                                        : PureTerm::mkVar(Y, C);
    Q.Pure.addCmp(L, IsNE ? RelOp::NE : RelOp::LE, R, IsPath);
  }

  const JsonValue *NextJ = V.find("next");
  if (!NextJ || !NextJ->isNumber())
    return std::nullopt;
  Q.NextSym = static_cast<SymVarId>(NextJ->asUint());
  return Q;
}
