//===- WitnessSearch.h - Backwards witness-refutation search ----*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The path-program-by-path-program backwards symbolic execution of Sec. 3:
/// given a points-to edge and the statements that may produce it, search
/// for an over-approximate path program witness. A failed search (all
/// paths refuted) soundly refutes the edge; finding a path program whose
/// query weakens to `any` (or survives to the program's initial state)
/// witnesses it; exhausting the exploration budget is reported as such and
/// treated by clients as "not refuted".
///
/// The three ablation axes of the evaluation are options here:
///  - Representation: Mixed (default) vs FullySymbolic vs FullyExplicit
///    (Table 2 and Sec. 2.2).
///  - QuerySimplification: entailment-based history joins at loop heads
///    and procedure boundaries (hypothesis 2).
///  - Loop mode: on-the-fly invariant inference vs drop-everything
///    (hypothesis 3, Sec. 3.3).
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SYM_WITNESSSEARCH_H
#define THRESHER_SYM_WITNESSSEARCH_H

#include "pta/PointsTo.h"
#include "support/Budget.h"
#include "support/Stats.h"
#include "support/Trace.h"
#include "sym/Footprint.h"
#include "sym/Query.h"
#include "sym/Subsume.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace thresher {

class ForwardSlice;
class SearchPool;

/// Query state representation (Sec. 2.2 / Table 2).
enum class Representation : uint8_t {
  /// Instance constraints narrowed at every flow step (the paper's system).
  Mixed,
  /// Points-to facts only used as an aliasing oracle and at allocations
  /// (PSE-style); no flow narrowing, no region-based subsumption.
  FullySymbolic,
  /// Symbolic variables eagerly case-split over their points-to region.
  FullyExplicit,
};

/// Loop handling (Sec. 3.3).
enum class LoopMode : uint8_t {
  /// Per-path invariant inference: iterate the body to a fixed point over
  /// points-to constraints, dropping loop-modified pure constraints.
  FullInference,
  /// Baseline: drop every constraint the loop body may touch and skip the
  /// body entirely.
  DropAll,
};

/// Engine options.
struct SymOptions {
  Representation Repr = Representation::Mixed;
  /// Query simplification (Sec. 3.3): path collapsing via exact-duplicate
  /// merging plus entailment-based history joins at loop heads and
  /// procedure boundaries. Disabling it (hypothesis 2's ablation) removes
  /// every merge, so loops and redundant paths are re-explored until the
  /// edge budget runs out (the paper's un-simplified runs blew up in time
  /// or memory; ours are bounded by the budget).
  bool QuerySimplification = true;
  LoopMode Loop = LoopMode::FullInference;
  /// Exploration budget per edge, in processed query states.
  uint64_t EdgeBudget = 10000;
  /// Callee-entry depth bound; deeper calls are skipped soundly by
  /// dropping constraints in the callee's mod set (Sec. 4).
  uint32_t MaxCallStackDepth = 3;
  /// Maximum retained branch-guard constraints (Sec. 4: "at most two").
  uint32_t PathConstraintCap = 2;
  /// Loop-head crossings before hard widening (materialization bound).
  uint32_t MaxLoopCrossings = 12;
  /// Record per-query trails for witness reporting (costs memory).
  bool RecordTrails = false;
  /// Additionally snapshot the query text at each trail point (debugging).
  bool RecordTrailQueries = false;
  /// Workers exploring one edge's frontier concurrently (intra-edge
  /// parallelism). Results — verdicts, deterministic counters, traces, the
  /// report — are byte-identical for every value; see docs/PARALLELISM.md.
  unsigned SearchThreads = 1;
  /// Frontier items speculated ahead per scheduling wave. A pure
  /// performance knob: speculation prefetches buffered effects for items
  /// the sequential commit loop will pop later, so neither this width nor
  /// the thread count changes the exploration order or any result.
  uint32_t SearchWaveWidth = 64;
  /// Forward reachability slicing (pta/ForwardSlice.h): refute backwards
  /// states standing in blocks the allocation of a still-constrained
  /// instance can never reach. Sound block-granular pruning; counted under
  /// sym.refute.slice, never silent.
  bool ForwardSlice = true;
  /// Cross-edge subsumption via the global registry (sym/Subsume.h):
  /// queries refuted by one edge's (fully refuted) search prune
  /// equal-or-stronger queries on other edges. Probed inside the history
  /// join, so it requires QuerySimplification. When no external registry
  /// is installed (setRegistry), the engine owns one and publishes each
  /// edge's harvest at the end of searchFieldEdge/searchGlobalEdge.
  bool GlobalSubsume = true;
};

/// Outcome of one edge (or statement) search.
enum class SearchOutcome : uint8_t { Refuted, Witnessed, BudgetExhausted };

/// Canonical name for \p O: "REFUTED", "WITNESSED", or "TIMEOUT" (used by
/// trace events, the JSON report, and the corpus expectations).
const char *outcomeName(SearchOutcome O);

/// Result of an edge search.
struct EdgeSearchResult {
  SearchOutcome Outcome = SearchOutcome::Refuted;
  /// Why the search stopped short (None unless Outcome is
  /// BudgetExhausted). Sound degradation: every reason keeps the alarm.
  ExhaustionReason Exhaustion = ExhaustionReason::None;
  uint64_t StepsUsed = 0;
  /// Number of producing statements tried before the verdict.
  uint32_t ProducersTried = 0;
  /// The producing statement that was witnessed ("func@bb:idx"; empty
  /// unless Outcome is Witnessed).
  std::string WitnessProducer;
  /// Refutation kinds hit while exploring (kind -> refuted path count).
  std::map<std::string, uint64_t> RefuteKinds;
  /// For Witnessed with RecordTrails: the witnessing path program,
  /// oldest-first program points.
  std::vector<ProgramPoint> WitnessTrail;
  /// Query snapshots matching WitnessTrail (with RecordTrailQueries).
  std::vector<std::string> WitnessTrailQueries;
  /// For Refuted with RecordTrails: the deepest path program explored
  /// before refutation, oldest-first. The paper's StandupTimer case shows
  /// these are useful triage artifacts even when the alarm is refuted
  /// (they reveal "almost-leaks").
  std::vector<ProgramPoint> DeepestRefutedTrail;
  /// Human-readable note (e.g. which statement was witnessed).
  std::string Note;
};

/// The witness-refutation search engine.
class WitnessSearch {
public:
  WitnessSearch(const Program &P, const PointsToResult &PTA,
                SymOptions Opts = {});
  ~WitnessSearch();

  /// Witness or refute the heap points-to edge Base·Fld -> Target, trying
  /// every producing statement under a shared budget.
  EdgeSearchResult searchFieldEdge(AbsLocId Base, FieldId Fld,
                                   AbsLocId Target);

  /// Witness or refute the static-field edge G -> Target.
  EdgeSearchResult searchGlobalEdge(GlobalId G, AbsLocId Target);

  /// Search a single producing statement (with its method context);
  /// \p Budget is decremented by the steps used.
  EdgeSearchResult searchFieldEdgeAt(AbsLocId Base, FieldId Fld,
                                     AbsLocId Target,
                                     const ProducerSite &Site,
                                     uint64_t &Budget);

  /// Search a single producing statement for a global edge.
  EdgeSearchResult searchGlobalEdgeAt(GlobalId G, AbsLocId Target,
                                      const ProducerSite &Site,
                                      uint64_t &Budget);

  /// Cumulative counters and histograms (queries processed, refutations
  /// by kind, states per edge, subsumption latency, ...).
  const Stats &stats() const { return S; }
  Stats &stats() { return S; }

  /// Installs a sink receiving one structured TraceEvent per edge search
  /// (nullptr disables tracing). Not owned; must outlive the searches.
  void setTraceSink(TraceSink *Sink) { Trace = Sink; }

  /// Installs a dependency-footprint sink: while set, every function the
  /// search steps through and every points-to fact it consults is recorded
  /// into \p D (nullptr disables recording). Not owned; the caller clears
  /// or swaps it between edge searches to get per-edge footprints.
  void setDepSink(DepFootprint *D) { Deps = D; }

  /// Installs a shared resource governor (nullptr disables governance).
  /// Not owned; must outlive the searches. While set, every search step
  /// checks the governor's deadlines, memory ceiling, and cancel token,
  /// and retained query states are charged to its memory accountant.
  void setGovernor(ResourceGovernor *G) { Gov = G; }
  ResourceGovernor *governor() const { return Gov; }

  /// Installs an external subsumption registry (nullptr reverts to the
  /// engine-owned one when Opts.GlobalSubsume). Not owned; must outlive
  /// the searches. With an external registry the engine NEVER publishes:
  /// it accumulates each edge's harvest (takePendingEntries) and the slots
  /// it probed without a hit (takeProbedSlots) for the caller's
  /// deterministic commit protocol (docs/PRUNING.md). searchFieldEdge /
  /// searchGlobalEdge reset both accumulators at entry; the direct *At
  /// entry points only accumulate, so drive whole edges when using this.
  void setRegistry(SubsumeRegistry *R) { Registry = R; }

  /// The registry probes go to: the external one if installed, else the
  /// engine-owned one (null when Opts.GlobalSubsume is off).
  SubsumeRegistry *registry() const {
    return Registry ? Registry : OwnedRegistry.get();
  }

  /// Drains the refuted-query harvest of the edge searches since the last
  /// drain, sorted by (slot, canonical key) — deterministic regardless of
  /// exploration interleaving.
  std::vector<SubsumeEntry> takePendingEntries();

  /// Drains the slots probed against the registry without a hit since the
  /// last drain. A published entry can only change a later search's course
  /// if that search probes its slot and now hits; re-searching prefetched
  /// edges whose probed slots intersect newly published ones restores
  /// sequential-equivalent results (docs/PRUNING.md).
  std::set<std::string> takeProbedSlots();

  /// Test entry point: runs one backwards search from an arbitrary query
  /// under \p Budget (decremented by steps used). Used by the registry
  /// reproducibility property test to re-run a registered query
  /// stand-alone.
  EdgeSearchResult searchFrom(Query Q, uint64_t &Budget);

private:
  class Run;
  friend class Run;

  /// "func@bb:idx" description of a producing statement.
  std::string describeSite(const ProducerSite &Site) const;
  /// Owned-registry mode: publishes the finished edge's harvest (no-op
  /// with an external registry, where the caller owns publication).
  void publishOwnedPending();
  void emitEdgeTrace(std::string EdgeLabel, bool IsGlobal,
                     const EdgeSearchResult &R, uint64_t EnumNanos,
                     uint64_t SearchNanos);

  const Program &P;
  const PointsToResult &PTA;
  SymOptions Opts;
  Stats S;
  TraceSink *Trace = nullptr;
  DepFootprint *Deps = nullptr;
  ResourceGovernor *Gov = nullptr;
  /// Intra-edge worker pool (null when Opts.SearchThreads <= 1). Owned by
  /// the engine so its threads persist across the edges this instance
  /// searches instead of being respawned per edge.
  std::unique_ptr<SearchPool> Pool;
  /// Per-edge scope shared across the producer loop (set by
  /// searchFieldEdge / searchGlobalEdge; Run falls back to a local scope
  /// when the *At entry points are driven directly).
  ResourceGovernor::EdgeScope *ActiveScope = nullptr;
  /// Forward reachability slices (null when Opts.ForwardSlice is off).
  std::unique_ptr<ForwardSlice> Slice;
  /// External registry (not owned) and the engine-owned fallback.
  SubsumeRegistry *Registry = nullptr;
  std::unique_ptr<SubsumeRegistry> OwnedRegistry;
  /// Refuted-query harvest of the current edge, keyed by slot with
  /// per-slot canonical-key dedup. Also probed (before the registry) so
  /// one refuted producer search prunes the next producer of the same
  /// edge even before anything is published.
  std::map<std::string, std::vector<SubsumeEntry>> EdgePending;
  /// Slots probed against the shared registry without a hit.
  std::set<std::string> ProbedSlots;
};

} // namespace thresher

#endif // THRESHER_SYM_WITNESSSEARCH_H
