#include "sym/WitnessSearch.h"

#include "pta/ForwardSlice.h"
#include "support/FaultInject.h"
#include "support/SmallMap.h"
#include "sym/SearchPool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <memory>
#include <unordered_set>

using namespace thresher;

namespace {

/// Result of resolving a local to a symbolic variable.
struct SymOrRefuted {
  bool Refuted = false;
  SymVarId Sym = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// One search run (per producing statement)
//===----------------------------------------------------------------------===//

class WitnessSearch::Run {
public:
  Run(WitnessSearch &WS, uint64_t &Budget)
      : P(WS.P), PTA(WS.PTA), Opts(WS.Opts), S(WS.S), Deps(WS.Deps),
        Budget(Budget), Gov(WS.Gov) {
    Pool = WS.Pool.get();
    Slice = WS.Slice.get();
    Reg = WS.registry();
    if (Reg) {
      EdgePend = &WS.EdgePending;
      Probed = &WS.ProbedSlots;
    }
    if (Gov) {
      if (WS.ActiveScope) {
        Scope = WS.ActiveScope;
      } else {
        LocalScope = ResourceGovernor::EdgeScope(*Gov);
        Scope = &LocalScope;
      }
    }
  }

  /// Speculative engine for one wave item. It shares the parent's frozen
  /// stores read-only (via Shared) and buffers every side effect — stats,
  /// dep footprint, children, memory charges, store insertions — privately
  /// so the parent can replay them in canonical order at commit time. The
  /// ~1100 lines of step/transfer code run unchanged on top: S binds to
  /// LocalStats, Deps to LocalDeps, Worklist becomes the children buffer,
  /// and the five order-sensitive touch points (chargeRetained, the
  /// solver-entry fault probe, duplicateAtBlockStart, historySubsumed,
  /// loopHeapMod) branch on Spec.
  struct SpecTag {};
  Run(Run &Parent, SpecTag)
      : P(Parent.P), PTA(Parent.PTA), Opts(Parent.Opts), S(LocalStats),
        Deps(Parent.Deps ? &LocalDeps : nullptr), Budget(SpecBudget),
        Gov(Parent.Gov) {
    Spec = true;
    Shared = &Parent;
    // The slice, registry, and edge harvest are all frozen for the
    // duration of a run, so speculative probes against them are exact;
    // only the probed-slot recording is buffered (RegProbes).
    Slice = Parent.Slice;
    Reg = Parent.Reg;
    EdgePend = Parent.EdgePend;
  }

  ~Run() {
    // Balance the memory accountant: everything still retained (worklist
    // leftovers, history copies) is released in one shot.
    if (Gov && OutstandingBytes)
      Gov->release(OutstandingBytes);
  }

  SearchOutcome run(Query Init, EdgeSearchResult &Out) {
    push(std::move(Init));
    while (!Worklist.empty()) {
      if (StepsUsed >= Budget) {
        Pending = ExhaustionReason::Steps;
        S.bump("sym.budgetExhausted");
        return exhausted(Out);
      }
      if (Pending != ExhaustionReason::None)
        return exhausted(Out);
      if (Scope) {
        ExhaustionReason R = Scope->noteStepAndCheck();
        if (R != ExhaustionReason::None) {
          Pending = R;
          S.bump("sym.budgetExhausted");
          return exhausted(Out);
        }
      }
      // Commit order is the seed engine's exact LIFO pop order — always
      // the top of the stack, one item at a time. Speculation (below)
      // only prefetches buffered effects for items the loop will pop
      // later; it never reorders, so verdicts, deterministic counters,
      // and traces are byte-identical for every SearchThreads value.
      if (Pool && !Worklist.back().Buf)
        speculateAhead();
      WaveItem Item = std::move(Worklist.back());
      Worklist.pop_back();
      releaseQuery(Item.Q);
      ++StepsUsed;
      Run *B = Item.Buf.get();
      if (B && !conflictsWithLive(*B))
        commitItem(*B);
      else
        // Missing buffer (never speculated, or skipped by the pool) or a
        // stale one (an earlier commit changed a store it consulted):
        // re-execute inline on the live engine, which is always exact.
        step(std::move(Item.Q));
      if (Witnessed) {
        Out.StepsUsed = StepsUsed;
        Out.RefuteKinds = std::move(RefuteKinds);
        Out.WitnessTrail.assign(WitnessQ.Trail.rbegin(),
                                WitnessQ.Trail.rend());
        Out.WitnessTrailQueries.assign(WitnessQ.TrailQueries.rbegin(),
                                       WitnessQ.TrailQueries.rend());
        return SearchOutcome::Witnessed;
      }
    }
    if (Pending != ExhaustionReason::None)
      return exhausted(Out); // Exhaustion raised on the final step.
    Out.StepsUsed = StepsUsed;
    Out.RefuteKinds = std::move(RefuteKinds);
    Out.DeepestRefutedTrail.assign(DeepestRefuted.rbegin(),
                                   DeepestRefuted.rend());
    return SearchOutcome::Refuted;
  }

  uint64_t stepsUsed() const { return StepsUsed; }

  /// Moves this run's explored-query history into the per-edge harvest,
  /// deduplicating per slot by canonical key. Only call after run()
  /// returned Refuted: a history entry records exploration, and only a
  /// fully refuted run certifies every explored query witness-free —
  /// which is what a cross-edge prune requires (sym/Subsume.h).
  void
  harvestInto(std::map<std::string, std::vector<SubsumeEntry>> &Pending) {
    for (auto &[Slot, Entries] : History) {
      std::vector<SubsumeEntry> &Dst = Pending[Slot];
      for (HistoryEntry &E : Entries) {
        bool Dup = false;
        for (const SubsumeEntry &D : Dst)
          if (D.CanonKey == E.CanonKey) {
            Dup = true;
            break;
          }
        if (Dup)
          continue;
        SubsumeEntry SE;
        SE.Slot = Slot;
        SE.CanonKey = std::move(E.CanonKey);
        SE.Q = std::move(E.Q);
        SE.Q.Trail.clear();
        SE.Q.TrailQueries.clear();
        SE.Q.LoopCrossings.clear();
        Dst.push_back(std::move(SE));
      }
    }
    History.clear();
  }

private:
  //--- Worklist management -------------------------------------------------

  /// Finalizes a governed stop: the search could not finish, so the edge
  /// is reported BudgetExhausted (never Refuted) with the structured
  /// reason. Clients map this to the Timeout alarm status — alarm kept.
  SearchOutcome exhausted(EdgeSearchResult &Out) {
    Out.Exhaustion = Pending == ExhaustionReason::None
                         ? ExhaustionReason::Steps
                         : Pending;
    Out.StepsUsed = StepsUsed;
    Out.RefuteKinds = std::move(RefuteKinds);
    if (Out.Note.empty())
      Out.Note = std::string("exhausted: ") +
                 exhaustionReasonName(Out.Exhaustion);
    return SearchOutcome::BudgetExhausted;
  }

  /// Charges a query retained on the worklist (or in history) to the
  /// shared memory accountant. A failed charge — ceiling crossed, or the
  /// search.step fault injected — raises Memory exhaustion; the state is
  /// still retained so release() stays balanced and the loop degrades at
  /// its next deterministic check point.
  void chargeRetained(const Query &Q) {
    if (!Gov)
      return;
    if (Spec) {
      // Phase A: defer the accountant charge and its fault probe to the
      // ordered commit (commitCharge), recording only the byte count.
      Charges.push_back(Q.approxBytes());
      return;
    }
    commitCharge(Q.approxBytes());
  }

  /// Applies one retained-state charge to the live accountant, with the
  /// search.step fault probe — the order-sensitive half of chargeRetained,
  /// called directly when replaying a speculative buffer.
  void commitCharge(uint64_t B) {
    OutstandingBytes += B;
    bool ChargeOk = Gov->charge(B);
    if (FaultInject::shouldFail(faultsite::SearchStep)) {
      S.bump("robust.faultsInjected");
      ChargeOk = false;
    }
    if (!ChargeOk && Pending == ExhaustionReason::None) {
      Gov->MemCeilingHits.fetch_add(1, std::memory_order_relaxed);
      Pending = ExhaustionReason::Memory;
    }
  }

  //--- Speculative wave commit ----------------------------------------------

  /// One wave slot: the canonical query plus (when phase A ran and did not
  /// skip it) the speculative engine holding its buffered effects.
  struct WaveItem {
    Query Q;
    std::unique_ptr<Run> Buf;
  };

  /// True if a live store this speculation consulted changed since the
  /// wave snapshot: a dedup or history miss it observed may have become a
  /// hit, so the buffer is stale and the item must be re-stepped inline.
  bool conflictsWithLive(const Run &B) const {
    for (const std::string &K : B.DedupIns)
      if (BlockDedup.count(K))
        return true;
    for (const SpecHistInsert &HI : B.HistIns) {
      auto It = History.find(HI.Slot);
      if (It != History.end() && It->second.size() != HI.Seen)
        return true;
    }
    return false;
  }

  /// Replays a conflict-free speculative buffer against the live engine in
  /// exactly the order the sequential engine would have produced the same
  /// effects: solver-entry fault probe first (it may veto the whole step),
  /// then the commutative stats/deps merges, then the ordered memory
  /// charges (each with its own search.step fault probe), then the store
  /// insertions and the children.
  void commitItem(Run &B) {
    if (B.SawSolverFaultPoint &&
        FaultInject::shouldFail(faultsite::SolverEntry)) {
      // The fault fires at this item's canonical position: the step
      // degrades to unknown satisfiability, discarding the speculative
      // work — only the entry counters land, exactly as in step().
      S.bump("sym.queriesProcessed");
      S.bump("robust.faultsInjected");
      if (Pending == ExhaustionReason::None)
        Pending = ExhaustionReason::Cancelled;
      return;
    }
    S.mergeFrom(B.LocalStats);
    if (Deps)
      Deps->mergeFrom(B.LocalDeps);
    for (auto &KV : B.LoopModCache)
      LoopModCache.emplace(KV.first, std::move(KV.second));
    if (Gov)
      for (uint64_t Bytes : B.Charges)
        commitCharge(Bytes);
    for (std::string &K : B.DedupIns)
      BlockDedup.insert(std::move(K));
    for (SpecHistInsert &HI : B.HistIns) {
      HistoryEntry NE;
      NE.CanonKey = std::move(HI.Key);
      NE.Q = std::move(HI.Q);
      History[HI.Slot].push_back(std::move(NE));
    }
    if (Probed)
      for (std::string &Slot : B.RegProbes)
        Probed->insert(std::move(Slot));
    for (WaveItem &C : B.Worklist)
      Worklist.push_back(std::move(C));
    for (const auto &[Kind, Count] : B.RefuteKinds)
      RefuteKinds[Kind] += Count;
    if (B.DeepestRefuted.size() > DeepestRefuted.size())
      DeepestRefuted = std::move(B.DeepestRefuted);
    if (B.Witnessed) {
      Witnessed = true;
      WitnessQ = std::move(B.WitnessQ);
    }
  }

  /// Prefetch: speculatively execute the top unbuffered stack items (up
  /// to SearchWaveWidth of them, scanning a bounded window) across the
  /// worker pool. Purely an accelerator — it writes only per-item
  /// buffers, never the live stores, so the DFS commit order in run() is
  /// untouched no matter how the wave is scheduled, skipped, or cut.
  void speculateAhead() {
    const size_t WaveW = std::max<uint32_t>(1, Opts.SearchWaveWidth);
    const size_t ScanWindow = WaveW * 4;
    std::vector<size_t> Targets; // Stack positions, top (next pop) first.
    size_t Scanned = 0;
    for (size_t I = Worklist.size();
         I-- > 0 && Targets.size() < WaveW && Scanned < ScanWindow;
         ++Scanned)
      if (!Worklist[I].Buf)
        Targets.push_back(I);
    if (Targets.size() < 2)
      return; // Nothing to overlap; the caller just steps inline.
    Pool->runWave(
        Targets.size(),
        [&](size_t I) {
          auto B = std::make_unique<Run>(*this, SpecTag{});
          Query QC = Worklist[Targets[I]].Q;
          B->step(std::move(QC));
          bool Terminal = B->Witnessed;
          Worklist[Targets[I]].Buf = std::move(B);
          return Terminal;
        },
        Gov ? &Gov->cancelToken() : nullptr);
  }

  void releaseQuery(const Query &Q) {
    if (!Gov)
      return;
    uint64_t B = Q.approxBytes();
    Gov->release(B);
    OutstandingBytes -= B;
  }

  void refute(Query &Q, const char *Why) {
    Q.Refuted = true;
    S.bump(std::string("sym.refute.") + Why);
    ++RefuteKinds[Why];
    if (Opts.RecordTrails && Q.Trail.size() > DeepestRefuted.size())
      DeepestRefuted = Q.Trail;
  }

  void push(Query Q) {
    if (Q.Refuted) {
      S.bump("sym.pathsRefuted");
      return;
    }
    if (Opts.RecordTrails) {
      Q.Trail.push_back(Q.Pos);
      if (Opts.RecordTrailQueries)
        Q.TrailQueries.push_back(Q.toString(P, PTA.Locs));
    }
    if (Opts.Repr == Representation::FullyExplicit && explodeAndPush(Q))
      return;
    chargeRetained(Q);
    Worklist.push_back(WaveItem{std::move(Q), nullptr});
  }

  /// Fully explicit mode: split the first multi-location region into
  /// singleton cases. Returns true if a split happened (cases pushed).
  bool explodeAndPush(Query &Q) {
    for (const auto &[Sym, R] : Q.Regions) {
      size_t Cases = R.Locs.size() + (R.HasData ? 1 : 0);
      if (Cases <= 1 || !Q.symIsReferenced(Sym))
        continue;
      S.bump("sym.explicitSplits");
      for (AbsLocId L : R.Locs) {
        Query Q2 = Q;
        Region &R2 = Q2.regionOf(Sym);
        R2.HasData = false;
        R2.Locs = IdSet{L};
        push(std::move(Q2));
      }
      if (R.HasData) {
        Query Q2 = Q;
        Q2.regionOf(Sym) = Region::data();
        push(std::move(Q2));
      }
      return true;
    }
    return false;
  }

  void markWitness(Query Q) {
    Witnessed = true;
    WitnessQ = std::move(Q);
    S.bump("sym.witnesses");
  }

  //--- Main step -----------------------------------------------------------

  void step(Query Q) {
    S.bump("sym.queriesProcessed");
    if (Q.Refuted) {
      S.bump("sym.pathsRefuted");
      return;
    }
    if (Spec) {
      // The global fault registry is order-sensitive (counted hits), so
      // speculation only records that the probe point was reached; the
      // commit consults the registry at this item's canonical position.
      SawSolverFaultPoint = true;
    } else if (FaultInject::shouldFail(faultsite::SolverEntry)) {
      // Simulated solver failure: the query's satisfiability is unknown,
      // so the whole edge degrades to BudgetExhausted (alarm kept).
      S.bump("robust.faultsInjected");
      if (Pending == ExhaustionReason::None)
        Pending = ExhaustionReason::Cancelled;
      return;
    }
    bool PureSat;
    {
      ScopedTimer ST(S, "hist.pureSatNanos"); // SMT-discharge latency.
      PureSat = Q.Pure.isSatisfiable();
    }
    if (!PureSat) {
      refute(Q, "pure");
      S.bump("sym.pathsRefuted");
      return;
    }
    if (Q.memoryEmpty()) {
      markWitness(std::move(Q));
      return;
    }
    if (Deps)
      Deps->Funcs.insert(Q.Pos.F);
    const Function &Fn = P.Funcs[Q.Pos.F];
    if (Q.Pos.Idx > 0) {
      const Instruction &I = Fn.Blocks[Q.Pos.B].Insts[Q.Pos.Idx - 1];
      Q.Pos.Idx -= 1;
      transfer(std::move(Q), I);
      return;
    }
    if (Q.Pos.B == Fn.Entry) {
      atFunctionEntry(std::move(Q));
      return;
    }
    atBlockStart(std::move(Q));
  }

  //--- Block starts, loops, assumes ----------------------------------------

  /// Exact-duplicate merging at block starts: two backwards paths whose
  /// queries became identical (e.g. after an irrelevant branch's guard
  /// constraints were discharged) are collapsed. This plays the role of
  /// the paper's "add guard constraints only when the queries on the two
  /// sides of the branch differ" optimization (Sec. 3.2, after ESP/PSE):
  /// it cuts the exponential blowup of irrelevant path sensitivity with
  /// no precision loss.
  bool duplicateAtBlockStart(const Query &Q) {
    if (!Opts.QuerySimplification)
      return false;
    std::string Key = Q.historySlot() + "##" + Q.canonicalKey();
    if (Spec) {
      // Speculation reads the frozen live set and records the intended
      // insertion; a hit that appears only after the wave snapshot is a
      // commit-time conflict and triggers inline re-execution.
      if (Shared->BlockDedup.count(Key)) {
        S.bump("sym.pathsMerged");
        return true;
      }
      DedupIns.push_back(std::move(Key));
      return false;
    }
    if (!BlockDedup.insert(std::move(Key)).second) {
      S.bump("sym.pathsMerged");
      return true;
    }
    return false;
  }

  void atBlockStart(Query Q) {
    if (outsideSlice(Q))
      return;
    if (duplicateAtBlockStart(Q))
      return;
    const Function &Fn = P.Funcs[Q.Pos.F];
    BlockId B = Q.Pos.B;
    bool IsHead = Fn.isLoopHeader(B);
    const LoopInfo *L = IsHead ? &Fn.loopAt(B) : nullptr;
    if (IsHead) {
      uint32_t &Cross = Q.LoopCrossings[{Q.Pos.F, B}];
      ++Cross;
      // Loop-invariant iteration depth: how often paths re-cross heads.
      S.record("hist.loopCrossings", Cross);
      if (Opts.Loop == LoopMode::DropAll) {
        widenDropAll(Q, *L);
      } else {
        if (Cross > 1)
          widenPure(Q, *L);
        if (Cross > Opts.MaxLoopCrossings) {
          widenDropAll(Q, *L);
          S.bump("sym.hardWiden");
        }
      }
      if (historySubsumed(Q)) {
        S.bump("sym.subsumedAtLoopHead");
        return;
      }
      if (Q.memoryEmpty()) {
        // Widening weakened the query to `any`: nothing left to refute.
        markWitness(std::move(Q));
        return;
      }
    }
    const std::vector<BlockId> &Preds = Fn.Preds[B];
    if (Preds.empty()) {
      // Unreachable block (should not happen for frontend output).
      refute(Q, "unreachableBlock");
      return;
    }
    for (BlockId Pd : Preds) {
      if (IsHead && Opts.Loop == LoopMode::DropAll && L->Body.contains(Pd))
        continue; // DropAll skips the loop body entirely.
      Query Q2 = Q;
      Q2.Pos.B = Pd;
      Q2.Pos.Idx = static_cast<uint32_t>(Fn.Blocks[Pd].Insts.size());
      applyAssume(Q2, Fn, Pd, B);
      if (Q2.Refuted) {
        S.bump("sym.pathsRefuted");
        continue;
      }
      push(std::move(Q2));
    }
  }

  /// Heap-granular mod summary of a loop body including callees (cached
  /// per (function, context, loop)). Bases are points-to filtered, like
  /// WALA's ModRef, so e.g. a loop writing HashMap tables does not count
  /// as modifying Vec arrays even though both use @elems.
  const PointsToResult::HeapMod &loopHeapMod(FuncId F, AbsLocId Ctx,
                                             const LoopInfo &L) {
    auto Key = std::make_tuple(F, Ctx, L.Header);
    if (Spec) {
      // The summary is a pure function of (F, Ctx, loop), so reading the
      // parent's frozen cache is safe; misses are computed into the local
      // cache and folded in at commit (first writer wins, same content).
      auto SIt = Shared->LoopModCache.find(Key);
      if (SIt != Shared->LoopModCache.end())
        return SIt->second;
    }
    auto It = LoopModCache.find(Key);
    if (It != LoopModCache.end())
      return It->second;
    PointsToResult::HeapMod M;
    const Function &Fn = P.Funcs[F];
    for (uint32_t B : L.Body) {
      const BasicBlock &BB = Fn.Blocks[B];
      for (uint32_t Idx = 0; Idx < BB.Insts.size(); ++Idx) {
        const Instruction &I = BB.Insts[Idx];
        switch (I.Op) {
        case Opcode::Store:
          if (Deps)
            Deps->PtVars.emplace(F, Ctx, I.Dst);
          M.FieldBases[I.Field].insertAll(PTA.ptVarCtx(F, Ctx, I.Dst));
          break;
        case Opcode::ArrayStore:
          if (Deps)
            Deps->PtVars.emplace(F, Ctx, I.Dst);
          M.FieldBases[P.ElemsField].insertAll(
              PTA.ptVarCtx(F, Ctx, I.Dst));
          break;
        case Opcode::StoreStatic:
          M.Globals.insert(I.Global);
          break;
        case Opcode::Call:
          if (Deps)
            Deps->CalleesAllSites.insert({F, B, Idx});
          for (FuncId Callee : PTA.calleesAt({F, B, Idx})) {
            if (Deps)
              Deps->HeapMods.insert(Callee);
            M.mergeFrom(PTA.heapModOf(Callee));
          }
          break;
        default:
          break;
        }
      }
    }
    return LoopModCache.emplace(Key, std::move(M)).first->second;
  }

  /// May the summarized writes affect cell \p C of query \p Q?
  bool cellAffected(const Query &Q, const PointsToResult::HeapMod &M,
                    const HeapCell &C) const {
    return M.mayWriteField(C.Field, Q.regionOf(C.Base).Locs);
  }

  /// Drops pure constraints on values the loop body may modify
  /// (Sec. 3.3's trivial widening for the pure base domain).
  void widenPure(Query &Q, const LoopInfo &L) {
    const PointsToResult::HeapMod &M =
        loopHeapMod(Q.Pos.F, Q.Frames.back().Ctx, L);
    std::vector<SymVarId> Mutable;
    uint32_t Fi = Q.curFrame();
    for (const auto &[K, V] : Q.Locals)
      if (K.first == Fi && L.VarsWritten.contains(K.second) && V.isSym())
        Mutable.push_back(V.Sym);
    for (const HeapCell &C : Q.Cells)
      if (cellAffected(Q, M, C) && C.Target.isSym())
        Mutable.push_back(C.Target.Sym);
    for (const auto &[G, V] : Q.Globals)
      if (M.Globals.contains(G) && V.isSym())
        Mutable.push_back(V.Sym);
    Q.Pure.dropMentioning([&](uint32_t V) {
      return std::find(Mutable.begin(), Mutable.end(), V) != Mutable.end();
    });
  }

  /// Drops every constraint the loop may touch (LoopMode::DropAll, and the
  /// hard-widening fallback of the full mode).
  void widenDropAll(Query &Q, const LoopInfo &L) {
    const PointsToResult::HeapMod &M =
        loopHeapMod(Q.Pos.F, Q.Frames.back().Ctx, L);
    uint32_t Fi = Q.curFrame();
    for (auto It = Q.Locals.begin(); It != Q.Locals.end();) {
      if (It->first.first == Fi && L.VarsWritten.contains(It->first.second))
        It = Q.Locals.erase(It);
      else
        ++It;
    }
    Q.Cells.erase(std::remove_if(Q.Cells.begin(), Q.Cells.end(),
                                 [&](const HeapCell &C) {
                                   return cellAffected(Q, M, C);
                                 }),
                  Q.Cells.end());
    for (auto It = Q.Globals.begin(); It != Q.Globals.end();) {
      if (M.Globals.contains(It->first))
        It = Q.Globals.erase(It);
      else
        ++It;
    }
    Q.Pure.dropMentioning(
        [&](uint32_t V) { return !Q.symIsReferenced(V); });
    Q.gcRegions();
  }

  //--- Query history / simplification --------------------------------------

  struct HistoryEntry {
    std::string CanonKey;
    Query Q;
  };

  bool historySubsumed(Query &Q) {
    if (!Opts.QuerySimplification)
      return false; // Ablation: no history at all (paper hypothesis 2).
    ScopedTimer ST(S, "hist.subsumeNanos"); // Subsumption-check latency.
    std::string Slot = Q.historySlot();
    std::string Key = Q.canonicalKey();
    if (Spec) {
      // Scan the frozen history. A hit is final: entries are only ever
      // appended, so the prefix this scan saw is the prefix the
      // sequential engine would scan first. A miss records the intended
      // insertion plus the entry count seen — if the live slot grew by
      // commit time the buffer is stale (a new entry might subsume this
      // query) and conflictsWithLive forces re-execution.
      size_t Seen = 0;
      auto It = Shared->History.find(Slot);
      if (It != Shared->History.end()) {
        Seen = It->second.size();
        for (const HistoryEntry &E : It->second) {
          if (E.CanonKey == Key)
            return true;
          if (weakerThan(E.Q, Q))
            return true;
        }
      }
      if (registrySubsumed(Q, Slot, Key))
        return true;
      SpecHistInsert HI;
      HI.Slot = std::move(Slot);
      HI.Seen = Seen;
      HI.Key = std::move(Key);
      HI.Q = Q;
      HI.Q.Trail.clear();
      chargeRetained(HI.Q);
      HistIns.push_back(std::move(HI));
      return false;
    }
    std::vector<HistoryEntry> &Entries = History[Slot];
    for (const HistoryEntry &E : Entries) {
      if (E.CanonKey == Key)
        return true;
      if (weakerThan(E.Q, Q))
        return true;
    }
    if (registrySubsumed(Q, Slot, Key))
      return true;
    HistoryEntry NE;
    NE.CanonKey = std::move(Key);
    NE.Q = Q;
    NE.Q.Trail.clear();
    chargeRetained(NE.Q);
    Entries.push_back(std::move(NE));
    return false;
  }

  /// True if \p Weak is semantically weaker than (entailed by) \p Strong:
  /// refuting Weak refutes Strong, so Strong can be dropped when Weak has
  /// already been recorded. Conservative (may say false). The predicate
  /// itself lives in sym/Subsume.cpp so the global registry and the
  /// property tests exercise exactly the history join's notion of
  /// subsumption.
  bool weakerThan(const Query &Weak, const Query &Strong) {
    return queryWeakerThan(Weak, Strong, Opts.Repr);
  }

  /// Cross-edge subsumption probe, called on a per-run history miss: this
  /// edge's pending harvest first (a refuted producer search prunes its
  /// sibling producers before anything is published), then the shared
  /// registry. Both stores are frozen for the duration of a run, so
  /// speculative probes are exact; slots probed against the shared
  /// registry without a hit are recorded — buffered during speculation —
  /// for the prefetch revalidation protocol (docs/PRUNING.md).
  bool registrySubsumed(const Query &Q, const std::string &Slot,
                        const std::string &Key) {
    if (EdgePend) {
      auto It = EdgePend->find(Slot);
      if (It != EdgePend->end())
        for (const SubsumeEntry &E : It->second)
          if (E.CanonKey == Key || queryWeakerThan(E.Q, Q, Opts.Repr)) {
            S.bump("sym.subsumedGlobal");
            return true;
          }
    }
    if (!Reg)
      return false;
    if (Reg->probe(Q, Slot, Key, Opts.Repr)) {
      S.bump("sym.subsumedGlobal");
      S.bump("par.registryHits");
      return true;
    }
    S.bump("par.registryMisses");
    if (Spec)
      RegProbes.push_back(Slot);
    else if (Probed)
      Probed->insert(Slot);
    return false;
  }

  /// Forward-slice pruning (Opts.ForwardSlice): a query constraining a
  /// symbolic instance whose allocation can never reach the current block
  /// has no concretization — the instance must exist (hence have been
  /// allocated) wherever its binding holds. Checked at block granularity,
  /// so only at block starts and function entries.
  bool outsideSlice(Query &Q) {
    if (!Slice)
      return false;
    for (const auto &[Sym, R] : Q.Regions) {
      if (R.HasData || !R.hasLocs() || !Q.symIsReferenced(Sym))
        continue;
      bool Reachable = false;
      for (AbsLocId L : R.Locs)
        if (Slice->mayExecuteAfter(L, Q.Pos.F, Q.Pos.B)) {
          Reachable = true;
          break;
        }
      if (!Reachable) {
        refute(Q, "slice");
        S.bump("sym.pathsRefuted");
        return true;
      }
    }
    return false;
  }

  //--- Assume handling ------------------------------------------------------

  void applyAssume(Query &Q, const Function &Fn, BlockId Pred, BlockId B) {
    const Terminator &T = Fn.Blocks[Pred].Term;
    if (T.Kind != TermKind::If)
      return;
    if (T.Then == T.Else)
      return; // Both edges reach B: no constraint.
    RelOp Rel = (T.Then == B) ? T.Rel : negateRelOp(T.Rel);
    uint32_t Fi = Q.curFrame();
    switch (T.RhsKind) {
    case CondRhsKind::Null:
      assumeNullCompare(Q, Fi, T.Lhs, Rel);
      return;
    case CondRhsKind::IntConst: {
      SymOrRefuted L = getOrCreateDataSym(Q, Fi, T.Lhs);
      if (L.Refuted)
        return;
      addPathConstraint(Q, PureTerm::mkVar(L.Sym), Rel,
                        PureTerm::mkConst(T.RhsConst));
      return;
    }
    case CondRhsKind::Var:
      break;
    }
    // Var-var comparison: decide reference vs data.
    bool IsData = Rel == RelOp::LT || Rel == RelOp::LE || Rel == RelOp::GT ||
                  Rel == RelOp::GE;
    if (!IsData) {
      auto Classify = [&](VarId V) -> int {
        // 1 = ref, -1 = data, 0 = unknown.
        auto Bd = Q.getLocal(Fi, V);
        if (Bd) {
          if (Bd->isNull())
            return 1;
          const Region &R = Q.regionOf(Bd->Sym);
          if (R.dataOnly())
            return -1;
          if (R.hasLocs())
            return 1;
        }
        return 0;
      };
      int CL = Classify(T.Lhs), CR = Classify(T.Rhs);
      if (CL == -1 || CR == -1)
        IsData = true;
      else if (CL == 0 && CR == 0)
        IsData = ptLocal(Q, Fi, T.Lhs).empty() &&
                 ptLocal(Q, Fi, T.Rhs).empty();
    }
    if (IsData) {
      SymOrRefuted L = getOrCreateDataSym(Q, Fi, T.Lhs);
      if (L.Refuted)
        return;
      SymOrRefuted R = getOrCreateDataSym(Q, Fi, T.Rhs);
      if (R.Refuted)
        return;
      addPathConstraint(Q, PureTerm::mkVar(L.Sym), Rel,
                        PureTerm::mkVar(R.Sym));
      return;
    }
    // Reference equality / disequality.
    auto LB = Q.getLocal(Fi, T.Lhs);
    auto RB = Q.getLocal(Fi, T.Rhs);
    if (Rel == RelOp::EQ) {
      if (!LB && !RB) {
        // x == y with neither constrained: two cases — both null, or both
        // the same (non-null) instance drawn from pt(x) ∩ pt(y). The
        // both-null case is pushed as a separate query (the query's
        // position is already at the predecessor block).
        Query NullCase = Q;
        NullCase.setLocal(Fi, T.Lhs, ValRef::mkNull());
        NullCase.setLocal(Fi, T.Rhs, ValRef::mkNull());
        push(std::move(NullCase));
        IdSet Common = ptLocal(Q, Fi, T.Lhs)
                           .intersectWith(ptLocal(Q, Fi, T.Rhs));
        if (Common.empty()) {
          // Only the both-null case was possible.
          refute(Q, "aliasAssume");
          return;
        }
        SymVarId Shared = Q.freshSym(Region::ofLocs(Common));
        Q.setLocal(Fi, T.Lhs, ValRef::mkSym(Shared));
        Q.setLocal(Fi, T.Rhs, ValRef::mkSym(Shared));
        return;
      }
      ValRef LV = LB ? *LB : ValRef();
      if (!LB) {
        // Mirror y's value onto x.
        bindLocalToVal(Q, Fi, T.Lhs, *RB, ptLocal(Q, Fi, T.Lhs));
        return;
      }
      if (!RB) {
        bindLocalToVal(Q, Fi, T.Rhs, LV, ptLocal(Q, Fi, T.Rhs));
        return;
      }
      Q.unify(*LB, *RB);
      if (Q.Refuted)
        S.bump("sym.refute.aliasAssume");
      return;
    }
    // Rel == NE.
    if (LB && RB) {
      if (LB->isNull() && RB->isNull()) {
        refute(Q, "nullDisequality");
        return;
      }
      if (LB->isSym() && RB->isSym() && LB->Sym == RB->Sym) {
        refute(Q, "selfDisequality");
        return;
      }
      if (LB->isSym() && RB->isSym() &&
          Q.regionOf(LB->Sym).Locs.disjointWith(Q.regionOf(RB->Sym).Locs))
        return; // Already disaliased by instance constraints.
    }
    // Disequalities are dropped after the local check (query normal form,
    // Sec. 3.3); separation and `from` constraints retain the useful part.
  }

  void assumeNullCompare(Query &Q, uint32_t Fi, VarId V, RelOp Rel) {
    auto B = Q.getLocal(Fi, V);
    if (Rel == RelOp::EQ) { // Assume V == null.
      if (!B) {
        Q.setLocal(Fi, V, ValRef::mkNull());
        return;
      }
      if (B->isSym())
        refute(Q, "nonNullVsNull");
      return;
    }
    // Assume V != null.
    if (B) {
      if (B->isNull())
        refute(Q, "nullVsNonNull");
      return;
    }
    const IdSet &Pt = ptLocal(Q, Fi, V);
    if (Pt.empty()) {
      // The variable can never hold a heap reference; in reference context
      // it is always null, so the guard is unsatisfiable.
      refute(Q, "emptyPtNonNull");
      return;
    }
    SymVarId Sym = Q.freshSym(Region::ofLocs(Pt));
    Q.setLocal(Fi, V, ValRef::mkSym(Sym));
  }

  void addPathConstraint(Query &Q, PureTerm L, RelOp Rel, PureTerm R) {
    Q.Pure.addCmp(L, Rel, R, /*IsPath=*/true);
    while (Q.Pure.pathCount() > Opts.PathConstraintCap)
      Q.Pure.dropOldestPath();
    if (!Q.Pure.isSatisfiable())
      refute(Q, "pure");
  }

  //--- Binding helpers -------------------------------------------------------

  bool flowNarrowing() const {
    return Opts.Repr != Representation::FullySymbolic;
  }

  /// Context-qualified pt() of local \p V in frame \p Fi of \p Q.
  const IdSet &ptLocal(const Query &Q, uint32_t Fi, VarId V) const {
    const QueryFrame &Fr = Q.Frames[Fi];
    if (Deps)
      Deps->PtVars.emplace(Fr.Func, Fr.Ctx, V);
    return PTA.ptVarCtx(Fr.Func, Fr.Ctx, V);
  }

  /// Materializes the receiver constraint implied by a frame's heap
  /// context: in analysis unit (F, Ctx), `this` is an instance of Ctx.
  void bindFrameReceiver(Query &Q, uint32_t Fi) {
    const QueryFrame &Fr = Q.Frames[Fi];
    if (Fr.Ctx == InvalidId)
      return;
    const Function &Fn = P.Funcs[Fr.Func];
    if (Fn.IsStatic || Fn.NumParams == 0)
      return;
    SymVarId Recv = Q.freshSym(Region::ofLocs(IdSet{Fr.Ctx}));
    if (Deps)
      Deps->PtVars.emplace(Fr.Func, Fr.Ctx, 0);
    bindLocalToSym(Q, Fi, /*this slot=*/0, Recv,
                   PTA.ptVarCtx(Fr.Func, Fr.Ctx, 0));
  }

  /// Binds local \p V to existing symbolic value \p Sym, unifying with any
  /// existing binding and (mixed mode) narrowing by \p Pt.
  void bindLocalToSym(Query &Q, uint32_t Fi, VarId V, SymVarId Sym,
                      const IdSet &Pt) {
    bindLocalToVal(Q, Fi, V, ValRef::mkSym(Sym), Pt);
  }

  void bindLocalToVal(Query &Q, uint32_t Fi, VarId V, ValRef Val,
                      const IdSet &Pt) {
    auto B = Q.getLocal(Fi, V);
    ValRef Merged = Val;
    if (B) {
      Merged = Q.unify(*B, Val);
      if (Q.Refuted) {
        S.bump("sym.refute.separation");
        return;
      }
    } else {
      Q.setLocal(Fi, V, Val);
    }
    if (Merged.isSym() && flowNarrowing()) {
      Q.narrowSymLocs(Merged.Sym, Pt);
      if (Q.Refuted)
        S.bump("sym.refute.instance");
    }
  }

  /// Gets the symbolic value bound to local \p V, creating a fresh one
  /// with region pt(V) if unbound. Refutes on null (callers use this in
  /// dereference positions) or empty region.
  SymOrRefuted getOrCreateRefSym(Query &Q, uint32_t Fi, VarId V) {
    SymOrRefuted R;
    auto B = Q.getLocal(Fi, V);
    if (B) {
      if (B->isNull()) {
        refute(Q, "nullDeref");
        R.Refuted = true;
        return R;
      }
      if (flowNarrowing()) {
        Q.narrowSymLocs(B->Sym, ptLocal(Q, Fi, V));
        if (Q.Refuted) {
          S.bump("sym.refute.instance");
          R.Refuted = true;
          return R;
        }
      }
      R.Sym = B->Sym;
      return R;
    }
    const IdSet &Pt = ptLocal(Q, Fi, V);
    if (Pt.empty()) {
      refute(Q, "emptyPtDeref");
      R.Refuted = true;
      return R;
    }
    R.Sym = Q.freshSym(Region::ofLocs(Pt));
    Q.setLocal(Fi, V, ValRef::mkSym(R.Sym));
    return R;
  }

  /// Gets the data symbolic variable for local \p V, creating if needed.
  SymOrRefuted getOrCreateDataSym(Query &Q, uint32_t Fi, VarId V) {
    SymOrRefuted R;
    auto B = Q.getLocal(Fi, V);
    if (B) {
      if (B->isNull()) {
        refute(Q, "nullAsData");
        R.Refuted = true;
        return R;
      }
      Region &Reg = Q.regionOf(B->Sym);
      if (!Reg.HasData) {
        refute(Q, "refAsData");
        R.Refuted = true;
        return R;
      }
      Reg = Region::data(); // Used as an integer: value is in data.
      R.Sym = B->Sym;
      return R;
    }
    R.Sym = Q.freshSym(Region::data());
    Q.setLocal(Fi, V, ValRef::mkSym(R.Sym));
    return R;
  }

  //--- Instruction transfers --------------------------------------------------

  void transfer(Query Q, const Instruction &I) {
    uint32_t Fi = Q.curFrame();
    switch (I.Op) {
    case Opcode::Assign: {
      auto B = Q.getLocal(Fi, I.Dst);
      if (!B) {
        push(std::move(Q));
        return;
      }
      ValRef Val = *B;
      Q.eraseLocal(Fi, I.Dst);
      bindLocalToVal(Q, Fi, I.Src, Val, ptLocal(Q, Fi, I.Src));
      push(std::move(Q));
      return;
    }
    case Opcode::ConstInt:
      transferConstInt(std::move(Q), I);
      return;
    case Opcode::ConstNull: {
      auto B = Q.getLocal(Fi, I.Dst);
      if (B) {
        if (B->isSym()) {
          refute(Q, "constNull");
          S.bump("sym.pathsRefuted");
          return;
        }
        Q.eraseLocal(Fi, I.Dst);
      }
      push(std::move(Q));
      return;
    }
    case Opcode::Havoc: {
      auto B = Q.getLocal(Fi, I.Dst);
      if (B) {
        if (B->isSym() && !Q.regionOf(B->Sym).HasData) {
          refute(Q, "havocRef");
          S.bump("sym.pathsRefuted");
          return;
        }
        Q.eraseLocal(Fi, I.Dst);
        if (B->isSym()) {
          // The havoc'd value is arbitrary, so any constraint on it is
          // satisfiable by choice: drop them (existential elimination).
          // This keeps harness nondeterminism guards from consuming the
          // path-constraint budget.
          SymVarId V = B->Sym;
          Q.Pure.dropMentioning([&](uint32_t S2) { return S2 == V; });
          Q.gcRegions();
        }
      }
      push(std::move(Q));
      return;
    }
    case Opcode::New:
    case Opcode::NewArray:
      transferNew(std::move(Q), I);
      return;
    case Opcode::Load:
      transferLoad(std::move(Q), I, I.Field);
      return;
    case Opcode::ArrayLoad:
      transferLoad(std::move(Q), I, P.ElemsField);
      return;
    case Opcode::Store:
      transferStore(std::move(Q), I, /*IsArray=*/false);
      return;
    case Opcode::ArrayStore:
      transferStore(std::move(Q), I, /*IsArray=*/true);
      return;
    case Opcode::LoadStatic:
      transferLoadStatic(std::move(Q), I);
      return;
    case Opcode::StoreStatic:
      transferStoreStatic(std::move(Q), I);
      return;
    case Opcode::ArrayLen:
      transferArrayLen(std::move(Q), I);
      return;
    case Opcode::Binop:
      transferBinop(std::move(Q), I);
      return;
    case Opcode::Call:
      transferCall(std::move(Q), I);
      return;
    }
  }

  void transferConstInt(Query Q, const Instruction &I) {
    uint32_t Fi = Q.curFrame();
    auto B = Q.getLocal(Fi, I.Dst);
    if (!B) {
      push(std::move(Q));
      return;
    }
    if (B->isNull()) {
      refute(Q, "intVsNull");
      S.bump("sym.pathsRefuted");
      return;
    }
    Region &R = Q.regionOf(B->Sym);
    if (!R.HasData) {
      refute(Q, "intVsRef");
      S.bump("sym.pathsRefuted");
      return;
    }
    Q.Pure.addCmp(PureTerm::mkVar(B->Sym), RelOp::EQ,
                  PureTerm::mkConst(I.IntVal), /*IsPath=*/false);
    Q.eraseLocal(Fi, I.Dst);
    if (!Q.Pure.isSatisfiable()) {
      refute(Q, "pure");
      S.bump("sym.pathsRefuted");
      return;
    }
    push(std::move(Q));
  }

  void transferNew(Query Q, const Instruction &I) {
    uint32_t Fi = Q.curFrame();
    auto B = Q.getLocal(Fi, I.Dst);
    if (!B) {
      push(std::move(Q));
      return;
    }
    if (B->isNull()) {
      refute(Q, "newVsNull");
      S.bump("sym.pathsRefuted");
      return;
    }
    SymVarId V = B->Sym;
    // WitNew: the bound instance must be THE location this allocation
    // creates under the current frame's context (the frame context makes
    // the allocation's abstract location exact, as in the original tool's
    // execution over context-qualified call graph nodes).
    AbsLocId AllocCtx = PTA.allocContextFor(Q.Pos.F, Q.Frames[Fi].Ctx);
    AbsLocId L = PTA.Locs.find(I.Alloc, AllocCtx);
    if (Deps) {
      Deps->AllocCtxs.emplace(Q.Pos.F, Q.Frames[Fi].Ctx);
      Deps->LocFinds.emplace(I.Alloc, AllocCtx);
    }
    if (L == InvalidId) {
      // This (site, context) combination was never realized.
      refute(Q, "witNew");
      S.bump("sym.pathsRefuted");
      return;
    }
    Q.narrowSymLocs(V, IdSet{L});
    if (Q.Refuted) {
      S.bump("sym.refute.witNew");
      S.bump("sym.pathsRefuted");
      return;
    }
    finishFreshDischarge(std::move(Q), Fi, I.Dst, V);
  }

  /// Completes WitNew for the fresh instance \p V bound to \p Dst: fields
  /// are null-initialized and nothing can reference the object before its
  /// allocation.
  void finishFreshDischarge(Query Q, uint32_t Fi, VarId Dst, SymVarId V) {
    Q.eraseLocal(Fi, Dst);
    for (HeapCell *C : Q.cellsWithBase(V)) {
      if (!C->Target.isNull()) {
        refute(Q, "freshFieldNonNull");
        S.bump("sym.pathsRefuted");
        return;
      }
    }
    Q.Cells.erase(std::remove_if(Q.Cells.begin(), Q.Cells.end(),
                                 [&](const HeapCell &C) {
                                   return C.Base == V;
                                 }),
                  Q.Cells.end());
    if (Q.symIsReferenced(V)) {
      refute(Q, "refBeforeAlloc");
      S.bump("sym.pathsRefuted");
      return;
    }
    Q.gcRegions();
    push(std::move(Q));
  }

  void transferLoad(Query Q, const Instruction &I, FieldId Fld) {
    uint32_t Fi = Q.curFrame();
    auto B = Q.getLocal(Fi, I.Dst);
    if (!B) {
      push(std::move(Q));
      return;
    }
    ValRef Loaded = *B;
    Q.eraseLocal(Fi, I.Dst);
    SymOrRefuted Base = getOrCreateRefSym(Q, Fi, I.Src);
    if (Base.Refuted) {
      S.bump("sym.pathsRefuted");
      return;
    }
    // Narrow the loaded value by pt over the base's region (WitRead).
    if (Loaded.isSym() && flowNarrowing()) {
      IdSet FieldPt;
      for (AbsLocId L : Q.regionOf(Base.Sym).Locs) {
        if (Deps)
          Deps->PtFields.emplace(L, Fld);
        FieldPt.insertAll(PTA.ptField(L, Fld));
      }
      Q.narrowSymLocs(Loaded.Sym, FieldPt);
      if (Q.Refuted) {
        S.bump("sym.refute.instance");
        S.bump("sym.pathsRefuted");
        return;
      }
    }
    if (Fld != P.ElemsField) {
      Q.addCell(Base.Sym, Fld, Loaded, P.ElemsField);
      if (Q.Refuted) {
        S.bump("sym.refute.separation");
        S.bump("sym.pathsRefuted");
        return;
      }
      push(std::move(Q));
      return;
    }
    // Array load: the read cell may coincide with an existing @elems cell
    // on the same base (same index) or be a distinct one. Case split.
    std::vector<HeapCell> Existing;
    for (HeapCell *C : Q.cellsWithBase(Base.Sym))
      if (C->Field == Fld)
        Existing.push_back(*C);
    for (const HeapCell &C : Existing) {
      Query Q2 = Q;
      Q2.unify(C.Target, Loaded);
      if (Q2.Refuted) {
        S.bump("sym.pathsRefuted");
        continue;
      }
      push(std::move(Q2));
    }
    Q.addCell(Base.Sym, Fld, Loaded, P.ElemsField);
    push(std::move(Q));
  }

  void transferStore(Query Q, const Instruction &I, bool IsArray) {
    uint32_t Fi = Q.curFrame();
    FieldId Fld = IsArray ? P.ElemsField : I.Field;
    VarId BaseVar = I.Dst;
    VarId SrcVar = I.Src;
    // Collect matching cells (by field).
    std::vector<HeapCell> Matching;
    for (const HeapCell &C : Q.Cells)
      if (C.Field == Fld)
        Matching.push_back(C);
    if (Matching.empty()) {
      push(std::move(Q)); // Frame rule: the write cannot affect the query.
      return;
    }
    // Produced cases (WitWrite, one per matching cell).
    for (const HeapCell &C : Matching) {
      Query Q2 = Q;
      Q2.removeCell(C);
      bindLocalToSym(Q2, Fi, BaseVar, C.Base, ptLocal(Q2, Fi, BaseVar));
      if (Q2.Refuted) {
        S.bump("sym.pathsRefuted");
        continue;
      }
      bindLocalToVal(Q2, Fi, SrcVar, C.Target,
                     ptLocal(Q2, Fi, SrcVar));
      if (Q2.Refuted) {
        S.bump("sym.pathsRefuted");
        continue;
      }
      S.bump("sym.producedCases");
      push(std::move(Q2));
    }
    // Not-produced case: the written cell differs from every matching cell.
    SymOrRefuted WrittenBase = getOrCreateRefSym(Q, Fi, BaseVar);
    if (WrittenBase.Refuted) {
      S.bump("sym.pathsRefuted");
      return;
    }
    if (!IsArray) {
      for (const HeapCell &C : Matching) {
        if (C.Base == WrittenBase.Sym) {
          // The write targets exactly this cell: it must have produced it.
          refute(Q, "mustProduce");
          S.bump("sym.pathsRefuted");
          return;
        }
        // Disequality WrittenBase != C.Base is checked here and then
        // dropped (query normal form, Sec. 3.3); separation plus the
        // instance constraints keep the useful disaliasing information.
      }
    }
    S.bump("sym.notProducedCases");
    push(std::move(Q));
  }

  void transferLoadStatic(Query Q, const Instruction &I) {
    uint32_t Fi = Q.curFrame();
    auto B = Q.getLocal(Fi, I.Dst);
    if (!B) {
      push(std::move(Q));
      return;
    }
    ValRef Loaded = *B;
    Q.eraseLocal(Fi, I.Dst);
    ValRef Merged = Loaded;
    auto G = Q.getGlobal(I.Global);
    if (G) {
      Merged = Q.unify(*G, Loaded);
      if (Q.Refuted) {
        S.bump("sym.refute.separation");
        S.bump("sym.pathsRefuted");
        return;
      }
    } else {
      Q.Globals[I.Global] = Loaded;
    }
    if (Merged.isSym() && flowNarrowing()) {
      if (Deps)
        Deps->PtGlobals.insert(I.Global);
      Q.narrowSymLocs(Merged.Sym, PTA.ptGlobal(I.Global));
      if (Q.Refuted) {
        S.bump("sym.refute.instance");
        S.bump("sym.pathsRefuted");
        return;
      }
    }
    push(std::move(Q));
  }

  void transferStoreStatic(Query Q, const Instruction &I) {
    uint32_t Fi = Q.curFrame();
    auto G = Q.getGlobal(I.Global);
    if (!G) {
      push(std::move(Q));
      return;
    }
    ValRef Val = *G;
    Q.Globals.erase(I.Global);
    // Static cells admit strong updates: this store produced the binding.
    bindLocalToVal(Q, Fi, I.Src, Val, ptLocal(Q, Fi, I.Src));
    if (Q.Refuted) {
      S.bump("sym.pathsRefuted");
      return;
    }
    push(std::move(Q));
  }

  void transferArrayLen(Query Q, const Instruction &I) {
    uint32_t Fi = Q.curFrame();
    auto B = Q.getLocal(Fi, I.Dst);
    if (!B) {
      push(std::move(Q));
      return;
    }
    if (B->isNull()) {
      refute(Q, "lenVsNull");
      S.bump("sym.pathsRefuted");
      return;
    }
    Region &R = Q.regionOf(B->Sym);
    if (!R.HasData) {
      refute(Q, "lenVsRef");
      S.bump("sym.pathsRefuted");
      return;
    }
    // Array lengths are non-negative; keep that fact about the value.
    Q.Pure.addCmp(PureTerm::mkVar(B->Sym), RelOp::GE, PureTerm::mkConst(0),
                  /*IsPath=*/false);
    Q.eraseLocal(Fi, I.Dst);
    if (!Q.Pure.isSatisfiable()) {
      refute(Q, "pure");
      S.bump("sym.pathsRefuted");
      return;
    }
    push(std::move(Q));
  }

  void transferBinop(Query Q, const Instruction &I) {
    uint32_t Fi = Q.curFrame();
    auto B = Q.getLocal(Fi, I.Dst);
    if (!B) {
      push(std::move(Q));
      return;
    }
    if (B->isNull()) {
      refute(Q, "binopVsNull");
      S.bump("sym.pathsRefuted");
      return;
    }
    SymVarId V = B->Sym;
    if (!Q.regionOf(V).HasData) {
      refute(Q, "binopVsRef");
      S.bump("sym.pathsRefuted");
      return;
    }
    Q.eraseLocal(Fi, I.Dst);
    bool Linear = (I.BK == BinopKind::Add || I.BK == BinopKind::Sub) &&
                  I.RhsIsConst;
    if (Linear) {
      SymOrRefuted Src = getOrCreateDataSym(Q, Fi, I.Src);
      if (Src.Refuted) {
        S.bump("sym.pathsRefuted");
        return;
      }
      int64_t Off = I.BK == BinopKind::Add ? I.IntVal : -I.IntVal;
      Q.Pure.addCmp(PureTerm::mkVar(V), RelOp::EQ,
                    PureTerm::mkVar(Src.Sym, Off), /*IsPath=*/false);
      if (!Q.Pure.isSatisfiable()) {
        refute(Q, "pure");
        S.bump("sym.pathsRefuted");
        return;
      }
    }
    // Non-linear results stay existentially unconstrained (havoc).
    push(std::move(Q));
  }

  //--- Calls -----------------------------------------------------------------

  void transferCall(Query Q, const Instruction &I) {
    uint32_t Fi = Q.curFrame();
    ProgramPoint CallAt = Q.Pos; // Already decremented to the call index.
    if (Deps)
      Deps->CalleeSites.emplace(CallAt, Q.Frames[Fi].Ctx);
    std::vector<CallEdge> Edges =
        PTA.calleesAtCtx(CallAt, Q.Frames[Fi].Ctx);
    if (Edges.empty()) {
      // The call can never execute under this context (no resolvable
      // callee / empty receiver points-to set): no forward execution of
      // this analysis unit passes this point.
      refute(Q, "noCallees");
      S.bump("sym.pathsRefuted");
      return;
    }
    // Relevance: can the call affect the query at all? Points-to
    // filtered, like WALA ModRef: field AND base region must intersect.
    PointsToResult::HeapMod Mods;
    for (const CallEdge &E : Edges) {
      if (Deps)
        Deps->HeapMods.insert(E.Callee);
      Mods.mergeFrom(PTA.heapModOf(E.Callee));
    }
    bool DstBound = I.Dst != NoVar && Q.getLocal(Fi, I.Dst).has_value();
    bool Relevant = DstBound;
    if (!Relevant)
      for (const HeapCell &C : Q.Cells)
        if (cellAffected(Q, Mods, C)) {
          Relevant = true;
          break;
        }
    if (!Relevant)
      for (const auto &[G, _] : Q.Globals)
        if (Mods.Globals.contains(G)) {
          Relevant = true;
          break;
        }
    if (!Relevant) {
      S.bump("sym.callsSkippedIrrelevant");
      push(std::move(Q));
      return;
    }
    if (Q.Frames.size() > Opts.MaxCallStackDepth) {
      skipCallWithHavoc(std::move(Q), I, Mods);
      return;
    }
    // Enter each possible callee at each of its return points.
    ValRef DstVal;
    if (DstBound) {
      DstVal = *Q.getLocal(Fi, I.Dst);
      Q.eraseLocal(Fi, I.Dst);
    }
    for (const CallEdge &E : Edges) {
      FuncId Callee = E.Callee;
      if (Deps)
        Deps->Funcs.insert(Callee); // Return points scanned below.
      const Function &CFn = P.Funcs[Callee];
      for (BlockId B = 0; B < CFn.Blocks.size(); ++B) {
        const Terminator &T = CFn.Blocks[B].Term;
        if (T.Kind != TermKind::Return)
          continue;
        Query Q2 = Q;
        QueryFrame Frame;
        Frame.Func = Callee;
        Frame.Ctx = E.CalleeCtx;
        Frame.CallAt = CallAt;
        Frame.HasCallSite = true;
        Q2.Frames.push_back(Frame);
        uint32_t NewFi = Q2.curFrame();
        bindFrameReceiver(Q2, NewFi);
        if (Q2.Refuted) {
          S.bump("sym.pathsRefuted");
          continue;
        }
        if (DstBound) {
          if (T.HasRetVal) {
            if (Deps)
              Deps->PtVars.emplace(Callee, E.CalleeCtx, T.RetVal);
            bindLocalToVal(Q2, NewFi, T.RetVal, DstVal,
                           PTA.ptVarCtx(Callee, E.CalleeCtx, T.RetVal));
            if (Q2.Refuted) {
              S.bump("sym.pathsRefuted");
              continue;
            }
          } else if (DstVal.isSym()) {
            // Void calls return null; a Sym binding cannot be satisfied.
            S.bump("sym.refute.voidReturn");
            S.bump("sym.pathsRefuted");
            continue;
          }
        }
        Q2.Pos = ProgramPoint{Callee, B,
                              static_cast<uint32_t>(CFn.Blocks[B].Insts.size())};
        S.bump("sym.calleesEntered");
        push(std::move(Q2));
      }
    }
  }

  void skipCallWithHavoc(Query Q, const Instruction &I,
                         const PointsToResult::HeapMod &Mods) {
    uint32_t Fi = Q.curFrame();
    S.bump("sym.callsSkippedDepth");
    if (I.Dst != NoVar)
      Q.eraseLocal(Fi, I.Dst);
    Q.Cells.erase(std::remove_if(Q.Cells.begin(), Q.Cells.end(),
                                 [&](const HeapCell &C) {
                                   return cellAffected(Q, Mods, C);
                                 }),
                  Q.Cells.end());
    for (auto It = Q.Globals.begin(); It != Q.Globals.end();) {
      if (Mods.Globals.contains(It->first))
        It = Q.Globals.erase(It);
      else
        ++It;
    }
    Q.Pure.dropMentioning([&](uint32_t V) { return !Q.symIsReferenced(V); });
    Q.gcRegions();
    push(std::move(Q));
  }

  //--- Function entries -------------------------------------------------------

  void atFunctionEntry(Query Q) {
    if (outsideSlice(Q))
      return;
    const Function &Fn = P.Funcs[Q.Pos.F];
    uint32_t Fi = Q.curFrame();
    // Non-parameter locals are null at entry.
    for (auto It = Q.Locals.begin(); It != Q.Locals.end();) {
      if (It->first.first == Fi && It->first.second >= Fn.NumParams) {
        if (It->second.isSym()) {
          refute(Q, "localNullInit");
          S.bump("sym.pathsRefuted");
          return;
        }
        It = Q.Locals.erase(It);
      } else {
        ++It;
      }
    }
    // Procedure-boundary query history (simplification).
    if (historySubsumed(Q)) {
      S.bump("sym.subsumedAtEntry");
      return;
    }
    if (Q.memoryEmpty()) {
      markWitness(std::move(Q));
      return;
    }
    if (Q.Frames.size() > 1) {
      popFrame(std::move(Q));
      return;
    }
    if (Q.Pos.F == P.EntryFunc) {
      atProgramStart(std::move(Q));
      return;
    }
    // Arbitrary calling context: expand to every caller of this analysis
    // unit (function, context).
    if (Deps)
      Deps->CallerUnits.emplace(Q.Pos.F, Q.Frames[0].Ctx);
    std::vector<CallEdge> Callers =
        PTA.callersOfCtx(Q.Pos.F, Q.Frames[0].Ctx);
    if (Callers.empty()) {
      refute(Q, "noCallers");
      S.bump("sym.pathsRefuted");
      return;
    }
    for (const CallEdge &E : Callers) {
      Query Q2 = Q;
      expandToCaller(Q2, E);
      if (Q2.Refuted) {
        S.bump("sym.pathsRefuted");
        continue;
      }
      push(std::move(Q2));
    }
  }

  /// Translates parameter bindings of the active frame into argument
  /// bindings at call instruction \p I in the parent frame \p ParentFi
  /// (whose QueryFrame must already be in place). \p CalleeF/\p CalleeCtx
  /// identify the analysis unit being exited.
  bool translateParams(Query &Q, uint32_t Fi, uint32_t ParentFi,
                       FuncId CalleeF, AbsLocId CalleeCtx,
                       const Instruction &I) {
    const Function &CalleeFn = P.Funcs[CalleeF];
    (void)CalleeFn;
    // Collect then erase, since binding into the parent may not alias the
    // callee frame's key space.
    std::vector<std::pair<VarId, ValRef>> Params;
    for (auto It = Q.Locals.begin(); It != Q.Locals.end();) {
      if (It->first.first == Fi) {
        assert(It->first.second < CalleeFn.NumParams &&
               "non-param local survived entry handling");
        Params.push_back({It->first.second, It->second});
        It = Q.Locals.erase(It);
      } else {
        ++It;
      }
    }
    for (auto &[ParamV, Val] : Params) {
      if (ParamV >= I.Args.size())
        continue; // Arity mismatch (should not happen).
      VarId ArgVar = I.Args[ParamV];
      bindLocalToVal(Q, ParentFi, ArgVar, Val,
                     ptLocal(Q, ParentFi, ArgVar));
      if (Q.Refuted)
        return false;
      // Receiver narrowing: the callee context / virtual dispatch must be
      // consistent with the receiver instance.
      if (ParamV == 0 && Val.isSym() && flowNarrowing()) {
        auto RB = Q.getLocal(ParentFi, ArgVar);
        if (!RB || !RB->isSym())
          continue;
        if (CalleeCtx != InvalidId) {
          Q.narrowSymLocs(RB->Sym, IdSet{CalleeCtx});
        } else if (I.IsVirtual) {
          IdSet DispatchLocs;
          for (AbsLocId L : ptLocal(Q, ParentFi, ArgVar)) {
            const AllocSiteInfo &Site = P.AllocSites[PTA.Locs.site(L)];
            if (Deps) {
              Deps->LocClasses.insert(L);
              Deps->Dispatches.emplace(Site.Class, I.Method);
            }
            if (!Site.IsArray &&
                P.resolveVirtual(Site.Class, I.Method) == CalleeF)
              DispatchLocs.insert(L);
          }
          Q.narrowSymLocs(RB->Sym, DispatchLocs);
        }
        if (Q.Refuted) {
          S.bump("sym.refute.dispatch");
          return false;
        }
      }
    }
    return true;
  }

  void popFrame(Query Q) {
    QueryFrame Popped = Q.Frames.back();
    uint32_t Fi = Q.curFrame();
    uint32_t ParentFi = Fi - 1;
    const Instruction &I =
        P.Funcs[Popped.CallAt.F].Blocks[Popped.CallAt.B]
            .Insts[Popped.CallAt.Idx];
    if (!translateParams(Q, Fi, ParentFi, Popped.Func, Popped.Ctx, I)) {
      S.bump("sym.pathsRefuted");
      return;
    }
    Q.Frames.pop_back();
    Q.Pos = Popped.CallAt;
    push(std::move(Q));
  }

  void expandToCaller(Query &Q, const CallEdge &E) {
    if (Deps)
      Deps->Funcs.insert(E.At.F); // Caller instruction read below.
    const Instruction &I =
        P.Funcs[E.At.F].Blocks[E.At.B].Insts[E.At.Idx];
    FuncId CalleeF = Q.Frames[0].Func;
    AbsLocId CalleeCtx = Q.Frames[0].Ctx;
    // The bottom frame becomes the caller (still arbitrary context). The
    // frame index stays 0, so parameter translation maps into index 0.
    QueryFrame NewBottom;
    NewBottom.Func = E.Caller;
    NewBottom.Ctx = E.CallerCtx;
    // Temporarily there are conceptually two frames sharing index 0; we
    // translate by collecting params first (translateParams erases frame-0
    // entries before inserting caller bindings at the same index).
    Q.Frames[0] = NewBottom;
    if (!translateParams(Q, 0, 0, CalleeF, CalleeCtx, I))
      return;
    bindFrameReceiver(Q, 0);
    if (Q.Refuted)
      return;
    Q.Pos = E.At;
    S.bump("sym.callerExpansions");
  }

  void atProgramStart(Query Q) {
    // Initial state: empty heap, all statics null, no locals.
    for (const auto &[G, V] : Q.Globals) {
      (void)G;
      if (V.isSym()) {
        refute(Q, "globalNullInit");
        S.bump("sym.pathsRefuted");
        return;
      }
    }
    if (!Q.Cells.empty()) {
      refute(Q, "emptyInitialHeap");
      S.bump("sym.pathsRefuted");
      return;
    }
    // Remaining constraints are satisfied by the initial state: witness.
    markWitness(std::move(Q));
  }

  //--- Members ---------------------------------------------------------------

  const Program &P;
  const PointsToResult &PTA;
  const SymOptions &Opts;
  // Speculative-mode backing stores. Declared before the references they
  // seed (S, Deps, Budget bind to them in the SpecTag constructor) so the
  // references never dangle; unused and empty on the live engine.
  Stats LocalStats;
  DepFootprint LocalDeps;
  uint64_t SpecBudget = 0;
  Stats &S;
  DepFootprint *Deps;
  uint64_t &Budget;
  uint64_t StepsUsed = 0;
  /// LIFO frontier. Items carry an optional speculative buffer prefetched
  /// by speculateAhead; pop order alone decides what commits when.
  std::vector<WaveItem> Worklist;
  std::unordered_map<std::string, std::vector<HistoryEntry>> History;
  std::unordered_set<std::string> BlockDedup;
  struct LoopKeyHash {
    size_t operator()(
        const std::tuple<FuncId, AbsLocId, BlockId> &K) const {
      return (static_cast<size_t>(std::get<0>(K)) << 40) ^
             (static_cast<size_t>(std::get<1>(K)) << 20) ^ std::get<2>(K);
    }
  };
  std::unordered_map<std::tuple<FuncId, AbsLocId, BlockId>,
                     PointsToResult::HeapMod, LoopKeyHash>
      LoopModCache;
  bool Witnessed = false;
  Query WitnessQ;
  std::vector<ProgramPoint> DeepestRefuted;
  std::map<std::string, uint64_t> RefuteKinds;

  // --- Resource governance (see support/Budget.h). ---
  ResourceGovernor *Gov = nullptr;
  /// The scope actually consulted: the edge-wide one installed by
  /// searchFieldEdge/searchGlobalEdge, or LocalScope for direct *At calls.
  ResourceGovernor::EdgeScope *Scope = nullptr;
  ResourceGovernor::EdgeScope LocalScope;
  /// First exhaustion signal raised mid-step (memory charge failure or an
  /// injected fault); checked at the next deterministic loop boundary.
  ExhaustionReason Pending = ExhaustionReason::None;
  /// Bytes currently charged to the governor by this run (worklist states
  /// plus history copies); released in the destructor.
  uint64_t OutstandingBytes = 0;

  // --- Cross-edge pruning (see docs/PRUNING.md). ---
  /// Forward reachability slices (engine-owned; null when disabled).
  ForwardSlice *Slice = nullptr;
  /// Shared subsumption registry (frozen during a run; null when off).
  SubsumeRegistry *Reg = nullptr;
  /// The engine's per-edge harvest (read-only during a run; null when the
  /// registry is off).
  const std::map<std::string, std::vector<SubsumeEntry>> *EdgePend = nullptr;
  /// Live engine only: registry slots probed without a hit land here.
  std::set<std::string> *Probed = nullptr;
  /// Speculation: probed slots buffered here, merged into Probed at the
  /// item's commit; discarded buffers drop theirs, so nothing is
  /// over-recorded.
  std::vector<std::string> RegProbes;

  // --- Intra-edge parallelism (see docs/PARALLELISM.md). ---
  /// The engine-owned worker pool; null for a 1-thread search.
  SearchPool *Pool = nullptr;
  /// True on a speculative per-item engine built by the SpecTag ctor.
  bool Spec = false;
  /// The live parent run whose frozen stores a speculation reads.
  const Run *Shared = nullptr;
  /// Set when a speculative step reached the solver-entry fault probe; the
  /// commit consults the registry there, at the canonical position.
  bool SawSolverFaultPoint = false;
  /// Ordered byte counts of chargeRetained calls made while speculating,
  /// replayed through commitCharge (accountant + fault probe) at commit.
  std::vector<uint64_t> Charges;
  /// Block-dedup keys this speculation would insert (all observed as
  /// misses against the frozen set).
  std::vector<std::string> DedupIns;
  /// A history insertion this speculation would perform, with the slot
  /// size it scanned — the conflict check re-executes the item if the
  /// live slot grew past Seen before its commit turn.
  struct SpecHistInsert {
    std::string Slot;
    std::string Key;
    size_t Seen = 0;
    Query Q;
  };
  std::vector<SpecHistInsert> HistIns;
};

//===----------------------------------------------------------------------===//
// WitnessSearch API
//===----------------------------------------------------------------------===//

const char *thresher::outcomeName(SearchOutcome O) {
  switch (O) {
  case SearchOutcome::Refuted:
    return "REFUTED";
  case SearchOutcome::Witnessed:
    return "WITNESSED";
  case SearchOutcome::BudgetExhausted:
    return "TIMEOUT";
  }
  return "?";
}

namespace {

uint64_t nanosSince(std::chrono::steady_clock::time_point T0) {
  auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - T0)
                .count();
  return static_cast<uint64_t>(Ns < 0 ? 0 : Ns);
}

} // namespace

WitnessSearch::WitnessSearch(const Program &P, const PointsToResult &PTA,
                             SymOptions Opts)
    : P(P), PTA(PTA), Opts(std::move(Opts)) {
  // The pool lives as long as the engine so its workers persist across
  // every edge this instance searches instead of respawning per edge.
  if (this->Opts.SearchThreads > 1)
    Pool = std::make_unique<SearchPool>(this->Opts.SearchThreads, S);
  if (this->Opts.ForwardSlice)
    Slice = std::make_unique<ForwardSlice>(P, PTA);
  // The owned registry backs the stand-alone engine; callers running the
  // deterministic cross-engine protocol install their own (setRegistry).
  if (this->Opts.GlobalSubsume)
    OwnedRegistry = std::make_unique<SubsumeRegistry>();
}

WitnessSearch::~WitnessSearch() = default;

std::string WitnessSearch::describeSite(const ProducerSite &Site) const {
  std::string Out = P.funcName(Site.At.F);
  Out += "@bb";
  Out += std::to_string(Site.At.B);
  Out += ":";
  Out += std::to_string(Site.At.Idx);
  if (Site.Ctx != InvalidId) {
    Out += " ctx=";
    Out += PTA.Locs.label(P, Site.Ctx);
  }
  return Out;
}

void WitnessSearch::emitEdgeTrace(std::string EdgeLabel, bool IsGlobal,
                                  const EdgeSearchResult &R,
                                  uint64_t EnumNanos, uint64_t SearchNanos) {
  S.record("hist.edgeStates", R.StepsUsed);
  S.record("hist.edgeNanos", EnumNanos + SearchNanos);
  S.record("hist.robust.edgeMs", (EnumNanos + SearchNanos) / 1000000);
  if (!Trace)
    return;
  TraceEvent Ev;
  Ev.Edge = std::move(EdgeLabel);
  Ev.IsGlobal = IsGlobal;
  Ev.Verdict = outcomeName(R.Outcome);
  if (R.Outcome == SearchOutcome::BudgetExhausted)
    Ev.Reason = exhaustionReasonName(R.Exhaustion);
  Ev.ProducersTried = R.ProducersTried;
  Ev.Producer = R.WitnessProducer;
  Ev.Steps = R.StepsUsed;
  Ev.Budget = Opts.EdgeBudget;
  Ev.RefuteKinds = R.RefuteKinds;
  Ev.EnumNanos = EnumNanos;
  Ev.SearchNanos = SearchNanos;
  Ev.Note = R.Note;
  Trace->emit(Ev);
}

EdgeSearchResult WitnessSearch::searchFieldEdgeAt(AbsLocId Base, FieldId Fld,
                                                  AbsLocId Target,
                                                  const ProducerSite &Site,
                                                  uint64_t &Budget) {
  const ProgramPoint &At = Site.At;
  if (Deps)
    Deps->Funcs.insert(At.F);
  const Instruction &I = P.Funcs[At.F].Blocks[At.B].Insts[At.Idx];
  assert((I.Op == Opcode::Store || I.Op == Opcode::ArrayStore) &&
         "field-edge producer must be a store");
  assert((I.Op == Opcode::ArrayStore ? P.ElemsField : I.Field) == Fld &&
         "producer writes a different field");
  (void)Fld;
  Query Q;
  QueryFrame Frame;
  Frame.Func = At.F;
  Frame.Ctx = Site.Ctx;
  Q.Frames.push_back(Frame);
  Q.Pos = At; // Before the store: the produced-case bindings come next.
  SymVarId B = Q.freshSym(Region::ofLocs(IdSet{Base}));
  Q.setLocal(0, I.Dst, ValRef::mkSym(B));
  // Target binding: x.f = x patterns route through unification.
  if (I.Src == I.Dst) {
    // Same variable: base and target instance must coincide.
    SymVarId T = Q.freshSym(Region::ofLocs(IdSet{Target}));
    Q.unify(ValRef::mkSym(B), ValRef::mkSym(T));
  } else {
    SymVarId T = Q.freshSym(Region::ofLocs(IdSet{Target}));
    Q.setLocal(0, I.Src, ValRef::mkSym(T));
  }
  EdgeSearchResult Out;
  if (Q.Refuted) {
    Out.Outcome = SearchOutcome::Refuted;
    return Out;
  }
  Run R(*this, Budget);
  Out.Outcome = R.run(std::move(Q), Out);
  if (Out.Outcome == SearchOutcome::Refuted && registry())
    R.harvestInto(EdgePending);
  Budget -= std::min(Budget, Out.StepsUsed);
  return Out;
}

EdgeSearchResult WitnessSearch::searchGlobalEdgeAt(GlobalId G,
                                                   AbsLocId Target,
                                                   const ProducerSite &Site,
                                                   uint64_t &Budget) {
  const ProgramPoint &At = Site.At;
  if (Deps)
    Deps->Funcs.insert(At.F);
  const Instruction &I = P.Funcs[At.F].Blocks[At.B].Insts[At.Idx];
  assert(I.Op == Opcode::StoreStatic && "global-edge producer must be a "
                                        "static store");
  assert(I.Global == G && "producer writes a different static field");
  (void)G;
  Query Q;
  QueryFrame Frame;
  Frame.Func = At.F;
  Frame.Ctx = Site.Ctx;
  Q.Frames.push_back(Frame);
  Q.Pos = At;
  SymVarId T = Q.freshSym(Region::ofLocs(IdSet{Target}));
  Q.setLocal(0, I.Src, ValRef::mkSym(T));
  EdgeSearchResult Out;
  Run R(*this, Budget);
  Out.Outcome = R.run(std::move(Q), Out);
  if (Out.Outcome == SearchOutcome::Refuted && registry())
    R.harvestInto(EdgePending);
  Budget -= std::min(Budget, Out.StepsUsed);
  return Out;
}

EdgeSearchResult WitnessSearch::searchFrom(Query Q, uint64_t &Budget) {
  EdgeSearchResult Out;
  Run R(*this, Budget);
  Out.Outcome = R.run(std::move(Q), Out);
  Budget -= std::min(Budget, Out.StepsUsed);
  return Out;
}

std::vector<SubsumeEntry> WitnessSearch::takePendingEntries() {
  std::vector<SubsumeEntry> Out;
  for (auto &[Slot, Entries] : EdgePending)
    for (SubsumeEntry &E : Entries)
      Out.push_back(std::move(E));
  EdgePending.clear();
  // The map already yields slot order; per-slot harvest order depends on
  // the producer-run sequence, so impose (slot, key) order outright.
  std::sort(Out.begin(), Out.end(),
            [](const SubsumeEntry &A, const SubsumeEntry &B) {
              return A.Slot != B.Slot ? A.Slot < B.Slot
                                      : A.CanonKey < B.CanonKey;
            });
  return Out;
}

std::set<std::string> WitnessSearch::takeProbedSlots() {
  std::set<std::string> Out = std::move(ProbedSlots);
  ProbedSlots.clear();
  return Out;
}

namespace {

/// Shared producer loop for both edge kinds.
template <typename SearchOne>
EdgeSearchResult
searchOverProducers(const std::vector<ProducerSite> &Producers,
                    uint64_t Budget, SearchOne &&One) {
  EdgeSearchResult Agg;
  Agg.Outcome = SearchOutcome::Refuted;
  for (const ProducerSite &At : Producers) {
    if (Budget == 0) {
      Agg.Outcome = SearchOutcome::BudgetExhausted;
      Agg.Exhaustion = ExhaustionReason::Steps;
      Agg.Note = "budget exhausted before trying all producers";
      return Agg;
    }
    EdgeSearchResult R = One(At, Budget);
    Agg.StepsUsed += R.StepsUsed;
    ++Agg.ProducersTried;
    for (const auto &[Kind, N] : R.RefuteKinds)
      Agg.RefuteKinds[Kind] += N;
    if (R.Outcome == SearchOutcome::Witnessed) {
      Agg.Outcome = SearchOutcome::Witnessed;
      Agg.WitnessProducer = std::move(R.WitnessProducer);
      Agg.WitnessTrail = std::move(R.WitnessTrail);
      Agg.WitnessTrailQueries = std::move(R.WitnessTrailQueries);
      Agg.Note = R.Note;
      return Agg;
    }
    if (R.Outcome == SearchOutcome::BudgetExhausted) {
      Agg.Outcome = SearchOutcome::BudgetExhausted;
      Agg.Exhaustion = R.Exhaustion;
      Agg.Note = std::move(R.Note);
      return Agg;
    }
    if (R.DeepestRefutedTrail.size() > Agg.DeepestRefutedTrail.size())
      Agg.DeepestRefutedTrail = std::move(R.DeepestRefutedTrail);
  }
  return Agg;
}

} // namespace

EdgeSearchResult WitnessSearch::searchFieldEdge(AbsLocId Base, FieldId Fld,
                                                AbsLocId Target) {
  auto T0 = std::chrono::steady_clock::now();
  EdgePending.clear();
  ProbedSlots.clear();
  if (Deps)
    Deps->FieldProducers.emplace(Base, Fld, Target);
  std::vector<ProducerSite> Producers =
      PTA.producersOfFieldEdge(Base, Fld, Target);
  uint64_t EnumNanos = nanosSince(T0);
  uint64_t Budget = Opts.EdgeBudget;
  auto T1 = std::chrono::steady_clock::now();
  // One governed scope spans every producer of the edge: the per-edge
  // deadline is a property of the edge, not of each producer attempt.
  ResourceGovernor::EdgeScope EdgeScope;
  if (Gov) {
    EdgeScope = ResourceGovernor::EdgeScope(*Gov);
    ActiveScope = &EdgeScope;
  }
  EdgeSearchResult R = searchOverProducers(
      Producers, Budget, [&](const ProducerSite &At, uint64_t &B) {
        EdgeSearchResult One = searchFieldEdgeAt(Base, Fld, Target, At, B);
        if (One.Outcome == SearchOutcome::Witnessed)
          One.WitnessProducer = describeSite(At);
        return One;
      });
  ActiveScope = nullptr;
  publishOwnedPending();
  emitEdgeTrace(PTA.Locs.label(P, Base) + "." + P.fieldName(Fld) + " -> " +
                    PTA.Locs.label(P, Target),
                /*IsGlobal=*/false, R, EnumNanos, nanosSince(T1));
  return R;
}

EdgeSearchResult WitnessSearch::searchGlobalEdge(GlobalId G,
                                                 AbsLocId Target) {
  auto T0 = std::chrono::steady_clock::now();
  EdgePending.clear();
  ProbedSlots.clear();
  if (Deps)
    Deps->GlobalProducers.emplace(G, Target);
  std::vector<ProducerSite> Producers = PTA.producersOfGlobalEdge(G, Target);
  uint64_t EnumNanos = nanosSince(T0);
  uint64_t Budget = Opts.EdgeBudget;
  auto T1 = std::chrono::steady_clock::now();
  ResourceGovernor::EdgeScope EdgeScope;
  if (Gov) {
    EdgeScope = ResourceGovernor::EdgeScope(*Gov);
    ActiveScope = &EdgeScope;
  }
  EdgeSearchResult R = searchOverProducers(
      Producers, Budget, [&](const ProducerSite &At, uint64_t &B) {
        EdgeSearchResult One = searchGlobalEdgeAt(G, Target, At, B);
        if (One.Outcome == SearchOutcome::Witnessed)
          One.WitnessProducer = describeSite(At);
        return One;
      });
  ActiveScope = nullptr;
  publishOwnedPending();
  emitEdgeTrace(P.globalName(G) + " -> " + PTA.Locs.label(P, Target),
                /*IsGlobal=*/true, R, EnumNanos, nanosSince(T1));
  return R;
}

void WitnessSearch::publishOwnedPending() {
  // Stand-alone (owned-registry) mode: each edge's harvest becomes
  // visible to the NEXT edge this engine searches, never mid-edge — the
  // registry is frozen while any run executes, which the speculative
  // probe exactness relies on. With an external registry the caller owns
  // publication (docs/PRUNING.md) and drains the accumulators instead.
  if (Registry || !OwnedRegistry)
    return;
  for (auto &[Slot, Entries] : EdgePending) {
    (void)Slot;
    size_t N = OwnedRegistry->publishAll(std::move(Entries));
    S.bump("par.registryPublished", N);
  }
  EdgePending.clear();
  ProbedSlots.clear();
}
