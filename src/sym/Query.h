//===- Query.h - Mixed symbolic-explicit queries ----------------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mixed symbolic-explicit query representation of Sec. 3.1:
///
///   Q ::= M ∧ P
///   M ::= any | x |-> v̂ | v̂·f |-> û | M1 * M2
///   P ::= true | P1 ∧ P2 | v̂ from r̂ | pure comparisons
///
/// A query holds: local-variable bindings (per stack frame), static-field
/// bindings, separated heap cells, a per-symbolic-variable instance
/// constraint (Region), and a conjunction of pure constraints. The binding
/// target is either Null or a symbolic variable; a symbolic-variable
/// binding asserts a *non-null* value (instances are drawn from points-to
/// regions, which never contain null).
///
/// The explicit call-stack abstraction of Sec. 3 lives here too: Frames
/// records the call sites traversed backwards into callees; the bottom
/// frame has no call site and represents an arbitrary calling context.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SYM_QUERY_H
#define THRESHER_SYM_QUERY_H

#include "ir/Program.h"
#include "solver/Pure.h"
#include "sym/Region.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace thresher {

class JsonValue;

/// Dense id of a symbolic variable within one query.
using SymVarId = uint32_t;

/// A binding target: null or a (non-null) symbolic instance / data value.
struct ValRef {
  enum class Kind : uint8_t { Null, Sym };
  Kind K = Kind::Null;
  SymVarId Sym = 0;

  static ValRef mkNull() { return {}; }
  static ValRef mkSym(SymVarId S) {
    ValRef V;
    V.K = Kind::Sym;
    V.Sym = S;
    return V;
  }
  bool isNull() const { return K == Kind::Null; }
  bool isSym() const { return K == Kind::Sym; }

  bool operator==(const ValRef &O) const {
    return K == O.K && (K != Kind::Sym || Sym == O.Sym);
  }
};

/// One separated heap cell: Base·Field |-> Target. Cells on the synthetic
/// @elems field are index-summarized: several @elems cells may share a
/// base (distinct indices), whereas ordinary field cells are unique per
/// (Base, Field).
struct HeapCell {
  SymVarId Base = 0;
  FieldId Field = InvalidId;
  ValRef Target;

  bool operator==(const HeapCell &O) const {
    return Base == O.Base && Field == O.Field && Target == O.Target;
  }
};

/// A backwards-call-stack frame. Frames.back() is the active function; a
/// frame entered by stepping backwards into a callee records the call
/// instruction position in its parent. Ctx is the receiver heap context of
/// the frame's analysis unit (the paper's tool executes over WALA call
/// graph nodes, which are (method, context) pairs; this is our analogue).
struct QueryFrame {
  FuncId Func = InvalidId;
  uint32_t Ctx = InvalidId; ///< AbsLocId of the receiver context.
  /// Call instruction position in the parent frame; invalid for the bottom
  /// frame (arbitrary calling context).
  ProgramPoint CallAt{InvalidId, InvalidId, 0};
  bool HasCallSite = false;

  bool operator==(const QueryFrame &O) const {
    return Func == O.Func && Ctx == O.Ctx && HasCallSite == O.HasCallSite &&
           (!HasCallSite || CallAt == O.CallAt);
  }
};

/// A mixed symbolic-explicit query (one disjunct of a refutation state R).
/// Engine code mutates queries through the helpers here; once `Refuted` is
/// set the query must be discarded.
class Query {
public:
  // --- Position and stack. ---
  ProgramPoint Pos;
  std::vector<QueryFrame> Frames;

  // --- Constraints. ---
  /// Local bindings, keyed by (frame index, variable).
  std::map<std::pair<uint32_t, VarId>, ValRef> Locals;
  /// Static-field bindings.
  std::map<GlobalId, ValRef> Globals;
  /// Separated heap cells.
  std::vector<HeapCell> Cells;
  /// Instance constraints: region of each live symbolic variable.
  std::map<SymVarId, Region> Regions;
  /// Pure constraints (symbolic variable ids shared with Regions).
  PureConstraints Pure;

  bool Refuted = false;
  /// Loop-head crossing counts for hard-widening (engine bookkeeping).
  std::map<std::pair<FuncId, BlockId>, uint32_t> LoopCrossings;
  /// Optional execution trail for witness reporting (newest first).
  std::vector<ProgramPoint> Trail;
  /// Optional per-step query snapshots (debugging aid, newest first).
  std::vector<std::string> TrailQueries;

  // --- Construction helpers. ---
  SymVarId freshSym(Region R) {
    SymVarId S = NextSym++;
    Regions.emplace(S, std::move(R));
    return S;
  }

  uint32_t curFrame() const {
    return static_cast<uint32_t>(Frames.size() - 1);
  }

  // --- Binding access. ---
  std::optional<ValRef> getLocal(uint32_t Frame, VarId V) const;
  void setLocal(uint32_t Frame, VarId V, ValRef R);
  void eraseLocal(uint32_t Frame, VarId V);
  std::optional<ValRef> getGlobal(GlobalId G) const;

  // --- Region access. ---
  Region &regionOf(SymVarId S);
  const Region &regionOf(SymVarId S) const;

  /// Narrows the region of \p S by intersecting its location part with
  /// \p Locs; marks the query refuted on emptiness. Data-only regions are
  /// left alone (the heap-flow rules only narrow addresses).
  void narrowSymLocs(SymVarId S, const IdSet &Locs);

  // --- Structural operations. ---
  /// Unifies two binding targets (separation-driven): Null/Null succeeds,
  /// Null/Sym refutes (a Sym binding asserts non-null), Sym/Sym merges the
  /// variables and intersects their regions. Marks Refuted on failure.
  /// Returns the merged value.
  ValRef unify(ValRef A, ValRef B);

  /// Substitutes symbolic variable \p From by \p To everywhere and
  /// re-normalizes cells (duplicate (base, field) cells on ordinary fields
  /// unify their targets; exact duplicates collapse).
  void substitute(SymVarId From, SymVarId To);

  /// Adds cell Base·Field |-> Target. On an ordinary field with an
  /// existing cell for (Base, Field), unifies the targets instead (the
  /// separation rule: one cell per location). Returns the resulting
  /// target value.
  ValRef addCell(SymVarId Base, FieldId Field, ValRef Target, FieldId Elems);

  /// All cells with the given base.
  std::vector<HeapCell *> cellsWithBase(SymVarId Base);

  /// Removes the (unique) cell equal to \p C.
  void removeCell(const HeapCell &C);

  /// True if \p S appears anywhere (bindings, cells, pure constraints).
  bool symIsReferenced(SymVarId S) const;

  /// Drops region entries for symbolic variables no longer referenced.
  void gcRegions();

  /// True when the query has become `any`: no memory constraints remain
  /// and the pure part is satisfiable (checked by the engine).
  bool memoryEmpty() const {
    return Locals.empty() && Globals.empty() && Cells.empty();
  }

  /// Approximate heap bytes retained by this query state (constraint maps,
  /// cells, region IdSets, pure prims). Deterministic for a given query —
  /// the memory accountant charges this on clone retention and releases it
  /// on discard, so step-denominated runs stay byte-identical.
  uint64_t approxBytes() const;

  /// A canonical fingerprint: symbolic variables renamed in first-use
  /// order over the sorted constraint sets, rendered to a string. Used as
  /// the exact-match layer of the query-history subsumption check.
  std::string canonicalKey() const;

  /// Position+stack signature used to index query histories.
  std::string historySlot() const;

  /// Pretty form for diagnostics.
  std::string toString(const Program &P, const AbsLocTable &T) const;

  /// Compact JSON form for registry persistence (see docs/PRUNING.md).
  /// Serializes position, frames, bindings, cells, regions, and pure
  /// primitives; trails, loop-crossing counters, and the elems-field cache
  /// are engine bookkeeping and are not serialized. Ids are dense program
  /// ids, so a payload is only meaningful for the exact program fingerprint
  /// it was produced against (the cache guards this with "regfp").
  JsonValue toJson() const;

  /// Parses what toJson produced; nullopt on any malformed input. The
  /// round-tripped query is probe-equivalent (canonicalKey and
  /// queryWeakerThan behave identically) but regenerates path-constraint
  /// group numbering, so it must not be re-executed by the engine.
  static std::optional<Query> fromJson(const JsonValue &V);

private:
  void normalizeCells();
  std::map<SymVarId, uint32_t> canonicalOrder() const;

  SymVarId NextSym = 0;
  FieldId ElemsFieldCache = InvalidId; // Set by addCell for normalization.
};

} // namespace thresher

#endif // THRESHER_SYM_QUERY_H
