//===- Subsume.cpp - Cross-edge query subsumption registry ----------------===//

#include "sym/Subsume.h"

#include "support/Json.h"
#include "support/SmallMap.h"
#include "sym/WitnessSearch.h"

using namespace thresher;

//===----------------------------------------------------------------------===//
// queryWeakerThan (moved verbatim from the engine's per-run history check)
//===----------------------------------------------------------------------===//

bool thresher::queryWeakerThan(const Query &Weak, const Query &Strong,
                               Representation Repr) {
  // Build a mapping from Weak's symbolic variables to Strong's by
  // walking the shared anchors (locals, globals), then cells. A sorted
  // small-vector map: these renamings are built and discarded once per
  // history entry per subsumption check, where std::map's node
  // allocations dominated the hist.subsumeNanos profile.
  SmallMap<SymVarId, SymVarId> Map;
  auto MatchVal = [&](const ValRef &W, const ValRef &St) -> bool {
    if (W.isNull() || St.isNull())
      return W.K == St.K;
    auto It = Map.find(W.Sym);
    if (It != Map.end())
      return It->second == St.Sym;
    Map.emplace(W.Sym, St.Sym);
    return true;
  };
  for (const auto &[K, V] : Weak.Locals) {
    auto It = Strong.Locals.find(K);
    if (It == Strong.Locals.end() || !MatchVal(V, It->second))
      return false;
  }
  for (const auto &[G, V] : Weak.Globals) {
    auto It = Strong.Globals.find(G);
    if (It == Strong.Globals.end() || !MatchVal(V, It->second))
      return false;
  }
  // Cells: iteratively match cells whose base is mapped.
  std::vector<const HeapCell *> Pending;
  for (const HeapCell &C : Weak.Cells)
    Pending.push_back(&C);
  std::vector<bool> StrongUsed(Strong.Cells.size(), false);
  bool Progress = true;
  while (!Pending.empty() && Progress) {
    Progress = false;
    for (size_t I = 0; I < Pending.size(); ++I) {
      const HeapCell *WC = Pending[I];
      auto BIt = Map.find(WC->Base);
      if (BIt == Map.end())
        continue;
      bool Found = false;
      for (size_t J = 0; J < Strong.Cells.size(); ++J) {
        if (StrongUsed[J])
          continue;
        const HeapCell &SC = Strong.Cells[J];
        if (SC.Base != BIt->second || SC.Field != WC->Field)
          continue;
        if (!MatchVal(WC->Target, SC.Target))
          continue;
        StrongUsed[J] = true;
        Found = true;
        break;
      }
      if (!Found)
        return false;
      Pending.erase(Pending.begin() + static_cast<ptrdiff_t>(I));
      Progress = true;
      break;
    }
  }
  if (!Pending.empty())
    return false; // Cells with unanchored bases: give up.
  // Instance-constraint entailment (Eq. § of Sec. 3.3):
  // Strong's region must be included in Weak's. The fully symbolic
  // representation cannot perform this check; require equality there.
  for (const auto &[WSym, SSym] : Map) {
    const Region &WR = Weak.regionOf(WSym);
    const Region &SR = Strong.regionOf(SSym);
    if (Repr == Representation::FullySymbolic) {
      if (!(WR == SR))
        return false;
    } else if (!SR.subsetOf(WR)) {
      return false;
    }
  }
  // Pure entailment: map Weak's pure constraints into Strong's ids.
  PureConstraints Mapped;
  for (PurePrim Pr : Weak.Pure.prims()) {
    auto MapVar = [&](uint32_t V, bool &Ok) -> uint32_t {
      if (V == PurePrim::ZeroVar)
        return V;
      auto It = Map.find(V);
      if (It == Map.end()) {
        Ok = false;
        return V;
      }
      return It->second;
    };
    bool Ok = true;
    Pr.X = MapVar(Pr.X, Ok);
    Pr.Y = MapVar(Pr.Y, Ok);
    if (!Ok)
      return false; // Unanchored pure variable: give up.
    PureTerm L = Pr.X == PurePrim::ZeroVar ? PureTerm::mkConst(0)
                                           : PureTerm::mkVar(Pr.X);
    PureTerm R = Pr.Y == PurePrim::ZeroVar ? PureTerm::mkConst(Pr.C)
                                           : PureTerm::mkVar(Pr.Y, Pr.C);
    Mapped.addCmp(L, Pr.K == PurePrim::Kind::LE ? RelOp::LE : RelOp::NE, R,
                  false);
  }
  return Strong.Pure.entails(Mapped);
}

//===----------------------------------------------------------------------===//
// SubsumeRegistry
//===----------------------------------------------------------------------===//

bool SubsumeRegistry::probe(const Query &Q, const std::string &Slot,
                            const std::string &CanonKey,
                            Representation Repr) const {
  return Map.scan(Slot, [&](const Stored &E) {
    bool Hit = E.CanonKey == CanonKey || queryWeakerThan(E.Q, Q, Repr);
    if (Hit && HitObserver) {
      SubsumeEntry SE;
      SE.Slot = Slot;
      SE.CanonKey = E.CanonKey;
      SE.Q = E.Q;
      HitObserver(SE, Q);
    }
    return Hit;
  });
}

bool SubsumeRegistry::publish(SubsumeEntry E) {
  Stored St;
  St.CanonKey = E.CanonKey;
  St.Q = std::move(E.Q);
  return Map.appendIfNone(E.Slot, std::move(St), [&](const Stored &Old) {
    return Old.CanonKey == E.CanonKey;
  });
}

size_t SubsumeRegistry::publishAll(std::vector<SubsumeEntry> Entries) {
  size_t N = 0;
  for (SubsumeEntry &E : Entries)
    N += publish(std::move(E)) ? 1 : 0;
  return N;
}

//===----------------------------------------------------------------------===//
// Persistent-cache (de)serialization
//===----------------------------------------------------------------------===//

std::string
thresher::subsumeEntriesToJson(const std::vector<SubsumeEntry> &Entries) {
  JsonValue Arr = JsonValue::makeArray();
  for (const SubsumeEntry &E : Entries) {
    JsonValue Obj = JsonValue::makeObject();
    Obj.set("s", JsonValue::makeString(E.Slot));
    Obj.set("k", JsonValue::makeString(E.CanonKey));
    Obj.set("q", E.Q.toJson());
    Arr.append(std::move(Obj));
  }
  return Arr.toString();
}

bool thresher::subsumeEntriesFromJson(const std::string &Json,
                                      std::vector<SubsumeEntry> &Out) {
  Out.clear();
  JsonValue V;
  if (!parseJson(Json, V) || !V.isArray())
    return false;
  for (const JsonValue &Obj : V.items()) {
    if (!Obj.isObject())
      return false;
    const JsonValue *Slot = Obj.find("s");
    const JsonValue *Key = Obj.find("k");
    const JsonValue *QJ = Obj.find("q");
    if (!Slot || !Slot->isString() || !Key || !Key->isString() || !QJ)
      return false;
    std::optional<Query> Q = Query::fromJson(*QJ);
    if (!Q)
      return false;
    SubsumeEntry E;
    E.Slot = Slot->asString();
    E.CanonKey = Key->asString();
    E.Q = std::move(*Q);
    Out.push_back(std::move(E));
  }
  return true;
}
