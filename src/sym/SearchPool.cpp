//===- SearchPool.cpp - Intra-edge work-stealing scheduler ---------------===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sym/SearchPool.h"

#include "support/Budget.h"
#include "support/Stats.h"

#include <cassert>
#include <chrono>

using namespace thresher;

SearchPool::SearchPool(unsigned Threads, Stats &Registry)
    : NumThreads(Threads), S(Registry) {
  assert(NumThreads >= 2 && "a 1-thread search must not build a pool");
  Deques.reserve(NumThreads);
  for (unsigned W = 0; W < NumThreads; ++W)
    Deques.push_back(
        std::make_unique<WorkStealQueue<uint32_t>>(/*CapacityHint=*/1024));
  Helpers.reserve(NumThreads - 1);
  for (unsigned W = 1; W < NumThreads; ++W)
    Helpers.emplace_back([this, W] { helperMain(W); });
}

SearchPool::~SearchPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stop = true;
  }
  WaveCV.notify_all();
  for (std::thread &T : Helpers)
    T.join();
}

void SearchPool::runWave(size_t N, const std::function<bool(size_t)> &ExecFn,
                         const CancelToken *CancelTok) {
  assert(N <= Deques[0]->capacity() * NumThreads && "wave exceeds ring space");
  MinTerminal.store(SIZE_MAX, std::memory_order_relaxed);
  for (auto &D : Deques)
    D->reset();
  // Round-robin distribution, loaded in descending canonical order so each
  // worker's LIFO pop yields its smallest (most likely to be needed at
  // commit) index first.
  for (size_t I = N; I-- > 0;) {
    bool Ok = Deques[I % NumThreads]->push(static_cast<uint32_t>(I));
    assert(Ok && "deque ring too small for wave");
    (void)Ok;
  }
  {
    std::lock_guard<std::mutex> Lock(M);
    Exec = &ExecFn;
    Cancel = CancelTok;
    BusyHelpers = NumThreads - 1;
    ++Gen;
  }
  WaveCV.notify_all();
  S.bump("par.waves");
  participate(0);
  std::unique_lock<std::mutex> Lock(M);
  DoneCV.wait(Lock, [this] { return BusyHelpers == 0; });
  Exec = nullptr;
  Cancel = nullptr;
}

void SearchPool::helperMain(unsigned Worker) {
  uint64_t SeenGen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(M);
      WaveCV.wait(Lock, [&] { return Stop || Gen != SeenGen; });
      if (Stop)
        return;
      SeenGen = Gen;
    }
    participate(Worker);
    {
      std::lock_guard<std::mutex> Lock(M);
      --BusyHelpers;
    }
    DoneCV.notify_one();
  }
}

void SearchPool::participate(unsigned Worker) {
  WorkStealQueue<uint32_t> &Own = *Deques[Worker];
  const std::function<bool(size_t)> &ExecFn = *Exec;
  for (;;) {
    uint32_t Item = 0;
    bool Got = Own.pop(Item);
    if (!Got) {
      auto StealStart = std::chrono::steady_clock::now();
      // Sweep the siblings; a steal can fail spuriously under CAS
      // contention, so keep sweeping while any deque still looks nonempty
      // rather than giving up on the first dry pass.
      for (;;) {
        bool AnyVisible = false;
        for (unsigned K = 1; K < NumThreads && !Got; ++K) {
          WorkStealQueue<uint32_t> &Victim =
              *Deques[(Worker + K) % NumThreads];
          AnyVisible |= Victim.sizeEstimate() > 0;
          Got = Victim.steal(Item);
        }
        if (Got || !AnyVisible)
          break;
      }
      if (!Got)
        return;
      auto StealNanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - StealStart)
                            .count();
      S.bump("par.steals");
      S.record("hist.par.stealLatency", static_cast<uint64_t>(StealNanos));
    }
    if ((Cancel && Cancel->cancelled()) ||
        Item > MinTerminal.load(std::memory_order_relaxed)) {
      // No buffer is produced; the commit loop re-executes the item
      // inline if it is ever reached, so skipping is always sound.
      S.bump("par.itemsSkipped");
      continue;
    }
    if (ExecFn(Item)) {
      size_t Cur = MinTerminal.load(std::memory_order_relaxed);
      while (Item < Cur &&
             !MinTerminal.compare_exchange_weak(Cur, Item,
                                                std::memory_order_relaxed))
        ;
    }
  }
}
