#include "sym/Query.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace thresher;

//===----------------------------------------------------------------------===//
// Region
//===----------------------------------------------------------------------===//

std::string Region::toString(const Program &P, const AbsLocTable &T) const {
  std::ostringstream OS;
  OS << "{";
  bool First = true;
  for (AbsLocId L : Locs) {
    if (!First)
      OS << ",";
    First = false;
    OS << T.label(P, L);
  }
  if (HasData) {
    if (!First)
      OS << ",";
    OS << "data";
  }
  OS << "}";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Bindings
//===----------------------------------------------------------------------===//

std::optional<ValRef> Query::getLocal(uint32_t Frame, VarId V) const {
  auto It = Locals.find({Frame, V});
  if (It == Locals.end())
    return std::nullopt;
  return It->second;
}

void Query::setLocal(uint32_t Frame, VarId V, ValRef R) {
  Locals[{Frame, V}] = R;
}

void Query::eraseLocal(uint32_t Frame, VarId V) { Locals.erase({Frame, V}); }

std::optional<ValRef> Query::getGlobal(GlobalId G) const {
  auto It = Globals.find(G);
  if (It == Globals.end())
    return std::nullopt;
  return It->second;
}

Region &Query::regionOf(SymVarId S) {
  auto It = Regions.find(S);
  assert(It != Regions.end() && "unknown symbolic variable");
  return It->second;
}

const Region &Query::regionOf(SymVarId S) const {
  auto It = Regions.find(S);
  assert(It != Regions.end() && "unknown symbolic variable");
  return It->second;
}

void Query::narrowSymLocs(SymVarId S, const IdSet &Locs) {
  Region &R = regionOf(S);
  if (R.dataOnly())
    return;
  if (!R.narrowLocs(Locs))
    Refuted = true;
}

//===----------------------------------------------------------------------===//
// Unification and substitution
//===----------------------------------------------------------------------===//

ValRef Query::unify(ValRef A, ValRef B) {
  if (A == B)
    return A;
  if (A.isNull() || B.isNull()) {
    // Null vs Sym: a Sym binding asserts a non-null instance.
    Refuted = true;
    return A;
  }
  // Merge B into A.
  SymVarId Keep = A.Sym, Drop = B.Sym;
  Region DropRegion = regionOf(Drop);
  if (!regionOf(Keep).intersectWith(DropRegion)) {
    Refuted = true;
    return A;
  }
  substitute(Drop, Keep);
  return A;
}

void Query::substitute(SymVarId From, SymVarId To) {
  if (From == To)
    return;
  for (auto &[_, V] : Locals)
    if (V.isSym() && V.Sym == From)
      V.Sym = To;
  for (auto &[_, V] : Globals)
    if (V.isSym() && V.Sym == From)
      V.Sym = To;
  for (HeapCell &C : Cells) {
    if (C.Base == From)
      C.Base = To;
    if (C.Target.isSym() && C.Target.Sym == From)
      C.Target.Sym = To;
  }
  Pure.substitute(From, To);
  // Merge region info if both existed, then drop From.
  auto FromIt = Regions.find(From);
  if (FromIt != Regions.end()) {
    auto ToIt = Regions.find(To);
    if (ToIt != Regions.end()) {
      if (!ToIt->second.intersectWith(FromIt->second))
        Refuted = true;
    } else {
      Regions.emplace(To, FromIt->second);
    }
    Regions.erase(FromIt);
  }
  normalizeCells();
}

void Query::normalizeCells() {
  // Collapse exact duplicates; unify targets of duplicate (base, field)
  // cells on ordinary fields. Iterate to a fixed point since target
  // unification can substitute and create new duplicates.
  bool Changed = true;
  while (Changed && !Refuted) {
    Changed = false;
    for (size_t I = 0; I < Cells.size() && !Changed; ++I) {
      for (size_t J = I + 1; J < Cells.size() && !Changed; ++J) {
        if (Cells[I].Base != Cells[J].Base ||
            Cells[I].Field != Cells[J].Field)
          continue;
        if (Cells[I] == Cells[J]) {
          Cells.erase(Cells.begin() + static_cast<ptrdiff_t>(J));
          Changed = true;
          break;
        }
        if (Cells[I].Field == ElemsFieldCache)
          continue; // @elems cells may share (base, field).
        // Separation: one cell per (base, field) => targets must agree.
        ValRef TI = Cells[I].Target, TJ = Cells[J].Target;
        Cells.erase(Cells.begin() + static_cast<ptrdiff_t>(J));
        unify(TI, TJ);
        Changed = true;
      }
    }
  }
}

ValRef Query::addCell(SymVarId Base, FieldId Field, ValRef Target,
                      FieldId Elems) {
  ElemsFieldCache = Elems;
  if (Field != Elems) {
    for (HeapCell &C : Cells) {
      if (C.Base == Base && C.Field == Field) {
        ValRef Merged = unify(C.Target, Target);
        // Re-find is unnecessary: unify substitutes in place.
        return Merged;
      }
    }
  }
  HeapCell C;
  C.Base = Base;
  C.Field = Field;
  C.Target = Target;
  Cells.push_back(C);
  return Target;
}

std::vector<HeapCell *> Query::cellsWithBase(SymVarId Base) {
  std::vector<HeapCell *> Out;
  for (HeapCell &C : Cells)
    if (C.Base == Base)
      Out.push_back(&C);
  return Out;
}

void Query::removeCell(const HeapCell &Target) {
  for (size_t I = 0; I < Cells.size(); ++I) {
    if (Cells[I] == Target) {
      Cells.erase(Cells.begin() + static_cast<ptrdiff_t>(I));
      return;
    }
  }
  assert(false && "cell to remove not found");
}

bool Query::symIsReferenced(SymVarId S) const {
  for (const auto &[_, V] : Locals)
    if (V.isSym() && V.Sym == S)
      return true;
  for (const auto &[_, V] : Globals)
    if (V.isSym() && V.Sym == S)
      return true;
  for (const HeapCell &C : Cells)
    if (C.Base == S || (C.Target.isSym() && C.Target.Sym == S))
      return true;
  if (Pure.mentions(S))
    return true;
  return false;
}

void Query::gcRegions() {
  for (auto It = Regions.begin(); It != Regions.end();) {
    if (!symIsReferenced(It->first))
      It = Regions.erase(It);
    else
      ++It;
  }
}

uint64_t Query::approxBytes() const {
  // Node-based maps cost roughly key + value + three pointers per entry;
  // the constant factors only need to be stable, not exact, because the
  // accountant compares totals against a user-supplied ceiling.
  constexpr uint64_t NodeOverhead = 3 * sizeof(void *);
  uint64_t B = sizeof(Query);
  B += Frames.size() * sizeof(QueryFrame);
  B += Locals.size() * (sizeof(std::pair<uint32_t, VarId>) + sizeof(ValRef) +
                        NodeOverhead);
  B += Globals.size() * (sizeof(GlobalId) + sizeof(ValRef) + NodeOverhead);
  B += Cells.size() * sizeof(HeapCell);
  for (const auto &[S, R] : Regions) {
    (void)S;
    B += sizeof(SymVarId) + sizeof(Region) + NodeOverhead;
    B += R.Locs.heapBytes();
  }
  B += Pure.prims().size() * sizeof(PurePrim);
  B += LoopCrossings.size() *
       (sizeof(std::pair<FuncId, BlockId>) + sizeof(uint32_t) + NodeOverhead);
  B += Trail.size() * sizeof(ProgramPoint);
  for (const std::string &S : TrailQueries)
    B += S.size();
  return B;
}

//===----------------------------------------------------------------------===//
// Canonicalization and printing
//===----------------------------------------------------------------------===//

std::map<SymVarId, uint32_t> Query::canonicalOrder() const {
  std::map<SymVarId, uint32_t> Order;
  auto Touch = [&](const ValRef &V) {
    if (V.isSym() && !Order.count(V.Sym))
      Order.emplace(V.Sym, static_cast<uint32_t>(Order.size()));
  };
  for (const auto &[_, V] : Locals) // std::map: sorted by key.
    Touch(V);
  for (const auto &[_, V] : Globals)
    Touch(V);
  // Cells: repeatedly pick cells whose base is already named, in sorted
  // order, to get a deterministic traversal; then the rest.
  std::vector<const HeapCell *> Pending;
  for (const HeapCell &C : Cells)
    Pending.push_back(&C);
  auto CellLess = [&](const HeapCell *A, const HeapCell *B) {
    auto Rank = [&](SymVarId S) {
      auto It = Order.find(S);
      return It == Order.end() ? ~0u : It->second;
    };
    if (Rank(A->Base) != Rank(B->Base))
      return Rank(A->Base) < Rank(B->Base);
    if (A->Field != B->Field)
      return A->Field < B->Field;
    return A->Base < B->Base;
  };
  while (!Pending.empty()) {
    std::sort(Pending.begin(), Pending.end(), CellLess);
    const HeapCell *C = Pending.front();
    Pending.erase(Pending.begin());
    if (!Order.count(C->Base))
      Order.emplace(C->Base, static_cast<uint32_t>(Order.size()));
    Touch(C->Target);
  }
  for (const PurePrim &Pr : Pure.prims()) {
    for (SymVarId S : {Pr.X, Pr.Y})
      if (S != PurePrim::ZeroVar && !Order.count(S))
        Order.emplace(S, static_cast<uint32_t>(Order.size()));
  }
  return Order;
}

std::string Query::historySlot() const {
  std::ostringstream OS;
  OS << Pos.F << ":" << Pos.B << ":" << Pos.Idx << "|";
  for (const QueryFrame &F : Frames) {
    OS << F.Func;
    if (F.Ctx != InvalidId)
      OS << "#" << F.Ctx;
    if (F.HasCallSite)
      OS << "@" << F.CallAt.F << ":" << F.CallAt.B << ":" << F.CallAt.Idx;
    OS << ";";
  }
  return OS.str();
}

std::string Query::canonicalKey() const {
  std::map<SymVarId, uint32_t> Order = canonicalOrder();
  auto Ren = [&](SymVarId S) {
    auto It = Order.find(S);
    return It == Order.end() ? ~0u : It->second;
  };
  auto RenVal = [&](const ValRef &V) -> std::string {
    if (V.isNull())
      return "null";
    return "s" + std::to_string(Ren(V.Sym));
  };
  std::ostringstream OS;
  OS << historySlot() << "||";
  for (const auto &[K, V] : Locals)
    OS << "L" << K.first << "." << K.second << "=" << RenVal(V) << ";";
  for (const auto &[G, V] : Globals)
    OS << "G" << G << "=" << RenVal(V) << ";";
  // Cells sorted by renamed components.
  std::vector<std::string> CellStrs;
  for (const HeapCell &C : Cells) {
    std::ostringstream CS;
    CS << "s" << Ren(C.Base) << "." << C.Field << "=" << RenVal(C.Target);
    CellStrs.push_back(CS.str());
  }
  std::sort(CellStrs.begin(), CellStrs.end());
  for (const std::string &S : CellStrs)
    OS << "C" << S << ";";
  // Regions of referenced vars, in canonical order.
  std::vector<std::pair<uint32_t, const Region *>> Regs;
  for (const auto &[S, R] : Regions) {
    auto It = Order.find(S);
    if (It != Order.end())
      Regs.push_back({It->second, &R});
  }
  std::sort(Regs.begin(), Regs.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  for (const auto &[Idx, R] : Regs) {
    OS << "R" << Idx << "={";
    for (AbsLocId L : R->Locs)
      OS << L << ",";
    if (R->HasData)
      OS << "data";
    OS << "};";
  }
  // Pure primitives, renamed and sorted.
  std::vector<std::string> PureStrs;
  for (const PurePrim &Pr : Pure.prims()) {
    std::ostringstream PS;
    auto N = [&](uint32_t V) {
      return V == PurePrim::ZeroVar ? std::string("z")
                                    : "s" + std::to_string(Ren(V));
    };
    PS << N(Pr.X) << (Pr.K == PurePrim::Kind::LE ? "<=" : "!=") << N(Pr.Y)
       << ":" << Pr.C;
    PureStrs.push_back(PS.str());
  }
  std::sort(PureStrs.begin(), PureStrs.end());
  for (const std::string &S : PureStrs)
    OS << "P" << S << ";";
  return OS.str();
}

std::string Query::toString(const Program &P, const AbsLocTable &T) const {
  std::ostringstream OS;
  auto Val = [&](const ValRef &V) -> std::string {
    if (V.isNull())
      return "null";
    return "v" + std::to_string(V.Sym);
  };
  OS << "@" << P.funcName(Pos.F) << "/bb" << Pos.B << "/" << Pos.Idx << " ";
  if (Refuted) {
    OS << "REFUTED";
    return OS.str();
  }
  bool First = true;
  auto Sep = [&]() {
    if (!First)
      OS << " * ";
    First = false;
  };
  for (const auto &[K, V] : Locals) {
    Sep();
    const Function &Fn = P.Funcs[Frames[K.first].Func];
    OS << Fn.varName(K.second) << "|->" << Val(V);
  }
  for (const auto &[G, V] : Globals) {
    Sep();
    OS << P.globalName(G) << "|->" << Val(V);
  }
  for (const HeapCell &C : Cells) {
    Sep();
    OS << "v" << C.Base << "." << P.fieldName(C.Field) << "|->"
       << Val(C.Target);
  }
  for (const auto &[S, R] : Regions) {
    if (!symIsReferenced(S))
      continue;
    OS << " /\\ v" << S << " from " << R.toString(P, T);
  }
  if (!Pure.empty())
    OS << " /\\ "
       << Pure.toString([](uint32_t V) { return "v" + std::to_string(V); });
  if (First && Pure.empty())
    OS << "any";
  return OS.str();
}
