//===- Region.h - Points-to regions for instance constraints ----*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A points-to region r̂ (Sec. 3.1): a set of abstract locations, possibly
/// extended with the distinguished `data` region for non-address values.
/// Instance constraints `v̂ from r̂` attach a Region to each symbolic
/// variable; intersections drive the early refutations of Fig. 4.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SYM_REGION_H
#define THRESHER_SYM_REGION_H

#include "pta/AbsLoc.h"
#include "support/IdSet.h"

#include <string>

namespace thresher {

/// A points-to region: abstract locations plus optionally `data`.
struct Region {
  IdSet Locs;
  bool HasData = false;

  static Region ofLocs(IdSet L) {
    Region R;
    R.Locs = std::move(L);
    return R;
  }
  static Region data() {
    Region R;
    R.HasData = true;
    return R;
  }

  /// Empty region: `v̂ from ∅ <=> false` (axiom 1 of Sec. 3.2).
  bool empty() const { return !HasData && Locs.empty(); }

  /// True if the region admits heap instances.
  bool hasLocs() const { return !Locs.empty(); }

  /// True if the region is data-only (no heap instance possible).
  bool dataOnly() const { return HasData && Locs.empty(); }

  /// Intersects with \p Other in place (axiom 2). Returns false if the
  /// result is empty (a refutation).
  bool intersectWith(const Region &Other) {
    Locs = Locs.intersectWith(Other.Locs);
    HasData = HasData && Other.HasData;
    return !empty();
  }

  /// Intersects the location part with \p L (data status unchanged by the
  /// heap-flow rules, which only narrow addresses). Returns false if empty.
  bool narrowLocs(const IdSet &L) {
    Locs = Locs.intersectWith(L);
    return !empty();
  }

  /// Region inclusion, used by the `from`-constraint entailment (Eq. § of
  /// Sec. 3.3): this ⊆ Other.
  bool subsetOf(const Region &Other) const {
    if (HasData && !Other.HasData)
      return false;
    return Locs.subsetOf(Other.Locs);
  }

  bool operator==(const Region &O) const {
    return HasData == O.HasData && Locs == O.Locs;
  }

  std::string toString(const Program &P, const AbsLocTable &T) const;
};

} // namespace thresher

#endif // THRESHER_SYM_REGION_H
