//===- Subsume.h - Cross-edge query subsumption registry --------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The global subsumption registry: a shared, sharded store of queries that
/// were *fully refuted* by some completed search run, keyed by
/// Query::historySlot(). Once a query is registered, any equal-or-stronger
/// query (exact canonical key, or queryWeakerThan) arising on ANY edge, in
/// any later run of the same program under the same options, can be pruned
/// immediately: a backwards refutation depends only on the program, the
/// points-to solution, and the search options — never on which edge or
/// producer initiated it.
///
/// Soundness: entries must come only from runs whose overall outcome was
/// Refuted. A per-run history entry merely records that a query was
/// *explored*; only a fully refuted run certifies that every path from
/// every explored query was refuted, which is what a cross-edge prune
/// requires. (Pruning a query because a weaker one was refuted elsewhere
/// can only remove witness-free subtrees, so WITNESS verdicts can never
/// flip — the soundness harness in tests/soundness_diff_test.cpp pins
/// this.)
///
/// Determinism: the registry itself is only thread-safe; the deterministic
/// publication protocol (empty during parallel prefetch, published in
/// consult order, prefetch results revalidated against their probed slots)
/// lives in LeakChecker and is documented in docs/PRUNING.md.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SYM_SUBSUME_H
#define THRESHER_SYM_SUBSUME_H

#include "support/Sharded.h"
#include "sym/Query.h"

#include <array>
#include <functional>
#include <string>
#include <vector>

namespace thresher {

enum class Representation : uint8_t; // sym/WitnessSearch.h

/// True if \p Weak is semantically weaker than (entailed by) \p Strong:
/// refuting Weak refutes Strong, so Strong can be dropped when Weak has
/// already been recorded (per-run history) or registered as refuted
/// (registry). Conservative — may say false. Factored out of the engine so
/// the registry, the per-run history, and the property tests in
/// tests/solver_test.cpp all exercise the same predicate.
bool queryWeakerThan(const Query &Weak, const Query &Strong,
                     Representation Repr);

/// One registrable refuted query: its history slot, its canonical key
/// (exact-match fast path), and the query itself (weaker-than slow path).
struct SubsumeEntry {
  std::string Slot;
  std::string CanonKey;
  Query Q;
};

/// The shared cross-edge registry. All methods are thread-safe; see the
/// file comment for the determinism contract layered on top.
class SubsumeRegistry {
public:
  /// True if a registered entry in \p Slot subsumes \p Q (same canonical
  /// key, or registered-weaker-than-Q). \p CanonKey must be
  /// Q.canonicalKey() (callers already have it computed).
  bool probe(const Query &Q, const std::string &Slot,
             const std::string &CanonKey, Representation Repr) const;

  /// Registers \p E unless its slot already holds an entry with the same
  /// canonical key. Returns true if inserted.
  bool publish(SubsumeEntry E);

  /// Registers a batch; returns how many were actually inserted.
  size_t publishAll(std::vector<SubsumeEntry> Entries);

  size_t size() const { return Map.size(); }
  std::array<size_t, 16> shardSizes() const { return Map.shardSizes(); }
  void clear() { Map.clear(); }

  /// Test hook: called with the registered entry and the probing query on
  /// every probe hit. Called under a shard lock — the observer must not
  /// touch the registry. Set before any concurrent use (not synchronized
  /// against in-flight probes).
  void
  setHitObserver(std::function<void(const SubsumeEntry &, const Query &)> O) {
    HitObserver = std::move(O);
  }

private:
  struct Stored {
    std::string CanonKey;
    Query Q;
  };
  ShardedSlotMap<Stored, 16> Map;
  std::function<void(const SubsumeEntry &, const Query &)> HitObserver;
};

/// Serializes entries for the persistent refutation cache ("reg" field of
/// a cache entry): a compact JSON array, stable under entry order.
std::string subsumeEntriesToJson(const std::vector<SubsumeEntry> &Entries);

/// Parses what subsumeEntriesToJson produced. Returns false (leaving \p Out
/// in an unspecified state) on malformed input — callers treat that as "no
/// persisted registry payload", never as an error.
bool subsumeEntriesFromJson(const std::string &Json,
                            std::vector<SubsumeEntry> &Out);

} // namespace thresher

#endif // THRESHER_SYM_SUBSUME_H
