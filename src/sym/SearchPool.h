//===- SearchPool.h - Intra-edge work-stealing scheduler --------*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small persistent thread pool that fans one wave of speculative search
/// items out over per-worker work-stealing deques. WitnessSearch::Run pops
/// a fixed-width wave of frontier queries, hands the item indices to
/// runWave, and every worker (the calling thread participates as worker 0)
/// drains its own deque LIFO and steals FIFO from siblings when empty.
///
/// The pool knows nothing about queries: items are canonical indices into
/// the caller's wave vector and the caller's Exec callback does the work.
/// Exec returning true means "terminal result found at this index" —
/// the pool then skips any still-unclaimed item with a *larger* canonical
/// index (a smaller one could still win at commit time, so those always
/// run). Cancellation (governor cancel token) skips everything; skipped
/// items simply have no speculative buffer and are re-executed inline by
/// the sequential commit loop if it reaches them, so skipping is always
/// sound and never changes results.
///
/// Scheduling metrics (par.steals, par.itemsSkipped, par.waves,
/// hist.par.stealLatency) are recorded into the engine's stats registry;
/// they are nondeterministic and live in the report's effort section only.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_SYM_SEARCHPOOL_H
#define THRESHER_SYM_SEARCHPOOL_H

#include "support/WorkStealQueue.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace thresher {

class Stats;
class CancelToken;

class SearchPool {
public:
  /// Spawns Threads-1 helper threads (the wave caller is the remaining
  /// worker). Threads must be >= 2 — a 1-thread search never builds a pool.
  SearchPool(unsigned Threads, Stats &S);
  ~SearchPool();

  SearchPool(const SearchPool &) = delete;
  SearchPool &operator=(const SearchPool &) = delete;

  unsigned threads() const { return NumThreads; }

  /// Executes Exec(0..N-1), each index exactly once unless skipped, across
  /// all workers; blocks until every worker is done. Exec must be safe to
  /// call concurrently from distinct threads with distinct indices.
  void runWave(size_t N, const std::function<bool(size_t)> &Exec,
               const CancelToken *Cancel);

private:
  void helperMain(unsigned Worker);
  void participate(unsigned Worker);

  unsigned NumThreads;
  Stats &S;
  /// Indirect: the deques hold atomics and are neither movable nor
  /// copyable, so the vector stores stable heap slots.
  std::vector<std::unique_ptr<WorkStealQueue<uint32_t>>> Deques;
  std::vector<std::thread> Helpers;

  std::mutex M;
  std::condition_variable WaveCV;
  std::condition_variable DoneCV;
  /// Bumped once per wave; helpers wake on Gen != their last seen value,
  /// so a notify that races a helper still finishing the previous wave is
  /// never lost.
  uint64_t Gen = 0;
  bool Stop = false;
  unsigned BusyHelpers = 0;

  // Per-wave task state (written under M before the generation bump).
  const std::function<bool(size_t)> *Exec = nullptr;
  const CancelToken *Cancel = nullptr;

  /// Smallest canonical index whose Exec reported a terminal result this
  /// wave; items above it are skipped. SIZE_MAX when none.
  std::atomic<size_t> MinTerminal{SIZE_MAX};
};

} // namespace thresher

#endif // THRESHER_SYM_SEARCHPOOL_H
