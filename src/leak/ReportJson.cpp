//===- ReportJson.cpp - Machine-readable leak report --------------------===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Builds the versioned JSON report document for LeakChecker::run. The
// document is split into deterministic sections (config, summary, alarms,
// per-edge verdicts — identical for every thread count) and an "effort"
// section (wall-clock, counters, histograms, prefetch totals) that is
// omitted under ReportJsonOptions::DeterministicOnly so differential tests
// can byte-compare reports across thread counts.
//
//===----------------------------------------------------------------------===//

#include "leak/LeakChecker.h"

using namespace thresher;

namespace {

const char *representationName(Representation R) {
  switch (R) {
  case Representation::Mixed:
    return "mixed";
  case Representation::FullySymbolic:
    return "fully-symbolic";
  case Representation::FullyExplicit:
    return "fully-explicit";
  }
  return "?";
}

const char *loopModeName(LoopMode L) {
  switch (L) {
  case LoopMode::FullInference:
    return "full-inference";
  case LoopMode::DropAll:
    return "drop-all";
  }
  return "?";
}

JsonValue histogramToJson(const Histogram &H) {
  JsonValue O = JsonValue::makeObject();
  O.set("count", JsonValue::makeUint(H.count()));
  O.set("sum", JsonValue::makeUint(H.sum()));
  O.set("min", JsonValue::makeUint(H.min()));
  O.set("max", JsonValue::makeUint(H.max()));
  O.set("mean", JsonValue::makeDouble(H.mean()));
  // Empty histograms serialize null quantiles: a phase that never ran is
  // not the same as a phase whose samples were all zero.
  auto Quant = [&](double Q) {
    auto V = H.quantile(Q);
    return V ? JsonValue::makeUint(*V) : JsonValue();
  };
  O.set("p50", Quant(0.5));
  O.set("p90", Quant(0.9));
  O.set("p99", Quant(0.99));
  JsonValue Buckets = JsonValue::makeArray();
  // Sparse form: [bucketLowerBound, count] for non-empty buckets only.
  for (unsigned B = 0; B < Histogram::NumBuckets; ++B) {
    if (H.buckets()[B] == 0)
      continue;
    JsonValue Pair = JsonValue::makeArray();
    Pair.append(JsonValue::makeUint(Histogram::bucketLo(B)));
    Pair.append(JsonValue::makeUint(H.buckets()[B]));
    Buckets.append(std::move(Pair));
  }
  O.set("buckets", std::move(Buckets));
  return O;
}

} // namespace

JsonValue LeakChecker::buildJsonReport(const LeakReport &R,
                                       const ReportJsonOptions &O) const {
  JsonValue Doc = JsonValue::makeObject();
  Doc.set("schema", JsonValue::makeString(ReportSchemaVersion));

  JsonValue Config = JsonValue::makeObject();
  Config.set("representation",
             JsonValue::makeString(representationName(Opts.Repr)));
  Config.set("loopMode", JsonValue::makeString(loopModeName(Opts.Loop)));
  Config.set("querySimplification",
             JsonValue::makeBool(Opts.QuerySimplification));
  Config.set("edgeBudget", JsonValue::makeUint(Opts.EdgeBudget));
  Config.set("maxCallStackDepth", JsonValue::makeUint(Opts.MaxCallStackDepth));
  Config.set("pathConstraintCap", JsonValue::makeUint(Opts.PathConstraintCap));
  Config.set("maxLoopCrossings", JsonValue::makeUint(Opts.MaxLoopCrossings));
  // The search reducers never change a verdict (only effort), but they are
  // config: the same flags must reproduce the same steps.
  Config.set("forwardSlice", JsonValue::makeBool(Opts.ForwardSlice));
  Config.set("globalSubsume", JsonValue::makeBool(Opts.GlobalSubsume));
  if (Gov) {
    // Governance config is part of the deterministic section: the same
    // flags must reproduce the same report, and the steps/ms rate must be
    // recorded for step-denominated deadlines to be interpretable.
    const GovernorConfig &GC = Gov->config();
    JsonValue GJ = JsonValue::makeObject();
    GJ.set("deterministic", JsonValue::makeBool(GC.Deterministic));
    GJ.set("stepsPerMs", JsonValue::makeUint(GC.StepsPerMs));
    GJ.set("edgeTimeoutMs", JsonValue::makeUint(GC.EdgeTimeoutMs));
    GJ.set("runTimeoutMs", JsonValue::makeUint(GC.RunTimeoutMs));
    GJ.set("memCeilingBytes", JsonValue::makeUint(GC.MemCeilingBytes));
    Config.set("governor", std::move(GJ));
  }
  Doc.set("config", std::move(Config));

  JsonValue Summary = JsonValue::makeObject();
  Summary.set("alarms", JsonValue::makeUint(R.NumAlarms));
  Summary.set("refutedAlarms", JsonValue::makeUint(R.RefutedAlarms));
  Summary.set("fields", JsonValue::makeUint(R.Fields));
  Summary.set("refutedFields", JsonValue::makeUint(R.RefutedFields));
  JsonValue EdgeTotals = JsonValue::makeObject();
  EdgeTotals.set("consulted", JsonValue::makeUint(R.Edges.size()));
  EdgeTotals.set("refuted", JsonValue::makeUint(R.RefutedEdges));
  EdgeTotals.set("witnessed", JsonValue::makeUint(R.WitnessedEdges));
  EdgeTotals.set("timeout", JsonValue::makeUint(R.TimeoutEdges));
  Summary.set("edges", std::move(EdgeTotals));
  Doc.set("summary", std::move(Summary));

  JsonValue Alarms = JsonValue::makeArray();
  for (const AlarmResult &A : R.Alarms) {
    JsonValue AO = JsonValue::makeObject();
    AO.set("source", JsonValue::makeString(P.globalName(A.Source)));
    AO.set("activity", JsonValue::makeString(PTA.Locs.label(P, A.Activity)));
    AO.set("status", JsonValue::makeString(alarmStatusName(A.Status)));
    JsonValue Path = JsonValue::makeArray();
    for (const std::string &EdgeLabel : A.PathDescription)
      Path.append(JsonValue::makeString(EdgeLabel));
    AO.set("path", std::move(Path));
    Alarms.append(std::move(AO));
  }
  Doc.set("alarms", std::move(Alarms));

  JsonValue Edges = JsonValue::makeArray();
  for (const EdgeVerdict &V : R.Edges) {
    JsonValue EO = JsonValue::makeObject();
    EO.set("edge", JsonValue::makeString(V.Label));
    EO.set("kind", JsonValue::makeString(V.IsGlobal ? "global" : "field"));
    EO.set("verdict", JsonValue::makeString(outcomeName(V.Outcome)));
    if (V.Outcome == SearchOutcome::BudgetExhausted)
      // Deterministic in step-denominated mode; part of the byte-compared
      // report form so torture runs pin the cut-off edge too.
      EO.set("reason", JsonValue::makeString(exhaustionReasonName(V.Reason)));
    EO.set("steps", JsonValue::makeUint(V.Steps));
    if (!O.DeterministicOnly) {
      EO.set("nanos", JsonValue::makeUint(V.Nanos));
      // Cache participation is volatile across cold/warm runs, so it is
      // excluded from the deterministic form (like nanos).
      if (V.Cache != EdgeCacheState::None)
        EO.set("cache", JsonValue::makeString(edgeCacheStateName(V.Cache)));
    }
    Edges.append(std::move(EO));
  }
  Doc.set("edges", std::move(Edges));

  if (!O.DeterministicOnly) {
    JsonValue Effort = JsonValue::makeObject();
    Effort.set("seconds", JsonValue::makeDouble(R.Seconds));
    Effort.set("threads", JsonValue::makeUint(R.Threads));
    Effort.set("prefetchedEdges", JsonValue::makeUint(R.PrefetchedEdges));
    JsonValue Counters = JsonValue::makeObject();
    for (const auto &[Name, Value] : stats().counterSnapshot())
      Counters.set(Name, JsonValue::makeUint(Value));
    Effort.set("counters", std::move(Counters));
    JsonValue Hists = JsonValue::makeObject();
    for (const auto &[Name, H] : stats().histogramSnapshot())
      Hists.set(Name, histogramToJson(H));
    Effort.set("histograms", std::move(Hists));
    if (R.Cache.Enabled) {
      JsonValue Cache = JsonValue::makeObject();
      Cache.set("loaded", JsonValue::makeUint(R.Cache.Loaded));
      Cache.set("valid", JsonValue::makeUint(R.Cache.Valid));
      Cache.set("stale", JsonValue::makeUint(R.Cache.Stale));
      Cache.set("hits", JsonValue::makeUint(R.Cache.Hits));
      Cache.set("misses", JsonValue::makeUint(R.Cache.Misses));
      Cache.set("invalidated", JsonValue::makeUint(R.Cache.Invalidated));
      Cache.set("inserted", JsonValue::makeUint(R.Cache.Inserted));
      Cache.set("verified", JsonValue::makeUint(R.Cache.Verified));
      Cache.set("verifyMismatches",
                JsonValue::makeUint(R.Cache.VerifyMismatches));
      Effort.set("cache", std::move(Cache));
    }
    if (Opts.GlobalSubsume) {
      // Registry activity (duplicated from the counters for discoverability;
      // size is a point-in-time value, not a counter).
      JsonValue Reg = JsonValue::makeObject();
      Reg.set("size", JsonValue::makeUint(Registry.size()));
      Reg.set("hits", JsonValue::makeUint(stats().get("par.registryHits")));
      Reg.set("misses",
              JsonValue::makeUint(stats().get("par.registryMisses")));
      Reg.set("published",
              JsonValue::makeUint(stats().get("par.registryPublished")));
      Reg.set("researches",
              JsonValue::makeUint(stats().get("par.registryResearches")));
      Effort.set("registry", std::move(Reg));
    }
    Doc.set("effort", std::move(Effort));
  }
  return Doc;
}

void LeakChecker::writeJsonReport(std::ostream &OS, const LeakReport &R,
                                  const ReportJsonOptions &O) const {
  buildJsonReport(R, O).write(OS, O.Indent);
  OS << "\n";
}
