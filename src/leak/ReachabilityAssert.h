//===- ReachabilityAssert.h - General heap-reachability checks --*- C++ -*-===//
//
// Part of the Thresher reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's introduction motivates heap reachability beyond leak
/// detection: "a heap reachability checker would also enable a developer
/// to write statically checkable assertions about, for example, object
/// lifetimes, encapsulation of fields, or immutability of objects." This
/// facade exposes exactly that: assert that no instance of a class (or of
/// one allocation site) is ever reachable from a given static field, and
/// get either a proof (all connecting edges refuted) or a concrete heap
/// path as the counterexample.
///
//===----------------------------------------------------------------------===//

#ifndef THRESHER_LEAK_REACHABILITYASSERT_H
#define THRESHER_LEAK_REACHABILITYASSERT_H

#include "sym/WitnessSearch.h"

#include <string>
#include <vector>

namespace thresher {

/// Verdict of a reachability assertion.
enum class AssertVerdict : uint8_t {
  Proven,     ///< Unreachable: every connecting edge chain was refuted.
  Violated,   ///< A heap path survived threshing (counterexample below).
  Inconclusive, ///< Some edge exhausted its budget; neither proven nor
                ///< witnessed.
};

/// Result of one assertion check.
struct AssertResult {
  AssertVerdict Verdict = AssertVerdict::Proven;
  /// For Violated/Inconclusive: the surviving heap path, edge labels from
  /// the static field to the target.
  std::vector<std::string> CounterexamplePath;
  uint32_t EdgesRefuted = 0;
  uint32_t EdgesWitnessed = 0;
  uint32_t EdgeTimeouts = 0;
};

/// Checks heap-reachability assertions by threshing points-to paths, the
/// same algorithm as the leak client but with caller-chosen sources and
/// targets.
class ReachabilityChecker {
public:
  ReachabilityChecker(const Program &P, const PointsToResult &PTA,
                      SymOptions Opts = {});

  /// Asserts that no instance whose class derives from \p TargetClass is
  /// ever reachable from static field \p Source.
  AssertResult assertUnreachableClass(GlobalId Source, ClassId TargetClass);

  /// Asserts that no instance allocated at \p Site is ever reachable from
  /// static field \p Source.
  AssertResult assertUnreachableSite(GlobalId Source, AllocSiteId Site);

private:
  AssertResult checkTargets(GlobalId Source, const IdSet &Targets);

  const Program &P;
  const PointsToResult &PTA;
  WitnessSearch WS;

  struct EdgeKey {
    bool IsGlobal = false;
    GlobalId G = InvalidId;
    AbsLocId Base = InvalidId;
    FieldId Fld = InvalidId;
    AbsLocId Target = InvalidId;
    bool operator<(const EdgeKey &O) const {
      return std::tie(IsGlobal, G, Base, Fld, Target) <
             std::tie(O.IsGlobal, O.G, O.Base, O.Fld, O.Target);
    }
  };
  std::map<EdgeKey, SearchOutcome> Cache;
};

} // namespace thresher

#endif // THRESHER_LEAK_REACHABILITYASSERT_H
