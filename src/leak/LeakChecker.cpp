#include "leak/LeakChecker.h"

#include "cache/RefutationCache.h"
#include "ir/Fingerprint.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <set>
#include <thread>

using namespace thresher;

const char *thresher::alarmStatusName(AlarmStatus S) {
  switch (S) {
  case AlarmStatus::Refuted:
    return "REFUTED";
  case AlarmStatus::Witnessed:
    return "LEAK";
  case AlarmStatus::Timeout:
    return "LEAK_TIMEOUT";
  }
  return "?";
}

const char *thresher::edgeCacheStateName(EdgeCacheState S) {
  switch (S) {
  case EdgeCacheState::None:
    return "none";
  case EdgeCacheState::Hit:
    return "hit";
  case EdgeCacheState::Miss:
    return "miss";
  case EdgeCacheState::Invalidated:
    return "invalidated";
  }
  return "?";
}

namespace {

uint64_t nanosSince(std::chrono::steady_clock::time_point T0) {
  auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - T0)
                .count();
  return static_cast<uint64_t>(Ns < 0 ? 0 : Ns);
}

} // namespace

LeakChecker::LeakChecker(const Program &P, const PointsToResult &PTA,
                         ClassId ActivityBase, SymOptions Opts)
    : P(P), PTA(PTA), ActivityBase(ActivityBase), Opts(Opts),
      WS(P, PTA, Opts) {
  // Fold the points-to phase's effort into the engine registry so reports
  // and --stats cover every analysis phase.
  WS.stats().mergeFrom(PTA.Effort);
  // The checker owns the shared cross-edge registry and its deterministic
  // publication protocol (checkEdge); the engine only probes it.
  if (this->Opts.GlobalSubsume)
    WS.setRegistry(&Registry);
}

void LeakChecker::setCache(RefutationCache *C, uint64_t ConfigHash,
                           bool Verify) {
  Cache = C;
  CacheConfig = ConfigHash;
  CacheVerify = Verify;
  // Registry payloads serialize queries with raw dense ids, so persisted
  // entries are guarded by the exact program fingerprint.
  if (C && Opts.GlobalSubsume && ProgFp == 0)
    ProgFp = fingerprintProgram(P);
}

void LeakChecker::setGovernor(ResourceGovernor *G) {
  Gov = G;
  WS.setGovernor(G);
}

std::string LeakChecker::edgeLabel(const EdgeKey &E) const {
  if (E.IsGlobal)
    return P.globalName(E.G) + " -> " + PTA.Locs.label(P, E.Target);
  return PTA.Locs.label(P, E.Base) + "." + P.fieldName(E.Fld) + " -> " +
         PTA.Locs.label(P, E.Target);
}

LeakChecker::EdgeInfo LeakChecker::threshEdge(WitnessSearch &Engine,
                                              const EdgeKey &E,
                                              bool BypassCacheProbe) {
  EdgeInfo Info;
  if (Opts.GlobalSubsume)
    Info.Reg = std::make_shared<RegistryLog>();
  // Moves the engine's per-edge registry activity (harvested refuted
  // queries + probed-and-missed slots) into this edge's log. Must run
  // after every search even when the log is discarded: the engine
  // accumulates per edge, and leftovers would pollute the next edge.
  auto Drain = [&] {
    std::vector<SubsumeEntry> Pend = Engine.takePendingEntries();
    std::set<std::string> Probed = Engine.takeProbedSlots();
    if (!Info.Reg)
      return;
    Info.Reg->Pendings = std::move(Pend);
    Info.Reg->ProbedSlots.assign(Probed.begin(), Probed.end());
  };
  // Serializes the edge's fresh harvest for cache persistence (so a warm
  // run can republish without re-searching).
  auto HarvestJson = [&] {
    if (!Info.Reg || Info.Reg->Pendings.empty())
      return std::string();
    Engine.stats().bump("cache.regPersisted");
    return subsumeEntriesToJson(Info.Reg->Pendings);
  };
  std::string Label;
  if (Cache)
    Label = edgeLabel(E);
  if (Cache && !BypassCacheProbe) {
    SearchOutcome CachedOut;
    uint64_t CachedSteps = 0;
    std::string RegJson;
    RefutationCache::Probe Pr =
        Cache->probe(Label, CacheConfig, CachedOut, CachedSteps,
                     Info.Reg ? &RegJson : nullptr);
    // Exhausted searches are never cached, but an old or hand-edited store
    // may still carry TIMEOUT verdicts: distrust them and re-search.
    if (Pr == RefutationCache::Probe::Hit &&
        CachedOut == SearchOutcome::BudgetExhausted) {
      Engine.stats().bump("robust.staleTimeoutHits");
      Pr = RefutationCache::Probe::Miss;
    }
    switch (Pr) {
    case RefutationCache::Probe::Hit: {
      Engine.stats().bump("cache.hit");
      // Restoring Outcome and Steps exactly keeps the deterministic report
      // byte-identical to the cold run; Nanos stays 0 (no search ran).
      Info.Outcome = CachedOut;
      Info.Steps = CachedSteps;
      Info.Cache = EdgeCacheState::Hit;
      if (Info.Reg)
        Info.Reg->PersistedJson = std::move(RegJson);
      if (!CacheVerify)
        return Info;
      // --cache-verify: run the search anyway; a mismatch is counted and
      // the fresh verdict wins (and replaces the cache entry).
      auto T0 = std::chrono::steady_clock::now();
      DepFootprint FP;
      Engine.setDepSink(&FP);
      EdgeSearchResult R =
          E.IsGlobal ? Engine.searchGlobalEdge(E.G, E.Target)
                     : Engine.searchFieldEdge(E.Base, E.Fld, E.Target);
      Engine.setDepSink(nullptr);
      Engine.stats().bump("cache.verified");
      Drain();
      if (R.Outcome == SearchOutcome::BudgetExhausted) {
        // The verification search ran out of budget: inconclusive, not a
        // disagreement (the cached verdict's facts replayed, so it still
        // stands and keeps the report deterministic). Drop the entry so
        // the next run re-searches it for real.
        Engine.stats().bump("robust.verifyExhausted");
        Engine.stats().bump("robust.timeoutNotCached");
        Cache->erase(Label, CacheConfig);
        return Info;
      }
      if (R.Outcome != CachedOut || R.StepsUsed != CachedSteps) {
        Engine.stats().bump("cache.verifyMismatch");
        Info.Outcome = R.Outcome;
        Info.Reason = R.Exhaustion;
        Info.Steps = R.StepsUsed;
        Info.Nanos = nanosSince(T0);
        Info.Cache = EdgeCacheState::Invalidated;
        Engine.stats().bump("cache.insert");
        Cache->insert(Label, E.IsGlobal, CacheConfig, R.Outcome,
                      R.StepsUsed, materializeFootprint(P, PTA, FP),
                      HarvestJson(), ProgFp);
        // The fresh verdict won; its harvest (just drained) replaces the
        // distrusted persisted payload at publication time.
        if (Info.Reg)
          Info.Reg->PersistedJson.clear();
      }
      return Info;
    }
    case RefutationCache::Probe::Miss:
      Engine.stats().bump("cache.miss");
      Info.Cache = EdgeCacheState::Miss;
      break;
    case RefutationCache::Probe::Stale:
      Engine.stats().bump("cache.invalidated");
      Info.Cache = EdgeCacheState::Invalidated;
      break;
    }
  }
  auto T0 = std::chrono::steady_clock::now();
  DepFootprint FP;
  if (Cache)
    Engine.setDepSink(&FP);
  EdgeSearchResult R = E.IsGlobal
                           ? Engine.searchGlobalEdge(E.G, E.Target)
                           : Engine.searchFieldEdge(E.Base, E.Fld, E.Target);
  if (Cache)
    Engine.setDepSink(nullptr);
  Engine.stats().bump("leak.searches");
  Drain();
  Info.Outcome = R.Outcome;
  Info.Reason = R.Exhaustion;
  Info.Steps = R.StepsUsed;
  Info.Nanos = nanosSince(T0);
  if (Cache) {
    if (R.Outcome == SearchOutcome::BudgetExhausted) {
      // Sound degradation: an exhausted search proves nothing durable, so
      // it must never be served from the cache on a later run (the warm
      // run re-searches it, deterministically in step mode).
      Engine.stats().bump("robust.timeoutNotCached");
    } else {
      Engine.stats().bump("cache.insert");
      Cache->insert(Label, E.IsGlobal, CacheConfig, R.Outcome, R.StepsUsed,
                    materializeFootprint(P, PTA, FP), HarvestJson(),
                    ProgFp);
    }
  }
  return Info;
}

SearchOutcome LeakChecker::checkEdge(const EdgeKey &E) {
  auto CIt = Consulted.find(E);
  if (CIt != Consulted.end())
    return CIt->second.Outcome;
  // Whole-run deadline: once it fires, every not-yet-consulted edge
  // degrades to TIMEOUT(cancelled) without touching prefetched results or
  // the cache. In deterministic mode the deadline is counted in consulted
  // steps by this sequential loop only, so the cut-off edge — and with it
  // the whole report — is identical for every thread count.
  if (Gov && Gov->runExhausted()) {
    WS.stats().bump("robust.runDeadlineEdges");
    EdgeInfo Info;
    Info.Outcome = SearchOutcome::BudgetExhausted;
    Info.Reason = ExhaustionReason::Cancelled;
    Consulted.emplace(E, Info);
    return Info.Outcome;
  }
  EdgeInfo Info;
  auto It = EdgeResults.find(E);
  if (It != EdgeResults.end()) {
    Info = It->second;
    // Registry revalidation: the prefetched search ran against an empty
    // registry. If it probed (and missed) a slot that an earlier-consulted
    // edge has since published into, the sequential run would have pruned
    // differently — re-search now, against the registry exactly as the
    // sequential algorithm would see it. Bypassing the cache probe is
    // essential: prefetch just inserted its own (stale-stepped) entry.
    if (Info.Reg && !PublishedSlots.empty()) {
      bool Invalidated = false;
      for (const std::string &Slot : Info.Reg->ProbedSlots)
        if (PublishedSlots.count(Slot)) {
          Invalidated = true;
          break;
        }
      if (Invalidated) {
        WS.stats().bump("par.registryResearches");
        ResearchedLabels.insert(edgeLabel(E));
        Info = threshEdge(WS, E, /*BypassCacheProbe=*/true);
        It->second = Info;
      }
    }
  } else {
    Info = threshEdge(WS, E);
    EdgeResults.emplace(E, Info);
  }
  // Publish this edge's refuted-query harvest in consult order, so the
  // registry contents at every later consult are identical for every
  // thread count. A warm cache hit republishes the persisted payload the
  // cold run recorded (same entries, no search needed).
  if (Info.Reg) {
    std::vector<SubsumeEntry> Entries;
    if (!Info.Reg->PersistedJson.empty() &&
        subsumeEntriesFromJson(Info.Reg->PersistedJson, Entries))
      WS.stats().bump("cache.regRestored");
    else
      Entries = Info.Reg->Pendings;
    if (!Entries.empty()) {
      for (const SubsumeEntry &En : Entries)
        PublishedSlots.insert(En.Slot);
      size_t N = Registry.publishAll(std::move(Entries));
      WS.stats().bump("par.registryPublished", N);
    }
  }
  if (Gov)
    Gov->noteConsultedSteps(Info.Steps);
  Consulted.emplace(E, Info);
  return Info.Outcome;
}

bool LeakChecker::findPath(GlobalId G, AbsLocId Target,
                           std::vector<EdgeKey> &Path) {
  // BFS over points-to graph nodes (locations), skipping edges refuted by
  // a consulted search. The prefetch cache is never read here: treating a
  // prefetched-but-unconsulted refutation as deleted would change the
  // exploration order relative to the sequential run.
  auto Refuted = [&](const EdgeKey &E) {
    auto It = Consulted.find(E);
    return It != Consulted.end() && It->second.Outcome == SearchOutcome::Refuted;
  };
  std::map<AbsLocId, std::pair<AbsLocId, EdgeKey>> Parent; // loc -> (pred, edge)
  std::deque<AbsLocId> Work;
  std::set<AbsLocId> Seen;
  std::map<AbsLocId, EdgeKey> RootEdge;
  for (AbsLocId L : PTA.ptGlobal(G)) {
    EdgeKey E;
    E.IsGlobal = true;
    E.G = G;
    E.Target = L;
    if (Refuted(E))
      continue;
    if (Seen.insert(L).second) {
      RootEdge[L] = E;
      Work.push_back(L);
    }
  }
  AbsLocId Found = InvalidId;
  while (!Work.empty() && Found == InvalidId) {
    AbsLocId L = Work.front();
    Work.pop_front();
    if (L == Target) {
      Found = L;
      break;
    }
    for (auto [Fld, Next] : PTA.fieldEdges(L)) {
      EdgeKey E;
      E.Base = L;
      E.Fld = Fld;
      E.Target = Next;
      if (Refuted(E))
        continue;
      if (Seen.insert(Next).second) {
        Parent[Next] = {L, E};
        Work.push_back(Next);
      }
    }
  }
  if (Found == InvalidId)
    return false;
  // Reconstruct source -> target edge sequence.
  std::vector<EdgeKey> Rev;
  AbsLocId Cur = Found;
  while (Parent.count(Cur)) {
    Rev.push_back(Parent[Cur].second);
    Cur = Parent[Cur].first;
  }
  Rev.push_back(RootEdge.at(Cur));
  Path.assign(Rev.rbegin(), Rev.rend());
  return true;
}

std::vector<std::pair<GlobalId, AbsLocId>>
LeakChecker::enumerateAlarms() const {
  IdSet Activities = PTA.locsOfClassDerivedFrom(P, ActivityBase);
  // (static field, Activity location) connected pairs: a reachability
  // sweep from every global (ignoring refutations; this is the
  // flow-insensitive alarm set).
  std::vector<std::pair<GlobalId, AbsLocId>> AlarmPairs;
  for (GlobalId G = 0; G < P.Globals.size(); ++G) {
    std::set<AbsLocId> Seen;
    std::deque<AbsLocId> Work;
    for (AbsLocId L : PTA.ptGlobal(G))
      if (Seen.insert(L).second)
        Work.push_back(L);
    while (!Work.empty()) {
      AbsLocId L = Work.front();
      Work.pop_front();
      if (Activities.contains(L))
        AlarmPairs.push_back({G, L});
      for (auto [Fld, Next] : PTA.fieldEdges(L)) {
        (void)Fld;
        if (Seen.insert(Next).second)
          Work.push_back(Next);
      }
    }
  }
  return AlarmPairs;
}

void LeakChecker::prefetchEdgesParallel(
    const std::vector<std::pair<GlobalId, AbsLocId>> &Alarms,
    unsigned Threads) {
  // Candidate edges: everything reachable from an alarmed global.
  std::set<GlobalId> AlarmedGlobals;
  for (auto [G, L] : Alarms) {
    (void)L;
    AlarmedGlobals.insert(G);
  }
  std::vector<EdgeKey> Candidates;
  std::set<AbsLocId> Seen;
  for (GlobalId G : AlarmedGlobals) {
    std::deque<AbsLocId> Work;
    for (AbsLocId L : PTA.ptGlobal(G)) {
      EdgeKey E;
      E.IsGlobal = true;
      E.G = G;
      E.Target = L;
      Candidates.push_back(E);
      if (Seen.insert(L).second)
        Work.push_back(L);
    }
    while (!Work.empty()) {
      AbsLocId L = Work.front();
      Work.pop_front();
      for (auto [Fld, Next] : PTA.fieldEdges(L)) {
        EdgeKey E;
        E.Base = L;
        E.Fld = Fld;
        E.Target = Next;
        Candidates.push_back(E);
        if (Seen.insert(Next).second)
          Work.push_back(Next);
      }
    }
  }

  std::mutex M;
  std::atomic<size_t> NextIdx{0};
  auto Worker = [&]() {
    WitnessSearch LocalWS(P, PTA, Opts);
    LocalWS.setGovernor(Gov);
    // Shared registry, guaranteed empty throughout the (strictly phased)
    // prefetch: probes always miss, but the probed slots are recorded so
    // checkEdge can revalidate this worker's results in consult order.
    if (Opts.GlobalSubsume)
      LocalWS.setRegistry(&Registry);
    VectorTraceSink LocalTrace;
    LocalWS.setTraceSink(&LocalTrace);
    std::vector<std::pair<EdgeKey, EdgeInfo>> LocalResults;
    while (true) {
      size_t I = NextIdx.fetch_add(1);
      if (I >= Candidates.size())
        break;
      const EdgeKey &E = Candidates[I];
      // threshEdge probes/fills the shared cache (internally locked).
      LocalResults.push_back({E, threshEdge(LocalWS, E)});
    }
    std::lock_guard<std::mutex> Lock(M);
    for (auto &[E, Info] : LocalResults)
      EdgeResults.emplace(E, Info);
    WS.stats().mergeFrom(LocalWS.stats());
    TraceBuffers.push_back(std::move(LocalTrace.events()));
  };
  std::vector<std::thread> Pool;
  for (unsigned I = 0; I < Threads; ++I)
    Pool.emplace_back(Worker);
  for (std::thread &Th : Pool)
    Th.join();
}

LeakReport LeakChecker::run(unsigned Threads) {
  // Allow repeated runs on one checker: verdict caches may be reused, but
  // the consulted set and trace belong to a single run.
  Consulted.clear();
  TraceBuffers.clear();
  Trace.clear();
  // The registry and its publication state belong to a single run (its
  // deterministic contract is phrased in consult order, which restarts).
  Registry.clear();
  PublishedSlots.clear();
  ResearchedLabels.clear();

  LeakReport Report;
  Report.Threads = Threads;
  Timer T;
  VectorTraceSink SeqTrace;
  WS.setTraceSink(&SeqTrace);

  // Governor counter baseline (run() may be called repeatedly on one
  // checker; stats() reports per-run deltas of the shared atomics).
  uint64_t Deadline0 = 0, Mem0 = 0, Cancel0 = 0;
  if (Gov) {
    Gov->beginRun();
    Deadline0 = Gov->DeadlineHits.load();
    Mem0 = Gov->MemCeilingHits.load();
    Cancel0 = Gov->CancelHits.load();
  }

  // Counter baseline so repeated runs report per-run cache activity.
  static const char *const CacheCounters[] = {
      "cache.hit",    "cache.miss",     "cache.invalidated",
      "cache.insert", "cache.verified", "cache.verifyMismatch"};
  std::map<std::string, uint64_t> Cache0;
  for (const char *Name : CacheCounters)
    Cache0[Name] = WS.stats().get(Name);

  std::vector<std::pair<GlobalId, AbsLocId>> AlarmPairs;
  {
    ScopedTimer ST(WS.stats(), "hist.leak.enumerateAlarmsNanos");
    AlarmPairs = enumerateAlarms();
  }
  if (Threads > 1) {
    ScopedTimer ST(WS.stats(), "hist.leak.prefetchNanos");
    prefetchEdgesParallel(AlarmPairs, Threads);
  }

  Report.NumAlarms = static_cast<uint32_t>(AlarmPairs.size());
  std::set<GlobalId> AlarmFields;
  std::map<GlobalId, uint32_t> FieldAlarmCount, FieldRefutedCount;
  for (auto [G, L] : AlarmPairs) {
    (void)L;
    AlarmFields.insert(G);
    ++FieldAlarmCount[G];
  }
  Report.Fields = static_cast<uint32_t>(AlarmFields.size());

  // Thresh each alarm.
  {
    ScopedTimer ST(WS.stats(), "hist.leak.threshNanos");
    for (auto [G, Act] : AlarmPairs) {
      AlarmResult AR;
      AR.Source = G;
      AR.Activity = Act;
      while (true) {
        std::vector<EdgeKey> Path;
        if (!findPath(G, Act, Path)) {
          AR.Status = AlarmStatus::Refuted;
          ++Report.RefutedAlarms;
          ++FieldRefutedCount[G];
          break;
        }
        bool RefutedOne = false;
        bool SawTimeout = false;
        for (const EdgeKey &E : Path) {
          SearchOutcome R = checkEdge(E);
          if (R == SearchOutcome::Refuted) {
            RefutedOne = true;
            break;
          }
          if (R == SearchOutcome::BudgetExhausted)
            SawTimeout = true;
        }
        if (RefutedOne)
          continue; // Edge deleted (via cache); look for another path.
        AR.Status = SawTimeout ? AlarmStatus::Timeout : AlarmStatus::Witnessed;
        for (const EdgeKey &E : Path)
          AR.PathDescription.push_back(edgeLabel(E));
        break;
      }
      Report.Alarms.push_back(std::move(AR));
    }
  }
  WS.setTraceSink(nullptr);
  // Edges re-searched at consult time emitted their canonical events into
  // SeqTrace; the prefetch workers' events for them reflect an
  // empty-registry search and must not reach the merge.
  if (!ResearchedLabels.empty())
    for (std::vector<TraceEvent> &Buf : TraceBuffers)
      Buf.erase(std::remove_if(Buf.begin(), Buf.end(),
                               [&](const TraceEvent &Ev) {
                                 return ResearchedLabels.count(Ev.Edge) > 0;
                               }),
                Buf.end());
  TraceBuffers.push_back(std::move(SeqTrace.events()));
  Trace = mergeTraceEvents(std::move(TraceBuffers));
  TraceBuffers.clear();

  for (GlobalId G : AlarmFields)
    if (FieldRefutedCount[G] == FieldAlarmCount[G])
      ++Report.RefutedFields;

  for (const auto &[E, Info] : Consulted) {
    EdgeVerdict V;
    V.Label = edgeLabel(E);
    V.IsGlobal = E.IsGlobal;
    V.Outcome = Info.Outcome;
    V.Reason = Info.Reason;
    V.Steps = Info.Steps;
    V.Nanos = Info.Nanos;
    V.Cache = Info.Cache;
    Report.Edges.push_back(std::move(V));
    switch (Info.Outcome) {
    case SearchOutcome::Refuted:
      ++Report.RefutedEdges;
      break;
    case SearchOutcome::Witnessed:
      ++Report.WitnessedEdges;
      break;
    case SearchOutcome::BudgetExhausted:
      ++Report.TimeoutEdges;
      break;
    }
  }
  std::stable_sort(Report.Edges.begin(), Report.Edges.end(),
                   [](const EdgeVerdict &A, const EdgeVerdict &B) {
                     return A.Label < B.Label;
                   });
  Report.PrefetchedEdges = EdgeResults.size();
  Report.Seconds = T.seconds();
  WS.stats().bump("leak.runs");
  WS.stats().bump("leak.consultedEdges", Consulted.size());

  if (Gov) {
    // Fold the governor's shared atomics into the stats registry so the
    // report's effort.counters section carries them (robust.* namespace).
    WS.stats().bump("robust.deadlineHits",
                    Gov->DeadlineHits.load() - Deadline0);
    WS.stats().bump("robust.memCeilingHits",
                    Gov->MemCeilingHits.load() - Mem0);
    WS.stats().bump("robust.cancellations",
                    Gov->CancelHits.load() - Cancel0);
    WS.stats().record("hist.robust.memPeakBytes", Gov->memPeak());
  }

  if (Cache) {
    auto Delta = [&](const char *Name) {
      return WS.stats().get(Name) - Cache0[Name];
    };
    Report.Cache.Enabled = true;
    Report.Cache.Loaded = Cache->loadedEntries();
    Report.Cache.Valid = Cache->validEntries();
    Report.Cache.Stale = Cache->staleEntries();
    Report.Cache.Hits = Delta("cache.hit");
    Report.Cache.Misses = Delta("cache.miss");
    Report.Cache.Invalidated = Delta("cache.invalidated");
    Report.Cache.Inserted = Delta("cache.insert");
    Report.Cache.Verified = Delta("cache.verified");
    Report.Cache.VerifyMismatches = Delta("cache.verifyMismatch");
  }
  return Report;
}

void LeakChecker::writeTraceJsonl(std::ostream &OS) const {
  for (const TraceEvent &Ev : Trace)
    OS << traceEventToJson(Ev) << "\n";
}

std::vector<std::string>
LeakChecker::edgesWithOutcome(SearchOutcome O) const {
  std::vector<std::string> Out;
  for (const auto &[E, Info] : Consulted)
    if (Info.Outcome == O)
      Out.push_back(edgeLabel(E));
  return Out;
}

uint32_t LeakReport::countTrue(
    const Program &P, const AbsLocTable &T,
    const std::vector<std::pair<GlobalId, std::string>> &TrueLeaks) const {
  uint32_t N = 0;
  for (const AlarmResult &A : Alarms) {
    if (A.Status == AlarmStatus::Refuted)
      continue;
    std::string Label = T.label(P, A.Activity);
    for (const auto &[G, SiteLabel] : TrueLeaks) {
      if (G == A.Source && Label == SiteLabel) {
        ++N;
        break;
      }
    }
  }
  return N;
}
